package td_test

// Benchmark harness: one benchmark per experiment in EXPERIMENTS.md. Each
// BenchmarkE* regenerates the corresponding table/figure-equivalent
// artifact of the paper through the same code path as cmd/tdbench, and the
// focused benchmarks below time the individual workloads at a fixed size
// so allocations and per-op cost are visible with -benchmem.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkE7 -benchmem

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	td "repro"
	"repro/internal/datalog"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/sim"
	"repro/internal/term"
	"repro/internal/workflow"
)

// benchExperiment runs one full experiment (all its sweeps) per iteration.
func benchExperiment(b *testing.B, f func(experiments.Config) experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep := f(experiments.Config{Quick: true})
		if !rep.Pass {
			b.Fatalf("%s failed: %v", rep.ID, rep.Notes)
		}
	}
}

func BenchmarkE1Transfer(b *testing.B)   { benchExperiment(b, experiments.E1Transfer) }
func BenchmarkE2Nested(b *testing.B)     { benchExperiment(b, experiments.E2NestedAbort) }
func BenchmarkE3Workflow(b *testing.B)   { benchExperiment(b, experiments.E3WorkflowSpec) }
func BenchmarkE4Simulation(b *testing.B) { benchExperiment(b, experiments.E4Simulation) }
func BenchmarkE5Agents(b *testing.B)     { benchExperiment(b, experiments.E5SharedAgents) }
func BenchmarkE6Sync(b *testing.B)       { benchExperiment(b, experiments.E6Cooperation) }
func BenchmarkE7TwoStack(b *testing.B)   { benchExperiment(b, experiments.E7TwoStack) }
func BenchmarkE8QBF(b *testing.B)        { benchExperiment(b, experiments.E8SequentialQBF) }
func BenchmarkE9NonRec(b *testing.B)     { benchExperiment(b, experiments.E9NonRecursive) }
func BenchmarkE10Bounded(b *testing.B)   { benchExperiment(b, experiments.E10FullyBounded) }
func BenchmarkE11InsOnly(b *testing.B)   { benchExperiment(b, experiments.E11InsOnlyDatalog) }
func BenchmarkE12Isolation(b *testing.B) { benchExperiment(b, experiments.E12Isolation) }
func BenchmarkE13Turing(b *testing.B)    { benchExperiment(b, experiments.E13TuringChain) }
func BenchmarkE14Verify(b *testing.B)    { benchExperiment(b, experiments.E14Verification) }
func BenchmarkA1Tabling(b *testing.B)    { benchExperiment(b, experiments.A1Tabling) }
func BenchmarkA2DBFork(b *testing.B)     { benchExperiment(b, experiments.A2DBFork) }
func BenchmarkA3Index(b *testing.B)      { benchExperiment(b, experiments.A3Index) }

// ---------------------------------------------------------------------------
// Focused micro/meso benchmarks at fixed sizes.

const benchBank = `
	balance(A, B) :- account(A, B).
	change_balance(A, B1, B2) :- del.account(A, B1), ins.account(A, B2).
	withdraw(Amt, A) :- balance(A, B), B >= Amt, sub(B, Amt, C), change_balance(A, B, C).
	deposit(Amt, A) :- balance(A, B), add(B, Amt, C), change_balance(A, B, C).
	transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
	account(a, 1000000).
	account(b, 1000000).
`

// BenchmarkProverTransfer times one committed money transfer end to end.
func BenchmarkProverTransfer(b *testing.B) {
	prog := parser.MustParse(benchBank)
	g := parser.MustParseGoal("transfer(1, a, b)", prog.VarHigh)
	eng := engine.NewDefault(prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := db.FromFacts(prog.Facts)
		res, err := eng.Prove(g, d)
		if err != nil || !res.Success {
			b.Fatal(err, res)
		}
	}
}

// BenchmarkProverTransferTraced is BenchmarkProverTransfer with structured
// execution tracing enabled and span trees flowing into a ring sink — the
// cost of full observability on the engine's hot path. Compare against
// BenchmarkProverTransfer (tracing off) for the enabled-vs-disabled delta;
// BENCH_PR3.json records both.
func BenchmarkProverTransferTraced(b *testing.B) {
	prog := parser.MustParse(benchBank)
	g := parser.MustParseGoal("transfer(1, a, b)", prog.VarHigh)
	opts := engine.DefaultOptions()
	opts.Trace = true
	opts.SpanSink = obs.NewRingSink(16)
	eng := engine.New(prog, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := db.FromFacts(prog.Facts)
		res, err := eng.Prove(g, d)
		if err != nil || !res.Success {
			b.Fatal(err, res)
		}
	}
}

// BenchmarkProverAbort times a failing (rolled back) transfer.
func BenchmarkProverAbort(b *testing.B) {
	prog := parser.MustParse(benchBank)
	g := parser.MustParseGoal("transfer(99999999, a, b)", prog.VarHigh)
	eng := engine.NewDefault(prog)
	d, _ := db.FromFacts(prog.Facts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Prove(g, d)
		if err != nil || res.Success {
			b.Fatal(err, res)
		}
	}
}

// BenchmarkProverPlanned times the laboratory analyze workload — a ground
// hot-sample query over a cold sample, the worst case that exhausts the
// search under any literal order — with planning off (textual order: full
// reading scan per proof attempt) and on (tdplan hoists the first-arg-
// indexed sample_reading lookup). Same program, same goal, same (empty)
// answer; only the literal order differs. BENCH_PR9.json records both and
// make bench-compare gates the planned/textual ratio.
func BenchmarkProverPlanned(b *testing.B) {
	cfg := workflow.DefaultAnalyze(64)
	prog := parser.MustParse(workflow.AnalyzeSource(cfg))
	g := parser.MustParseGoal(fmt.Sprintf("hot(%s)", workflow.ColdSample(cfg)), prog.VarHigh)
	run := func(b *testing.B, eng *engine.Engine) {
		b.Helper()
		d, _ := db.FromFacts(prog.Facts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Prove(g, d)
			if err != nil || res.Success {
				b.Fatal(err, res)
			}
		}
	}
	b.Run("textual", func(b *testing.B) {
		run(b, engine.NewDefault(prog))
	})
	b.Run("planned", func(b *testing.B) {
		opts := engine.DefaultOptions()
		opts.Plan = true
		run(b, engine.New(prog, opts))
	})
}

// BenchmarkProverTabled times the repeated-analyze workload — the same
// ground hot-sample query proved over and over against an unchanged
// database, the access pattern the paper's analyze stage produces
// ("queried by analysis programs, but never deleted or altered") — with
// tabling off and on. The off variant re-exhausts the search every call;
// the tabled variant fills the memo table once and replays the cached
// answer multiset (here: empty — cold sample) on every later call, so its
// steady state is a key build plus a fingerprint check. BENCH_PR10.json
// records both; the acceptance gate is a >=10x off/tabled ratio, with the
// off variant itself staying within noise of PR 9's textual baseline.
func BenchmarkProverTabled(b *testing.B) {
	cfg := workflow.DefaultAnalyze(64)
	prog := parser.MustParse(workflow.AnalyzeSource(cfg))
	g := parser.MustParseGoal(fmt.Sprintf("hot(%s)", workflow.ColdSample(cfg)), prog.VarHigh)
	run := func(b *testing.B, eng *engine.Engine) {
		b.Helper()
		d, _ := db.FromFacts(prog.Facts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Prove(g, d)
			if err != nil || res.Success {
				b.Fatal(err, res)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, engine.NewDefault(prog))
	})
	b.Run("tabled", func(b *testing.B) {
		opts := engine.DefaultOptions()
		opts.Memo = &engine.MemoOptions{Mode: "all"}
		run(b, engine.New(prog, opts))
	})
}

// BenchmarkProverTabledChain is the machine-encoding variant of
// BenchmarkProverTabled: repeated reachability over a read-only 48-node
// edge chain (the Theorem 4.x encodings reduced to their recursive
// skeleton, with no update literals so reach/2 stays tabling-eligible).
// Untabled, every call re-walks the chain; tabled, the first call caches
// the single ground answer and the rest replay it.
func BenchmarkProverTabledChain(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("reach(X, Y) :- edge(X, Y).\nreach(X, Z) :- edge(X, Y), reach(Y, Z).\n")
	const chain = 48
	for i := 0; i < chain; i++ {
		fmt.Fprintf(&sb, "edge(n%d, n%d).\n", i, i+1)
	}
	prog := parser.MustParse(sb.String())
	g := parser.MustParseGoal(fmt.Sprintf("reach(n0, n%d)", chain), prog.VarHigh)
	run := func(b *testing.B, eng *engine.Engine) {
		b.Helper()
		d, _ := db.FromFacts(prog.Facts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Prove(g, d)
			if err != nil || !res.Success {
				b.Fatal(err, res)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, engine.NewDefault(prog))
	})
	b.Run("tabled", func(b *testing.B) {
		opts := engine.DefaultOptions()
		opts.Memo = &engine.MemoOptions{Mode: "all"}
		run(b, engine.New(prog, opts))
	})
}

// BenchmarkSimLab times the full genome laboratory simulation (8 samples).
func BenchmarkSimLab(b *testing.B) {
	cfg := workflow.DefaultLab(8)
	src, goal, err := workflow.LabSource(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(goal, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.New(prog, sim.Options{Timeout: time.Minute, Seed: int64(i)}).Run(g, d)
		if !res.Completed {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkTwoStackCopy times the Theorem 4.4 construction moving 8
// symbols between stacks.
func BenchmarkTwoStackCopy(b *testing.B) {
	src, goal, err := machine.Source(machine.Copy(), machine.ABWord(8))
	if err != nil {
		b.Fatal(err)
	}
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(goal, prog.VarHigh)
	eng := engine.NewDefault(prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := db.FromFacts(prog.Facts)
		res, err := eng.Prove(g, d)
		if err != nil || !res.Success {
			b.Fatal(err, res)
		}
	}
}

// BenchmarkQBFAlternating3 times the sequential-TD alternation workload at
// k = 3 quantifier blocks.
func BenchmarkQBFAlternating3(b *testing.B) {
	q := machine.AlternatingQBF(3)
	facts, err := machine.QBFFacts(q)
	if err != nil {
		b.Fatal(err)
	}
	prog := parser.MustParse(machine.QBFRules + facts)
	g := parser.MustParseGoal(machine.QBFGoal, prog.VarHigh)
	eng := engine.NewDefault(prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := db.FromFacts(prog.Facts)
		res, err := eng.Prove(g, d)
		if err != nil || !res.Success {
			b.Fatal(err, res)
		}
	}
}

// BenchmarkDatalogTC60 times the semi-naive baseline on a 60-edge chain.
func BenchmarkDatalogTC60(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "edge(n%d, n%d).\n", i, i+1)
	}
	prog := parser.MustParse(sb.String())
	dl, err := datalog.FromTD(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datalog.Eval(dl, datalog.SemiNaive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse times the parser on the generated laboratory program.
func BenchmarkParse(b *testing.B) {
	src, _, err := workflow.LabSource(workflow.DefaultLab(20))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := td.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBInsertDelete times raw tuple churn with the undo log.
func BenchmarkDBInsertDelete(b *testing.B) {
	d := db.New()
	row := []td.Term{td.Sym("k"), td.Int(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row[1] = td.Int(int64(i % 1000))
		d.Insert("p", row)
		d.Delete("p", row)
		if i%1000 == 999 {
			d.ResetTrail()
		}
	}
}

// BenchmarkProveVsParWide compares sequential and parallel proof search on
// a wide top-level branching where the only success sits in the last
// branch: the parallel fan-out does not have to exhaust the dead branches
// one by one.
func BenchmarkProveVsParWide(b *testing.B) {
	var sb strings.Builder
	// 8 branches; each dead branch runs a bounded-but-expensive loop that
	// ends in failure, the last branch succeeds quickly.
	sb.WriteString("countdown(0) :- nosuccess(never).\n")
	sb.WriteString("countdown(N) :- N > 0, ins.c(N), sub(N, 1, M), countdown(M), del.c(N).\n")
	for i := 0; i < 7; i++ {
		fmt.Fprintf(&sb, "t :- branch%d, countdown(40).\n", i)
		fmt.Fprintf(&sb, "branch%d :- ins.b%d.\n", i, i)
	}
	sb.WriteString("t :- ins.win.\n")
	prog := parser.MustParse(sb.String())
	g := parser.MustParseGoal("t", prog.VarHigh)
	opts := engine.Options{MaxSteps: 50_000_000, MaxDepth: 100_000}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := db.New()
			res, err := engine.New(prog, opts).Prove(g, d)
			if err != nil || !res.Success {
				b.Fatal(err, res)
			}
		}
	})
	b.Run("parallel8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := db.New()
			res, err := engine.New(prog, opts).ProvePar(g, d, 8)
			if err != nil || !res.Success {
				b.Fatal(err, res)
			}
		}
	})
}

// BenchmarkServerThroughput drives the transaction service end to end over
// the in-process transport: n concurrent clients each committing random
// iso(transfer(...)) transactions against a small, contended bank. It
// reports commits/sec and the conflict rate (validation losses per commit)
// alongside the usual ns/op.
func BenchmarkServerThroughput(b *testing.B) {
	benchServerThroughput(b, benchBankAccounts, func(b *testing.B) td.ServerOptions {
		return td.ServerOptions{}
	})
}

// BenchmarkServerThroughputTraced is BenchmarkServerThroughput with
// server-side tracing forced on and every transaction's span tree emitted
// to a ring sink — the full-observability cost of the service path.
func BenchmarkServerThroughputTraced(b *testing.B) {
	benchServerThroughput(b, benchBankAccounts, func(b *testing.B) td.ServerOptions {
		return td.ServerOptions{Trace: true, TraceSink: obs.NewRingSink(64)}
	})
}

// BenchmarkServerThroughputDurable is BenchmarkServerThroughput with a real
// snapshot + WAL and an fsync per acknowledged commit — the configuration
// the group-commit pipeline exists for. Each sub-benchmark gets fresh store
// files. The fsync floor dominates ns/op here; the number to watch is
// commits/sec scaling with the client count.
func BenchmarkServerThroughputDurable(b *testing.B) {
	benchServerThroughput(b, benchBankAccounts, func(b *testing.B) td.ServerOptions {
		dir := b.TempDir()
		return td.ServerOptions{
			SnapshotPath: filepath.Join(dir, "td.snap"),
			WALPath:      filepath.Join(dir, "td.wal"),
		}
	})
}

// BenchmarkServerThroughputDurableSampled is BenchmarkServerThroughputDurable
// with stage-level latency attribution sampling 1 transaction in 64 — the
// recommended production setting. The acceptance gate for PR 8: its 8-client
// throughput must stay within 5% of the unsampled durable variant.
func BenchmarkServerThroughputDurableSampled(b *testing.B) {
	benchServerThroughput(b, benchBankAccounts, func(b *testing.B) td.ServerOptions {
		dir := b.TempDir()
		return td.ServerOptions{
			SnapshotPath: filepath.Join(dir, "td.snap"),
			WALPath:      filepath.Join(dir, "td.wal"),
			StageSample:  64,
		}
	})
}

const benchBankAccounts = 8

// benchShards pins the lane count for the sharded variants, so the results
// (and the BENCH_PR7.json artifact) do not depend on the machine's core
// count.
const benchShards = 8

// benchBankProgram builds the contended-bank rulebase with n seed accounts.
func benchBankProgram(n int) string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("acct%d", i)
	}
	return benchBankProgramNames(names)
}

// benchBankProgramNames is benchBankProgram over an explicit account list.
func benchBankProgramNames(names []string) string {
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "account(%s, 100).\n", name)
	}
	sb.WriteString(`
withdraw(Amt, A) :- account(A, B), B >= Amt, del.account(A, B),
                    sub(B, Amt, C), ins.account(A, C).
deposit(Amt, A)  :- account(A, B), del.account(A, B),
                    add(B, Amt, C), ins.account(A, C).
transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`)
	return sb.String()
}

// laneAccountPairs returns one (from, to) account pair per commit lane,
// with both accounts of a pair routed to that lane — shard routing is a
// pure function of (pred, first-arg code), shared with the server. Client c
// working pair c%n touches exactly one lane, and different pairs touch
// different lanes.
func laneAccountPairs(nlanes int) ([][2]string, []string) {
	groups := make([][]string, nlanes)
	var names []string
	for i, filled := 0, 0; filled < nlanes; i++ {
		name := fmt.Sprintf("acct%d", i)
		sh := db.ShardOf(nlanes, "account", term.NewSym(name).Code())
		if len(groups[sh]) < 2 {
			groups[sh] = append(groups[sh], name)
			names = append(names, name)
			if len(groups[sh]) == 2 {
				filled++
			}
		}
	}
	pairs := make([][2]string, nlanes)
	for sh, g := range groups {
		pairs[sh] = [2]string{g[0], g[1]}
	}
	return pairs, names
}

// BenchmarkServerThroughputDisjoint is the sharded store's best case: 8
// commit lanes, and every client hammers a private account pair that lives
// entirely inside one lane, so commits validate and apply with no shared
// lock but the LSN sequencer. Compare against
// BenchmarkServerThroughputContended (same lanes, shared accounts) for the
// cross-lane coordination cost, and against BenchmarkServerThroughput
// (single lane by default on 1-core machines) for the sharding delta.
func BenchmarkServerThroughputDisjoint(b *testing.B) {
	benchServerThroughputDisjoint(b, func(b *testing.B) td.ServerOptions {
		return td.ServerOptions{StoreShards: benchShards}
	})
}

// BenchmarkServerThroughputDisjointDurable adds a real snapshot + WAL and
// an fsync per acknowledged commit: all 8 lanes feed the single group-commit
// flusher, so this measures how well disjoint lanes keep the fsync batches
// full.
func BenchmarkServerThroughputDisjointDurable(b *testing.B) {
	benchServerThroughputDisjoint(b, func(b *testing.B) td.ServerOptions {
		dir := b.TempDir()
		return td.ServerOptions{
			StoreShards:  benchShards,
			SnapshotPath: filepath.Join(dir, "td.snap"),
			WALPath:      filepath.Join(dir, "td.wal"),
		}
	})
}

// BenchmarkServerThroughputContended runs the shared-pool workload of
// BenchmarkServerThroughput on an 8-lane store: every client draws from the
// same 8 accounts, so most transfers span two lanes and the multi-lane
// ordered-lock path dominates. The cross/commit metric reports the
// cross-lane fraction actually measured.
func BenchmarkServerThroughputContended(b *testing.B) {
	benchServerThroughput(b, benchBankAccounts, func(b *testing.B) td.ServerOptions {
		return td.ServerOptions{StoreShards: benchShards}
	})
}

// BenchmarkServerThroughputContendedDurable is the contended 8-lane
// workload with per-commit durability.
func BenchmarkServerThroughputContendedDurable(b *testing.B) {
	benchServerThroughput(b, benchBankAccounts, func(b *testing.B) td.ServerOptions {
		dir := b.TempDir()
		return td.ServerOptions{
			StoreShards:  benchShards,
			SnapshotPath: filepath.Join(dir, "td.snap"),
			WALPath:      filepath.Join(dir, "td.wal"),
		}
	})
}

func benchServerThroughputDisjoint(b *testing.B, mkOpts func(b *testing.B) td.ServerOptions) {
	pairs, names := laneAccountPairs(benchShards)
	program := benchBankProgramNames(names)
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			opts := mkOpts(b)
			opts.Program = program
			srv, err := td.NewServer(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			perClient := (b.N + clients - 1) / clients
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					cl := srv.InProcClient()
					defer cl.Close()
					pair := pairs[c%benchShards]
					for i := 0; i < perClient; i++ {
						// Alternate direction so the pair's balances never drain.
						from, to := pair[0], pair[1]
						if i%2 == 1 {
							from, to = to, from
						}
						goal := fmt.Sprintf("iso(transfer(1, %s, %s))", from, to)
						if _, err := cl.Exec(goal); err != nil && !td.IsNoProof(err) && !td.IsConflict(err) {
							errs <- err
							return
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
			st, err := srv.InProcClient().Stats()
			if err != nil {
				b.Fatal(err)
			}
			if st.Commits > 0 {
				b.ReportMetric(float64(st.Commits)/elapsed.Seconds(), "commits/sec")
				b.ReportMetric(float64(st.Conflicts)/float64(st.Commits), "conflicts/commit")
				b.ReportMetric(float64(st.CrossShardCommits)/float64(st.Commits), "cross/commit")
			}
		})
	}
}

func benchServerThroughput(b *testing.B, accounts int, mkOpts func(b *testing.B) td.ServerOptions) {
	program := benchBankProgram(accounts)
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			opts := mkOpts(b)
			opts.Program = program
			srv, err := td.NewServer(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			perClient := (b.N + clients - 1) / clients
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					cl := srv.InProcClient()
					defer cl.Close()
					for i := 0; i < perClient; i++ {
						from := (c + i) % accounts
						to := (from + 1 + i%(accounts-1)) % accounts
						goal := fmt.Sprintf("iso(transfer(1, acct%d, acct%d))", from, to)
						if _, err := cl.Exec(goal); err != nil && !td.IsNoProof(err) && !td.IsConflict(err) {
							errs <- err
							return
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
			st, err := srv.InProcClient().Stats()
			if err != nil {
				b.Fatal(err)
			}
			if st.Commits > 0 {
				b.ReportMetric(float64(st.Commits)/elapsed.Seconds(), "commits/sec")
				b.ReportMetric(float64(st.Conflicts)/float64(st.Commits), "conflicts/commit")
				if st.Shards > 1 {
					b.ReportMetric(float64(st.CrossShardCommits)/float64(st.Commits), "cross/commit")
				}
			}
		})
	}
}

// BenchmarkRecovery measures cold-start recovery time as a function of
// history length, with and without an incremental checkpoint near the
// tail. The workload churns a fixed-size live state (each commit deletes
// the oldest fact and inserts a new one), so the snapshot stays small and
// constant while the WAL history grows. Without a checkpoint, boot replays
// the whole history and the time grows linearly; with one, replay is the
// constant ~100-commit suffix and the time stays flat no matter how much
// history precedes it — the bounded recovery the checkpoint subsystem
// exists for. The "replayed" metric is the op-record count recovery
// actually applied.
func BenchmarkRecovery(b *testing.B) {
	const live = 100   // live facts, fixed across history sizes
	const suffix = 100 // commits past the checkpoint, fixed across sizes
	for _, history := range []int{1000, 5000, 20000} {
		for _, ckpt := range []bool{false, true} {
			name := fmt.Sprintf("history%d/nockpt", history)
			if ckpt {
				name = fmt.Sprintf("history%d/ckpt", history)
			}
			b.Run(name, func(b *testing.B) {
				dir := b.TempDir()
				snap := filepath.Join(dir, "td.snap")
				wal := filepath.Join(dir, "td.wal")
				s, err := db.OpenStore(snap, wal)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < history; i++ {
					ops := []db.Op{{Insert: true, Pred: "mark", Row: []term.Term{term.NewInt(int64(i))}}}
					if i >= live {
						ops = append([]db.Op{{Pred: "mark", Row: []term.Term{term.NewInt(int64(i - live))}}}, ops...)
					}
					if _, err := s.ApplyOps(ops); err != nil {
						b.Fatal(err)
					}
					if ckpt && i == history-suffix {
						if err := s.Commit(); err != nil {
							b.Fatal(err)
						}
						if err := s.CheckpointFrom(db.FreezeDB(s.DB), s.LastLSN()); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}

				var replayed int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := db.OpenStore(snap, wal)
					if err != nil {
						b.Fatal(err)
					}
					if got := s.DB.Count("mark", 1); got != live {
						b.Fatalf("recovered %d marks, want %d", got, live)
					}
					replayed = s.Recovery().ReplayedRecords
					s.Close()
				}
				b.StopTimer()
				b.ReportMetric(float64(replayed), "replayed")
			})
		}
	}
}
