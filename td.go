// Package td is a Transaction Datalog engine: an implementation of the
// concurrent database programming language of Anthony J. Bonner's
// "Workflow, Transactions, and Datalog" (PODS 1999).
//
// Transaction Datalog (TD) extends Datalog with elementary database
// updates (ins.p, del.p), sequential composition (","), concurrent
// composition ("|") whose processes communicate through the database, and
// an isolation modality (iso(...)) providing nested, serializable
// subtransactions. This package bundles:
//
//   - Parse / ParseGoal: the concrete syntax;
//   - Database: tuple storage with O(1) snapshots and rollback;
//   - Engine: the proof-theoretic interpreter deciding executional
//     entailment (does some execution of this transaction commit?), with
//     backtracking over interleavings, loop checking, and tabling;
//   - Simulator: the operational twin — committed-choice execution with
//     goroutines, blocking reads, atomic guarded rule firing, deadlock
//     detection, and invariant monitors;
//   - Classify: static fragment analysis mapping a program onto the
//     paper's complexity landscape (full / sequential / nonrecursive /
//     ins-only / fully bounded TD).
//
// A one-shot example:
//
//	res, final, err := td.Run(`
//	    account(alice, 100).
//	    account(bob, 50).
//	    withdraw(Amt, A) :- account(A, B), B >= Amt, del.account(A, B),
//	                        sub(B, Amt, C), ins.account(A, C).
//	    deposit(Amt, A)  :- account(A, B), del.account(A, B),
//	                        add(B, Amt, C), ins.account(A, C).
//	    transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
//	`, `transfer(30, alice, bob)`)
//
// See the examples directory for workflow modeling, the genome-laboratory
// simulation, and the complexity constructions.
package td

import (
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/fragments"
	"repro/internal/parser"
	"repro/internal/sim"
	"repro/internal/term"
	"repro/internal/verify"
)

// Core re-exported types. These are aliases, so the internal packages'
// methods and functions apply directly.
type (
	// Program is a parsed TD program: rules, initial facts, and queries.
	Program = ast.Program
	// Goal is a TD goal formula.
	Goal = ast.Goal
	// Rule is one TD rule.
	Rule = ast.Rule
	// Term is a first-order term (constant or variable).
	Term = term.Term
	// Atom is a predicate applied to terms.
	Atom = term.Atom
	// Database is a set of ground atoms with undo-log rollback.
	Database = db.DB
	// FrozenDatabase is an immutable database value: updates return new
	// versions sharing structure (persistent HAMT); forking is O(1).
	FrozenDatabase = db.FrozenDB
	// Store couples a Database with a write-ahead log and snapshot
	// checkpoints for durability.
	Store = db.Store
	// Engine is the proof-theoretic interpreter.
	Engine = engine.Engine
	// EngineOptions configure proof search.
	EngineOptions = engine.Options
	// Result is a proof outcome.
	Result = engine.Result
	// Solution is one enumerated answer.
	Solution = engine.Solution
	// Simulator is the operational workflow engine.
	Simulator = sim.Sim
	// SimOptions configure a simulation.
	SimOptions = sim.Options
	// SimResult is a simulation outcome.
	SimResult = sim.Result
	// MonitorFunc observes the database after each update in a simulation.
	MonitorFunc = sim.MonitorFunc
	// FragmentReport is the static classification of a program.
	FragmentReport = fragments.Report
	// Fragment labels a TD sublanguage.
	Fragment = fragments.Fragment
	// SafetyIssue is a static safety warning.
	SafetyIssue = ast.SafetyIssue
	// Diagnostic is one tdvet static-analysis finding.
	Diagnostic = analysis.Diagnostic
	// VetReport is the full result of vetting a program.
	VetReport = analysis.Report
	// VetError is the error form of a report with error-severity findings.
	VetError = analysis.VetError
	// Severity ranks diagnostics (SevInfo, SevWarning, SevError).
	Severity = analysis.Severity
	// PlanReport is the tdplan static-planner output: adornment
	// signatures, literal-reorder decisions, and per-predicate
	// tabling-safety certificates.
	PlanReport = analysis.PlanReport
	// PredPlan is one predicate's plan entry (its certificate plus the
	// per-rule, per-adornment body orders).
	PredPlan = analysis.PredPlan
)

// Diagnostic severities.
const (
	SevInfo    = analysis.SevInfo
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
)

// Fragment labels, from most to least restricted.
const (
	NonRecursive = fragments.NonRecursive
	InsOnly      = fragments.InsOnly
	FullyBounded = fragments.FullyBounded
	Sequential   = fragments.Sequential
	Full         = fragments.Full
)

// Programmatic goal constructors, for building transactions without going
// through the concrete syntax. Compose them freely; pass the result to
// Engine.Prove / Simulator.Run (ResolveGoal is applied automatically).
//
//	g := td.SeqGoal(
//	    td.QueryGoal(td.NewAtom("account", td.Sym("alice"), td.Int(100))),
//	    td.DelGoal(td.NewAtom("account", td.Sym("alice"), td.Int(100))),
//	    td.InsGoal(td.NewAtom("account", td.Sym("alice"), td.Int(70))),
//	)

// TrueGoal returns the empty goal (always succeeds, no effect).
func TrueGoal() Goal { return ast.True{} }

// SeqGoal composes goals sequentially (the paper's ⊗).
func SeqGoal(goals ...Goal) Goal { return ast.NewSeq(goals...) }

// ConcGoal composes goals concurrently (the paper's |).
func ConcGoal(goals ...Goal) Goal { return ast.NewConc(goals...) }

// IsoGoal wraps a goal in the isolation modality (the paper's ⊙).
func IsoGoal(g Goal) Goal { return &ast.Iso{Body: g} }

// CallGoal invokes a derived predicate (or queries a base relation — the
// distinction is resolved against the program at execution time).
func CallGoal(a Atom) Goal { return &ast.Lit{Op: ast.OpCall, Atom: a} }

// QueryGoal tests tuple membership in a base relation.
func QueryGoal(a Atom) Goal { return &ast.Lit{Op: ast.OpQuery, Atom: a} }

// InsGoal inserts a tuple (arguments must be ground when it executes).
func InsGoal(a Atom) Goal { return &ast.Lit{Op: ast.OpIns, Atom: a} }

// DelGoal deletes a tuple (arguments must be ground when it executes).
func DelGoal(a Atom) Goal { return &ast.Lit{Op: ast.OpDel, Atom: a} }

// EmptyGoal tests that relation pred holds no tuples.
func EmptyGoal(pred string) Goal { return &ast.Empty{Pred: pred} }

// Sym returns a symbolic constant term.
func Sym(name string) Term { return term.NewSym(name) }

// Int returns an integer constant term.
func Int(v int64) Term { return term.NewInt(v) }

// Str returns a string constant term.
func Str(s string) Term { return term.NewStr(s) }

// NewAtom builds an atom from a predicate and arguments.
func NewAtom(pred string, args ...Term) Atom { return term.NewAtom(pred, args...) }

// Parse parses a TD program (facts, rules, and ?- query directives).
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// ParseFile parses the TD program in the named file.
func ParseFile(path string) (*Program, error) { return parser.ParseFile(path) }

// MustParse is Parse that panics on error.
func MustParse(src string) *Program { return parser.MustParse(src) }

// ParseGoal parses a standalone goal such as a transaction invocation.
// Pass prog.VarHigh as startVar so goal variables do not collide with
// program variables.
func ParseGoal(src string, startVar int64) (Goal, int64, error) {
	return parser.ParseGoal(src, startVar)
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return db.New() }

// DatabaseFor builds the initial database from a program's facts.
func DatabaseFor(p *Program) (*Database, error) { return db.FromFacts(p.Facts) }

// Freeze snapshots a database into an immutable, O(1)-forkable value.
func Freeze(d *Database) FrozenDatabase { return db.FreezeDB(d) }

// OpenStore opens (or recovers) a durable database: snapshot + write-ahead
// log. See db.Store for the checkpointing API.
func OpenStore(snapshotPath, walPath string) (*Store, error) {
	return db.OpenStore(snapshotPath, walPath)
}

// NewEngine builds a proof-theoretic engine with the given options
// (zero-value limit fields take defaults).
func NewEngine(p *Program, opts EngineOptions) *Engine { return engine.New(p, opts) }

// NewDefaultEngine builds an engine with pruning on and tracing off.
func NewDefaultEngine(p *Program) *Engine { return engine.NewDefault(p) }

// NewSimulator builds an operational simulator.
func NewSimulator(p *Program, opts SimOptions) *Simulator { return sim.New(p, opts) }

// Classify statically places a program in the paper's complexity
// landscape.
func Classify(p *Program) FragmentReport { return fragments.Analyze(p) }

// ClassifyGoal classifies a program together with a top-level goal (a
// concurrent goal over a sequential rulebase changes the fragment — the
// Corollary 4.6 situation).
func ClassifyGoal(p *Program, g Goal) FragmentReport { return fragments.AnalyzeGoal(p, g) }

// CheckSafety statically flags updates and builtins that may execute with
// unbound variables.
func CheckSafety(p *Program) []SafetyIssue { return ast.CheckSafety(p) }

// Vet runs the tdvet static analyzer: position-aware, clause- and
// literal-granular lints (safety, recursion through '|', dead clauses,
// never-committing bodies, ...) plus the fragment classification. Use
// EngineOptions.Vet to make an engine reject error-severity programs at
// load time.
func Vet(p *Program) *VetReport { return analysis.Vet(p) }

// VetSource parses src and vets the program.
func VetSource(src string) (*VetReport, error) { return analysis.VetSource(src) }

// Plan runs the tdplan static planner: interprocedural adornment analysis
// from the program's query entry points, semantics-preserving literal
// reordering per rule body and adornment, and a tabling-safety certificate
// per derived predicate. Use EngineOptions.Plan to have an engine apply
// the reordered bodies at load time.
func Plan(p *Program) *PlanReport { return analysis.Plan(p) }

// PlanSource parses src and plans the program.
func PlanSource(src string) (*PlanReport, error) { return analysis.PlanSource(src) }

// Run is the one-shot convenience: parse src, build the database from its
// facts, prove goal, and return the result together with the final
// database (the initial database when the goal fails).
func Run(src, goal string) (*Result, *Database, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	g, _, err := ParseGoal(goal, prog.VarHigh)
	if err != nil {
		return nil, nil, err
	}
	d, err := DatabaseFor(prog)
	if err != nil {
		return nil, nil, err
	}
	res, err := NewDefaultEngine(prog).Prove(g, d)
	if err != nil {
		return nil, d, err
	}
	return res, d, nil
}

// Verification facade (package verify): exhaustive analysis over ALL
// execution paths of a goal.
type (
	// InvariantResult reports whether a property holds in every reachable
	// database state.
	InvariantResult = verify.InvariantResult
	// SerializableResult reports whether concurrent outcomes all match
	// some serial order.
	SerializableResult = verify.SerializableResult
)

// CheckInvariant explores every execution path of goal from d and checks
// inv after every database change (and on the initial state).
func CheckInvariant(p *Program, goal Goal, d *Database, inv func(*Database) error, opts EngineOptions) (*InvariantResult, error) {
	return verify.Invariant(p, goal, d, inv, opts)
}

// ReachableFinals returns the distinct final databases of goal's
// committing executions.
func ReachableFinals(p *Program, goal Goal, d *Database, opts EngineOptions) ([]*Database, error) {
	return verify.Finals(p, goal, d, opts)
}

// CheckSerializable decides whether the concurrent composition of txns
// reaches only outcomes some serial order also reaches.
func CheckSerializable(p *Program, txns []Goal, d *Database, opts EngineOptions) (*SerializableResult, error) {
	return verify.Serializable(p, txns, d, opts)
}

// Simulate is the one-shot operational counterpart of Run.
func Simulate(src, goal string, opts SimOptions) (*SimResult, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	g, _, err := ParseGoal(goal, prog.VarHigh)
	if err != nil {
		return nil, err
	}
	d, err := DatabaseFor(prog)
	if err != nil {
		return nil, err
	}
	return NewSimulator(prog, opts).Run(g, d), nil
}
