package td_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	td "repro"
)

const bank = `
	account(alice, 100).
	account(bob, 50).
	withdraw(Amt, A) :- account(A, B), B >= Amt, del.account(A, B),
	                    sub(B, Amt, C), ins.account(A, C).
	deposit(Amt, A)  :- account(A, B), del.account(A, B),
	                    add(B, Amt, C), ins.account(A, C).
	transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`

func ExampleRun() {
	res, final, err := td.Run(bank, `transfer(30, alice, bob)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("committed:", res.Success)
	fmt.Print(final)
	// Output:
	// committed: true
	// account(alice, 70).
	// account(bob, 80).
}

func ExampleRun_abort() {
	// Example 2.2 of the paper: the failing withdraw aborts the whole
	// nested transaction; the database is unchanged.
	res, final, err := td.Run(bank, `transfer(999, alice, bob)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("committed:", res.Success)
	fmt.Print(final)
	// Output:
	// committed: false
	// account(alice, 100).
	// account(bob, 50).
}

func ExampleClassify() {
	prog := td.MustParse(`
		drain :- todo(X), del.todo(X), ins.done(X), drain.
		drain :- empty.todo.
	`)
	report := td.Classify(prog)
	fmt.Println(report.Fragment)
	// Output:
	// fully bounded TD
}

func TestRunBindings(t *testing.T) {
	res, _, err := td.Run(`tel(mary, 1234).`, `tel(mary, N)`)
	if err != nil || !res.Success {
		t.Fatalf("run: %v %v", err, res)
	}
	if res.Bindings["N"].String() != "1234" {
		t.Fatalf("N = %v", res.Bindings["N"])
	}
}

func TestRunParseErrors(t *testing.T) {
	if _, _, err := td.Run(`p(X).`, `p`); err == nil {
		t.Fatal("bad program accepted")
	}
	if _, _, err := td.Run(`p(a).`, `p(`); err == nil {
		t.Fatal("bad goal accepted")
	}
}

func TestSimulateOneShot(t *testing.T) {
	res, err := td.Simulate(`
		producer :- ins.msg(hello).
		consumer :- msg(M), ins.got(M).
	`, `producer | consumer`, td.SimOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("sim failed: %v", res.Err)
	}
	if res.Final.Count("got", 1) != 1 {
		t.Fatalf("message lost:\n%s", res.Final)
	}
}

func TestEngineSolutionsThroughFacade(t *testing.T) {
	prog := td.MustParse(`p(a). p(b).`)
	g, _, err := td.ParseGoal(`p(X)`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	d, err := td.DatabaseFor(prog)
	if err != nil {
		t.Fatal(err)
	}
	sols, _, err := td.NewDefaultEngine(prog).Solutions(g, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range sols {
		got = append(got, s.Bindings["X"].String())
	}
	sort.Strings(got)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("solutions = %v", got)
	}
}

func TestCheckSafetyFacade(t *testing.T) {
	prog := td.MustParse(`bad :- ins.p(X).`)
	if issues := td.CheckSafety(prog); len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
}

func TestClassifyGoalFacade(t *testing.T) {
	prog := td.MustParse(`
		stack :- cmd(X), del.cmd(X), hold(X), stack.
		stack :- empty.cmd.
		hold(X) :- cmd(Y), del.cmd(Y), hold(Y), hold(X).
		hold(X) :- done.
	`)
	g, _, err := td.ParseGoal(`stack | stack | stack`, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	if r := td.ClassifyGoal(prog, g); r.Fragment != td.Full {
		t.Fatalf("fragment = %v, want Full", r.Fragment)
	}
	if r := td.Classify(prog); r.Fragment != td.Sequential {
		t.Fatalf("fragment = %v, want Sequential", r.Fragment)
	}
}

func TestFragmentConstantsOrdered(t *testing.T) {
	if !(td.NonRecursive < td.InsOnly && td.InsOnly < td.FullyBounded &&
		td.FullyBounded < td.Sequential && td.Sequential < td.Full) {
		t.Fatal("fragment constants out of order")
	}
}

func TestProgrammaticGoals(t *testing.T) {
	prog := td.MustParse(`account(alice, 100).`)
	g := td.SeqGoal(
		td.QueryGoal(td.NewAtom("account", td.Sym("alice"), td.Int(100))),
		td.DelGoal(td.NewAtom("account", td.Sym("alice"), td.Int(100))),
		td.InsGoal(td.NewAtom("account", td.Sym("alice"), td.Int(70))),
		td.EmptyGoal("audit"),
	)
	d, err := td.DatabaseFor(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := td.NewDefaultEngine(prog).Prove(g, d)
	if err != nil || !res.Success {
		t.Fatalf("programmatic goal failed: %v %v", err, res)
	}
	if !d.Contains("account", []td.Term{td.Sym("alice"), td.Int(70)}) {
		t.Fatalf("final db wrong:\n%s", d)
	}

	// Concurrent + isolated composition, with a call resolved against the
	// program.
	prog2 := td.MustParse(`
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
	`)
	bump := td.CallGoal(td.NewAtom("bump"))
	g2 := td.ConcGoal(td.IsoGoal(bump), td.IsoGoal(bump))
	d2, _ := td.DatabaseFor(prog2)
	res2, err := td.NewDefaultEngine(prog2).Prove(g2, d2)
	if err != nil || !res2.Success {
		t.Fatal(err, res2)
	}
	if !d2.Contains("counter", []td.Term{td.Int(2)}) {
		t.Fatalf("isolated bumps wrong:\n%s", d2)
	}
	if td.TrueGoal().String() != "true" {
		t.Fatal("TrueGoal wrong")
	}
}

func TestFacadeCoverage(t *testing.T) {
	// ParseFile on testdata.
	prog, err := td.ParseFile("testdata/bank.td")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) == 0 || len(prog.Queries) != 1 {
		t.Fatalf("bank.td parse: %d rules, %d queries", len(prog.Rules), len(prog.Queries))
	}
	if _, err := td.ParseFile("testdata/does_not_exist.td"); err == nil {
		t.Fatal("missing file accepted")
	}
	// Simulate error paths.
	if _, err := td.Simulate("p(", "p", td.SimOptions{}); err == nil {
		t.Fatal("bad program accepted by Simulate")
	}
	if _, err := td.Simulate("p(a).", "p(", td.SimOptions{}); err == nil {
		t.Fatal("bad goal accepted by Simulate")
	}
	// ReachableFinals facade.
	prog2 := td.MustParse(`
		pick :- item(I), del.item(I).
		item(a). item(b).
	`)
	g, _, err := td.ParseGoal("pick", prog2.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := td.DatabaseFor(prog2)
	finals, err := td.ReachableFinals(prog2, g, d, td.EngineOptions{LoopCheck: true, Table: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != 2 {
		t.Fatalf("finals = %d", len(finals))
	}
	// Str constructor.
	if td.Str("x y").String() != `"x y"` {
		t.Fatal("Str wrong")
	}
}

func TestFreezeAndStoreFacades(t *testing.T) {
	d := td.NewDatabase()
	d.Insert("p", []td.Term{td.Sym("a")})
	fz := td.Freeze(d)
	fz2 := fz.Insert("p", []td.Term{td.Sym("b")})
	if fz.Size() != 1 || fz2.Size() != 2 {
		t.Fatalf("freeze sizes: %d %d", fz.Size(), fz2.Size())
	}
	dir := t.TempDir()
	s, err := td.OpenStore(dir+"/s.snap", dir+"/s.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("q", []td.Term{td.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := td.OpenStore(dir+"/s.snap", dir+"/s.wal")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.DB.Contains("q", []td.Term{td.Int(1)}) {
		t.Fatal("store did not recover")
	}
}
