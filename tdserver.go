package td

// Transaction-service facade (package server): a concurrent multi-client
// transaction service over the TD engine. Clients run TD goals as
// serializable transactions against a shared database; commits are
// validated optimistically and made durable through the write-ahead log
// before acknowledgment. See docs/SERVER.md for the wire protocol.

import (
	"net"

	"repro/internal/obs"
	"repro/internal/server"
)

type (
	// Server is the shared transaction service. Create one with NewServer,
	// expose it with Server.Listen or Server.InProcClient.
	Server = server.Server
	// ServerOptions configure a Server (zero values take defaults).
	ServerOptions = server.Options
	// ServerClient is a synchronous client for a Server.
	ServerClient = server.Client
	// ServerStats is a point-in-time snapshot of server counters.
	ServerStats = server.StatsSnapshot
	// ServerError is a protocol-level failure (inspect its Code).
	ServerError = server.Error
	// ServerExecResult reports a one-shot EXEC transaction.
	ServerExecResult = server.ExecResult
	// ServerCommitDelta is one committed transaction's write set as
	// reported by the CHANGES changefeed (see docs/PERSISTENCE.md).
	ServerCommitDelta = server.CommitDelta
	// ServerWireOp is a single insert/delete within a ServerCommitDelta.
	ServerWireOp = server.WireOp
	// ServerPredProfile is one predicate's prover-time attribution, as
	// reported by the PROFILE verb and ServerStats.ProverProfile.
	ServerPredProfile = server.PredProfile
	// ServerSLOSnapshot is one configured latency objective's state.
	ServerSLOSnapshot = server.SLOSnapshot
	// ServerMemoStatus is a session's tabling state and the shared memo
	// store's counters, as reported by the TABLE verb.
	ServerMemoStatus = server.MemoStatus
	// ServerMemoPredStat is one tabled predicate's hit/miss counters, as
	// reported by TABLE and ServerStats.MemoPreds.
	ServerMemoPredStat = server.MemoPredStat
	// WideEvent is a sampled transaction's one-line structured summary.
	WideEvent = obs.WideEvent
	// WideSink receives wide events (obs.OpenJSONL satisfies it).
	WideSink = obs.WideSink
	// Span is one node of a structured execution trace (see docs/OBSERVABILITY.md).
	Span = obs.Span
	// SpanSink receives span trees of traced transactions.
	SpanSink = obs.Sink
	// MetricsRegistry holds metric series and renders Prometheus text.
	MetricsRegistry = obs.Registry
)

// NewServer builds a transaction service. With both SnapshotPath and
// WALPath set it recovers committed state and runs durably; with neither
// it runs in memory.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// DialServer connects to a tdserver listening at addr.
func DialServer(addr string) (*ServerClient, error) { return server.Dial(addr) }

// NewServerClient wraps an established connection (e.g. a net.Pipe end
// being served by Server.ServeConn).
func NewServerClient(conn net.Conn) *ServerClient { return server.NewClient(conn) }

// IsConflict reports whether err is a commit-validation conflict — the
// retryable loser of optimistic concurrency control.
func IsConflict(err error) bool { return server.IsConflict(err) }

// IsNoProof reports whether err means no execution of the goal commits.
func IsNoProof(err error) bool { return server.IsNoProof(err) }
