# Development targets for the Transaction Datalog engine.

GO ?= go

.PHONY: all build test test-short race cover bench suite suite-quick examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -short -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# The full reproduction suite (EXPERIMENTS.md tables).
suite:
	$(GO) run ./cmd/tdbench

suite-quick:
	$(GO) run ./cmd/tdbench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/banking
	$(GO) run ./examples/genomelab
	$(GO) run ./examples/turing
	$(GO) run ./examples/boundedtd
	$(GO) run ./examples/verification
	$(GO) run ./examples/idioms

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
