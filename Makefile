# Development targets for the Transaction Datalog engine.

GO ?= go

.PHONY: all build test test-short race check cover bench suite suite-quick examples demo fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: static checks plus the race-instrumented test run.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

cover:
	$(GO) test -short -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# The full reproduction suite (EXPERIMENTS.md tables).
suite:
	$(GO) run ./cmd/tdbench

suite-quick:
	$(GO) run ./cmd/tdbench -quick

# Build and smoke-run every example program.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d; \
	done

# The tdserver acceptance demo: a durable server, 8 concurrent clients
# committing transfers, then a kill-and-restart recovery check.
demo:
	$(GO) build -o /tmp/td-demo-server ./cmd/tdserver
	@set -e; dir=$$(mktemp -d); \
	/tmp/td-demo-server serve -addr 127.0.0.1:7391 -snap $$dir/db.gob -wal $$dir/db.wal & \
	pid=$$!; sleep 0.5; \
	/tmp/td-demo-server bank -addr 127.0.0.1:7391 -clients 8 -txns 50; \
	kill -9 $$pid; sleep 0.3; \
	echo "== restart: recovering from WAL"; \
	/tmp/td-demo-server serve -addr 127.0.0.1:7391 -snap $$dir/db.gob -wal $$dir/db.wal & \
	pid=$$!; sleep 0.5; \
	/tmp/td-demo-server bank -addr 127.0.0.1:7391 -clients 8 -txns 25; \
	kill $$pid; rm -rf $$dir

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
