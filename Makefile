# Development targets for the Transaction Datalog engine.

GO ?= go

.PHONY: all build test test-short race check cover bench bench-all profile suite suite-quick examples demo fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: static checks, the full test suite, and the
# race-instrumented run of the concurrency-heavy packages (the server and
# the database, which the interner and scan caches sit under).
check:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/server ./internal/db ./internal/term

cover:
	$(GO) test -short -cover ./...

# Fixed-iteration run of the hot-path benchmarks, recorded as the "post"
# section of BENCH_PR2.json (the frozen "baseline" section is preserved by
# the merge). Fixed -benchtime=3000x keeps iteration counts comparable
# across runs.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkProverTransfer$$|BenchmarkDBInsertDelete$$|BenchmarkSimLab$$|BenchmarkServerThroughput' \
		-benchtime=3000x -benchmem . | $(GO) run ./cmd/benchjson -label post -merge BENCH_PR2.json > BENCH_PR2.json.tmp
	mv BENCH_PR2.json.tmp BENCH_PR2.json
	@cat BENCH_PR2.json

# Every benchmark, default benchtime (exploratory; nothing recorded).
bench-all:
	$(GO) test -bench=. -benchmem .

# Run the bank load generator under the CPU profiler against a throwaway
# in-memory server; profiles land in /tmp/td-profile/.
profile:
	$(GO) build -o /tmp/td-profile-server ./cmd/tdserver
	@set -e; mkdir -p /tmp/td-profile; \
	/tmp/td-profile-server serve -addr 127.0.0.1:7392 & \
	pid=$$!; sleep 0.5; \
	/tmp/td-profile-server bank -addr 127.0.0.1:7392 -clients 8 -txns 200 \
		-cpuprofile /tmp/td-profile/bank.cpu.pprof -memprofile /tmp/td-profile/bank.mem.pprof; \
	kill $$pid; \
	echo "profiles written: /tmp/td-profile/bank.cpu.pprof /tmp/td-profile/bank.mem.pprof"; \
	echo "inspect with: go tool pprof -top /tmp/td-profile/bank.cpu.pprof"

# The full reproduction suite (EXPERIMENTS.md tables).
suite:
	$(GO) run ./cmd/tdbench

suite-quick:
	$(GO) run ./cmd/tdbench -quick

# Build and smoke-run every example program.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d; \
	done

# The tdserver acceptance demo: a durable server, 8 concurrent clients
# committing transfers, then a kill-and-restart recovery check.
demo:
	$(GO) build -o /tmp/td-demo-server ./cmd/tdserver
	@set -e; dir=$$(mktemp -d); \
	/tmp/td-demo-server serve -addr 127.0.0.1:7391 -snap $$dir/db.gob -wal $$dir/db.wal & \
	pid=$$!; sleep 0.5; \
	/tmp/td-demo-server bank -addr 127.0.0.1:7391 -clients 8 -txns 50; \
	kill -9 $$pid; sleep 0.3; \
	echo "== restart: recovering from WAL"; \
	/tmp/td-demo-server serve -addr 127.0.0.1:7391 -snap $$dir/db.gob -wal $$dir/db.wal & \
	pid=$$!; sleep 0.5; \
	/tmp/td-demo-server bank -addr 127.0.0.1:7391 -clients 8 -txns 25; \
	kill $$pid; rm -rf $$dir

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
