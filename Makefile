# Development targets for the Transaction Datalog engine.

GO ?= go

.PHONY: all build test test-short race check cover bench bench-compare bench-all recovery-bench obs-demo top-demo profile suite suite-quick examples demo fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: static checks (go vet + tdvet), the full test suite,
# and the race-instrumented run of the concurrency-heavy packages (the
# server and the database, which the interner and scan caches sit under,
# plus the lock-free metrics/histogram layer). The group-commit and hammer
# tests get an explicit race-instrumented pass with a longer count: they
# exercise the commit pipeline's cross-goroutine handoffs (flusher,
# waiters, lock-free validation) far harder than the rest of the suite.
check: vet
	$(GO) test ./...
	$(GO) test -race ./internal/server ./internal/db ./internal/term ./internal/obs ./internal/history
	$(GO) test -race -count=2 -run 'TestGroupCommit|TestConcurrentTransfers|TestShardedSerializabilityHammer|TestMemoTableHammer' ./internal/server ./internal/engine
	$(GO) test -race -count=2 -run 'TestCheckpoint|TestWALv1|TestASOF|TestPersistentLSNs|TestCommitsFlowDuringCheckpoint' ./internal/db ./internal/server

cover:
	$(GO) test -short -cover ./...

# Fixed-iteration run of the hot-path benchmarks, recorded as
# BENCH_PR10.json in three sections: "disabled" (observability instrumented
# but no tracing) — which includes the sharded-store workloads, disjoint
# (every client in a private commit lane) and contended (shared accounts,
# mostly cross-lane), the planned-vs-textual prover pair added with PR 9,
# and the tabled-vs-untabled repeated-analyze pair added with PR 10 —
# "durable" (real WAL + fsync per acknowledged commit, including
# the stage-sampled variant added with PR 8), and "enabled" (full
# structured tracing into a sink). Durable throughput runs time-based
# (fsync cost varies too much across machines for a fixed iteration
# count). Fixed-iteration sections run -count=10, the durable section
# -count=5, and benchjson records the median repetition per benchmark:
# this shared VM's scheduling/fsync noise floor is wider than the
# bench-compare gate, and the median is the robust estimator that keeps
# one stall or one turbo window out of the committed record. benchjson -o
# writes each section via tmp+rename, so an interrupted recording never
# leaves a truncated artifact (the PR 8 recording died mid-pipe and left
# an empty file; the old `> tmp && mv` chain could not survive a failed
# producer).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkProverTransfer$$|BenchmarkProverPlanned$$|BenchmarkProverTabled$$|BenchmarkProverTabledChain$$|BenchmarkDBInsertDelete$$|BenchmarkSimLab$$|BenchmarkServerThroughput$$|BenchmarkServerThroughputDisjoint$$|BenchmarkServerThroughputContended$$' \
		-benchtime=10000x -count=10 -benchmem . | $(GO) run ./cmd/benchjson -label disabled -merge BENCH_PR10.json -o BENCH_PR10.json
	$(GO) test -run '^$$' -bench 'BenchmarkServerThroughputDurable$$|BenchmarkServerThroughputDurableSampled$$|BenchmarkServerThroughputDisjointDurable$$|BenchmarkServerThroughputContendedDurable$$' \
		-benchtime=4s -count=5 -benchmem . | $(GO) run ./cmd/benchjson -label durable -merge BENCH_PR10.json -o BENCH_PR10.json
	$(GO) test -run '^$$' -bench 'BenchmarkProverTransferTraced$$|BenchmarkServerThroughputTraced$$' \
		-benchtime=10000x -count=10 -benchmem . | $(GO) run ./cmd/benchjson -label enabled -merge BENCH_PR10.json -o BENCH_PR10.json
	@cat BENCH_PR10.json

# Bounded-recovery numbers, recorded as BENCH_PR6.json: cold-start time
# over growing WAL histories, with and without an incremental checkpoint
# near the tail. The claim the JSON captures: with a checkpoint, ns/op
# stays flat as the history grows (replay is the constant post-checkpoint
# suffix); without one it grows linearly.
recovery-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRecovery' -benchtime=10x . \
		| $(GO) run ./cmd/benchjson -label recovery > BENCH_PR6.json
	@cat BENCH_PR6.json

# Gate this PR's committed numbers against the previous PR's: a section's
# geometric-mean ns/op ratio more than 10% slower fails the target, while
# single-benchmark regressions are printed but informational — identical
# code re-recorded minutes apart swings 10%+ on individual contended
# benchmarks on this VM, so only a systematic whole-section slowdown is
# actionable. The baseline is BENCH_PR9.json; comparing adjacent PRs
# recorded close in time keeps host drift (fsync latency, allocator/GC
# throughput vary across recording days) out of the code delta. The tabled
# benchmarks are new with PR 10, so the section geomean compares the
# benchmarks both records share.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_PR9.json BENCH_PR10.json

# Span-tree smoke test: prove the concurrent two-workflow goal with tracing
# on and check that the rendered tree shows the expected structure — iso
# sub-transactions inside concurrent branches, and the workflows' writes.
obs-demo:
	@set -e; out=$$($(GO) run ./cmd/tdlog -trace -goal "iso(flow(w1)) | iso(flow(w2))" testdata/workflow.td); \
	echo "$$out"; \
	for want in "iso" "branch" "ins.prepped(w1)" "ins.analyzed(w1)" "ins.recorded(w2)" "ins.finished(w2)"; do \
		echo "$$out" | grep -q "$$want" || { echo "obs-demo: span tree missing $$want" >&2; exit 1; }; \
	done; \
	echo "obs-demo: span tree shows all expected labels"

# Stage-attribution smoke test: an in-memory server with every-transaction
# sampling, SLOs, and prover profiling takes a bank load; tdtop -once must
# render the stage table, SLO burn, and prover profile, and tdlog -wide
# must tabulate the recorded wide events.
top-demo:
	$(GO) build -o /tmp/td-top-server ./cmd/tdserver
	$(GO) build -o /tmp/td-top ./cmd/tdtop
	@set -e; dir=$$(mktemp -d); \
	/tmp/td-top-server serve -addr 127.0.0.1:7393 -obs.sample 1 -obs.profile \
		-obs.slo "commit:5ms:0.999,fsync:20ms:0.99" -obs.jsonl $$dir/obs.jsonl & \
	pid=$$!; sleep 0.5; \
	/tmp/td-top-server bank -addr 127.0.0.1:7393 -clients 4 -txns 50; \
	out=$$(/tmp/td-top -addr 127.0.0.1:7393 -once); \
	echo "$$out"; \
	for want in "fsync_wait" "slo commit" "transfer" "commits/sec"; do \
		echo "$$out" | grep -q "$$want" || { echo "top-demo: tdtop output missing $$want" >&2; kill $$pid; exit 1; }; \
	done; \
	kill $$pid; \
	$(GO) run ./cmd/tdlog -wide $$dir/obs.jsonl | tail -2; \
	$(GO) run ./cmd/tdlog -wide $$dir/obs.jsonl | grep -q "transaction(s)" || { echo "top-demo: tdlog -wide saw no events" >&2; exit 1; }; \
	rm -rf $$dir; \
	echo "top-demo: stage attribution visible end to end"

# Every benchmark, default benchtime (exploratory; nothing recorded).
bench-all:
	$(GO) test -bench=. -benchmem .

# Run the bank load generator under the CPU profiler against a throwaway
# in-memory server; profiles land in /tmp/td-profile/.
profile:
	$(GO) build -o /tmp/td-profile-server ./cmd/tdserver
	@set -e; mkdir -p /tmp/td-profile; \
	/tmp/td-profile-server serve -addr 127.0.0.1:7392 & \
	pid=$$!; sleep 0.5; \
	/tmp/td-profile-server bank -addr 127.0.0.1:7392 -clients 8 -txns 200 \
		-cpuprofile /tmp/td-profile/bank.cpu.pprof -memprofile /tmp/td-profile/bank.mem.pprof; \
	kill $$pid; \
	echo "profiles written: /tmp/td-profile/bank.cpu.pprof /tmp/td-profile/bank.mem.pprof"; \
	echo "inspect with: go tool pprof -top /tmp/td-profile/bank.cpu.pprof"

# The full reproduction suite (EXPERIMENTS.md tables).
suite:
	$(GO) run ./cmd/tdbench

suite-quick:
	$(GO) run ./cmd/tdbench -quick

# Build and smoke-run every example program (directories without Go files,
# like examples/programs/ with its plain .td corpus, are skipped).
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		ls $$d*.go >/dev/null 2>&1 || continue; \
		echo "== $$d"; \
		$(GO) run ./$$d; \
	done

# The tdserver acceptance demo: a durable server, 8 concurrent clients
# committing transfers, then a kill-and-restart recovery check.
demo:
	$(GO) build -o /tmp/td-demo-server ./cmd/tdserver
	@set -e; dir=$$(mktemp -d); \
	/tmp/td-demo-server serve -addr 127.0.0.1:7391 -snap $$dir/db.gob -wal $$dir/db.wal & \
	pid=$$!; sleep 0.5; \
	/tmp/td-demo-server bank -addr 127.0.0.1:7391 -clients 8 -txns 50; \
	kill -9 $$pid; sleep 0.3; \
	echo "== restart: recovering from WAL"; \
	/tmp/td-demo-server serve -addr 127.0.0.1:7391 -snap $$dir/db.gob -wal $$dir/db.wal & \
	pid=$$!; sleep 0.5; \
	/tmp/td-demo-server bank -addr 127.0.0.1:7391 -clients 8 -txns 25; \
	kill $$pid; rm -rf $$dir

fmt:
	gofmt -w .

# Static analysis: go vet over the Go code, tdvet (with warnings promoted
# to errors, and the tdplan planner exercised) over every shipped TD
# program. Intentional full-TD demonstrations carry % tdvet:ignore pragmas
# in the source. -plan under -q is silent on a clean corpus (plan
# diagnostics are info severity) but still runs the full adornment /
# reorder / certification pipeline, so a program the planner chokes on
# fails CI here rather than at server load.
TD_PROGRAMS := $(shell find testdata examples -name '*.td')

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/tdvet -plan -q -Werror $(TD_PROGRAMS)

clean:
	$(GO) clean ./...
