package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	td "repro"
)

// render over a fully populated snapshot shows every section: throughput,
// the stage table in pipeline order, lane balance, SLO state, and the
// prover profile sorted hottest-first.
func TestRenderFullSnapshot(t *testing.T) {
	prev := &td.ServerStats{Commits: 100, Conflicts: 10}
	cur := &td.ServerStats{
		Version: 220, DBSize: 42, UptimeMs: 60_000,
		SessionsOpen: 3, SessionsTotal: 9,
		Commits: 300, Conflicts: 20,
		CommitP50Us: 250, CommitP99Us: 4000,
		StageP50Us: map[string]int64{
			"parse": 10, "prove": 150, "validate": 5, "lane_wait": 2,
			"apply": 8, "wal_append": 12, "fsync_wait": 700, "ack": 9,
		},
		StageP99Us: map[string]int64{
			"parse": 30, "prove": 900, "validate": 15, "lane_wait": 40,
			"apply": 25, "wal_append": 60, "fsync_wait": 2500, "ack": 20,
		},
		Shards:             2,
		ShardCommits:       []int64{150, 150},
		CrossShardFraction: 0.25,
		SLOs: []td.ServerSLOSnapshot{
			{Name: "commit", ThresholdUs: 5000, Objective: 0.999, Good: 299, Total: 300, BurnRate: 3.33},
		},
		ProverProfile: map[string]td.ServerPredProfile{
			"transfer": {Calls: 300, Fanout: 600, TimeUs: 9000},
			"balance":  {Calls: 600, Fanout: 600, TimeUs: 1000},
		},
	}

	var out bytes.Buffer
	render(&out, cur, prev, 2*time.Second)
	body := out.String()
	for _, want := range []string{
		"version 220, 42 tuples",
		"sessions 3 open / 9 total",
		"throughput (interval): 100 commits/sec, 5 conflicts/sec",
		"commit latency: p50=250us p99=4000us",
		"fsync_wait", "wal_append",
		"lanes (2): 0:50%  1:50%   cross-shard 25.0%",
		"slo commit", "burn 3.33", "BREACH",
		"predicate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("render missing %q:\n%s", want, body)
		}
	}
	// Stage rows follow pipeline order, not map order.
	if strings.Index(body, "prove") > strings.Index(body, "fsync_wait") {
		t.Errorf("stage rows out of pipeline order:\n%s", body)
	}
	// The slowest stage owns the longest bar.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "fsync_wait") && !strings.Contains(line, strings.Repeat("#", 24)) {
			t.Errorf("dominant stage has no full bar: %q", line)
		}
	}
	// Hottest predicate sorts first.
	if strings.Index(body, "transfer") > strings.Index(body, "balance") {
		t.Errorf("prover rows not sorted by time:\n%s", body)
	}
}

// A bare snapshot (no sampling, no shards, no SLOs, no profile) renders only
// the always-on header and throughput — no empty section stubs.
func TestRenderMinimalSnapshot(t *testing.T) {
	var out bytes.Buffer
	render(&out, &td.ServerStats{Version: 1, UptimeMs: 1000, Commits: 5}, nil, 0)
	body := out.String()
	if !strings.Contains(body, "throughput (lifetime): 5 commits/sec") {
		t.Errorf("lifetime throughput missing:\n%s", body)
	}
	for _, absent := range []string{"stage", "lanes", "slo", "predicate"} {
		if strings.Contains(body, absent) {
			t.Errorf("empty section %q rendered:\n%s", absent, body)
		}
	}
}

// run -once against a live server prints a single frame without clearing
// the screen.
func TestRunOnce(t *testing.T) {
	srv, err := td.NewServer(td.ServerOptions{
		Program:     "account(a, 100).",
		StageSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(&out, addr.String(), time.Second, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "tdtop — version") {
		t.Errorf("no frame rendered:\n%s", out.String())
	}
	if strings.Contains(out.String(), "\x1b[2J") {
		t.Errorf("-once cleared the screen:\n%q", out.String())
	}
}
