// Command tdtop is a refresh-loop terminal view of a running tdserver —
// "top" for the transaction pipeline. Each tick it fetches STATS over the
// wire protocol and renders throughput, the sampled per-stage latency
// quantiles, per-lane commit balance, SLO burn rates, the memo-table hit
// rate, and the hottest profiled predicates.
//
// Usage:
//
//	tdtop [-addr :7090] [-interval 2s] [-once]
//
// Stage quantiles appear only when the server samples transactions
// (-obs.sample or -obs.jsonl), the prover section only when something
// profiled (-obs.profile or the PROFILE verb), the memo section only when
// tabling saw traffic (-engine.table or the TABLE verb), and the SLO section
// only when objectives are configured (-obs.slo). See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	td "repro"
)

// stageOrder is the pipeline order of the server's stage taxonomy.
var stageOrder = []string{"parse", "prove", "validate", "lane_wait", "apply", "wal_append", "fsync_wait", "ack"}

func main() {
	var (
		addr     = flag.String("addr", ":7090", "server address")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one snapshot and exit")
	)
	flag.Parse()
	if err := run(os.Stdout, *addr, *interval, *once); err != nil {
		fmt.Fprintln(os.Stderr, "tdtop:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, addr string, interval time.Duration, once bool) error {
	cl, err := td.DialServer(addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	st, err := cl.Stats()
	if err != nil {
		return err
	}
	if once {
		render(w, st, nil, 0)
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev, prevAt := st, time.Now()
	fmt.Fprint(w, "\x1b[2J") // clear once; each frame repaints from the top
	render(w, st, nil, 0)
	for {
		select {
		case <-sig:
			return nil
		case <-tick.C:
			cur, err := cl.Stats()
			if err != nil {
				return err
			}
			now := time.Now()
			fmt.Fprint(w, "\x1b[2J")
			render(w, cur, prev, now.Sub(prevAt))
			prev, prevAt = cur, now
		}
	}
}

// render paints one frame. With a previous snapshot, rates are computed over
// the elapsed interval; without one they are lifetime averages over the
// server's uptime.
func render(w io.Writer, cur, prev *td.ServerStats, dt time.Duration) {
	fmt.Fprint(w, "\x1b[H")
	fmt.Fprintf(w, "tdtop — version %d, %d tuples, uptime %s\n",
		cur.Version, cur.DBSize, (time.Duration(cur.UptimeMs) * time.Millisecond).Round(time.Second))
	fmt.Fprintf(w, "sessions %d open / %d total\n\n", cur.SessionsOpen, cur.SessionsTotal)

	commits, conflicts, window := cur.Commits, cur.Conflicts, time.Duration(cur.UptimeMs)*time.Millisecond
	label := "lifetime"
	if prev != nil && dt > 0 {
		commits, conflicts, window, label = cur.Commits-prev.Commits, cur.Conflicts-prev.Conflicts, dt, "interval"
	}
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(w, "throughput (%s): %.0f commits/sec, %.0f conflicts/sec\n",
		label, float64(commits)/secs, float64(conflicts)/secs)
	fmt.Fprintf(w, "commit latency: p50=%dus p99=%dus\n\n", cur.CommitP50Us, cur.CommitP99Us)

	if len(cur.StageP99Us) > 0 {
		fmt.Fprintf(w, "%-11s %9s %9s\n", "stage", "p50(us)", "p99(us)")
		for _, stage := range stageOrder {
			p99, ok := cur.StageP99Us[stage]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-11s %9d %9d  %s\n", stage, cur.StageP50Us[stage], p99, bar(p99, cur.StageP99Us))
		}
		fmt.Fprintln(w)
	}

	if cur.Shards > 1 {
		var total int64
		for _, n := range cur.ShardCommits {
			total += n
		}
		fmt.Fprintf(w, "lanes (%d): ", cur.Shards)
		for i, n := range cur.ShardCommits {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(n) / float64(total)
			}
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%d:%.0f%%", i, pct)
		}
		fmt.Fprintf(w, "   cross-shard %.1f%%\n\n", cur.CrossShardFraction*100)
	}

	for _, slo := range cur.SLOs {
		state := "ok"
		if slo.BurnRate > 1 {
			state = "BREACH"
		}
		fmt.Fprintf(w, "slo %-8s %d/%d within %dus (objective %g)  burn %.2f  %s\n",
			slo.Name, slo.Good, slo.Total, slo.ThresholdUs, slo.Objective, slo.BurnRate, state)
	}
	if len(cur.SLOs) > 0 {
		fmt.Fprintln(w)
	}

	if cur.MemoHits+cur.MemoMisses > 0 {
		hits, misses := cur.MemoHits, cur.MemoMisses
		memoLabel := "lifetime"
		if prev != nil && dt > 0 {
			hits, misses, memoLabel = cur.MemoHits-prev.MemoHits, cur.MemoMisses-prev.MemoMisses, "interval"
		}
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(w, "memo (%s): %.1f%% hit rate (%d/%d), %d entries, %dB, %d evictions\n",
			memoLabel, rate, hits, hits+misses, cur.MemoEntries, cur.MemoBytes, cur.MemoEvictions)
		preds := cur.MemoPreds
		if len(preds) > 5 {
			preds = preds[:5]
		}
		for _, p := range preds {
			fmt.Fprintf(w, "  %-20s hits %9d  misses %9d\n", p.Pred, p.Hits, p.Misses)
		}
		fmt.Fprintln(w)
	}

	if len(cur.ProverProfile) > 0 {
		type row struct {
			pred string
			p    td.ServerPredProfile
		}
		rows := make([]row, 0, len(cur.ProverProfile))
		for pred, p := range cur.ProverProfile {
			rows = append(rows, row{pred, p})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].p.TimeUs > rows[j].p.TimeUs })
		if len(rows) > 10 {
			rows = rows[:10]
		}
		fmt.Fprintf(w, "%-20s %9s %9s %9s\n", "predicate", "calls", "fanout", "time(us)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-20s %9d %9d %9d\n", r.pred, r.p.Calls, r.p.Fanout, r.p.TimeUs)
		}
	}
}

// bar renders a latency value proportionally to the slowest stage, so the
// dominant stage is visible at a glance.
func bar(v int64, all map[string]int64) string {
	var max int64
	for _, n := range all {
		if n > max {
			max = n
		}
	}
	if max <= 0 {
		return ""
	}
	n := int(v * 24 / max)
	return strings.Repeat("#", n)
}
