// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed and diffed.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson [-label post] [-merge old.json] [-o out.json]
//	go run ./cmd/benchjson -compare [-threshold 10] old.json new.json
//
// Each benchmark line becomes an object keyed by benchmark name with
// ns_per_op, bytes_per_op, allocs_per_op, iterations, and any extra custom
// metrics (e.g. commits/sec). When the same benchmark appears more than
// once (a `-count=N` run), the repetition with the median ns/op is kept.
// The median rather than the mean or minimum because shared-host noise is
// two-sided: steal/fsync stalls produce slow outliers and turbo phases
// produce fast ones, and min-of-N turns the recording into a race for the
// luckiest scheduling window while one stall poisons a mean. With -merge,
// the existing document's other
// labels are preserved and this run is added (or replaced) under -label:
// that is how BENCH_PR2.json keeps a frozen "baseline" section next to the
// current "post" numbers. With -o the finished document is written to FILE
// via a same-directory tmp file and rename, so a crashed or interrupted
// recording never truncates a committed artifact.
//
// With -compare, two committed documents are diffed instead: every
// benchmark under every label the two share gets a ns/op delta line, with
// individual regressions past -threshold marked. The exit status gates on
// the geometric mean of each label's ns/op ratios, not on any single
// benchmark: two recordings of identical code minutes apart can disagree
// by 10%+ on one contended scheduler- or fsync-bound benchmark, so a
// per-benchmark hard gate is flaky by construction, while a whole-section
// geomean shifted past the threshold needs a real, systematic slowdown.
// The command exits 1 when any shared label's geomean regresses by more
// than -threshold percent — wired as `make bench-compare` so a perf PR can
// gate on its predecessor's committed numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	label := flag.String("label", "post", "top-level key to store this run under")
	merge := flag.String("merge", "", "existing JSON document to merge into (other labels kept)")
	outFile := flag.String("o", "", "write the document to FILE via tmp+rename instead of stdout")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files: -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "ns/op regression threshold in percent for -compare")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold))
	}

	results, meta := parseBench(os.Stdin)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := map[string]json.RawMessage{}
	if *merge != "" {
		if raw, err := os.ReadFile(*merge); err == nil {
			if err := json.Unmarshal(raw, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *merge, err)
				os.Exit(1)
			}
		}
	}
	run := map[string]any{"env": meta, "benchmarks": results}
	enc, err := json.Marshal(run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc[*label] = enc

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *outFile == "" {
		fmt.Println(string(out))
		return
	}
	// Write-then-rename so an interrupted recording (the `go test` pipe
	// failing, the VM dying mid-write) can never leave a truncated or empty
	// committed artifact behind: the destination either keeps its previous
	// contents or atomically becomes the complete new document. With -merge
	// pointing at the same FILE this also makes repeated recording sections
	// safe to chain.
	tmp := *outFile + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, *outFile); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchDoc is the committed JSON document shape: label -> run.
type benchDoc map[string]struct {
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// runCompare diffs ns/op between two committed documents across every
// (label, benchmark) pair they share. Per-benchmark regressions past the
// threshold are marked but informational; the exit code gates on each
// label's geometric-mean ns/op ratio, which is robust to single-benchmark
// scheduler noise. Returns the process exit code: 0 clean, 1 when any
// shared label's geomean regressed past the threshold, 2 on usage or
// file errors.
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-threshold pct] old.json new.json")
		return 2
	}
	docs := make([]benchDoc, 2)
	for i, path := range args {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		if err := json.Unmarshal(raw, &docs[i]); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			return 2
		}
	}
	old, cur := docs[0], docs[1]

	var labels []string
	for label := range old {
		if _, ok := cur[label]; ok {
			labels = append(labels, label)
		}
	}
	sort.Strings(labels)

	shared, regressedLabels := 0, 0
	for _, label := range labels {
		var names []string
		for name, o := range old[label].Benchmarks {
			if _, ok := cur[label].Benchmarks[name]; ok && o.NsPerOp > 0 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		sumLog := 0.0
		for _, name := range names {
			o := old[label].Benchmarks[name]
			n := cur[label].Benchmarks[name]
			delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
			}
			fmt.Printf("%-14s %-50s %12.0f -> %12.0f ns/op  %+6.1f%%%s\n",
				label, name, o.NsPerOp, n.NsPerOp, delta, mark)
			sumLog += math.Log(n.NsPerOp / o.NsPerOp)
			shared++
		}
		if len(names) == 0 {
			continue
		}
		geo := (math.Exp(sumLog/float64(len(names))) - 1) * 100
		mark := ""
		if geo > threshold {
			mark = "  REGRESSION"
			regressedLabels++
		}
		fmt.Printf("%-14s %-50s %+6.1f%% geomean over %d benchmarks%s\n",
			label, "(section)", geo, len(names), mark)
	}
	if shared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: the two documents share no benchmarks")
		return 2
	}
	if regressedLabels > 0 {
		fmt.Printf("%d section geomean(s) regressed more than %.0f%%\n", regressedLabels, threshold)
		return 1
	}
	fmt.Printf("no section geomean regression beyond %.0f%% across %d shared benchmarks\n", threshold, shared)
	return 0
}

// parseBench reads go-test benchmark output, returning results keyed by
// benchmark name (with the -N GOMAXPROCS suffix kept, since throughput
// benchmarks are parallelism-sensitive) and the goos/goarch/cpu banner.
// Repeated names (a -count=N run) collapse to the median-ns/op repetition.
func parseBench(f *os.File) (map[string]benchResult, map[string]string) {
	reps := map[string][]benchResult{}
	meta := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, k+":"); ok {
				meta[k] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{Iterations: iters}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = int64(val)
			case "allocs/op":
				r.AllocsPerOp = int64(val)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = val
			}
		}
		reps[name] = append(reps[name], r)
	}
	results := make(map[string]benchResult, len(reps))
	for name, rs := range reps {
		sort.Slice(rs, func(i, j int) bool { return rs[i].NsPerOp < rs[j].NsPerOp })
		results[name] = rs[(len(rs)-1)/2]
	}
	return results, meta
}
