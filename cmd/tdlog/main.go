// Command tdlog runs Transaction Datalog programs.
//
// Usage:
//
//	tdlog [flags] program.td
//
// The program's "?- goal." directives are executed in order against the
// database formed by the program's facts, threading the database through:
// each committed goal's final state feeds the next goal. With -goal, the
// given goal is run instead of the file's directives.
//
// Flags:
//
//	-goal G       run goal G instead of the file's ?- directives
//	-sim          use the operational simulator (goroutines, blocking
//	              reads, committed choice) instead of the prover
//	-trace        print the execution trace (prover: structured span tree)
//	-all          enumerate all solutions (prover only)
//	-db           print the final database
//	-classify     print the fragment classification and exit
//	-check        print static safety issues and exit nonzero if any
//	-steps N      step budget (prover) / op budget (simulator)
//	-seed N       simulator scheduling seed
//	-timeout D    simulator timeout (e.g. 30s)
//
// Operator modes (no program argument; see docs/PERSISTENCE.md and
// docs/OBSERVABILITY.md):
//
//	-wal file       dump a server write-ahead log (v1 or v2 framing)
//	-manifest file  dump a snapshot's manifest (format, LSN, record count)
//	-wide file      tabulate the wide events in a server -obs.jsonl file
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	td "repro"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/term"
)

func main() {
	var (
		goalFlag    = flag.String("goal", "", "goal to run instead of the file's ?- directives")
		simFlag     = flag.Bool("sim", false, "use the operational simulator")
		trace       = flag.Bool("trace", false, "print execution trace")
		all         = flag.Bool("all", false, "enumerate all solutions (prover only)")
		dumpDB      = flag.Bool("db", false, "print the final database")
		classify    = flag.Bool("classify", false, "print fragment classification and exit")
		check       = flag.Bool("check", false, "print static safety issues and exit")
		steps       = flag.Int64("steps", 0, "step/op budget (0 = default)")
		seed        = flag.Int64("seed", 0, "simulator scheduling seed")
		timeout     = flag.Duration("timeout", 30*time.Second, "simulator timeout")
		interactive = flag.Bool("i", false, "interactive REPL after loading the program")
		parWorkers  = flag.Int("par", 0, "parallel proof search with N workers (prover only)")
		walDump     = flag.String("wal", "", "dump a server write-ahead log and exit")
		manDump     = flag.String("manifest", "", "dump a snapshot manifest and exit")
		wideDump    = flag.String("wide", "", "tabulate the wide events in a server JSONL file and exit")
	)
	flag.Parse()
	if *walDump != "" || *manDump != "" || *wideDump != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: tdlog -wal file.wal | tdlog -manifest file.snap | tdlog -wide file.jsonl")
			os.Exit(2)
		}
		var err error
		if *manDump != "" {
			err = dumpManifest(os.Stdout, *manDump)
		}
		if err == nil && *walDump != "" {
			err = dumpWAL(os.Stdout, *walDump)
		}
		if err == nil && *wideDump != "" {
			err = dumpWide(os.Stdout, *wideDump)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdlog:", err)
			os.Exit(1)
		}
		return
	}
	if *interactive {
		if flag.NArg() > 1 {
			fmt.Fprintln(os.Stderr, "usage: tdlog -i [program.td]")
			os.Exit(2)
		}
		var prog *td.Program
		var err error
		if flag.NArg() == 1 {
			prog, err = td.ParseFile(flag.Arg(0))
		} else {
			prog, err = td.Parse("")
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdlog:", err)
			os.Exit(1)
		}
		d, err := td.DatabaseFor(prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdlog:", err)
			os.Exit(1)
		}
		if err := repl(prog, d, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tdlog:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdlog [flags] program.td")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *goalFlag, options{
		sim: *simFlag, trace: *trace, all: *all, dumpDB: *dumpDB,
		classify: *classify, check: *check,
		steps: *steps, seed: *seed, timeout: *timeout, par: *parWorkers,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tdlog:", err)
		os.Exit(1)
	}
}

type options struct {
	sim, trace, all, dumpDB, classify, check bool
	steps                                    int64
	seed                                     int64
	timeout                                  time.Duration
	par                                      int
}

func run(path, goalSrc string, opt options) error {
	prog, err := td.ParseFile(path)
	if err != nil {
		return err
	}

	if opt.classify {
		rep := td.Classify(prog)
		fmt.Printf("fragment: %s\n", rep.Fragment)
		fmt.Printf("complexity: %s\n", rep.Fragment.Complexity())
		fmt.Printf("features: %+v\n", rep.Features)
		return nil
	}
	if opt.check {
		issues := td.CheckSafety(prog)
		for _, is := range issues {
			fmt.Println(is)
		}
		if len(issues) > 0 {
			return fmt.Errorf("%d safety issue(s)", len(issues))
		}
		fmt.Println("no safety issues")
		return nil
	}

	goals := prog.Queries
	if goalSrc != "" {
		g, _, err := td.ParseGoal(goalSrc, prog.VarHigh)
		if err != nil {
			return err
		}
		goals = []td.Goal{g}
	}
	if len(goals) == 0 {
		return fmt.Errorf("%s has no ?- directives; use -goal", path)
	}

	d, err := td.DatabaseFor(prog)
	if err != nil {
		return err
	}

	for i, g := range goals {
		if len(goals) > 1 {
			fmt.Printf("?- %s.\n", g)
		}
		if opt.sim {
			sopts := sim.Options{Seed: opt.seed, Timeout: opt.timeout, MaxOps: opt.steps, Trace: opt.trace, Shuffle: opt.seed != 0}
			res := td.NewSimulator(prog, sopts).Run(g, d)
			if res.Completed {
				fmt.Printf("completed (%d ops, %d processes)\n", res.Ops, res.Spawned)
				d = res.Final
			} else {
				fmt.Printf("failed: %v\n", res.Err)
			}
			if opt.trace {
				for _, e := range res.Events {
					fmt.Println("  ", e)
				}
			}
			continue
		}
		eopts := engine.DefaultOptions()
		eopts.MaxSteps = opt.steps
		eopts.Trace = opt.trace
		eng := td.NewEngine(prog, eopts)
		if opt.all {
			sols, res, err := eng.Solutions(g, d, 0)
			if err != nil {
				return err
			}
			fmt.Printf("%d solution(s) in %d steps\n", len(sols), res.Stats.Steps)
			for j, s := range sols {
				fmt.Printf("  solution %d: %v\n", j+1, s.Bindings)
			}
			continue
		}
		var res *td.Result
		if opt.par > 0 {
			res, err = eng.ProvePar(g, d, opt.par)
		} else {
			res, err = eng.Prove(g, d)
		}
		if err != nil {
			return err
		}
		if res.Success {
			fmt.Printf("yes (%d steps)\n", res.Stats.Steps)
			for name, val := range res.Bindings {
				fmt.Printf("  %s = %s\n", name, val)
			}
		} else {
			fmt.Printf("no (%d steps)\n", res.Stats.Steps)
		}
		if opt.trace {
			// The prover builds a structured span tree alongside the flat
			// witness trace; pretty-print it when present (ProvePar keeps
			// only the flat trace).
			if res.Spans != nil {
				obs.WriteTree(os.Stdout, res.Spans)
			} else {
				for _, e := range res.Trace {
					fmt.Println("  ", e)
				}
			}
		}
		_ = i
	}
	if opt.dumpDB {
		fmt.Print(d)
	}
	return nil
}

// dumpWAL prints a server write-ahead log entry by entry: operations with
// their decoded atoms, commit boundaries with their LSNs. Both the legacy
// v1 framing (no boundaries) and the current v2 framing are readable; a
// torn or corrupt tail ends the dump cleanly, mirroring what recovery
// would replay.
func dumpWAL(w io.Writer, path string) error {
	ops, commits := 0, 0
	version, err := db.ScanWAL(path, func(e db.WALEntry) bool {
		if e.Boundary {
			commits++
			fmt.Fprintf(w, "commit lsn=%d\n", e.LSN)
			return true
		}
		ops++
		verb := "del"
		if e.Insert {
			verb = "ins"
		}
		row, derr := term.DecodeKey(e.Key)
		if derr != nil {
			fmt.Fprintf(w, "  %s %s/%d (undecodable key)\n", verb, e.Pred, e.Arity)
			return true
		}
		fmt.Fprintf(w, "  %s %s\n", verb, term.Atom{Pred: e.Pred, Args: row})
		return true
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wal: v%d framing, %d op record(s), %d commit boundar%s\n",
		version, ops, commits, map[bool]string{true: "y", false: "ies"}[commits == 1])
	return nil
}

// wideStages is the pipeline order used when rendering a wide event's stage
// breakdown (matching the server's stage taxonomy).
var wideStages = []string{"parse", "prove", "validate", "lane_wait", "apply", "wal_append", "fsync_wait", "ack"}

// dumpWide tabulates the wide events in a server -obs.jsonl file: one row
// per transaction plus aggregate per-stage totals. Span-tree lines share the
// stream but carry no "event" discriminator; they are skipped.
func dumpWide(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	txns, skipped := 0, 0
	totals := make(map[string]int64, len(wideStages))
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.WideEvent
		if err := json.Unmarshal(line, &ev); err != nil || ev.Event != "txn" {
			skipped++ // a span line, or garbage: not ours to decode
			continue
		}
		txns++
		fmt.Fprintf(w, "txn trace=%d session=%d verb=%s", ev.Trace, ev.Session, ev.Verb)
		if ev.Goal != "" {
			fmt.Fprintf(w, " goal=%q", ev.Goal)
		}
		if ev.LSN > 0 {
			fmt.Fprintf(w, " lsn=%d", ev.LSN)
		}
		if ev.Retries > 0 {
			fmt.Fprintf(w, " retries=%d", ev.Retries)
		}
		if ev.Conflict != "" {
			fmt.Fprintf(w, " conflict=%s", ev.Conflict)
		}
		if len(ev.Lanes) > 0 {
			fmt.Fprintf(w, " lanes=%v", ev.Lanes)
		}
		if ev.CrossShard {
			fmt.Fprint(w, " cross_shard")
		}
		if ev.Ops > 0 {
			fmt.Fprintf(w, " ops=%d", ev.Ops)
		}
		if ev.Batch > 0 {
			fmt.Fprintf(w, " batch=%d", ev.Batch)
		}
		if ev.MemoHits > 0 {
			fmt.Fprintf(w, " memo_hits=%d", ev.MemoHits)
		}
		if ev.MemoMisses > 0 {
			fmt.Fprintf(w, " memo_misses=%d", ev.MemoMisses)
		}
		fmt.Fprintf(w, " total=%dus\n", ev.TotalUs)
		if len(ev.StageUs) > 0 {
			fmt.Fprint(w, " ")
			for _, stage := range wideStages {
				if us, ok := ev.StageUs[stage]; ok {
					fmt.Fprintf(w, " %s=%d", stage, us)
					totals[stage] += us
				}
			}
			fmt.Fprintln(w)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wide: %d transaction(s), %d other line(s)\n", txns, skipped)
	if txns > 0 {
		fmt.Fprint(w, "stage totals (us):")
		for _, stage := range wideStages {
			if us, ok := totals[stage]; ok {
				fmt.Fprintf(w, " %s=%d", stage, us)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// dumpManifest prints a snapshot's manifest (v1 snapshots predate
// manifests and are scanned to count records, reporting LSN 0).
func dumpManifest(w io.Writer, path string) error {
	man, err := db.ReadManifest(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot: format v%d, lsn %d, %d record(s)\n",
		man.FormatVersion, man.LSN, man.Records)
	return nil
}
