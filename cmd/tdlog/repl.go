package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	td "repro"
	"repro/internal/engine"
)

// repl runs an interactive session: each input line is a TD goal proved
// against the current database (committed goals advance the state), or one
// of the commands below.
//
//	:db            print the current database
//	:facts F.      assert fact(s) directly
//	:classify      print the fragment classification
//	:reset         reset the database to the program's facts
//	:trace on|off  toggle witness traces
//	:help          this text
//	:quit          exit
func repl(prog *td.Program, d *td.Database, in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	trace := false
	varHigh := prog.VarHigh
	fmt.Fprintln(out, "Transaction Datalog REPL — goals end with '.', :help for commands")
	for {
		fmt.Fprint(out, "td> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == ":quit" || line == ":q":
			return nil
		case line == ":help":
			fmt.Fprintln(out, "  <goal>.         prove a goal; on success the database advances")
			fmt.Fprintln(out, "  :db             print the current database")
			fmt.Fprintln(out, "  :facts f(a).    assert facts")
			fmt.Fprintln(out, "  :classify       fragment classification of the loaded program")
			fmt.Fprintln(out, "  :reset          reset database to the program's facts")
			fmt.Fprintln(out, "  :trace on|off   toggle witness traces")
			fmt.Fprintln(out, "  :quit           exit")
		case line == ":db":
			fmt.Fprint(out, d)
		case line == ":classify":
			rep := td.Classify(prog)
			fmt.Fprintf(out, "fragment: %s\ncomplexity: %s\n", rep.Fragment, rep.Fragment.Complexity())
		case line == ":reset":
			fresh, err := td.DatabaseFor(prog)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			d = fresh
			fmt.Fprintln(out, "database reset")
		case line == ":trace on":
			trace = true
		case line == ":trace off":
			trace = false
		case strings.HasPrefix(line, ":facts "):
			sub, err := td.Parse(strings.TrimPrefix(line, ":facts "))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if len(sub.Rules) > 0 {
				fmt.Fprintln(out, "error: :facts accepts facts only")
				continue
			}
			for _, f := range sub.Facts {
				d.Insert(f.Pred, f.Args)
			}
			d.ResetTrail()
			fmt.Fprintf(out, "asserted %d fact(s)\n", len(sub.Facts))
		case strings.HasPrefix(line, ":"):
			fmt.Fprintln(out, "unknown command; :help")
		default:
			g, high, err := td.ParseGoal(line, varHigh)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			varHigh = high
			opts := engine.DefaultOptions()
			opts.Trace = trace
			res, err := td.NewEngine(prog, opts).Prove(g, d)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if res.Success {
				fmt.Fprintf(out, "yes (%d steps)\n", res.Stats.Steps)
				for name, val := range res.Bindings {
					fmt.Fprintf(out, "  %s = %s\n", name, val)
				}
				for _, e := range res.Trace {
					fmt.Fprintln(out, "   ", e)
				}
			} else {
				fmt.Fprintf(out, "no (%d steps)\n", res.Stats.Steps)
			}
		}
	}
}
