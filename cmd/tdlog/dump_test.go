package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/term"
)

// TestDumpWALAndManifest drives the operator modes against files a real
// store wrote: the WAL dump shows ops grouped under commit boundaries and
// the manifest dump shows the checkpoint's provenance.
func TestDumpWALAndManifest(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.snap")
	wal := filepath.Join(dir, "db.wal")
	s, err := db.OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("edge", []term.Term{term.NewSym("a"), term.NewSym("b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("edge", []term.Term{term.NewSym("b"), term.NewSym("c")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("edge", []term.Term{term.NewSym("a"), term.NewSym("b")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointFrom(db.FreezeDB(s.DB), 1); err != nil { // keep blocks 2..3 in the log
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := dumpWAL(&out, wal); err != nil {
		t.Fatalf("dumpWAL: %v", err)
	}
	for _, want := range []string{
		"ins edge(b, c)",
		"del edge(a, b)",
		"commit lsn=2",
		"commit lsn=3",
		"wal: v2 framing, 2 op record(s), 2 commit boundaries",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("WAL dump missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "edge(a, b)\ncommit lsn=1") {
		t.Errorf("WAL dump shows the truncated block:\n%s", out.String())
	}

	out.Reset()
	if err := dumpManifest(&out, snap); err != nil {
		t.Fatalf("dumpManifest: %v", err)
	}
	if got, want := out.String(), "snapshot: format v2, lsn 1, 1 record(s)\n"; got != want {
		t.Errorf("manifest dump = %q, want %q", got, want)
	}
}

// A v1 WAL (pre-PR-6 framing, no commit boundaries) stays dumpable.
func TestDumpWALv1(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "v1.wal")
	// Craft the legacy file: v1 magic followed by raw op records.
	f, err := os.Create(wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("TDWAL1\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(db.EncodeWALRecord(true, "p", 1, term.KeyOf([]term.Term{term.NewInt(7)}))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := dumpWAL(&out, wal); err != nil {
		t.Fatalf("dumpWAL: %v", err)
	}
	for _, want := range []string{"ins p(7)", "wal: v1 framing, 1 op record(s), 0 commit boundaries"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("v1 dump missing %q:\n%s", want, out.String())
		}
	}
}
