package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	td "repro"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/term"
)

// TestDumpWALAndManifest drives the operator modes against files a real
// store wrote: the WAL dump shows ops grouped under commit boundaries and
// the manifest dump shows the checkpoint's provenance.
func TestDumpWALAndManifest(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.snap")
	wal := filepath.Join(dir, "db.wal")
	s, err := db.OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("edge", []term.Term{term.NewSym("a"), term.NewSym("b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("edge", []term.Term{term.NewSym("b"), term.NewSym("c")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("edge", []term.Term{term.NewSym("a"), term.NewSym("b")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointFrom(db.FreezeDB(s.DB), 1); err != nil { // keep blocks 2..3 in the log
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := dumpWAL(&out, wal); err != nil {
		t.Fatalf("dumpWAL: %v", err)
	}
	for _, want := range []string{
		"ins edge(b, c)",
		"del edge(a, b)",
		"commit lsn=2",
		"commit lsn=3",
		"wal: v2 framing, 2 op record(s), 2 commit boundaries",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("WAL dump missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "edge(a, b)\ncommit lsn=1") {
		t.Errorf("WAL dump shows the truncated block:\n%s", out.String())
	}

	out.Reset()
	if err := dumpManifest(&out, snap); err != nil {
		t.Fatalf("dumpManifest: %v", err)
	}
	if got, want := out.String(), "snapshot: format v2, lsn 1, 1 record(s)\n"; got != want {
		t.Errorf("manifest dump = %q, want %q", got, want)
	}
}

// TestDumpWide is the wide-event round trip: a durable server with a JSONL
// sink records sampled transactions (span lines interleaved on the same
// stream), and tdlog -wide tabulates exactly the transaction lines. The
// recorded stage decomposition must account for each transaction's
// end-to-end wall-clock within 10%.
func TestDumpWide(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "obs.jsonl")
	sink, err := obs.OpenJSONL(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := td.NewServer(td.ServerOptions{
		Program: `account(a, 100). account(b, 100).
			withdraw(Amt, A) :- account(A, B), B >= Amt, del.account(A, B), sub(B, Amt, C), ins.account(A, C).
			deposit(Amt, A) :- account(A, B), del.account(A, B), add(B, Amt, C), ins.account(A, C).
			transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).`,
		SnapshotPath: filepath.Join(dir, "td.snap"),
		WALPath:      filepath.Join(dir, "td.wal"),
		TraceSink:    sink, // span lines share the stream and must be skipped
		WideSink:     sink,
		Trace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := srv.InProcClient()
	for i := 0; i < 3; i++ {
		if _, err := c.Exec("transfer(1, a, b)"); err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}
	if err := c.Ping(); err != nil { // serialize behind the last finalization
		t.Fatal(err)
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// The recorded events decode, and their stage sums match end-to-end.
	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	var txns, spans int
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var ev obs.WideEvent
		if json.Unmarshal(line, &ev) != nil || ev.Event != "txn" {
			spans++
			continue
		}
		txns++
		var sum int64
		for _, us := range ev.StageUs {
			sum += us
		}
		if ev.TotalUs <= 0 {
			t.Fatalf("event without total: %s", line)
		}
		if diff := ev.TotalUs - sum; diff < 0 || float64(diff) > 0.1*float64(ev.TotalUs)+8 {
			t.Errorf("stage sum %dus does not account for total %dus: %s", sum, ev.TotalUs, line)
		}
	}
	if txns != 3 || spans == 0 {
		t.Fatalf("recorded %d txn and %d span lines, want 3 and >0", txns, spans)
	}

	var out bytes.Buffer
	if err := dumpWide(&out, jsonl); err != nil {
		t.Fatalf("dumpWide: %v", err)
	}
	for _, want := range []string{
		`verb=EXEC goal="transfer(1, a, b)"`,
		"prove=",
		"fsync_wait=",
		"wide: 3 transaction(s)",
		"stage totals (us):",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("wide dump missing %q:\n%s", want, out.String())
		}
	}
}

// A v1 WAL (pre-PR-6 framing, no commit boundaries) stays dumpable.
func TestDumpWALv1(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "v1.wal")
	// Craft the legacy file: v1 magic followed by raw op records.
	f, err := os.Create(wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("TDWAL1\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(db.EncodeWALRecord(true, "p", 1, term.KeyOf([]term.Term{term.NewInt(7)}))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := dumpWAL(&out, wal); err != nil {
		t.Fatalf("dumpWAL: %v", err)
	}
	for _, want := range []string{"ins p(7)", "wal: v1 framing, 1 op record(s), 0 commit boundaries"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("v1 dump missing %q:\n%s", want, out.String())
		}
	}
}
