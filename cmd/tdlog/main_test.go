package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	td "repro"
)

func testdata(name string) string {
	return filepath.Join("..", "..", "testdata", name)
}

func TestRunFileWithDirectives(t *testing.T) {
	if err := run(testdata("bank.td"), "", options{timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithGoalFlag(t *testing.T) {
	if err := run(testdata("bank.td"), "transfer(10, bob, alice)", options{dumpDB: true, timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimMode(t *testing.T) {
	if err := run(testdata("workflow.td"), "", options{sim: true, timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
}

func TestRunClassify(t *testing.T) {
	if err := run(testdata("workflow.td"), "", options{classify: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckSafety(t *testing.T) {
	if err := run(testdata("bank.td"), "", options{check: true}); err != nil {
		t.Fatal(err)
	}
	// An unsafe program must make -check fail.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.td")
	if err := os.WriteFile(bad, []byte("bad :- ins.p(X).\n?- bad.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", options{check: true}); err == nil {
		t.Fatal("-check accepted an unsafe program")
	}
}

func TestRunAllSolutions(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "p.td")
	if err := os.WriteFile(f, []byte("p(a). p(b).\n?- p(X).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(f, "", options{all: true, timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingDirectives(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "nogoal.td")
	if err := os.WriteFile(f, []byte("p(a).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(f, "", options{}); err == nil {
		t.Fatal("file without directives and without -goal accepted")
	}
}

func TestREPLSession(t *testing.T) {
	prog, err := td.ParseFile(testdata("bank.td"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := td.DatabaseFor(prog)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Join([]string{
		"transfer(30, alice, bob).",
		":db",
		":facts account(carol, 10).",
		"account(carol, N).",
		":classify",
		":trace on",
		"balance(alice, B).",
		":trace off",
		":reset",
		":db",
		"nonsense goal here(",
		":unknowncmd",
		":help",
		":quit",
	}, "\n"))
	var out bytes.Buffer
	if err := repl(prog, d, in, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"yes",                    // transfer succeeded
		"account(alice, 70).",    // :db after transfer
		"asserted 1 fact(s)",     // :facts
		"N = 10",                 // query over asserted fact
		"fragment:",              // :classify
		"account(alice, 100).",   // :db after :reset
		"error:",                 // bad goal
		"unknown command; :help", // bad command
	} {
		if !strings.Contains(text, want) {
			t.Errorf("REPL output missing %q:\n%s", want, text)
		}
	}
}

func TestREPLEOF(t *testing.T) {
	prog := td.MustParse("")
	d := td.NewDatabase()
	var out bytes.Buffer
	if err := repl(prog, d, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
}
