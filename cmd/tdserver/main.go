// Command tdserver runs the TD transaction service and exercises it.
//
// Usage:
//
//	tdserver serve [-addr :7090] [-program file.td] [-snap s.gob -wal w.wal] [flags]
//	tdserver bank  [-addr :7090] [-clients 8] [-txns 50] [-accounts 4]
//	tdserver exec  [-addr :7090] goal
//	tdserver query [-addr :7090] [-max N] goal
//	tdserver stats [-addr :7090]
//
// serve starts the server. With -snap and -wal it recovers committed state
// from the write-ahead log on startup and runs durably; without them it
// runs in memory. SIGINT/SIGTERM shut it down gracefully (open
// transactions abort; committed work is already durable).
//
// Observability (see docs/OBSERVABILITY.md): -obs.addr serves /metrics
// (Prometheus text) and /debug/pprof; -obs.slowtxn logs the span tree of
// any goal slower than the threshold; -obs.trace traces every goal;
// -obs.jsonl appends every traced goal's span tree and every sampled
// transaction's wide event to a JSON-lines file; -obs.sample attributes
// every Nth transaction's latency to pipeline stages; -obs.slo tracks
// latency objectives against the commit and fsync signals; -obs.profile
// attributes prover time per predicate. `tdtop -addr` renders the live
// stage/SLO picture in the terminal; `tdlog -wide file.jsonl` tabulates
// recorded wide events.
//
// bank is a load generator and correctness demo: it loads a bank of
// -accounts accounts holding 100 each (unless the server already has
// accounts — e.g. after a restart — in which case it keeps them), then
// runs -clients concurrent clients each committing -txns random
// iso(transfer(...)) transactions, and finally checks that money was
// conserved and prints throughput and the server's STATS counters.
//
// serve and bank both accept -cpuprofile and -memprofile flags that write
// runtime/pprof profiles (the CPU profile covers the whole run; the heap
// profile is taken at exit after a GC). `make profile` runs the bank load
// generator under the CPU profiler against a throwaway in-memory server.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	td "repro"
	"repro/internal/obs"
)

// profileFlags adds -cpuprofile/-memprofile to a subcommand's flag set.
// startProfiles begins CPU profiling if requested and returns a stop
// function that finishes the CPU profile and writes the heap profile; call
// it on every exit path (the subcommands defer it).
type profileFlags struct {
	cpu *string
	mem *string
}

func addProfileFlags(fs *flag.FlagSet) profileFlags {
	return profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

func (p profileFlags) start() (stop func(), err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tdserver: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tdserver: memprofile:", err)
			}
		}
	}, nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "bank":
		err = bankCmd(os.Args[2:])
	case "exec":
		err = execCmd(os.Args[2:])
	case "query":
		err = queryCmd(os.Args[2:])
	case "stats":
		err = statsCmd(os.Args[2:])
	case "checkpoint":
		err = checkpointCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tdserver: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdserver:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tdserver serve [-addr :7090] [-program file.td] [-snap s.gob -wal w.wal] [flags]
  tdserver bank  [-addr :7090] [-clients 8] [-txns 50] [-accounts 4]
  tdserver exec  [-addr :7090] goal
  tdserver query [-addr :7090] [-max N] goal
  tdserver stats [-addr :7090]
  tdserver checkpoint [-addr :7090]`)
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":7090", "listen address")
		programPath = fs.String("program", "", "TD program file installed as the default rulebase (its facts seed an empty database)")
		snap        = fs.String("snap", "", "snapshot path (durable mode; requires -wal)")
		wal         = fs.String("wal", "", "write-ahead log path (durable mode; requires -snap)")
		maxSessions = fs.Int("max-sessions", 0, "max concurrent sessions (0 = default)")
		maxSteps    = fs.Int64("max-steps", 0, "per-goal proof step budget (0 = default)")
		goalTime    = fs.Duration("goal-time", 0, "per-goal wall-clock budget (0 = default)")
		idle        = fs.Duration("idle", 0, "per-connection idle timeout (0 = default)")
		nosync      = fs.Bool("nosync", false, "skip fsync on commit (throughput over durability)")
		maxBatch    = fs.Int("commit.maxbatch", 0, "max commits per group-commit fsync batch (0 = default)")
		maxDelay    = fs.Duration("commit.maxdelay", 0, "how long the flusher waits for more committers before fsyncing (0 = fsync immediately)")
		shards      = fs.Int("store.shards", 0, "commit lanes the store is partitioned into (0 = GOMAXPROCS; 1 = unsharded)")
		ckptEvery   = fs.Duration("checkpoint.interval", 0, "background checkpoint cadence (0 = no timer; CHECKPOINT verb always works)")
		ckptWAL     = fs.Int64("checkpoint.walsize", 0, "checkpoint when the WAL exceeds this many bytes (0 = no size trigger)")
		histWindow  = fs.Int("history.window", 0, "commit versions retained for ASOF/CHANGES (0 = default 256, negative = none)")
		obsAddr     = fs.String("obs.addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address")
		obsSlow     = fs.Duration("obs.slowtxn", 0, "log the span tree of any goal slower than this (0 = off)")
		obsTrace    = fs.Bool("obs.trace", false, "trace every session's goals (TRACE dump works without opting in)")
		obsJSONL    = fs.String("obs.jsonl", "", "append every traced goal's span tree and every sampled transaction's wide event as JSON lines to this file")
		obsSample   = fs.Int("obs.sample", 0, "attribute every Nth transaction's latency to pipeline stages (0 = off; implied 1 by -obs.jsonl)")
		obsSLO      = fs.String("obs.slo", "", `latency objectives, e.g. "commit:5ms:0.999,fsync:20ms:0.99"`)
		obsProfile  = fs.Bool("obs.profile", false, "attribute prover time per predicate for every session (PROFILE verb toggles per session)")
		table       = fs.String("engine.table", "", `table derived-predicate answers: "auto" (profile-driven top-K), "all", a predicate list, or "" = off (TABLE verb toggles per session)`)
		tableMaxMB  = fs.Int("engine.table.maxmb", 0, "memo-store answer budget in MiB before LRU eviction (0 = default)")
		prof        = addProfileFlags(fs)
	)
	fs.Parse(args)
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()

	opts := td.ServerOptions{
		SnapshotPath:       *snap,
		WALPath:            *wal,
		MaxSessions:        *maxSessions,
		MaxSteps:           *maxSteps,
		MaxGoalTime:        *goalTime,
		IdleTimeout:        *idle,
		NoSync:             *nosync,
		CommitMaxBatch:     *maxBatch,
		CommitMaxDelay:     *maxDelay,
		StoreShards:        *shards,
		CheckpointInterval: *ckptEvery,
		CheckpointWALSize:  *ckptWAL,
		HistoryWindow:      *histWindow,
		Trace:              *obsTrace,
		SlowTxn:            *obsSlow,
		StageSample:        *obsSample,
		Profile:            *obsProfile,
		Table:              *table,
		TableMaxMB:         *tableMaxMB,
		Logger:             slog.Default(),
	}
	if *obsSLO != "" {
		slos, err := obs.ParseSLOs(*obsSLO)
		if err != nil {
			return err
		}
		opts.SLOs = slos
	}
	if *obsJSONL != "" {
		sink, err := obs.OpenJSONL(*obsJSONL)
		if err != nil {
			return err
		}
		defer sink.Close()
		opts.TraceSink = sink
		opts.WideSink = sink
	}
	if *programPath != "" {
		src, err := os.ReadFile(*programPath)
		if err != nil {
			return err
		}
		opts.Program = string(src)
	}
	srv, err := td.NewServer(opts)
	if err != nil {
		return err
	}
	lnAddr, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("tdserver: listening on %s (version %d, %d tuples)\n",
		lnAddr, srv.Version(), srv.Snapshot().Size())
	if *obsAddr != "" {
		obsSrv := &http.Server{Addr: *obsAddr, Handler: obs.NewMux(srv.Metrics())}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "tdserver: obs:", err)
			}
		}()
		defer obsSrv.Close()
		fmt.Printf("tdserver: metrics and pprof on http://%s/metrics\n", *obsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("tdserver: shutting down")
	return srv.Close()
}

// bankSrc builds the demo rulebase plus n seed accounts of 100 each.
func bankSrc(accounts int) string {
	var b strings.Builder
	for i := 0; i < accounts; i++ {
		fmt.Fprintf(&b, "account(%s, 100).\n", accountName(i))
	}
	b.WriteString(`
withdraw(Amt, A) :- account(A, B), B >= Amt, del.account(A, B),
                    sub(B, Amt, C), ins.account(A, C).
deposit(Amt, A)  :- account(A, B), del.account(A, B),
                    add(B, Amt, C), ins.account(A, C).
transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`)
	return b.String()
}

func accountName(i int) string { return fmt.Sprintf("acct%c", 'a'+rune(i%26)) + strconv.Itoa(i/26) }

func bankCmd(args []string) error {
	fs := flag.NewFlagSet("bank", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":7090", "server address")
		clients  = fs.Int("clients", 8, "concurrent client connections")
		txns     = fs.Int("txns", 50, "transactions per client")
		accounts = fs.Int("accounts", 4, "accounts in the bank (fewer = more contention)")
		seed     = fs.Int64("seed", 1, "transfer-pattern seed")
		prof     = addProfileFlags(fs)
	)
	fs.Parse(args)
	if *accounts < 2 {
		return fmt.Errorf("need at least 2 accounts")
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()

	// Seed the bank through one setup client. If the server already holds
	// accounts (a restart), keep them: the whole point of durability is
	// that the committed balances survive.
	setup, err := td.DialServer(*addr)
	if err != nil {
		return err
	}
	defer setup.Close()
	existing, err := setup.Query("account(A, B)", 0)
	if err != nil {
		return err
	}
	if len(existing) == 0 {
		if err := setup.Load(bankSrc(*accounts)); err != nil {
			return err
		}
	} else {
		fmt.Printf("bank: reusing %d existing accounts (recovered state)\n", len(existing))
		if err := setup.Load(bankSrc(0)); err != nil { // rules only
			return err
		}
	}
	before, err := sumBalances(setup)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(existing))
	if len(existing) == 0 {
		for i := 0; i < *accounts; i++ {
			names = append(names, accountName(i))
		}
	} else {
		for _, sol := range existing {
			names = append(names, sol["A"])
		}
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		committed int
		conflicts int
		firstErr  error
	)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := td.DialServer(*addr)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			if err := cl.Load(bankSrc(0)); err != nil { // rules only
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for i := 0; i < *txns; i++ {
				from := names[rng.Intn(len(names))]
				to := names[rng.Intn(len(names))]
				for to == from {
					to = names[rng.Intn(len(names))]
				}
				amt := 1 + rng.Intn(5)
				res, err := cl.Exec(fmt.Sprintf("iso(transfer(%d, %s, %s))", amt, from, to))
				mu.Lock()
				switch {
				case err == nil:
					committed++
					conflicts += res.Retries
				case td.IsNoProof(err) || td.IsConflict(err):
					// Insufficient funds, or gave up after retries: an
					// abort, not a failure of the demo.
				default:
					if firstErr == nil {
						firstErr = err
					}
				}
				mu.Unlock()
				if err != nil && !td.IsNoProof(err) && !td.IsConflict(err) {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	after, err := sumBalances(setup)
	if err != nil {
		return err
	}
	st, err := setup.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("bank: %d clients x %d txns: %d committed in %v (%.0f commits/sec)\n",
		*clients, *txns, committed, elapsed.Round(time.Millisecond),
		float64(committed)/elapsed.Seconds())
	fmt.Printf("bank: money before=%d after=%d (%s)\n", before, after, conserved(before, after))
	fmt.Printf("bank: server stats: version=%d commits=%d conflicts=%d retries=%d aborts=%d no_proof=%d p50=%dus p99=%dus wal=%dB\n",
		st.Version, st.Commits, st.Conflicts, st.Retries, st.Aborts, st.NoProof,
		st.CommitP50Us, st.CommitP99Us, st.WALBytes)
	if before != after {
		return fmt.Errorf("money not conserved: %d -> %d", before, after)
	}
	return nil
}

func conserved(before, after int64) string {
	if before == after {
		return "conserved"
	}
	return "NOT CONSERVED"
}

func sumBalances(cl *td.ServerClient) (int64, error) {
	sols, err := cl.Query("account(A, B)", 0)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, sol := range sols {
		n, err := strconv.ParseInt(sol["B"], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("non-integer balance %q", sol["B"])
		}
		total += n
	}
	return total, nil
}

func execCmd(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	addr := fs.String("addr", ":7090", "server address")
	program := fs.String("program", "", "TD program file to load first")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tdserver exec [-addr A] [-program file.td] goal")
	}
	cl, err := td.DialServer(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := loadFile(cl, *program); err != nil {
		return err
	}
	res, err := cl.Exec(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("committed at version %d (%d retries)\n", res.Version, res.Retries)
	for name, val := range res.Bindings {
		fmt.Printf("  %s = %s\n", name, val)
	}
	return nil
}

func queryCmd(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", ":7090", "server address")
	program := fs.String("program", "", "TD program file to load first")
	max := fs.Int("max", 0, "max solutions (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tdserver query [-addr A] [-program file.td] [-max N] goal")
	}
	cl, err := td.DialServer(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := loadFile(cl, *program); err != nil {
		return err
	}
	sols, err := cl.Query(fs.Arg(0), *max)
	if err != nil {
		return err
	}
	fmt.Printf("%d solution(s)\n", len(sols))
	for i, sol := range sols {
		fmt.Printf("  solution %d: %v\n", i+1, sol)
	}
	return nil
}

func statsCmd(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", ":7090", "server address")
	fs.Parse(args)
	cl, err := td.DialServer(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("uptime: %dms  version: %d  db: %d tuples  wal: %dB\n",
		st.UptimeMs, st.Version, st.DBSize, st.WALBytes)
	fmt.Printf("sessions: %d open / %d total (%d rejected)\n",
		st.SessionsOpen, st.SessionsTotal, st.Rejected)
	fmt.Printf("txns: %d begun, %d committed, %d aborted (%d conflicts, %d retries, %d no-proof, %d budget)\n",
		st.TxnsBegun, st.Commits, st.Aborts, st.Conflicts, st.Retries, st.NoProof, st.BudgetHits)
	fmt.Printf("commit latency: p50=%dus p99=%dus\n", st.CommitP50Us, st.CommitP99Us)
	if len(st.ConflictCauses) > 0 {
		fmt.Printf("conflict causes: %v\n", st.ConflictCauses)
	}
	if st.Fsyncs > 0 {
		fmt.Printf("fsyncs: %d (p99=%dus)\n", st.Fsyncs, st.FsyncP99Us)
	}
	if st.EngineSteps > 0 {
		fmt.Printf("engine: %d steps, %d unifications, %d table hits\n",
			st.EngineSteps, st.EngineUnifications, st.EngineTableHits)
		fmt.Printf("db: %d lookups, %d index hits, %d scans, %d order rebuilds, %d delta ops\n",
			st.DBLookups, st.DBIndexHits, st.DBScans, st.DBOrderRebuilds, st.DeltaOps)
	}
	if st.SlowTxns > 0 {
		fmt.Printf("slow txns: %d\n", st.SlowTxns)
	}
	if st.VetRejects > 0 {
		fmt.Printf("vet rejections: %d\n", st.VetRejects)
	}
	if st.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d (p99=%dus)\n", st.Checkpoints, st.CheckpointP99Us)
	}
	if st.Shards > 1 {
		fmt.Printf("commit lanes: %d, per-lane commits %v, cross-shard %d (%.1f%%)\n",
			st.Shards, st.ShardCommits, st.CrossShardCommits, st.CrossShardFraction*100)
	}
	if st.RecoveryReplayed > 0 {
		fmt.Printf("recovery: %d WAL records replayed at boot\n", st.RecoveryReplayed)
	}
	if len(st.StageP99Us) > 0 {
		fmt.Println("stage latency (sampled, p50/p99 us):")
		for _, stage := range []string{"parse", "prove", "validate", "lane_wait", "apply", "wal_append", "fsync_wait", "ack"} {
			if p99, ok := st.StageP99Us[stage]; ok {
				fmt.Printf("  %-10s %6d / %6d\n", stage, st.StageP50Us[stage], p99)
			}
		}
	}
	if st.MemoHits+st.MemoMisses > 0 {
		total := st.MemoHits + st.MemoMisses
		fmt.Printf("memo: %d hits / %d calls (%.1f%%), %d entries, %dB, %d invalidations, %d evictions\n",
			st.MemoHits, total, float64(st.MemoHits)/float64(total)*100,
			st.MemoEntries, st.MemoBytes, st.MemoInvalidations, st.MemoEvictions)
		for _, p := range st.MemoPreds {
			fmt.Printf("  %-16s hits=%d misses=%d\n", p.Pred, p.Hits, p.Misses)
		}
	}
	if len(st.ProverProfile) > 0 {
		fmt.Println("prover profile (per predicate):")
		for pred, p := range st.ProverProfile {
			fmt.Printf("  %-16s calls=%d fanout=%d time=%dus\n", pred, p.Calls, p.Fanout, p.TimeUs)
		}
	}
	for _, slo := range st.SLOs {
		fmt.Printf("slo %s: %d/%d good within %dus (objective %g, burn %.2f)\n",
			slo.Name, slo.Good, slo.Total, slo.ThresholdUs, slo.Objective, slo.BurnRate)
	}
	return nil
}

func checkpointCmd(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	addr := fs.String("addr", ":7090", "server address")
	fs.Parse(args)
	cl, err := td.DialServer(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	lsn, err := cl.Checkpoint()
	if err != nil {
		return err
	}
	fmt.Printf("checkpointed at lsn %d\n", lsn)
	return nil
}

func loadFile(cl *td.ServerClient, path string) error {
	if path == "" {
		return nil
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return cl.Load(string(src))
}
