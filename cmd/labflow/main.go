// Command labflow simulates the genome-laboratory workflow that motivates
// the paper: plates of DNA samples flowing through a production line of
// experimental steps (prep → digest → gel sub-workflow → analyze), with
// shared agent pools, concurrent workflow instances, and experimental
// results accumulating in the database.
//
// Usage:
//
//	labflow [-samples N] [-technicians N] [-thermocyclers N] [-gelrigs N]
//	        [-cameras N] [-analysts N] [-seed N] [-trace] [-program]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	td "repro"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func main() {
	var cfg workflow.LabConfig
	flag.IntVar(&cfg.Samples, "samples", 10, "DNA samples to push through the line")
	flag.IntVar(&cfg.Technicians, "technicians", 2, "technician pool")
	flag.IntVar(&cfg.Thermocyclers, "thermocyclers", 1, "thermocycler pool")
	flag.IntVar(&cfg.GelRigs, "gelrigs", 1, "gel rig pool")
	flag.IntVar(&cfg.Cameras, "cameras", 1, "camera pool")
	flag.IntVar(&cfg.Analysts, "analysts", 2, "analyst pool")
	seed := flag.Int64("seed", 1, "scheduling seed")
	trace := flag.Bool("trace", false, "print the event trace")
	printProgram := flag.Bool("program", false, "print the generated TD program and exit")
	printDot := flag.Bool("dot", false, "print the workflow graph in Graphviz DOT and exit")
	timeout := flag.Duration("timeout", 60*time.Second, "simulation timeout")
	flag.Parse()

	if *printDot {
		dot, err := workflow.Dot(workflow.GenomeSpec())
		if err != nil {
			fmt.Fprintln(os.Stderr, "labflow:", err)
			os.Exit(1)
		}
		fmt.Print(dot)
		return
	}
	if err := run(cfg, *seed, *trace, *printProgram, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "labflow:", err)
		os.Exit(1)
	}
}

func run(cfg workflow.LabConfig, seed int64, trace, printProgram bool, timeout time.Duration) error {
	src, goal, err := workflow.LabSource(cfg)
	if err != nil {
		return err
	}
	if printProgram {
		fmt.Print(src)
		fmt.Printf("\n?- %s.\n", goal)
		return nil
	}
	prog, err := td.Parse(src)
	if err != nil {
		return err
	}
	g, _, err := td.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		return err
	}
	d, err := td.DatabaseFor(prog)
	if err != nil {
		return err
	}
	pool := cfg.Technicians + cfg.Thermocyclers + cfg.GelRigs + cfg.Cameras + cfg.Analysts
	opts := sim.Options{
		Seed:     seed,
		Shuffle:  true,
		Timeout:  timeout,
		Trace:    trace,
		Monitors: []sim.MonitorFunc{workflow.AgentCapacityMonitor(pool)},
	}
	opts.Trace = true // always collect events for the utilization report
	fmt.Printf("laboratory: %d samples, %d agents (%d technicians, %d thermocyclers, %d gel rigs, %d cameras, %d analysts)\n",
		cfg.Samples, pool, cfg.Technicians, cfg.Thermocyclers, cfg.GelRigs, cfg.Cameras, cfg.Analysts)
	start := time.Now()
	res := td.NewSimulator(prog, opts).Run(g, d)
	elapsed := time.Since(start)
	if trace {
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
	}
	if !res.Completed {
		return fmt.Errorf("run failed after %s: %w", elapsed.Round(time.Millisecond), res.Err)
	}
	if err := workflow.CheckLabRun(cfg, res.Final); err != nil {
		return fmt.Errorf("invariants violated: %w", err)
	}
	fmt.Printf("completed: %d samples, %d elementary ops, %d processes, %s\n",
		cfg.Samples, res.Ops, res.Spawned, elapsed.Round(time.Millisecond))
	fmt.Printf("history: %d experiment records accumulated\n",
		res.Final.Count(workflow.DonePred("mapping", "prep"), 1)+
			res.Final.Count(workflow.DonePred("mapping", "digest"), 1)+
			res.Final.Count(workflow.DonePred("mapping", "gelstep"), 1)+
			res.Final.Count(workflow.DonePred("mapping", "analyze"), 1)+
			res.Final.Count(workflow.DonePred("gel", "load"), 1)+
			res.Final.Count(workflow.DonePred("gel", "run"), 1)+
			res.Final.Count(workflow.DonePred("gel", "photo"), 1))
	fmt.Println("all samples processed; all agents returned to the pool")

	util := sim.AgentUtilization(res.Events)
	if len(util) > 0 {
		fmt.Println("agent utilization (tasks performed):")
		names := make([]string, 0, len(util))
		for a := range util {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, a := range names {
			fmt.Printf("  %-16s %d\n", a, util[a])
		}
	}
	return nil
}
