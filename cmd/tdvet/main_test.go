package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run with captured output.
func runCLI(args ...string) (exit int, stdout, stderr string) {
	var out, errb bytes.Buffer
	exit = run(args, &out, &errb)
	return exit, out.String(), errb.String()
}

func TestCleanProgramExitsZero(t *testing.T) {
	exit, stdout, stderr := runCLI(filepath.Join("testdata", "clean.td"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if !strings.Contains(stdout, "[fragment]") {
		t.Errorf("expected the fragment info line, got:\n%s", stdout)
	}
}

func TestWarningsExitZeroWithoutWerror(t *testing.T) {
	path := filepath.Join("testdata", "warnbug.td")
	exit, stdout, _ := runCLI(path)
	if exit != 0 {
		t.Fatalf("exit = %d, want 0 (warnings are not errors by default)\n%s", exit, stdout)
	}
	if !strings.Contains(stdout, "[arity]") || !strings.Contains(stdout, "[unused-pred]") {
		t.Errorf("expected arity and unused-pred warnings, got:\n%s", stdout)
	}
	// Diagnostics are prefixed with the file path, compiler style.
	if !strings.Contains(stdout, path+":") {
		t.Errorf("diagnostics should be prefixed with the file path:\n%s", stdout)
	}
}

func TestWerrorPromotesWarnings(t *testing.T) {
	exit, stdout, _ := runCLI("-Werror", filepath.Join("testdata", "warnbug.td"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1 under -Werror\n%s", exit, stdout)
	}
}

func TestErrorDiagnosticsExitOne(t *testing.T) {
	exit, stdout, _ := runCLI(filepath.Join("testdata", "errbug.td"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\n%s", exit, stdout)
	}
	if !strings.Contains(stdout, "error:") || !strings.Contains(stdout, "[safety]") {
		t.Errorf("expected a safety error, got:\n%s", stdout)
	}
	// 4:20 is del.item(Y) in errbug.td — the literal, not the clause head.
	if !strings.Contains(stdout, ":4:20:") {
		t.Errorf("expected the diagnostic at 4:20, got:\n%s", stdout)
	}
}

func TestQuietDropsInfo(t *testing.T) {
	exit, stdout, _ := runCLI("-q", filepath.Join("testdata", "clean.td"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0", exit)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Errorf("-q on a clean program should print nothing, got:\n%s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	exit, stdout, _ := runCLI("-json", filepath.Join("testdata", "errbug.td"), filepath.Join("testdata", "clean.td"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	var reports []fileReport
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d file reports, want 2", len(reports))
	}
	var sawSafety bool
	for _, d := range reports[0].Diags {
		if d.ID == "safety" && d.Line == 4 && d.Col == 20 {
			sawSafety = true
		}
	}
	if !sawSafety {
		t.Errorf("JSON report missing the 4:20 safety diagnostic: %+v", reports[0].Diags)
	}
	if reports[1].Fragment == "" || reports[1].Complexity == "" {
		t.Errorf("clean report missing fragment classification: %+v", reports[1])
	}
}

func TestMissingFileExitsTwo(t *testing.T) {
	exit, _, stderr := runCLI(filepath.Join("testdata", "no-such-file.td"))
	if exit != 2 {
		t.Fatalf("exit = %d, want 2", exit)
	}
	if !strings.Contains(stderr, "tdvet:") {
		t.Errorf("expected a tdvet-prefixed read error, got:\n%s", stderr)
	}
}

func TestNoArgsUsage(t *testing.T) {
	exit, _, stderr := runCLI()
	if exit != 2 {
		t.Fatalf("exit = %d, want 2", exit)
	}
	if !strings.Contains(stderr, "usage: tdvet") {
		t.Errorf("expected usage text, got:\n%s", stderr)
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	// warnbug.td parses; use a file with a syntax error via JSON to check
	// the parse_error field as well.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.td")
	if err := os.WriteFile(bad, []byte("p( :- ."), 0o644); err != nil {
		t.Fatal(err)
	}
	exit, stdout, _ := runCLI("-json", bad)
	if exit != 2 {
		t.Fatalf("exit = %d, want 2", exit)
	}
	var reports []fileReport
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(reports) != 1 || reports[0].ParseError == "" {
		t.Errorf("expected a parse_error report, got: %+v", reports)
	}
}

func TestPlanFlagHuman(t *testing.T) {
	path := filepath.Join("testdata", "plan.td")
	exit, stdout, _ := runCLI("-plan", path)
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\n%s", exit, stdout)
	}
	if !strings.Contains(stdout, "[plan]") || !strings.Contains(stdout, "reordered: [2 0 1]") {
		t.Errorf("expected the hot/1 reorder diagnostic, got:\n%s", stdout)
	}
	if !strings.Contains(stdout, "plan: hot/1 update_free=true hypothetical_free=true recursion=none tabling_eligible=true") {
		t.Errorf("expected the hot/1 certificate line, got:\n%s", stdout)
	}
	if !strings.Contains(stdout, "plan: mark/1 update_free=false") {
		t.Errorf("expected mark/1 certified not update-free, got:\n%s", stdout)
	}
}

func TestPlanFlagQuiet(t *testing.T) {
	// -plan -q -Werror is the make vet fold: plan diagnostics are info
	// severity, so a clean corpus stays silent and exits 0.
	exit, stdout, _ := runCLI("-plan", "-q", "-Werror", filepath.Join("testdata", "plan.td"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\n%s", exit, stdout)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Errorf("-plan -q should print nothing on a clean program, got:\n%s", stdout)
	}
}

func TestPlanFlagJSON(t *testing.T) {
	exit, stdout, _ := runCLI("-plan", "-json", filepath.Join("testdata", "plan.td"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0", exit)
	}
	var reports []fileReport
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	fr := reports[0]
	if fr.SchemaVersion != reportSchemaVersion {
		t.Errorf("schema_version = %d, want %d", fr.SchemaVersion, reportSchemaVersion)
	}
	if fr.Plan == nil || fr.Plan.Reorders == 0 {
		t.Fatalf("plan section missing or empty: %+v", fr.Plan)
	}
	var hotEligible, markEligible *bool
	for _, pp := range fr.Plan.Predicates {
		p := pp
		switch pp.Pred {
		case "hot/1":
			hotEligible = &p.TablingEligible
		case "mark/1":
			markEligible = &p.TablingEligible
		}
	}
	if hotEligible == nil || !*hotEligible {
		t.Errorf("hot/1 should be tabling-eligible: %+v", fr.Plan.Predicates)
	}
	if markEligible == nil || *markEligible {
		t.Errorf("mark/1 writes and must not be tabling-eligible: %+v", fr.Plan.Predicates)
	}
	// Without -plan, the section stays absent but schema_version is stamped.
	_, stdout, _ = runCLI("-json", filepath.Join("testdata", "clean.td"))
	reports = nil
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatal(err)
	}
	if reports[0].Plan != nil {
		t.Errorf("plan section present without -plan: %+v", reports[0].Plan)
	}
	if reports[0].SchemaVersion != reportSchemaVersion {
		t.Errorf("schema_version = %d, want %d", reports[0].SchemaVersion, reportSchemaVersion)
	}
}
