// Command tdvet runs the TD static analyzer over .td program files and
// reports diagnostics in the conventional file:line:col compiler format,
// or as JSON for tooling.
//
// Exit codes, for CI:
//
//	0  no error-severity diagnostics (warnings allowed unless -Werror)
//	1  error-severity diagnostics found (or warnings, under -Werror)
//	2  usage, read, or parse failure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileReport is the per-file JSON payload emitted under -json.
type fileReport struct {
	File       string                `json:"file"`
	Fragment   string                `json:"fragment"`
	Complexity string                `json:"complexity"`
	Diags      []analysis.Diagnostic `json:"diagnostics"`
	Suppressed int                   `json:"suppressed,omitempty"`
	ParseError string                `json:"parse_error,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	werror := fs.Bool("Werror", false, "treat warnings as errors (exit 1)")
	quiet := fs.Bool("q", false, "suppress info-severity diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tdvet [flags] file.td ...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	exit := 0
	var reports []fileReport
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "tdvet: %v\n", err)
			return 2
		}
		rep, err := analysis.VetSource(string(data))
		if err != nil {
			if *jsonOut {
				reports = append(reports, fileReport{File: path, ParseError: err.Error()})
			} else {
				fmt.Fprintf(stderr, "%s:%v\n", path, err)
			}
			exit = 2
			continue
		}
		fr := fileReport{
			File:       path,
			Fragment:   rep.Fragment,
			Complexity: rep.Complexity,
			Diags:      rep.Diags,
			Suppressed: rep.Suppressed,
		}
		if *quiet {
			kept := fr.Diags[:0]
			for _, d := range fr.Diags {
				if d.Sev != analysis.SevInfo {
					kept = append(kept, d)
				}
			}
			fr.Diags = kept
		}
		reports = append(reports, fr)
		for _, d := range fr.Diags {
			switch d.Sev {
			case analysis.SevError:
				exit = max(exit, 1)
			case analysis.SevWarning:
				if *werror {
					exit = max(exit, 1)
				}
			}
		}
		if !*jsonOut {
			for _, d := range fr.Diags {
				fmt.Fprintf(stdout, "%s:%s\n", path, d)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "tdvet: %v\n", err)
			return 2
		}
	}
	return exit
}
