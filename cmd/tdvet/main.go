// Command tdvet runs the TD static analyzer over .td program files and
// reports diagnostics in the conventional file:line:col compiler format,
// or as JSON for tooling.
//
// Exit codes, for CI:
//
//	0  no error-severity diagnostics (warnings allowed unless -Werror)
//	1  error-severity diagnostics found (or warnings, under -Werror)
//	2  usage, read, or parse failure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// reportSchemaVersion identifies the -json payload shape: 2 adds
// schema_version itself and the optional plan section.
const reportSchemaVersion = 2

// fileReport is the per-file JSON payload emitted under -json.
type fileReport struct {
	SchemaVersion int                   `json:"schema_version"`
	File          string                `json:"file"`
	Fragment      string                `json:"fragment"`
	Complexity    string                `json:"complexity"`
	Diags         []analysis.Diagnostic `json:"diagnostics"`
	Suppressed    int                   `json:"suppressed,omitempty"`
	ParseError    string                `json:"parse_error,omitempty"`
	// Plan carries the tdplan report under -plan: adornment signatures,
	// reorder decisions, and tabling-safety certificates.
	Plan *analysis.PlanReport `json:"plan,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	werror := fs.Bool("Werror", false, "treat warnings as errors (exit 1)")
	quiet := fs.Bool("q", false, "suppress info-severity diagnostics")
	plan := fs.Bool("plan", false, "run the tdplan planner: adornments, reorder decisions, tabling certificates")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tdvet [flags] file.td ...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	exit := 0
	var reports []fileReport
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "tdvet: %v\n", err)
			return 2
		}
		rep, err := analysis.VetSource(string(data))
		if err != nil {
			if *jsonOut {
				reports = append(reports, fileReport{File: path, ParseError: err.Error()})
			} else {
				fmt.Fprintf(stderr, "%s:%v\n", path, err)
			}
			exit = 2
			continue
		}
		fr := fileReport{
			SchemaVersion: reportSchemaVersion,
			File:          path,
			Fragment:      rep.Fragment,
			Complexity:    rep.Complexity,
			Diags:         rep.Diags,
			Suppressed:    rep.Suppressed,
		}
		if *plan {
			// Parse errors were caught above, so PlanSource cannot fail
			// here; its reorder diagnostics (info-severity, pragma-filtered
			// like every pass) merge into the file's stream.
			pr, perr := analysis.PlanSource(string(data))
			if perr != nil {
				fmt.Fprintf(stderr, "tdvet: %s: %v\n", path, perr)
				return 2
			}
			fr.Plan = pr
			fr.Diags = append(fr.Diags, pr.Diags...)
			fr.Suppressed += pr.Suppressed
			sort.SliceStable(fr.Diags, func(i, j int) bool {
				a, b := fr.Diags[i], fr.Diags[j]
				if a.Line != b.Line {
					return a.Line < b.Line
				}
				return a.Col < b.Col
			})
		}
		if *quiet {
			kept := fr.Diags[:0]
			for _, d := range fr.Diags {
				if d.Sev != analysis.SevInfo {
					kept = append(kept, d)
				}
			}
			fr.Diags = kept
		}
		reports = append(reports, fr)
		for _, d := range fr.Diags {
			switch d.Sev {
			case analysis.SevError:
				exit = max(exit, 1)
			case analysis.SevWarning:
				if *werror {
					exit = max(exit, 1)
				}
			}
		}
		if !*jsonOut {
			for _, d := range fr.Diags {
				fmt.Fprintf(stdout, "%s:%s\n", path, d)
			}
			// The certificate table is informational, like the reorder
			// diagnostics: -q keeps CI runs quiet.
			if fr.Plan != nil && !*quiet {
				for _, pp := range fr.Plan.Predicates {
					fmt.Fprintf(stdout, "%s: plan: %s update_free=%t hypothetical_free=%t recursion=%s tabling_eligible=%t adornments=%v\n",
						path, pp.Pred, pp.UpdateFree, pp.HypotheticalFree, pp.Recursion, pp.TablingEligible, pp.Adornments)
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "tdvet: %v\n", err)
			return 2
		}
	}
	return exit
}
