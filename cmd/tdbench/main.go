// Command tdbench runs the reproduction suite: every experiment from
// EXPERIMENTS.md (the paper's worked examples E1–E6, the complexity
// landscape E7–E12, and the ablations A1–A3), printing the tables each
// regenerates.
//
// Usage:
//
//	tdbench [-quick] [-only E7,E8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "smaller workload sizes")
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	md := flag.Bool("md", false, "emit tables as GitHub markdown (for EXPERIMENTS.md)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	start := time.Now()
	failures := 0
	for _, rep := range experiments.All(experiments.Config{Quick: *quick}) {
		if len(want) > 0 && !want[rep.ID] {
			continue
		}
		status := "PASS"
		if !rep.Pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("=== %s [%s] %s\n", rep.ID, status, rep.Title)
		for _, tab := range rep.Tables {
			fmt.Println()
			if *md {
				fmt.Print(tab.Markdown())
			} else {
				fmt.Print(tab)
			}
		}
		for _, note := range rep.Notes {
			fmt.Println("  note:", note)
		}
		fmt.Println()
	}
	fmt.Printf("suite finished in %s\n", time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		fmt.Printf("%d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
}
