package db

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func TestFrozenBasics(t *testing.T) {
	var f FrozenDB // zero value: empty
	if f.Size() != 0 || f.Contains("p", row("a")) {
		t.Fatal("zero FrozenDB not empty")
	}
	f1 := f.Insert("p", row("a"))
	if f1.Size() != 1 || !f1.Contains("p", row("a")) {
		t.Fatal("insert missing")
	}
	if f.Size() != 0 || f.Contains("p", row("a")) {
		t.Fatal("parent version mutated")
	}
	f2 := f1.Insert("p", row("a")) // set semantics
	if f2.Size() != 1 {
		t.Fatal("duplicate insert changed size")
	}
	f3 := f1.Delete("p", row("a"))
	if f3.Size() != 0 || f3.Contains("p", row("a")) {
		t.Fatal("delete failed")
	}
	if !f1.Contains("p", row("a")) {
		t.Fatal("delete mutated parent version")
	}
	f4 := f3.Delete("p", row("a"))
	if f4.Size() != 0 {
		t.Fatal("absent delete changed size")
	}
}

func TestFrozenVersionsDiverge(t *testing.T) {
	base := FrozenDB{}
	for i := 0; i < 100; i++ {
		base = base.Insert("p", []term.Term{term.NewInt(int64(i))})
	}
	// Two children diverge from the same parent; the parent and each
	// sibling stay intact.
	a := base.Insert("p", []term.Term{term.NewInt(1000)})
	b := base.Delete("p", []term.Term{term.NewInt(50)})
	if base.Size() != 100 || a.Size() != 101 || b.Size() != 99 {
		t.Fatalf("sizes: base=%d a=%d b=%d", base.Size(), a.Size(), b.Size())
	}
	if !a.Contains("p", []term.Term{term.NewInt(50)}) {
		t.Fatal("sibling a affected by b's delete")
	}
	if b.Contains("p", []term.Term{term.NewInt(1000)}) {
		t.Fatal("sibling b affected by a's insert")
	}
}

func TestFrozenAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fz := FrozenDB{}
		ref := map[string]bool{}
		for i := 0; i < 300; i++ {
			v := []term.Term{term.NewInt(int64(r.Intn(40))), term.NewSym(fmt.Sprintf("s%d", r.Intn(3)))}
			key := term.KeyOf(v)
			if r.Intn(2) == 0 {
				fz = fz.Insert("p", v)
				ref[key] = true
			} else {
				fz = fz.Delete("p", v)
				delete(ref, key)
			}
			if fz.Size() != len(ref) {
				return false
			}
		}
		// Final membership agreement.
		for i := 0; i < 40; i++ {
			for j := 0; j < 3; j++ {
				v := []term.Term{term.NewInt(int64(i)), term.NewSym(fmt.Sprintf("s%d", j))}
				if fz.Contains("p", v) != ref[term.KeyOf(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeThawRoundTrip(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	d.Insert("p", row("b", "c"))
	d.Insert("q", []term.Term{term.NewInt(7)})
	fz := FreezeDB(d)
	if fz.Size() != 3 || fz.Fingerprint() != d.Fingerprint() {
		t.Fatalf("freeze mismatch: size=%d", fz.Size())
	}
	back := fz.Thaw()
	if !back.Equal(d) {
		t.Fatalf("thaw differs:\n%s\nvs\n%s", back, d)
	}
}

func TestFrozenFingerprintMatchesMutable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fz := FrozenDB{}
		d := New()
		for i := 0; i < 150; i++ {
			v := []term.Term{term.NewInt(int64(r.Intn(25)))}
			if r.Intn(2) == 0 {
				fz = fz.Insert("p", v)
				d.Insert("p", v)
			} else {
				fz = fz.Delete("p", v)
				d.Delete("p", v)
			}
		}
		return fz.Fingerprint() == d.Fingerprint() && fz.Size() == d.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFrozenCount(t *testing.T) {
	fz := FrozenDB{}
	for i := 0; i < 10; i++ {
		fz = fz.Insert("p", []term.Term{term.NewInt(int64(i))})
	}
	fz = fz.Insert("q", row("x"))
	if fz.Count("p", 1) != 10 || fz.Count("q", 1) != 1 || fz.Count("zz", 1) != 0 {
		t.Fatalf("counts: p=%d q=%d", fz.Count("p", 1), fz.Count("q", 1))
	}
}

func TestFrozenManyKeysDeepTrie(t *testing.T) {
	// Enough keys to force several trie levels; verify all present and
	// deletable.
	fz := FrozenDB{}
	const n = 5000
	for i := 0; i < n; i++ {
		fz = fz.Insert("p", []term.Term{term.NewInt(int64(i))})
	}
	if fz.Size() != n {
		t.Fatalf("size = %d", fz.Size())
	}
	for i := 0; i < n; i += 97 {
		if !fz.Contains("p", []term.Term{term.NewInt(int64(i))}) {
			t.Fatalf("missing %d", i)
		}
	}
	for i := 0; i < n; i++ {
		fz = fz.Delete("p", []term.Term{term.NewInt(int64(i))})
	}
	if fz.Size() != 0 {
		t.Fatalf("size after full delete = %d", fz.Size())
	}
}

func BenchmarkFrozenForkUpdate(b *testing.B) {
	fz := FrozenDB{}
	for i := 0; i < 10000; i++ {
		fz = fz.Insert("p", []term.Term{term.NewInt(int64(i))})
	}
	tmp := []term.Term{term.NewSym("x")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fork + 3 updates + drop: the A2 branching pattern.
		child := fz.Insert("tmp", tmp)
		child = child.Insert("tmp2", tmp)
		child = child.Delete("tmp", tmp)
		_ = child
	}
}
