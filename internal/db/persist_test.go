package db

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func tmpPaths(t *testing.T) (snap, wal string) {
	t.Helper()
	dir := t.TempDir()
	return filepath.Join(dir, "db.snap"), filepath.Join(dir, "db.wal")
}

func TestDecodeKeyRoundTrip(t *testing.T) {
	cases := [][]term.Term{
		{},
		{term.NewSym("alice")},
		{term.NewInt(-42), term.NewInt(0), term.NewInt(12345)},
		{term.NewStr("hello world"), term.NewSym("x")},
		{term.NewStr("with\nnewline and : colon"), term.NewStr("")},
		{term.NewSym("s5"), term.NewSym("i"), term.NewStr("q3:x")},
	}
	for _, row := range cases {
		key := term.KeyOf(row)
		got, err := term.DecodeKey(key)
		if err != nil {
			t.Fatalf("DecodeKey(%q): %v", key, err)
		}
		if len(got) != len(row) {
			t.Fatalf("round trip length: %v vs %v", got, row)
		}
		for i := range row {
			if !got[i].Equal(row[i]) {
				t.Fatalf("round trip: %v vs %v", got, row)
			}
		}
	}
}

func TestDecodeKeyRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		row := make([]term.Term, int(n)%6)
		for i := range row {
			switch r.Intn(3) {
			case 0:
				b := make([]byte, r.Intn(8))
				for j := range b {
					b[j] = byte('a' + r.Intn(26))
				}
				row[i] = term.NewSym(string(b))
			case 1:
				row[i] = term.NewInt(r.Int63() - r.Int63())
			default:
				b := make([]byte, r.Intn(12))
				r.Read(b)
				row[i] = term.NewStr(string(b))
			}
		}
		got, err := term.DecodeKey(term.KeyOf(row))
		if err != nil || len(got) != len(row) {
			return false
		}
		for i := range row {
			if !got[i].Equal(row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	for _, bad := range []string{"x", "s", "s5", "s5:ab", "sx:abc", "i", "i-", "q2:a"} {
		if _, err := term.DecodeKey(bad); err == nil {
			t.Errorf("DecodeKey(%q) accepted", bad)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap, _ := tmpPaths(t)
	d := New()
	d.Insert("p", row("a"))
	d.Insert("p", row("b"))
	d.Insert("q", []term.Term{term.NewInt(3), term.NewStr("x y")})
	d.Insert("flag", nil)
	if err := WriteSnapshot(d, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatalf("snapshot round trip differs:\n%s\nvs\n%s", got, d)
	}
	if got.Fingerprint() != d.Fingerprint() {
		t.Fatal("fingerprints differ after reload")
	}
}

func TestReadSnapshotBadMagic(t *testing.T) {
	snap, _ := tmpPaths(t)
	if err := os.WriteFile(snap, []byte("NOTASNAP"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(snap); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWALAppendReplay(t *testing.T) {
	_, wal := tmpPaths(t)
	w, err := OpenWAL(wal)
	if err != nil {
		t.Fatal(err)
	}
	ops := []struct {
		insert bool
		pred   string
		row    []term.Term
	}{
		{true, "p", row("a")},
		{true, "p", row("b")},
		{false, "p", row("a")},
		{true, "q", []term.Term{term.NewInt(1), term.NewInt(2)}},
	}
	for _, op := range ops {
		if _, err := w.Append(op.insert, op.pred, len(op.row), term.KeyOf(op.row)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d := New()
	n, err := ReplayWAL(d, wal)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records, want 4", n)
	}
	if d.Contains("p", row("a")) || !d.Contains("p", row("b")) || !d.Contains("q", []term.Term{term.NewInt(1), term.NewInt(2)}) {
		t.Fatalf("replayed state wrong:\n%s", d)
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	_, wal := tmpPaths(t)
	w, err := OpenWAL(wal)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(true, "p", 1, term.KeyOf([]term.Term{term.NewInt(int64(i))})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate at every possible length: replay must never error and must
	// apply a prefix of the records.
	prev := -1
	for cut := len(full); cut >= len("TDWAL1\n"); cut-- {
		if err := os.WriteFile(wal, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d := New()
		n, err := ReplayWAL(d, wal)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if n > 5 || (prev >= 0 && n > prev) {
			t.Fatalf("cut=%d: applied %d records (prev %d)", cut, n, prev)
		}
		prev = n
		// Applied records must be exactly the first n inserts.
		for i := 0; i < 5; i++ {
			want := i < n
			if d.Contains("p", []term.Term{term.NewInt(int64(i))}) != want {
				t.Fatalf("cut=%d: tuple %d presence != %v", cut, i, want)
			}
		}
	}
}

func TestWALCorruptMiddleStopsReplay(t *testing.T) {
	_, wal := tmpPaths(t)
	w, _ := OpenWAL(wal)
	for i := 0; i < 3; i++ {
		w.Append(true, "p", 1, term.KeyOf([]term.Term{term.NewInt(int64(i))}))
	}
	w.Close()
	data, _ := os.ReadFile(wal)
	// Flip a byte in the middle record's payload.
	data[len("TDWAL1\n")+15] ^= 0xFF
	os.WriteFile(wal, data, 0o644)
	d := New()
	n, err := ReplayWAL(d, wal)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 3 {
		t.Fatalf("replay did not stop at corruption: %d records", n)
	}
}

func TestStoreRecovery(t *testing.T) {
	snap, wal := tmpPaths(t)

	// Session 1: build some state, checkpoint, add more, close.
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert("acct", []term.Term{term.NewSym("alice"), term.NewInt(100)})
	s.Insert("acct", []term.Term{term.NewSym("bob"), term.NewInt(50)})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Delete("acct", []term.Term{term.NewSym("alice"), term.NewInt(100)})
	s.Insert("acct", []term.Term{term.NewSym("alice"), term.NewInt(70)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := s.DB.Clone()

	// Session 2: recover = snapshot + WAL replay.
	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.DB.Equal(want) {
		t.Fatalf("recovered state differs:\n%s\nwant:\n%s", s2.DB, want)
	}
}

func TestStoreNoOpsNotLogged(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	changed, err := s.Insert("p", row("a"))
	if err != nil || !changed {
		t.Fatal(err)
	}
	size1 := s.wal.Size()
	changed, err = s.Insert("p", row("a")) // duplicate
	if err != nil || changed {
		t.Fatal("duplicate insert reported change")
	}
	if s.wal.Size() != size1 {
		t.Fatal("no-op insert was logged")
	}
	changed, err = s.Delete("q", row("zzz")) // absent
	if err != nil || changed {
		t.Fatal("absent delete reported change")
	}
	if s.wal.Size() != size1 {
		t.Fatal("no-op delete was logged")
	}
}

func TestStoreCheckpointTruncatesWAL(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Insert("p", []term.Term{term.NewInt(int64(i))})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.wal.Size() != int64(len("TDWAL1\n")) {
		t.Fatalf("WAL size after checkpoint = %d", s.wal.Size())
	}
	s.Close()
	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.DB.Size() != 100 {
		t.Fatalf("recovered %d tuples, want 100", s2.DB.Size())
	}
}

// Property: random operation sequences with a checkpoint at a random point
// always recover to the reference state.
func TestStoreRandomRecovery(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "tdstore")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		snap := filepath.Join(dir, "s")
		wal := filepath.Join(dir, "w")
		s, err := OpenStore(snap, wal)
		if err != nil {
			return false
		}
		ref := New()
		nOps := 30 + r.Intn(40)
		ckAt := r.Intn(nOps)
		for i := 0; i < nOps; i++ {
			v := []term.Term{term.NewInt(int64(r.Intn(10)))}
			if r.Intn(2) == 0 {
				s.Insert("p", v)
				ref.Insert("p", v)
			} else {
				s.Delete("p", v)
				ref.Delete("p", v)
			}
			if i == ckAt {
				if err := s.Checkpoint(); err != nil {
					return false
				}
			}
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := OpenStore(snap, wal)
		if err != nil {
			return false
		}
		defer s2.Close()
		return s2.DB.Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Many goroutines hammering one Store must not race (run with -race) and
// must not lose any logged write: after reopening, every tuple every
// goroutine inserted-and-kept is present, every deleted one absent.
func TestStoreConcurrentHammer(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := term.NewInt(int64(w))
			for i := 0; i < rounds; i++ {
				n := term.NewInt(int64(i))
				switch i % 4 {
				case 0: // plain insert, kept
					if _, err := s.Insert("kept", []term.Term{me, n}); err != nil {
						t.Error(err)
						return
					}
				case 1: // insert then delete
					if _, err := s.Insert("gone", []term.Term{me, n}); err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Delete("gone", []term.Term{me, n}); err != nil {
						t.Error(err)
						return
					}
				case 2: // batch through ApplyOps (the server's commit path)
					ops := []Op{
						{Insert: true, Pred: "batch", Row: []term.Term{me, n}},
						{Insert: true, Pred: "tmp", Row: []term.Term{me, n}},
						{Insert: false, Pred: "tmp", Row: []term.Term{me, n}},
					}
					if _, err := s.ApplyOps(ops); err != nil {
						t.Error(err)
						return
					}
				case 3: // periodic durability points
					if err := s.Commit(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// One goroutine checkpointing concurrently: compaction must not drop
	// writes racing past it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for w := 0; w < workers; w++ {
		me := term.NewInt(int64(w))
		for i := 0; i < rounds; i++ {
			n := term.NewInt(int64(i))
			switch i % 4 {
			case 0:
				if !s2.DB.Contains("kept", []term.Term{me, n}) {
					t.Fatalf("lost kept(%d, %d)", w, i)
				}
			case 1:
				if s2.DB.Contains("gone", []term.Term{me, n}) {
					t.Fatalf("gone(%d, %d) resurrected", w, i)
				}
			case 2:
				if !s2.DB.Contains("batch", []term.Term{me, n}) {
					t.Fatalf("lost batch(%d, %d)", w, i)
				}
				if s2.DB.Contains("tmp", []term.Term{me, n}) {
					t.Fatalf("tmp(%d, %d) resurrected", w, i)
				}
			}
		}
	}
}
