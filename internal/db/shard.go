package db

// Sharding support: the server partitions the live store into N commit
// lanes keyed by predicate, refined by the first argument's ground code.
// The routing function lives here, next to the data it partitions, so the
// store split, the OCC read-set tagging, and the commit dispatch all agree
// on one definition.

// ShardOf returns the shard index in [0, n) that the tuples of pred whose
// first argument has ground code first belong to. first is 0 for
// zero-arity tuples (term codes are never 0). The mapping is a pure
// function of (pred, first): a ReadPrefix observation and every tuple key
// under that prefix land on the same shard, and full-relation or
// predicate-level observations must be treated as touching every shard.
// With n <= 1 everything maps to shard 0.
func ShardOf(n int, pred string, first uint64) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset)
	for i := 0; i < len(pred); i++ {
		h = fnvByte(h, pred[i])
	}
	h = fnvU64(h, first)
	// Final avalanche so low-entropy codes spread across low bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// OpShard returns the shard index of an op's tuple under ShardOf.
func OpShard(n int, o *Op) int {
	if n <= 1 {
		return 0
	}
	return ShardOf(n, o.Pred, firstCode(o.Row))
}

// Split partitions d's tuples into n databases by ShardOf, sharing the
// stored rows and their keys (stored rows are immutable everywhere, so
// sharing across databases is safe — the same property replica catch-up
// relies on). The source database is left untouched; the shards start with
// empty undo logs. Split(d, 1) is a single shard holding every tuple.
func Split(d *DB, n int) []*DB {
	if n < 1 {
		n = 1
	}
	out := make([]*DB, n)
	for i := range out {
		s := New()
		s.useIndex = d.useIndex
		s.detScan = d.detScan
		out[i] = s
	}
	for _, r := range d.rels {
		for _, tr := range r.rows {
			t := out[ShardOf(n, r.pred, firstCode(tr.row))]
			t.addRow(t.rel(r.pred, r.arity, true), tr.key, tr.row)
		}
	}
	return out
}

// AbsorbFrom adds every tuple of o that d does not already hold, sharing
// stored rows and keys, without recording undo-trail entries: the absorbed
// tuples become committed baseline state. The server uses it to rebuild a
// lagging session replica from the per-shard heads, one shard at a time.
func (d *DB) AbsorbFrom(o *DB) {
	for id, or := range o.rels {
		if len(or.rows) == 0 {
			continue
		}
		r := d.rel(id.pred, id.arity, true)
		for key, tr := range or.rows {
			if _, ok := r.rows[key]; ok {
				continue
			}
			d.addRow(r, key, tr.row)
		}
	}
}

// ShardFingerprint combines the fingerprints of a set of shards into the
// fingerprint the union database would have. The per-tuple contributions
// XOR, so the combination is exact, order-independent, and cheap — tests
// use it to check that shard heads and a monolithic head agree.
func ShardFingerprint(shards []*DB) [2]uint64 {
	var lo, hi uint64
	for _, s := range shards {
		lo ^= s.hashLo
		hi ^= s.hashHi
	}
	return [2]uint64{lo, hi}
}
