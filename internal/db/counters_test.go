package db

import (
	"testing"

	"repro/internal/term"
)

func TestCounters(t *testing.T) {
	d := New()
	a := term.NewSym("a")
	b := term.NewSym("b")
	n1 := term.NewInt(1)
	n2 := term.NewInt(2)
	d.Insert("edge", []term.Term{a, n1})
	d.Insert("edge", []term.Term{a, n2})
	d.Insert("edge", []term.Term{b, n1})
	base := d.Counters()
	if base.Lookups != 3 {
		t.Fatalf("inserts should count presence lookups: %+v", base)
	}

	env := term.NewEnv()
	vid := int64(0)
	newVar := func() term.Term { vid++; return term.NewVar("V", vid) }
	// Ground scan: a point lookup.
	d.Scan("edge", []term.Term{a, n1}, env, func() bool { return true })
	// First-arg bound: index hit (plus a first-time order rebuild).
	x := newVar()
	d.Scan("edge", []term.Term{a, x}, env, func() bool { return true })
	// All vars: full relation scan.
	y := newVar()
	d.Scan("edge", []term.Term{newVar(), y}, env, func() bool { return true })

	c := d.Counters()
	if got := c.Lookups - base.Lookups; got != 1 {
		t.Errorf("ground scan lookups = %d, want 1", got)
	}
	if c.IndexHits != 1 {
		t.Errorf("index hits = %d, want 1", c.IndexHits)
	}
	if c.Scans != 1 {
		t.Errorf("full scans = %d, want 1", c.Scans)
	}
	if c.OrderRebuilds < 2 {
		t.Errorf("order rebuilds = %d, want >= 2 (bucket + relation)", c.OrderRebuilds)
	}
	rebuilds := c.OrderRebuilds

	// Re-scan without mutating: cached snapshots, no new rebuilds.
	d.Scan("edge", []term.Term{a, newVar()}, env, func() bool { return true })
	d.Scan("edge", []term.Term{newVar(), newVar()}, env, func() bool { return true })
	if got := d.Counters().OrderRebuilds; got != rebuilds {
		t.Errorf("cached re-scan rebuilt order: %d -> %d", rebuilds, got)
	}

	// Mutate, scan again: exactly one rebuild for the touched bucket.
	d.Insert("edge", []term.Term{a, term.NewInt(3)})
	d.Scan("edge", []term.Term{a, newVar()}, env, func() bool { return true })
	if got := d.Counters().OrderRebuilds; got != rebuilds+1 {
		t.Errorf("post-mutation rebuilds = %d, want %d", got, rebuilds+1)
	}

	// Clone starts with fresh counters.
	if cc := d.Clone().Counters(); cc != (Counters{}) {
		t.Errorf("clone counters not fresh: %+v", cc)
	}
}
