package db

import (
	"testing"

	"repro/internal/term"
)

// Allocation regression guards for the hot-path operations. The zero-alloc
// claims here are load-bearing: the prover's inner loop calls Contains,
// Scan, Insert, and Delete on every proof step, and a regression to even
// one allocation per call shows up directly in BenchmarkProverTransfer.
// testing.AllocsPerRun disables parallelism and averages over many runs,
// so map-growth noise does not flake these.

func allocRow(a, b string) []term.Term {
	return []term.Term{term.NewSym(a), term.NewSym(b)}
}

// Insert of an already-present tuple must not allocate: the binary key is
// built in the DB's scratch buffer and the hit is found without
// materializing a string.
func TestInsertExistingAllocs(t *testing.T) {
	d := New()
	row := allocRow("alice", "bob")
	d.Insert("edge", row)
	d.ResetTrail()
	n := testing.AllocsPerRun(200, func() {
		d.Insert("edge", row)
	})
	if n != 0 {
		t.Errorf("Insert of existing tuple: %v allocs/op, want 0", n)
	}
}

// Delete of an absent tuple is a pure lookup miss: zero allocations.
func TestDeleteAbsentAllocs(t *testing.T) {
	d := New()
	d.Insert("edge", allocRow("alice", "bob"))
	d.ResetTrail()
	missing := allocRow("carol", "dave")
	n := testing.AllocsPerRun(200, func() {
		d.Delete("edge", missing)
	})
	if n != 0 {
		t.Errorf("Delete of absent tuple: %v allocs/op, want 0", n)
	}
}

// A ground Contains hit must not allocate.
func TestContainsHitAllocs(t *testing.T) {
	d := New()
	row := allocRow("alice", "bob")
	d.Insert("edge", row)
	d.ResetTrail()
	n := testing.AllocsPerRun(200, func() {
		if !d.Contains("edge", row) {
			panic("tuple vanished")
		}
	})
	if n != 0 {
		t.Errorf("ground Contains hit: %v allocs/op, want 0", n)
	}
}

// A fully ground Scan probe (all arguments constant) is a single lookup:
// zero allocations on the hit path.
func TestGroundScanAllocs(t *testing.T) {
	d := New()
	row := allocRow("alice", "bob")
	d.Insert("edge", row)
	d.ResetTrail()
	env := term.NewEnv()
	hits := 0
	n := testing.AllocsPerRun(200, func() {
		d.Scan("edge", row, env, func() bool {
			hits++
			return true
		})
	})
	if hits == 0 {
		t.Fatal("ground scan never matched")
	}
	if n != 0 {
		t.Errorf("ground Scan hit: %v allocs/op, want 0", n)
	}
}

// An insert+delete churn pair of a *new* tuple does allocate (the stored
// row copy, its key, and trail entries) but must stay under a small
// ceiling. This guards the whole mutation path — key building, index
// maintenance, fingerprint fold — against accidental per-op garbage.
func TestChurnAllocBound(t *testing.T) {
	d := New()
	// Pre-grow: a warm relation so map rehashing doesn't count.
	for i := 0; i < 512; i++ {
		d.Insert("p", []term.Term{term.NewInt(int64(i))})
	}
	d.ResetTrail()
	row := []term.Term{term.NewInt(99999)}
	n := testing.AllocsPerRun(200, func() {
		d.Insert("p", row)
		d.Delete("p", row)
		d.ResetTrail()
	})
	const ceiling = 8
	if n > ceiling {
		t.Errorf("insert+delete churn pair: %v allocs/op, want <= %d", n, ceiling)
	}
}
