//go:build !linux

package db

import "os"

// fdatasync falls back to a full fsync where the data-only variant is not
// available.
func fdatasync(f *os.File) error { return f.Sync() }
