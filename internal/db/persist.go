package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/term"
)

// Durability: a write-ahead log plus snapshot checkpoints, giving the
// database the persistence story a laboratory information system needs
// (the genome center's experimental history must survive restarts).
//
// Record format (both WAL and snapshot files share it, after their magic
// headers):
//
//	op byte ('I' insert, 'D' delete)
//	uvarint len(pred), pred bytes
//	uvarint arity
//	uvarint len(key), key bytes        (canonical tuple key; see term.KeyOf)
//	crc32 (IEEE) of everything above, little-endian
//
// Replay stops cleanly at the first torn or corrupt record, so a crash
// mid-append loses at most the unsynced tail — never previously synced
// state.

// File magics.
const (
	walMagic  = "TDWAL1\n"
	snapMagic = "TDSNAP1\n"
)

// ErrCorrupt reports an unreadable persistent file (bad magic).
var ErrCorrupt = errors.New("db: corrupt persistent file")

// WAL is an append-only operation log. Its methods are safe for concurrent
// use: appends from multiple goroutines are serialized by an internal
// mutex (the bufio.Writer underneath is not itself thread-safe).
type WAL struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	len int64
}

// OpenWAL opens (creating if needed) the log at path and positions for
// appending. The file must be empty or start with the WAL magic.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		hdr := make([]byte, len(walMagic))
		if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != walMagic {
			f.Close()
			return nil, fmt.Errorf("%w: %s is not a TD WAL", ErrCorrupt, path)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	return &WAL{f: f, w: bufio.NewWriter(f), len: size}, nil
}

// Append writes one operation record. insert=false means delete.
func (w *WAL) Append(insert bool, pred string, arity int, key string) error {
	rec := encodeRecord(insert, pred, arity, key)
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.w.Write(rec)
	w.len += int64(n)
	return err
}

// Sync flushes buffered records and fsyncs the file.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Size returns the current log length in bytes (including buffered data).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.len
}

func encodeRecord(insert bool, pred string, arity int, key string) []byte {
	var buf []byte
	if insert {
		buf = append(buf, 'I')
	} else {
		buf = append(buf, 'D')
	}
	buf = binary.AppendUvarint(buf, uint64(len(pred)))
	buf = append(buf, pred...)
	buf = binary.AppendUvarint(buf, uint64(arity))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// record is a decoded log entry.
type record struct {
	insert bool
	pred   string
	arity  int
	key    string
}

// readRecords decodes records until EOF or the first torn/corrupt record
// (which is silently treated as the end of the usable log).
func readRecords(r *bufio.Reader) []record {
	var out []record
	for {
		rec, ok := readOne(r)
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

func readOne(r *bufio.Reader) (record, bool) {
	var raw []byte
	op, err := r.ReadByte()
	if err != nil {
		return record{}, false
	}
	if op != 'I' && op != 'D' {
		return record{}, false
	}
	raw = append(raw, op)
	readU := func() (uint64, bool) {
		v, err := binary.ReadUvarint(&teeReader{r: r, buf: &raw})
		return v, err == nil
	}
	readN := func(n uint64) (string, bool) {
		if n > 1<<30 {
			return "", false
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", false
		}
		raw = append(raw, b...)
		return string(b), true
	}
	predLen, ok := readU()
	if !ok {
		return record{}, false
	}
	pred, ok := readN(predLen)
	if !ok {
		return record{}, false
	}
	arity, ok := readU()
	if !ok {
		return record{}, false
	}
	keyLen, ok := readU()
	if !ok {
		return record{}, false
	}
	key, ok := readN(keyLen)
	if !ok {
		return record{}, false
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return record{}, false
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(raw) {
		return record{}, false
	}
	return record{insert: op == 'I', pred: pred, arity: int(arity), key: key}, true
}

// teeReader lets ReadUvarint consume bytes while recording them for the CRC.
type teeReader struct {
	r   *bufio.Reader
	buf *[]byte
}

func (t *teeReader) ReadByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		*t.buf = append(*t.buf, b)
	}
	return b, err
}

// WriteSnapshot writes the database's full contents to path atomically
// (write to a temp file, fsync, rename).
func WriteSnapshot(d *DB, path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(snapMagic); err != nil {
		f.Close()
		return err
	}
	for _, ra := range d.Relations() {
		for _, row := range d.Tuples(ra.Pred, ra.Arity) {
			if _, err := w.Write(encodeRecord(true, ra.Pred, ra.Arity, term.KeyOf(row))); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadSnapshot loads a snapshot file into a fresh database.
func ReadSnapshot(path string, opts ...Option) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, hdr); err != nil || string(hdr) != snapMagic {
		return nil, fmt.Errorf("%w: %s is not a TD snapshot", ErrCorrupt, path)
	}
	d := New(opts...)
	if err := applyRecords(d, readRecords(r)); err != nil {
		return nil, err
	}
	d.ResetTrail()
	return d, nil
}

// ReplayWAL applies the operations logged at path on top of d. It returns
// the number of records applied; a torn tail is ignored.
func ReplayWAL(d *DB, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil // empty/truncated log: nothing to replay
		}
		return 0, err
	}
	if string(hdr) != walMagic {
		return 0, fmt.Errorf("%w: %s is not a TD WAL", ErrCorrupt, path)
	}
	recs := readRecords(r)
	if err := applyRecords(d, recs); err != nil {
		return 0, err
	}
	d.ResetTrail()
	return len(recs), nil
}

func applyRecords(d *DB, recs []record) error {
	for _, rec := range recs {
		row, err := term.DecodeKey(rec.key)
		if err != nil {
			return fmt.Errorf("db: undecodable tuple for %s/%d: %w", rec.pred, rec.arity, err)
		}
		if len(row) != rec.arity {
			return fmt.Errorf("db: arity mismatch for %s: record says %d, key has %d", rec.pred, rec.arity, len(row))
		}
		if rec.insert {
			d.Insert(rec.pred, row)
		} else {
			d.Delete(rec.pred, row)
		}
	}
	return nil
}

// Store couples a database with a WAL and snapshot file, providing
// open-or-recover semantics and checkpointing. Store methods are safe for
// concurrent use; callers that also touch the DB field directly must
// provide their own coordination.
type Store struct {
	mu       sync.Mutex
	DB       *DB
	snapPath string
	walPath  string
	wal      *WAL
}

// OpenStore recovers (or initializes) a persistent database: load the
// snapshot if present, replay the WAL on top, and reopen the WAL for
// appending.
func OpenStore(snapPath, walPath string, opts ...Option) (*Store, error) {
	var d *DB
	if _, err := os.Stat(snapPath); err == nil {
		d, err = ReadSnapshot(snapPath, opts...)
		if err != nil {
			return nil, err
		}
	} else {
		d = New(opts...)
	}
	if _, err := os.Stat(walPath); err == nil {
		if _, err := ReplayWAL(d, walPath); err != nil {
			return nil, err
		}
	}
	wal, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	return &Store{DB: d, snapPath: snapPath, walPath: walPath, wal: wal}, nil
}

// Insert inserts and logs a tuple; no-ops (set semantics) are not logged.
func (s *Store) Insert(pred string, row []term.Term) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.DB.Insert(pred, row) {
		return false, nil
	}
	s.DB.ResetTrail()
	return true, s.wal.Append(true, pred, len(row), term.KeyOf(row))
}

// Delete deletes and logs a tuple; no-ops are not logged.
func (s *Store) Delete(pred string, row []term.Term) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.DB.Delete(pred, row) {
		return false, nil
	}
	s.DB.ResetTrail()
	return true, s.wal.Append(false, pred, len(row), term.KeyOf(row))
}

// ApplyOps applies and logs a batch of operations as one unit, holding the
// store lock for the whole batch so no other appender interleaves with it.
// Per-op no-ops (set semantics) are not logged. It does not sync; call
// Commit to make the batch durable.
func (s *Store) ApplyOps(ops []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range ops {
		var changed bool
		if o.Insert {
			changed = s.DB.Insert(o.Pred, o.Row)
		} else {
			changed = s.DB.Delete(o.Pred, o.Row)
		}
		if !changed {
			continue
		}
		if err := s.wal.Append(o.Insert, o.Pred, len(o.Row), o.Key()); err != nil {
			s.DB.ResetTrail()
			return err
		}
	}
	s.DB.ResetTrail()
	return nil
}

// Commit makes all logged operations durable (flush + fsync).
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Sync()
}

// WALSize returns the WAL length in bytes, including buffered data.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Size()
}

// Checkpoint writes a fresh snapshot and truncates the WAL.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.wal.Sync(); err != nil {
		return err
	}
	if err := WriteSnapshot(s.DB, s.snapPath); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	if err := os.Remove(s.walPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	wal, err := OpenWAL(s.walPath)
	if err != nil {
		return err
	}
	s.wal = wal
	return nil
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}
