package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/term"
)

// Durability: a write-ahead log plus snapshot checkpoints, giving the
// database the persistence story a laboratory information system needs
// (the genome center's experimental history must survive restarts).
//
// Record format (both WAL and snapshot files share it, after their magic
// headers):
//
//	op byte ('I' insert, 'D' delete)
//	uvarint len(pred), pred bytes
//	uvarint arity
//	uvarint len(key), key bytes        (canonical tuple key; see term.KeyOf)
//	crc32 (IEEE) of everything above, little-endian
//
// Replay stops cleanly at the first torn or corrupt record, so a crash
// mid-append loses at most the unsynced tail — never previously synced
// state.

// File magics.
const (
	walMagic  = "TDWAL1\n"
	snapMagic = "TDSNAP1\n"
)

// ErrCorrupt reports an unreadable persistent file (bad magic).
var ErrCorrupt = errors.New("db: corrupt persistent file")

// WAL is an append-only operation log. Its methods are safe for concurrent
// use.
//
// Appending and syncing are deliberately split: Append buffers a record and
// returns its end offset (a byte LSN), Sync makes everything appended so
// far durable in one write+fsync. A group committer can therefore batch
// many appends under a single fsync and acknowledge every commit whose LSN
// the sync covered. The two sides are double-buffered: Sync swaps the
// append buffer out under the short buffer mutex and performs the write
// and fsync holding only the sync mutex, so appends (which sit on the
// server's commit critical section) never wait behind an in-flight fsync.
type WAL struct {
	mu      sync.Mutex // guards buf/scratch/len/synced/err
	f       *os.File
	buf     []byte // records appended since the last buffer swap
	scratch []byte // spare buffer recycled by Sync
	len     int64  // total appended bytes (file + buf)
	synced  int64  // durable through this offset
	err     error  // sticky write failure: the log is broken past synced

	syncMu sync.Mutex // serializes write+fsync; never blocks Append
}

// OpenWAL opens (creating if needed) the log at path and positions for
// appending. The file must be empty or start with the WAL magic.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		hdr := make([]byte, len(walMagic))
		if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != walMagic {
			f.Close()
			return nil, fmt.Errorf("%w: %s is not a TD WAL", ErrCorrupt, path)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	return &WAL{f: f, len: size, synced: size}, nil
}

// Append buffers one operation record and returns the log length after it —
// the record's byte LSN. insert=false means delete. The record is not
// durable until a Sync whose returned offset reaches the LSN.
func (w *WAL) Append(insert bool, pred string, arity int, key string) (int64, error) {
	rec := encodeRecord(insert, pred, arity, key)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.len, w.err
	}
	w.buf = append(w.buf, rec...)
	w.len += int64(len(rec))
	return w.len, nil
}

// Sync writes buffered records to the file and fsyncs it, returning the
// byte offset the log is now durable through: every record whose Append
// LSN is at or below it survived. Appends proceed concurrently — only the
// buffer swap takes the append mutex; the write and fsync do not.
func (w *WAL) Sync() (int64, error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		defer w.mu.Unlock()
		return w.synced, w.err
	}
	target := w.len
	data := w.buf
	w.buf = w.scratch[:0]
	w.scratch = nil
	w.mu.Unlock()

	var err error
	if len(data) > 0 {
		_, err = w.f.Write(data)
	}
	if err == nil {
		err = fdatasync(w.f)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		// A partial write may have torn the tail; the log is unusable past
		// the last full sync. Poison it rather than risk interleaving
		// later appends after the gap.
		w.err = err
		return w.synced, err
	}
	w.scratch = data[:0]
	if target > w.synced {
		w.synced = target
	}
	return w.synced, nil
}

// Synced returns the byte offset the log is known durable through.
func (w *WAL) Synced() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if _, err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Size returns the current log length in bytes (including buffered data).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.len
}

func encodeRecord(insert bool, pred string, arity int, key string) []byte {
	var buf []byte
	if insert {
		buf = append(buf, 'I')
	} else {
		buf = append(buf, 'D')
	}
	buf = binary.AppendUvarint(buf, uint64(len(pred)))
	buf = append(buf, pred...)
	buf = binary.AppendUvarint(buf, uint64(arity))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// record is a decoded log entry.
type record struct {
	insert bool
	pred   string
	arity  int
	key    string
}

// readRecords decodes records until EOF or the first torn/corrupt record
// (which is silently treated as the end of the usable log). The second
// result is the byte length of the valid prefix read.
func readRecords(r *bufio.Reader) ([]record, int64) {
	var out []record
	var n int64
	for {
		rec, size, ok := readOne(r)
		if !ok {
			return out, n
		}
		out = append(out, rec)
		n += size
	}
}

func readOne(r *bufio.Reader) (record, int64, bool) {
	var raw []byte
	op, err := r.ReadByte()
	if err != nil {
		return record{}, 0, false
	}
	if op != 'I' && op != 'D' {
		return record{}, 0, false
	}
	raw = append(raw, op)
	readU := func() (uint64, bool) {
		v, err := binary.ReadUvarint(&teeReader{r: r, buf: &raw})
		return v, err == nil
	}
	readN := func(n uint64) (string, bool) {
		if n > 1<<30 {
			return "", false
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", false
		}
		raw = append(raw, b...)
		return string(b), true
	}
	predLen, ok := readU()
	if !ok {
		return record{}, 0, false
	}
	pred, ok := readN(predLen)
	if !ok {
		return record{}, 0, false
	}
	arity, ok := readU()
	if !ok {
		return record{}, 0, false
	}
	keyLen, ok := readU()
	if !ok {
		return record{}, 0, false
	}
	key, ok := readN(keyLen)
	if !ok {
		return record{}, 0, false
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return record{}, 0, false
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(raw) {
		return record{}, 0, false
	}
	return record{insert: op == 'I', pred: pred, arity: int(arity), key: key}, int64(len(raw)) + 4, true
}

// teeReader lets ReadUvarint consume bytes while recording them for the CRC.
type teeReader struct {
	r   *bufio.Reader
	buf *[]byte
}

func (t *teeReader) ReadByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		*t.buf = append(*t.buf, b)
	}
	return b, err
}

// WriteSnapshot writes the database's full contents to path atomically
// (write to a temp file, fsync, rename).
func WriteSnapshot(d *DB, path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(snapMagic); err != nil {
		f.Close()
		return err
	}
	for _, ra := range d.Relations() {
		for _, row := range d.Tuples(ra.Pred, ra.Arity) {
			if _, err := w.Write(encodeRecord(true, ra.Pred, ra.Arity, term.KeyOf(row))); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadSnapshot loads a snapshot file into a fresh database.
func ReadSnapshot(path string, opts ...Option) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, hdr); err != nil || string(hdr) != snapMagic {
		return nil, fmt.Errorf("%w: %s is not a TD snapshot", ErrCorrupt, path)
	}
	d := New(opts...)
	recs, _ := readRecords(r)
	if err := applyRecords(d, recs); err != nil {
		return nil, err
	}
	d.ResetTrail()
	return d, nil
}

// ReplayWAL applies the operations logged at path on top of d. It returns
// the number of records applied; a torn tail is ignored.
func ReplayWAL(d *DB, path string) (int, error) {
	n, _, err := replayWAL(d, path)
	return n, err
}

// replayWAL is ReplayWAL plus the byte length of the valid log prefix
// (including the magic header), so recovery can truncate a torn tail
// before appending new records after it.
func replayWAL(d *DB, path string) (int, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, nil // empty/truncated log: nothing to replay
		}
		return 0, 0, err
	}
	if string(hdr) != walMagic {
		return 0, 0, fmt.Errorf("%w: %s is not a TD WAL", ErrCorrupt, path)
	}
	recs, bytes := readRecords(r)
	if err := applyRecords(d, recs); err != nil {
		return 0, 0, err
	}
	d.ResetTrail()
	return len(recs), int64(len(walMagic)) + bytes, nil
}

func applyRecords(d *DB, recs []record) error {
	for _, rec := range recs {
		row, err := term.DecodeKey(rec.key)
		if err != nil {
			return fmt.Errorf("db: undecodable tuple for %s/%d: %w", rec.pred, rec.arity, err)
		}
		if len(row) != rec.arity {
			return fmt.Errorf("db: arity mismatch for %s: record says %d, key has %d", rec.pred, rec.arity, len(row))
		}
		if rec.insert {
			d.Insert(rec.pred, row)
		} else {
			d.Delete(rec.pred, row)
		}
	}
	return nil
}

// Store couples a database with a WAL and snapshot file, providing
// open-or-recover semantics and checkpointing. Store methods are safe for
// concurrent use; callers that also touch the DB field directly must
// provide their own coordination.
type Store struct {
	mu       sync.Mutex
	DB       *DB
	snapPath string
	walPath  string
	wal      *WAL
	syncHook func() error // test-only fault injection; see SetSyncHook
}

// OpenStore recovers (or initializes) a persistent database: load the
// snapshot if present, replay the WAL on top, and reopen the WAL for
// appending.
func OpenStore(snapPath, walPath string, opts ...Option) (*Store, error) {
	var d *DB
	if _, err := os.Stat(snapPath); err == nil {
		d, err = ReadSnapshot(snapPath, opts...)
		if err != nil {
			return nil, err
		}
	} else {
		d = New(opts...)
	}
	if info, err := os.Stat(walPath); err == nil {
		_, valid, err := replayWAL(d, walPath)
		if err != nil {
			return nil, err
		}
		// A crash mid-flush can leave a torn record at the tail. Replay
		// stopped before it; truncate so records appended from now on land
		// directly after the valid prefix instead of behind unreadable
		// garbage (which the next replay would stop at, losing them).
		if valid > 0 && valid < info.Size() {
			if err := os.Truncate(walPath, valid); err != nil {
				return nil, err
			}
		}
	}
	wal, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	return &Store{DB: d, snapPath: snapPath, walPath: walPath, wal: wal}, nil
}

// Insert inserts and logs a tuple; no-ops (set semantics) are not logged.
func (s *Store) Insert(pred string, row []term.Term) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.DB.Insert(pred, row) {
		return false, nil
	}
	s.DB.ResetTrail()
	_, err := s.wal.Append(true, pred, len(row), term.KeyOf(row))
	return true, err
}

// Delete deletes and logs a tuple; no-ops are not logged.
func (s *Store) Delete(pred string, row []term.Term) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.DB.Delete(pred, row) {
		return false, nil
	}
	s.DB.ResetTrail()
	_, err := s.wal.Append(false, pred, len(row), term.KeyOf(row))
	return true, err
}

// ApplyOps applies and logs a batch of operations as one unit, holding the
// store lock for the whole batch so no other appender interleaves with it.
// Per-op no-ops (set semantics) are not logged. It does not sync; the
// returned byte LSN is the WAL length after the batch — the batch is
// durable once a Sync covers it (or after Commit).
func (s *Store) ApplyOps(ops []Op) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lsn := s.wal.Size()
	for i := range ops {
		o := &ops[i]
		if !s.DB.ApplyOne(o) {
			continue
		}
		end, err := s.wal.Append(o.Insert, o.Pred, len(o.Row), o.Key())
		if err != nil {
			s.DB.ResetTrail()
			return lsn, err
		}
		lsn = end
	}
	s.DB.ResetTrail()
	return lsn, nil
}

// Sync makes all logged operations durable (flush + fsync), returning the
// byte LSN the WAL is now durable through. It deliberately does NOT hold
// the store mutex across the fsync: ApplyOps (the commit critical section)
// must never queue behind an in-flight sync.
func (s *Store) Sync() (int64, error) {
	s.mu.Lock()
	hook := s.syncHook
	s.mu.Unlock()
	if hook != nil {
		if err := hook(); err != nil {
			return s.wal.Synced(), err
		}
	}
	return s.wal.Sync()
}

// SyncedLSN returns the byte offset the WAL is known durable through.
func (s *Store) SyncedLSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Synced()
}

// SetSyncHook installs a fault-injection hook, called before every Sync
// and Commit; a non-nil error is returned instead of syncing, leaving the
// buffered WAL tail unflushed — a crashed disk, as far as callers can
// tell. Testing only.
func (s *Store) SetSyncHook(h func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncHook = h
}

// Commit makes all logged operations durable (flush + fsync).
func (s *Store) Commit() error {
	_, err := s.Sync()
	return err
}

// WALSize returns the WAL length in bytes, including buffered data.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Size()
}

// Checkpoint writes a fresh snapshot and truncates the WAL.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.wal.Sync(); err != nil {
		return err
	}
	if err := WriteSnapshot(s.DB, s.snapPath); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	if err := os.Remove(s.walPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	wal, err := OpenWAL(s.walPath)
	if err != nil {
		return err
	}
	s.wal = wal
	return nil
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}
