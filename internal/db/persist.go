package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/term"
)

// Durability: a write-ahead log plus snapshot checkpoints, giving the
// database the persistence story a laboratory information system needs
// (the genome center's experimental history must survive restarts).
//
// Operation record format (WAL and snapshot files share it, after their
// magic headers):
//
//	op byte ('I' insert, 'D' delete)
//	uvarint len(pred), pred bytes
//	uvarint arity
//	uvarint len(key), key bytes        (canonical tuple key; see term.KeyOf)
//	crc32 (IEEE) of everything above, little-endian
//
// WAL v2 ("TDWAL2\n") adds a commit-boundary record after each commit's
// operations, stamping them with the commit's LSN:
//
//	'C'
//	uvarint LSN
//	crc32 (IEEE) of everything above, little-endian
//
// Recovery applies only complete commit blocks — a block's ops followed by
// its boundary — whose LSN exceeds the booted snapshot's manifest LSN, and
// truncates the log at the end of the last complete block. A torn tail
// (crash mid-append) or an orphaned run of ops whose boundary never reached
// the disk is therefore dropped, never half-applied or absorbed into the
// next commit.
//
// Snapshot v2 ("TDSNAP2\n") opens with a manifest header:
//
//	uvarint format version (2)
//	uvarint LSN of the last commit the snapshot covers
//	uvarint record count
//	crc32 (IEEE) of the three fields, little-endian
//
// followed by insert records. Legacy v1 files of both kinds stay readable;
// OpenStore rewrites a v1 WAL in v2 framing on boot (see upgradeWALv1).

// File magics. The v2 forms are current; v1 is read-back only.
const (
	walMagic    = "TDWAL2\n"
	walMagicV1  = "TDWAL1\n"
	snapMagic   = "TDSNAP2\n"
	snapMagicV1 = "TDSNAP1\n"
)

// ErrCorrupt reports an unreadable persistent file (bad magic or manifest).
var ErrCorrupt = errors.New("db: corrupt persistent file")

// WAL is an append-only operation log. Its methods are safe for concurrent
// use.
//
// Appending and syncing are deliberately split: Append buffers a record and
// returns its end offset (a byte offset within this log), Sync makes
// everything appended so far durable in one write+fsync. A group committer
// can therefore batch many appends under a single fsync and acknowledge
// every commit the sync covered. The two sides are double-buffered: Sync
// swaps the append buffer out under the short buffer mutex and performs the
// write and fsync holding only the sync mutex, so appends (which sit on the
// server's commit critical section) never wait behind an in-flight fsync.
type WAL struct {
	mu      sync.Mutex // guards buf/scratch/len/synced/err/retired
	f       *os.File
	buf     []byte // records appended since the last buffer swap
	scratch []byte // spare buffer recycled by Sync
	len     int64  // total appended bytes (file + buf)
	synced  int64  // durable through this offset
	err     error  // sticky write failure: the log is broken past synced
	retired bool   // replaced by a rotation; Sync is a clean no-op

	syncMu sync.Mutex // serializes write+fsync; never blocks Append
}

// OpenWAL opens (creating if needed) the log at path and positions for
// appending. The file must be empty or start with the v2 WAL magic
// (OpenStore upgrades legacy v1 logs before appending to them).
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		hdr := make([]byte, len(walMagic))
		if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != walMagic {
			f.Close()
			return nil, fmt.Errorf("%w: %s is not a v2 TD WAL", ErrCorrupt, path)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	return &WAL{f: f, len: size, synced: size}, nil
}

// Append buffers one operation record and returns the log length after it.
// insert=false means delete. The record is not durable until a Sync whose
// returned offset reaches it.
func (w *WAL) Append(insert bool, pred string, arity int, key string) (int64, error) {
	return w.append(encodeRecord(insert, pred, arity, key))
}

// AppendBoundary buffers a commit-boundary record, stamping every operation
// appended since the previous boundary as one commit block at lsn.
func (w *WAL) AppendBoundary(lsn uint64) (int64, error) {
	return w.append(encodeBoundary(lsn))
}

func (w *WAL) append(rec []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.len, w.err
	}
	if w.retired {
		return w.len, errors.New("db: append to a rotated WAL")
	}
	w.buf = append(w.buf, rec...)
	w.len += int64(len(rec))
	return w.len, nil
}

// Sync writes buffered records to the file and fsyncs it, returning the
// byte offset the log is now durable through: every record whose Append
// offset is at or below it survived. Appends proceed concurrently — only
// the buffer swap takes the append mutex; the write and fsync do not. On a
// log retired by rotation, Sync is a clean no-op: the rotation drained the
// buffer, and the store directs racing syncers to the replacement log.
func (w *WAL) Sync() (int64, error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		defer w.mu.Unlock()
		return w.synced, w.err
	}
	if w.retired {
		defer w.mu.Unlock()
		return w.synced, nil
	}
	target := w.len
	data := w.buf
	w.buf = w.scratch[:0]
	w.scratch = nil
	w.mu.Unlock()

	var err error
	if len(data) > 0 {
		_, err = w.f.Write(data)
	}
	if err == nil {
		err = fdatasync(w.f)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		// A partial write may have torn the tail; the log is unusable past
		// the last full sync. Poison it rather than risk interleaving
		// later appends after the gap.
		w.err = err
		return w.synced, err
	}
	w.scratch = data[:0]
	if target > w.synced {
		w.synced = target
	}
	return w.synced, nil
}

// retire closes the log file after a rotation replaced it. Subsequent Sync
// calls are clean no-ops rather than errors: a group-commit flusher that
// raced the rotation must not poison the pipeline over a file that no
// longer matters — the store re-syncs the replacement log (see Store.Sync).
// Callers drain the buffer (Sync) before retiring.
func (w *WAL) retire() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	w.retired = true
	w.mu.Unlock()
	return w.f.Close()
}

// Synced returns the byte offset the log is known durable through.
func (w *WAL) Synced() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if _, err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Size returns the current log length in bytes (including buffered data).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.len
}

func encodeRecord(insert bool, pred string, arity int, key string) []byte {
	var buf []byte
	if insert {
		buf = append(buf, 'I')
	} else {
		buf = append(buf, 'D')
	}
	buf = binary.AppendUvarint(buf, uint64(len(pred)))
	buf = append(buf, pred...)
	buf = binary.AppendUvarint(buf, uint64(arity))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// encodeBoundary frames a commit boundary: 'C', the commit's LSN, CRC.
func encodeBoundary(lsn uint64) []byte {
	buf := []byte{'C'}
	buf = binary.AppendUvarint(buf, lsn)
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// record is a decoded operation entry.
type record struct {
	insert bool
	pred   string
	arity  int
	key    string
}

// walEntry is one decoded log entry: an operation or a commit boundary.
type walEntry struct {
	boundary bool
	lsn      uint64 // boundary only
	rec      record // operation only
}

// readRecords decodes operation records until EOF or the first torn,
// corrupt, or non-operation entry (silently treated as the end of the
// usable stream). The second result is the byte length of the prefix read.
func readRecords(r *bufio.Reader) ([]record, int64) {
	var out []record
	var n int64
	for {
		e, size, ok := readEntry(r)
		if !ok || e.boundary {
			return out, n
		}
		out = append(out, e.rec)
		n += size
	}
}

// readEntry decodes one entry; ok is false at EOF or the first torn or
// corrupt entry.
func readEntry(r *bufio.Reader) (walEntry, int64, bool) {
	op, err := r.ReadByte()
	if err != nil {
		return walEntry{}, 0, false
	}
	raw := []byte{op}
	readU := func() (uint64, bool) {
		v, err := binary.ReadUvarint(&teeReader{r: r, buf: &raw})
		return v, err == nil
	}
	checkCRC := func() bool {
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return false
		}
		return binary.LittleEndian.Uint32(crcBuf[:]) == crc32.ChecksumIEEE(raw)
	}
	switch op {
	case 'C':
		lsn, ok := readU()
		if !ok || !checkCRC() {
			return walEntry{}, 0, false
		}
		return walEntry{boundary: true, lsn: lsn}, int64(len(raw)) + 4, true
	case 'I', 'D':
	default:
		return walEntry{}, 0, false
	}
	readN := func(n uint64) (string, bool) {
		if n > 1<<30 {
			return "", false
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", false
		}
		raw = append(raw, b...)
		return string(b), true
	}
	predLen, ok := readU()
	if !ok {
		return walEntry{}, 0, false
	}
	pred, ok := readN(predLen)
	if !ok {
		return walEntry{}, 0, false
	}
	arity, ok := readU()
	if !ok {
		return walEntry{}, 0, false
	}
	keyLen, ok := readU()
	if !ok {
		return walEntry{}, 0, false
	}
	key, ok := readN(keyLen)
	if !ok {
		return walEntry{}, 0, false
	}
	if !checkCRC() {
		return walEntry{}, 0, false
	}
	return walEntry{rec: record{insert: op == 'I', pred: pred, arity: int(arity), key: key}}, int64(len(raw)) + 4, true
}

// teeReader lets ReadUvarint consume bytes while recording them for the CRC.
type teeReader struct {
	r   *bufio.Reader
	buf *[]byte
}

func (t *teeReader) ReadByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		*t.buf = append(*t.buf, b)
	}
	return b, err
}

// Manifest describes a snapshot file: its format version, the LSN of the
// last commit it covers, its record count, and — for snapshots written by
// a sharded store (format version 3) — the shard count the store was
// partitioned into when the checkpoint was taken. Shards is 0 for v1/v2
// snapshots and for stores that never pinned a shard count.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	LSN           uint64 `json:"lsn"`
	Records       uint64 `json:"records"`
	Shards        int    `json:"shards,omitempty"`
}

// encodeManifest picks the format version from what it has to record: a
// pinned shard count needs the v3 header's extra field; without one the
// header is byte-identical to every v2 snapshot ever written.
func encodeManifest(lsn, count uint64, shards int) []byte {
	var buf []byte
	if shards > 0 {
		buf = binary.AppendUvarint(buf, 3)
	} else {
		buf = binary.AppendUvarint(buf, 2)
	}
	buf = binary.AppendUvarint(buf, lsn)
	buf = binary.AppendUvarint(buf, count)
	if shards > 0 {
		buf = binary.AppendUvarint(buf, uint64(shards))
	}
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

func readManifestHeader(r *bufio.Reader) (Manifest, error) {
	var raw []byte
	tee := &teeReader{r: r, buf: &raw}
	version, err := binary.ReadUvarint(tee)
	if err != nil {
		return Manifest{}, err
	}
	lsn, err := binary.ReadUvarint(tee)
	if err != nil {
		return Manifest{}, err
	}
	count, err := binary.ReadUvarint(tee)
	if err != nil {
		return Manifest{}, err
	}
	var shards uint64
	if version >= 3 {
		if shards, err = binary.ReadUvarint(tee); err != nil {
			return Manifest{}, err
		}
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return Manifest{}, err
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(raw) {
		return Manifest{}, errors.New("manifest checksum mismatch")
	}
	return Manifest{FormatVersion: int(version), LSN: lsn, Records: count, Shards: int(shards)}, nil
}

// syncDir fsyncs path's parent directory, making a just-renamed or created
// directory entry durable — without it the rename itself can be lost on
// power failure even though both files' contents were synced.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSnapshotFile writes a v2 snapshot atomically: magic, manifest
// header, then the records emit produces — through a temp file that is
// fsynced, renamed over path, and sealed with a parent-directory fsync.
// midHook, when non-nil, runs with the temp file written but nothing
// renamed (checkpoint crash injection; see Store.SetCheckpointHook).
func writeSnapshotFile(path string, lsn, count uint64, shards int, emit func(w *bufio.Writer) error, midHook func() error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(snapMagic); err != nil {
		f.Close()
		return err
	}
	if _, err := w.Write(encodeManifest(lsn, count, shards)); err != nil {
		f.Close()
		return err
	}
	if err := emit(w); err != nil {
		f.Close()
		return err
	}
	if midHook != nil {
		if err := midHook(); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(path)
}

// WriteSnapshot writes the database's full contents to path atomically as
// a v2 snapshot with a zero-LSN manifest. Callers with a real checkpoint
// LSN go through the Store checkpointing paths instead.
func WriteSnapshot(d *DB, path string) error {
	return writeSnapshotFile(path, 0, uint64(d.Size()), 0, func(w *bufio.Writer) error {
		for _, ra := range d.Relations() {
			for _, row := range d.Tuples(ra.Pred, ra.Arity) {
				if _, err := w.Write(encodeRecord(true, ra.Pred, ra.Arity, term.KeyOf(row))); err != nil {
					return err
				}
			}
		}
		return nil
	}, nil)
}

// ReadSnapshot loads a snapshot file (v1 or v2) into a fresh database.
func ReadSnapshot(path string, opts ...Option) (*DB, error) {
	d, _, err := readSnapshotManifest(path, opts...)
	return d, err
}

// ReadManifest reads a snapshot's manifest without loading its records into
// a database. Legacy v1 snapshots, which predate manifests, are scanned to
// count records and reported as format version 1 at LSN 0.
func ReadManifest(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Manifest{}, fmt.Errorf("%w: %s is not a TD snapshot", ErrCorrupt, path)
	}
	switch string(hdr) {
	case snapMagic:
		man, err := readManifestHeader(r)
		if err != nil {
			return Manifest{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		return man, nil
	case snapMagicV1:
		recs, _ := readRecords(r)
		return Manifest{FormatVersion: 1, Records: uint64(len(recs))}, nil
	default:
		return Manifest{}, fmt.Errorf("%w: %s is not a TD snapshot", ErrCorrupt, path)
	}
}

func readSnapshotManifest(path string, opts ...Option) (*DB, Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Manifest{}, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, Manifest{}, fmt.Errorf("%w: %s is not a TD snapshot", ErrCorrupt, path)
	}
	var man Manifest
	switch string(hdr) {
	case snapMagic:
		man, err = readManifestHeader(r)
		if err != nil {
			return nil, Manifest{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
	case snapMagicV1:
		man = Manifest{FormatVersion: 1}
	default:
		return nil, Manifest{}, fmt.Errorf("%w: %s is not a TD snapshot", ErrCorrupt, path)
	}
	d := New(opts...)
	recs, _ := readRecords(r)
	if man.FormatVersion >= 2 && uint64(len(recs)) != man.Records {
		return nil, Manifest{}, fmt.Errorf("%w: %s: manifest says %d records, file holds %d",
			ErrCorrupt, path, man.Records, len(recs))
	}
	if man.FormatVersion == 1 {
		man.Records = uint64(len(recs))
	}
	if err := applyRecords(d, recs); err != nil {
		return nil, Manifest{}, err
	}
	d.ResetTrail()
	return d, man, nil
}

// scanWALFile streams the log's decoded entries to fn until EOF, the first
// torn or corrupt entry, or fn returning false. end is the byte offset just
// past the entry. It returns the framing version found (2 for an empty or
// missing-header file, which only fresh logs are).
func scanWALFile(path string, fn func(e walEntry, end int64) bool) (version int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 2, nil // empty/truncated header: nothing to scan
		}
		return 0, err
	}
	switch string(hdr) {
	case walMagic:
		version = 2
	case walMagicV1:
		version = 1
	default:
		return 0, fmt.Errorf("%w: %s is not a TD WAL", ErrCorrupt, path)
	}
	offset := int64(len(walMagic))
	for {
		e, n, ok := readEntry(r)
		if !ok {
			return version, nil
		}
		offset += n
		if !fn(e, offset) {
			return version, nil
		}
	}
}

// WALEntry is one decoded write-ahead-log entry, as surfaced to tools
// (cmd/tdlog's log dump mode).
type WALEntry struct {
	Boundary bool   // commit boundary (v2): stamps the ops before it
	LSN      uint64 // boundary only: the commit's LSN
	Insert   bool   // operation only: insert vs delete
	Pred     string // operation only
	Arity    int    // operation only
	Key      string // operation only: canonical tuple key (term.DecodeKey)
}

// EncodeWALRecord encodes one op record in the on-disk framing (identical
// in v1 and v2 logs) — the inverse of what ScanWAL decodes, for tools and
// tests that fabricate log files.
func EncodeWALRecord(insert bool, pred string, arity int, key string) []byte {
	return encodeRecord(insert, pred, arity, key)
}

// ScanWAL streams the log's entries to fn in order, stopping cleanly at
// the first torn or corrupt entry (or when fn returns false), and reports
// the framing version it found (1 or 2).
func ScanWAL(path string, fn func(WALEntry) bool) (version int, err error) {
	return scanWALFile(path, func(e walEntry, _ int64) bool {
		if e.boundary {
			return fn(WALEntry{Boundary: true, LSN: e.lsn})
		}
		return fn(WALEntry{Insert: e.rec.insert, Pred: e.rec.pred, Arity: e.rec.arity, Key: e.rec.key})
	})
}

// ReplayWAL applies the operations logged at path on top of d, accepting
// both v1 and v2 framing and ignoring commit boundaries — a raw replay for
// tools and tests. Store recovery is stricter: it applies only complete
// commit blocks past the booted snapshot's LSN (see replayCommits).
func ReplayWAL(d *DB, path string) (int, error) {
	n := 0
	var applyErr error
	_, err := scanWALFile(path, func(e walEntry, _ int64) bool {
		if e.boundary {
			return true
		}
		if applyErr = applyRecords(d, []record{e.rec}); applyErr != nil {
			return false
		}
		n++
		return true
	})
	d.ResetTrail()
	if err != nil {
		return 0, err
	}
	if applyErr != nil {
		return 0, applyErr
	}
	return n, nil
}

// replayInfo reports what a commit-block replay did.
type replayInfo struct {
	applied  int    // op records applied (blocks past the snapshot LSN)
	skipped  int    // op records skipped (blocks the snapshot covers)
	lastLSN  uint64 // highest boundary LSN seen
	validLen int64  // byte length of the last complete commit block
}

// replayCommits applies the WAL's complete commit blocks with LSN above
// snapLSN onto d. Blocks at or below snapLSN are already reflected in the
// snapshot and are skipped — replaying them would double-apply (and
// resurrect tuples that later commits deleted). validLen is the truncation
// point: it discards both torn tails and orphaned op runs whose commit
// boundary never reached the disk.
func replayCommits(d *DB, path string, snapLSN uint64) (replayInfo, error) {
	info := replayInfo{validLen: int64(len(walMagic))}
	var pending []record
	var applyErr error
	_, err := scanWALFile(path, func(e walEntry, end int64) bool {
		if !e.boundary {
			pending = append(pending, e.rec)
			return true
		}
		if e.lsn > snapLSN {
			if applyErr = applyRecords(d, pending); applyErr != nil {
				return false
			}
			info.applied += len(pending)
		} else {
			info.skipped += len(pending)
		}
		pending = pending[:0]
		if e.lsn > info.lastLSN {
			info.lastLSN = e.lsn
		}
		info.validLen = end
		return true
	})
	d.ResetTrail()
	if err != nil {
		return info, err
	}
	return info, applyErr
}

func applyRecords(d *DB, recs []record) error {
	for _, rec := range recs {
		row, err := term.DecodeKey(rec.key)
		if err != nil {
			return fmt.Errorf("db: undecodable tuple for %s/%d: %w", rec.pred, rec.arity, err)
		}
		if len(row) != rec.arity {
			return fmt.Errorf("db: arity mismatch for %s: record says %d, key has %d", rec.pred, rec.arity, len(row))
		}
		if rec.insert {
			d.Insert(rec.pred, row)
		} else {
			d.Delete(rec.pred, row)
		}
	}
	return nil
}

// RecoveryInfo reports what the last OpenStore did — the observable proof
// that recovery is bounded by checkpointing, not by history length.
type RecoveryInfo struct {
	SnapshotLSN     uint64 // manifest LSN of the snapshot booted from (0 if none)
	SnapshotRecords int    // records loaded from the snapshot
	SnapshotShards  int    // shard count the snapshot's manifest recorded (0 if none)
	RecoveredLSN    uint64 // LSN of the recovered head
	ReplayedRecords int    // op records applied from the WAL suffix
	SkippedRecords  int    // op records skipped (commits the snapshot covers)
}

// Store couples a database with a WAL and snapshot file, providing
// open-or-recover semantics and checkpointing. Store methods are safe for
// concurrent use; callers that also touch the DB field directly must
// provide their own coordination.
type Store struct {
	mu       sync.Mutex
	DB       *DB
	snapPath string
	walPath  string
	wal      *WAL
	lastLSN  uint64 // LSN of the newest commit block (buffered or durable)
	recovery RecoveryInfo
	syncHook func() error             // test-only fault injection; see SetSyncHook
	ckptHook func(stage string) error // test-only crash injection; see SetCheckpointHook

	// shards is the pinned shard count (0 until PinShards): recorded in
	// every checkpoint manifest this store writes. snapShards is what the
	// booted snapshot's manifest recorded (0 for v1/v2 snapshots).
	shards     int
	snapShards int

	ckptMu sync.Mutex // serializes checkpoints and WAL rotations
}

// OpenStore recovers (or initializes) a persistent database: load the
// newest manifest-valid snapshot if present, replay only the WAL commit
// blocks past its LSN on top, truncate the log after its last complete
// block, and reopen it for appending. Legacy v1 files are read and the WAL
// is rewritten in v2 framing.
func OpenStore(snapPath, walPath string, opts ...Option) (*Store, error) {
	var d *DB
	var man Manifest
	if _, err := os.Stat(snapPath); err == nil {
		d, man, err = readSnapshotManifest(snapPath, opts...)
		if err != nil {
			return nil, err
		}
	} else {
		d = New(opts...)
	}
	s := &Store{DB: d, snapPath: snapPath, walPath: walPath, lastLSN: man.LSN, snapShards: man.Shards}
	s.recovery = RecoveryInfo{SnapshotLSN: man.LSN, SnapshotRecords: int(man.Records), SnapshotShards: man.Shards}
	if info, err := os.Stat(walPath); err == nil && info.Size() > 0 {
		if info.Size() < int64(len(walMagic)) {
			// A crash during first-ever creation tore the magic; the file
			// never held a record.
			if err := os.Truncate(walPath, 0); err != nil {
				return nil, err
			}
		} else if ver, err := walFileVersion(walPath); err != nil {
			return nil, err
		} else if ver == 1 {
			if err := s.upgradeWALv1(d, man.LSN); err != nil {
				return nil, err
			}
		} else {
			rep, err := replayCommits(d, walPath, man.LSN)
			if err != nil {
				return nil, err
			}
			s.recovery.ReplayedRecords = rep.applied
			s.recovery.SkippedRecords = rep.skipped
			if rep.lastLSN > s.lastLSN {
				s.lastLSN = rep.lastLSN
			}
			// A crash mid-flush can leave a torn or boundary-less tail.
			// Truncate so records appended from now on land directly after
			// the last complete commit block instead of behind garbage
			// (which the next replay would stop at, losing them).
			if rep.validLen < info.Size() {
				if err := os.Truncate(walPath, rep.validLen); err != nil {
					return nil, err
				}
			}
		}
	}
	s.recovery.RecoveredLSN = s.lastLSN
	wal, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// walFileVersion reads just the magic header (1, 2, or ErrCorrupt).
func walFileVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, err
	}
	switch string(hdr) {
	case walMagic:
		return 2, nil
	case walMagicV1:
		return 1, nil
	default:
		return 0, fmt.Errorf("%w: %s is not a TD WAL", ErrCorrupt, path)
	}
}

// upgradeWALv1 replays a legacy v1 log fully (v1 had no commit boundaries:
// every readable record was applied) and rewrites the file in v2 framing as
// one commit block at snapLSN+1. Leaving the v1 prefix in place and
// appending v2 blocks after it would open a double-apply hole: the prefix,
// carrying no LSN, would be re-applied on every boot — including one after
// a crash between a checkpoint's snapshot rename and its WAL truncation,
// resurrecting tuples the checkpointed commits had deleted.
func (s *Store) upgradeWALv1(d *DB, snapLSN uint64) error {
	var recs []record
	if _, err := scanWALFile(s.walPath, func(e walEntry, _ int64) bool {
		if !e.boundary {
			recs = append(recs, e.rec)
		}
		return true
	}); err != nil {
		return err
	}
	if err := applyRecords(d, recs); err != nil {
		return err
	}
	d.ResetTrail()
	s.recovery.ReplayedRecords = len(recs)
	lsn := snapLSN
	if len(recs) > 0 {
		lsn = snapLSN + 1
	}
	tmp := s.walPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	w.WriteString(walMagic)
	for _, rec := range recs {
		w.Write(encodeRecord(rec.insert, rec.pred, rec.arity, rec.key))
	}
	if len(recs) > 0 {
		w.Write(encodeBoundary(lsn))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.walPath); err != nil {
		return err
	}
	if err := syncDir(s.walPath); err != nil {
		return err
	}
	s.lastLSN = lsn
	return nil
}

// Recovery reports what the OpenStore that built this store did. Immutable
// after open.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// PinShards declares the shard count the store is being served under. Every
// checkpoint written from now on records it in the manifest (format v3),
// and reopening a store whose snapshot was checkpointed under a different
// count is refused: the shard partition is rebuilt at boot from the
// recovered state, but per-shard artifacts derived from the old partition
// (commit-lane metrics, lane-tagged clients) would silently change meaning.
// Stores opened by non-server tools never pin and are not checked.
func (s *Store) PinShards(n int) error {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snapShards > 0 && s.snapShards != n {
		return fmt.Errorf("db: store %s was checkpointed with -store.shards=%d; reopening with -store.shards=%d would repartition the commit lanes — restart with -store.shards=%d (or delete the snapshot to rebuild)",
			s.snapPath, s.snapShards, n, s.snapShards)
	}
	s.shards = n
	return nil
}

// Shards returns the pinned shard count (0 if PinShards was never called).
func (s *Store) Shards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards
}

// DetachDB hands the store's live database to the caller and detaches it:
// from now on the store is WAL-and-checkpoint machinery only. ApplyCommit
// becomes a pure log append (the caller owns applying ops to its own
// partitioned heads), and checkpoints must come through CheckpointFrom
// with a frozen view. The sharded server detaches at boot — the store's
// monolithic DB would otherwise be a second, dead copy of the shard heads.
func (s *Store) DetachDB() *DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.DB
	s.DB = nil
	return d
}

// LastLSN returns the LSN of the newest commit block (buffered or durable).
// Servers seed their commit version counter from it.
func (s *Store) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLSN
}

// Insert inserts and logs a tuple as its own commit block; no-ops (set
// semantics) are not logged.
func (s *Store) Insert(pred string, row []term.Term) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.DB == nil {
		return false, errors.New("db: Insert on a detached store")
	}
	if !s.DB.Insert(pred, row) {
		return false, nil
	}
	s.DB.ResetTrail()
	if _, err := s.wal.Append(true, pred, len(row), term.KeyOf(row)); err != nil {
		return true, err
	}
	s.lastLSN++
	_, err := s.wal.AppendBoundary(s.lastLSN)
	return true, err
}

// Delete deletes and logs a tuple as its own commit block; no-ops are not
// logged.
func (s *Store) Delete(pred string, row []term.Term) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.DB == nil {
		return false, errors.New("db: Delete on a detached store")
	}
	if !s.DB.Delete(pred, row) {
		return false, nil
	}
	s.DB.ResetTrail()
	if _, err := s.wal.Append(false, pred, len(row), term.KeyOf(row)); err != nil {
		return true, err
	}
	s.lastLSN++
	_, err := s.wal.AppendBoundary(s.lastLSN)
	return true, err
}

// ApplyOps applies and logs a batch of operations as one commit block at
// the next LSN, holding the store lock for the whole batch so no other
// appender interleaves with it. Per-op no-ops (set semantics) are not
// logged; an all-no-op batch writes no block and consumes no LSN. It does
// not sync; the returned byte offset is the WAL length after the batch —
// the batch is durable once a Sync covers it (or after Commit).
func (s *Store) ApplyOps(ops []Op) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyCommitLocked(ops, s.lastLSN+1)
}

// ApplyCommit applies and logs a batch as one commit block stamped with the
// caller's LSN (the server's commit version), so recovery can correlate WAL
// blocks with commit versions and skip the ones a snapshot already covers.
// LSNs must be strictly increasing across calls.
func (s *Store) ApplyCommit(ops []Op, lsn uint64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyCommitLocked(ops, lsn)
}

func (s *Store) applyCommitLocked(ops []Op, lsn uint64) (int64, error) {
	end := s.wal.Size()
	logged := false
	for i := range ops {
		o := &ops[i]
		// Detached stores log every op verbatim: the caller applied the
		// batch to its own heads and already filtered set-semantic no-ops.
		if s.DB != nil && !s.DB.ApplyOne(o) {
			continue
		}
		e, err := s.wal.Append(o.Insert, o.Pred, len(o.Row), o.Key())
		if err != nil {
			if s.DB != nil {
				s.DB.ResetTrail()
			}
			return end, err
		}
		end = e
		logged = true
	}
	if s.DB != nil {
		s.DB.ResetTrail()
	}
	if !logged {
		return end, nil
	}
	e, err := s.wal.AppendBoundary(lsn)
	if err != nil {
		return end, err
	}
	if lsn > s.lastLSN {
		s.lastLSN = lsn
	}
	return e, nil
}

// Sync makes all logged operations durable (flush + fsync), returning the
// byte offset the WAL is now durable through. It deliberately does NOT hold
// the store mutex across the fsync: ApplyOps (the commit critical section)
// must never queue behind an in-flight sync. If a checkpoint rotates the
// log mid-sync, Sync re-runs against the replacement so its cover extends
// to every record appended before the call.
func (s *Store) Sync() (int64, error) {
	for {
		s.mu.Lock()
		hook := s.syncHook
		w := s.wal
		s.mu.Unlock()
		if hook != nil {
			if err := hook(); err != nil {
				return w.Synced(), err
			}
		}
		n, err := w.Sync()
		if err != nil {
			return n, err
		}
		s.mu.Lock()
		rotated := s.wal != w
		s.mu.Unlock()
		if !rotated {
			return n, nil
		}
	}
}

// SyncedLSN returns the byte offset the WAL is known durable through.
func (s *Store) SyncedLSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Synced()
}

// SetSyncHook installs a fault-injection hook, called before every Sync
// and Commit; a non-nil error is returned instead of syncing, leaving the
// buffered WAL tail unflushed — a crashed disk, as far as callers can
// tell. Testing only.
func (s *Store) SetSyncHook(h func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncHook = h
}

// SetCheckpointHook installs a crash-injection hook called at named stages
// of an incremental checkpoint: "snapshot" with the temp snapshot written
// but not yet renamed into place, and "truncate" with the snapshot durable
// but the WAL not yet truncated. A non-nil error aborts the checkpoint at
// that point, leaving exactly the on-disk state a crash there would leave.
// Testing only.
func (s *Store) SetCheckpointHook(h func(stage string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckptHook = h
}

func (s *Store) checkpointStage(stage string) error {
	s.mu.Lock()
	h := s.ckptHook
	s.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(stage)
}

// Commit makes all logged operations durable (flush + fsync).
func (s *Store) Commit() error {
	_, err := s.Sync()
	return err
}

// WALSize returns the WAL length in bytes, including buffered data.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Size()
}

// Checkpoint writes a fresh snapshot of the full database and truncates
// the WAL, holding the store lock for the duration — commits stall until
// the snapshot is written. Servers use the incremental CheckpointFrom path
// instead, which keeps commits flowing; this remains for callers without a
// frozen view.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.DB == nil {
		return errors.New("db: Checkpoint on a detached store; use CheckpointFrom")
	}
	if _, err := s.wal.Sync(); err != nil {
		return err
	}
	err := writeSnapshotFile(s.snapPath, s.lastLSN, uint64(s.DB.Size()), s.shards, func(w *bufio.Writer) error {
		for _, ra := range s.DB.Relations() {
			for _, row := range s.DB.Tuples(ra.Pred, ra.Arity) {
				if _, err := w.Write(encodeRecord(true, ra.Pred, ra.Arity, term.KeyOf(row))); err != nil {
					return err
				}
			}
		}
		return nil
	}, nil)
	if err != nil {
		return err
	}
	old := s.wal
	if err := os.Remove(s.walPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	wal, err := OpenWAL(s.walPath)
	if err != nil {
		return err
	}
	if err := syncDir(s.walPath); err != nil {
		wal.Close()
		return err
	}
	s.wal = wal
	return old.retire()
}

// CheckpointFrom writes a snapshot of the frozen view f — the committed
// state as of commit lsn — and truncates the WAL prefix its blocks occupy,
// WITHOUT taking the store mutex for the expensive part: f is immutable,
// so the snapshot write runs concurrently with commits. Only the final log
// rotation excludes appenders, for the duration of a small suffix copy
// (post-checkpoint blocks only). The caller guarantees f is exactly the
// committed state at lsn.
func (s *Store) CheckpointFrom(f FrozenDB, lsn uint64) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	shards := s.shards
	s.mu.Unlock()
	err := writeSnapshotFile(s.snapPath, lsn, uint64(f.Size()), shards, func(w *bufio.Writer) error {
		var werr error
		f.Range(func(pred string, arity int, key string, _ []term.Term) bool {
			_, werr = w.Write(encodeRecord(true, pred, arity, key))
			return werr == nil
		})
		return werr
	}, func() error { return s.checkpointStage("snapshot") })
	if err != nil {
		return err
	}
	if err := s.checkpointStage("truncate"); err != nil {
		return err
	}
	return s.truncateWALThrough(lsn)
}

// truncateWALThrough rotates the log: every commit block at or below lsn
// (now covered by the snapshot) is dropped, the suffix is copied into a
// fresh log, and the store switches to it. The cut-point scan runs
// lock-free — bytes before the append point are immutable — so commits
// stall only for the suffix copy, never for the scan or the snapshot write.
func (s *Store) truncateWALThrough(lsn uint64) error {
	// The block at lsn must be on disk before the scan can find it (it may
	// still be buffered). The sync also keeps the crash window closed: past
	// this point the prefix is durable in the snapshot and the rest is
	// durable in the log, so losing the prefix to the rotation is safe.
	if _, err := s.Sync(); err != nil {
		return err
	}
	cut := int64(len(walMagic))
	if _, err := scanWALFile(s.walPath, func(e walEntry, end int64) bool {
		if e.boundary {
			if e.lsn <= lsn {
				cut = end
			}
			if e.lsn >= lsn {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.wal
	// Drain the append buffer so the file holds everything; new appends are
	// excluded by the store mutex for the rest of the rotation.
	if _, err := old.Sync(); err != nil {
		return err
	}
	size := old.Size()
	tmp := s.walPath + ".tmp"
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := out.WriteString(walMagic); err != nil {
		out.Close()
		return err
	}
	if cut < size {
		if _, err := io.Copy(out, io.NewSectionReader(old.f, cut, size-cut)); err != nil {
			out.Close()
			return err
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.walPath); err != nil {
		return err
	}
	if err := syncDir(s.walPath); err != nil {
		return err
	}
	fresh, err := OpenWAL(s.walPath)
	if err != nil {
		return err
	}
	s.wal = fresh
	return old.retire()
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}
