package db

import (
	"testing"

	"repro/internal/term"
)

func shardRow(pred string, args ...int64) Op {
	row := make([]term.Term, len(args))
	for i, a := range args {
		row[i] = term.NewInt(a)
	}
	return Op{Insert: true, Pred: pred, Row: row}
}

// Split must route every tuple to the shard ShardOf names, cover all
// tuples exactly once, and leave the combined fingerprint equal to the
// source database's.
func TestSplitPartitionsByShardOf(t *testing.T) {
	d := New()
	var ops []Op
	for p := 0; p < 4; p++ {
		pred := string(rune('a' + p))
		for i := int64(0); i < 50; i++ {
			ops = append(ops, shardRow(pred, i, i*3))
		}
	}
	ops = append(ops, Op{Insert: true, Pred: "unit", Row: nil}) // arity 0
	d.Apply(ops)
	d.ResetTrail()

	const n = 8
	shards := Split(d, n)
	total := 0
	for i, sh := range shards {
		total += sh.Size()
		for _, r := range sh.rels {
			for _, tr := range r.rows {
				if want := ShardOf(n, r.pred, firstCode(tr.row)); want != i {
					t.Fatalf("tuple %s%v in shard %d, ShardOf says %d", r.pred, tr.row, i, want)
				}
			}
		}
	}
	if total != d.Size() {
		t.Fatalf("shards hold %d tuples, source holds %d", total, d.Size())
	}
	if got, want := ShardFingerprint(shards), (ShardFingerprint([]*DB{d})); got != want {
		t.Fatalf("combined shard fingerprint %x != source fingerprint %x", got, want)
	}
	// n=1 is the identity partition.
	one := Split(d, 1)
	if len(one) != 1 || one[0].Size() != d.Size() {
		t.Fatalf("Split(d, 1): %d shards holding %d tuples, want 1 holding %d",
			len(one), one[0].Size(), d.Size())
	}
}

// AbsorbFrom unions lane contents into a replica without undo entries and
// without duplicating tuples already present.
func TestAbsorbFromRebuildsUnion(t *testing.T) {
	d := New()
	d.Apply([]Op{shardRow("p", 1, 2), shardRow("q", 3, 4)})
	d.ResetTrail()
	shards := Split(d, 4)

	fresh := New()
	for _, sh := range shards {
		fresh.AbsorbFrom(sh)
	}
	fresh.AbsorbFrom(shards[0]) // idempotent
	if fresh.Size() != d.Size() {
		t.Fatalf("absorbed replica holds %d tuples, want %d", fresh.Size(), d.Size())
	}
	if got, want := ShardFingerprint([]*DB{fresh}), ShardFingerprint([]*DB{d}); got != want {
		t.Fatalf("absorbed fingerprint %x != source %x", got, want)
	}
	if fresh.TrailLen() != 0 {
		t.Fatalf("AbsorbFrom recorded %d undo entries, want 0", fresh.TrailLen())
	}
}

// The routing function must agree between tuple ops and the prefix reads
// that observe them (same pred + first code → same lane), must stay inside
// [0, n), and must send every tuple to lane 0 when unsharded.
func TestShardOfProperties(t *testing.T) {
	for n := 1; n <= 16; n *= 2 {
		for i := int64(0); i < 100; i++ {
			op := shardRow("acct", i, i+1)
			got := OpShard(n, &op)
			if got < 0 || got >= n {
				t.Fatalf("OpShard(%d) = %d out of range", n, got)
			}
			if want := ShardOf(n, "acct", op.Row[0].Code()); got != want {
				t.Fatalf("OpShard %d != ShardOf %d at n=%d", got, want, n)
			}
			if n == 1 && got != 0 {
				t.Fatalf("n=1 must route to shard 0, got %d", got)
			}
		}
	}
	// Different predicates with the same first arg should not all collide:
	// with 8 lanes and 64 (pred, arg) combinations, at least two distinct
	// lanes must be hit (sanity against a degenerate hash).
	seen := map[int]bool{}
	for p := 0; p < 8; p++ {
		for i := int64(0); i < 8; i++ {
			seen[ShardOf(8, string(rune('a'+p)), term.NewInt(i).Code())] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("ShardOf(8, ...) hit only %d distinct lanes over 64 keys", len(seen))
	}
}
