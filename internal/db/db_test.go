package db

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func sym(s string) term.Term { return term.NewSym(s) }

func row(ss ...string) []term.Term {
	out := make([]term.Term, len(ss))
	for i, s := range ss {
		out[i] = sym(s)
	}
	return out
}

func TestInsertDeleteSetSemantics(t *testing.T) {
	d := New()
	if !d.Insert("p", row("a")) {
		t.Fatal("first insert reported no change")
	}
	if d.Insert("p", row("a")) {
		t.Fatal("duplicate insert reported change")
	}
	if d.Size() != 1 || d.Count("p", 1) != 1 {
		t.Fatalf("size=%d count=%d", d.Size(), d.Count("p", 1))
	}
	if !d.Contains("p", row("a")) {
		t.Fatal("Contains false after insert")
	}
	if !d.Delete("p", row("a")) {
		t.Fatal("delete of present tuple reported no change")
	}
	if d.Delete("p", row("a")) {
		t.Fatal("delete of absent tuple reported change")
	}
	if d.Size() != 0 || d.Contains("p", row("a")) {
		t.Fatal("tuple still visible after delete")
	}
}

func TestArityDistinguishesRelations(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	d.Insert("p", row("a", "b"))
	if d.Count("p", 1) != 1 || d.Count("p", 2) != 1 {
		t.Fatal("arities conflated")
	}
	if d.IsEmpty("p") {
		t.Fatal("IsEmpty wrong")
	}
	d.Delete("p", row("a"))
	if d.IsEmpty("p") {
		t.Fatal("IsEmpty must consider every arity")
	}
	d.Delete("p", row("a", "b"))
	if !d.IsEmpty("p") {
		t.Fatal("IsEmpty false on empty relation")
	}
}

func TestUndoRestoresExactState(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	d.Insert("q", row("x", "y"))
	d.ResetTrail()
	fp := d.Fingerprint()

	mark := d.Mark()
	d.Insert("p", row("b"))
	d.Delete("q", row("x", "y"))
	d.Insert("q", row("z", "z"))
	d.Delete("p", row("a"))
	if d.Fingerprint() == fp {
		t.Fatal("fingerprint unchanged after changes")
	}
	d.Undo(mark)
	if d.Fingerprint() != fp {
		t.Fatal("fingerprint differs after undo")
	}
	if !d.Contains("p", row("a")) || !d.Contains("q", row("x", "y")) {
		t.Fatal("original tuples missing after undo")
	}
	if d.Contains("p", row("b")) || d.Contains("q", row("z", "z")) {
		t.Fatal("undone tuples still present")
	}
	if d.Size() != 2 {
		t.Fatalf("size = %d, want 2", d.Size())
	}
}

func TestNestedUndoMarks(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	m1 := d.Mark()
	d.Insert("p", row("b"))
	m2 := d.Mark()
	d.Insert("p", row("c"))
	d.Undo(m2)
	if d.Contains("p", row("c")) || !d.Contains("p", row("b")) {
		t.Fatal("inner undo wrong")
	}
	d.Undo(m1)
	if d.Contains("p", row("b")) || !d.Contains("p", row("a")) {
		t.Fatal("outer undo wrong")
	}
}

// Property: the fingerprint is order-independent and content-determined.
func TestFingerprintOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		tuples := make([][]term.Term, n)
		for i := range tuples {
			tuples[i] = []term.Term{term.NewInt(int64(r.Intn(5))), term.NewInt(int64(r.Intn(5)))}
		}
		d1, d2 := New(), New()
		for _, tp := range tuples {
			d1.Insert("p", tp)
		}
		perm := r.Perm(n)
		for _, i := range perm {
			d2.Insert("p", tuples[i])
		}
		return d1.Fingerprint() == d2.Fingerprint() && d1.Equal(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of insert/delete/mark/undo keep the DB
// consistent with a reference map implementation.
func TestUndoAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New()
		ref := make(map[string]bool) // key "v" for p(v)
		type frame struct {
			mark int
			ref  map[string]bool
		}
		var stack []frame
		snapshot := func() map[string]bool {
			m := make(map[string]bool, len(ref))
			for k := range ref {
				m[k] = true
			}
			return m
		}
		vals := []string{"a", "b", "c", "d"}
		for step := 0; step < 200; step++ {
			switch r.Intn(4) {
			case 0:
				v := vals[r.Intn(len(vals))]
				d.Insert("p", row(v))
				ref[v] = true
			case 1:
				v := vals[r.Intn(len(vals))]
				d.Delete("p", row(v))
				delete(ref, v)
			case 2:
				stack = append(stack, frame{mark: d.Mark(), ref: snapshot()})
			case 3:
				if len(stack) > 0 {
					fr := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					d.Undo(fr.mark)
					ref = fr.ref
				}
			}
			// Invariant check.
			if d.Count("p", 1) != len(ref) {
				return false
			}
			for _, v := range vals {
				if d.Contains("p", row(v)) != ref[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func scanAll(d *DB, pred string, args []term.Term) []string {
	env := term.NewEnv()
	var got []string
	d.Scan(pred, args, env, func() bool {
		got = append(got, term.KeyOf(env.ResolveArgs(args)))
		return true
	})
	return got
}

func TestScanGroundLookup(t *testing.T) {
	d := New()
	d.Insert("p", row("a", "b"))
	if got := scanAll(d, "p", row("a", "b")); len(got) != 1 {
		t.Fatalf("ground scan hits = %d", len(got))
	}
	if got := scanAll(d, "p", row("a", "c")); len(got) != 0 {
		t.Fatalf("ground miss hits = %d", len(got))
	}
	if got := scanAll(d, "q", row("a")); len(got) != 0 {
		t.Fatalf("missing relation hits = %d", len(got))
	}
}

func TestScanWithVariables(t *testing.T) {
	for _, opt := range []struct {
		name string
		d    *DB
	}{
		{"indexed", New()},
		{"unindexed", New(WithoutIndex())},
	} {
		d := opt.d
		d.Insert("edge", row("a", "b"))
		d.Insert("edge", row("a", "c"))
		d.Insert("edge", row("b", "c"))

		x := term.NewVar("X", 0)
		got := scanAll(d, "edge", []term.Term{sym("a"), x})
		if len(got) != 2 {
			t.Errorf("%s: first-arg bound scan hits = %d, want 2", opt.name, len(got))
		}
		got = scanAll(d, "edge", []term.Term{x, sym("c")})
		if len(got) != 2 {
			t.Errorf("%s: second-arg bound scan hits = %d, want 2", opt.name, len(got))
		}
		y := term.NewVar("Y", 1)
		got = scanAll(d, "edge", []term.Term{x, y})
		if len(got) != 3 {
			t.Errorf("%s: open scan hits = %d, want 3", opt.name, len(got))
		}
		// Repeated variable: edge(X, X) matches nothing here.
		got = scanAll(d, "edge", []term.Term{x, x})
		if len(got) != 0 {
			t.Errorf("%s: edge(X,X) hits = %d, want 0", opt.name, len(got))
		}
		d.Insert("edge", row("d", "d"))
		got = scanAll(d, "edge", []term.Term{x, x})
		if len(got) != 1 {
			t.Errorf("%s: edge(X,X) hits = %d, want 1", opt.name, len(got))
		}
	}
}

func TestScanRespectsPriorBindings(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	d.Insert("p", row("b"))
	env := term.NewEnv()
	x := term.NewVar("X", 0)
	env.Unify(x, sym("b"))
	count := 0
	d.Scan("p", []term.Term{x}, env, func() bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("hits = %d, want 1 (X pre-bound to b)", count)
	}
}

func TestScanEarlyStop(t *testing.T) {
	d := New()
	for _, v := range []string{"a", "b", "c"} {
		d.Insert("p", row(v))
	}
	env := term.NewEnv()
	x := term.NewVar("X", 0)
	count := 0
	completed := d.Scan("p", []term.Term{x}, env, func() bool {
		count++
		return false
	})
	if completed || count != 1 {
		t.Fatalf("completed=%v count=%d", completed, count)
	}
}

func TestScanBindingsUndoneBetweenYields(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	d.Insert("p", row("b"))
	env := term.NewEnv()
	x := term.NewVar("X", 0)
	d.Scan("p", []term.Term{x}, env, func() bool { return true })
	if !env.Walk(x).IsVar() {
		t.Fatal("X still bound after Scan returned")
	}
	if env.Len() != 0 {
		t.Fatal("env not clean after Scan")
	}
}

func TestScanSnapshotsUnderMutation(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	d.Insert("p", row("b"))
	env := term.NewEnv()
	x := term.NewVar("X", 0)
	visited := 0
	d.Scan("p", []term.Term{x}, env, func() bool {
		visited++
		d.Insert("p", []term.Term{term.NewInt(int64(visited + 100))})
		d.Delete("p", row("a"))
		d.Delete("p", row("b"))
		return true
	})
	if visited != 2 {
		t.Fatalf("visited = %d, want the 2 tuples present at scan start", visited)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	c := d.Clone()
	if !c.Equal(d) || c.Fingerprint() != d.Fingerprint() {
		t.Fatal("clone differs from original")
	}
	c.Insert("p", row("b"))
	if d.Contains("p", row("b")) {
		t.Fatal("mutating clone affected original")
	}
	d.Delete("p", row("a"))
	if !c.Contains("p", row("a")) {
		t.Fatal("mutating original affected clone")
	}
	// Clone's index must work.
	x := term.NewVar("X", 0)
	if got := scanAll(c, "p", []term.Term{x}); len(got) != 2 {
		t.Fatalf("clone scan hits = %d, want 2", len(got))
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, b := New(), New()
	a.Insert("p", row("x"))
	b.Insert("q", row("x"))
	if a.Equal(b) {
		t.Fatal("different relations reported equal")
	}
	b2 := New()
	b2.Insert("p", row("y"))
	if a.Equal(b2) {
		t.Fatal("different tuples reported equal")
	}
	b3 := New()
	b3.Insert("p", row("x"))
	if !a.Equal(b3) {
		t.Fatal("equal DBs reported different")
	}
}

func TestFromFactsAndString(t *testing.T) {
	facts := []term.Atom{
		term.NewAtom("tel", sym("mary"), term.NewInt(1234)),
		term.NewAtom("tel", sym("bob"), term.NewInt(5678)),
		term.NewAtom("ready"),
	}
	d, err := FromFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	want := "ready.\ntel(bob, 5678).\ntel(mary, 1234).\n"
	if got := d.String(); got != want {
		t.Errorf("String:\n%s\nwant:\n%s", got, want)
	}
	if atoms := d.Atoms(); len(atoms) != 3 {
		t.Errorf("Atoms len = %d", len(atoms))
	}
	if _, err := FromFacts([]term.Atom{term.NewAtom("p", term.NewVar("X", 0))}); err == nil {
		t.Error("non-ground fact accepted")
	}
}

func TestTuplesSorted(t *testing.T) {
	d := New()
	d.Insert("p", row("c"))
	d.Insert("p", row("a"))
	d.Insert("p", row("b"))
	got := d.Tuples("p", 1)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i][0].SymName() != want {
			t.Fatalf("tuple %d = %v, want %s", i, got[i], want)
		}
	}
}

func TestIndexConsistencyAfterChurn(t *testing.T) {
	d := New()
	// Insert and delete many tuples sharing first arguments, then verify
	// indexed scans agree with unindexed scans.
	u := New(WithoutIndex())
	r := rand.New(rand.NewSource(42))
	firsts := []string{"f1", "f2", "f3"}
	for i := 0; i < 500; i++ {
		f := firsts[r.Intn(len(firsts))]
		s := term.NewInt(int64(r.Intn(20)))
		tuple := []term.Term{sym(f), s}
		if r.Intn(2) == 0 {
			d.Insert("p", tuple)
			u.Insert("p", tuple)
		} else {
			d.Delete("p", tuple)
			u.Delete("p", tuple)
		}
	}
	if !d.Equal(u) {
		t.Fatal("indexed and unindexed stores diverged")
	}
	x := term.NewVar("X", 0)
	for _, f := range firsts {
		a := scanAll(d, "p", []term.Term{sym(f), x})
		b := scanAll(u, "p", []term.Term{sym(f), x})
		if len(a) != len(b) {
			t.Fatalf("index scan for %s found %d, unindexed %d", f, len(a), len(b))
		}
	}
}

func TestResetTrail(t *testing.T) {
	d := New()
	d.Insert("p", row("a"))
	if d.TrailLen() != 1 {
		t.Fatalf("TrailLen = %d", d.TrailLen())
	}
	d.ResetTrail()
	if d.TrailLen() != 0 {
		t.Fatal("ResetTrail did not clear")
	}
	d.Undo(0) // no-op, must not remove committed tuple
	if !d.Contains("p", row("a")) {
		t.Fatal("Undo after ResetTrail removed committed tuple")
	}
}

func TestAllIterator(t *testing.T) {
	d := New()
	d.Insert("p", row("b"))
	d.Insert("p", row("a"))
	d.Insert("q", row("z"))
	var got []string
	for r := range d.All("p", 1) {
		got = append(got, r[0].SymName())
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("All = %v", got)
	}
	// Early break works.
	count := 0
	for range d.All("p", 1) {
		count++
		break
	}
	if count != 1 {
		t.Fatalf("early break visited %d", count)
	}
	var all []string
	for a := range d.AllAtoms() {
		all = append(all, a.String())
	}
	if len(all) != 3 || all[0] != "p(a)" || all[2] != "q(z)" {
		t.Fatalf("AllAtoms = %v", all)
	}
}
