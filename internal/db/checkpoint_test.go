package db

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/term"
)

func markRow(n int64) []term.Term { return []term.Term{term.NewInt(n)} }

// insertMarks commits mark(from..to) one op per commit block.
func insertMarks(t *testing.T, s *Store, from, to int64) {
	t.Helper()
	for n := from; n <= to; n++ {
		if _, err := s.Insert("mark", markRow(n)); err != nil {
			t.Fatalf("Insert(mark(%d)): %v", n, err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func containsMark(s *Store, n int64) bool {
	for _, row := range s.DB.Tuples("mark", 1) {
		if row[0].Equal(term.NewInt(n)) {
			return true
		}
	}
	return false
}

// An incremental checkpoint bounds recovery: reopening replays only the
// WAL suffix past the snapshot LSN, not the whole history.
func TestCheckpointFromBoundedRecovery(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	insertMarks(t, s, 1, 100)
	ckptLSN := s.LastLSN()
	if err := s.CheckpointFrom(FreezeDB(s.DB), ckptLSN); err != nil {
		t.Fatal(err)
	}
	insertMarks(t, s, 101, 105) // the suffix recovery must replay
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotLSN != ckptLSN {
		t.Fatalf("SnapshotLSN = %d, want %d", rec.SnapshotLSN, ckptLSN)
	}
	if rec.SnapshotRecords != 100 {
		t.Fatalf("SnapshotRecords = %d, want 100", rec.SnapshotRecords)
	}
	if rec.ReplayedRecords != 5 {
		t.Fatalf("ReplayedRecords = %d, want 5 (the post-checkpoint suffix only)", rec.ReplayedRecords)
	}
	if s2.DB.Count("mark", 1) != 105 {
		t.Fatalf("recovered %d marks, want 105", s2.DB.Count("mark", 1))
	}
	if s2.LastLSN() != 105 {
		t.Fatalf("LastLSN = %d, want 105", s2.LastLSN())
	}
}

// Crash window 1: snapshot renamed into place, WAL not yet truncated. The
// WAL still holds the full history, including blocks the snapshot already
// covers; recovery must skip those — replaying them would resurrect
// deleted facts.
func TestCheckpointCrashBeforeTruncation(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	insertMarks(t, s, 1, 10)
	if _, err := s.Delete("mark", markRow(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	crash := errors.New("injected crash")
	s.SetCheckpointHook(func(stage string) error {
		if stage == "truncate" {
			return crash
		}
		return nil
	})
	if err := s.CheckpointFrom(FreezeDB(s.DB), s.LastLSN()); !errors.Is(err, crash) {
		t.Fatalf("CheckpointFrom = %v, want the injected crash", err)
	}
	s.Close()

	// The on-disk state now has a snapshot at LSN 11 AND a WAL with all 11
	// blocks — the exact crash-point state.
	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotLSN != 11 {
		t.Fatalf("SnapshotLSN = %d, want 11", rec.SnapshotLSN)
	}
	if rec.SkippedRecords != 11 {
		t.Fatalf("SkippedRecords = %d, want 11 (every pre-snapshot record)", rec.SkippedRecords)
	}
	if rec.ReplayedRecords != 0 {
		t.Fatalf("ReplayedRecords = %d, want 0", rec.ReplayedRecords)
	}
	if containsMark(s2, 3) {
		t.Fatal("mark(3) resurrected: recovery replayed a WAL block the snapshot already covers")
	}
	if got := s2.DB.Count("mark", 1); got != 9 {
		t.Fatalf("recovered %d marks, want 9", got)
	}
	// Post-crash commits continue from the recovered LSN.
	insertMarks(t, s2, 100, 100)
	if s2.LastLSN() != 12 {
		t.Fatalf("LastLSN after new commit = %d, want 12", s2.LastLSN())
	}
}

// Crash window 2: mid-snapshot-write — the temp file exists but was never
// renamed. The old snapshot and the untouched WAL remain authoritative;
// nothing is lost and the leftover temp file is inert.
func TestCheckpointCrashMidSnapshotWrite(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	insertMarks(t, s, 1, 20)

	crash := errors.New("injected crash")
	s.SetCheckpointHook(func(stage string) error {
		if stage == "snapshot" {
			return crash
		}
		return nil
	})
	if err := s.CheckpointFrom(FreezeDB(s.DB), s.LastLSN()); !errors.Is(err, crash) {
		t.Fatalf("CheckpointFrom = %v, want the injected crash", err)
	}
	s.Close()

	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("snapshot appeared despite the mid-write crash: %v", err)
	}

	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotLSN != 0 || rec.ReplayedRecords != 20 {
		t.Fatalf("recovery = %+v, want full WAL replay with no snapshot", rec)
	}
	if got := s2.DB.Count("mark", 1); got != 20 {
		t.Fatalf("recovered %d marks, want 20", got)
	}
}

// Every acknowledged commit survives a crash at either checkpoint window,
// and nothing is applied twice — the group-commit crash contract extended
// across checkpoints.
func TestCheckpointCrashWindowsAckedSubsetRecovered(t *testing.T) {
	for _, stage := range []string{"snapshot", "truncate"} {
		t.Run(stage, func(t *testing.T) {
			snap, wal := tmpPaths(t)
			s, err := OpenStore(snap, wal)
			if err != nil {
				t.Fatal(err)
			}
			// Interleave inserts and deletes so double-apply is visible.
			for n := int64(1); n <= 30; n++ {
				insertMarks(t, s, n, n)
				if n%3 == 0 {
					if _, err := s.Delete("mark", markRow(n)); err != nil {
						t.Fatal(err)
					}
					if err := s.Commit(); err != nil {
						t.Fatal(err)
					}
				}
			}
			want := s.DB.Count("mark", 1) // 20: every third mark deleted
			crash := errors.New("crash")
			s.SetCheckpointHook(func(st string) error {
				if st == stage {
					return crash
				}
				return nil
			})
			if err := s.CheckpointFrom(FreezeDB(s.DB), s.LastLSN()); !errors.Is(err, crash) {
				t.Fatalf("CheckpointFrom = %v, want crash", err)
			}
			s.Close()

			s2, err := OpenStore(snap, wal)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := s2.DB.Count("mark", 1); got != want {
				t.Fatalf("recovered %d marks, want %d", got, want)
			}
			for n := int64(1); n <= 30; n++ {
				if deleted := n%3 == 0; containsMark(s2, n) == deleted {
					t.Fatalf("mark(%d): present=%v, want %v", n, deleted, !deleted)
				}
			}
		})
	}
}

// A legacy v1 WAL (no commit boundaries) is replayed fully at open and
// rewritten in the v2 framing, so a later crash can never double-apply its
// records against a newer snapshot.
func TestWALv1UpgradeAtOpen(t *testing.T) {
	snap, wal := tmpPaths(t)
	f, err := os.Create(wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(walMagicV1); err != nil {
		t.Fatal(err)
	}
	for n := int64(1); n <= 5; n++ {
		if _, err := f.Write(encodeRecord(true, "mark", 1, term.KeyOf(markRow(n)))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Write(encodeRecord(false, "mark", 1, term.KeyOf(markRow(2)))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.DB.Count("mark", 1); got != 4 {
		t.Fatalf("v1 replay: %d marks, want 4", got)
	}
	if rec := s.Recovery(); rec.ReplayedRecords != 6 {
		t.Fatalf("ReplayedRecords = %d, want 6", rec.ReplayedRecords)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The file on disk is now v2-framed and boots identically.
	if v, err := walFileVersion(wal); err != nil || v != 2 {
		t.Fatalf("post-upgrade WAL version = %d, %v; want 2", v, err)
	}
	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.DB.Count("mark", 1); got != 4 {
		t.Fatalf("post-upgrade reopen: %d marks, want 4", got)
	}
	if !containsMark(s2, 1) || containsMark(s2, 2) {
		t.Fatal("post-upgrade reopen lost the v1 delete")
	}
}

// Commits keep flowing while the snapshot is being written: CheckpointFrom
// holds no store-wide lock during the expensive stage.
func TestCheckpointDoesNotBlockCommits(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	insertMarks(t, s, 1, 50)
	lsn := s.LastLSN()
	frozen := FreezeDB(s.DB)

	inSnapshot := make(chan struct{})
	release := make(chan struct{})
	s.SetCheckpointHook(func(stage string) error {
		if stage == "snapshot" {
			close(inSnapshot)
			<-release
		}
		return nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	ckptErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		ckptErr <- s.CheckpointFrom(frozen, lsn)
	}()

	<-inSnapshot // snapshot mid-write, rename pending
	// Commits must complete while the checkpointer is parked.
	insertMarks(t, s, 51, 60)
	if s.DB.Count("mark", 1) != 60 {
		t.Fatal("commit did not apply while checkpoint in progress")
	}
	close(release)
	wg.Wait()
	if err := <-ckptErr; err != nil {
		t.Fatal(err)
	}

	// The rotation kept the concurrent commits: only they replay at boot.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotLSN != lsn || rec.ReplayedRecords != 10 {
		t.Fatalf("recovery = %+v, want snapshot at %d with 10 replayed", rec, lsn)
	}
	if got := s2.DB.Count("mark", 1); got != 60 {
		t.Fatalf("recovered %d marks, want 60", got)
	}
}

// ReadManifest surfaces the snapshot's provenance for operators (tdlog
// -manifest); v1 snapshots predate manifests and report LSN 0.
func TestReadManifest(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	insertMarks(t, s, 1, 7)
	if err := s.CheckpointFrom(FreezeDB(s.DB), s.LastLSN()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	man, err := ReadManifest(snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.FormatVersion != 2 || man.LSN != 7 || man.Records != 7 {
		t.Fatalf("manifest = %+v, want v2 at LSN 7 with 7 records", man)
	}
}

// A checkpoint taken under one shard count pins it: reopening under a
// different -store.shards would repartition the commit lanes out from under
// the recovered state, so PinShards refuses with an error naming both
// counts. Matching counts — and stores that never pinned — keep working.
func TestCheckpointPinsShardCount(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PinShards(2); err != nil {
		t.Fatalf("PinShards(2) on a fresh store: %v", err)
	}
	insertMarks(t, s, 1, 9)
	if err := s.CheckpointFrom(FreezeDB(s.DB), s.LastLSN()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	man, err := ReadManifest(snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.FormatVersion != 3 || man.Shards != 2 {
		t.Fatalf("manifest = %+v, want v3 recording 2 shards", man)
	}

	s2, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Recovery().SnapshotShards; got != 2 {
		t.Fatalf("SnapshotShards = %d, want 2", got)
	}
	if err := s2.PinShards(3); err == nil {
		t.Fatal("PinShards(3) over a 2-shard checkpoint: want error, got nil")
	} else if !strings.Contains(err.Error(), "-store.shards=2") {
		t.Fatalf("PinShards(3) error %q does not name the pinned count", err)
	}
	if err := s2.PinShards(2); err != nil {
		t.Fatalf("PinShards(2) over a 2-shard checkpoint: %v", err)
	}
	if !containsMark(s2, 9) {
		t.Fatal("recovered store is missing mark(9)")
	}
}

// A store that never pins shards keeps writing the pre-sharding manifest
// byte format: v2, no shard field. Single-lane deployments and old tools
// see unchanged checkpoint files.
func TestUnpinnedCheckpointStaysV2(t *testing.T) {
	snap, wal := tmpPaths(t)
	s, err := OpenStore(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	insertMarks(t, s, 1, 3)
	if err := s.CheckpointFrom(FreezeDB(s.DB), s.LastLSN()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	man, err := ReadManifest(snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.FormatVersion != 2 || man.Shards != 0 {
		t.Fatalf("manifest = %+v, want v2 with no shard count", man)
	}
}
