package db

// A persistent (immutable, structurally shared) hash-array-mapped trie:
// the third database-branching strategy next to undo logs and deep clones
// (ablation A2). Forking a FrozenDB is O(1) — copy a struct — and each
// update copies only the O(log n) path to the changed leaf, sharing
// everything else with the parent version.
//
// The proof-search engine keeps the undo log (cheapest for its
// backtracking pattern); the HAMT is for version-keeping uses: snapshots
// of many search states at once, long-lived historical versions, or
// callers that want cheap value-semantics databases.

import (
	"hash/fnv"
	"math/bits"
	"sort"

	"repro/internal/term"
)

const (
	pmapBits  = 5
	pmapWidth = 1 << pmapBits // 32-way branching
	pmapMask  = pmapWidth - 1
)

func pmapHash(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// pnode is a trie node: either a branch (bitmap + packed children), a
// single leaf, or a collision bucket (distinct keys, same full hash).
type pnode struct {
	// branch
	bitmap   uint32
	children []*pnode
	// leaf / collision
	leaves []pleaf
}

type pleaf struct {
	key string
	val []term.Term
}

func (n *pnode) isLeaf() bool { return n != nil && len(n.leaves) > 0 }

// pmGet finds key in the trie rooted at n.
func pmGet(n *pnode, hash uint32, shift uint, key string) ([]term.Term, bool) {
	for n != nil {
		if n.isLeaf() {
			for _, l := range n.leaves {
				if l.key == key {
					return l.val, true
				}
			}
			return nil, false
		}
		bit := uint32(1) << ((hash >> shift) & pmapMask)
		if n.bitmap&bit == 0 {
			return nil, false
		}
		n = n.children[popcount(n.bitmap&(bit-1))]
		shift += pmapBits
	}
	return nil, false
}

// pmSet returns a new trie with key ↦ val; added reports whether the key
// was new.
func pmSet(n *pnode, hash uint32, shift uint, key string, val []term.Term) (out *pnode, added bool) {
	if n == nil {
		return &pnode{leaves: []pleaf{{key, val}}}, true
	}
	if n.isLeaf() {
		// Same key: replace. Same hash, different key: extend collision
		// bucket. Otherwise: split into a branch.
		lHash := pmapHash(n.leaves[0].key)
		if lHash == hash {
			for i, l := range n.leaves {
				if l.key == key {
					leaves := append(append([]pleaf{}, n.leaves[:i]...), n.leaves[i+1:]...)
					leaves = append(leaves, pleaf{key, val})
					return &pnode{leaves: leaves}, false
				}
			}
			leaves := append(append([]pleaf{}, n.leaves...), pleaf{key, val})
			return &pnode{leaves: leaves}, true
		}
		branch := splitLeaf(n, lHash, shift)
		return pmSet(branch, hash, shift, key, val)
	}
	bit := uint32(1) << ((hash >> shift) & pmapMask)
	idx := popcount(n.bitmap & (bit - 1))
	if n.bitmap&bit == 0 {
		children := make([]*pnode, len(n.children)+1)
		copy(children, n.children[:idx])
		children[idx] = &pnode{leaves: []pleaf{{key, val}}}
		copy(children[idx+1:], n.children[idx:])
		return &pnode{bitmap: n.bitmap | bit, children: children}, true
	}
	child, added := pmSet(n.children[idx], hash, shift+pmapBits, key, val)
	children := make([]*pnode, len(n.children))
	copy(children, n.children)
	children[idx] = child
	return &pnode{bitmap: n.bitmap, children: children}, added
}

// splitLeaf pushes a leaf/collision node one level down into a branch.
func splitLeaf(leaf *pnode, hash uint32, shift uint) *pnode {
	bit := uint32(1) << ((hash >> shift) & pmapMask)
	return &pnode{bitmap: bit, children: []*pnode{leaf}}
}

// pmDel returns a new trie without key; removed reports whether it was
// present. Branches are left in place even when they shrink to one child
// (no re-canonicalization) — lookups stay correct and the structure stays
// simple; densities in practice make this a fine trade.
func pmDel(n *pnode, hash uint32, shift uint, key string) (out *pnode, removed bool) {
	if n == nil {
		return nil, false
	}
	if n.isLeaf() {
		for i, l := range n.leaves {
			if l.key == key {
				if len(n.leaves) == 1 {
					return nil, true
				}
				leaves := append(append([]pleaf{}, n.leaves[:i]...), n.leaves[i+1:]...)
				return &pnode{leaves: leaves}, true
			}
		}
		return n, false
	}
	bit := uint32(1) << ((hash >> shift) & pmapMask)
	if n.bitmap&bit == 0 {
		return n, false
	}
	idx := popcount(n.bitmap & (bit - 1))
	child, removed := pmDel(n.children[idx], hash, shift+pmapBits, key)
	if !removed {
		return n, false
	}
	if child == nil {
		if len(n.children) == 1 {
			return nil, true
		}
		children := make([]*pnode, len(n.children)-1)
		copy(children, n.children[:idx])
		copy(children[idx:], n.children[idx+1:])
		return &pnode{bitmap: n.bitmap &^ bit, children: children}, true
	}
	children := make([]*pnode, len(n.children))
	copy(children, n.children)
	children[idx] = child
	return &pnode{bitmap: n.bitmap, children: children}, true
}

// pmRange visits every leaf; stops early when yield returns false.
func pmRange(n *pnode, yield func(key string, val []term.Term) bool) bool {
	if n == nil {
		return true
	}
	if n.isLeaf() {
		for _, l := range n.leaves {
			if !yield(l.key, l.val) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !pmRange(c, yield) {
			return false
		}
	}
	return true
}

func popcount(x uint32) int { return bits.OnesCount32(x) }

// FrozenDB is an immutable database value: updates return new versions
// sharing structure with the old. The zero value is an empty database.
type FrozenDB struct {
	rels map[predArity2]*pnode
	size int
	lo   uint64
	hi   uint64
}

type predArity2 struct {
	pred  string
	arity int
}

// FreezeDB snapshots a mutable DB into a FrozenDB.
func FreezeDB(d *DB) FrozenDB {
	out := FrozenDB{}
	for _, ra := range d.Relations() {
		for _, row := range d.Tuples(ra.Pred, ra.Arity) {
			out = out.Insert(ra.Pred, row)
		}
	}
	return out
}

// Thaw materializes a FrozenDB into a fresh mutable DB.
func (f FrozenDB) Thaw(opts ...Option) *DB {
	d := New(opts...)
	for pa, root := range f.rels {
		pmRange(root, func(_ string, val []term.Term) bool {
			d.Insert(pa.pred, val)
			return true
		})
	}
	d.ResetTrail()
	return d
}

// Size returns the tuple count.
func (f FrozenDB) Size() int { return f.size }

// Fingerprint matches DB.Fingerprint for identical contents.
func (f FrozenDB) Fingerprint() [2]uint64 { return [2]uint64{f.lo, f.hi} }

// Contains reports membership of the ground tuple pred(row).
func (f FrozenDB) Contains(pred string, row []term.Term) bool {
	root := f.rels[predArity2{pred, len(row)}]
	if root == nil {
		return false
	}
	key := term.KeyOf(row)
	_, ok := pmGet(root, pmapHash(key), 0, key)
	return ok
}

// Insert returns a version with pred(row) present (set semantics).
func (f FrozenDB) Insert(pred string, row []term.Term) FrozenDB {
	pa := predArity2{pred, len(row)}
	key := term.KeyOf(row)
	root := f.rels[pa]
	stored := append([]term.Term(nil), row...)
	newRoot, added := pmSet(root, pmapHash(key), 0, key, stored)
	if !added {
		// Replaced an equal tuple: content unchanged.
		return f
	}
	out := f.withRel(pa, newRoot)
	out.size = f.size + 1
	lo, hi := tupleHash(pred, len(row), row)
	out.lo, out.hi = f.lo^lo, f.hi^hi
	return out
}

// ApplyOps returns a version with the ops applied in order. Equivalent to
// chaining Insert/Delete, but the relation directory is copied once per
// batch instead of once per op — this runs under the server's head lock on
// every commit. Ops extracted from an undo trail (non-empty storeKey) carry
// rows that are immutable everywhere, so they are shared rather than copied.
func (f FrozenDB) ApplyOps(ops []Op) FrozenDB {
	if len(ops) == 0 {
		return f
	}
	rels := make(map[predArity2]*pnode, len(f.rels)+1)
	for k, v := range f.rels {
		rels[k] = v
	}
	out := FrozenDB{rels: rels, size: f.size, lo: f.lo, hi: f.hi}
	for _, o := range ops {
		pa := predArity2{o.Pred, len(o.Row)}
		key := term.KeyOf(o.Row)
		if o.Insert {
			stored := o.Row
			if o.storeKey == "" {
				stored = append([]term.Term(nil), o.Row...)
			}
			newRoot, added := pmSet(rels[pa], pmapHash(key), 0, key, stored)
			if !added {
				continue
			}
			rels[pa] = newRoot
			out.size++
		} else {
			newRoot, removed := pmDel(rels[pa], pmapHash(key), 0, key)
			if !removed {
				continue
			}
			if newRoot == nil {
				delete(rels, pa)
			} else {
				rels[pa] = newRoot
			}
			out.size--
		}
		lo, hi := tupleHash(o.Pred, len(o.Row), o.Row)
		out.lo ^= lo
		out.hi ^= hi
	}
	return out
}

// Delete returns a version with pred(row) absent (set semantics).
func (f FrozenDB) Delete(pred string, row []term.Term) FrozenDB {
	pa := predArity2{pred, len(row)}
	root := f.rels[pa]
	if root == nil {
		return f
	}
	key := term.KeyOf(row)
	newRoot, removed := pmDel(root, pmapHash(key), 0, key)
	if !removed {
		return f
	}
	out := f.withRel(pa, newRoot)
	out.size = f.size - 1
	lo, hi := tupleHash(pred, len(row), row)
	out.lo, out.hi = f.lo^lo, f.hi^hi
	return out
}

// withRel copies the relation directory with one root replaced; the map
// copy is O(#relations), which is a schema-sized constant, not data-sized.
func (f FrozenDB) withRel(pa predArity2, root *pnode) FrozenDB {
	rels := make(map[predArity2]*pnode, len(f.rels)+1)
	for k, v := range f.rels {
		rels[k] = v
	}
	if root == nil {
		delete(rels, pa)
	} else {
		rels[pa] = root
	}
	return FrozenDB{rels: rels, size: f.size, lo: f.lo, hi: f.hi}
}

// Range visits every tuple, relations ordered by (pred, arity) so the
// visit order is deterministic for identical contents; within a relation
// the order is trie order. Stops early when fn returns false. key is the
// canonical tuple key (term.KeyOf of row). The checkpointer streams a
// frozen view to disk through this without materializing anything.
func (f FrozenDB) Range(fn func(pred string, arity int, key string, row []term.Term) bool) {
	pas := make([]predArity2, 0, len(f.rels))
	for pa := range f.rels {
		pas = append(pas, pa)
	}
	sort.Slice(pas, func(i, j int) bool {
		if pas[i].pred != pas[j].pred {
			return pas[i].pred < pas[j].pred
		}
		return pas[i].arity < pas[j].arity
	})
	for _, pa := range pas {
		if !pmRange(f.rels[pa], func(key string, val []term.Term) bool {
			return fn(pa.pred, pa.arity, key, val)
		}) {
			return
		}
	}
}

// Count returns the tuple count of pred/arity.
func (f FrozenDB) Count(pred string, arity int) int {
	n := 0
	pmRange(f.rels[predArity2{pred, arity}], func(string, []term.Term) bool {
		n++
		return true
	})
	return n
}
