//go:build linux

package db

import (
	"os"
	"syscall"
)

// fdatasync makes file data (and size, when the file grew) durable without
// forcing a journal commit for timestamp metadata the way fsync does. The
// WAL syncs on every commit batch, so the difference is on its hottest
// path.
func fdatasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
