// Package db implements the database substrate of the Transaction Datalog
// engine: sets of ground tuples grouped into relations, with
//
//   - set semantics for insertion and deletion, as in the paper (inserting a
//     present tuple and deleting an absent one succeed without effect);
//   - an undo log giving O(1) marking and O(changes) rollback, which the
//     proof-search engine uses to explore alternative execution paths and to
//     implement transactional abort;
//   - optional first-argument hash indexes for selective queries; and
//   - an incrementally maintained 128-bit fingerprint used by tabling to
//     recognize previously seen database states.
//
// Tuples are keyed by compact binary keys built from interned term codes
// (term.AppendKey): 8 bytes per argument, no string construction. Presence
// checks, no-op updates, and ground scans allocate nothing — see
// alloc_test.go for the enforced ceilings. Each relation (and each
// first-argument index bucket) caches its deterministic scan order and
// invalidates it on mutation, so repeated scans of a stable relation sort
// once per mutation epoch instead of once per call.
package db

import (
	"fmt"
	"iter"
	"sort"
	"strings"

	"repro/internal/term"
)

// DB is a mutable database: a finite set of ground atoms. The zero value is
// not usable; call New.
type DB struct {
	rels     map[relID]*relation
	trail    []change
	size     int
	hashLo   uint64
	hashHi   uint64
	useIndex bool
	detScan  bool
	readHook ReadHook

	// keyBuf is scratch for building binary tuple keys. It is reused across
	// calls; no method keeps a reference to it past the point where control
	// can re-enter the DB (Scan yields, hooks), so re-entrant use is safe.
	keyBuf []byte

	// Operation tallies for observability. Plain int64s: a DB is owned by a
	// single goroutine (each server session runs on its own replica), so
	// counting costs one increment, not an atomic RMW, on the zero-alloc
	// paths guarded by alloc_test.go.
	cnt Counters
}

// Counters is a snapshot of a DB's cumulative operation tallies.
type Counters struct {
	// Lookups counts ground point lookups: Contains calls, fully ground
	// Scans, and the presence checks implicit in Insert/Delete.
	Lookups int64
	// IndexHits counts Scans served from a first-argument index bucket.
	IndexHits int64
	// Scans counts Scans that had to walk a whole relation.
	Scans int64
	// OrderRebuilds counts deterministic scan-order cache rebuilds (the
	// sort-on-first-scan-after-mutation cost PR 2 introduced caching for).
	OrderRebuilds int64
}

// Counters returns the DB's cumulative operation tallies.
func (d *DB) Counters() Counters { return d.cnt }

// relID identifies a relation. A struct key: the per-operation Sprintf a
// string key would cost is exactly the kind of hot-path allocation this
// package now refuses to pay.
type relID struct {
	pred  string
	arity int
}

// ReadKind classifies one read observation reported to a ReadHook, from
// finest to coarsest granularity.
type ReadKind uint8

// Read observation kinds.
const (
	// ReadKey: the presence or absence of a single tuple key was observed
	// (a ground query, or the implicit presence check of an insert/delete
	// under set semantics).
	ReadKey ReadKind = iota
	// ReadPrefix: every tuple whose first argument has the given key was
	// observed (an index-assisted scan).
	ReadPrefix
	// ReadRel: the whole relation pred/arity was observed (a full scan).
	ReadRel
	// ReadPred: the predicate at every arity was observed (empty.p).
	ReadPred
)

// ReadHook observes the read dependencies of elementary operations:
// queries, emptiness tests, and the presence checks implicit in set-semantic
// updates. Transaction machinery (internal/server) uses it to build the
// read set that optimistic commit validation checks against concurrent
// writers. The hook fires on every explored execution path, so recorded
// read sets over-approximate the witness path — a sound direction for
// conflict detection. Keys passed to the hook are the portable canonical
// encodings of term.KeyOf (matching Op.Key), computed only when a hook is
// installed. first is the ground code (term.Code) of the tuple's first
// argument for ReadKey/ReadPrefix observations with arity > 0, and 0
// otherwise — codes are never 0, so 0 unambiguously means "no first
// argument". Shard-aware callers feed it to ShardOf to tag the read with
// the shard the observed tuples live in.
type ReadHook func(kind ReadKind, pred string, arity int, key string, first uint64)

// SetReadHook installs (or, with nil, removes) the read observation hook.
func (d *DB) SetReadHook(h ReadHook) { d.readHook = h }

// firstCode returns the ground code of a row's first argument, or 0 for a
// zero-arity row (codes are tagged in their low bits and are never 0).
func firstCode(row []term.Term) uint64 {
	if len(row) == 0 {
		return 0
	}
	return row[0].Code()
}

// trow is one stored tuple: the row plus its own binary key, kept so that
// deletion and undo never rebuild or re-allocate the key.
type trow struct {
	key string
	row []term.Term
}

// relation stores the tuples of one predicate/arity pair.
type relation struct {
	pred  string
	arity int
	rows  map[string]trow
	// index maps the code of the first argument to its bucket. nil when
	// indexing is disabled or arity is 0.
	index map[uint64]*ibucket
	// order is the cached snapshot of rows used by Scan; nil when stale
	// (invalidated by every mutation). sorted reports whether it is in
	// deterministic (term-compare) order.
	order  [][]term.Term
	sorted bool
	// free recycles the last emptied index bucket. Delete-then-reinsert
	// churn on a single-row bucket (the transactional update idiom) would
	// otherwise allocate a bucket and its map on every round trip.
	free *ibucket
	// seedLo/seedHi are the fingerprint prefix hashes of (pred, arity),
	// computed once so per-tuple hashing only folds the argument codes.
	seedLo uint64
	seedHi uint64
	// version counts mutations of this relation (monotone within one DB;
	// NOT comparable across replicas — each counts its own churn).
	version uint64
	// fpLo/fpHi are the relation's own 128-bit content fingerprint, the
	// per-relation slice of the DB fingerprint. XOR-maintained from the
	// same tuple hashes, so two replicas holding the same tuples agree on
	// it regardless of how they got there — the property snapshot-
	// versioned memo tables key on.
	fpLo uint64
	fpHi uint64
}

// ibucket is one first-argument index bucket, with the same per-bucket
// scan-order cache as the relation.
type ibucket struct {
	rows   map[string][]term.Term
	order  [][]term.Term
	sorted bool
}

// change is one undo-log entry.
type change struct {
	rel    *relation
	key    string
	row    []term.Term
	insert bool // true if the change was an insertion (undo deletes)
}

// Option configures a DB.
type Option func(*DB)

// WithoutIndex disables first-argument indexes (for the A3 ablation).
func WithoutIndex() Option {
	return func(d *DB) { d.useIndex = false }
}

// WithoutDeterministicScan lets Scan visit candidate tuples in snapshot
// order instead of sorted order. Avoids the per-epoch sort on large scans,
// but derivation order (and therefore witness traces) becomes
// nondeterministic.
func WithoutDeterministicScan() Option {
	return func(d *DB) { d.detScan = false }
}

// New returns an empty database.
func New(opts ...Option) *DB {
	d := &DB{rels: make(map[relID]*relation), useIndex: true, detScan: true}
	for _, o := range opts {
		o(d)
	}
	return d
}

// FromFacts returns a database holding the given ground atoms.
func FromFacts(facts []term.Atom, opts ...Option) (*DB, error) {
	d := New(opts...)
	for _, f := range facts {
		if !f.IsGround() {
			return nil, fmt.Errorf("db: fact %s is not ground", f)
		}
		d.Insert(f.Pred, f.Args)
	}
	d.ResetTrail()
	return d, nil
}

func (d *DB) rel(pred string, arity int, create bool) *relation {
	k := relID{pred: pred, arity: arity}
	r := d.rels[k]
	if r == nil && create {
		r = &relation{pred: pred, arity: arity, rows: make(map[string]trow)}
		r.seedLo, r.seedHi = relSeed(pred, arity)
		if d.useIndex && arity > 0 {
			r.index = make(map[uint64]*ibucket)
		}
		d.rels[k] = r
	}
	return r
}

// Fingerprint hashing: FNV-1a folded inline over (pred, arity, argument
// codes), in two independently seeded streams for 128 bits. No hash.Hash
// objects, no key strings — pure arithmetic on the hot path.
const (
	fnvPrime   = 1099511628211
	fnvOffset  = 14695981039346656037
	fnvOffset2 = 0x9e3779b97f4a7c15 // independent second stream seed
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// relSeed hashes the relation identity into both fingerprint streams.
func relSeed(pred string, arity int) (uint64, uint64) {
	lo, hi := uint64(fnvOffset), uint64(fnvOffset2)
	for i := 0; i < len(pred); i++ {
		lo = fnvByte(lo, pred[i])
		hi = fnvByte(hi, pred[i])
	}
	lo = fnvU64(lo, uint64(arity))
	hi = fnvU64(hi, uint64(arity)+1)
	return lo, hi
}

// tupleHashFrom folds the row's term codes onto the relation seeds.
func tupleHashFrom(seedLo, seedHi uint64, row []term.Term) (uint64, uint64) {
	lo, hi := seedLo, seedHi
	for _, t := range row {
		c := t.Code()
		lo = fnvU64(lo, c)
		hi = fnvU64(hi, c^0xa5a5a5a5a5a5a5a5)
	}
	return lo, hi
}

// tupleHash returns the two fingerprint contributions of one tuple (the
// non-seeded entry point, used by FrozenDB).
func tupleHash(pred string, arity int, row []term.Term) (uint64, uint64) {
	lo, hi := relSeed(pred, arity)
	return tupleHashFrom(lo, hi, row)
}

// Size returns the total number of tuples.
func (d *DB) Size() int { return d.size }

// Count returns the number of tuples in pred/arity.
func (d *DB) Count(pred string, arity int) int {
	r := d.rel(pred, arity, false)
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// IsEmpty reports whether the relation named pred is empty at every arity.
// This implements the elementary test empty.p.
func (d *DB) IsEmpty(pred string) bool {
	if d.readHook != nil {
		d.readHook(ReadPred, pred, -1, "", 0)
	}
	for _, r := range d.rels {
		if r.pred == pred && len(r.rows) > 0 {
			return false
		}
	}
	return true
}

// Contains reports whether the ground tuple pred(row) is present.
func (d *DB) Contains(pred string, row []term.Term) bool {
	d.cnt.Lookups++
	kb := term.AppendKey(d.keyBuf[:0], row)
	d.keyBuf = kb
	if d.readHook != nil {
		d.readHook(ReadKey, pred, len(row), term.KeyOf(row), firstCode(row))
	}
	r := d.rel(pred, len(row), false)
	if r == nil {
		return false
	}
	_, ok := r.rows[string(kb)] // compiled to an allocation-free lookup
	return ok
}

// Insert adds pred(row); row must be ground. It reports whether the database
// changed (false when the tuple was already present).
func (d *DB) Insert(pred string, row []term.Term) bool {
	d.cnt.Lookups++
	r := d.rel(pred, len(row), true)
	kb := term.AppendKey(d.keyBuf[:0], row)
	d.keyBuf = kb
	if d.readHook != nil {
		// Set semantics make every update observe its tuple's presence.
		d.readHook(ReadKey, pred, len(row), term.KeyOf(row), firstCode(row))
	}
	if _, ok := r.rows[string(kb)]; ok {
		return false
	}
	key := string(kb) // materialized once, owned by the stored row
	stored := make([]term.Term, len(row))
	copy(stored, row)
	d.addRow(r, key, stored)
	d.trail = append(d.trail, change{rel: r, key: key, row: stored, insert: true})
	return true
}

// Delete removes pred(row); row must be ground. It reports whether the
// database changed (false when the tuple was absent).
func (d *DB) Delete(pred string, row []term.Term) bool {
	d.cnt.Lookups++
	kb := term.AppendKey(d.keyBuf[:0], row)
	d.keyBuf = kb
	if d.readHook != nil {
		d.readHook(ReadKey, pred, len(row), term.KeyOf(row), firstCode(row))
	}
	r := d.rel(pred, len(row), false)
	if r == nil {
		return false
	}
	tr, ok := r.rows[string(kb)]
	if !ok {
		return false
	}
	d.removeRow(r, tr.key, tr.row)
	d.trail = append(d.trail, change{rel: r, key: tr.key, row: tr.row, insert: false})
	return true
}

func (d *DB) removeRow(r *relation, key string, stored []term.Term) {
	delete(r.rows, key)
	r.order = nil
	if r.index != nil {
		c := stored[0].Code()
		if b := r.index[c]; b != nil {
			delete(b.rows, key)
			b.order = nil
			if len(b.rows) == 0 {
				delete(r.index, c)
				r.free = b
			}
		}
	}
	d.size--
	lo, hi := tupleHashFrom(r.seedLo, r.seedHi, stored)
	d.hashLo ^= lo
	d.hashHi ^= hi
	r.version++
	r.fpLo ^= lo
	r.fpHi ^= hi
}

func (d *DB) addRow(r *relation, key string, stored []term.Term) {
	r.rows[key] = trow{key: key, row: stored}
	r.order = nil
	if r.index != nil {
		c := stored[0].Code()
		b := r.index[c]
		if b == nil {
			if b = r.free; b != nil {
				r.free = nil
			} else {
				b = &ibucket{rows: make(map[string][]term.Term)}
			}
			r.index[c] = b
		}
		b.rows[key] = stored
		b.order = nil
	}
	d.size++
	lo, hi := tupleHashFrom(r.seedLo, r.seedHi, stored)
	d.hashLo ^= lo
	d.hashHi ^= hi
	r.version++
	r.fpLo ^= lo
	r.fpHi ^= hi
}

// Mark returns the current undo-log position.
func (d *DB) Mark() int { return len(d.trail) }

// Undo rolls the database back to a previous Mark.
func (d *DB) Undo(mark int) {
	for i := len(d.trail) - 1; i >= mark; i-- {
		c := d.trail[i]
		if c.insert {
			d.removeRow(c.rel, c.key, c.row)
		} else {
			d.addRow(c.rel, c.key, c.row)
		}
	}
	d.trail = d.trail[:mark]
}

// ResetTrail discards undo history, committing all changes so far. Undo
// marks taken earlier become invalid.
func (d *DB) ResetTrail() { d.trail = d.trail[:0] }

// TrailLen returns the number of pending undo entries (for tests/metrics).
func (d *DB) TrailLen() int { return len(d.trail) }

// Fingerprint returns a 128-bit content fingerprint of the current state,
// independent of insertion order. Used as a tabling key.
func (d *DB) Fingerprint() [2]uint64 { return [2]uint64{d.hashLo, d.hashHi} }

// RelVersion returns the mutation counter of pred/arity: bumped on every
// addRow/removeRow (including undo replay), monotone within this DB.
// Counters are NOT comparable across replicas — each DB counts its own
// churn — so cross-DB staleness checks must use RelFingerprint instead.
// A relation never touched reports 0.
func (d *DB) RelVersion(pred string, arity int) uint64 {
	if r := d.rel(pred, arity, false); r != nil {
		return r.version
	}
	return 0
}

// RelFingerprint returns the 128-bit content fingerprint of pred/arity —
// the relation's slice of the whole-DB Fingerprint. It is a pure function
// of the relation's tuple set: replicas holding the same tuples agree on
// it no matter how they were built, and rolling mutations back restores
// it. A missing relation fingerprints like an empty one ({0, 0}).
func (d *DB) RelFingerprint(pred string, arity int) [2]uint64 {
	if r := d.rel(pred, arity, false); r != nil {
		return [2]uint64{r.fpLo, r.fpHi}
	}
	return [2]uint64{}
}

// PredFingerprint returns the combined content fingerprint of pred at
// every arity — the state the emptiness test empty.p depends on. The
// per-relation fingerprints XOR, so the result is order-independent and
// exact.
func (d *DB) PredFingerprint(pred string) [2]uint64 {
	var lo, hi uint64
	for _, r := range d.rels {
		if r.pred == pred {
			lo ^= r.fpLo
			hi ^= r.fpHi
		}
	}
	return [2]uint64{lo, hi}
}

// snapshot returns a stable slice of the relation's rows, cached until the
// next mutation. With wantSorted the slice is in deterministic term order;
// a cached unsorted snapshot is upgraded (and re-cached) on demand. The
// returned slice is never mutated in place: mutations replace the cache, so
// an iteration holding an old snapshot keeps its fixed candidate set.
func (r *relation) snapshot(wantSorted bool) [][]term.Term {
	if r.order != nil && (!wantSorted || r.sorted) {
		return r.order
	}
	out := make([][]term.Term, 0, len(r.rows))
	for _, tr := range r.rows {
		out = append(out, tr.row)
	}
	if wantSorted {
		sortRows(out)
	}
	r.order, r.sorted = out, wantSorted
	return out
}

func (b *ibucket) snapshot(wantSorted bool) [][]term.Term {
	if b.order != nil && (!wantSorted || b.sorted) {
		return b.order
	}
	out := make([][]term.Term, 0, len(b.rows))
	for _, row := range b.rows {
		out = append(out, row)
	}
	if wantSorted {
		sortRows(out)
	}
	b.order, b.sorted = out, wantSorted
	return out
}

// sortRows orders rows by term comparison, argument by argument: the
// deterministic scan and print order of the package.
func sortRows(rows [][]term.Term) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if c := rows[i][k].Compare(rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// Scan calls yield for every tuple of pred/arity that unifies with args
// under env, with the unifying bindings in effect during the call; bindings
// are undone after each yield that returns true. Iteration stops early when
// yield returns false, in which case the current bindings are kept (the
// engine uses this to preserve witness state on a cut). Scan reports whether
// iteration ran to completion.
//
// The set of candidate tuples is fixed when Scan is called: updates
// performed inside yield do not affect which tuples are visited. This gives
// queries snapshot behaviour within a single elementary step.
func (d *DB) Scan(pred string, args []term.Term, env *term.Env, yield func() bool) bool {
	// One pass over the arguments: detect groundness and, while everything
	// is ground so far, accumulate the binary lookup key.
	kb := d.keyBuf[:0]
	ground := true
	for _, a := range args {
		w := env.Walk(a)
		if w.IsVar() {
			ground = false
			break
		}
		kb = term.AppendCode(kb, w.Code())
	}
	d.keyBuf = kb

	var resolved []term.Term
	if !ground || d.readHook != nil {
		resolved = env.ResolveArgs(args)
	}
	if d.readHook != nil {
		// Record the read at the granularity the lookup below uses, even
		// when the relation does not exist yet: observing absence is a read.
		switch {
		case ground:
			d.readHook(ReadKey, pred, len(args), term.KeyOf(resolved), firstCode(resolved))
		case d.useIndex && !resolved[0].IsVar():
			d.readHook(ReadPrefix, pred, len(args), term.KeyOf(resolved[:1]), resolved[0].Code())
		default:
			d.readHook(ReadRel, pred, len(args), "", 0)
		}
	}
	r := d.rel(pred, len(args), false)
	if r == nil {
		return true
	}

	// Fully ground: single allocation-free lookup.
	if ground {
		d.cnt.Lookups++
		if _, ok := r.rows[string(kb)]; ok {
			return yield()
		}
		return true
	}

	// Choose candidates: first-arg index bucket when available and
	// selective, else the whole relation; either way through the cached
	// snapshot, so the deterministic sort happens once per mutation epoch.
	var candidates [][]term.Term
	if r.index != nil && !resolved[0].IsVar() {
		d.cnt.IndexHits++
		if b := r.index[resolved[0].Code()]; b != nil {
			if b.order == nil || (d.detScan && !b.sorted) {
				d.cnt.OrderRebuilds++
			}
			candidates = b.snapshot(d.detScan)
		}
	} else {
		d.cnt.Scans++
		if r.order == nil || (d.detScan && !r.sorted) {
			d.cnt.OrderRebuilds++
		}
		candidates = r.snapshot(d.detScan)
	}
	for _, row := range candidates {
		mark := env.Mark()
		if env.UnifyArgs(resolved, row) {
			if !yield() {
				// Early stop: bindings are deliberately left in effect so
				// callers can cut a search while keeping the witness state.
				return false
			}
			env.Undo(mark)
		} else {
			env.Undo(mark)
		}
	}
	return true
}

// Tuples returns all tuples of pred/arity in deterministic order (sorted
// by term comparison, argument by argument).
func (d *DB) Tuples(pred string, arity int) [][]term.Term {
	r := d.rel(pred, arity, false)
	if r == nil {
		return nil
	}
	// Copy the cached sorted snapshot: callers may reorder the outer slice.
	return append([][]term.Term(nil), r.snapshot(true)...)
}

// Relations returns the pred/arity pairs present (possibly with zero rows),
// sorted by name then arity.
func (d *DB) Relations() []struct {
	Pred  string
	Arity int
} {
	out := make([]struct {
		Pred  string
		Arity int
	}, 0, len(d.rels))
	for _, r := range d.rels {
		out = append(out, struct {
			Pred  string
			Arity int
		}{r.pred, r.arity})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Clone returns a deep copy with an empty undo log. Used by the simulator
// (each run gets its own state) and by the copy-based forking ablation.
func (d *DB) Clone() *DB {
	out := New()
	out.useIndex = d.useIndex
	out.detScan = d.detScan
	for k, r := range d.rels {
		nr := &relation{
			pred: r.pred, arity: r.arity,
			rows:   make(map[string]trow, len(r.rows)),
			seedLo: r.seedLo, seedHi: r.seedHi,
			version: r.version,
			fpLo:    r.fpLo, fpHi: r.fpHi,
		}
		if d.useIndex && r.arity > 0 {
			nr.index = make(map[uint64]*ibucket, len(r.index))
		}
		for key, tr := range r.rows {
			nr.rows[key] = tr // rows are immutable once stored
			if nr.index != nil {
				c := tr.row[0].Code()
				b := nr.index[c]
				if b == nil {
					b = &ibucket{rows: make(map[string][]term.Term)}
					nr.index[c] = b
				}
				b.rows[key] = tr.row
			}
		}
		out.rels[k] = nr
	}
	out.size = d.size
	out.hashLo = d.hashLo
	out.hashHi = d.hashHi
	return out
}

// Equal reports whether two databases hold exactly the same tuples.
func (d *DB) Equal(o *DB) bool {
	if d.size != o.size {
		return false
	}
	for k, r := range d.rels {
		or := o.rels[k]
		if or == nil {
			if len(r.rows) != 0 {
				return false
			}
			continue
		}
		if len(r.rows) != len(or.rows) {
			return false
		}
		for key := range r.rows {
			if _, ok := or.rows[key]; !ok {
				return false
			}
		}
	}
	for k, or := range o.rels {
		if d.rels[k] == nil && len(or.rows) != 0 {
			return false
		}
	}
	return true
}

// String renders the database as sorted facts, one per line.
func (d *DB) String() string {
	var b strings.Builder
	for _, ra := range d.Relations() {
		for _, row := range d.Tuples(ra.Pred, ra.Arity) {
			b.WriteString(term.Atom{Pred: ra.Pred, Args: row}.String())
			b.WriteString(".\n")
		}
	}
	return b.String()
}

// All ranges over the tuples of pred/arity in deterministic (sorted)
// order:
//
//	for row := range d.All("account", 2) { ... }
//
// The yielded slices are the stored rows; callers must not mutate them.
func (d *DB) All(pred string, arity int) iter.Seq[[]term.Term] {
	return func(yield func([]term.Term) bool) {
		for _, row := range d.Tuples(pred, arity) {
			if !yield(row) {
				return
			}
		}
	}
}

// AllAtoms ranges over every stored tuple as a ground atom, sorted by
// relation then tuple.
func (d *DB) AllAtoms() iter.Seq[term.Atom] {
	return func(yield func(term.Atom) bool) {
		for _, ra := range d.Relations() {
			for _, row := range d.Tuples(ra.Pred, ra.Arity) {
				if !yield(term.Atom{Pred: ra.Pred, Args: row}) {
					return
				}
			}
		}
	}
}

// Op is one effective elementary update — an undo-log entry made portable.
// Sequences of Ops are the write sets that transactional callers (the
// server's optimistic concurrency control) extract, validate, log, and
// replay.
type Op struct {
	Insert bool // false = delete
	Pred   string
	Row    []term.Term

	// storeKey caches the in-memory storage key (term.AppendKey codes, valid
	// only within this process) when the op was extracted from an undo trail,
	// which already materialized it. Empty for hand-built ops. A non-empty
	// storeKey also marks Row as an immutably-stored row that Apply may
	// share instead of copying. NOT the canonical portable key — see Key.
	storeKey string
	// canon memoizes Key: a commit needs each op's canonical key three
	// times (conflict keys, frozen view, WAL record).
	canon string
}

// Key returns the canonical tuple key of the op's row (term.KeyOf) — the
// portable encoding used by the WAL and the snapshot, not the interned
// in-memory storage key.
func (o *Op) Key() string {
	if o.canon == "" {
		o.canon = term.KeyOf(o.Row)
	}
	return o.canon
}

func (o Op) String() string {
	verb := "del"
	if o.Insert {
		verb = "ins"
	}
	return verb + "." + term.Atom{Pred: o.Pred, Args: o.Row}.String()
}

// DeltaSince returns the effective updates recorded on the undo trail since
// mark, in execution order. Because backtracking removes undone entries,
// the result is exactly the net-effect write set of the surviving
// execution path.
func (d *DB) DeltaSince(mark int) []Op {
	if mark >= len(d.trail) {
		return nil
	}
	out := make([]Op, 0, len(d.trail)-mark)
	for _, c := range d.trail[mark:] {
		out = append(out, Op{Insert: c.insert, Pred: c.rel.pred, Row: c.row, storeKey: c.key})
	}
	return out
}

// Apply performs ops in order (through the trail, so the batch can still be
// undone from a prior Mark). Ops carrying a cached storage key (i.e.
// extracted by DeltaSince) take an allocation-free path: the stored row and
// its key are shared, not copied — stored rows are immutable everywhere, so
// sharing them across replicas is safe. This is the replica catch-up hot
// path: with N concurrent committers every commit replays the other N-1
// write sets.
func (d *DB) Apply(ops []Op) {
	for i := range ops {
		d.ApplyOne(&ops[i])
	}
}

// ApplyOne performs a single op through the trail, reporting whether the
// database changed (set semantics make repeats no-ops).
func (d *DB) ApplyOne(o *Op) bool {
	if o.storeKey == "" {
		if o.Insert {
			return d.Insert(o.Pred, o.Row)
		}
		return d.Delete(o.Pred, o.Row)
	}
	d.cnt.Lookups++
	if o.Insert {
		r := d.rel(o.Pred, len(o.Row), true)
		if _, ok := r.rows[o.storeKey]; ok {
			return false
		}
		d.addRow(r, o.storeKey, o.Row)
		d.trail = append(d.trail, change{rel: r, key: o.storeKey, row: o.Row, insert: true})
		return true
	}
	r := d.rel(o.Pred, len(o.Row), false)
	if r == nil {
		return false
	}
	tr, ok := r.rows[o.storeKey]
	if !ok {
		return false
	}
	d.removeRow(r, tr.key, tr.row)
	d.trail = append(d.trail, change{rel: r, key: tr.key, row: tr.row, insert: false})
	return true
}

// Atoms returns every tuple as a ground atom, sorted.
func (d *DB) Atoms() []term.Atom {
	var out []term.Atom
	for _, ra := range d.Relations() {
		for _, row := range d.Tuples(ra.Pred, ra.Arity) {
			out = append(out, term.Atom{Pred: ra.Pred, Args: row})
		}
	}
	return out
}
