// Package db implements the database substrate of the Transaction Datalog
// engine: sets of ground tuples grouped into relations, with
//
//   - set semantics for insertion and deletion, as in the paper (inserting a
//     present tuple and deleting an absent one succeed without effect);
//   - an undo log giving O(1) marking and O(changes) rollback, which the
//     proof-search engine uses to explore alternative execution paths and to
//     implement transactional abort;
//   - optional first-argument hash indexes for selective queries; and
//   - an incrementally maintained 128-bit fingerprint used by tabling to
//     recognize previously seen database states.
package db

import (
	"fmt"
	"hash/fnv"
	"iter"
	"sort"
	"strings"

	"repro/internal/term"
)

// DB is a mutable database: a finite set of ground atoms. The zero value is
// not usable; call New.
type DB struct {
	rels     map[string]*relation
	trail    []change
	size     int
	hashLo   uint64
	hashHi   uint64
	useIndex bool
	detScan  bool
	readHook ReadHook
}

// ReadKind classifies one read observation reported to a ReadHook, from
// finest to coarsest granularity.
type ReadKind uint8

// Read observation kinds.
const (
	// ReadKey: the presence or absence of a single tuple key was observed
	// (a ground query, or the implicit presence check of an insert/delete
	// under set semantics).
	ReadKey ReadKind = iota
	// ReadPrefix: every tuple whose first argument has the given key was
	// observed (an index-assisted scan).
	ReadPrefix
	// ReadRel: the whole relation pred/arity was observed (a full scan).
	ReadRel
	// ReadPred: the predicate at every arity was observed (empty.p).
	ReadPred
)

// ReadHook observes the read dependencies of elementary operations:
// queries, emptiness tests, and the presence checks implicit in set-semantic
// updates. Transaction machinery (internal/server) uses it to build the
// read set that optimistic commit validation checks against concurrent
// writers. The hook fires on every explored execution path, so recorded
// read sets over-approximate the witness path — a sound direction for
// conflict detection.
type ReadHook func(kind ReadKind, pred string, arity int, key string)

// SetReadHook installs (or, with nil, removes) the read observation hook.
func (d *DB) SetReadHook(h ReadHook) { d.readHook = h }

// relation stores the tuples of one predicate/arity pair.
type relation struct {
	pred  string
	arity int
	rows  map[string][]term.Term
	// index maps the key of the first argument to the set of row keys that
	// start with it. nil when indexing is disabled or arity is 0.
	index map[string]map[string]bool
}

// change is one undo-log entry.
type change struct {
	rel    *relation
	key    string
	row    []term.Term
	insert bool // true if the change was an insertion (undo deletes)
}

// Option configures a DB.
type Option func(*DB)

// WithoutIndex disables first-argument indexes (for the A3 ablation).
func WithoutIndex() Option {
	return func(d *DB) { d.useIndex = false }
}

// WithoutDeterministicScan lets Scan visit candidate tuples in map order
// instead of sorted order. Faster on large scans, but derivation order (and
// therefore witness traces) becomes nondeterministic.
func WithoutDeterministicScan() Option {
	return func(d *DB) { d.detScan = false }
}

// New returns an empty database.
func New(opts ...Option) *DB {
	d := &DB{rels: make(map[string]*relation), useIndex: true, detScan: true}
	for _, o := range opts {
		o(d)
	}
	return d
}

// FromFacts returns a database holding the given ground atoms.
func FromFacts(facts []term.Atom, opts ...Option) (*DB, error) {
	d := New(opts...)
	for _, f := range facts {
		if !f.IsGround() {
			return nil, fmt.Errorf("db: fact %s is not ground", f)
		}
		d.Insert(f.Pred, f.Args)
	}
	d.ResetTrail()
	return d, nil
}

func relKey(pred string, arity int) string {
	return fmt.Sprintf("%s/%d", pred, arity)
}

func (d *DB) rel(pred string, arity int, create bool) *relation {
	k := relKey(pred, arity)
	r := d.rels[k]
	if r == nil && create {
		r = &relation{pred: pred, arity: arity, rows: make(map[string][]term.Term)}
		if d.useIndex && arity > 0 {
			r.index = make(map[string]map[string]bool)
		}
		d.rels[k] = r
	}
	return r
}

// tupleHash returns the two fingerprint contributions of one tuple.
func tupleHash(pred string, arity int, rowKey string) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write([]byte(relKey(pred, arity)))
	h1.Write([]byte{0})
	h1.Write([]byte(rowKey))
	lo := h1.Sum64()
	h2 := fnv.New64a()
	h2.Write([]byte(rowKey))
	h2.Write([]byte{1})
	h2.Write([]byte(relKey(pred, arity)))
	return lo, h2.Sum64()
}

// Size returns the total number of tuples.
func (d *DB) Size() int { return d.size }

// Count returns the number of tuples in pred/arity.
func (d *DB) Count(pred string, arity int) int {
	r := d.rel(pred, arity, false)
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// IsEmpty reports whether the relation named pred is empty at every arity.
// This implements the elementary test empty.p.
func (d *DB) IsEmpty(pred string) bool {
	if d.readHook != nil {
		d.readHook(ReadPred, pred, -1, "")
	}
	for _, r := range d.rels {
		if r.pred == pred && len(r.rows) > 0 {
			return false
		}
	}
	return true
}

// Contains reports whether the ground tuple pred(row) is present.
func (d *DB) Contains(pred string, row []term.Term) bool {
	key := term.KeyOf(row)
	if d.readHook != nil {
		d.readHook(ReadKey, pred, len(row), key)
	}
	r := d.rel(pred, len(row), false)
	if r == nil {
		return false
	}
	_, ok := r.rows[key]
	return ok
}

// Insert adds pred(row); row must be ground. It reports whether the database
// changed (false when the tuple was already present).
func (d *DB) Insert(pred string, row []term.Term) bool {
	r := d.rel(pred, len(row), true)
	key := term.KeyOf(row)
	if d.readHook != nil {
		// Set semantics make every update observe its tuple's presence.
		d.readHook(ReadKey, pred, len(row), key)
	}
	if _, ok := r.rows[key]; ok {
		return false
	}
	stored := make([]term.Term, len(row))
	copy(stored, row)
	r.rows[key] = stored
	if r.index != nil {
		fk := term.KeyOf(stored[:1])
		bucket := r.index[fk]
		if bucket == nil {
			bucket = make(map[string]bool)
			r.index[fk] = bucket
		}
		bucket[key] = true
	}
	d.size++
	lo, hi := tupleHash(pred, len(row), key)
	d.hashLo ^= lo
	d.hashHi ^= hi
	d.trail = append(d.trail, change{rel: r, key: key, row: stored, insert: true})
	return true
}

// Delete removes pred(row); row must be ground. It reports whether the
// database changed (false when the tuple was absent).
func (d *DB) Delete(pred string, row []term.Term) bool {
	key := term.KeyOf(row)
	if d.readHook != nil {
		d.readHook(ReadKey, pred, len(row), key)
	}
	r := d.rel(pred, len(row), false)
	if r == nil {
		return false
	}
	stored, ok := r.rows[key]
	if !ok {
		return false
	}
	d.removeRow(r, key, stored)
	d.trail = append(d.trail, change{rel: r, key: key, row: stored, insert: false})
	return true
}

func (d *DB) removeRow(r *relation, key string, stored []term.Term) {
	delete(r.rows, key)
	if r.index != nil {
		fk := term.KeyOf(stored[:1])
		if bucket := r.index[fk]; bucket != nil {
			delete(bucket, key)
			if len(bucket) == 0 {
				delete(r.index, fk)
			}
		}
	}
	d.size--
	lo, hi := tupleHash(r.pred, r.arity, key)
	d.hashLo ^= lo
	d.hashHi ^= hi
}

func (d *DB) addRow(r *relation, key string, stored []term.Term) {
	r.rows[key] = stored
	if r.index != nil {
		fk := term.KeyOf(stored[:1])
		bucket := r.index[fk]
		if bucket == nil {
			bucket = make(map[string]bool)
			r.index[fk] = bucket
		}
		bucket[key] = true
	}
	d.size++
	lo, hi := tupleHash(r.pred, r.arity, key)
	d.hashLo ^= lo
	d.hashHi ^= hi
}

// Mark returns the current undo-log position.
func (d *DB) Mark() int { return len(d.trail) }

// Undo rolls the database back to a previous Mark.
func (d *DB) Undo(mark int) {
	for i := len(d.trail) - 1; i >= mark; i-- {
		c := d.trail[i]
		if c.insert {
			d.removeRow(c.rel, c.key, c.row)
		} else {
			d.addRow(c.rel, c.key, c.row)
		}
	}
	d.trail = d.trail[:mark]
}

// ResetTrail discards undo history, committing all changes so far. Undo
// marks taken earlier become invalid.
func (d *DB) ResetTrail() { d.trail = d.trail[:0] }

// TrailLen returns the number of pending undo entries (for tests/metrics).
func (d *DB) TrailLen() int { return len(d.trail) }

// Fingerprint returns a 128-bit content fingerprint of the current state,
// independent of insertion order. Used as a tabling key.
func (d *DB) Fingerprint() [2]uint64 { return [2]uint64{d.hashLo, d.hashHi} }

// Scan calls yield for every tuple of pred/arity that unifies with args
// under env, with the unifying bindings in effect during the call; bindings
// are undone after each yield that returns true. Iteration stops early when
// yield returns false, in which case the current bindings are kept (the
// engine uses this to preserve witness state on a cut). Scan reports whether
// iteration ran to completion.
//
// The set of candidate tuples is fixed when Scan is called: updates
// performed inside yield do not affect which tuples are visited. This gives
// queries snapshot behaviour within a single elementary step.
func (d *DB) Scan(pred string, args []term.Term, env *term.Env, yield func() bool) bool {
	resolved := env.ResolveArgs(args)

	// Fully ground: single lookup.
	ground := true
	for _, t := range resolved {
		if t.IsVar() {
			ground = false
			break
		}
	}
	if d.readHook != nil {
		// Record the read at the granularity the lookup below uses, even
		// when the relation does not exist yet: observing absence is a read.
		switch {
		case ground:
			d.readHook(ReadKey, pred, len(args), term.KeyOf(resolved))
		case d.useIndex && len(resolved) > 0 && !resolved[0].IsVar():
			d.readHook(ReadPrefix, pred, len(args), term.KeyOf(resolved[:1]))
		default:
			d.readHook(ReadRel, pred, len(args), "")
		}
	}
	r := d.rel(pred, len(args), false)
	if r == nil {
		return true
	}
	if ground {
		if _, ok := r.rows[term.KeyOf(resolved)]; ok {
			return yield()
		}
		return true
	}

	// Choose candidates: first-arg index when available and selective.
	var keys []string
	if r.index != nil && len(resolved) > 0 && !resolved[0].IsVar() {
		bucket := r.index[term.KeyOf(resolved[:1])]
		keys = make([]string, 0, len(bucket))
		for key := range bucket {
			keys = append(keys, key)
		}
	} else {
		keys = make([]string, 0, len(r.rows))
		for key := range r.rows {
			keys = append(keys, key)
		}
	}
	if d.detScan {
		sort.Strings(keys)
	}
	candidates := make([][]term.Term, len(keys))
	for i, key := range keys {
		candidates[i] = r.rows[key]
	}
	for _, row := range candidates {
		mark := env.Mark()
		if env.UnifyArgs(resolved, row) {
			if !yield() {
				// Early stop: bindings are deliberately left in effect so
				// callers can cut a search while keeping the witness state.
				return false
			}
			env.Undo(mark)
		} else {
			env.Undo(mark)
		}
	}
	return true
}

// Tuples returns all tuples of pred/arity in deterministic order (sorted
// by term comparison, argument by argument).
func (d *DB) Tuples(pred string, arity int) [][]term.Term {
	r := d.rel(pred, arity, false)
	if r == nil {
		return nil
	}
	out := make([][]term.Term, 0, len(r.rows))
	for _, row := range r.rows {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if c := out[i][k].Compare(out[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Relations returns the pred/arity pairs present (possibly with zero rows),
// sorted by name then arity.
func (d *DB) Relations() []struct {
	Pred  string
	Arity int
} {
	out := make([]struct {
		Pred  string
		Arity int
	}, 0, len(d.rels))
	for _, r := range d.rels {
		out = append(out, struct {
			Pred  string
			Arity int
		}{r.pred, r.arity})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Clone returns a deep copy with an empty undo log. Used by the simulator
// (each run gets its own state) and by the copy-based forking ablation.
func (d *DB) Clone() *DB {
	out := New()
	out.useIndex = d.useIndex
	out.detScan = d.detScan
	for k, r := range d.rels {
		nr := &relation{pred: r.pred, arity: r.arity, rows: make(map[string][]term.Term, len(r.rows))}
		if d.useIndex && r.arity > 0 {
			nr.index = make(map[string]map[string]bool, len(r.index))
		}
		for key, row := range r.rows {
			nr.rows[key] = row // rows are immutable once stored
			if nr.index != nil {
				fk := term.KeyOf(row[:1])
				bucket := nr.index[fk]
				if bucket == nil {
					bucket = make(map[string]bool)
					nr.index[fk] = bucket
				}
				bucket[key] = true
			}
		}
		out.rels[k] = nr
	}
	out.size = d.size
	out.hashLo = d.hashLo
	out.hashHi = d.hashHi
	return out
}

// Equal reports whether two databases hold exactly the same tuples.
func (d *DB) Equal(o *DB) bool {
	if d.size != o.size {
		return false
	}
	for k, r := range d.rels {
		or := o.rels[k]
		if or == nil {
			if len(r.rows) != 0 {
				return false
			}
			continue
		}
		if len(r.rows) != len(or.rows) {
			return false
		}
		for key := range r.rows {
			if _, ok := or.rows[key]; !ok {
				return false
			}
		}
	}
	for k, or := range o.rels {
		if d.rels[k] == nil && len(or.rows) != 0 {
			return false
		}
	}
	return true
}

// String renders the database as sorted facts, one per line.
func (d *DB) String() string {
	var b strings.Builder
	for _, ra := range d.Relations() {
		for _, row := range d.Tuples(ra.Pred, ra.Arity) {
			b.WriteString(term.Atom{Pred: ra.Pred, Args: row}.String())
			b.WriteString(".\n")
		}
	}
	return b.String()
}

// All ranges over the tuples of pred/arity in deterministic (sorted)
// order:
//
//	for row := range d.All("account", 2) { ... }
//
// The yielded slices are the stored rows; callers must not mutate them.
func (d *DB) All(pred string, arity int) iter.Seq[[]term.Term] {
	return func(yield func([]term.Term) bool) {
		for _, row := range d.Tuples(pred, arity) {
			if !yield(row) {
				return
			}
		}
	}
}

// AllAtoms ranges over every stored tuple as a ground atom, sorted by
// relation then tuple.
func (d *DB) AllAtoms() iter.Seq[term.Atom] {
	return func(yield func(term.Atom) bool) {
		for _, ra := range d.Relations() {
			for _, row := range d.Tuples(ra.Pred, ra.Arity) {
				if !yield(term.Atom{Pred: ra.Pred, Args: row}) {
					return
				}
			}
		}
	}
}

// Op is one effective elementary update — an undo-log entry made portable.
// Sequences of Ops are the write sets that transactional callers (the
// server's optimistic concurrency control) extract, validate, log, and
// replay.
type Op struct {
	Insert bool // false = delete
	Pred   string
	Row    []term.Term
}

// Key returns the canonical tuple key of the op's row (term.KeyOf).
func (o Op) Key() string { return term.KeyOf(o.Row) }

func (o Op) String() string {
	verb := "del"
	if o.Insert {
		verb = "ins"
	}
	return verb + "." + term.Atom{Pred: o.Pred, Args: o.Row}.String()
}

// DeltaSince returns the effective updates recorded on the undo trail since
// mark, in execution order. Because backtracking removes undone entries,
// the result is exactly the net-effect write set of the surviving
// execution path.
func (d *DB) DeltaSince(mark int) []Op {
	if mark >= len(d.trail) {
		return nil
	}
	out := make([]Op, 0, len(d.trail)-mark)
	for _, c := range d.trail[mark:] {
		out = append(out, Op{Insert: c.insert, Pred: c.rel.pred, Row: c.row})
	}
	return out
}

// Apply performs ops in order (through the trail, so the batch can still be
// undone from a prior Mark).
func (d *DB) Apply(ops []Op) {
	for _, o := range ops {
		if o.Insert {
			d.Insert(o.Pred, o.Row)
		} else {
			d.Delete(o.Pred, o.Row)
		}
	}
}

// Atoms returns every tuple as a ground atom, sorted.
func (d *DB) Atoms() []term.Atom {
	var out []term.Atom
	for _, ra := range d.Relations() {
		for _, row := range d.Tuples(ra.Pred, ra.Arity) {
			out = append(out, term.Atom{Pred: ra.Pred, Args: row})
		}
	}
	return out
}
