package term

import (
	"fmt"
	"sync"
	"testing"
)

// The interner must hand out one id per distinct name, stably, under
// concurrent readers and writers. Run with -race (make check does) to
// exercise the sharded-lock fast path against concurrent interning.
func TestInternConcurrent(t *testing.T) {
	const (
		goroutines = 16
		names      = 200
	)
	// Every goroutine interns the same set of names in a different order
	// and records the ids it saw.
	got := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint32, names)
			for i := 0; i < names; i++ {
				// Shuffle the visit order per goroutine so shards are hit
				// in different sequences and first-intern races occur.
				j := (i*7 + g*13) % names
				ids[j] = Intern(fmt.Sprintf("conc-sym-%d", j))
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < names; i++ {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d saw id %d for name %d; goroutine 0 saw %d",
					g, got[g][i], i, got[0][i])
			}
		}
	}
	// Distinct names must have distinct ids.
	seen := make(map[uint32]bool, names)
	for i, id := range got[0] {
		if seen[id] {
			t.Fatalf("duplicate id %d (name %d)", id, i)
		}
		seen[id] = true
	}
}

// Interning is idempotent and NewSym reflects the interned id.
func TestInternStable(t *testing.T) {
	a := Intern("stable-name")
	b := Intern("stable-name")
	if a != b {
		t.Fatalf("Intern not idempotent: %d vs %d", a, b)
	}
	if got := NewSym("stable-name").SymID(); got != a {
		t.Fatalf("NewSym id %d != Intern id %d", got, a)
	}
}

// The empty symbol is interned at package init and always holds id 0, so
// symbols constructed before any user interning have a stable identity.
func TestInternEmptyIsZero(t *testing.T) {
	if id := Intern(""); id != 0 {
		t.Fatalf("Intern(\"\") = %d, want 0", id)
	}
	if a, b := NewSym(""), NewSym(""); !a.Equal(b) || a.SymID() != 0 {
		t.Fatalf("NewSym(\"\") unstable: id %d", a.SymID())
	}
}

// Code must be injective across ground terms of different kinds and
// values: symbols, strings, small ints (inline), and huge ints (interned
// decimal rendering).
func TestCodeInjective(t *testing.T) {
	terms := []Term{
		NewSym("x"),
		NewStr("x"), // same spelling, different kind
		NewSym("42"),
		NewInt(42),
		NewStr("42"),
		NewInt(-42),
		NewInt(0),
		NewSym(""),
		NewStr(""),
		NewInt(1 << 62),  // outside the inline 61-bit range
		NewInt(-1 << 62), // negative out-of-range
		NewInt((1 << 60)),
	}
	codes := make(map[uint64]Term, len(terms))
	for _, tm := range terms {
		c := tm.Code()
		if prev, ok := codes[c]; ok {
			t.Fatalf("code collision: %v and %v both map to %#x", prev, tm, c)
		}
		codes[c] = tm
	}
	// Equal terms must agree on their code.
	if NewInt(7).Code() != NewInt(7).Code() {
		t.Fatal("equal ints disagree on Code")
	}
	if NewSym("abc").Code() != NewSym("abc").Code() {
		t.Fatal("equal syms disagree on Code")
	}
}

// AppendKey must be deterministic and distinguish distinct rows.
func TestAppendKeyDistinct(t *testing.T) {
	rows := [][]Term{
		{NewSym("a"), NewSym("b")},
		{NewSym("b"), NewSym("a")},
		{NewSym("a"), NewStr("b")},
		{NewInt(1), NewInt(2)},
		{NewInt(12)},
	}
	seen := make(map[string]int)
	for i, row := range rows {
		k := string(AppendKey(nil, row))
		if j, ok := seen[k]; ok {
			t.Fatalf("rows %d and %d share key %q", i, j, k)
		}
		seen[k] = i
		if k2 := string(AppendKey(nil, row)); k2 != k {
			t.Fatalf("AppendKey not deterministic for row %d", i)
		}
	}
}
