package term

// Env is a binding environment: a mutable map from variable ids to terms,
// with a trail that supports O(1) marking and O(changes) undo. The engine
// uses a single Env per derivation and rewinds it on backtracking.
//
// Bindings may form var→var chains; Walk resolves them. Env performs no
// occurs check: the language is function-free, so cyclic bindings other than
// benign var→var self-unifications cannot arise.
type Env struct {
	bind  map[int64]Term
	trail []int64
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{bind: make(map[int64]Term)}
}

// Len returns the number of bound variables.
func (e *Env) Len() int { return len(e.bind) }

// Reset removes every binding and empties the trail, keeping allocated
// capacity so a pooled environment can be reused without reallocating.
func (e *Env) Reset() {
	clear(e.bind)
	e.trail = e.trail[:0]
}

// Walk resolves t through the current bindings until it reaches a constant
// or an unbound variable.
func (e *Env) Walk(t Term) Term {
	for t.IsVar() {
		u, ok := e.bind[t.VarID()]
		if !ok {
			return t
		}
		t = u
	}
	return t
}

// Mark returns a position in the trail; passing it to Undo removes every
// binding made since.
func (e *Env) Mark() int { return len(e.trail) }

// Undo rewinds the environment to a previous Mark.
func (e *Env) Undo(mark int) {
	for i := len(e.trail) - 1; i >= mark; i-- {
		delete(e.bind, e.trail[i])
	}
	e.trail = e.trail[:mark]
}

// bindVar records id ↦ t.
func (e *Env) bindVar(id int64, t Term) {
	e.bind[id] = t
	e.trail = append(e.trail, id)
}

// Bind makes variable v refer to t (after walking both). It reports whether
// binding succeeded; binding fails only when both sides walk to distinct
// constants.
func (e *Env) Bind(v, t Term) bool { return e.Unify(v, t) }

// Unify attempts to unify a and b under the current bindings, extending the
// environment on success. On failure the environment is left unchanged
// (unification of flat terms makes at most one binding).
func (e *Env) Unify(a, b Term) bool {
	a = e.Walk(a)
	b = e.Walk(b)
	if a.IsVar() {
		if b.IsVar() && a.VarID() == b.VarID() {
			return true
		}
		e.bindVar(a.VarID(), b)
		return true
	}
	if b.IsVar() {
		e.bindVar(b.VarID(), a)
		return true
	}
	return a.Equal(b)
}

// UnifyAtoms unifies two atoms. On failure every binding made during the
// attempt is undone.
func (e *Env) UnifyAtoms(a, b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	mark := e.Mark()
	for i := range a.Args {
		if !e.Unify(a.Args[i], b.Args[i]) {
			e.Undo(mark)
			return false
		}
	}
	return true
}

// UnifyArgs unifies the argument vector args against the ground tuple row
// (same length assumed). On failure the environment is rewound.
func (e *Env) UnifyArgs(args, row []Term) bool {
	mark := e.Mark()
	for i := range args {
		if !e.Unify(args[i], row[i]) {
			e.Undo(mark)
			return false
		}
	}
	return true
}

// Resolve returns t with all bindings applied (terms are flat, so this is a
// single Walk).
func (e *Env) Resolve(t Term) Term { return e.Walk(t) }

// ResolveAtom returns a copy of a with every argument walked.
func (e *Env) ResolveAtom(a Atom) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = e.Walk(t)
	}
	return out
}

// ResolveArgs returns a new slice with each term walked.
func (e *Env) ResolveArgs(args []Term) []Term {
	out := make([]Term, len(args))
	for i, t := range args {
		out[i] = e.Walk(t)
	}
	return out
}

// IsGroundAtom reports whether a resolves to a ground atom under e.
func (e *Env) IsGroundAtom(a Atom) bool {
	for _, t := range a.Args {
		if e.Walk(t).IsVar() {
			return false
		}
	}
	return true
}
