package term

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndAccessors(t *testing.T) {
	v := NewVar("X", 7)
	if !v.IsVar() || v.VarID() != 7 || v.VarName() != "X" {
		t.Fatalf("variable accessors broken: %v", v)
	}
	s := NewSym("mary")
	if s.Kind() != Sym || s.SymName() != "mary" || !s.IsConst() {
		t.Fatalf("symbol accessors broken: %v", s)
	}
	i := NewInt(-42)
	if i.Kind() != Int || i.IntVal() != -42 {
		t.Fatalf("int accessors broken: %v", i)
	}
	q := NewStr("a b")
	if q.Kind() != Str || q.StrVal() != "a b" {
		t.Fatalf("str accessors broken: %v", q)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{NewVar("X", 1), "X"},
		{NewVar("", 9), "_G9"},
		{NewSym("task1"), "task1"},
		{NewInt(12), "12"},
		{NewInt(-3), "-3"},
		{NewStr("hi"), `"hi"`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("VarID", func() { NewSym("a").VarID() })
	mustPanic("SymName", func() { NewInt(1).SymName() })
	mustPanic("IntVal", func() { NewSym("a").IntVal() })
	mustPanic("StrVal", func() { NewInt(1).StrVal() })
	mustPanic("KeyOf var", func() { KeyOf([]Term{NewVar("X", 0)}) })
}

func TestEqualIgnoresVarName(t *testing.T) {
	if !NewVar("X", 3).Equal(NewVar("Y", 3)) {
		t.Error("variables with same id must be equal")
	}
	if NewVar("X", 3).Equal(NewVar("X", 4)) {
		t.Error("variables with different ids must differ")
	}
	if NewSym("1").Equal(NewInt(1)) {
		t.Error("symbol \"1\" must differ from integer 1")
	}
	if NewStr("a").Equal(NewSym("a")) {
		t.Error("string \"a\" must differ from symbol a")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	ts := []Term{
		NewVar("A", 0), NewVar("B", 5),
		NewSym("a"), NewSym("b"),
		NewInt(-1), NewInt(3),
		NewStr("a"), NewStr("z"),
	}
	for i, a := range ts {
		for j, b := range ts {
			c, d := a.Compare(b), b.Compare(a)
			if c != -d {
				t.Errorf("Compare not antisymmetric for %v, %v", a, b)
			}
			if (i == j) != (c == 0) {
				t.Errorf("Compare(%v,%v)=%d unexpected", a, b, c)
			}
		}
	}
}

// Property: KeyOf is injective on ground tuples (distinct tuples ⇒ distinct
// keys), including near-collisions like [ab, c] vs [a, bc].
func TestKeyOfInjective(t *testing.T) {
	a := KeyOf([]Term{NewSym("ab"), NewSym("c")})
	b := KeyOf([]Term{NewSym("a"), NewSym("bc")})
	if a == b {
		t.Fatal("KeyOf collided on [ab,c] vs [a,bc]")
	}
	c := KeyOf([]Term{NewSym("1")})
	d := KeyOf([]Term{NewInt(1)})
	e := KeyOf([]Term{NewStr("1")})
	if c == d || c == e || d == e {
		t.Fatal("KeyOf collided across kinds")
	}
}

// randGround produces a random ground term for property tests.
func randGround(r *rand.Rand) Term {
	switch r.Intn(3) {
	case 0:
		letters := []byte("abcxyz:si")
		n := r.Intn(4)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = letters[r.Intn(len(letters))]
		}
		return NewSym(string(buf))
	case 1:
		return NewInt(r.Int63n(200) - 100)
	default:
		return NewStr(string(rune('a' + r.Intn(26))))
	}
}

func TestKeyOfInjectiveProperty(t *testing.T) {
	f := func(seed int64, n1, n2 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		t1 := make([]Term, int(n1)%5)
		t2 := make([]Term, int(n2)%5)
		for i := range t1 {
			t1[i] = randGround(r)
		}
		for i := range t2 {
			t2[i] = randGround(r)
		}
		same := len(t1) == len(t2)
		if same {
			for i := range t1 {
				if !t1[i].Equal(t2[i]) {
					same = false
					break
				}
			}
		}
		return same == (KeyOf(t1) == KeyOf(t2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("tel", NewSym("mary"), NewInt(1234))
	if a.Arity() != 2 || !a.IsGround() {
		t.Fatalf("atom basics broken: %v", a)
	}
	if got := a.String(); got != "tel(mary, 1234)" {
		t.Errorf("String = %q", got)
	}
	if got := NewAtom("go").String(); got != "go" {
		t.Errorf("nullary String = %q", got)
	}
	b := NewAtom("tel", NewSym("mary"), NewVar("X", 0))
	if b.IsGround() {
		t.Error("atom with variable reported ground")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("atom equality broken")
	}
}

func TestAtomCompare(t *testing.T) {
	a := NewAtom("p", NewInt(1))
	b := NewAtom("p", NewInt(2))
	c := NewAtom("q")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("argument ordering broken")
	}
	if a.Compare(c) >= 0 {
		t.Error("predicate ordering broken")
	}
	d := NewAtom("p")
	if d.Compare(a) >= 0 {
		t.Error("arity ordering broken")
	}
}

func TestAtomVars(t *testing.T) {
	x, y := NewVar("X", 0), NewVar("Y", 1)
	a := NewAtom("p", x, NewSym("c"), y, x)
	vs := a.Vars(nil)
	want := []Term{x, y}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("Vars = %v, want %v", vs, want)
	}
}

func TestEnvUnifyBasics(t *testing.T) {
	e := NewEnv()
	x, y := NewVar("X", 0), NewVar("Y", 1)
	if !e.Unify(x, NewSym("a")) {
		t.Fatal("var-const unify failed")
	}
	if got := e.Walk(x); !got.Equal(NewSym("a")) {
		t.Fatalf("Walk(X) = %v", got)
	}
	if !e.Unify(y, x) {
		t.Fatal("var-var unify failed")
	}
	if got := e.Walk(y); !got.Equal(NewSym("a")) {
		t.Fatalf("Walk(Y) = %v, want a", got)
	}
	if e.Unify(NewSym("a"), NewSym("b")) {
		t.Fatal("distinct constants unified")
	}
	if !e.Unify(NewSym("a"), NewSym("a")) {
		t.Fatal("identical constants failed to unify")
	}
	if !e.Unify(x, x) {
		t.Fatal("self-unification failed")
	}
}

func TestEnvUndo(t *testing.T) {
	e := NewEnv()
	x, y, z := NewVar("X", 0), NewVar("Y", 1), NewVar("Z", 2)
	e.Unify(x, NewSym("a"))
	mark := e.Mark()
	e.Unify(y, NewSym("b"))
	e.Unify(z, y)
	if e.Len() != 3 {
		t.Fatalf("Len = %d, want 3", e.Len())
	}
	e.Undo(mark)
	if e.Len() != 1 {
		t.Fatalf("after Undo Len = %d, want 1", e.Len())
	}
	if !e.Walk(y).IsVar() || !e.Walk(z).IsVar() {
		t.Fatal("Undo did not unbind Y, Z")
	}
	if !e.Walk(x).Equal(NewSym("a")) {
		t.Fatal("Undo removed binding made before mark")
	}
}

func TestUnifyAtomsRewindsOnFailure(t *testing.T) {
	e := NewEnv()
	x := NewVar("X", 0)
	a := NewAtom("p", x, NewSym("b"))
	b := NewAtom("p", NewSym("a"), NewSym("c"))
	if e.UnifyAtoms(a, b) {
		t.Fatal("atoms should not unify")
	}
	if e.Len() != 0 {
		t.Fatal("failed UnifyAtoms left bindings behind")
	}
	if e.UnifyAtoms(a, NewAtom("q", NewSym("a"), NewSym("b"))) {
		t.Fatal("different predicates unified")
	}
	if e.UnifyAtoms(a, NewAtom("p", NewSym("a"))) {
		t.Fatal("different arities unified")
	}
	if !e.UnifyAtoms(a, NewAtom("p", NewSym("a"), NewSym("b"))) {
		t.Fatal("compatible atoms failed to unify")
	}
	if !e.Walk(x).Equal(NewSym("a")) {
		t.Fatal("binding not recorded")
	}
}

func TestResolveHelpers(t *testing.T) {
	e := NewEnv()
	x, y := NewVar("X", 0), NewVar("Y", 1)
	e.Unify(x, NewInt(3))
	a := NewAtom("p", x, y)
	ra := e.ResolveAtom(a)
	if !ra.Args[0].Equal(NewInt(3)) || !ra.Args[1].Equal(y) {
		t.Fatalf("ResolveAtom = %v", ra)
	}
	if e.IsGroundAtom(a) {
		t.Fatal("atom with unbound var reported ground")
	}
	e.Unify(y, NewSym("k"))
	if !e.IsGroundAtom(a) {
		t.Fatal("fully bound atom reported non-ground")
	}
	rs := e.ResolveArgs([]Term{x, y})
	if !rs[0].Equal(NewInt(3)) || !rs[1].Equal(NewSym("k")) {
		t.Fatalf("ResolveArgs = %v", rs)
	}
}

// Property: Unify is symmetric in outcome, and a successful unification makes
// both sides walk to the same term.
func TestUnifySymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Term {
			if r.Intn(2) == 0 {
				return NewVar("V", int64(r.Intn(4)))
			}
			return randGround(r)
		}
		a, b := mk(), mk()
		e1, e2 := NewEnv(), NewEnv()
		ok1 := e1.Unify(a, b)
		ok2 := e2.Unify(b, a)
		if ok1 != ok2 {
			return false
		}
		if ok1 {
			if !e1.Walk(a).Equal(e1.Walk(b)) {
				return false
			}
			if !e2.Walk(a).Equal(e2.Walk(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRenamer(t *testing.T) {
	r := NewRenamer(100)
	v1 := r.Fresh("X")
	v2 := r.Fresh("X")
	if v1.Equal(v2) {
		t.Fatal("Fresh returned identical variables")
	}
	if v1.VarID() != 100 || v2.VarID() != 101 {
		t.Fatalf("ids = %d, %d", v1.VarID(), v2.VarID())
	}
	if r.High() != 102 {
		t.Fatalf("High = %d", r.High())
	}
}

func TestRenamingConsistent(t *testing.T) {
	// Fresh ids must be seeded above the source program's ids (here 0 and 1),
	// as engines do with the parser's high-water mark.
	r := NewRenamer(10)
	rn := r.NewRenaming()
	x, y := NewVar("X", 0), NewVar("Y", 1)
	a := NewAtom("p", x, y, x, NewSym("c"))
	ra := rn.Atom(a)
	if !ra.Args[0].Equal(ra.Args[2]) {
		t.Fatal("same source var renamed to different fresh vars")
	}
	if ra.Args[0].Equal(ra.Args[1]) {
		t.Fatal("different source vars renamed to same fresh var")
	}
	if ra.Args[0].Equal(x) {
		t.Fatal("renaming returned original variable")
	}
	if !ra.Args[3].Equal(NewSym("c")) {
		t.Fatal("constant changed by renaming")
	}
	// A second renaming must produce different fresh variables.
	rn2 := r.NewRenaming()
	rb := rn2.Atom(a)
	if rb.Args[0].Equal(ra.Args[0]) {
		t.Fatal("two renamings shared a fresh variable")
	}
}

func TestRenamerConcurrent(t *testing.T) {
	r := NewRenamer(0)
	const goroutines, per = 8, 200
	ids := make(chan int64, goroutines*per)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				ids <- r.Fresh("V").VarID()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(ids)
	seen := make(map[int64]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate fresh id %d under concurrency", id)
		}
		seen[id] = true
	}
	if len(seen) != goroutines*per {
		t.Fatalf("allocated %d ids, want %d", len(seen), goroutines*per)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Var: "var", Sym: "sym", Int: "int", Str: "str"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestEnvBindAlias(t *testing.T) {
	e := NewEnv()
	x := NewVar("X", 0)
	if !e.Bind(x, NewInt(5)) {
		t.Fatal("Bind failed")
	}
	if !e.Walk(x).Equal(NewInt(5)) {
		t.Fatal("Bind did not bind")
	}
	if e.Bind(NewInt(1), NewInt(2)) {
		t.Fatal("Bind of distinct constants succeeded")
	}
}

func TestResolveSingle(t *testing.T) {
	e := NewEnv()
	x := NewVar("X", 0)
	e.Unify(x, NewSym("v"))
	if !e.Resolve(x).Equal(NewSym("v")) {
		t.Fatal("Resolve wrong")
	}
}
