package term

import "sync/atomic"

// Renamer allocates fresh variable ids. A single Renamer is shared by a
// derivation (or a whole engine); it is safe for concurrent use.
type Renamer struct {
	next atomic.Int64
}

// NewRenamer returns a Renamer whose first fresh id is start. Parsers
// typically number source variables from 0 upward, so engines seed renamers
// with a large offset (or with the parser's high-water mark).
func NewRenamer(start int64) *Renamer {
	r := &Renamer{}
	r.next.Store(start)
	return r
}

// Fresh returns a brand-new variable carrying the given display name.
func (r *Renamer) Fresh(name string) Term {
	return NewVar(name, r.next.Add(1)-1)
}

// High returns the next id that would be allocated.
func (r *Renamer) High() int64 { return r.next.Load() }

// Renaming maps the variables of one rule instance to fresh variables,
// so that distinct rule activations never share variables.
type Renaming struct {
	r *Renamer
	m map[int64]Term
}

// NewRenaming returns an empty renaming drawing fresh ids from r.
func (r *Renamer) NewRenaming() *Renaming {
	return &Renaming{r: r, m: make(map[int64]Term)}
}

// Reset empties the renaming so it can be reused for the next rule
// activation. Callers pool one Renaming per derivation instead of
// allocating a map per candidate clause; see the engine's call step.
func (rn *Renaming) Reset() { clear(rn.m) }

// Term returns the renamed version of t (constants are returned unchanged;
// each distinct variable is mapped to one fresh variable).
func (rn *Renaming) Term(t Term) Term {
	if !t.IsVar() {
		return t
	}
	if u, ok := rn.m[t.VarID()]; ok {
		return u
	}
	u := rn.r.Fresh(t.VarName())
	rn.m[t.VarID()] = u
	return u
}

// Atom returns a with every argument renamed.
func (rn *Renaming) Atom(a Atom) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = rn.Term(t)
	}
	return out
}
