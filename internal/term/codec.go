package term

import (
	"fmt"
	"strconv"
	"strings"
)

// DecodeKey parses a canonical tuple key produced by KeyOf back into its
// ground terms. KeyOf/DecodeKey form a bijection on ground tuples, which
// the database's persistence layer relies on.
func DecodeKey(key string) ([]Term, error) {
	var out []Term
	s := key
	for len(s) > 0 {
		tag := s[0]
		s = s[1:]
		switch tag {
		case 'i':
			// Integer: digits (with optional leading '-') up to the next
			// tag byte. Integers are rendered by strconv.FormatInt, so the
			// token ends where a non-digit (non-leading-'-') begins.
			j := 0
			if j < len(s) && s[j] == '-' {
				j++
			}
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j == 0 || (j == 1 && s[0] == '-') {
				return nil, fmt.Errorf("term: bad integer in key at %q", s)
			}
			v, err := strconv.ParseInt(s[:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("term: bad integer in key: %w", err)
			}
			out = append(out, NewInt(v))
			s = s[j:]
		case 's', 'q':
			colon := strings.IndexByte(s, ':')
			if colon < 0 {
				return nil, fmt.Errorf("term: missing length in key at %q", s)
			}
			n, err := strconv.Atoi(s[:colon])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("term: bad length in key at %q", s)
			}
			rest := s[colon+1:]
			if len(rest) < n {
				return nil, fmt.Errorf("term: truncated key payload (want %d bytes, have %d)", n, len(rest))
			}
			if tag == 's' {
				out = append(out, NewSym(rest[:n]))
			} else {
				out = append(out, NewStr(rest[:n]))
			}
			s = rest[n:]
		default:
			return nil, fmt.Errorf("term: unknown key tag %q", tag)
		}
	}
	return out, nil
}
