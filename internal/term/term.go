// Package term implements the first-order, function-free term language of
// Transaction Datalog: constants (symbols, integers, strings) and variables,
// together with binding environments, unification, and fresh renaming.
//
// Terms are small immutable values and are comparable with ==, so they can be
// used directly as map keys. Variables are identified by an integer id; the
// name is kept only for display.
package term

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the variants of a Term.
type Kind uint8

// Term kinds.
const (
	Var Kind = iota // logic variable
	Sym             // symbolic constant, e.g. mary, task1
	Int             // integer constant
	Str             // quoted string constant
)

func (k Kind) String() string {
	switch k {
	case Var:
		return "var"
	case Sym:
		return "sym"
	case Int:
		return "int"
	case Str:
		return "str"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Term is a first-order term without function symbols. The zero value is the
// symbolic constant with empty name, which is never produced by the parser;
// code may use it as a sentinel.
type Term struct {
	kind Kind
	num  int64  // Var: id; Int: value; Sym/Str: interned id of str
	str  string // Var: display name; Sym: name; Str: contents
}

// NewVar returns a variable term with the given display name and id.
func NewVar(name string, id int64) Term { return Term{kind: Var, num: id, str: name} }

// NewSym returns a symbolic constant. The name is interned (see Intern), so
// equality of symbols is an integer comparison.
func NewSym(name string) Term { return Term{kind: Sym, num: int64(Intern(name)), str: name} }

// NewInt returns an integer constant.
func NewInt(v int64) Term { return Term{kind: Int, num: v} }

// NewStr returns a string constant. Like symbols, string contents are
// interned so that stored tuples can be keyed by fixed-size codes.
func NewStr(s string) Term { return Term{kind: Str, num: int64(Intern(s)), str: s} }

// Kind reports the variant of t.
func (t Term) Kind() Kind { return t.kind }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.kind == Var }

// IsConst reports whether t is a constant (symbol, int, or string).
func (t Term) IsConst() bool { return t.kind != Var }

// VarID returns the variable id; it panics if t is not a variable.
func (t Term) VarID() int64 {
	if t.kind != Var {
		panic("term: VarID on non-variable " + t.String())
	}
	return t.num
}

// VarName returns the display name of a variable; panics on non-variables.
func (t Term) VarName() string {
	if t.kind != Var {
		panic("term: VarName on non-variable " + t.String())
	}
	return t.str
}

// SymName returns the name of a symbolic constant; panics otherwise.
func (t Term) SymName() string {
	if t.kind != Sym {
		panic("term: SymName on non-symbol " + t.String())
	}
	return t.str
}

// IntVal returns the value of an integer constant; panics otherwise.
func (t Term) IntVal() int64 {
	if t.kind != Int {
		panic("term: IntVal on non-integer " + t.String())
	}
	return t.num
}

// StrVal returns the contents of a string constant; panics otherwise.
func (t Term) StrVal() string {
	if t.kind != Str {
		panic("term: StrVal on non-string " + t.String())
	}
	return t.str
}

// String renders t in concrete TD syntax.
func (t Term) String() string {
	switch t.kind {
	case Var:
		if t.str != "" {
			return t.str
		}
		return "_G" + strconv.FormatInt(t.num, 10)
	case Sym:
		return t.str
	case Int:
		return strconv.FormatInt(t.num, 10)
	case Str:
		return strconv.Quote(t.str)
	default:
		return fmt.Sprintf("?term(%d)", t.kind)
	}
}

// Equal reports whether two terms are identical. Variables are equal iff
// their ids are equal; display names are ignored. Symbols and strings
// compare by interned id — an integer comparison, never a string walk.
func (t Term) Equal(u Term) bool {
	return t.kind == u.kind && t.num == u.num
}

// SymID returns the interned id of a symbolic constant; panics otherwise.
func (t Term) SymID() uint32 {
	if t.kind != Sym {
		panic("term: SymID on non-symbol " + t.String())
	}
	return uint32(t.num)
}

// Compare orders terms: by kind first (Var < Sym < Int < Str), then by value.
// It provides the deterministic ordering used when printing databases.
func (t Term) Compare(u Term) int {
	if t.kind != u.kind {
		if t.kind < u.kind {
			return -1
		}
		return 1
	}
	switch t.kind {
	case Var, Int:
		switch {
		case t.num < u.num:
			return -1
		case t.num > u.num:
			return 1
		}
		return 0
	default:
		return strings.Compare(t.str, u.str)
	}
}

// key appends a canonical encoding of a ground term to b. Used to build
// tuple keys for database storage; panics on variables because only ground
// tuples may be stored.
func (t Term) key(b *strings.Builder) {
	switch t.kind {
	case Sym:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(t.str)))
		b.WriteByte(':')
		b.WriteString(t.str)
	case Int:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(t.num, 10))
	case Str:
		b.WriteByte('q')
		b.WriteString(strconv.Itoa(len(t.str)))
		b.WriteByte(':')
		b.WriteString(t.str)
	default:
		panic("term: key of non-ground term " + t.String())
	}
}

// KeyOf returns a canonical string encoding of a sequence of ground terms.
// Distinct tuples always map to distinct keys.
func KeyOf(ts []Term) string {
	var b strings.Builder
	for _, t := range ts {
		t.key(&b)
	}
	return b.String()
}
