package term

import (
	"sync"
	"sync/atomic"
)

// Symbol interning. Every symbolic constant (and every string constant)
// carries a dense uint32 id assigned by a process-global interner; the name
// is kept on the Term only for display and ordering. Interning makes
// equality an integer comparison and lets the database key tuples by
// fixed-size codes (see Code and AppendKey) instead of built strings, so
// the hot query/insert/delete path allocates nothing.
//
// The interner is sharded and RWMutex-guarded: lookups of known names (the
// steady state of a long-running server, where the parser interns at parse
// time and the engine only ever re-reads) take a shard read-lock; only the
// first occurrence of a name takes a write-lock. It is safe for concurrent
// use from any number of sessions.
//
// Ids grow monotonically and are never reclaimed: a server that parses
// unboundedly many distinct symbols grows its intern table accordingly.
// That is the standard trade of interned-symbol engines; docs/PERF.md
// discusses it.

const internShardCount = 64 // power of two

type internShard struct {
	mu  sync.RWMutex
	ids map[string]uint32
}

var internTable struct {
	next   atomic.Uint32
	shards [internShardCount]internShard
}

func init() {
	for i := range internTable.shards {
		internTable.shards[i].ids = make(map[string]uint32)
	}
	// Reserve id 0 for the empty name so symbols interned before any user
	// code runs have a stable, predictable identity.
	if id := Intern(""); id != 0 {
		panic("term: empty symbol did not intern to id 0")
	}
}

// internHash is FNV-1a over s, used only to pick a shard.
func internHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Intern returns the dense id of name, assigning one on first use.
// Equal names always yield equal ids within a process.
func Intern(name string) uint32 {
	sh := &internTable.shards[internHash(name)&(internShardCount-1)]
	sh.mu.RLock()
	id, ok := sh.ids[name]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	return internSlow(sh, name)
}

// internBytes is Intern for a byte-slice name. On the hit path (the steady
// state) the map lookup converts b without allocating.
func internBytes(b []byte) uint32 {
	sh := &internTable.shards[internHash(string(b))&(internShardCount-1)]
	sh.mu.RLock()
	id, ok := sh.ids[string(b)]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	return internSlow(sh, string(b))
}

func internSlow(sh *internShard, name string) uint32 {
	sh.mu.Lock()
	id, ok := sh.ids[name]
	if !ok {
		id = internTable.next.Add(1) - 1
		sh.ids[name] = id
	}
	sh.mu.Unlock()
	return id
}

// InternedCount returns the number of distinct names interned so far
// (metrics and tests).
func InternedCount() int { return int(internTable.next.Load()) }

// Ground-term codes. Code maps every ground term to a uint64 such that two
// ground terms are equal iff their codes are equal (injective within a
// process). The low 3 bits tag the kind; the payload is the interned id
// (symbols, strings), the value itself (integers that fit 61 bits), or the
// interned decimal rendering (the rare out-of-range integers).
const (
	codeTagSym uint64 = 1
	codeTagStr uint64 = 2
	codeTagInt uint64 = 3
	codeTagBig uint64 = 4
)

// Code returns the canonical uint64 code of a ground term. It panics on
// variables: only ground terms are stored or dispatched on.
func (t Term) Code() uint64 {
	switch t.kind {
	case Sym:
		return uint64(uint32(t.num))<<3 | codeTagSym
	case Str:
		return uint64(uint32(t.num))<<3 | codeTagStr
	case Int:
		if (t.num<<3)>>3 == t.num {
			return uint64(t.num)<<3 | codeTagInt
		}
		var buf [24]byte
		return uint64(appendIntID(buf[:0], t.num))<<3 | codeTagBig
	default:
		panic("term: Code of non-ground term " + t.String())
	}
}

// appendIntID interns the decimal rendering of v using scratch buf.
func appendIntID(buf []byte, v int64) uint32 {
	// Minimal AppendInt: avoid importing strconv here for clarity of the
	// zero-alloc contract (the scratch buffer stays on the caller's stack).
	neg := v < 0
	u := uint64(v)
	if neg {
		u = -u
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	if neg {
		i--
		tmp[i] = '-'
	}
	buf = append(buf, tmp[i:]...)
	return internBytes(buf)
}

// AppendKey appends the fixed 8-byte little-endian code of each ground term
// to dst and returns the extended slice. The result is an injective binary
// key for the tuple: the in-memory analogue of KeyOf, built without any
// per-term string work. Distinct tuples of the same arity always produce
// distinct keys. Panics on variables.
func AppendKey(dst []byte, ts []Term) []byte {
	for _, t := range ts {
		c := t.Code()
		dst = append(dst,
			byte(c), byte(c>>8), byte(c>>16), byte(c>>24),
			byte(c>>32), byte(c>>40), byte(c>>48), byte(c>>56))
	}
	return dst
}

// AppendCode appends the 8-byte code c to dst (one tuple-key component).
func AppendCode(dst []byte, c uint64) []byte {
	return append(dst,
		byte(c), byte(c>>8), byte(c>>16), byte(c>>24),
		byte(c>>32), byte(c>>40), byte(c>>48), byte(c>>56))
}
