package term

import "strings"

// Atom is a predicate symbol applied to a list of terms, e.g. tel(mary, X).
// Atoms are used both as database tuples (when ground, over base predicates)
// and as goal literals.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether no argument is a variable.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// String renders the atom in concrete syntax.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns the canonical tuple key of a ground atom's arguments.
// It panics if the atom is not ground.
func (a Atom) Key() string { return KeyOf(a.Args) }

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Compare orders atoms by predicate, then arity, then argument order.
func (a Atom) Compare(b Atom) int {
	if c := strings.Compare(a.Pred, b.Pred); c != 0 {
		return c
	}
	if len(a.Args) != len(b.Args) {
		if len(a.Args) < len(b.Args) {
			return -1
		}
		return 1
	}
	for i := range a.Args {
		if c := a.Args[i].Compare(b.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Vars appends the distinct variables of a to dst in first-occurrence order.
func (a Atom) Vars(dst []Term) []Term {
	for _, t := range a.Args {
		if !t.IsVar() {
			continue
		}
		seen := false
		for _, v := range dst {
			if v.Equal(t) {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, t)
		}
	}
	return dst
}
