package analysis

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// FuzzPlan feeds arbitrary programs to the planner and checks the
// structural legality of every reorder decision it reports: each order is
// a permutation of the body, barriers (updates, '|' compositions, iso
// bodies, hazardous calls) never move, and non-query goals keep their
// textual relative order. Panics fail the fuzz run by themselves.
func FuzzPlan(f *testing.F) {
	f.Add("p(a). q(X) :- p(X).")
	f.Add("hot(W) :- reading(R, V), V > 900, sample_reading(W, R). ?- hot(s1).")
	f.Add("w(X) :- p(X, Y), p(a, b), ins.q(X), p(X, Z). ?- w(a).")
	f.Add("c(X) :- p(X, Y), (q(X) | q(a)), p(a, b).")
	f.Add("spawn(X) :- step(X) | spawn(X). loop(X) :- s(X), loop(X).")
	f.Add("h(X) :- iso(p(X)), q(X), empty.r, X > 1, eq(X, Y), plus(X, X, Z).")
	f.Add("% tdvet:ignore plan\nq(X) :- p(X, Y), p(a, b).")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		rep := Plan(prog)
		if rep.SchemaVersion != PlanSchemaVersion {
			t.Fatalf("schema version %d", rep.SchemaVersion)
		}
		// Re-derive the goal classes the reorderer saw.
		p := &planner{vetter: newVetter(prog)}
		p.certify()
		for _, pp := range rep.Predicates {
			for _, rp := range pp.Rules {
				for _, op := range rp.Orders {
					checkOrder(t, p, pp.Pred, rp, op, prog)
				}
			}
		}
	})
}

// checkOrder validates one reported reorder against the legality rules.
func checkOrder(t *testing.T, p *planner, pred string, rp RulePlan, op OrderPlan, prog *ast.Program) {
	t.Helper()
	// Locate the rule: rp.Rule indexes the predicate's rules in source
	// order.
	var rules []ast.Rule
	for _, k := range p.nodes {
		if k.String() == pred {
			rules = prog.RulesFor(k.pred, k.arity)
			break
		}
	}
	if rp.Rule >= len(rules) {
		t.Fatalf("%s rule %d out of range", pred, rp.Rule)
	}
	seq, ok := rules[rp.Rule].Body.(*ast.Seq)
	if !ok {
		t.Fatalf("%s rule %d: reorder reported for a non-Seq body", pred, rp.Rule)
	}
	n := len(seq.Goals)
	if len(op.Order) != n {
		t.Fatalf("%s rule %d: order length %d, body length %d", pred, rp.Rule, len(op.Order), n)
	}
	seen := make([]bool, n)
	for _, idx := range op.Order {
		if idx < 0 || idx >= n || seen[idx] {
			t.Fatalf("%s rule %d: order %v is not a permutation", pred, rp.Rule, op.Order)
		}
		seen[idx] = true
	}
	classes := make([]litClass, n)
	for i, g := range seq.Goals {
		classes[i] = p.classify(g)
	}
	var prevOrdered = -1
	for k, idx := range op.Order {
		if classes[idx] == classBarrier && idx != k {
			t.Fatalf("%s rule %d: barrier at textual %d moved to %d in %v", pred, rp.Rule, idx, k, op.Order)
		}
		if isOrderedClass(classes[idx]) {
			if idx < prevOrdered {
				t.Fatalf("%s rule %d: non-query goals swapped (%d after %d) in %v", pred, rp.Rule, idx, prevOrdered, op.Order)
			}
			prevOrdered = idx
		}
	}
	// No goal crosses a barrier: positions between consecutive barriers
	// must be filled from the same textual window.
	lo := 0
	for i := 0; i <= n; i++ {
		if i < n && classes[i] != classBarrier {
			continue
		}
		for k := lo; k < i; k++ {
			if op.Order[k] < lo || op.Order[k] >= i {
				t.Fatalf("%s rule %d: goal %d escaped its run [%d,%d) in %v", pred, rp.Rule, op.Order[k], lo, i, op.Order)
			}
		}
		lo = i + 1
	}
}
