package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// renderPlan flattens a PlanReport into the stable text compared by the
// golden fixtures: one line per predicate certificate, indented reorder
// decisions, then the totals and surviving diagnostics.
func renderPlan(rep *PlanReport) string {
	var b strings.Builder
	flag := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, pp := range rep.Predicates {
		fmt.Fprintf(&b, "pred %s update_free=%s hypothetical_free=%s recursion=%s tabling=%s",
			pp.Pred, flag(pp.UpdateFree), flag(pp.HypotheticalFree), pp.Recursion, flag(pp.TablingEligible))
		if len(pp.Adornments) > 0 {
			fmt.Fprintf(&b, " adorn=%v", pp.Adornments)
		}
		if len(pp.Support) > 0 {
			fmt.Fprintf(&b, " support=%v", pp.Support)
		}
		b.WriteByte('\n')
		for _, rp := range pp.Rules {
			for _, op := range rp.Orders {
				fmt.Fprintf(&b, "  rule %d line %d order%s=%v\n", rp.Rule, rp.Line, adornLabel(op.Adornment), op.Order)
			}
		}
	}
	fmt.Fprintf(&b, "reorders: %d\n", rep.Reorders)
	for _, d := range rep.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	if rep.Suppressed > 0 {
		fmt.Fprintf(&b, "suppressed: %d\n", rep.Suppressed)
	}
	return b.String()
}

// TestPlanGolden runs every testdata/plan/*.td fixture through PlanSource
// and compares the rendered report against the paired .want file.
// Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/analysis -run TestPlanGolden
func TestPlanGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "plan", "*.td"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no plan fixtures in testdata/plan/")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".td")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := PlanSource(string(src))
			if err != nil {
				t.Fatalf("PlanSource(%s): %v", file, err)
			}
			got := renderPlan(rep)

			wantFile := strings.TrimSuffix(file, ".td") + ".want"
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(wantFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(wantFile)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan mismatch for %s\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}
