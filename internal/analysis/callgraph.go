package analysis

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/term"
)

// predKey identifies a predicate by name and arity; arity is part of
// predicate identity throughout the engine.
type predKey struct {
	pred  string
	arity int
}

func (k predKey) String() string { return fmt.Sprintf("%s/%d", k.pred, k.arity) }

func litKey(a term.Atom) predKey { return predKey{pred: a.Pred, arity: len(a.Args)} }

// vetter carries the shared state of one Vet run: predicate tables, the
// call graph of derived predicates with its SCC decomposition (the same
// construction internal/fragments uses, rebuilt here so diagnostics can
// anchor to literal positions), and the accumulating diagnostics.
type vetter struct {
	prog  *ast.Program
	diags []Diagnostic

	derived  map[predKey]bool // defined by at least one rule
	hasFacts map[predKey]bool // appears as a fact
	inserted map[predKey]bool // target of some ins.
	deleted  map[predKey]bool // target of some del.

	nodes   []predKey       // derived predicates, in first-rule order
	nodeIdx map[predKey]int // predKey -> index into nodes
	edges   map[int][]int   // call edges between derived predicates
	sccID   []int           // Tarjan SCC id per node
	inCycle map[int]bool    // node sits on a call-graph cycle
}

func newVetter(prog *ast.Program) *vetter {
	v := &vetter{
		prog:     prog,
		derived:  make(map[predKey]bool),
		hasFacts: make(map[predKey]bool),
		inserted: make(map[predKey]bool),
		deleted:  make(map[predKey]bool),
		nodeIdx:  make(map[predKey]int),
		edges:    make(map[int][]int),
	}
	for _, r := range prog.Rules {
		k := litKey(r.Head)
		v.derived[k] = true
		if _, ok := v.nodeIdx[k]; !ok {
			v.nodeIdx[k] = len(v.nodes)
			v.nodes = append(v.nodes, k)
		}
	}
	for _, f := range prog.Facts {
		v.hasFacts[litKey(f)] = true
	}
	scan := func(g ast.Goal, from int) {
		ast.Walk(g, func(sub ast.Goal) bool {
			l, ok := sub.(*ast.Lit)
			if !ok {
				return true
			}
			switch l.Op {
			case ast.OpIns:
				v.inserted[litKey(l.Atom)] = true
			case ast.OpDel:
				v.deleted[litKey(l.Atom)] = true
			case ast.OpCall:
				if to, ok := v.nodeIdx[litKey(l.Atom)]; ok && from >= 0 {
					v.edges[from] = append(v.edges[from], to)
				}
			}
			return true
		})
	}
	for _, r := range prog.Rules {
		scan(r.Body, v.nodeIdx[litKey(r.Head)])
	}
	for _, q := range prog.Queries {
		scan(q, -1)
	}
	v.findCycles()
	return v
}

// diag appends a diagnostic, clamping the position so every diagnostic
// carries a valid 1-based location even for programmatically built
// programs whose nodes have the zero Pos.
func (v *vetter) diag(pos ast.Pos, sev Severity, id, msg, cite string) {
	line, col := pos.Line, pos.Col
	if line < 1 {
		line, col = 1, 1
	}
	if col < 1 {
		col = 1
	}
	v.diags = append(v.diags, Diagnostic{Line: line, Col: col, Sev: sev, ID: id, Msg: msg, Cite: cite})
}

// findCycles runs Tarjan's SCC algorithm over the call graph and marks the
// nodes on a cycle: members of an SCC of size > 1, or self-loops.
func (v *vetter) findCycles() {
	n := len(v.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	v.sccID = make([]int, n)
	v.inCycle = make(map[int]bool)
	for i := range index {
		index[i] = -1
		v.sccID[i] = -1
	}
	var stack []int
	next, nscc := 0, 0

	var strongconnect func(x int)
	strongconnect = func(x int) {
		index[x] = next
		low[x] = next
		next++
		stack = append(stack, x)
		onStack[x] = true
		for _, w := range v.edges[x] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[x] {
					low[x] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[x] {
					low[x] = index[w]
				}
			}
		}
		if low[x] == index[x] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				v.sccID[w] = nscc
				if w == x {
					break
				}
			}
			nscc++
			if len(comp) > 1 {
				for _, w := range comp {
					v.inCycle[w] = true
				}
			} else {
				for _, w := range v.edges[comp[0]] {
					if w == comp[0] {
						v.inCycle[comp[0]] = true
					}
				}
			}
		}
	}
	for x := 0; x < n; x++ {
		if index[x] == -1 {
			strongconnect(x)
		}
	}
}

// isRecursiveCall reports whether l, occurring in a rule whose head is
// node from, closes a recursion cycle: the callee is on a cycle in the
// same SCC as the caller. Calls into a recursive predicate from outside
// its SCC are ordinary subroutine calls.
func (v *vetter) isRecursiveCall(from int, l *ast.Lit) bool {
	if l.Op != ast.OpCall || from < 0 {
		return false
	}
	idx, ok := v.nodeIdx[litKey(l.Atom)]
	if !ok || !v.inCycle[idx] {
		return false
	}
	return v.sccID[from] == v.sccID[idx]
}
