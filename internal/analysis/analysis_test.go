package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/fragments"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/term"
)

// findDiags returns the diagnostics with the given lint ID.
func findDiags(rep *Report, id string) []Diagnostic {
	var out []Diagnostic
	for _, d := range rep.Diags {
		if d.ID == id {
			out = append(out, d)
		}
	}
	return out
}

// TestUpdateDerived builds a program programmatically (the parser's own
// Analyze hard-rejects updates on derived predicates, so this pass can only
// fire on hand-built programs) and checks both the derived and the builtin
// variant of the lint.
func TestUpdateDerived(t *testing.T) {
	prog := &ast.Program{
		Rules: []ast.Rule{
			{Head: term.NewAtom("p"), Body: ast.True{}},
			{Head: term.NewAtom("q"), Body: ast.NewSeq(
				&ast.Lit{Op: ast.OpIns, Atom: term.NewAtom("p")},
				&ast.Lit{Op: ast.OpDel, Atom: term.NewAtom("add", term.NewInt(1), term.NewInt(2), term.NewInt(3))},
			)},
		},
	}
	rep := Vet(prog)
	diags := findDiags(rep, LintUpdateDerived)
	if len(diags) != 2 {
		t.Fatalf("got %d update-derived diagnostics, want 2: %v", len(diags), rep.Diags)
	}
	for _, d := range diags {
		if d.Sev != SevError {
			t.Errorf("update-derived severity = %v, want error", d.Sev)
		}
		// Programmatic programs carry no positions; diag must clamp to 1:1.
		if d.Line != 1 || d.Col != 1 {
			t.Errorf("position = %d:%d, want clamped 1:1", d.Line, d.Col)
		}
	}
	if !strings.Contains(diags[0].Msg, "derived predicate p/0") {
		t.Errorf("first diagnostic should name the derived predicate: %q", diags[0].Msg)
	}
	if !strings.Contains(diags[1].Msg, "builtin") {
		t.Errorf("second diagnostic should name the builtin: %q", diags[1].Msg)
	}
	if rep.Err() == nil {
		t.Error("report with error diagnostics should have non-nil Err")
	}
}

// TestVetErrorMessage checks the error rendering used by the engine and the
// server when a program is rejected.
func TestVetErrorMessage(t *testing.T) {
	rep, err := VetSource("spin :- ins.tick | spin.\n?- spin.")
	if err != nil {
		t.Fatal(err)
	}
	verr := rep.Err()
	if verr == nil {
		t.Fatal("expected an error-severity report")
	}
	var ve *VetError
	if !asVetError(verr, &ve) {
		t.Fatalf("Err() = %T, want *VetError", verr)
	}
	msg := verr.Error()
	if !strings.Contains(msg, "vet: ") || !strings.Contains(msg, "recursion-under-conc") {
		t.Errorf("error message %q should carry the lint ID", msg)
	}
	if !strings.Contains(msg, "1:20:") {
		t.Errorf("error message %q should carry the literal position 1:20", msg)
	}
}

func asVetError(err error, target **VetError) bool {
	ve, ok := err.(*VetError)
	if ok {
		*target = ve
	}
	return ok
}

// TestSeverityJSON round-trips the severity names used on the wire.
func TestSeverityJSON(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarning, SevError} {
		b, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != sev {
			t.Errorf("round-trip %v -> %s -> %v", sev, b, got)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("unknown severity name should fail to unmarshal")
	}
}

// TestReportCounts checks the error/warning tally the CLI exit code is
// computed from.
func TestReportCounts(t *testing.T) {
	rep, err := VetSource("item(a).\nbad(X) :- item(X), del.item(Y).\ngo :- nothere(Z), ins.log(Z).\n?- bad(a).\n?- go.")
	if err != nil {
		t.Fatal(err)
	}
	errs, warns := rep.Counts()
	if errs != 1 {
		t.Errorf("errs = %d, want 1 (safety)", errs)
	}
	if warns != 1 {
		t.Errorf("warns = %d, want 1 (undefined-pred)", warns)
	}
}

// TestCorpusClean runs every shipped .td program (repo testdata and
// examples) through the analyzer and requires them to be free of warnings
// and errors — intentional full-TD demonstrations carry tdvet:ignore
// pragmas in the source.
func TestCorpusClean(t *testing.T) {
	for _, file := range corpusFiles(t) {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := VetSource(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, d := range rep.Diags {
				if d.Sev >= SevWarning {
					t.Errorf("%s: %s", file, d)
				}
			}
		})
	}
}

func corpusFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.td"),
		filepath.Join("..", "..", "examples", "programs", "*.td"),
	} {
		got, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, got...)
	}
	if len(files) == 0 {
		t.Fatal("no corpus programs found")
	}
	return files
}

// TestFragmentCrossCheck asserts that the fragment verdict tdvet reports
// (both the Report field and the info diagnostic) agrees with
// internal/fragments on every corpus program and on the machine package's
// generated encodings — the programs deliberately built to sit at known
// rungs of the complexity ladder.
func TestFragmentCrossCheck(t *testing.T) {
	check := func(t *testing.T, name, src string) {
		t.Helper()
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		want := fragments.Analyze(prog)
		rep := Vet(prog)
		if rep.Fragment != want.Fragment.String() {
			t.Errorf("%s: tdvet fragment %q, fragments package says %q", name, rep.Fragment, want.Fragment)
		}
		if rep.Complexity != want.Fragment.Complexity() {
			t.Errorf("%s: tdvet complexity %q, fragments package says %q", name, rep.Complexity, want.Fragment.Complexity())
		}
		infos := findDiags(rep, LintFragment)
		if len(infos) != 1 {
			t.Fatalf("%s: got %d fragment info diagnostics, want exactly 1", name, len(infos))
		}
		if !strings.Contains(infos[0].Msg, want.Fragment.String()) {
			t.Errorf("%s: info diagnostic %q does not name fragment %q", name, infos[0].Msg, want.Fragment)
		}
	}

	for _, file := range corpusFiles(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(file), func(t *testing.T) { check(t, file, string(src)) })
	}

	machines := map[string]*machine.Machine{
		"parity":  machine.Parity(),
		"dyck":    machine.Dyck(),
		"copy":    machine.Copy(),
		"diverge": machine.Diverge(),
	}
	two, err := machine.TMAnBn().ToTwoStack()
	if err != nil {
		t.Fatalf("TMAnBn.ToTwoStack: %v", err)
	}
	machines["tm-anbn"] = two
	for name, m := range machines {
		t.Run("machine/"+name, func(t *testing.T) {
			src, _, err := machine.Source(m, []string{"a", "b"})
			if err != nil {
				t.Fatalf("Source: %v", err)
			}
			check(t, name, src)
		})
	}
}

// TestPragmaSuppression exercises the two pragma placements and the
// match-all form.
func TestPragmaSuppression(t *testing.T) {
	// Trailing pragma with explicit ID.
	rep, err := VetSource("go :- nope(X), ins.log(X). % tdvet:ignore undefined-pred\n?- go.")
	if err != nil {
		t.Fatal(err)
	}
	if got := findDiags(rep, LintUndefinedPred); len(got) != 0 {
		t.Errorf("trailing pragma did not suppress: %v", got)
	}
	if rep.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", rep.Suppressed)
	}

	// Standalone pragma above the offender, bare form matches every lint.
	rep, err = VetSource("% tdvet:ignore\ngo :- nope(X), ins.log(X).\n?- go.")
	if err != nil {
		t.Fatal(err)
	}
	if got := findDiags(rep, LintUndefinedPred); len(got) != 0 {
		t.Errorf("standalone pragma did not suppress: %v", got)
	}

	// A pragma naming a different lint must not suppress.
	rep, err = VetSource("go :- nope(X), ins.log(X). % tdvet:ignore safety\n?- go.")
	if err != nil {
		t.Fatal(err)
	}
	if got := findDiags(rep, LintUndefinedPred); len(got) != 1 {
		t.Errorf("mismatched pragma suppressed anyway: %v", rep.Diags)
	}
	if rep.Suppressed != 0 {
		t.Errorf("Suppressed = %d, want 0", rep.Suppressed)
	}
}
