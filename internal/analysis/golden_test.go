package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGolden runs every testdata/*.td fixture through VetSource and compares
// the rendered diagnostics against the paired .want file. Each fixture
// exercises one pass. Regenerate the expectations with
//
//	UPDATE_GOLDEN=1 go test ./internal/analysis -run TestGolden
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.td"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden fixtures in testdata/")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".td")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := VetSource(string(src))
			if err != nil {
				t.Fatalf("VetSource(%s): %v", file, err)
			}
			var b strings.Builder
			for _, d := range rep.Diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			if rep.Suppressed > 0 {
				fmt.Fprintf(&b, "suppressed: %d\n", rep.Suppressed)
			}
			got := b.String()

			wantFile := strings.TrimSuffix(file, ".td") + ".want"
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(wantFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(wantFile)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}

// TestGoldenPositionsValid double-checks that every fixture diagnostic has a
// 1-based position — the same invariant FuzzVet enforces on arbitrary input.
func TestGoldenPositionsValid(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.td"))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VetSource(string(src))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range rep.Diags {
			if d.Line < 1 || d.Col < 1 {
				t.Errorf("%s: diagnostic %q has invalid position %d:%d", file, d.ID, d.Line, d.Col)
			}
		}
	}
}
