// tdplan: the static planning phase. Plan combines three analyses into one
// PlanReport:
//
//  1. the adornment dataflow (adorn.go): which binding patterns each
//     derived predicate is invoked with;
//  2. a literal reorderer: per rule body and head adornment, reorder
//     sequential conjunctions by bound-argument selectivity — point
//     lookups and first-arg-bound scans before free scans, bound builtins
//     as early as their inputs allow — restricted to provably
//     semantics-preserving moves (never across updates, '|' branches, or
//     iso boundaries; see the legality rules on segmentRuns);
//  3. a tabling-safety certificate per derived predicate (update-free,
//     hypothetical-free, recursion class), the input the future
//     memoization layer consumes.
//
// The report is pure data: the engine applies the reordered rule variants
// (Variants) at load time under EngineOptions.Plan, tdvet -plan renders it
// for humans and CI, and the server's PLAN verb ships it as JSON.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// PlanSchemaVersion identifies the PlanReport JSON shape for downstream
// tooling.
const PlanSchemaVersion = 1

// Recursion classes in a tabling certificate, from most benign to least:
// no recursion, sequential tail recursion (iteration), non-tail recursion
// (stacked descents), and recursion through '|' (unbounded process
// creation, Theorem 4.4 — never tabling-eligible).
const (
	RecNone    = "none"
	RecTail    = "tail"
	RecNonTail = "nontail"
	RecConc    = "conc"
)

// PlanReport is the result of planning one program.
type PlanReport struct {
	SchemaVersion int `json:"schema_version"`
	// Predicates holds one certificate per derived predicate, sorted by
	// name then arity.
	Predicates []PredPlan `json:"predicates"`
	// Reorders counts (rule, adornment) pairs whose body order changed.
	Reorders int `json:"reorders"`
	// Diags carries the SevInfo reorder diagnostics that survived
	// tdvet:ignore pragmas, in source order.
	Diags []Diagnostic `json:"diagnostics,omitempty"`
	// Suppressed counts plan diagnostics dropped by pragmas.
	Suppressed int `json:"suppressed,omitempty"`

	variants []PlanVariant // reordered rule sets, not serialized
}

// PredPlan is one derived predicate's tabling certificate plus its
// adornments and reorder decisions.
type PredPlan struct {
	Pred    string `json:"pred"` // "name/arity"
	Derived bool   `json:"derived"`
	// UpdateFree: no ins/del is reachable through the predicate's rules
	// (transitively, over the call graph).
	UpdateFree bool `json:"update_free"`
	// HypotheticalFree: no iso sub-transaction is reachable. Isolation is
	// the modality standing in for TR's hypothetical operators in this
	// fragment; a tabled result must not depend on one.
	HypotheticalFree bool `json:"hypothetical_free"`
	// Recursion is the predicate's recursion class (RecNone..RecConc),
	// a property of its call-graph SCC.
	Recursion string `json:"recursion"`
	// TablingEligible: derived, update-free, hypothetical-free, and not
	// recursive through '|' — memoizing per snapshot version is sound.
	TablingEligible bool `json:"tabling_eligible"`
	// Adornments lists the binding patterns the dataflow found, in
	// discovery order (capped at maxAdornments).
	Adornments []string `json:"adornments,omitempty"`
	// Support is the predicate's base-relation support set: every stored
	// relation whose content the predicate's answers can depend on,
	// transitively through the call graph. Entries are "name/arity" for
	// relation reads (queries, rule-less calls) and a bare "name" for
	// predicate-level reads (empty.p observes every arity). Sorted. This
	// is the set a snapshot-versioned memo table keys its version vector
	// on: if none of these relations changed, a cached answer multiset is
	// still exact.
	Support []string   `json:"support,omitempty"`
	Rules   []RulePlan `json:"rules,omitempty"`
}

// RulePlan records the reorder decisions for one rule of a predicate.
type RulePlan struct {
	// Rule is the rule's index among the predicate's rules, in source
	// order.
	Rule int `json:"rule"`
	Line int `json:"line,omitempty"`
	// Orders holds one entry per adornment under which the body order
	// changed; identity orders are omitted.
	Orders []OrderPlan `json:"orders,omitempty"`
}

// OrderPlan is one reordered body: Order[k] is the textual index of the
// literal evaluated at position k.
type OrderPlan struct {
	Adornment string `json:"adornment"`
	Order     []int  `json:"order"`
}

// PlanVariant is one reordered rule set: under Adornment, the engine
// should evaluate Pred/Arity with Rules (same heads and rule order as the
// program's, bodies permuted). Rules are fresh values — the program's own
// rules are never mutated.
type PlanVariant struct {
	Pred      string
	Arity     int
	Adornment string
	Rules     []ast.Rule
}

// Variants returns the reordered rule sets the engine applies at load
// time. Only (predicate, adornment) pairs where at least one body changed
// are present; everything else falls back to textual order.
func (r *PlanReport) Variants() []PlanVariant { return r.variants }

// Plan runs the tdplan analyses over prog and returns the report. Like
// Vet, it never mutates prog and runs no transactions.
func Plan(prog *ast.Program) *PlanReport {
	p := &planner{vetter: newVetter(prog)}
	p.certify()
	p.adorn = p.adornments()
	rep := &PlanReport{SchemaVersion: PlanSchemaVersion}
	p.reorderAll(rep)
	p.report(rep)
	rep.Diags, rep.Suppressed = applyPragmas(p.diags, prog.Pragmas)
	sort.SliceStable(rep.Diags, func(i, j int) bool {
		a, b := rep.Diags[i], rep.Diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Msg < b.Msg
	})
	return rep
}

// PlanSource parses src and plans the program. Parse errors are returned
// as is; the report is nil in that case.
func PlanSource(src string) (*PlanReport, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return Plan(prog), nil
}

// planner carries one Plan run: the vetter's predicate tables and call
// graph, plus the certificate and adornment results.
type planner struct {
	*vetter
	updateFree []bool // per node: no ins/del reachable
	isoFree    []bool // per node: no iso reachable
	recClass   []string
	support    []map[string]bool // per node: reachable base-relation reads
	adorn      map[predKey]*adornSet
}

// certify computes the per-predicate tabling facts: update-freedom and
// iso-freedom as a reverse-reachability fixpoint over the call graph, and
// the recursion class per SCC.
func (p *planner) certify() {
	n := len(p.nodes)
	directUpd := make([]bool, n)
	directIso := make([]bool, n)
	for _, r := range p.prog.Rules {
		idx := p.nodeIdx[litKey(r.Head)]
		ast.Walk(r.Body, func(sub ast.Goal) bool {
			switch sub := sub.(type) {
			case *ast.Lit:
				if sub.Op == ast.OpIns || sub.Op == ast.OpDel {
					directUpd[idx] = true
				}
			case *ast.Iso:
				directIso[idx] = true
			}
			return true
		})
	}
	fixpoint := func(direct []bool) []bool {
		free := make([]bool, n)
		for i := range free {
			free[i] = !direct[i]
		}
		for changed := true; changed; {
			changed = false
			for from := 0; from < n; from++ {
				if !free[from] {
					continue
				}
				for _, to := range p.edges[from] {
					if !free[to] {
						free[from] = false
						changed = true
						break
					}
				}
			}
		}
		return free
	}
	p.updateFree = fixpoint(directUpd)
	p.isoFree = fixpoint(directIso)
	p.supportSets()

	// Recursion class is a property of the SCC: one conc-recursive or
	// non-tail clause anywhere in the cycle taints every member.
	rank := map[string]int{RecNone: 0, RecTail: 1, RecNonTail: 2, RecConc: 3}
	sccClass := make(map[int]string)
	for _, r := range p.prog.Rules {
		from := p.nodeIdx[litKey(r.Head)]
		if !p.inCycle[from] {
			continue
		}
		class := RecTail
		if p.concRecursive(from, r.Body, false) {
			class = RecConc
		} else if p.hasNonTailRecursion(from, r.Body, true) {
			class = RecNonTail
		}
		scc := p.sccID[from]
		if rank[class] > rank[sccClass[scc]] {
			sccClass[scc] = class
		}
	}
	p.recClass = make([]string, n)
	for i := range p.recClass {
		if !p.inCycle[i] {
			p.recClass[i] = RecNone
		} else if c := sccClass[p.sccID[i]]; c != "" {
			p.recClass[i] = c
		} else {
			p.recClass[i] = RecTail
		}
	}
}

// supportSets computes each predicate's base-relation support set: the
// stored relations whose content its answers can depend on, transitively
// through the call graph. Direct reads are base-relation queries, calls
// to rule-less predicates (the engine evaluates them as queries), and
// emptiness tests (recorded as a bare predicate name: empty.p observes
// every arity of p). Update targets are not support entries — a predicate
// that reaches an update is never tabling-eligible, so its support set is
// advisory only. The closure mirrors certify's reverse-reachability
// fixpoint over the call edges.
func (p *planner) supportSets() {
	n := len(p.nodes)
	p.support = make([]map[string]bool, n)
	for i := range p.support {
		p.support[i] = make(map[string]bool)
	}
	for _, r := range p.prog.Rules {
		idx := p.nodeIdx[litKey(r.Head)]
		ast.Walk(r.Body, func(sub ast.Goal) bool {
			switch sub := sub.(type) {
			case *ast.Lit:
				switch sub.Op {
				case ast.OpQuery:
					p.support[idx][litKey(sub.Atom).String()] = true
				case ast.OpCall:
					if ast.IsBuiltinName(sub.Atom.Pred) {
						break
					}
					if !p.derived[litKey(sub.Atom)] {
						p.support[idx][litKey(sub.Atom).String()] = true
					}
				}
			case *ast.Empty:
				p.support[idx][sub.Pred] = true
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for from := 0; from < n; from++ {
			for _, to := range p.edges[from] {
				for e := range p.support[to] {
					if !p.support[from][e] {
						p.support[from][e] = true
						changed = true
					}
				}
			}
		}
	}
}

// Support resolves a derived predicate's base-relation support set by key,
// sorted; nil when the predicate is unknown or reads nothing.
func (p *planner) Support(k predKey) []string {
	idx, ok := p.nodeIdx[k]
	if !ok || len(p.support[idx]) == 0 {
		return nil
	}
	out := make([]string, 0, len(p.support[idx]))
	for e := range p.support[idx] {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// concRecursive reports whether g contains an intra-SCC recursive call
// under concurrent composition.
func (p *planner) concRecursive(from int, g ast.Goal, underConc bool) bool {
	switch g := g.(type) {
	case *ast.Lit:
		return underConc && p.isRecursiveCall(from, g)
	case *ast.Seq:
		for _, sub := range g.Goals {
			if p.concRecursive(from, sub, underConc) {
				return true
			}
		}
	case *ast.Conc:
		for _, sub := range g.Goals {
			if p.concRecursive(from, sub, true) {
				return true
			}
		}
	case *ast.Iso:
		return p.concRecursive(from, g.Body, underConc)
	}
	return false
}

// nodeCert resolves a derived predicate's certificate facts by key.
func (p *planner) nodeCert(k predKey) (updateFree, isoFree bool, class string) {
	idx, ok := p.nodeIdx[k]
	if !ok {
		return false, false, RecNone
	}
	return p.updateFree[idx], p.isoFree[idx], p.recClass[idx]
}

// --------------------------------------------------------- reorder legality --

// litClass buckets one top-level body goal for the reorderer.
type litClass uint8

const (
	// classBarrier: the goal pins its position. Updates change the
	// database mid-sequence; '|' compositions interleave with their
	// context; iso bodies are atomic sub-transactions; calls into
	// updating, iso-using, or recursive predicates inherit all three
	// hazards (recursive calls additionally so a reorder can never turn a
	// terminating textual order into a divergent one). Nothing moves
	// across a barrier in either direction.
	classBarrier litClass = iota
	// classQuery: a base-relation query (or a rule-less call, which the
	// engine evaluates as one). Read-only, cannot fail with an error, and
	// binds its arguments to ground tuple fields — freely movable within
	// its run.
	classQuery
	// classEmpty: an emptiness test. Read-only and error-free; freely
	// movable within its run.
	classEmpty
	// classBuiltin: comparison/arithmetic/unification. Read-only but may
	// error on unbound or non-integer inputs, so movement is constrained:
	// builtins keep their relative order among non-query goals, and any
	// input that was certainly bound at the textual position must still
	// be bound at the planned position.
	classBuiltin
	// classCall: a call to a derived predicate that is update-free,
	// iso-free, and non-recursive. Read-only, but its body may contain
	// builtins that relied on the caller's bindings, so it moves under
	// the same constraints as a builtin; it binds its arguments only
	// optimistically (a succeeding call may leave them unbound), so it
	// contributes nothing to the certainly-bound set.
	classCall
)

// classify buckets one top-level goal of a sequential body.
func (p *planner) classify(g ast.Goal) litClass {
	switch g := g.(type) {
	case *ast.Lit:
		switch g.Op {
		case ast.OpQuery:
			return classQuery
		case ast.OpCall:
			if ast.IsBuiltinName(g.Atom.Pred) {
				return classBuiltin
			}
			k := litKey(g.Atom)
			if !p.derived[k] {
				return classQuery
			}
			upd, iso, class := p.nodeCert(k)
			if upd && iso && class == RecNone {
				return classCall
			}
			return classBarrier
		default: // ins/del
			return classBarrier
		}
	case *ast.Empty:
		return classEmpty
	case *ast.Builtin:
		return classBuiltin
	default: // Conc, Iso, anything unknown
		return classBarrier
	}
}

// isOrderedClass reports whether the class keeps relative order among its
// peers (legality rule: non-query goals never pass each other).
func isOrderedClass(c litClass) bool { return c == classBuiltin || c == classCall }

// goalNeeds returns the variables of g whose groundness its evaluation
// relies on: all arguments for comparisons, neq, and movable calls; the
// two inputs for arithmetic. eq is special-cased by the caller (it needs
// only one side bound, either one).
func goalNeeds(g ast.Goal) (vars []term.Term, eqArgs []term.Term) {
	switch g := g.(type) {
	case *ast.Lit: // builtin in call form, or a movable call
		if ast.IsBuiltinName(g.Atom.Pred) {
			return builtinNeeds(g.Atom.Pred, g.Atom.Args)
		}
		return g.Atom.Args, nil
	case *ast.Builtin:
		return builtinNeeds(g.Name, g.Args)
	}
	return nil, nil
}

func builtinNeeds(name string, args []term.Term) (vars []term.Term, eqArgs []term.Term) {
	if name == "eq" && len(args) == 2 {
		return nil, args
	}
	if isArith(name) && len(args) == 3 {
		return args[:2], nil
	}
	return args, nil
}

// certainUpdate extends the certainly-bound set with the bindings g is
// guaranteed to make when it succeeds: queries ground their arguments
// against stored tuples, arithmetic grounds its output, eq grounds both
// sides when either is ground. Calls add nothing (optimistic bindings are
// not certain).
func certainUpdate(g ast.Goal, class litClass, cur varset) {
	switch class {
	case classQuery:
		if l, ok := g.(*ast.Lit); ok {
			for _, t := range l.Atom.Args {
				cur.add(t)
			}
		}
	case classBuiltin:
		var name string
		var args []term.Term
		switch g := g.(type) {
		case *ast.Lit:
			name, args = g.Atom.Pred, g.Atom.Args
		case *ast.Builtin:
			name, args = g.Name, g.Args
		}
		if name == "eq" && len(args) == 2 {
			if cur.has(args[0]) || cur.has(args[1]) {
				cur.add(args[0])
				cur.add(args[1])
			}
			return
		}
		if isArith(name) && len(args) == 3 {
			cur.add(args[2])
		}
	}
}

// goalCost ranks a goal's expected selectivity given the certainly-bound
// set: cheap, narrowing goals run first. Lower is earlier; ties keep
// textual order.
func goalCost(g ast.Goal, class litClass, cur varset) int {
	argsOf := func() []term.Term {
		if l, ok := g.(*ast.Lit); ok {
			return l.Atom.Args
		}
		if b, ok := g.(*ast.Builtin); ok {
			return b.Args
		}
		return nil
	}
	switch class {
	case classBuiltin:
		for _, t := range argsOf() {
			if !cur.has(t) {
				return 1
			}
		}
		return 0 // a fully bound builtin is a pure filter
	case classQuery:
		args := argsOf()
		if len(args) == 0 {
			return 1
		}
		bound := 0
		for _, t := range args {
			if cur.has(t) {
				bound++
			}
		}
		switch {
		case bound == len(args):
			return 1 // point lookup
		case cur.has(args[0]):
			return 2 // first-arg index scan
		case bound > 0:
			return 4
		default:
			return 6 // free scan
		}
	case classEmpty:
		return 3
	case classCall:
		for _, t := range argsOf() {
			if !cur.has(t) {
				return 7
			}
		}
		return 5
	}
	return 0
}

// maxRunLen bounds the goals the greedy reorderer considers in one run;
// longer runs are left in textual order (the scan is quadratic).
const maxRunLen = 64

// reorderBody plans one rule body under one head adornment. It returns
// the full-body permutation (order[k] = textual index evaluated at k) or
// nil when the planned order is textual order. Only top-level sequential
// conjunctions are reordered; runs are the maximal barrier-free windows.
func (p *planner) reorderBody(r ast.Rule, ad string) []int {
	seq, ok := r.Body.(*ast.Seq)
	if !ok {
		return nil
	}
	goals := seq.Goals
	n := len(goals)
	classes := make([]litClass, n)
	for i, g := range goals {
		classes[i] = p.classify(g)
	}
	order := make([]int, 0, n)
	cur := boundPositions(r.Head, ad)
	changed := false
	for lo := 0; lo < n; {
		if classes[lo] == classBarrier {
			order = append(order, lo)
			// Barriers contribute no certain bindings: updates require
			// ground arguments, conc/iso bindings are not relied on.
			lo++
			continue
		}
		hi := lo
		for hi < n && classes[hi] != classBarrier {
			hi++
		}
		run := p.reorderRun(goals[lo:hi], classes[lo:hi], cur)
		for k, idx := range run {
			if idx != k {
				changed = true
			}
			order = append(order, lo+idx)
		}
		// Advance the certain set over the run in planned order.
		for _, idx := range run {
			certainUpdate(goals[lo+idx], classes[lo+idx], cur)
		}
		lo = hi
	}
	if !changed {
		return nil
	}
	return order
}

// reorderRun greedily orders one barrier-free window: repeatedly pick the
// cheapest eligible goal. Eligibility enforces the two legality rules —
// non-query goals (builtins, movable calls) keep their textual relative
// order, and a builtin/call may only be placed once every input that was
// certainly bound at its textual position is certainly bound again. The
// textually-first unplaced goal is always eligible, so the loop cannot
// stall; if it ever did, the run would fall back to textual order.
func (p *planner) reorderRun(goals []ast.Goal, classes []litClass, entry varset) []int {
	n := len(goals)
	identity := func() []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if n < 2 || n > maxRunLen {
		return identity()
	}

	// Textual pass: which of each goal's needed variables are certainly
	// bound at its textual position? Those must be bound again at the
	// planned position. eq needs one side, either one.
	needs := make([][]int64, n)
	eqNeed := make([]bool, n) // needs at least one eq side bound
	eqVars := make([][]term.Term, n)
	tc := entry.clone()
	for i, g := range goals {
		vars, eqArgs := goalNeeds(g)
		if isOrderedClass(classes[i]) {
			for _, t := range vars {
				if t.IsVar() && tc.has(t) {
					needs[i] = append(needs[i], t.VarID())
				}
			}
			if eqArgs != nil && (tc.has(eqArgs[0]) || tc.has(eqArgs[1])) {
				eqNeed[i] = true
				eqVars[i] = eqArgs
			}
		}
		certainUpdate(g, classes[i], tc)
	}

	cur := entry.clone()
	used := make([]bool, n)
	out := make([]int, 0, n)
	nextOrdered := 0 // textually next unplaced builtin/call
	advance := func() {
		for nextOrdered < n && (used[nextOrdered] || !isOrderedClass(classes[nextOrdered])) {
			nextOrdered++
		}
	}
	advance()
	for len(out) < n {
		best, bestCost := -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if isOrderedClass(classes[i]) && i != nextOrdered {
				continue
			}
			ok := true
			for _, id := range needs[i] {
				if !cur[id] {
					ok = false
					break
				}
			}
			if ok && eqNeed[i] && !cur.has(eqVars[i][0]) && !cur.has(eqVars[i][1]) {
				ok = false
			}
			if !ok {
				continue
			}
			if c := goalCost(goals[i], classes[i], cur); best == -1 || c < bestCost {
				best, bestCost = i, c
			}
		}
		if best == -1 {
			return identity() // cannot happen; keep the sound fallback
		}
		used[best] = true
		out = append(out, best)
		certainUpdate(goals[best], classes[best], cur)
		advance()
	}
	return out
}

// permuteBody builds the reordered body: a fresh Seq holding the original
// goal nodes in planned order. The original rule and its body are shared
// with the program and never mutated.
func permuteBody(body ast.Goal, order []int) ast.Goal {
	seq := body.(*ast.Seq)
	goals := make([]ast.Goal, len(order))
	for k, idx := range order {
		goals[k] = seq.Goals[idx]
	}
	return ast.NewSeq(goals...)
}

// adornLabel renders an adornment for humans: path^bf; ^ε for arity 0.
func adornLabel(ad string) string {
	if ad == "" {
		return "^ε"
	}
	return "^" + ad
}

// reorderAll computes every rule variant and the reorder diagnostics.
func (p *planner) reorderAll(rep *PlanReport) {
	for _, k := range p.nodes {
		rules := p.prog.RulesFor(k.pred, k.arity)
		set := p.adorn[k]
		if set == nil {
			continue
		}
		for _, ad := range set.list {
			var variant []ast.Rule
			for ri, r := range rules {
				order := p.reorderBody(r, ad)
				if order == nil {
					continue
				}
				if variant == nil {
					variant = make([]ast.Rule, len(rules))
					copy(variant, rules)
				}
				variant[ri] = ast.Rule{Head: r.Head, Body: permuteBody(r.Body, order), Pos: r.Pos}
				rep.Reorders++
				p.diag(r.Pos, SevInfo, LintPlan,
					fmt.Sprintf("plan: body of %s%s reordered: %v", k, adornLabel(ad), order),
					citePlan)
			}
			if variant != nil {
				rep.variants = append(rep.variants, PlanVariant{
					Pred: k.pred, Arity: k.arity, Adornment: ad, Rules: variant,
				})
			}
		}
	}
}

// report assembles the per-predicate certificates, sorted by name/arity.
func (p *planner) report(rep *PlanReport) {
	ordered := make([]predKey, len(p.nodes))
	copy(ordered, p.nodes)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].pred != ordered[j].pred {
			return ordered[i].pred < ordered[j].pred
		}
		return ordered[i].arity < ordered[j].arity
	})
	for _, k := range ordered {
		upd, iso, class := p.nodeCert(k)
		pp := PredPlan{
			Pred:             k.String(),
			Derived:          true,
			UpdateFree:       upd,
			HypotheticalFree: iso,
			Recursion:        class,
			TablingEligible:  upd && iso && class != RecConc,
			Support:          p.Support(k),
		}
		if set := p.adorn[k]; set != nil {
			pp.Adornments = append(pp.Adornments, set.list...)
		}
		rules := p.prog.RulesFor(k.pred, k.arity)
		for ri, r := range rules {
			rp := RulePlan{Rule: ri, Line: r.Pos.Line}
			if set := p.adorn[k]; set != nil {
				for _, ad := range set.list {
					if order := p.reorderBody(r, ad); order != nil {
						rp.Orders = append(rp.Orders, OrderPlan{Adornment: ad, Order: order})
					}
				}
			}
			if len(rp.Orders) > 0 {
				pp.Rules = append(pp.Rules, rp)
			}
		}
		rep.Predicates = append(rep.Predicates, pp)
	}
}
