package analysis

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/term"
)

// Paper citations attached to diagnostics, one per lint family.
const (
	citeSafety   = "Section 2: elementary updates execute on ground tuples"
	citeDerived  = "Section 3: derived predicates are defined by rules, not stored tuples"
	citeRecConc  = "Theorem 4.4, Corollary 4.6: recursion through '|' makes committing RE-complete"
	citeBounded  = "Section 5: fully bounded TD restricts recursion to sequential iteration"
	citeEntail   = "Section 2: a transaction commits only if some execution path succeeds"
	citeFragment = "Theorems 4.4-4.7, Section 5"
	citePlan     = "Section 2: read-only queries commute within a sequential conjunction"
)

// ---------------------------------------------------------------- safety --

// varset tracks variables known bound at the current point of a
// left-to-right scan (sideways information passing).
type varset map[int64]bool

func (s varset) add(t term.Term) {
	if t.IsVar() {
		s[t.VarID()] = true
	}
}

func (s varset) has(t term.Term) bool { return !t.IsVar() || s[t.VarID()] }

func (s varset) clone() varset {
	out := make(varset, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// passSafety is the position-aware counterpart of ast.CheckSafety: scan
// each body left to right; a variable is bound if it occurred in the rule
// head, an earlier query/call, or an arithmetic output. Updates and
// builtin inputs reached with a possibly-unbound variable are errors.
// Concurrent branches only see bindings made before the composition.
func (v *vetter) passSafety() {
	for _, r := range v.prog.Rules {
		bound := varset{}
		for _, t := range r.Head.Vars(nil) {
			bound.add(t)
		}
		v.safeGoal(r.Body, bound)
	}
	for _, q := range v.prog.Queries {
		v.safeGoal(q, varset{})
	}
}

func (v *vetter) safeGoal(g ast.Goal, bound varset) {
	switch g := g.(type) {
	case *ast.Lit:
		if g.Op == ast.OpCall && ast.IsBuiltinName(g.Atom.Pred) {
			// Un-analyzed program: builtin still in call form.
			v.safeBuiltin(&ast.Builtin{Name: g.Atom.Pred, Args: g.Atom.Args, Pos: g.Pos}, bound)
			return
		}
		switch g.Op {
		case ast.OpQuery, ast.OpCall:
			// Queries bind by matching tuples; calls are assumed to bind
			// (the engine's runtime groundness check backstops).
			for _, t := range g.Atom.Args {
				bound.add(t)
			}
		case ast.OpIns, ast.OpDel:
			for _, t := range g.Atom.Args {
				if !bound.has(t) {
					v.diag(g.Pos, SevError, LintSafety,
						fmt.Sprintf("variable %s may be unbound at %s; bind it with an earlier query in the sequence", t, g),
						citeSafety)
				}
			}
		}
	case *ast.Builtin:
		v.safeBuiltin(g, bound)
	case *ast.Seq:
		for _, sub := range g.Goals {
			v.safeGoal(sub, bound)
		}
	case *ast.Conc:
		// Interleaving order is not statically known: a binding made in a
		// sibling branch cannot be relied on. After the composition all
		// branches have succeeded, so all their bindings hold.
		after := bound.clone()
		for _, sub := range g.Goals {
			branch := bound.clone()
			v.safeGoal(sub, branch)
			for k := range branch {
				after[k] = true
			}
		}
		for k := range after {
			bound[k] = true
		}
	case *ast.Iso:
		v.safeGoal(g.Body, bound)
	}
}

func (v *vetter) safeBuiltin(b *ast.Builtin, bound varset) {
	if b.Name == "eq" && len(b.Args) == 2 {
		// eq can bind either side; at least one side must be bound.
		if !bound.has(b.Args[0]) && !bound.has(b.Args[1]) {
			v.diag(b.Pos, SevError, LintSafety,
				fmt.Sprintf("both sides of %s may be unbound", b), citeSafety)
		}
		bound.add(b.Args[0])
		bound.add(b.Args[1])
		return
	}
	inputs := b.Args
	var output *term.Term
	if isArith(b.Name) && len(b.Args) == 3 {
		inputs = b.Args[:2]
		output = &b.Args[2]
	}
	for _, t := range inputs {
		if !bound.has(t) {
			v.diag(b.Pos, SevError, LintSafety,
				fmt.Sprintf("variable %s may be unbound at builtin %s", t, b), citeSafety)
		}
	}
	if output != nil {
		bound.add(*output)
	}
}

func isArith(name string) bool {
	switch name {
	case "add", "sub", "mul", "div", "mod":
		return true
	}
	return false
}

// ------------------------------------------------------- undefined-pred --

// passUndefined flags reads of predicates that have no rules, no facts,
// and are never inserted anywhere: such a query can never succeed against
// any database this program builds.
func (v *vetter) passUndefined() {
	check := func(g ast.Goal) {
		ast.Walk(g, func(sub ast.Goal) bool {
			l, ok := sub.(*ast.Lit)
			if !ok {
				return true
			}
			k := litKey(l.Atom)
			if ast.IsBuiltinName(k.pred) {
				return true
			}
			read := l.Op == ast.OpQuery || (l.Op == ast.OpCall && !v.derived[k])
			if read && !v.hasFacts[k] && !v.inserted[k] {
				v.diag(l.Pos, SevWarning, LintUndefinedPred,
					fmt.Sprintf("%s has no rules, no facts, and is never inserted; this query can never succeed", k), "")
			}
			return true
		})
	}
	for _, r := range v.prog.Rules {
		check(r.Body)
	}
	for _, q := range v.prog.Queries {
		check(q)
	}
}

// ------------------------------------------- unused-pred and dead-clause --

// passUnusedAndDead reports derived predicates that are never called
// (unused-pred) and clauses of called-but-unreachable predicates
// (dead-clause: no path from any ?- query reaches them). Both lints are
// meaningful only when the program declares its entry points, so they are
// skipped for programs without ?- directives (rulebase libraries).
func (v *vetter) passUnusedAndDead() {
	if len(v.prog.Queries) == 0 {
		return
	}
	called := make(map[predKey]bool)
	note := func(g ast.Goal) {
		ast.Walk(g, func(sub ast.Goal) bool {
			if l, ok := sub.(*ast.Lit); ok && (l.Op == ast.OpCall || l.Op == ast.OpQuery) {
				called[litKey(l.Atom)] = true
			}
			return true
		})
	}
	for _, r := range v.prog.Rules {
		note(r.Body)
	}
	// Reachability: BFS over the call graph from the predicates the ?-
	// queries invoke.
	reach := make([]bool, len(v.nodes))
	var queue []int
	for _, q := range v.prog.Queries {
		note(q)
		ast.Walk(q, func(sub ast.Goal) bool {
			if l, ok := sub.(*ast.Lit); ok {
				if idx, ok := v.nodeIdx[litKey(l.Atom)]; ok && !reach[idx] {
					reach[idx] = true
					queue = append(queue, idx)
				}
			}
			return true
		})
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range v.edges[x] {
			if !reach[w] {
				reach[w] = true
				queue = append(queue, w)
			}
		}
	}
	reported := make(map[predKey]bool)
	for _, r := range v.prog.Rules {
		k := litKey(r.Head)
		idx := v.nodeIdx[k]
		if reach[idx] {
			continue
		}
		if !called[k] {
			if !reported[k] {
				reported[k] = true
				v.diag(r.Pos, SevWarning, LintUnusedPred,
					fmt.Sprintf("derived predicate %s is never called", k), "")
			}
			continue
		}
		v.diag(r.Pos, SevWarning, LintDeadClause,
			fmt.Sprintf("clause of %s is unreachable from every ?- query", k), "")
	}
}

// ----------------------------------------------------------------- arity --

// passArity flags one predicate name used at several arities (arity is
// part of predicate identity, so this is almost always a typo) and
// builtins invoked with the wrong argument count.
func (v *vetter) passArity() {
	first := make(map[predKey]ast.Pos)
	byName := make(map[string][]predKey) // arities per name, first-seen order
	note := func(a term.Atom, pos ast.Pos) {
		if ast.IsBuiltinName(a.Pred) {
			return
		}
		k := litKey(a)
		if _, seen := first[k]; seen {
			return
		}
		first[k] = pos
		byName[k.pred] = append(byName[k.pred], k)
	}
	noteGoal := func(g ast.Goal) {
		ast.Walk(g, func(sub ast.Goal) bool {
			switch sub := sub.(type) {
			case *ast.Lit:
				note(sub.Atom, sub.Pos)
			case *ast.Builtin:
				if want, ok := ast.BuiltinArity(sub.Name); ok && len(sub.Args) != want {
					v.diag(sub.Pos, SevWarning, LintArity,
						fmt.Sprintf("builtin %s expects %d arguments, got %d", sub.Name, want, len(sub.Args)), "")
				}
			}
			return true
		})
	}
	for _, r := range v.prog.Rules {
		note(r.Head, r.Pos)
		noteGoal(r.Body)
	}
	for i, f := range v.prog.Facts {
		var pos ast.Pos
		if i < len(v.prog.FactPos) {
			pos = v.prog.FactPos[i]
		}
		note(f, pos)
	}
	for _, q := range v.prog.Queries {
		noteGoal(q)
	}
	for _, keys := range byName {
		for _, k := range keys[1:] {
			v.diag(first[k], SevWarning, LintArity,
				fmt.Sprintf("%s is also used with arity %d; arity is part of predicate identity", k, keys[0].arity), "")
		}
	}
}

// -------------------------------------------------------- update-derived --

// passUpdateDerived flags ins/del whose target is a derived (rule-defined)
// or builtin predicate. The parser's Analyze already hard-rejects these in
// parsed programs; the pass makes Vet self-contained for programmatically
// built programs.
func (v *vetter) passUpdateDerived() {
	check := func(g ast.Goal) {
		ast.Walk(g, func(sub ast.Goal) bool {
			l, ok := sub.(*ast.Lit)
			if !ok || (l.Op != ast.OpIns && l.Op != ast.OpDel) {
				return true
			}
			k := litKey(l.Atom)
			switch {
			case ast.IsBuiltinName(k.pred):
				v.diag(l.Pos, SevError, LintUpdateDerived,
					fmt.Sprintf("%s.%s: cannot update builtin predicate", l.Op, l.Atom), citeDerived)
			case v.derived[k]:
				v.diag(l.Pos, SevError, LintUpdateDerived,
					fmt.Sprintf("%s.%s: cannot update derived predicate %s", l.Op, l.Atom, k), citeDerived)
			}
			return true
		})
	}
	for _, r := range v.prog.Rules {
		check(r.Body)
	}
	for _, q := range v.prog.Queries {
		check(q)
	}
}

// -------------------------------------------------- recursion-under-conc --

// passRecursionUnderConc flags the exact literal that closes a recursion
// cycle inside a concurrent composition: each loop iteration can spawn a
// fresh concurrent process, so the process count is unbounded by the goal
// and committing becomes undecidable.
func (v *vetter) passRecursionUnderConc() {
	for _, r := range v.prog.Rules {
		from := v.nodeIdx[litKey(r.Head)]
		if !v.inCycle[from] {
			continue
		}
		v.scanConcRecursion(from, litKey(r.Head), r.Body, false)
	}
}

func (v *vetter) scanConcRecursion(from int, head predKey, g ast.Goal, underConc bool) {
	switch g := g.(type) {
	case *ast.Lit:
		if underConc && v.isRecursiveCall(from, g) {
			v.diag(g.Pos, SevError, LintRecursionConc,
				fmt.Sprintf("recursive call to %s under '|' in clause %s: each iteration may spawn a new concurrent process", litKey(g.Atom), head),
				citeRecConc)
		}
	case *ast.Seq:
		for _, sub := range g.Goals {
			v.scanConcRecursion(from, head, sub, underConc)
		}
	case *ast.Conc:
		for _, sub := range g.Goals {
			v.scanConcRecursion(from, head, sub, true)
		}
	case *ast.Iso:
		v.scanConcRecursion(from, head, g.Body, underConc)
	}
}

// ------------------------------------------------------ unbounded-update --

// passUnboundedUpdate flags updates inside clauses whose recursion is not
// sequential tail recursion. Tail recursion is iteration — the number of
// updates per pass is fixed by the clause — but non-tail recursion (or
// recursion under | / iso) stacks update work per recursive descent, so
// the total update count is not bounded by the goal: the program falls
// out of the fully bounded fragment.
func (v *vetter) passUnboundedUpdate() {
	for _, r := range v.prog.Rules {
		from := v.nodeIdx[litKey(r.Head)]
		if !v.inCycle[from] || !v.hasNonTailRecursion(from, r.Body, true) {
			continue
		}
		head := litKey(r.Head)
		ast.Walk(r.Body, func(sub ast.Goal) bool {
			if l, ok := sub.(*ast.Lit); ok && (l.Op == ast.OpIns || l.Op == ast.OpDel) {
				v.diag(l.Pos, SevWarning, LintUnboundedUpdate,
					fmt.Sprintf("%s.%s executes in non-tail-recursive clause %s; update count is not bounded by the goal", l.Op, l.Atom.Pred, head),
					citeBounded)
			}
			return true
		})
	}
}

// hasNonTailRecursion reports whether the body contains an intra-SCC
// recursive call outside sequential tail position (mirroring the
// placement analysis in internal/fragments).
func (v *vetter) hasNonTailRecursion(from int, g ast.Goal, tail bool) bool {
	switch g := g.(type) {
	case *ast.Lit:
		return !tail && v.isRecursiveCall(from, g)
	case *ast.Seq:
		for i, sub := range g.Goals {
			if v.hasNonTailRecursion(from, sub, tail && i == len(g.Goals)-1) {
				return true
			}
		}
	case *ast.Conc:
		for _, sub := range g.Goals {
			if v.hasNonTailRecursion(from, sub, false) {
				return true
			}
		}
	case *ast.Iso:
		return v.hasNonTailRecursion(from, g.Body, false)
	}
	return false
}

// ---------------------------------------------------------- never-commit --

// pstate is what the never-commit scan knows about one base relation at a
// point in a sequential execution.
type pstate uint8

const (
	stEmpty    pstate = iota + 1 // a successful empty.p proved p empty
	stNonEmpty                   // an ins.p or successful query proved p non-empty
)

// dbstate maps predicate names (emptiness is per name, not per arity in
// the surface syntax) to what is known about them. Absent = unknown.
type dbstate map[string]pstate

// passNeverCommit finds bodies that provably fail on every execution
// path: an emptiness test conjoined after a required insertion, or a
// query after a successful emptiness test, with nothing in between that
// could change the relation. A transaction whose body cannot succeed
// never commits, so the clause is dead weight that still burns prover
// budget at run time.
func (v *vetter) passNeverCommit() {
	for _, r := range v.prog.Rules {
		v.commitScan(r.Body, dbstate{}, nil, false)
	}
	for _, q := range v.prog.Queries {
		v.commitScan(q, dbstate{}, nil, false)
	}
}

// commitScan walks g left to right, updating st. hazard names relations a
// sibling concurrent branch updates (its interleaved ins/del can
// invalidate our knowledge between any two steps); muteAll is set when a
// sibling calls a derived predicate, which may update anything.
func (v *vetter) commitScan(g ast.Goal, st dbstate, hazard map[string]bool, muteAll bool) {
	switch g := g.(type) {
	case *ast.Lit:
		name := g.Atom.Pred
		switch g.Op {
		case ast.OpIns:
			st[name] = stNonEmpty
		case ast.OpDel:
			delete(st, name) // p may or may not still hold other tuples
		case ast.OpQuery:
			if st[name] == stEmpty && !muteAll && !hazard[name] {
				v.diag(g.Pos, SevWarning, LintNeverCommit,
					fmt.Sprintf("query %s follows a successful empty.%s with no intervening insertion; this body can never succeed", g, name),
					citeEntail)
			}
			st[name] = stNonEmpty
		case ast.OpCall:
			if ast.IsBuiltinName(name) {
				return
			}
			if v.derived[litKey(g.Atom)] {
				clear(st) // the called transaction may update anything
			} else {
				// Behaves as a base-relation query.
				if st[name] == stEmpty && !muteAll && !hazard[name] {
					v.diag(g.Pos, SevWarning, LintNeverCommit,
						fmt.Sprintf("query %s follows a successful empty.%s with no intervening insertion; this body can never succeed", g, name),
						citeEntail)
				}
				st[name] = stNonEmpty
			}
		}
	case *ast.Empty:
		if st[g.Pred] == stNonEmpty && !muteAll && !hazard[g.Pred] {
			v.diag(g.Pos, SevWarning, LintNeverCommit,
				fmt.Sprintf("empty.%s follows ins.%s with no intervening deletion; this body can never succeed", g.Pred, g.Pred),
				citeEntail)
		}
		st[g.Pred] = stEmpty
	case *ast.Seq:
		for _, sub := range g.Goals {
			v.commitScan(sub, st, hazard, muteAll)
		}
	case *ast.Conc:
		for i, sub := range g.Goals {
			sibHazard, sibMute := v.siblingUpdates(g.Goals, i)
			for k := range hazard {
				sibHazard[k] = true
			}
			v.commitScan(sub, dbstate{}, sibHazard, muteAll || sibMute)
		}
		clear(st) // branches updated in some interleaved order
	case *ast.Iso:
		// Isolation: the body runs atomically, so no sibling interleaving
		// can break sequential reasoning inside it.
		v.commitScan(g.Body, dbstate{}, nil, false)
		clear(st)
	}
}

// siblingUpdates collects the relation names every branch other than skip
// may update, and whether any such branch calls a derived predicate
// (which may update anything).
func (v *vetter) siblingUpdates(branches []ast.Goal, skip int) (map[string]bool, bool) {
	names := make(map[string]bool)
	muteAll := false
	for i, b := range branches {
		if i == skip {
			continue
		}
		ast.Walk(b, func(sub ast.Goal) bool {
			if l, ok := sub.(*ast.Lit); ok {
				switch l.Op {
				case ast.OpIns, ast.OpDel:
					names[l.Atom.Pred] = true
				case ast.OpCall:
					if v.derived[litKey(l.Atom)] {
						muteAll = true
					}
				}
			}
			return true
		})
	}
	return names, muteAll
}
