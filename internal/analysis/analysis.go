// Package analysis implements tdvet: a position-aware, multi-pass static
// analyzer for Transaction Datalog programs. Where internal/fragments
// classifies a whole program into one of the paper's complexity fragments,
// tdvet reports clause- and literal-granular diagnostics: which exact
// literal makes a rule unsafe, which call closes a recursion cycle under
// "|" (the feature that buys RE-completeness, Theorem 4.4), which clause
// can never commit.
//
// Diagnostics carry a source position, a severity, a stable lint ID usable
// in "% tdvet:ignore" suppression pragmas, and a one-line pointer into the
// paper where the lint's rationale lives. The same Report is surfaced by
// the cmd/tdvet CLI, by engine load-time validation (engine.Options.Vet),
// and by the server's VET protocol verb.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/fragments"
	"repro/internal/parser"
)

// Severity ranks diagnostics. Only SevError makes Report.Err non-nil; the
// CLI's -Werror flag promotes warnings for CI purposes without changing
// the report itself.
type Severity uint8

// Severities, least to most severe.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// MarshalJSON encodes the severity as its lowercase name, so wire payloads
// and -json output read "error" rather than 2.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the lowercase names produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("analysis: unknown severity %q", name)
	}
	return nil
}

// Lint IDs, stable across releases: they key golden tests, suppression
// pragmas, and downstream tooling.
const (
	// LintSafety: a variable may be unbound where an update or builtin
	// needs it ground (left-to-right sideways information passing).
	LintSafety = "safety"
	// LintUndefinedPred: a literal reads a predicate that has no rules, no
	// facts, and is never inserted — it can never succeed.
	LintUndefinedPred = "undefined-pred"
	// LintUnusedPred: a derived predicate is never called anywhere.
	LintUnusedPred = "unused-pred"
	// LintArity: one predicate name is used with several arities.
	LintArity = "arity"
	// LintUpdateDerived: ins/del targets a predicate defined by rules.
	LintUpdateDerived = "update-derived"
	// LintRecursionConc: a recursive call sits under concurrent
	// composition — the program leaves every decidable fragment.
	LintRecursionConc = "recursion-under-conc"
	// LintUnboundedUpdate: an update executes inside a recursive clause,
	// so the number of updates is not bounded by the goal.
	LintUnboundedUpdate = "unbounded-update"
	// LintDeadClause: a clause is unreachable from every ?- query.
	LintDeadClause = "dead-clause"
	// LintNeverCommit: a body provably fails on every execution path.
	LintNeverCommit = "never-commit"
	// LintFragment: the program-level fragment/complexity classification.
	LintFragment = "fragment"
	// LintPlan: an informational tdplan decision — a rule body was
	// reordered under some adornment. Suppressible like any lint.
	LintPlan = "plan"
)

// Diagnostic is one analyzer finding, anchored to a 1-based source
// position. Program-level diagnostics (the fragment classification) are
// anchored at 1:1.
type Diagnostic struct {
	Line int      `json:"line"`
	Col  int      `json:"col"`
	Sev  Severity `json:"severity"`
	ID   string   `json:"id"`
	Msg  string   `json:"message"`
	// Cite points at the paper result motivating the lint, e.g.
	// "Theorem 4.4: recursion through | is RE-complete".
	Cite string `json:"cite,omitempty"`
}

// String renders the diagnostic in the conventional compiler format:
//
//	3:5: error: recursive call to simulate/0 under '|' [recursion-under-conc] (Theorem 4.4)
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%d: %s: %s [%s]", d.Line, d.Col, d.Sev, d.Msg, d.ID)
	if d.Cite != "" {
		b.WriteString(" (")
		b.WriteString(d.Cite)
		b.WriteString(")")
	}
	return b.String()
}

// Report is the result of vetting one program.
type Report struct {
	// Diags holds the surviving diagnostics sorted by position then lint
	// ID. It includes the program-level fragment info diagnostic.
	Diags []Diagnostic `json:"diagnostics"`
	// Fragment is the paper-fragment name from internal/fragments
	// ("sequential TD", "full TD", ...).
	Fragment string `json:"fragment"`
	// Complexity is the data-complexity class the fragment implies.
	Complexity string `json:"complexity"`
	// Suppressed counts diagnostics dropped by tdvet:ignore pragmas.
	Suppressed int `json:"suppressed,omitempty"`
}

// Counts returns the number of error- and warning-severity diagnostics.
func (r *Report) Counts() (errs, warns int) {
	for _, d := range r.Diags {
		switch d.Sev {
		case SevError:
			errs++
		case SevWarning:
			warns++
		}
	}
	return errs, warns
}

// Err returns a *VetError when the report contains error-severity
// diagnostics, nil otherwise.
func (r *Report) Err() error {
	var errs []Diagnostic
	for _, d := range r.Diags {
		if d.Sev == SevError {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return &VetError{Diags: errs}
}

// VetError is the error form of a report with error-severity diagnostics,
// returned by Report.Err and by the engine when Options.Vet rejects a
// program at load time.
type VetError struct {
	Diags []Diagnostic // error-severity diagnostics only, in report order
}

func (e *VetError) Error() string {
	if len(e.Diags) == 1 {
		return "vet: " + e.Diags[0].String()
	}
	return fmt.Sprintf("vet: %s (and %d more errors)", e.Diags[0], len(e.Diags)-1)
}

// Vet runs every analysis pass over prog and returns the report. The
// program may come from the parser (positions and pragmas populated) or be
// built programmatically (zero positions; no suppression). Vet never
// mutates prog and runs no transactions — it is pure load-time analysis.
func Vet(prog *ast.Program) *Report {
	v := newVetter(prog)
	v.passSafety()
	v.passUndefined()
	v.passUnusedAndDead()
	v.passArity()
	v.passUpdateDerived()
	v.passRecursionUnderConc()
	v.passUnboundedUpdate()
	v.passNeverCommit()

	frep := fragments.Analyze(prog)
	rep := &Report{
		Fragment:   frep.Fragment.String(),
		Complexity: frep.Fragment.Complexity(),
	}
	v.diag(ast.Pos{Line: 1, Col: 1}, SevInfo, LintFragment,
		fmt.Sprintf("program is %s; data complexity: %s", frep.Fragment, frep.Fragment.Complexity()), "")

	rep.Diags, rep.Suppressed = applyPragmas(v.diags, prog.Pragmas)
	sort.SliceStable(rep.Diags, func(i, j int) bool {
		a, b := rep.Diags[i], rep.Diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.ID < b.ID
	})
	return rep
}

// VetSource parses src and vets the program. Parse errors are returned as
// is (they carry their own positions); the report is nil in that case.
func VetSource(src string) (*Report, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return Vet(prog), nil
}

// applyPragmas drops diagnostics suppressed by "% tdvet:ignore" comment
// directives. A pragma on line L suppresses matching diagnostics on line L
// (trailing pragma) and line L+1 (pragma on its own line above the
// offender). An empty ID list matches every lint.
func applyPragmas(diags []Diagnostic, pragmas []ast.Pragma) ([]Diagnostic, int) {
	if len(pragmas) == 0 {
		return diags, 0
	}
	byLine := make(map[int][]ast.Pragma, len(pragmas))
	for _, pr := range pragmas {
		byLine[pr.Line] = append(byLine[pr.Line], pr)
	}
	matches := func(pr ast.Pragma, id string) bool {
		if len(pr.IDs) == 0 {
			return true
		}
		for _, want := range pr.IDs {
			if want == id {
				return true
			}
		}
		return false
	}
	kept := diags[:0]
	suppressed := 0
	for _, d := range diags {
		drop := false
		for _, pr := range byLine[d.Line] {
			if matches(pr, d.ID) {
				drop = true
				break
			}
		}
		if !drop {
			for _, pr := range byLine[d.Line-1] {
				if matches(pr, d.ID) {
					drop = true
					break
				}
			}
		}
		if drop {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
