package analysis

import (
	"reflect"
	"testing"
)

// TestPlanSupportSets checks the base-relation support computation: direct
// queries, emptiness tests (bare predicate name), rule-less calls (which
// the engine evaluates as queries), and transitive closure through derived
// calls — including around a recursive cycle.
func TestPlanSupportSets(t *testing.T) {
	const src = `
a(X) :- base1(X), b(X).
b(X) :- base2(X, Y), empty.gate, c(Y).
c(X) :- orphan(X).
c(X) :- base3(X), c(X).
upd(X) :- base1(X), ins.log(X).
`
	rep, err := PlanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"a/1":   {"base1/1", "base2/2", "base3/1", "gate", "orphan/1"},
		"b/1":   {"base2/2", "base3/1", "gate", "orphan/1"},
		"c/1":   {"base3/1", "orphan/1"},
		"upd/1": {"base1/1"}, // update target is not a support entry
	}
	got := map[string][]string{}
	for _, pp := range rep.Predicates {
		got[pp.Pred] = pp.Support
	}
	for pred, sup := range want {
		if !reflect.DeepEqual(got[pred], sup) {
			t.Errorf("%s: support = %v, want %v", pred, got[pred], sup)
		}
	}
}
