package analysis

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// Adornment dataflow: propagate bound/free argument signatures from query
// entry points through the call graph, computing the set of binding
// patterns each derived predicate is invoked with. An adornment is a
// string over 'b'/'f', one character per argument position ("bf" means
// "first argument bound, second free" — written path^bf in the magic-sets
// literature). The planner reorders each rule body once per adornment its
// head is reachable with; the engine picks the variant matching the
// runtime groundness of the call's arguments.
//
// Propagation mirrors passSafety's left-to-right sideways information
// passing: a variable is bound if it occurs in a head position the
// adornment marks 'b', in an earlier query or call of the same sequence,
// or as an arithmetic output. Concurrent branches only see bindings made
// before the composition (interleaving order is not statically known).

// maxAdornments caps the binding patterns tracked per predicate. Programs
// that exceed it keep their first-discovered patterns (the worklist is
// deterministic); calls with an untracked pattern fall back to textual
// order at run time, which is always sound.
const maxAdornments = 16

// adornSet holds one predicate's binding patterns in discovery order
// (discovery order makes the cap deterministic).
type adornSet struct {
	seen map[string]bool
	list []string
}

func (s *adornSet) add(ad string) bool {
	if s.seen[ad] {
		return false
	}
	if len(s.list) >= maxAdornments {
		return false
	}
	if s.seen == nil {
		s.seen = make(map[string]bool)
	}
	s.seen[ad] = true
	s.list = append(s.list, ad)
	return true
}

// adornOf renders the binding pattern of a call's arguments against the
// current bound-variable set: constants and bound variables are 'b',
// everything else 'f'.
func adornOf(args []term.Term, bound varset) string {
	if len(args) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(args))
	for _, t := range args {
		if bound.has(t) {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// allBound returns the all-'b' adornment for the given arity.
func allBound(arity int) string { return strings.Repeat("b", arity) }

// boundPositions seeds a bound-variable set from the head arguments the
// adornment marks 'b'.
func boundPositions(head term.Atom, ad string) varset {
	bound := varset{}
	for i, t := range head.Args {
		if i < len(ad) && ad[i] == 'b' {
			bound.add(t)
		}
	}
	return bound
}

// adornWork is one worklist entry: propagate adornment ad through the
// bodies of pred's rules.
type adornWork struct {
	pred predKey
	ad   string
}

// adornments runs the interprocedural dataflow to a fixpoint and returns
// each derived predicate's binding patterns. Seeds are the ?- query goals
// (their calls are adorned against an initially empty binding set) plus
// the all-bound pattern for every derived predicate: the server's EXEC
// goals and the engine's Prove entry points take arbitrary, typically
// ground, goals, so the fully bound pattern is always live.
func (v *vetter) adornments() map[predKey]*adornSet {
	sets := make(map[predKey]*adornSet, len(v.nodes))
	var queue []adornWork
	push := func(k predKey, ad string) {
		s := sets[k]
		if s == nil {
			s = &adornSet{}
			sets[k] = s
		}
		if s.add(ad) {
			queue = append(queue, adornWork{pred: k, ad: ad})
		}
	}
	emit := func(k predKey, ad string) {
		if v.derived[k] {
			push(k, ad)
		}
	}
	for _, k := range v.nodes {
		push(k, allBound(k.arity))
	}
	for _, q := range v.prog.Queries {
		v.adornGoal(q, varset{}, emit)
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		for _, r := range v.prog.Rules {
			if litKey(r.Head) != w.pred {
				continue
			}
			v.adornGoal(r.Body, boundPositions(r.Head, w.ad), emit)
		}
	}
	return sets
}

// adornGoal scans g left to right, maintaining the bound-variable set the
// way passSafety does (queries and calls bind their arguments, arithmetic
// binds its output, eq binds both sides) and emitting the adornment of
// every call to a derived predicate at the moment it is reached.
func (v *vetter) adornGoal(g ast.Goal, bound varset, emit func(predKey, string)) {
	switch g := g.(type) {
	case *ast.Lit:
		if g.Op == ast.OpCall && ast.IsBuiltinName(g.Atom.Pred) {
			adornBuiltin(g.Atom.Pred, g.Atom.Args, bound)
			return
		}
		switch g.Op {
		case ast.OpCall:
			if k := litKey(g.Atom); v.derived[k] {
				emit(k, adornOf(g.Atom.Args, bound))
			}
			fallthrough
		case ast.OpQuery:
			for _, t := range g.Atom.Args {
				bound.add(t)
			}
		}
		// ins/del require ground arguments and bind nothing.
	case *ast.Builtin:
		adornBuiltin(g.Name, g.Args, bound)
	case *ast.Seq:
		for _, sub := range g.Goals {
			v.adornGoal(sub, bound, emit)
		}
	case *ast.Conc:
		after := bound.clone()
		for _, sub := range g.Goals {
			branch := bound.clone()
			v.adornGoal(sub, branch, emit)
			for k := range branch {
				after[k] = true
			}
		}
		for k := range after {
			bound[k] = true
		}
	case *ast.Iso:
		v.adornGoal(g.Body, bound, emit)
	}
}

// adornBuiltin applies a builtin's binding effect to bound, mirroring
// safeBuiltin without the diagnostics.
func adornBuiltin(name string, args []term.Term, bound varset) {
	if name == "eq" && len(args) == 2 {
		bound.add(args[0])
		bound.add(args[1])
		return
	}
	if isArith(name) && len(args) == 3 {
		bound.add(args[2])
	}
}
