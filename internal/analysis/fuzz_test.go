package analysis

import "testing"

// FuzzVet feeds arbitrary source through parse + vet: on any
// parser-accepted input the analyzer must not panic and every diagnostic
// must carry a valid 1-based position. The seeds mirror the parser's own
// fuzz corpus plus lint-triggering shapes.
func FuzzVet(f *testing.F) {
	seeds := []string{
		"",
		"p(a).",
		"r(X) :- p(X), del.p(X), ins.q(X).",
		"w :- a, (b | c), d.",
		"m :- iso(t1) | iso(t2).",
		"q :- empty.busy, X > 3, add(X, 1, Y).",
		"?- p(X), ins.q(X).",
		"% comment\np(a). /* block */ p(b).",
		`msg("string with \"escape\").`,
		"deep :- ((((a)))).",
		"neg(-5).",
		"r :- ins. p(a).",
		"x :- a | b | c | d | e.",
		":-",
		"p(",
		"ins.p",
		"p(a)q",
		// Lint-triggering shapes.
		"spin :- ins.tick | spin.\n?- spin.",
		"grow :- ins.node, grow, ins.edge.\n?- grow.",
		"bad(X) :- p(X), del.p(Y).\np(a).\n?- bad(a).",
		"oops :- ins.flag, empty.flag.\n?- oops.",
		"go :- nope(X), ins.log(X). % tdvet:ignore undefined-pred\n?- go.",
		"% tdvet:ignore\np(a, b).\np(a).\n?- p(X).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rep, err := VetSource(src)
		if err != nil {
			return // parse errors are the parser fuzzer's problem
		}
		if rep == nil {
			t.Fatal("nil report without error")
		}
		for _, d := range rep.Diags {
			if d.Line < 1 || d.Col < 1 {
				t.Errorf("diagnostic %q has invalid position %d:%d", d.ID, d.Line, d.Col)
			}
			if d.ID == "" || d.Msg == "" {
				t.Errorf("diagnostic with empty ID or message: %+v", d)
			}
		}
		if rep.Fragment == "" || rep.Complexity == "" {
			t.Errorf("report missing fragment classification: %+v", rep)
		}
	})
}
