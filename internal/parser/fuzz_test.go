package parser

import (
	"testing"
)

// FuzzParse checks that the parser never panics on arbitrary input and
// that accepted programs survive a print → reparse → print round trip
// (String is a fixed point after one normalization).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"p(a).",
		"r(X) :- p(X), del.p(X), ins.q(X).",
		"w :- a, (b | c), d.",
		"m :- iso(t1) | iso(t2).",
		"q :- empty.busy, X > 3, add(X, 1, Y).",
		"?- p(X), ins.q(X).",
		"% comment\np(a). /* block */ p(b).",
		`msg("string with \"escape\"").`,
		"deep :- ((((a)))).",
		"neg(-5).",
		"r :- ins. p(a).",
		"x :- a | b | c | d | e.",
		":-",
		"p(",
		"ins.p",
		"p(a)q",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if got := prog2.String(); got != printed {
			t.Fatalf("print not stable:\nfirst:  %q\nsecond: %q", printed, got)
		}
	})
}

// FuzzParseGoal: goals never panic and round-trip when accepted.
func FuzzParseGoal(f *testing.F) {
	for _, s := range []string{
		"p(X)",
		"a, b | c",
		"iso(p), del.q(X)",
		"X > 3",
		"true",
		"(",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, _, err := ParseGoal(src, 0)
		if err != nil {
			return
		}
		printed := g.String()
		g2, _, err := ParseGoal(printed, 1000)
		if err != nil {
			t.Fatalf("printed goal does not reparse: %v (%q -> %q)", err, src, printed)
		}
		if g2.String() != printed {
			t.Fatalf("goal print not stable: %q vs %q", printed, g2.String())
		}
	})
}
