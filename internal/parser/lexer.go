// Package parser implements the concrete syntax of Transaction Datalog:
// a Prolog-flavoured surface language with "," for sequential composition
// (the paper's ⊗), "|" for concurrent composition, iso(...) for the
// isolation modality ⊙, and the elementary-update prefixes ins.p, del.p and
// emptiness test empty.p.
//
//	tel(mary, 1234).                        % fact
//	r(X) :- p(X), del.p(X).                 % sequential rule
//	flow(W) :- task1(W) | task2(W).         % concurrent rule
//	main :- iso(t1) | iso(t2).              % isolated subtransactions
//	?- main.                                % query directive
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/ast"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF      tokKind = iota
	tokIdent            // lowercase-led identifier: predicate or symbol
	tokVar              // uppercase- or underscore-led identifier
	tokInt              // integer literal (possibly negative)
	tokString           // double-quoted string
	tokInsDot           // ins.<pred>  (text holds pred)
	tokDelDot           // del.<pred>
	tokEmptyDot         // empty.<pred>
	tokLParen           // (
	tokRParen           // )
	tokComma            // ,
	tokBar              // |
	tokDot              // statement-terminating .
	tokImplies          // :-
	tokQuery            // ?-
	tokOp               // comparison operator; text is canonical builtin name
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokInsDot:
		return "ins."
	case tokDelDot:
		return "del."
	case tokEmptyDot:
		return "empty."
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokBar:
		return "'|'"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokQuery:
		return "'?-'"
	case tokOp:
		return "operator"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	num  int64
	line int
	col  int
}

// Error is a parse or lex error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer turns input text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int

	// pragmas collects "tdvet:ignore" comment directives as they are
	// skipped; the parser copies them onto the Program for the analyzer.
	pragmas []ast.Pragma
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '%', c == '/' && lx.peekByteAt(1) == '/':
			line, start := lx.line, lx.pos
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
			lx.notePragma(lx.src[start:lx.pos], line)
		case c == '/' && lx.peekByteAt(1) == '*':
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

// pragmaMarker introduces a lint-suppression directive inside a line
// comment: "% tdvet:ignore" (all lints) or "% tdvet:ignore id ..." (the
// named lints only). See ast.Pragma for the suppression scope.
const pragmaMarker = "tdvet:ignore"

// notePragma records a tdvet:ignore directive found in the comment text.
func (lx *lexer) notePragma(comment string, line int) {
	i := strings.Index(comment, pragmaMarker)
	if i < 0 {
		return
	}
	var ids []string
	for _, f := range strings.Fields(comment[i+len(pragmaMarker):]) {
		if !isLintID(f) {
			break // prose after the directive, not a lint id
		}
		ids = append(ids, f)
	}
	lx.pragmas = append(lx.pragmas, ast.Pragma{Line: line, IDs: ids})
}

// isLintID matches analyzer lint identifiers: lowercase words with dashes.
func isLintID(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-') {
			return false
		}
	}
	return len(s) > 0 && s[0] >= 'a' && s[0] <= 'z'
}

func isIdentStart(c byte) bool { return c >= 'a' && c <= 'z' }

func isVarStart(c byte) bool { return (c >= 'A' && c <= 'Z') || c == '_' }

func isIdentPart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (lx *lexer) next() (token, *Error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		word := lx.src[start:lx.pos]
		// Recognize the update/test prefixes ins. del. empty. — the dot must
		// be immediately adjacent and followed by a predicate name.
		if (word == "ins" || word == "del" || word == "empty") &&
			lx.peekByte() == '.' && isIdentStart(lx.peekByteAt(1)) {
			lx.advance() // consume '.'
			pstart := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
				lx.advance()
			}
			pred := lx.src[pstart:lx.pos]
			kind := tokInsDot
			switch word {
			case "del":
				kind = tokDelDot
			case "empty":
				kind = tokEmptyDot
			}
			return token{kind: kind, text: pred, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: word, line: line, col: col}, nil
	case isVarStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		return token{kind: tokVar, text: lx.src[start:lx.pos], line: line, col: col}, nil
	case isDigit(c) || (c == '-' && isDigit(lx.peekByteAt(1))):
		neg := false
		if c == '-' {
			neg = true
			lx.advance()
		}
		var n int64
		for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
			n = n*10 + int64(lx.advance()-'0')
		}
		if neg {
			n = -n
		}
		return token{kind: tokInt, num: n, line: line, col: col}, nil
	case c == '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf(line, col, "unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return token{}, lx.errf(line, col, "unterminated string literal")
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(esc)
				default:
					return token{}, lx.errf(lx.line, lx.col, "unknown escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		return token{kind: tokString, text: b.String(), line: line, col: col}, nil
	}
	// Punctuation and operators.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case ":-":
		lx.advance()
		lx.advance()
		return token{kind: tokImplies, line: line, col: col}, nil
	case "?-":
		lx.advance()
		lx.advance()
		return token{kind: tokQuery, line: line, col: col}, nil
	case ">=":
		lx.advance()
		lx.advance()
		return token{kind: tokOp, text: "ge", line: line, col: col}, nil
	case "=<", "<=":
		lx.advance()
		lx.advance()
		return token{kind: tokOp, text: "le", line: line, col: col}, nil
	case "==":
		lx.advance()
		lx.advance()
		return token{kind: tokOp, text: "eq", line: line, col: col}, nil
	case "!=":
		lx.advance()
		lx.advance()
		return token{kind: tokOp, text: "neq", line: line, col: col}, nil
	case "\\=":
		lx.advance()
		lx.advance()
		return token{kind: tokOp, text: "neq", line: line, col: col}, nil
	}
	lx.advance()
	switch c {
	case '(':
		return token{kind: tokLParen, line: line, col: col}, nil
	case ')':
		return token{kind: tokRParen, line: line, col: col}, nil
	case ',':
		return token{kind: tokComma, line: line, col: col}, nil
	case '|':
		return token{kind: tokBar, line: line, col: col}, nil
	case '.':
		return token{kind: tokDot, line: line, col: col}, nil
	case '<':
		return token{kind: tokOp, text: "lt", line: line, col: col}, nil
	case '>':
		return token{kind: tokOp, text: "gt", line: line, col: col}, nil
	case '=':
		return token{kind: tokOp, text: "eq", line: line, col: col}, nil
	}
	if unicode.IsPrint(rune(c)) {
		return token{}, lx.errf(line, col, "unexpected character %q", c)
	}
	return token{}, lx.errf(line, col, "unexpected byte 0x%02x", c)
}
