package parser

import (
	"slices"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

func TestParseFacts(t *testing.T) {
	prog, err := Parse(`
		tel(mary, 1234).
		tel(bob, 5678).
		ready.
		msg("hello world").
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 4 {
		t.Fatalf("got %d facts, want 4", len(prog.Facts))
	}
	if prog.Facts[0].String() != "tel(mary, 1234)" {
		t.Errorf("fact 0 = %s", prog.Facts[0])
	}
	if prog.Facts[2].String() != "ready" {
		t.Errorf("fact 2 = %s", prog.Facts[2])
	}
	if prog.Facts[3].Args[0].StrVal() != "hello world" {
		t.Errorf("string fact = %v", prog.Facts[3])
	}
}

func TestParseRuleSequential(t *testing.T) {
	prog, err := Parse(`r(X) :- p(X), del.p(X), ins.q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("got %d rules", len(prog.Rules))
	}
	r := prog.Rules[0]
	if r.Head.String() != "r(X)" {
		t.Errorf("head = %s", r.Head)
	}
	seq, ok := r.Body.(*ast.Seq)
	if !ok {
		t.Fatalf("body is %T, want *Seq", r.Body)
	}
	if len(seq.Goals) != 3 {
		t.Fatalf("seq has %d goals", len(seq.Goals))
	}
	// p has no rules, so after Analyze the call resolves to a query.
	q := seq.Goals[0].(*ast.Lit)
	if q.Op != ast.OpQuery {
		t.Errorf("first literal op = %v, want query", q.Op)
	}
	d := seq.Goals[1].(*ast.Lit)
	if d.Op != ast.OpDel || d.Atom.Pred != "p" {
		t.Errorf("second literal = %v", d)
	}
	i := seq.Goals[2].(*ast.Lit)
	if i.Op != ast.OpIns || i.Atom.Pred != "q" {
		t.Errorf("third literal = %v", i)
	}
}

func TestParsePrecedenceBarLoosest(t *testing.T) {
	prog, err := Parse(`w :- a, b | c, d.`)
	if err != nil {
		t.Fatal(err)
	}
	conc, ok := prog.Rules[0].Body.(*ast.Conc)
	if !ok {
		t.Fatalf("body is %T, want *Conc", prog.Rules[0].Body)
	}
	if len(conc.Goals) != 2 {
		t.Fatalf("conc arity %d, want 2", len(conc.Goals))
	}
	for i, g := range conc.Goals {
		if _, ok := g.(*ast.Seq); !ok {
			t.Errorf("conc branch %d is %T, want *Seq", i, g)
		}
	}
}

func TestParseParensOverride(t *testing.T) {
	prog, err := Parse(`w :- a, (b | c), d.`)
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := prog.Rules[0].Body.(*ast.Seq)
	if !ok {
		t.Fatalf("body is %T, want *Seq", prog.Rules[0].Body)
	}
	if len(seq.Goals) != 3 {
		t.Fatalf("seq arity %d", len(seq.Goals))
	}
	if _, ok := seq.Goals[1].(*ast.Conc); !ok {
		t.Errorf("middle goal is %T, want *Conc", seq.Goals[1])
	}
}

func TestParseIso(t *testing.T) {
	prog, err := Parse(`m :- iso(a, b) | iso(c).`)
	if err != nil {
		t.Fatal(err)
	}
	conc := prog.Rules[0].Body.(*ast.Conc)
	iso0, ok := conc.Goals[0].(*ast.Iso)
	if !ok {
		t.Fatalf("branch 0 is %T", conc.Goals[0])
	}
	if _, ok := iso0.Body.(*ast.Seq); !ok {
		t.Errorf("iso body is %T, want *Seq", iso0.Body)
	}
}

func TestIsoAsPredicateName(t *testing.T) {
	// "iso" not followed by '(' is an ordinary atom.
	prog, err := Parse(`m :- iso.`)
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := prog.Rules[0].Body.(*ast.Lit)
	if !ok || lit.Atom.Pred != "iso" {
		t.Fatalf("body = %v (%T)", prog.Rules[0].Body, prog.Rules[0].Body)
	}
}

func TestParseEmptyTest(t *testing.T) {
	prog, err := Parse(`quiet :- empty.busy.`)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := prog.Rules[0].Body.(*ast.Empty)
	if !ok || e.Pred != "busy" {
		t.Fatalf("body = %v (%T)", prog.Rules[0].Body, prog.Rules[0].Body)
	}
}

func TestParseComparisonsAndArith(t *testing.T) {
	prog, err := Parse(`
		ok(B, A) :- B > A, B >= 0, A < 10, A =< 9, B != 3, sub(B, A, C), C = 1.
	`)
	if err != nil {
		t.Fatal(err)
	}
	seq := prog.Rules[0].Body.(*ast.Seq)
	wantNames := []string{"gt", "ge", "lt", "le", "neq", "sub", "eq"}
	if len(seq.Goals) != len(wantNames) {
		t.Fatalf("got %d goals, want %d", len(seq.Goals), len(wantNames))
	}
	for i, g := range seq.Goals {
		b, ok := g.(*ast.Builtin)
		if !ok {
			t.Fatalf("goal %d is %T, want *Builtin", i, g)
		}
		if b.Name != wantNames[i] {
			t.Errorf("goal %d name = %s, want %s", i, b.Name, wantNames[i])
		}
	}
}

func TestParseSymbolComparison(t *testing.T) {
	prog, err := Parse(`distinct(X) :- agent(X), X != bob.`)
	if err != nil {
		t.Fatal(err)
	}
	seq := prog.Rules[0].Body.(*ast.Seq)
	b := seq.Goals[1].(*ast.Builtin)
	if b.Name != "neq" || !b.Args[1].Equal(term.NewSym("bob")) {
		t.Fatalf("builtin = %v", b)
	}
}

func TestParseQueryDirective(t *testing.T) {
	prog, err := Parse(`
		p(a).
		?- p(X), ins.q(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Queries) != 1 {
		t.Fatalf("got %d queries", len(prog.Queries))
	}
	seq := prog.Queries[0].(*ast.Seq)
	if lit := seq.Goals[0].(*ast.Lit); lit.Op != ast.OpQuery {
		t.Errorf("query atom resolved to %v", lit.Op)
	}
}

func TestVariableScopePerClause(t *testing.T) {
	prog, err := Parse(`
		r1(X) :- p(X).
		r2(X) :- q(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	v1 := prog.Rules[0].Head.Args[0]
	v2 := prog.Rules[1].Head.Args[0]
	if v1.Equal(v2) {
		t.Fatal("X in different clauses must get different ids")
	}
	if prog.VarHigh < 2 {
		t.Fatalf("VarHigh = %d, want >= 2", prog.VarHigh)
	}
}

func TestUnderscoreAlwaysFresh(t *testing.T) {
	prog, err := Parse(`r :- p(_, _).`)
	if err != nil {
		t.Fatal(err)
	}
	lit := prog.Rules[0].Body.(*ast.Lit)
	if lit.Atom.Args[0].Equal(lit.Atom.Args[1]) {
		t.Fatal("two _ occurrences must be distinct variables")
	}
}

func TestSameVarSharedWithinClause(t *testing.T) {
	prog, err := Parse(`r(X) :- p(X), q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	head := prog.Rules[0].Head.Args[0]
	seq := prog.Rules[0].Body.(*ast.Seq)
	a := seq.Goals[0].(*ast.Lit).Atom.Args[0]
	b := seq.Goals[1].(*ast.Lit).Atom.Args[0]
	if !head.Equal(a) || !a.Equal(b) {
		t.Fatal("X occurrences within a clause must share an id")
	}
}

func TestComments(t *testing.T) {
	prog, err := Parse(`
		% line comment
		p(a). // another comment style
		/* block
		   comment */ p(b).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 2 {
		t.Fatalf("got %d facts, want 2", len(prog.Facts))
	}
}

func TestParseGoalStandalone(t *testing.T) {
	g, high, err := ParseGoal(`p(X), ins.q(X)`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if high != 101 {
		t.Errorf("high = %d, want 101", high)
	}
	seq, ok := g.(*ast.Seq)
	if !ok || len(seq.Goals) != 2 {
		t.Fatalf("goal = %v", g)
	}
	if id := seq.Goals[0].(*ast.Lit).Atom.Args[0].VarID(); id != 100 {
		t.Errorf("var id = %d, want 100", id)
	}
	// Trailing dot is accepted too.
	if _, _, err := ParseGoal(`p(a).`, 0); err != nil {
		t.Errorf("trailing dot rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`p(X).`, "must be ground"},
		{`p(a)`, "expected '.'"},
		{`:- p.`, "expected predicate name"},
		{`r :- .`, "expected a goal"},
		{`r :- (p.`, "expected ')'"},
		{`r :- p(a,).`, "expected a term"},
		{`r :- X.`, "expected comparison operator"},
		{`msg("unterminated).`, "unterminated string"},
		{`p(a)$`, "unexpected character"},
		{`lt(1,2) :- true.`, "builtin"},
		{`ins.lt(1,2).`, "expected predicate name"}, // ins.lt is a goal form, not a fact
		{`r :- ins.r2. r2 :- true. r :- ins.r2.`, ""},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if c.wantSub == "" {
			continue
		}
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestUpdateDerivedPredicateRejected(t *testing.T) {
	_, err := Parse(`
		r :- true.
		bad :- ins.r.
	`)
	if err == nil || !strings.Contains(err.Error(), "derived") {
		t.Fatalf("expected derived-update error, got %v", err)
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("p(a).\n  q(b)$.")
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}

	// Semantic errors in multi-line clause bodies must point at the
	// offending literal, not the clause head (regression: Analyze-time
	// errors used to carry no position at all).
	_, err = Parse("r2 :- true.\nr :- q(a),\n    ins.r2.")
	perr, ok = err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Line != 3 {
		t.Errorf("derived-update error line = %d, want 3 (the ins.r2 literal)", perr.Line)
	}
	if perr.Col != 5 {
		t.Errorf("derived-update error col = %d, want 5", perr.Col)
	}

	// Non-ground facts are reported at the fact's own head token.
	_, err = Parse("p(a).\n\nq(X).")
	perr, ok = err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Line != 3 || perr.Col != 1 {
		t.Errorf("non-ground fact error at %d:%d, want 3:1", perr.Line, perr.Col)
	}
}

func TestLiteralPositions(t *testing.T) {
	prog, err := Parse("p(a).\nr(X) :- p(X),\n    del.p(X), X > 0.\n?- r(a).")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(prog.Rules))
	}
	r := prog.Rules[0]
	if r.Pos != (ast.Pos{Line: 2, Col: 1}) {
		t.Errorf("rule head pos = %v, want 2:1", r.Pos)
	}
	if len(prog.FactPos) != 1 || prog.FactPos[0] != (ast.Pos{Line: 1, Col: 1}) {
		t.Errorf("fact pos = %v, want [1:1]", prog.FactPos)
	}
	seq, ok := r.Body.(*ast.Seq)
	if !ok {
		t.Fatalf("body type %T", r.Body)
	}
	wants := []ast.Pos{{Line: 2, Col: 9}, {Line: 3, Col: 5}, {Line: 3, Col: 15}}
	for i, g := range seq.Goals {
		var got ast.Pos
		switch g := g.(type) {
		case *ast.Lit:
			got = g.Pos
		case *ast.Builtin:
			got = g.Pos
		default:
			t.Fatalf("goal %d type %T", i, g)
		}
		if got != wants[i] {
			t.Errorf("literal %d pos = %v, want %v", i, got, wants[i])
		}
	}
}

func TestPragmaCollection(t *testing.T) {
	src := "p(a). % tdvet:ignore unused-pred\n" +
		"% tdvet:ignore\n" +
		"q(b).\n" +
		"// tdvet:ignore safety dead-clause (trailing prose)\n" +
		"% a plain comment\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []ast.Pragma{
		{Line: 1, IDs: []string{"unused-pred"}},
		{Line: 2, IDs: nil},
		{Line: 4, IDs: []string{"safety", "dead-clause"}},
	}
	if len(prog.Pragmas) != len(want) {
		t.Fatalf("pragmas = %+v, want %+v", prog.Pragmas, want)
	}
	for i, pr := range prog.Pragmas {
		if pr.Line != want[i].Line || !slices.Equal(pr.IDs, want[i].IDs) {
			t.Errorf("pragma %d = %+v, want %+v", i, pr, want[i])
		}
	}
}

func TestRoundTripThroughString(t *testing.T) {
	src := `
		account(alice, 100).
		withdraw(A, Amt) :- account(A, B), B >= Amt, del.account(A, B), sub(B, Amt, C), ins.account(A, C).
		transfer(A, B2, Amt) :- withdraw(A, Amt) , deposit(B2, Amt).
		deposit(A, Amt) :- account(A, B), del.account(A, B), add(B, Amt, C), ins.account(A, C).
		main :- iso(transfer(alice, bob, 10)) | iso(transfer(bob, alice, 5)).
	`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := p1.String()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\n%s", err, printed)
	}
	if p2.String() != printed {
		t.Errorf("print/parse/print not stable:\n%s\nvs\n%s", printed, p2.String())
	}
}

func TestInsDotRequiresAdjacency(t *testing.T) {
	// "ins . p" with spaces is NOT an insertion; it parses as atom ins then
	// a statement dot, then a fact p — legal but different.
	prog, err := Parse(`r :- ins. p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 || len(prog.Facts) != 1 {
		t.Fatalf("rules=%d facts=%d", len(prog.Rules), len(prog.Facts))
	}
	lit := prog.Rules[0].Body.(*ast.Lit)
	if lit.Atom.Pred != "ins" || lit.Op != ast.OpQuery {
		t.Fatalf("body = %v", lit)
	}
}

func TestNegativeIntegers(t *testing.T) {
	prog, err := Parse(`delta(-5).`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Facts[0].Args[0].IntVal() != -5 {
		t.Fatalf("fact = %v", prog.Facts[0])
	}
}

func TestQueriesSurviveRoundTrip(t *testing.T) {
	prog, err := Parse("p(a).\n?- p(X), ins.q(X).\n?- p(a) | p(a).\n")
	if err != nil {
		t.Fatal(err)
	}
	printed := prog.String()
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if len(prog2.Queries) != 2 {
		t.Fatalf("queries lost in round trip: %d\n%s", len(prog2.Queries), printed)
	}
	if prog2.String() != printed {
		t.Fatalf("not stable:\n%s\nvs\n%s", printed, prog2.String())
	}
}
