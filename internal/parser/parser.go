package parser

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/ast"
	"repro/internal/term"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lx   *lexer
	tok  token
	peek *token

	// vars maps variable names to ids, scoped per clause; "_" is always
	// fresh.
	vars    map[string]int64
	nextVar int64
}

// Parse parses a complete TD program (facts, rules, and ?- directives) and
// runs ast.Program.Analyze on the result.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lx: newLexer(src), vars: make(map[string]int64)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &ast.Program{}
	for p.tok.kind != tokEOF {
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
	prog.VarHigh = p.nextVar
	prog.Pragmas = p.lx.pragmas
	if err := prog.Analyze(); err != nil {
		var pe *ast.PosError
		if errors.As(err, &pe) && pe.Pos.IsValid() {
			return nil, &Error{Line: pe.Pos.Line, Col: pe.Pos.Col, Msg: pe.Msg}
		}
		return nil, err
	}
	return prog, nil
}

// ParseFile reads and parses path.
func ParseFile(path string) (*ast.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return prog, nil
}

// ParseGoal parses a standalone goal formula such as a transaction
// invocation typed at a REPL. Variable ids start at startVar so they do not
// collide with a previously parsed program; the returned high-water mark
// accounts for the goal's variables.
func ParseGoal(src string, startVar int64) (ast.Goal, int64, error) {
	p := &parser{lx: newLexer(src), vars: make(map[string]int64), nextVar: startVar}
	if err := p.advance(); err != nil {
		return nil, startVar, err
	}
	g, err := p.goal()
	if err != nil {
		return nil, startVar, err
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, startVar, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, startVar, p.errHere("unexpected %s after goal", p.tok.kind)
	}
	return g, p.nextVar, nil
}

// MustParse is Parse that panics on error; for tests and package examples.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// MustParseGoal is ParseGoal that panics on error.
func MustParseGoal(src string, startVar int64) ast.Goal {
	g, _, err := ParseGoal(src, startVar)
	if err != nil {
		panic(err)
	}
	return g
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errHere(format string, args ...any) *Error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) error {
	if p.tok.kind != k {
		return p.errHere("expected %s, found %s", k, p.tok.kind)
	}
	return p.advance()
}

// statement parses one clause:  fact. | head :- body. | ?- goal.
func (p *parser) statement(prog *ast.Program) error {
	// Variable scope is per clause.
	p.vars = make(map[string]int64)
	if p.tok.kind == tokQuery {
		if err := p.advance(); err != nil {
			return err
		}
		g, err := p.goal()
		if err != nil {
			return err
		}
		prog.Queries = append(prog.Queries, g)
		return p.expect(tokDot)
	}
	headPos := ast.Pos{Line: p.tok.line, Col: p.tok.col}
	head, err := p.atom()
	if err != nil {
		return err
	}
	switch p.tok.kind {
	case tokDot:
		if !head.IsGround() {
			return &Error{Line: headPos.Line, Col: headPos.Col,
				Msg: fmt.Sprintf("fact %s must be ground", head)}
		}
		prog.Facts = append(prog.Facts, head)
		prog.FactPos = append(prog.FactPos, headPos)
		return p.advance()
	case tokImplies:
		if err := p.advance(); err != nil {
			return err
		}
		body, err := p.goal()
		if err != nil {
			return err
		}
		prog.Rules = append(prog.Rules, ast.Rule{Head: head, Body: body, Pos: headPos})
		return p.expect(tokDot)
	default:
		return p.errHere("expected '.' or ':-' after %s, found %s", head, p.tok.kind)
	}
}

// goal := seqGoal ("|" seqGoal)*        — "|" binds loosest
func (p *parser) goal() (ast.Goal, error) {
	first, err := p.seqGoal()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokBar {
		return first, nil
	}
	goals := []ast.Goal{first}
	for p.tok.kind == tokBar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		g, err := p.seqGoal()
		if err != nil {
			return nil, err
		}
		goals = append(goals, g)
	}
	return ast.NewConc(goals...), nil
}

// seqGoal := unary ("," unary)*
func (p *parser) seqGoal() (ast.Goal, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokComma {
		return first, nil
	}
	goals := []ast.Goal{first}
	for p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		g, err := p.unary()
		if err != nil {
			return nil, err
		}
		goals = append(goals, g)
	}
	return ast.NewSeq(goals...), nil
}

// unary parses one operand of a composition. Every atomic node it builds
// carries the source position of its first token.
func (p *parser) unary() (ast.Goal, error) {
	pos := ast.Pos{Line: p.tok.line, Col: p.tok.col}
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		g, err := p.goal()
		if err != nil {
			return nil, err
		}
		return g, p.expect(tokRParen)
	case tokInsDot, tokDelDot:
		op := ast.OpIns
		if p.tok.kind == tokDelDot {
			op = ast.OpDel
		}
		pred := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		args, err := p.optionalArgs()
		if err != nil {
			return nil, err
		}
		return &ast.Lit{Op: op, Atom: term.Atom{Pred: pred, Args: args}, Pos: pos}, nil
	case tokEmptyDot:
		pred := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ast.Empty{Pred: pred, Pos: pos}, nil
	case tokIdent:
		if p.tok.text == "true" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return ast.True{}, nil
		}
		if p.tok.text == "iso" {
			nx, err := p.peekTok()
			if err != nil {
				return nil, err
			}
			if nx.kind == tokLParen {
				if err := p.advance(); err != nil { // over 'iso'
					return nil, err
				}
				if err := p.advance(); err != nil { // over '('
					return nil, err
				}
				body, err := p.goal()
				if err != nil {
					return nil, err
				}
				if err := p.expect(tokRParen); err != nil {
					return nil, err
				}
				return &ast.Iso{Body: body, Pos: pos}, nil
			}
		}
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		// A bare symbol followed by a comparison operator is the left side
		// of an infix builtin: amt > 0 etc.
		if p.tok.kind == tokOp && len(a.Args) == 0 {
			return p.comparison(term.NewSym(a.Pred), pos)
		}
		return &ast.Lit{Op: ast.OpCall, Atom: a, Pos: pos}, nil
	case tokVar, tokInt, tokString:
		left, err := p.simpleTerm()
		if err != nil {
			return nil, err
		}
		return p.comparison(left, pos)
	default:
		return nil, p.errHere("expected a goal, found %s", p.tok.kind)
	}
}

// comparison parses `left OP right` where OP was looked up in the lexer.
// pos is the position of the left operand, anchoring the whole comparison.
func (p *parser) comparison(left term.Term, pos ast.Pos) (ast.Goal, error) {
	if p.tok.kind != tokOp {
		return nil, p.errHere("expected comparison operator after %s, found %s", left, p.tok.kind)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.term()
	if err != nil {
		return nil, err
	}
	return &ast.Builtin{Name: name, Args: []term.Term{left, right}, Pos: pos}, nil
}

// atom := ident optionalArgs
func (p *parser) atom() (term.Atom, error) {
	if p.tok.kind != tokIdent {
		return term.Atom{}, p.errHere("expected predicate name, found %s", p.tok.kind)
	}
	pred := p.tok.text
	if err := p.advance(); err != nil {
		return term.Atom{}, err
	}
	args, err := p.optionalArgs()
	if err != nil {
		return term.Atom{}, err
	}
	return term.Atom{Pred: pred, Args: args}, nil
}

func (p *parser) optionalArgs() ([]term.Term, error) {
	if p.tok.kind != tokLParen {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var args []term.Term
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return args, p.expect(tokRParen)
}

// term := VAR | INT | STRING | ident
func (p *parser) term() (term.Term, error) {
	if p.tok.kind == tokIdent {
		t := term.NewSym(p.tok.text)
		return t, p.advance()
	}
	return p.simpleTerm()
}

func (p *parser) simpleTerm() (term.Term, error) {
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		var id int64
		if name == "_" {
			id = p.nextVar
			p.nextVar++
		} else if got, ok := p.vars[name]; ok {
			id = got
		} else {
			id = p.nextVar
			p.nextVar++
			p.vars[name] = id
		}
		t := term.NewVar(name, id)
		return t, p.advance()
	case tokInt:
		t := term.NewInt(p.tok.num)
		return t, p.advance()
	case tokString:
		t := term.NewStr(p.tok.text)
		return t, p.advance()
	default:
		return term.Term{}, p.errHere("expected a term, found %s", p.tok.kind)
	}
}
