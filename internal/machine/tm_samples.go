package machine

// Sample Turing machines for tests, examples, and benchmarks.

// TMAnBn recognizes { aⁿbⁿ | n ≥ 0 }: the classic context-free-but-not-
// regular language, decided by repeatedly crossing off one a and one b.
// Alphabet: a, b, marker x; accepts on a fully crossed-off tape.
func TMAnBn() *TM {
	m, err := NewTM("anbn", "seek_a", "acc", "rej", []TMRule{
		// seek_a: find the leftmost un-crossed a; if none, verify only x/blank remain.
		{State: "seek_a", Read: "a", Write: "x", Move: Right, Next: "seek_b"},
		{State: "seek_a", Read: "x", Write: "x", Move: Right, Next: "seek_a"},
		{State: "seek_a", Read: TMBlank, Write: TMBlank, Move: Stay, Next: "acc"},
		// b before any a ⇒ unmatched b: reject (no rule = reject).
		// seek_b: skip a's and x's to the first b, cross it off.
		{State: "seek_b", Read: "a", Write: "a", Move: Right, Next: "seek_b"},
		{State: "seek_b", Read: "x", Write: "x", Move: Right, Next: "seek_b"},
		{State: "seek_b", Read: "b", Write: "x", Move: Left, Next: "rewind"},
		// rewind: back to the left end.
		{State: "rewind", Read: "a", Write: "a", Move: Left, Next: "rewind"},
		{State: "rewind", Read: "x", Write: "x", Move: Left, Next: "rewind"},
		{State: "rewind", Read: TMBlank, Write: TMBlank, Move: Right, Next: "seek_a"},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// TMIncrement increments a binary number written LSB-first: flips trailing
// 1s to 0s, the first 0 (or a fresh blank) to 1. Always accepts; the
// result stays on the tape.
func TMIncrement() *TM {
	m, err := NewTM("increment", "carry", "acc", "rej", []TMRule{
		{State: "carry", Read: "one", Write: "zero", Move: Right, Next: "carry"},
		{State: "carry", Read: "zero", Write: "one", Move: Stay, Next: "acc"},
		{State: "carry", Read: TMBlank, Write: "one", Move: Stay, Next: "acc"},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// ABnWord returns aⁿbᵐ.
func ABnWord(nA, nB int) []string {
	w := make([]string, 0, nA+nB)
	for i := 0; i < nA; i++ {
		w = append(w, "a")
	}
	for i := 0; i < nB; i++ {
		w = append(w, "b")
	}
	return w
}

// BitsLSB renders v as an LSB-first binary word over {zero, one}.
func BitsLSB(v uint64) []string {
	if v == 0 {
		return []string{"zero"}
	}
	var w []string
	for ; v > 0; v >>= 1 {
		if v&1 == 1 {
			w = append(w, "one")
		} else {
			w = append(w, "zero")
		}
	}
	return w
}

// BitsValue parses an LSB-first binary word (ignoring trailing blanks).
func BitsValue(w []string) uint64 {
	var v uint64
	for i := len(w) - 1; i >= 0; i-- {
		switch w[i] {
		case "one":
			v = v<<1 | 1
		case "zero":
			v <<= 1
		}
	}
	return v
}
