package machine

import (
	"fmt"
	"strings"
)

// Compiled is a two-stack machine translated to Transaction Datalog.
//
// The translation realizes the proof of Theorem 4.4 / Corollary 4.6: the
// rulebase is purely sequential (no "|" in any rule body); concurrency
// enters only through the top-level goal
//
//	ctl_boot | stk1 | stk2
//
// Three processes run concurrently: the finite control and one process per
// stack. A stack process stores the stack contents in its recursion depth —
// each pushed symbol is held by a suspended activation of hold_i(V) — and
// the processes communicate exclusively through single-tuple database
// relations (push_i/1, pop_i/0, out_i/1, ack_i/0, halt/0), one process
// reading what another writes.
type Compiled struct {
	// RulesSrc is the TD rulebase in concrete syntax.
	RulesSrc string
	// GoalSrc invokes the machine; prove it after loading input facts.
	GoalSrc string
}

// identOK reports whether s is a valid lowercase TD identifier.
func identOK(s string) bool {
	if s == "" || !(s[0] >= 'a' && s[0] <= 'z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

// Compile translates m into TD. Machine labels and stack symbols must be
// valid lowercase identifiers.
func Compile(m *Machine) (*Compiled, error) {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	stackName := func(s StackID) string {
		if s == S1 {
			return "1"
		}
		return "2"
	}

	for _, in := range m.Instrs {
		if !identOK(in.Label) {
			return nil, fmt.Errorf("compile %s: label %q is not a valid identifier", m.Name, in.Label)
		}
	}

	w("%% Two-stack machine %s compiled to Transaction Datalog.\n", m.Name)
	w("%% Construction of Theorem 4.4 / Corollary 4.6: three concurrent\n")
	w("%% sequential processes; stacks live in recursion depth.\n\n")

	// Control boot: load the input word (database facts inp/2, succ/2,
	// lastinp/1) onto stack 1, last symbol first, so that the first input
	// symbol ends on top. Then start the finite control.
	w("ctl_boot :- lastinp(N), load(N).\n")
	w("load(0) :- c_%s.\n", m.Start)
	w("load(I) :- inp(I, S), ins.push1(S), ack1, del.ack1, succ(J, I), load(J).\n\n")

	// Stack processes.
	for _, i := range []string{"1", "2"} {
		w("stk%[1]s :- push%[1]s(V), del.push%[1]s(V), ins.ack%[1]s, hold%[1]s(V), stk%[1]s.\n", i)
		w("stk%[1]s :- pop%[1]s, del.pop%[1]s, ins.out%[1]s(%[2]s), stk%[1]s.\n", i, Bottom)
		w("stk%[1]s :- halt.\n", i)
		w("hold%[1]s(V) :- push%[1]s(W), del.push%[1]s(W), ins.ack%[1]s, hold%[1]s(W), hold%[1]s(V).\n", i)
		w("hold%[1]s(V) :- pop%[1]s, del.pop%[1]s, ins.out%[1]s(V).\n", i)
		w("hold%[1]s(V) :- halt.\n\n", i)
	}

	// Finite control: one predicate per instruction label.
	for _, in := range m.Instrs {
		switch in.Kind {
		case IPush:
			if !identOK(in.Sym) {
				return nil, fmt.Errorf("compile %s: symbol %q is not a valid identifier", m.Name, in.Sym)
			}
			s := stackName(in.Stack)
			w("c_%s :- ins.push%s(%s), ack%s, del.ack%s, c_%s.\n", in.Label, s, in.Sym, s, s, in.Next)
		case IPop:
			s := stackName(in.Stack)
			w("c_%s :- ins.pop%s, out%s(V), del.out%s(V), br_%s(V).\n", in.Label, s, s, s, in.Label)
			for _, kv := range sortedBranchList(in.Branch) {
				if kv.sym != Bottom && !identOK(kv.sym) {
					return nil, fmt.Errorf("compile %s: branch symbol %q invalid", m.Name, kv.sym)
				}
				w("br_%s(%s) :- c_%s.\n", in.Label, kv.sym, kv.target)
			}
		case IAccept:
			w("c_%s :- ins.halt.\n", in.Label)
		case IReject:
			// "never" is a base predicate with no facts: the call fails,
			// rejecting this execution path.
			w("c_%s :- never(x).\n", in.Label)
		}
	}
	w("\nrun :- ctl_boot | stk1 | stk2.\n")
	return &Compiled{RulesSrc: b.String(), GoalSrc: "run"}, nil
}

type branchKV struct{ sym, target string }

func sortedBranchList(m map[string]string) []branchKV {
	out := make([]branchKV, 0, len(m))
	for s, t := range m {
		out = append(out, branchKV{s, t})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].sym < out[j-1].sym; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// InputFacts renders the database encoding of an input word: inp(i, sym)
// with 1-based positions, succ(i-1, i), and lastinp(n). The word is what a
// data-complexity experiment varies while the program stays fixed.
func InputFacts(input []string) (string, error) {
	var b strings.Builder
	for i, sym := range input {
		if !identOK(sym) || sym == Bottom {
			return "", fmt.Errorf("input symbol %q is not a valid identifier", sym)
		}
		fmt.Fprintf(&b, "inp(%d, %s).\n", i+1, sym)
		fmt.Fprintf(&b, "succ(%d, %d).\n", i, i+1)
	}
	fmt.Fprintf(&b, "lastinp(%d).\n", len(input))
	return b.String(), nil
}

// Source returns the complete TD program text for machine m on input.
func Source(m *Machine, input []string) (src, goal string, err error) {
	c, err := Compile(m)
	if err != nil {
		return "", "", err
	}
	facts, err := InputFacts(input)
	if err != nil {
		return "", "", err
	}
	return c.RulesSrc + "\n" + facts, c.GoalSrc, nil
}
