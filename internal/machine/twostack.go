// Package machine builds runnable versions of the constructions behind the
// paper's complexity theorems:
//
//   - a two-stack machine model (Turing-complete; Hopcroft & Ullman [52])
//     with a direct Go simulator, and a compiler from two-stack machines to
//     Transaction Datalog programs of exactly three concurrent sequential
//     processes — the construction of Theorem 4.4 / Corollary 4.6, where
//     two recursive processes encode the stacks in their recursion depth
//     and a third encodes the finite control, all communicating through
//     the database;
//   - a QBF evaluator compiled to a *fixed* sequential TD program with the
//     formula supplied as data — the recursion ⊗ sequencing interaction
//     behind Theorem 4.5 (sequential TD is EXPTIME-complete via alternating
//     PSPACE machines); and
//   - a SAT checker compiled to a fixed *fully bounded* TD program (tail
//     recursion only), the guess-and-check shape of Section 5's practical
//     fragment.
package machine

import (
	"errors"
	"fmt"
)

// StackID selects one of the machine's two stacks.
type StackID uint8

// The two stacks.
const (
	S1 StackID = iota
	S2
)

func (s StackID) String() string {
	if s == S1 {
		return "s1"
	}
	return "s2"
}

// Bottom is the reserved symbol reported when popping an empty stack.
// It may not be pushed.
const Bottom = "zzbottom"

// InstrKind discriminates instruction types.
type InstrKind uint8

// Instruction kinds.
const (
	// IPush pushes Sym onto Stack and jumps to Next.
	IPush InstrKind = iota
	// IPop pops Stack and jumps to Branch[sym]; popping an empty stack
	// jumps to Branch[Bottom]. A missing branch rejects.
	IPop
	// IAccept halts and accepts.
	IAccept
	// IReject halts and rejects.
	IReject
)

// Instr is one machine instruction, identified by Label.
type Instr struct {
	Label  string
	Kind   InstrKind
	Stack  StackID
	Sym    string            // IPush: symbol to push
	Next   string            // IPush: jump target
	Branch map[string]string // IPop: popped symbol -> label
}

// Machine is a two-stack program: a finite control over two unbounded
// stacks. The input word is pre-loaded onto stack 1 with the first input
// symbol on top.
type Machine struct {
	Name    string
	Start   string
	Instrs  []Instr
	byLabel map[string]*Instr
}

// NewMachine builds a machine and validates it: labels must be unique,
// jump targets defined, and Bottom must not be pushed.
func NewMachine(name, start string, instrs []Instr) (*Machine, error) {
	m := &Machine{Name: name, Start: start, Instrs: instrs, byLabel: make(map[string]*Instr)}
	for i := range instrs {
		in := &instrs[i]
		if in.Label == "" {
			return nil, fmt.Errorf("machine %s: instruction %d has empty label", name, i)
		}
		if _, dup := m.byLabel[in.Label]; dup {
			return nil, fmt.Errorf("machine %s: duplicate label %s", name, in.Label)
		}
		m.byLabel[in.Label] = in
	}
	check := func(target, at string) error {
		if _, ok := m.byLabel[target]; !ok {
			return fmt.Errorf("machine %s: undefined label %s (referenced at %s)", name, target, at)
		}
		return nil
	}
	if err := check(start, "start"); err != nil {
		return nil, err
	}
	for i := range instrs {
		in := &instrs[i]
		switch in.Kind {
		case IPush:
			if in.Sym == Bottom || in.Sym == "" {
				return nil, fmt.Errorf("machine %s: %s pushes reserved/empty symbol %q", name, in.Label, in.Sym)
			}
			if err := check(in.Next, in.Label); err != nil {
				return nil, err
			}
		case IPop:
			if len(in.Branch) == 0 {
				return nil, fmt.Errorf("machine %s: %s pops with no branches", name, in.Label)
			}
			for sym, target := range in.Branch {
				if sym == "" {
					return nil, fmt.Errorf("machine %s: %s branches on empty symbol", name, in.Label)
				}
				if err := check(target, in.Label); err != nil {
					return nil, err
				}
			}
		case IAccept, IReject:
		default:
			return nil, fmt.Errorf("machine %s: %s has unknown kind %d", name, in.Label, in.Kind)
		}
	}
	return m, nil
}

// RunResult reports a simulation outcome.
type RunResult struct {
	Accepted bool
	Steps    int
	// Final stack contents, bottom first.
	Stack1, Stack2 []string
}

// ErrStepLimit is returned when the simulator exceeds its step budget
// (two-stack machines need not halt).
var ErrStepLimit = errors.New("machine: step limit exceeded")

// Run simulates the machine on input (pre-loaded onto stack 1 with
// input[0] on top), for at most maxSteps steps.
func (m *Machine) Run(input []string, maxSteps int) (*RunResult, error) {
	var s1, s2 []string // top = last element
	for i := len(input) - 1; i >= 0; i-- {
		s1 = append(s1, input[i])
	}
	pc := m.Start
	res := &RunResult{}
	for {
		if res.Steps >= maxSteps {
			return nil, ErrStepLimit
		}
		res.Steps++
		in := m.byLabel[pc]
		switch in.Kind {
		case IPush:
			if in.Stack == S1 {
				s1 = append(s1, in.Sym)
			} else {
				s2 = append(s2, in.Sym)
			}
			pc = in.Next
		case IPop:
			var sym string
			if in.Stack == S1 {
				if len(s1) == 0 {
					sym = Bottom
				} else {
					sym = s1[len(s1)-1]
					s1 = s1[:len(s1)-1]
				}
			} else {
				if len(s2) == 0 {
					sym = Bottom
				} else {
					sym = s2[len(s2)-1]
					s2 = s2[:len(s2)-1]
				}
			}
			target, ok := in.Branch[sym]
			if !ok {
				res.Accepted = false
				res.Stack1, res.Stack2 = s1, s2
				return res, nil
			}
			pc = target
		case IAccept:
			res.Accepted = true
			res.Stack1, res.Stack2 = s1, s2
			return res, nil
		case IReject:
			res.Accepted = false
			res.Stack1, res.Stack2 = s1, s2
			return res, nil
		}
	}
}
