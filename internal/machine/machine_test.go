package machine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/fragments"
	"repro/internal/parser"
)

// --- Two-stack machine model -------------------------------------------------

func TestParitySimulator(t *testing.T) {
	m := Parity()
	for n := 0; n <= 8; n++ {
		res, err := m.Run(Ones(n), 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != (n%2 == 0) {
			t.Errorf("parity(%d) = %v", n, res.Accepted)
		}
	}
}

func TestDyckSimulator(t *testing.T) {
	cases := []struct {
		w    []string
		want bool
	}{
		{nil, true},
		{[]string{"l", "r"}, true},
		{[]string{"l", "l", "r", "r"}, true},
		{[]string{"l", "r", "l", "r"}, true},
		{[]string{"r", "l"}, false},
		{[]string{"l"}, false},
		{[]string{"l", "r", "r"}, false},
		{Nested(5), true},
		{Alternating(5), true},
	}
	m := Dyck()
	for _, c := range cases {
		res, err := m.Run(c.w, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != c.want {
			t.Errorf("dyck(%v) = %v, want %v", c.w, res.Accepted, c.want)
		}
	}
}

func TestCopySimulatorReverses(t *testing.T) {
	m := Copy()
	res, err := m.Run([]string{"a", "b", "b"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("copy rejected")
	}
	// Stack 2 holds the input with the first symbol pushed first: reading
	// bottom-to-top gives the original order a b b.
	want := []string{"a", "b", "b"}
	if len(res.Stack2) != len(want) {
		t.Fatalf("stack2 = %v", res.Stack2)
	}
	for i := range want {
		if res.Stack2[i] != want[i] {
			t.Fatalf("stack2 = %v, want %v", res.Stack2, want)
		}
	}
}

func TestDivergeHitsStepLimit(t *testing.T) {
	if _, err := Diverge().Run(nil, 100); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestMachineValidation(t *testing.T) {
	bad := []struct {
		name   string
		start  string
		instrs []Instr
	}{
		{"undefined start", "nowhere", []Instr{{Label: "a", Kind: IAccept}}},
		{"dup label", "a", []Instr{{Label: "a", Kind: IAccept}, {Label: "a", Kind: IReject}}},
		{"push bottom", "a", []Instr{{Label: "a", Kind: IPush, Stack: S1, Sym: Bottom, Next: "a"}}},
		{"bad target", "a", []Instr{{Label: "a", Kind: IPush, Stack: S1, Sym: "x", Next: "b"}}},
		{"empty branch", "a", []Instr{{Label: "a", Kind: IPop, Stack: S1}}},
	}
	for _, c := range bad {
		if _, err := NewMachine(c.name, c.start, c.instrs); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

// --- Compilation to TD: the Theorem 4.4 construction ---------------------------

// proveTD compiles m, loads input, and proves the run goal.
func proveTD(t *testing.T, m *Machine, input []string, maxSteps int64) bool {
	t.Helper()
	src, goalSrc, err := Source(m, input)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	goal, _, err := parser.ParseGoal(goalSrc, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{MaxSteps: maxSteps, LoopCheck: true, Table: true}
	res, err := engine.New(prog, opts).Prove(goal, d)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	return res.Success
}

func TestCompiledParityMatchesSimulator(t *testing.T) {
	m := Parity()
	for n := 0; n <= 6; n++ {
		want := n%2 == 0
		if got := proveTD(t, m, Ones(n), 3_000_000); got != want {
			t.Errorf("TD parity(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestCompiledDyckMatchesSimulator(t *testing.T) {
	m := Dyck()
	cases := [][]string{
		nil,
		{"l", "r"},
		{"r"},
		{"l"},
		{"l", "l", "r", "r"},
		{"l", "r", "r"},
		Nested(3),
		Alternating(3),
	}
	for _, w := range cases {
		sim, err := m.Run(w, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if got := proveTD(t, m, w, 5_000_000); got != sim.Accepted {
			t.Errorf("TD dyck(%v) = %v, simulator %v", w, got, sim.Accepted)
		}
	}
}

func TestCompiledCopyDeepStacks(t *testing.T) {
	if !proveTD(t, Copy(), ABWord(10), 5_000_000) {
		t.Fatal("TD copy rejected")
	}
}

// Property: on random Dyck-alphabet words, the TD compilation agrees with
// the direct simulator.
func TestCompiledDyckAgreesRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := Dyck()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		w := make([]string, n)
		for i := range w {
			if r.Intn(2) == 0 {
				w[i] = "l"
			} else {
				w[i] = "r"
			}
		}
		sim, err := m.Run(w, 100000)
		if err != nil {
			return false
		}
		src, goalSrc, err := Source(m, w)
		if err != nil {
			return false
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		goal, _, _ := parser.ParseGoal(goalSrc, prog.VarHigh)
		d, _ := db.FromFacts(prog.Facts)
		res, err := engine.New(prog, engine.Options{MaxSteps: 5_000_000, LoopCheck: true, Table: true}).Prove(goal, d)
		if err != nil {
			return false
		}
		return res.Success == sim.Accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledProgramIsCorollary46Shape(t *testing.T) {
	// The generated rulebase must be sequential except for the single run
	// rule composing three processes; recursion must be non-tail (stacks).
	c, err := Compile(Dyck())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(c.RulesSrc)
	if err != nil {
		t.Fatal(err)
	}
	r := fragments.Analyze(prog)
	if r.Fragment != fragments.Full {
		t.Fatalf("fragment = %v, want Full", r.Fragment)
	}
	if !r.Features.Recursive || r.Features.TailOnlyRecursion {
		t.Fatalf("stack recursion shape wrong: %+v", r.Features)
	}
}

func TestCompileRejectsBadSymbols(t *testing.T) {
	m, err := NewMachine("bad", "s", []Instr{
		{Label: "s", Kind: IPush, Stack: S1, Sym: "Bad_Sym", Next: "s"},
	})
	if err == nil {
		if _, err := Compile(m); err == nil {
			t.Fatal("compile accepted invalid symbol")
		}
	}
}

func TestInputFactsRejectBadSymbols(t *testing.T) {
	if _, err := InputFacts([]string{"OK"}); err == nil {
		t.Fatal("uppercase symbol accepted")
	}
	if _, err := InputFacts([]string{Bottom}); err == nil {
		t.Fatal("bottom marker accepted as input")
	}
}

// --- QBF -----------------------------------------------------------------------

func TestQBFEvalOracle(t *testing.T) {
	// ∃x (x) — true.
	q1 := &QBF{Prefix: []Quant{Exists}, Clauses: [][]Lit{{{Var: 1}}}}
	if !q1.Eval() {
		t.Error("∃x.x should be true")
	}
	// ∀x (x) — false.
	q2 := &QBF{Prefix: []Quant{Forall}, Clauses: [][]Lit{{{Var: 1}}}}
	if q2.Eval() {
		t.Error("∀x.x should be false")
	}
	// ∀x∃y (x↔y) — true.
	if !AlternatingQBF(1).Eval() {
		t.Error("∀x∃y x↔y should be true")
	}
	// ∀x∀y (x∨y) — false.
	q4 := &QBF{Prefix: []Quant{Forall, Forall}, Clauses: [][]Lit{{{Var: 1}, {Var: 2}}}}
	if q4.Eval() {
		t.Error("∀x∀y x∨y should be false")
	}
	// Empty matrix is true; empty clause is false.
	q5 := &QBF{Prefix: []Quant{Forall}}
	if !q5.Eval() {
		t.Error("empty matrix should be true")
	}
	q6 := &QBF{Prefix: []Quant{Exists}, Clauses: [][]Lit{{}}}
	if q6.Eval() {
		t.Error("empty clause should be false")
	}
}

func proveQBF(t *testing.T, q *QBF) bool {
	t.Helper()
	facts, err := QBFFacts(q)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(QBFRules + facts)
	if err != nil {
		t.Fatal(err)
	}
	goal, _, _ := parser.ParseGoal(QBFGoal, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := engine.New(prog, engine.Options{MaxSteps: 20_000_000, LoopCheck: true, Table: true}).Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	return res.Success
}

func TestQBFTDMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		q := RandomQBF(rng, 2+rng.Intn(3), 1+rng.Intn(4), 2, 0.5)
		want := q.Eval()
		if got := proveQBF(t, q); got != want {
			facts, _ := QBFFacts(q)
			t.Fatalf("case %d: TD=%v oracle=%v\n%s", i, got, want, facts)
		}
	}
}

func TestQBFAlternatingFamilyTrue(t *testing.T) {
	for k := 1; k <= 3; k++ {
		if !AlternatingQBF(k).Eval() {
			t.Fatalf("AlternatingQBF(%d) oracle false", k)
		}
		if !proveQBF(t, AlternatingQBF(k)) {
			t.Fatalf("AlternatingQBF(%d) TD false", k)
		}
	}
}

func TestQBFRulesAreSequentialFragment(t *testing.T) {
	prog, err := parser.Parse(QBFRules)
	if err != nil {
		t.Fatal(err)
	}
	r := fragments.Analyze(prog)
	if r.Fragment != fragments.Sequential {
		t.Fatalf("QBF program fragment = %v, want Sequential (features %+v)", r.Fragment, r.Features)
	}
	if r.Features.UsesConcurrency {
		t.Fatal("QBF program must not use |")
	}
}

// --- SAT -----------------------------------------------------------------------

func TestSATBruteForce(t *testing.T) {
	c := &CNF{N: 2, Clauses: [][]Lit{
		{{Var: 1}}, {{Var: 1, Neg: true}, {Var: 2}},
	}}
	asg, ok := c.BruteForce()
	if !ok || !asg[1] || !asg[2] {
		t.Fatalf("brute force: %v %v", asg, ok)
	}
	uns := &CNF{N: 1, Clauses: [][]Lit{{{Var: 1}}, {{Var: 1, Neg: true}}}}
	if _, ok := uns.BruteForce(); ok {
		t.Fatal("x ∧ ¬x declared satisfiable")
	}
}

func proveSAT(t *testing.T, c *CNF) bool {
	t.Helper()
	facts, err := SATFacts(c)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(SATRules + facts)
	if err != nil {
		t.Fatal(err)
	}
	goal, _, _ := parser.ParseGoal(SATGoal, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res, err := engine.New(prog, engine.Options{MaxSteps: 20_000_000, LoopCheck: true, Table: true}).Prove(goal, d)
	if err != nil {
		t.Fatal(err)
	}
	return res.Success
}

func TestSATTDMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		c := RandomCNF(rng, 2+rng.Intn(4), 1+rng.Intn(6), 2)
		_, want := c.BruteForce()
		if got := proveSAT(t, c); got != want {
			facts, _ := SATFacts(c)
			t.Fatalf("case %d: TD=%v oracle=%v\n%s", i, got, want, facts)
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	c := PigeonholeCNF(2)
	if _, ok := c.BruteForce(); ok {
		t.Fatal("pigeonhole(2) satisfiable?!")
	}
	if proveSAT(t, c) {
		t.Fatal("TD satisfied pigeonhole(2)")
	}
}

func TestSATRulesAreFullyBounded(t *testing.T) {
	prog, err := parser.Parse(SATRules)
	if err != nil {
		t.Fatal(err)
	}
	r := fragments.Analyze(prog)
	if r.Fragment != fragments.FullyBounded && r.Fragment != fragments.InsOnly {
		t.Fatalf("SAT program fragment = %v, want FullyBounded or InsOnly (features %+v)", r.Fragment, r.Features)
	}
	if !r.Features.TailOnlyRecursion {
		t.Fatalf("SAT program must be tail-recursive only: %+v", r.Features)
	}
}

func TestValidationErrors(t *testing.T) {
	q := &QBF{Prefix: []Quant{Exists}, Clauses: [][]Lit{{{Var: 9}}}}
	if _, err := QBFFacts(q); err == nil {
		t.Error("QBFFacts accepted out-of-range variable")
	}
	c := &CNF{N: 1, Clauses: [][]Lit{{{Var: 0}}}}
	if _, err := SATFacts(c); err == nil {
		t.Error("SATFacts accepted out-of-range variable")
	}
}
