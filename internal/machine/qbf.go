package machine

import (
	"fmt"
	"math/rand"
	"strings"
)

// Quant is a quantifier.
type Quant uint8

// Quantifiers.
const (
	Exists Quant = iota
	Forall
)

// Lit is a literal over variable Var (1-based index into the prefix).
type Lit struct {
	Var int
	Neg bool
}

// QBF is a quantified boolean formula in prenex CNF: the i-th prefix entry
// quantifies variable i; the matrix is a conjunction of clauses.
type QBF struct {
	Prefix  []Quant
	Clauses [][]Lit
}

// Validate checks variable indexes.
func (q *QBF) Validate() error {
	n := len(q.Prefix)
	for ci, c := range q.Clauses {
		for _, l := range c {
			if l.Var < 1 || l.Var > n {
				return fmt.Errorf("qbf: clause %d references variable %d outside 1..%d", ci, l.Var, n)
			}
		}
	}
	return nil
}

// Eval decides the formula by direct recursion — the ground-truth oracle
// for the TD encoding. Exponential in the prefix length, as expected.
func (q *QBF) Eval() bool {
	asg := make([]bool, len(q.Prefix)+1)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i > len(q.Prefix) {
			return q.matrix(asg)
		}
		switch q.Prefix[i-1] {
		case Exists:
			asg[i] = true
			if rec(i + 1) {
				return true
			}
			asg[i] = false
			return rec(i + 1)
		default: // Forall
			asg[i] = true
			if !rec(i + 1) {
				return false
			}
			asg[i] = false
			return rec(i + 1)
		}
	}
	return rec(1)
}

func (q *QBF) matrix(asg []bool) bool {
	for _, c := range q.Clauses {
		sat := false
		for _, l := range c {
			if asg[l.Var] != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// QBFRules is the *fixed* sequential TD program that evaluates any
// QBF supplied as database facts (see QBFFacts). This is the Theorem 4.5
// workload: no concurrent composition anywhere, but recursion ⊗ sequential
// composition gives alternation — the universal rule runs the remaining
// game twice, once per truth value, against the updated database.
//
// Relations: qex(i)/qall(i) mark quantifiers; succv(i, i+1) and
// nomorevars(n+1) walk the prefix; lit(c, x, s) with s ∈ {t, f} encodes the
// matrix; succc(c, c+1) and nomoreclauses(m+1) walk the clauses; asg(x, s)
// is the working assignment.
const QBFRules = `
qeval(I) :- nomorevars(I), ccheck(1).
qeval(I) :- qex(I), ins.asg(I, t), succv(I, J), qeval(J), del.asg(I, t).
qeval(I) :- qex(I), ins.asg(I, f), succv(I, J), qeval(J), del.asg(I, f).
qeval(I) :- qall(I), ins.asg(I, t), succv(I, J), qeval(J), del.asg(I, t),
            ins.asg(I, f), qeval(J), del.asg(I, f).
ccheck(C) :- nomoreclauses(C).
ccheck(C) :- lit(C, X, S), asg(X, S), succc(C, D), ccheck(D).
qbf :- qeval(1).
`

// QBFGoal proves the formula encoded in the database.
const QBFGoal = "qbf"

// QBFFacts renders q as database facts for QBFRules.
func QBFFacts(q *QBF) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	for i, qu := range q.Prefix {
		if qu == Exists {
			fmt.Fprintf(&b, "qex(%d).\n", i+1)
		} else {
			fmt.Fprintf(&b, "qall(%d).\n", i+1)
		}
		fmt.Fprintf(&b, "succv(%d, %d).\n", i+1, i+2)
	}
	fmt.Fprintf(&b, "nomorevars(%d).\n", len(q.Prefix)+1)
	for ci, c := range q.Clauses {
		for _, l := range c {
			s := "t"
			if l.Neg {
				s = "f"
			}
			fmt.Fprintf(&b, "lit(%d, %d, %s).\n", ci+1, l.Var, s)
		}
		fmt.Fprintf(&b, "succc(%d, %d).\n", ci+1, ci+2)
	}
	fmt.Fprintf(&b, "nomoreclauses(%d).\n", len(q.Clauses)+1)
	return b.String(), nil
}

// AlternatingQBF builds the hard family ∀x₁∃y₁…∀xₖ∃yₖ ⋀ᵢ (xᵢ↔yᵢ): true
// (choose yᵢ = xᵢ), but naive evaluation explores 2^k universal branches.
// Variables are numbered x_i = 2i-1, y_i = 2i.
func AlternatingQBF(k int) *QBF {
	q := &QBF{}
	for i := 0; i < k; i++ {
		q.Prefix = append(q.Prefix, Forall, Exists)
		x, y := 2*i+1, 2*i+2
		q.Clauses = append(q.Clauses,
			[]Lit{{Var: x, Neg: true}, {Var: y}}, // ¬x ∨ y
			[]Lit{{Var: x}, {Var: y, Neg: true}}, // x ∨ ¬y
		)
	}
	return q
}

// RandomQBF generates a random prenex-CNF formula with n variables,
// m clauses of the given width, and each variable universally quantified
// with probability pForall.
func RandomQBF(rng *rand.Rand, n, m, width int, pForall float64) *QBF {
	q := &QBF{Prefix: make([]Quant, n)}
	for i := range q.Prefix {
		if rng.Float64() < pForall {
			q.Prefix[i] = Forall
		}
	}
	for c := 0; c < m; c++ {
		clause := make([]Lit, width)
		for j := range clause {
			clause[j] = Lit{Var: 1 + rng.Intn(n), Neg: rng.Intn(2) == 0}
		}
		q.Clauses = append(q.Clauses, clause)
	}
	return q
}
