package machine

import (
	"fmt"
	"math/rand"
	"strings"
)

// CNF is a propositional formula in conjunctive normal form over variables
// 1..N.
type CNF struct {
	N       int
	Clauses [][]Lit
}

// Validate checks variable indexes.
func (c *CNF) Validate() error {
	for ci, cl := range c.Clauses {
		for _, l := range cl {
			if l.Var < 1 || l.Var > c.N {
				return fmt.Errorf("cnf: clause %d references variable %d outside 1..%d", ci, l.Var, c.N)
			}
		}
	}
	return nil
}

// BruteForce decides satisfiability by enumeration — the oracle for the TD
// encoding. Returns a satisfying assignment (1-based) when one exists.
func (c *CNF) BruteForce() ([]bool, bool) {
	asg := make([]bool, c.N+1)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i > c.N {
			return c.satisfied(asg)
		}
		asg[i] = true
		if rec(i + 1) {
			return true
		}
		asg[i] = false
		return rec(i + 1)
	}
	if rec(1) {
		return asg, true
	}
	return nil, false
}

func (c *CNF) satisfied(asg []bool) bool {
	for _, cl := range c.Clauses {
		ok := false
		for _, l := range cl {
			if asg[l.Var] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// SATRules is the fixed *fully bounded* TD program deciding satisfiability
// of a CNF supplied as facts (see SATFacts): guess an assignment by
// nondeterministic rule choice along a sequential tail recursion, then
// check every clause by another tail recursion. This is Section 5's
// guess-and-check shape: iteration only, no process growth; the search
// tree, not the process tree, carries the exponential.
//
// Relations: qvar(i), succv(i, i+1), nomorevars(n+1); lit(c, x, s),
// succc(c, c+1), nomoreclauses(m+1); working assignment asg(x, s).
const SATRules = `
guess(I) :- nomorevars(I).
guess(I) :- qvar(I), ins.asg(I, t), succv(I, J), guess(J).
guess(I) :- qvar(I), ins.asg(I, f), succv(I, J), guess(J).
ccheck(C) :- nomoreclauses(C).
ccheck(C) :- lit(C, X, S), asg(X, S), succc(C, D), ccheck(D).
sat :- guess(1), ccheck(1).
`

// SATGoal proves satisfiability of the encoded CNF.
const SATGoal = "sat"

// SATFacts renders c as database facts for SATRules.
func SATFacts(c *CNF) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	for i := 1; i <= c.N; i++ {
		fmt.Fprintf(&b, "qvar(%d).\n", i)
		fmt.Fprintf(&b, "succv(%d, %d).\n", i, i+1)
	}
	fmt.Fprintf(&b, "nomorevars(%d).\n", c.N+1)
	for ci, cl := range c.Clauses {
		for _, l := range cl {
			s := "t"
			if l.Neg {
				s = "f"
			}
			fmt.Fprintf(&b, "lit(%d, %d, %s).\n", ci+1, l.Var, s)
		}
		fmt.Fprintf(&b, "succc(%d, %d).\n", ci+1, ci+2)
	}
	fmt.Fprintf(&b, "nomoreclauses(%d).\n", len(c.Clauses)+1)
	return b.String(), nil
}

// RandomCNF generates a random k-CNF with n variables and m clauses.
func RandomCNF(rng *rand.Rand, n, m, width int) *CNF {
	c := &CNF{N: n}
	for i := 0; i < m; i++ {
		clause := make([]Lit, width)
		for j := range clause {
			clause[j] = Lit{Var: 1 + rng.Intn(n), Neg: rng.Intn(2) == 0}
		}
		c.Clauses = append(c.Clauses, clause)
	}
	return c
}

// PigeonholeCNF encodes "n+1 pigeons into n holes": unsatisfiable, with a
// search tree that is exponential for resolution-style methods — the
// worst-case family for E10. Variable p(i,j) = pigeon i in hole j is
// numbered i*n + j + 1 for i in 0..n, j in 0..n-1.
func PigeonholeCNF(n int) *CNF {
	v := func(i, j int) int { return i*n + j + 1 }
	c := &CNF{N: (n + 1) * n}
	// Every pigeon sits somewhere.
	for i := 0; i <= n; i++ {
		var cl []Lit
		for j := 0; j < n; j++ {
			cl = append(cl, Lit{Var: v(i, j)})
		}
		c.Clauses = append(c.Clauses, cl)
	}
	// No two pigeons share a hole.
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				c.Clauses = append(c.Clauses, []Lit{
					{Var: v(i1, j), Neg: true},
					{Var: v(i2, j), Neg: true},
				})
			}
		}
	}
	return c
}
