package machine

import (
	"fmt"
)

// This file completes the paper's RE-completeness chain constructively:
// single-tape Turing machines translate to two-stack machines (the tape is
// split at the head — Hopcroft & Ullman [52]), and two-stack machines
// compile to Transaction Datalog (compile.go). So every Turing machine
// runs, end to end, as three concurrent TD processes.

// Move is a head direction.
type Move uint8

// Head movements.
const (
	Left Move = iota
	Right
	Stay
)

func (m Move) String() string {
	switch m {
	case Left:
		return "L"
	case Right:
		return "R"
	default:
		return "S"
	}
}

// TMBlank is the blank tape symbol. Machines may read it but the input may
// not contain it.
const TMBlank = "blank"

// TMRule is one Turing-machine transition: in state State reading Read,
// write Write, move the head, and enter Next.
type TMRule struct {
	State string
	Read  string
	Write string
	Move  Move
	Next  string
}

// TM is a deterministic single-tape Turing machine. Halting is by entering
// Accept or Reject; missing transitions reject.
type TM struct {
	Name    string
	Start   string
	Accept  string
	Reject  string
	Rules   []TMRule
	byKey   map[string]TMRule
	symbols map[string]bool
}

// NewTM validates and indexes a machine definition.
func NewTM(name, start, accept, reject string, rules []TMRule) (*TM, error) {
	if start == "" || accept == "" || reject == "" {
		return nil, fmt.Errorf("tm %s: empty state name", name)
	}
	if accept == reject {
		return nil, fmt.Errorf("tm %s: accept and reject must differ", name)
	}
	m := &TM{
		Name: name, Start: start, Accept: accept, Reject: reject,
		Rules: rules, byKey: make(map[string]TMRule), symbols: map[string]bool{TMBlank: true},
	}
	for _, r := range rules {
		if r.State == accept || r.State == reject {
			return nil, fmt.Errorf("tm %s: transition out of halting state %s", name, r.State)
		}
		if r.State == "" || r.Read == "" || r.Write == "" || r.Next == "" {
			return nil, fmt.Errorf("tm %s: incomplete rule %+v", name, r)
		}
		k := r.State + "\x00" + r.Read
		if _, dup := m.byKey[k]; dup {
			return nil, fmt.Errorf("tm %s: duplicate transition for (%s, %s)", name, r.State, r.Read)
		}
		m.byKey[k] = r
		m.symbols[r.Read] = true
		m.symbols[r.Write] = true
	}
	return m, nil
}

// TMResult reports a Turing-machine run.
type TMResult struct {
	Accepted bool
	Steps    int
	// Tape is the final tape contents from the leftmost visited cell;
	// Head is the final head offset into Tape.
	Tape []string
	Head int
}

// Run executes the machine directly (the reference semantics) for at most
// maxSteps transitions.
func (m *TM) Run(input []string, maxSteps int) (*TMResult, error) {
	tape := append([]string(nil), input...)
	if len(tape) == 0 {
		tape = []string{TMBlank}
	}
	head := 0
	state := m.Start
	res := &TMResult{}
	for {
		if state == m.Accept || state == m.Reject {
			res.Accepted = state == m.Accept
			res.Tape = tape
			res.Head = head
			return res, nil
		}
		if res.Steps >= maxSteps {
			return nil, ErrStepLimit
		}
		res.Steps++
		r, ok := m.byKey[state+"\x00"+tape[head]]
		if !ok {
			res.Accepted = false
			res.Tape = tape
			res.Head = head
			return res, nil
		}
		tape[head] = r.Write
		state = r.Next
		switch r.Move {
		case Left:
			if head == 0 {
				tape = append([]string{TMBlank}, tape...)
			} else {
				head--
			}
		case Right:
			head++
			if head == len(tape) {
				tape = append(tape, TMBlank)
			}
		}
	}
}

// ToTwoStack translates the Turing machine into an equivalent two-stack
// machine. Representation invariant between transitions:
//
//	stack 1: the head cell and everything right of it (top = head cell)
//	stack 2: tape cells strictly left of the head (top = cell head-1)
//
// The two-stack machine's input convention — the word pre-loaded on
// stack 1 with the first symbol on top — IS this invariant with the head
// on the first input symbol, so no loading phase is needed.
//
// Per TM state q there is a pop-state "tm_q" that pops stack 1 (reading
// the head cell; Bottom reads as blank — the tape is blank beyond what was
// written) and dispatches on the symbol: write+move-right pushes the
// written symbol onto stack 2 (it is now left of the head);
// write+move-left pushes the written symbol back onto stack 1 and then
// moves one cell from stack 2 to stack 1 (Bottom there also reads as
// blank, extending the tape leftward); write+stay pushes the written
// symbol back onto stack 1.
func (m *TM) ToTwoStack() (*Machine, error) {
	for sym := range m.symbols {
		if !identOK(sym) || sym == Bottom {
			return nil, fmt.Errorf("tm %s: symbol %q is not a valid identifier", m.Name, sym)
		}
	}
	states := map[string]bool{m.Start: true}
	for _, r := range m.Rules {
		states[r.State] = true
		states[r.Next] = true
	}
	for st := range states {
		if !identOK(st) {
			return nil, fmt.Errorf("tm %s: state %q is not a valid identifier", m.Name, st)
		}
	}

	var instrs []Instr
	add := func(in Instr) { instrs = append(instrs, in) }

	accept := "tm_halt_acc"
	reject := "tm_halt_rej"
	add(Instr{Label: accept, Kind: IAccept})
	add(Instr{Label: reject, Kind: IReject})

	haltTarget := func(state string) (string, bool) {
		switch state {
		case m.Accept:
			return accept, true
		case m.Reject:
			return reject, true
		}
		return "", false
	}

	// One dispatcher per live TM state.
	for st := range states {
		if _, halt := haltTarget(st); halt {
			continue
		}
		branch := map[string]string{}
		for sym := range m.symbols {
			r, ok := m.byKey[st+"\x00"+sym]
			if !ok {
				branch[sym] = reject
				if sym == TMBlank {
					branch[Bottom] = reject
				}
				continue
			}
			target := m.emitTransition(&instrs, st, sym, r, haltTarget)
			branch[sym] = target
			if sym == TMBlank {
				// Popping an empty stack 1 means the head sits on a blank
				// beyond the written tape.
				branch[Bottom] = target
			}
		}
		add(Instr{Label: "tm_" + st, Kind: IPop, Stack: S1, Branch: branch})
	}

	return NewMachine("tm_"+m.Name, "tm_"+m.Start, instrs)
}

// emitTransition appends the push/move instructions realizing rule r fired
// from state st on symbol sym, returning the entry label.
func (m *TM) emitTransition(instrs *[]Instr, st, sym string, r TMRule, haltTarget func(string) (string, bool)) string {
	next := "tm_" + r.Next
	if h, halt := haltTarget(r.Next); halt {
		next = h
	}
	base := fmt.Sprintf("do_%s_%s", st, sym)
	switch r.Move {
	case Right:
		// Head cell consumed from s1; written symbol is now left of the
		// new head position: push onto s2.
		*instrs = append(*instrs, Instr{Label: base, Kind: IPush, Stack: S2, Sym: r.Write, Next: next})
		return base
	case Stay:
		*instrs = append(*instrs, Instr{Label: base, Kind: IPush, Stack: S1, Sym: r.Write, Next: next})
		return base
	default: // Left
		// Written symbol stays on the right side of the new head (s1);
		// then the new head cell is the old cell to the left: move one
		// symbol s2 → s1. An empty s2 grows the tape leftward with a blank.
		mvLabel := base + "_mv"
		branch := map[string]string{Bottom: base + "_blank"}
		for tsym := range m.symbols {
			lbl := fmt.Sprintf("%s_carry_%s", base, tsym)
			branch[tsym] = lbl
			*instrs = append(*instrs, Instr{Label: lbl, Kind: IPush, Stack: S1, Sym: tsym, Next: next})
		}
		*instrs = append(*instrs,
			Instr{Label: base, Kind: IPush, Stack: S1, Sym: r.Write, Next: mvLabel},
			Instr{Label: mvLabel, Kind: IPop, Stack: S2, Branch: branch},
			Instr{Label: base + "_blank", Kind: IPush, Stack: S1, Sym: TMBlank, Next: next},
		)
		return base
	}
}
