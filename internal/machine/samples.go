package machine

// Sample machines used across tests, examples, and benchmarks. Each decides
// a language over its input alphabet; Parity and Dyck are the benchmark
// workloads of experiment E7.

// Parity accepts words over {one} with an even number of symbols.
// Uses only stack 1 (reading input); a two-state finite control.
func Parity() *Machine {
	m, err := NewMachine("parity", "even", []Instr{
		{Label: "even", Kind: IPop, Stack: S1, Branch: map[string]string{
			"one": "odd", Bottom: "acc",
		}},
		{Label: "odd", Kind: IPop, Stack: S1, Branch: map[string]string{
			"one": "even", Bottom: "rej",
		}},
		{Label: "acc", Kind: IAccept},
		{Label: "rej", Kind: IReject},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Dyck accepts balanced bracket words over {l, r} — the canonical
// non-regular language, exercising stack 2 as a counter.
func Dyck() *Machine {
	m, err := NewMachine("dyck", "scan", []Instr{
		{Label: "scan", Kind: IPop, Stack: S1, Branch: map[string]string{
			"l": "open", "r": "close", Bottom: "checkempty",
		}},
		{Label: "open", Kind: IPush, Stack: S2, Sym: "m", Next: "scan"},
		{Label: "close", Kind: IPop, Stack: S2, Branch: map[string]string{
			"m": "scan", Bottom: "rej",
		}},
		{Label: "checkempty", Kind: IPop, Stack: S2, Branch: map[string]string{
			"m": "rej", Bottom: "acc",
		}},
		{Label: "acc", Kind: IAccept},
		{Label: "rej", Kind: IReject},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Copy moves the whole input from stack 1 to stack 2 (reversing it) and
// accepts. Always accepts; exercises deep recursion on both stack
// processes — the E7 scaling workload.
func Copy() *Machine {
	m, err := NewMachine("copy", "mv", []Instr{
		{Label: "mv", Kind: IPop, Stack: S1, Branch: map[string]string{
			"a": "pa", "b": "pb", Bottom: "acc",
		}},
		{Label: "pa", Kind: IPush, Stack: S2, Sym: "a", Next: "mv"},
		{Label: "pb", Kind: IPush, Stack: S2, Sym: "b", Next: "mv"},
		{Label: "acc", Kind: IAccept},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Diverge pushes forever: a machine with no halting run, witnessing that
// two-stack machines (and hence full TD) are not total — simulations of it
// must hit step budgets.
func Diverge() *Machine {
	m, err := NewMachine("diverge", "grow", []Instr{
		{Label: "grow", Kind: IPush, Stack: S1, Sym: "x", Next: "grow"},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Ones returns the unary word of n "one" symbols (Parity input).
func Ones(n int) []string {
	w := make([]string, n)
	for i := range w {
		w[i] = "one"
	}
	return w
}

// Nested returns the Dyck word l^n r^n.
func Nested(n int) []string {
	w := make([]string, 0, 2*n)
	for i := 0; i < n; i++ {
		w = append(w, "l")
	}
	for i := 0; i < n; i++ {
		w = append(w, "r")
	}
	return w
}

// Alternating returns the Dyck word (lr)^n.
func Alternating(n int) []string {
	w := make([]string, 0, 2*n)
	for i := 0; i < n; i++ {
		w = append(w, "l", "r")
	}
	return w
}

// ABWord returns an alternating word a b a b … of length n (Copy input).
func ABWord(n int) []string {
	w := make([]string, n)
	for i := range w {
		if i%2 == 0 {
			w[i] = "a"
		} else {
			w[i] = "b"
		}
	}
	return w
}
