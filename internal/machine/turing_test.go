package machine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
)

func TestTMAnBnDirect(t *testing.T) {
	m := TMAnBn()
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 0, true}, {1, 1, true}, {3, 3, true},
		{1, 0, false}, {0, 1, false}, {2, 3, false}, {3, 2, false},
	}
	for _, c := range cases {
		res, err := m.Run(ABnWord(c.a, c.b), 10000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != c.want {
			t.Errorf("anbn(a^%d b^%d) = %v, want %v", c.a, c.b, res.Accepted, c.want)
		}
	}
	// Words with b before a reject.
	res, err := m.Run([]string{"b", "a"}, 10000)
	if err != nil || res.Accepted {
		t.Errorf("ba accepted")
	}
}

func TestTMIncrementDirect(t *testing.T) {
	m := TMIncrement()
	for _, v := range []uint64{0, 1, 2, 3, 7, 12, 255} {
		res, err := m.Run(BitsLSB(v), 10000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("increment(%d) rejected", v)
		}
		if got := BitsValue(res.Tape); got != v+1 {
			t.Errorf("increment(%d) tape = %v = %d, want %d", v, res.Tape, got, v+1)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return BitsValue(BitsLSB(uint64(v))) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewTMValidation(t *testing.T) {
	cases := []struct {
		name  string
		rules []TMRule
		start string
	}{
		{"dup transition", []TMRule{
			{State: "s", Read: "a", Write: "a", Move: Right, Next: "s"},
			{State: "s", Read: "a", Write: "b", Move: Left, Next: "s"},
		}, "s"},
		{"transition from accept", []TMRule{
			{State: "acc", Read: "a", Write: "a", Move: Right, Next: "acc"},
		}, "acc"},
		{"incomplete rule", []TMRule{
			{State: "s", Read: "", Write: "a", Move: Right, Next: "s"},
		}, "s"},
	}
	for _, c := range cases {
		if _, err := NewTM(c.name, c.start, "acc", "rej", c.rules); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewTM("same", "s", "h", "h", nil); err == nil {
		t.Error("accept == reject accepted")
	}
}

// TestTMToTwoStackAgrees: the translated two-stack machine must agree with
// the TM on acceptance for a spread of inputs.
func TestTMToTwoStackAgrees(t *testing.T) {
	tm := TMAnBn()
	two, err := tm.ToTwoStack()
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]string{
		nil,
		ABnWord(1, 1), ABnWord(2, 2), ABnWord(3, 3),
		ABnWord(1, 2), ABnWord(2, 1), ABnWord(0, 2), ABnWord(2, 0),
		{"b", "a"}, {"a", "b", "a", "b"},
	}
	for _, in := range inputs {
		want, err := tm.Run(in, 100000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := two.Run(in, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if got.Accepted != want.Accepted {
			t.Errorf("input %v: two-stack %v, TM %v", in, got.Accepted, want.Accepted)
		}
	}
}

func TestTMToTwoStackAgreesRandom(t *testing.T) {
	tm := TMAnBn()
	two, err := tm.ToTwoStack()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(7)
		w := make([]string, n)
		for i := range w {
			if r.Intn(2) == 0 {
				w[i] = "a"
			} else {
				w[i] = "b"
			}
		}
		want, err1 := tm.Run(w, 100000)
		got, err2 := two.Run(w, 1_000_000)
		if err1 != nil || err2 != nil {
			return false
		}
		return want.Accepted == got.Accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTMIncrementViaTwoStack(t *testing.T) {
	two, err := TMIncrement().ToTwoStack()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{0, 1, 5, 6} {
		res, err := two.Run(BitsLSB(v), 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("two-stack increment(%d) rejected", v)
		}
	}
}

// TestTMEndToEndInTD runs the complete chain: Turing machine → two-stack
// machine → Transaction Datalog → proof search. Theorem 4.4, executed.
func TestTMEndToEndInTD(t *testing.T) {
	tm := TMAnBn()
	two, err := tm.ToTwoStack()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   []string
		want bool
	}{
		{ABnWord(1, 1), true},
		{ABnWord(2, 2), true},
		{ABnWord(2, 1), false},
		{[]string{"b"}, false},
		{nil, true},
	}
	for _, c := range cases {
		src, goal, err := Source(two, c.in)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("generated TD does not parse: %v", err)
		}
		g, _, _ := parser.ParseGoal(goal, prog.VarHigh)
		d, _ := db.FromFacts(prog.Facts)
		res, err := engine.New(prog, engine.Options{MaxSteps: 50_000_000, LoopCheck: true, Table: true}).Prove(g, d)
		if err != nil {
			t.Fatalf("input %v: %v", c.in, err)
		}
		if res.Success != c.want {
			t.Errorf("TD(TM anbn)(%v) = %v, want %v", c.in, res.Success, c.want)
		}
	}
}

func TestTMDivergenceBudget(t *testing.T) {
	// A TM that runs forever: moving right on blanks.
	tm, err := NewTM("runaway", "go", "acc", "rej", []TMRule{
		{State: "go", Read: TMBlank, Write: TMBlank, Move: Right, Next: "go"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Run(nil, 100); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	two, err := tm.ToTwoStack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := two.Run(nil, 1000); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("two-stack err = %v, want ErrStepLimit", err)
	}
}

func TestTMFinalTapeThroughTwoStack(t *testing.T) {
	// The two-stack machine halts with the tape split across its stacks;
	// for increment, stack contents after accept must hold the result.
	two, err := TMIncrement().ToTwoStack()
	if err != nil {
		t.Fatal(err)
	}
	res, err := two.Run(BitsLSB(3), 100000) // 3 = 11₂ → 4 = 001 (LSB-first)
	if err != nil || !res.Accepted {
		t.Fatal(err, res)
	}
	// Reconstruct the tape: stack2 bottom→top is the left-of-head part in
	// left-to-right order; stack1 top→bottom is the head cell onward.
	var tape []string
	tape = append(tape, res.Stack2...)
	for i := len(res.Stack1) - 1; i >= 0; i-- {
		tape = append(tape, res.Stack1[i])
	}
	if got := BitsValue(tape); got != 4 {
		t.Fatalf("final tape %v = %d, want 4", tape, got)
	}
}
