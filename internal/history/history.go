// Package history is the server's LSN-addressed view of the recent past.
//
// Every commit already carries a log sequence number (its commit version);
// this package retains a bounded window of recent versions — each one an
// O(1)-forked frozen snapshot plus the op delta that produced it — and
// serves two read surfaces over it:
//
//   - At(lsn): the database as of a historical commit (point-in-time
//     reads, the server's ASOF verb),
//   - Since(lsn): the exact committed op stream after an LSN (the CHANGES
//     verb — the changefeed primitive follower catch-up and event rules
//     will consume).
//
// It also houses the Checkpointer, the background policy loop that bounds
// recovery by periodically snapshotting a frozen view and truncating the
// WAL behind it.
package history

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/db"
)

// ErrOutOfWindow reports an LSN older than the retained window.
var ErrOutOfWindow = errors.New("history: LSN evicted from the retained window")

// ErrFuture reports an LSN newer than the newest committed version.
var ErrFuture = errors.New("history: LSN not committed yet")

// Delta is one commit's effective write set, stamped with its LSN.
type Delta struct {
	LSN uint64
	Ops []db.Op
}

// entry is one retained version: the state AFTER commit lsn, plus the ops
// that produced it (nil for the window's base version).
type entry struct {
	lsn  uint64
	ops  []db.Op
	snap db.FrozenDB
}

// Window retains the last cap committed versions. All methods are safe for
// concurrent use; frozen snapshots are immutable, so readers never block
// appenders beyond the short index lock.
type Window struct {
	mu      sync.Mutex
	cap     int
	entries []entry // ascending LSN; entries[0] is the window base
}

// NewWindow builds a window whose base version is base at baseLSN (the
// recovered state at boot, or the empty database at LSN 0). cap bounds the
// number of retained versions after the base; cap <= 0 disables retention
// beyond the base being replaced on every append (a 1-deep window).
func NewWindow(cap int, baseLSN uint64, base db.FrozenDB) *Window {
	if cap < 0 {
		cap = 0
	}
	return &Window{cap: cap, entries: []entry{{lsn: baseLSN, snap: base}}}
}

// Append records the version after commit lsn. ops is the commit's
// effective write set (retained, not copied — callers hand over ownership);
// snap is the frozen state after applying it. Appends must carry strictly
// increasing LSNs; violations are rejected with an error rather than
// corrupting the index.
func (w *Window) Append(lsn uint64, ops []db.Op, snap db.FrozenDB) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if last := w.entries[len(w.entries)-1].lsn; lsn <= last {
		return fmt.Errorf("history: non-monotonic append: %d after %d", lsn, last)
	}
	w.entries = append(w.entries, entry{lsn: lsn, ops: ops, snap: snap})
	if len(w.entries) > w.cap+1 {
		// Evict the oldest; shift rather than ring-index — the window is
		// small (hundreds) and appends are one per commit.
		n := copy(w.entries, w.entries[len(w.entries)-(w.cap+1):])
		for i := n; i < len(w.entries); i++ {
			w.entries[i] = entry{} // release evicted snapshots and ops
		}
		w.entries = w.entries[:n]
	}
	return nil
}

// Bounds returns the oldest and newest retained LSNs. ASOF serves any LSN
// in [oldest, newest]; CHANGES serves any since-LSN in the same range.
func (w *Window) Bounds() (oldest, newest uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.entries[0].lsn, w.entries[len(w.entries)-1].lsn
}

// At returns the frozen database as of commit lsn — the newest retained
// version at or below it (LSN sequences may skip numbers; the state at a
// skipped LSN is the state of the last commit before it). Returns
// ErrOutOfWindow below the window base and ErrFuture above the newest
// commit. The second result is the LSN of the version actually served.
func (w *Window) At(lsn uint64) (db.FrozenDB, uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn < w.entries[0].lsn {
		return db.FrozenDB{}, 0, fmt.Errorf("%w: as-of %d, window starts at %d", ErrOutOfWindow, lsn, w.entries[0].lsn)
	}
	if newest := w.entries[len(w.entries)-1].lsn; lsn > newest {
		return db.FrozenDB{}, 0, fmt.Errorf("%w: as-of %d, newest commit is %d", ErrFuture, lsn, newest)
	}
	// Binary search for the greatest entry LSN <= lsn.
	lo, hi := 0, len(w.entries)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if w.entries[mid].lsn <= lsn {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return w.entries[lo].snap, w.entries[lo].lsn, nil
}

// Since returns the deltas of every commit with LSN strictly greater than
// lsn, in commit order — the exact op stream that takes the state at lsn
// to the current state. Returns ErrOutOfWindow when lsn predates the
// window base (commits between lsn and the base have been evicted, so the
// stream would be incomplete) and ErrFuture when lsn exceeds the newest
// commit. Since(newest) returns an empty slice: a caught-up consumer.
func (w *Window) Since(lsn uint64) ([]Delta, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn < w.entries[0].lsn {
		return nil, fmt.Errorf("%w: since %d, window starts at %d", ErrOutOfWindow, lsn, w.entries[0].lsn)
	}
	if newest := w.entries[len(w.entries)-1].lsn; lsn > newest {
		return nil, fmt.Errorf("%w: since %d, newest commit is %d", ErrFuture, lsn, newest)
	}
	out := []Delta{}
	for _, e := range w.entries {
		if e.lsn > lsn {
			out = append(out, Delta{LSN: e.lsn, Ops: e.ops})
		}
	}
	return out, nil
}

// Len returns the number of retained versions, base included.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}
