package history

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/term"
)

// mark builds the singleton write set {ins mark(n)}.
func markOps(n int64) []db.Op {
	return []db.Op{{Insert: true, Pred: "mark", Row: []term.Term{term.NewInt(n)}}}
}

// grow builds a window whose base is the empty database at baseLSN and
// appends commits mark(1)..mark(n) at LSNs baseLSN+1..baseLSN+n, freezing
// the growing database after each.
func grow(t *testing.T, cap int, baseLSN uint64, n int) *Window {
	t.Helper()
	d := db.New()
	w := NewWindow(cap, baseLSN, db.FreezeDB(d))
	for i := 1; i <= n; i++ {
		ops := markOps(int64(i))
		d.Apply(ops)
		if err := w.Append(baseLSN+uint64(i), ops, db.FreezeDB(d)); err != nil {
			t.Fatalf("Append(%d): %v", baseLSN+uint64(i), err)
		}
	}
	return w
}

func TestWindowAt(t *testing.T) {
	w := grow(t, 16, 10, 5) // base LSN 10, commits 11..15

	for lsn := uint64(10); lsn <= 15; lsn++ {
		snap, served, err := w.At(lsn)
		if err != nil {
			t.Fatalf("At(%d): %v", lsn, err)
		}
		if served != lsn {
			t.Fatalf("At(%d) served %d, want exact hit", lsn, served)
		}
		want := int(lsn - 10)
		if got := snap.Count("mark", 1); got != want {
			t.Fatalf("At(%d): %d mark facts, want %d", lsn, got, want)
		}
	}

	if _, _, err := w.At(9); !errors.Is(err, ErrOutOfWindow) {
		t.Fatalf("At(9) = %v, want ErrOutOfWindow", err)
	}
	if _, _, err := w.At(16); !errors.Is(err, ErrFuture) {
		t.Fatalf("At(16) = %v, want ErrFuture", err)
	}
}

// At on a skipped LSN serves the newest version at or below it.
func TestWindowAtSkippedLSN(t *testing.T) {
	d := db.New()
	w := NewWindow(8, 0, db.FreezeDB(d))
	d.Apply(markOps(1))
	if err := w.Append(3, markOps(1), db.FreezeDB(d)); err != nil { // LSNs 1,2 skipped
		t.Fatal(err)
	}
	d.Apply(markOps(2))
	if err := w.Append(7, markOps(2), db.FreezeDB(d)); err != nil {
		t.Fatal(err)
	}
	for lsn, want := range map[uint64]uint64{0: 0, 1: 0, 2: 0, 3: 3, 4: 3, 6: 3, 7: 7} {
		_, served, err := w.At(lsn)
		if err != nil {
			t.Fatalf("At(%d): %v", lsn, err)
		}
		if served != want {
			t.Fatalf("At(%d) served %d, want %d", lsn, served, want)
		}
	}
}

func TestWindowSince(t *testing.T) {
	w := grow(t, 16, 0, 4) // commits 1..4

	for since := uint64(0); since <= 4; since++ {
		deltas, err := w.Since(since)
		if err != nil {
			t.Fatalf("Since(%d): %v", since, err)
		}
		if got, want := len(deltas), int(4-since); got != want {
			t.Fatalf("Since(%d): %d deltas, want %d", since, got, want)
		}
		for i, d := range deltas {
			wantLSN := since + uint64(i) + 1
			if d.LSN != wantLSN {
				t.Fatalf("Since(%d)[%d].LSN = %d, want %d", since, i, d.LSN, wantLSN)
			}
			if len(d.Ops) != 1 || !d.Ops[0].Insert || d.Ops[0].Pred != "mark" {
				t.Fatalf("Since(%d)[%d].Ops = %v, want one mark insert", since, i, d.Ops)
			}
		}
	}
	if deltas, err := w.Since(4); err != nil || len(deltas) != 0 {
		t.Fatalf("Since(newest) = %v, %v; want empty, nil", deltas, err)
	}
	if _, err := w.Since(5); !errors.Is(err, ErrFuture) {
		t.Fatalf("Since(5) = %v, want ErrFuture", err)
	}
}

func TestWindowEviction(t *testing.T) {
	w := grow(t, 3, 0, 10) // cap 3: keeps base + 3, so versions 7..10 after eviction

	if n := w.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4 (base + cap)", n)
	}
	oldest, newest := w.Bounds()
	if oldest != 7 || newest != 10 {
		t.Fatalf("Bounds = [%d, %d], want [7, 10]", oldest, newest)
	}
	if _, _, err := w.At(6); !errors.Is(err, ErrOutOfWindow) {
		t.Fatalf("At(evicted) = %v, want ErrOutOfWindow", err)
	}
	if _, err := w.Since(6); !errors.Is(err, ErrOutOfWindow) {
		t.Fatalf("Since(evicted) = %v, want ErrOutOfWindow", err)
	}
	// The surviving base (LSN 7) serves reads but reports no delta: its ops
	// were only meaningful relative to the now-evicted version 6.
	snap, served, err := w.At(7)
	if err != nil || served != 7 {
		t.Fatalf("At(new base) = lsn %d, %v", served, err)
	}
	if got := snap.Count("mark", 1); got != 7 {
		t.Fatalf("base snapshot has %d mark facts, want 7", got)
	}
}

func TestWindowRejectsNonMonotonicAppend(t *testing.T) {
	w := grow(t, 4, 0, 3)
	if err := w.Append(3, nil, db.FreezeDB(db.New())); err == nil {
		t.Fatal("Append(3) after 3 succeeded, want rejection")
	}
	if err := w.Append(2, nil, db.FreezeDB(db.New())); err == nil {
		t.Fatal("Append(2) after 3 succeeded, want rejection")
	}
	if n := w.Len(); n != 4 {
		t.Fatalf("rejected appends changed the window: Len = %d, want 4", n)
	}
}

func TestWindowZeroCap(t *testing.T) {
	w := grow(t, 0, 0, 5)
	if n := w.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (only the latest version)", n)
	}
	_, served, err := w.At(5)
	if err != nil || served != 5 {
		t.Fatalf("At(5) = lsn %d, %v; want 5, nil", served, err)
	}
}

func TestCheckpointerFiresOnWALSize(t *testing.T) {
	var size atomic.Int64
	var runs atomic.Int32
	c := NewCheckpointer(
		CheckpointPolicy{WALSize: 100},
		size.Load,
		func() error { runs.Add(1); size.Store(0); return nil },
		nil,
	)
	c.poll = time.Millisecond
	c.Start()
	defer c.Stop()

	time.Sleep(20 * time.Millisecond) // several polls below the threshold
	if runs.Load() != 0 {
		t.Fatal("checkpointer fired below the size threshold")
	}
	size.Store(150)
	waitFor(t, "checkpoint after WAL grew past threshold", func() bool { return runs.Load() >= 1 })
}

func TestCheckpointerFiresOnInterval(t *testing.T) {
	var runs atomic.Int32
	c := NewCheckpointer(
		CheckpointPolicy{Interval: 5 * time.Millisecond},
		func() int64 { return 0 },
		func() error { runs.Add(1); return nil },
		nil,
	)
	c.Start()
	defer c.Stop()
	waitFor(t, "interval checkpoint", func() bool { return runs.Load() >= 2 })
}

func TestCheckpointerRetriesAfterFailure(t *testing.T) {
	var runs atomic.Int32
	c := NewCheckpointer(
		CheckpointPolicy{WALSize: 1},
		func() int64 { return 10 },
		func() error {
			if runs.Add(1) == 1 {
				return fmt.Errorf("injected")
			}
			return nil
		},
		nil,
	)
	c.poll = time.Millisecond
	c.Start()
	defer c.Stop()
	waitFor(t, "retry after failed checkpoint", func() bool { return runs.Load() >= 2 })
}

func TestCheckpointerDisabledPolicy(t *testing.T) {
	c := NewCheckpointer(CheckpointPolicy{}, func() int64 { return 1 << 30 }, func() error {
		t.Error("disabled checkpointer ran")
		return nil
	}, nil)
	c.Start()
	c.Start() // idempotent
	c.Stop()  // returns immediately: done is closed by the disabled Start
	c.Stop()
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
