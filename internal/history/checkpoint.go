package history

import (
	"log/slog"
	"sync"
	"time"
)

// CheckpointPolicy says when the background checkpointer fires. Zero
// fields disable that trigger; with both zero the loop never fires on its
// own (manual CHECKPOINT still works).
type CheckpointPolicy struct {
	// Interval checkpoints on a wall-clock cadence.
	Interval time.Duration
	// WALSize checkpoints whenever the log grows past this many bytes.
	WALSize int64
}

func (p CheckpointPolicy) enabled() bool { return p.Interval > 0 || p.WALSize > 0 }

// Checkpointer is the background policy loop: it watches the WAL length
// and the clock and calls run — the server's incremental checkpoint, which
// snapshots a frozen view off the commit path — when the policy says so.
// Failures are logged and retried on the next trigger; a checkpoint is an
// optimization, never a correctness requirement.
type Checkpointer struct {
	policy  CheckpointPolicy
	walSize func() int64
	run     func() error
	log     *slog.Logger
	poll    time.Duration // trigger evaluation cadence (tests shorten it)

	startOnce sync.Once
	stopOnce  sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// NewCheckpointer wires a policy to the server's checkpoint entry points.
// walSize reports the current log length; run performs one checkpoint.
func NewCheckpointer(policy CheckpointPolicy, walSize func() int64, run func() error, log *slog.Logger) *Checkpointer {
	if log == nil {
		log = slog.Default()
	}
	poll := time.Second
	if policy.Interval > 0 && policy.Interval < poll {
		poll = policy.Interval
	}
	return &Checkpointer{
		policy:  policy,
		walSize: walSize,
		run:     run,
		log:     log,
		poll:    poll,
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the loop; a disabled policy makes Start a no-op (Stop
// still returns immediately).
func (c *Checkpointer) Start() {
	c.startOnce.Do(func() {
		if !c.policy.enabled() {
			close(c.done)
			return
		}
		go c.loop()
	})
}

// Stop shuts the loop down and waits for any in-flight checkpoint to
// finish (the store keeps the files consistent regardless; the wait just
// keeps shutdown orderly).
func (c *Checkpointer) Stop() {
	c.stopOnce.Do(func() { close(c.quit) })
	<-c.done
}

func (c *Checkpointer) loop() {
	defer close(c.done)
	t := time.NewTicker(c.poll)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
		}
		fire := false
		if c.policy.Interval > 0 && time.Since(last) >= c.policy.Interval {
			fire = true
		}
		if c.policy.WALSize > 0 && c.walSize() >= c.policy.WALSize {
			fire = true
		}
		if !fire {
			continue
		}
		if err := c.run(); err != nil {
			c.log.Warn("checkpoint failed", "err", err)
		}
		// Reset the cadence either way: a failing store should not be
		// hammered every poll tick.
		last = time.Now()
	}
}
