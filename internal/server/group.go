package server

// Group commit: durability is decoupled from the logical commit. A commit
// appends its WAL records under the head lock (stage 1 of the pipeline,
// which fixes the version order and therefore the WAL order), then waits
// OUTSIDE every lock for the flusher goroutine to cover its LSN (stage 2).
// The flusher batches all records appended since the last sync into one
// flush+fsync and wakes every waiter the sync covered, so N concurrent
// committers share one fsync instead of queueing for N.
//
// The WAL-before-ack invariant holds per batch: a committer's LSN is
// registered only after its records are appended (both under the head
// lock), and the flusher reads the batch target after being woken, so the
// fsync that acknowledges a commit always covers its records. A sync
// failure is sticky: every pending and future commit is refused rather
// than acknowledged non-durably or applied to a state that can no longer
// be persisted.

import (
	"runtime"
	"sync"
	"time"
)

// gcWaiter is one committer parked until a sync covers its LSN.
type gcWaiter struct {
	lsn uint64
	ch  chan gcResult
}

// gcResult settles one waiter: the sync error (sticky) and how many commits
// the covering fsync made durable — the batch size the committer's wide
// event reports.
type gcResult struct {
	err   error
	batch int64
}

// groupCommit is the flusher state shared between committers and the
// flusher goroutine. LSNs are commit versions: appends happen in version
// order under the server's head lock, so "synced through version v" means
// every record of every commit <= v is durable.
type groupCommit struct {
	store    syncer
	stats    *serverStats
	maxBatch int
	maxDelay time.Duration

	mu        sync.Mutex
	appended  uint64 // highest LSN whose WAL records are appended
	synced    uint64 // highest LSN covered by a completed fsync
	err       error  // sticky sync failure; poisons all future commits
	waiters   []gcWaiter
	lastBatch uint64 // commits covered by the previous fsync (hysteresis)

	wake chan struct{} // 1-buffered doorbell
	quit chan struct{}
	done chan struct{}
}

// syncer is the slice of db.Store the flusher needs (swappable in tests).
type syncer interface {
	Commit() error
}

func newGroupCommit(store syncer, stats *serverStats, maxBatch int, maxDelay time.Duration) *groupCommit {
	g := &groupCommit{
		store:    store,
		stats:    stats,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go g.run()
	return g
}

// noteAppend records that the WAL now holds every record through lsn.
// Callers hold the server head lock, so lsn is monotone. Safe on a nil
// receiver (no-op without a flusher).
func (g *groupCommit) noteAppend(lsn uint64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if lsn > g.appended {
		g.appended = lsn
	}
	g.mu.Unlock()
}

// failed returns the sticky sync error, if any. Safe on a nil receiver
// (in-memory and NoSync servers have no flusher).
func (g *groupCommit) failed() error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// waitDurable blocks until a sync covers lsn, returning the sync error if
// the batch (or a previous one) failed, and on success how many commits the
// covering fsync made durable. The fast path — an overlapping batch already
// synced past lsn — takes only the flusher mutex and reports batch 0 (the
// commit rode a sync it never waited for).
func (g *groupCommit) waitDurable(lsn uint64) (int64, error) {
	g.mu.Lock()
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return 0, err
	}
	if g.synced >= lsn {
		g.mu.Unlock()
		return 0, nil
	}
	w := gcWaiter{lsn: lsn, ch: make(chan gcResult, 1)}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default: // a wakeup is already pending; the flusher will see us
	}
	res := <-w.ch
	return res.batch, res.err
}

// setSyncerForTest swaps the flusher's sync target under the flusher lock —
// the latency/fault injection seam (e.g. a slow syncer that breaches an
// fsync SLO on demand).
func (g *groupCommit) setSyncerForTest(st syncer) {
	g.mu.Lock()
	g.store = st
	g.mu.Unlock()
}

// close drains the flusher: one final flush covers any appended tail, then
// the goroutine exits. Safe on a nil receiver.
func (g *groupCommit) close() {
	if g == nil {
		return
	}
	close(g.quit)
	<-g.done
}

func (g *groupCommit) run() {
	defer close(g.done)
	for {
		select {
		case <-g.quit:
			g.flush()
			return
		case <-g.wake:
		}
		g.mu.Lock()
		engage := g.maxDelay > 0 && (g.lastBatch >= 2 || len(g.waiters) >= 2)
		g.mu.Unlock()
		if engage {
			g.accumulate()
		}
		g.flush()
	}
}

// accumulate holds the flusher back so more committers can join the batch,
// flushing at quiescence rather than after a fixed delay. Quiescence is
// detected in scheduler rounds, not timers (sub-millisecond timers fire
// arbitrarily late on a saturated machine): each Gosched lets every
// runnable session run to its next blocking point — for a session mid
// commit, that is waitDurable registration — so a few consecutive rounds
// with no new registrations mean every in-flight commit has joined the
// batch. Idle connections leave the run queue empty and the rounds return
// immediately. maxBatch pending or maxDelay elapsed ends the wait early.
//
// The caller only engages accumulation when the previous fsync covered two
// or more commits (or two are already pending), so a lone committer never
// pays the wait: its commits flush immediately, and one single-commit
// flush resets the hysteresis.
func (g *groupCommit) accumulate() {
	deadline := time.Now().Add(g.maxDelay)
	g.mu.Lock()
	last := len(g.waiters)
	g.mu.Unlock()
	for idle := 0; last < g.maxBatch && idle < 3; {
		if !time.Now().Before(deadline) {
			return
		}
		runtime.Gosched()
		g.mu.Lock()
		n := len(g.waiters)
		g.mu.Unlock()
		if n == last {
			idle++
		} else {
			idle, last = 0, n
		}
	}
}

// flush makes everything appended so far durable with one fsync and
// settles every waiter the sync covered. On error it poisons the group:
// all pending and future commits fail.
func (g *groupCommit) flush() {
	g.mu.Lock()
	target := g.appended
	prev := g.synced
	st := g.store // read under mu: tests may swap the syncer mid-run
	if g.err != nil {
		woken := g.waiters
		g.waiters = nil
		err := g.err
		g.mu.Unlock()
		for _, w := range woken {
			w.ch <- gcResult{err: err}
		}
		return
	}
	if target == prev && len(g.waiters) == 0 {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()

	start := time.Now()
	err := st.Commit() // flush + fsync
	elapsed := time.Since(start)

	g.mu.Lock()
	var woken, kept []gcWaiter
	if err != nil {
		g.err = err
		woken = g.waiters
		g.waiters = nil
	} else {
		g.synced = target
		for _, w := range g.waiters {
			if w.lsn <= target {
				woken = append(woken, w)
			} else {
				kept = append(kept, w)
			}
		}
		g.waiters = kept
	}
	g.mu.Unlock()

	covered := int64(target - prev)
	if err == nil {
		g.stats.fsyncLat.Observe(elapsed.Microseconds())
		g.stats.fsyncs.Add(1)
		g.stats.observeSLOs(g.stats.sloFsync, elapsed)
		if covered > 0 {
			g.stats.groupCommits.Add(1)
			g.stats.batchSize.Observe(covered)
			g.mu.Lock()
			g.lastBatch = uint64(covered)
			g.mu.Unlock()
		}
	}
	for _, w := range woken {
		w.ch <- gcResult{err: err, batch: covered}
	}
}
