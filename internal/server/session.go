package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/term"
)

// errGoalTime is the wall-clock budget violation, delivered through the
// engine's Watch hook (checked at every database-changing step).
var errGoalTime = errors.New("goal wall-clock budget exhausted")

// session is one client connection: a private database replica at a known
// version, a rulebase, and at most one open transaction.
type session struct {
	srv  *Server
	conn net.Conn
	id   uint64 // session serial, stamped into wide events

	d       *db.DB
	version uint64
	// applied[i] is the LSN of the newest lane-i commit folded into the
	// replica. Written by the owning session (and by rebuildReplica); read
	// lock-free by lane pruning, which uses it to size each lane's live
	// commit-log window.
	applied []atomic.Uint64
	prog    *ast.Program
	varHigh int64
	eng     *engine.Engine

	inTxn     bool
	beginMark int
	rs        *readSet  // active transaction's read set (nil outside one)
	rsBuf     *readSet  // recycled storage; see freshReadSet
	deadline  time.Time // wall-clock bound for the currently running goal

	// ASOF pinning: while asOf is non-nil, QUERY reads this thawed
	// historical version instead of the live replica, and writes are
	// refused (the past is read-only).
	asOf    *db.DB
	asOfLSN uint64

	traceOn bool // session-level TRACE on/off toggle
	profOn  bool // session-level PROFILE on/off toggle
	// tableMode is the session's tabling mode ("auto", "all", "none", a
	// predicate list, or "" = server default off), set by the TABLE verb;
	// lastMemoHits/lastMemoMisses carry the most recent goal's memo
	// counters into its wide event.
	tableMode      string
	lastMemoHits   int64
	lastMemoMisses int64
	lastSpan       *obs.Span // span tree of the most recent successful goal
	// spanFresh marks lastSpan as produced by the request being served, so
	// stage spans attach only to their own transaction's tree.
	spanFresh bool

	// Stage-level latency attribution. clk points at clkBuf while the
	// current transaction is sampled (nil otherwise — every mark site is
	// nil-guarded); sampleN drives the 1-in-StageSample decision. All
	// session-goroutine-private, no atomics.
	clk     *stageClock
	clkBuf  stageClock
	sampleN uint64
}

// tracing reports whether goals run with structured execution tracing:
// either the session toggled it with TRACE, or a server-level option
// (Trace, SlowTxn, TraceSink) demands span trees for every goal.
func (sess *session) tracing() bool {
	o := &sess.srv.opts
	return sess.traceOn || o.Trace || o.SlowTxn > 0 || o.TraceSink != nil
}

// freshReadSet returns an empty read set, recycling the session's map
// storage: a session runs one transaction at a time, and the read set is
// only read synchronously inside commit, so reuse across attempts is safe.
func (sess *session) freshReadSet() *readSet {
	if sess.rsBuf == nil {
		sess.rsBuf = newReadSet(sess.srv.nshards)
		return sess.rsBuf
	}
	return sess.rsBuf.reset()
}

// buildEngine (re)builds the session engine for the current program. The
// outgoing engine's prover profile (if any) is folded into the server-wide
// aggregate first, so rebuilds never lose attribution.
func (sess *session) buildEngine() {
	sess.srv.absorbProfile(sess.eng)
	opts := engine.Options{
		LoopCheck: true,
		Table:     true,
		MaxSteps:  sess.srv.opts.MaxSteps,
		Profile:   sess.profOn || sess.srv.opts.Profile,
		// tdplan literal reordering, on by default; -noplan reproduces the
		// pre-planner engine exactly.
		Plan: !sess.srv.opts.NoPlan,
		// Span emission is handled by the session (it stamps wall-clock
		// duration and owns slow-transaction reporting), not an engine sink.
		Trace: sess.tracing(),
	}
	if mode := sess.tableMode; mode != "" && mode != "none" {
		// Tabled evaluation: the session engine fills and replays through
		// the server's shared memo store (support-set content fingerprints
		// keep replicas sound without an invalidation protocol). Auto mode
		// selects by the absorbed server-wide prover profile, so predicates
		// that burned time in any session get tabled in the next engine.
		opts.Memo = &engine.MemoOptions{
			Mode:    mode,
			Store:   sess.srv.memo,
			Profile: engineProfile(sess.srv.proverProfile()),
		}
	}
	if sess.srv.opts.MaxGoalTime > 0 {
		opts.Watch = func(*db.DB) error {
			if time.Now().After(sess.deadline) {
				return errGoalTime
			}
			return nil
		}
	}
	sess.eng = engine.New(sess.prog, opts)
	sess.srv.notePlan(sess.eng.PlanReport(), true)
}

// engineProfile converts the server-wide prover profile into the engine's
// wire-free twin, feeding auto-mode tabling selection.
func engineProfile(prof map[string]PredProfile) map[string]engine.PredProfile {
	if len(prof) == 0 {
		return nil
	}
	out := make(map[string]engine.PredProfile, len(prof))
	for pred, p := range prof {
		out[pred] = engine.PredProfile{Calls: p.Calls, Fanout: p.Fanout, TimeUs: p.TimeUs}
	}
	return out
}

// serve is the request loop: one frame in, one frame out, until the
// connection drops or the server shuts down.
func (sess *session) serve() {
	r := bufio.NewReader(sess.conn)
	w := bufio.NewWriter(sess.conn)
	for {
		if t := sess.srv.opts.IdleTimeout; t > 0 {
			sess.conn.SetReadDeadline(time.Now().Add(t))
		}
		var req Request
		if err := readFrame(r, &req, sess.srv.opts.MaxFrame); err != nil {
			break // EOF, deadline, or protocol garbage: drop the session
		}
		began := time.Now()
		sess.spanFresh = false
		resp := sess.handle(&req)
		if h := sess.srv.stats.verbLat[req.Op]; h != nil {
			h.Observe(time.Since(began).Microseconds())
		}
		if err := writeFrame(w, resp); err != nil {
			break
		}
		if err := w.Flush(); err != nil {
			break
		}
		// A sampled transaction's clock survives its handler so that the
		// ack stage covers response serialization and the socket write.
		if clk := sess.clk; clk != nil {
			sess.clk = nil
			clk.mark(stageAck)
			sess.finishStages(clk, &req, resp)
		}
	}
	// An open transaction dies with its session.
	if sess.inTxn {
		sess.d.Undo(sess.beginMark)
		sess.inTxn = false
		sess.srv.stats.aborts.Add(1)
	}
}

func fail(code, format string, args ...any) *Response {
	return &Response{Code: code, Err: fmt.Sprintf(format, args...)}
}

func (sess *session) handle(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpStats:
		st := sess.srv.Stats()
		return &Response{OK: true, Stats: &st}
	case OpLoad:
		return sess.handleLoad(req)
	case OpBegin:
		return sess.handleBegin()
	case OpRun:
		return sess.handleRun(req)
	case OpCommit:
		return sess.handleCommit()
	case OpAbort:
		return sess.handleAbort()
	case OpExec:
		return sess.handleExec(req)
	case OpQuery:
		return sess.handleQuery(req)
	case OpTrace:
		return sess.handleTrace(req)
	case OpVet:
		return sess.handleVet(req)
	case OpCheckpoint:
		return sess.handleCheckpoint()
	case OpAsOf:
		return sess.handleAsOf(req)
	case OpChanges:
		return sess.handleChanges(req)
	case OpProfile:
		return sess.handleProfile(req)
	case OpPlan:
		return sess.handlePlan(req)
	case OpTable:
		return sess.handleTable(req)
	default:
		return fail(CodeBadRequest, "unknown op %q", req.Op)
	}
}

// handleLoad installs a program for this session and commits its facts to
// the shared database (as an ordinary transaction, so it is validated and
// WAL-logged like any other write).
func (sess *session) handleLoad(req *Request) *Response {
	if sess.inTxn {
		return fail(CodeBadRequest, "LOAD inside an open transaction")
	}
	if sess.asOf != nil {
		return fail(CodeBadRequest, "LOAD while pinned AS OF %d (the past is read-only; ASOF off first)", sess.asOfLSN)
	}
	prog, err := parser.Parse(req.Program)
	if err != nil {
		return fail(CodeParse, "program: %v", err)
	}
	for _, f := range prog.Facts {
		if !f.IsGround() {
			return fail(CodeParse, "fact %s is not ground", f)
		}
	}
	if !sess.srv.opts.NoVet {
		rep := analysis.Vet(prog)
		if rep.Err() != nil {
			sess.srv.stats.vetRejects.Add(1)
			resp := fail(CodeVet, "program rejected by static analysis: %v", rep.Err())
			resp.Diagnostics = rep.Diags
			resp.Fragment = rep.Fragment
			return resp
		}
	}
	sess.prog = prog
	sess.varHigh = prog.VarHigh
	sess.buildEngine()
	if resp := sess.commitFacts(prog.Facts); resp != nil {
		return resp
	}
	return &Response{OK: true, Version: sess.version}
}

// commitFacts installs facts through the OCC commit path, retrying on
// conflicts. Returns nil on success.
func (sess *session) commitFacts(facts []term.Atom) *Response {
	for attempt := 0; ; attempt++ {
		sess.srv.syncSession(sess)
		rs := sess.freshReadSet()
		mark := sess.d.Mark()
		sess.d.SetReadHook(rs.observe)
		for _, f := range facts {
			sess.d.Insert(f.Pred, f.Args)
		}
		sess.d.SetReadHook(nil)
		ops := sess.d.DeltaSince(mark)
		if len(ops) == 0 {
			sess.d.Undo(mark)
			return nil // everything already present
		}
		_, err := sess.srv.commit(sess, rs, ops)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, errConflict):
			sess.d.Undo(mark)
			if attempt >= sess.srv.opts.MaxRetries {
				return fail(CodeConflict, "fact installation kept conflicting")
			}
			sess.srv.stats.retries.Add(1)
		default:
			sess.d.Undo(mark)
			return fail(CodeInternal, "%v", err)
		}
	}
}

func (sess *session) handleBegin() *Response {
	if sess.inTxn {
		return fail(CodeBadRequest, "transaction already open")
	}
	if sess.asOf != nil {
		return fail(CodeBadRequest, "BEGIN while pinned AS OF %d (the past is read-only; ASOF off first)", sess.asOfLSN)
	}
	sess.srv.syncSession(sess)
	sess.varHigh = sess.prog.VarHigh
	sess.inTxn = true
	sess.beginMark = sess.d.Mark()
	sess.rs = sess.freshReadSet()
	sess.srv.stats.txnsBegun.Add(1)
	return &Response{OK: true, Version: sess.version}
}

// addEngineStats folds a finished goal's engine statistics and the read
// database's counter delta into the server-wide aggregates. d is whichever
// database the goal ran against (the live replica, or an ASOF pin).
func (sess *session) addEngineStats(d *db.DB, st engine.Stats, before db.Counters) {
	s := &sess.srv.stats
	s.engineSteps.Add(st.Steps)
	s.engineUnifs.Add(st.Unifications)
	s.engineTable.Add(st.TableHits)
	s.planHits.Add(st.PlanHits)
	// Remembered per goal (not summed): the wide event of a sampled
	// transaction reports the memo traffic of its final proof attempt.
	sess.lastMemoHits = st.MemoHits
	sess.lastMemoMisses = st.MemoMisses
	after := d.Counters()
	s.dbLookups.Add(after.Lookups - before.Lookups)
	s.dbIndexHits.Add(after.IndexHits - before.IndexHits)
	s.dbScans.Add(after.Scans - before.Scans)
	s.dbRebuilds.Add(after.OrderRebuilds - before.OrderRebuilds)
}

// finishSpans stamps wall-clock duration onto a traced goal's span tree,
// remembers it for TRACE dump, forwards it to the configured sink, and
// writes the slow-transaction report when the goal blew the threshold.
func (sess *session) finishSpans(sp *obs.Span, elapsed time.Duration) {
	if sp == nil {
		return
	}
	sp.DurUs = elapsed.Microseconds()
	sess.lastSpan = sp
	sess.spanFresh = true
	if sink := sess.srv.opts.TraceSink; sink != nil {
		sink.Emit(sp)
	}
	if slow := sess.srv.opts.SlowTxn; slow > 0 && elapsed >= slow {
		sess.srv.stats.slowTxns.Add(1)
		sess.srv.opts.Logger.Warn("slow transaction",
			"goal", sp.Label,
			"elapsed", elapsed,
			"threshold", slow,
			"steps", sp.Steps,
			"spans", "\n"+sp.Tree())
	}
}

// beginStageClock decides whether the transaction that is starting is
// sampled (1-in-StageSample per session) and, if so, arms the session's
// stage clock. Unsampled transactions get a nil clock: every downstream
// mark site is a nil check and nothing else.
func (sess *session) beginStageClock() *stageClock {
	n := sess.srv.opts.StageSample
	if n <= 0 {
		return nil
	}
	sess.sampleN++
	if sess.sampleN%uint64(n) != 0 {
		return nil
	}
	sess.clkBuf.reset()
	return &sess.clkBuf
}

// finishStages settles a sampled transaction after its response is on the
// wire: stage durations feed the td_txn_stage_us histograms, the wide event
// goes to the sink, and the stage breakdown is grafted onto the goal's span
// tree for TRACE dump.
func (sess *session) finishStages(clk *stageClock, req *Request, resp *Response) {
	sess.srv.stats.recordStages(clk)
	sess.emitWide(clk, req, resp)
	sess.attachStageSpans(clk)
}

// emitWide writes the transaction's one-line summary — identity, outcome,
// commit-path facts, and the full stage breakdown — to the wide-event sink.
func (sess *session) emitWide(clk *stageClock, req *Request, resp *Response) {
	sink := sess.srv.opts.WideSink
	if sink == nil {
		return
	}
	ev := obs.WideEvent{
		Event:      "txn",
		Trace:      sess.srv.traceID.Add(1),
		Session:    sess.id,
		Verb:       req.Op,
		Goal:       req.Goal,
		LSN:        resp.Version,
		Retries:    resp.Retries,
		Conflict:   clk.conflict,
		Lanes:      clk.laneList(),
		CrossShard: clk.crossShard,
		Ops:        clk.ops,
		Batch:      clk.batch,
		TotalUs:    clk.total().Microseconds(),
		MemoHits:   sess.lastMemoHits,
		MemoMisses: sess.lastMemoMisses,
	}
	for i, d := range clk.dur {
		if us := d.Microseconds(); us > 0 {
			if ev.StageUs == nil {
				ev.StageUs = make(map[string]int64, nStages)
			}
			ev.StageUs[stageNames[i]] = us
		}
	}
	sink.EmitWide(&ev)
}

// attachStageSpans grafts the stage breakdown onto the span tree the
// transaction just produced, so TRACE dump shows where the wall-clock went
// alongside the proof structure. The tree is shallow-cloned first: the
// original may already be in the trace sink's hands.
func (sess *session) attachStageSpans(clk *stageClock) {
	sp := sess.lastSpan
	if sp == nil || !sess.spanFresh {
		return
	}
	clone := *sp
	clone.Children = append([]*obs.Span{}, sp.Children...)
	for i, d := range clk.dur {
		if us := d.Microseconds(); us > 0 {
			clone.Children = append(clone.Children, &obs.Span{
				Kind:  "stage",
				Label: stageNames[i],
				DurUs: us,
			})
		}
	}
	sess.lastSpan = &clone
}

// runGoal executes one parsed goal inside the open transaction, recording
// reads into the transaction's read set.
func (sess *session) runGoal(g ast.Goal) (*engine.Result, *Response) {
	began := time.Now()
	sess.deadline = began.Add(sess.srv.opts.MaxGoalTime)
	before := sess.d.Counters()
	sess.d.SetReadHook(sess.rs.observe)
	res, _, err := sess.eng.ProveDelta(g, sess.d)
	sess.d.SetReadHook(nil)
	if res != nil {
		sess.addEngineStats(sess.d, res.Stats, before)
	}
	if err != nil {
		var wv *engine.WatchViolation
		switch {
		case errors.As(err, &wv) && errors.Is(wv.Cause, errGoalTime):
			sess.srv.stats.budgetHits.Add(1)
			return nil, fail(CodeBudget, "goal exceeded wall-clock budget %v", sess.srv.opts.MaxGoalTime)
		case errors.Is(err, engine.ErrBudget), errors.Is(err, engine.ErrDepth):
			sess.srv.stats.budgetHits.Add(1)
			return nil, fail(CodeBudget, "%v", err)
		default:
			return nil, fail(CodeInternal, "%v", err)
		}
	}
	if !res.Success {
		sess.srv.stats.noProof.Add(1)
		return nil, fail(CodeNoProof, "no execution of the goal commits")
	}
	sess.finishSpans(res.Spans, time.Since(began))
	return res, nil
}

func (sess *session) parseGoal(src string) (ast.Goal, *Response) {
	g, high, err := parser.ParseGoal(src, sess.varHigh)
	if err != nil {
		return nil, fail(CodeParse, "goal: %v", err)
	}
	sess.varHigh = high
	return g, nil
}

func bindingsWire(b map[string]term.Term) map[string]string {
	if len(b) == 0 {
		return nil
	}
	out := make(map[string]string, len(b))
	for k, v := range b {
		out[k] = v.String()
	}
	return out
}

func (sess *session) handleRun(req *Request) *Response {
	if !sess.inTxn {
		return fail(CodeBadRequest, "RUN outside a transaction (use BEGIN, or EXEC for one-shots)")
	}
	g, errResp := sess.parseGoal(req.Goal)
	if errResp != nil {
		return errResp
	}
	res, errResp := sess.runGoal(g)
	if errResp != nil {
		return errResp // goal rolled back; transaction stays open
	}
	return &Response{OK: true, Bindings: bindingsWire(res.Bindings)}
}

func (sess *session) handleCommit() *Response {
	if !sess.inTxn {
		return fail(CodeBadRequest, "COMMIT outside a transaction")
	}
	sess.inTxn = false
	// An interactive transaction's proof time was spent in earlier RUN
	// frames; the clock armed here covers validate through ack only.
	sess.clk = sess.beginStageClock()
	ops := sess.d.DeltaSince(sess.beginMark)
	if len(ops) == 0 {
		// Read-only: serializable at its snapshot point, nothing to
		// validate or log.
		return &Response{OK: true, Version: sess.version}
	}
	version, err := sess.srv.commit(sess, sess.rs, ops)
	switch {
	case err == nil:
		return &Response{OK: true, Version: version}
	case errors.Is(err, errConflict):
		sess.d.Undo(sess.beginMark)
		sess.srv.syncSession(sess)
		sess.srv.stats.aborts.Add(1)
		return fail(CodeConflict, "commit conflict: a concurrent transaction won; retry")
	default:
		sess.d.Undo(sess.beginMark)
		sess.srv.stats.aborts.Add(1)
		return fail(CodeInternal, "%v", err)
	}
}

func (sess *session) handleAbort() *Response {
	if !sess.inTxn {
		return fail(CodeBadRequest, "ABORT outside a transaction")
	}
	sess.d.Undo(sess.beginMark)
	sess.inTxn = false
	sess.rs = nil
	sess.srv.stats.aborts.Add(1)
	return &Response{OK: true, Version: sess.version}
}

// handleExec is BEGIN + RUN + COMMIT with server-side conflict retries:
// the paper's iso(goal), executed as one serializable unit.
func (sess *session) handleExec(req *Request) *Response {
	if sess.inTxn {
		return fail(CodeBadRequest, "EXEC inside an open transaction")
	}
	if sess.asOf != nil {
		return fail(CodeBadRequest, "EXEC while pinned AS OF %d (the past is read-only; ASOF off first)", sess.asOfLSN)
	}
	sess.varHigh = sess.prog.VarHigh
	sess.clk = sess.beginStageClock()
	g, errResp := sess.parseGoal(req.Goal)
	if errResp != nil {
		return errResp
	}
	if clk := sess.clk; clk != nil {
		clk.mark(stageParse)
	}
	for attempt := 0; ; attempt++ {
		sess.srv.syncSession(sess)
		sess.srv.stats.txnsBegun.Add(1)
		sess.rs = sess.freshReadSet()
		mark := sess.d.Mark()
		res, errResp := sess.runGoal(g)
		// Replica sync and proof search both charge to prove; retries
		// accumulate (attempt N's proof time adds to attempt N-1's).
		if clk := sess.clk; clk != nil {
			clk.mark(stageProve)
		}
		if errResp != nil {
			sess.srv.stats.aborts.Add(1)
			return errResp
		}
		ops := sess.d.DeltaSince(mark)
		if len(ops) == 0 {
			// Read-only: serializable at its snapshot point.
			return &Response{OK: true, Version: sess.version, Retries: attempt, Bindings: bindingsWire(res.Bindings)}
		}
		version, err := sess.srv.commit(sess, sess.rs, ops)
		switch {
		case err == nil:
			return &Response{OK: true, Version: version, Retries: attempt, Bindings: bindingsWire(res.Bindings)}
		case errors.Is(err, errConflict):
			sess.d.Undo(mark)
			if attempt >= sess.srv.opts.MaxRetries {
				sess.srv.stats.aborts.Add(1)
				return fail(CodeConflict, "gave up after %d conflict retries", attempt)
			}
			sess.srv.stats.retries.Add(1)
		default:
			sess.d.Undo(mark)
			sess.srv.stats.aborts.Add(1)
			return fail(CodeInternal, "%v", err)
		}
	}
}

// handleQuery enumerates solutions without keeping effects. Inside a
// transaction it reads the transaction's state (and its reads count toward
// validation); outside, it reads a fresh snapshot — or, when the session is
// pinned with ASOF, the thawed historical version.
func (sess *session) handleQuery(req *Request) *Response {
	if !sess.inTxn {
		sess.srv.syncSession(sess)
		sess.varHigh = sess.prog.VarHigh
	}
	g, errResp := sess.parseGoal(req.Goal)
	if errResp != nil {
		return errResp
	}
	d := sess.d
	if sess.asOf != nil && !sess.inTxn {
		d = sess.asOf
	}
	if sess.inTxn {
		sess.d.SetReadHook(sess.rs.observe)
		defer sess.d.SetReadHook(nil)
	}
	sess.deadline = time.Now().Add(sess.srv.opts.MaxGoalTime)
	before := d.Counters()
	var sols []map[string]string
	res, err := sess.eng.Enumerate(g, d, req.Max, func(b map[string]term.Term) bool {
		m := bindingsWire(b)
		if m == nil {
			m = map[string]string{}
		}
		sols = append(sols, m)
		return true
	})
	if res != nil {
		sess.addEngineStats(d, res.Stats, before)
	}
	if err != nil {
		var wv *engine.WatchViolation
		if errors.As(err, &wv) && errors.Is(wv.Cause, errGoalTime) {
			sess.srv.stats.budgetHits.Add(1)
			return fail(CodeBudget, "query exceeded wall-clock budget %v", sess.srv.opts.MaxGoalTime)
		}
		if errors.Is(err, engine.ErrBudget) || errors.Is(err, engine.ErrDepth) {
			sess.srv.stats.budgetHits.Add(1)
			return fail(CodeBudget, "%v", err)
		}
		return fail(CodeInternal, "%v", err)
	}
	return &Response{OK: true, Solutions: sols}
}

// handleVet statically analyzes a program without installing it: the
// server-side twin of the tdvet CLI, returning the same diagnostics for
// the same source. It never touches the session's loaded program or the
// shared database.
func (sess *session) handleVet(req *Request) *Response {
	rep, err := analysis.VetSource(req.Program)
	if err != nil {
		return fail(CodeParse, "program: %v", err)
	}
	return &Response{OK: true, Diagnostics: rep.Diags, Fragment: rep.Fragment}
}

// handlePlan runs the tdplan static planner — adornment dataflow, literal
// reorder decisions, and tabling-safety certificates — over a submitted
// program without installing it, or, when no program is submitted, over
// the session's loaded rulebase. Pure analysis: it never touches the
// session engine or the shared database, and it works under NoPlan too.
func (sess *session) handlePlan(req *Request) *Response {
	if req.Program != "" {
		rep, err := analysis.PlanSource(req.Program)
		if err != nil {
			return fail(CodeParse, "program: %v", err)
		}
		return &Response{OK: true, Plan: rep}
	}
	return &Response{OK: true, Plan: analysis.Plan(sess.prog)}
}

// handleTrace toggles session-level tracing or dumps the span tree of the
// most recent successfully proved goal.
func (sess *session) handleTrace(req *Request) *Response {
	switch req.Arg {
	case "on":
		sess.traceOn = true
		sess.buildEngine()
		return &Response{OK: true}
	case "off":
		sess.traceOn = false
		sess.buildEngine()
		return &Response{OK: true}
	case "", "dump":
		if sess.lastSpan == nil {
			return fail(CodeBadRequest, "no traced goal yet (TRACE on, then RUN/EXEC a goal)")
		}
		return &Response{OK: true, Trace: sess.lastSpan}
	default:
		return fail(CodeBadRequest, "TRACE takes on, off, or dump; got %q", req.Arg)
	}
}

// handleProfile toggles per-predicate prover profiling for this session or
// dumps the server-wide attribution (live sessions' counters folded with
// those absorbed from closed sessions and engine rebuilds).
func (sess *session) handleProfile(req *Request) *Response {
	switch req.Arg {
	case "on":
		sess.profOn = true
		sess.buildEngine()
		return &Response{OK: true}
	case "off":
		sess.profOn = false
		sess.buildEngine()
		return &Response{OK: true}
	case "", "dump":
		prof := sess.srv.proverProfile()
		if prof == nil {
			return fail(CodeBadRequest, "no profiled predicates yet (PROFILE on, then RUN/EXEC a goal)")
		}
		return &Response{OK: true, Profile: prof}
	default:
		return fail(CodeBadRequest, "PROFILE takes on, off, or dump; got %q", req.Arg)
	}
}

// handleTable sets the session's tabling mode — "auto" (profile-driven
// top-K), "all" (every eligible predicate), "none" (off), or a
// comma-separated predicate list — rebuilding the session engine, or
// reports status: the mode, the predicates the engine tables, and the
// shared memo store's counters. "on"/"off" alias "auto"/"none".
func (sess *session) handleTable(req *Request) *Response {
	switch req.Arg {
	case "", "status", "dump":
		// Pure read: no engine rebuild.
	case "on", "auto":
		sess.tableMode = "auto"
		sess.buildEngine()
	case "off", "none":
		sess.tableMode = "none"
		sess.buildEngine()
	case "all":
		sess.tableMode = "all"
		sess.buildEngine()
	default:
		// A predicate list ("hot" or "hot/1", comma-separated). Anything
		// naming no eligible predicate simply tables nothing.
		sess.tableMode = req.Arg
		sess.buildEngine()
	}
	return &Response{OK: true, Memo: sess.memoStatus()}
}

// memoStatus assembles the TABLE response: session mode and tabled set,
// shared-store counters.
func (sess *session) memoStatus() *MemoStatus {
	mode := sess.tableMode
	if mode == "" {
		mode = "none"
	}
	st := &MemoStatus{Mode: mode, Tabled: sess.eng.MemoTabled()}
	ms := sess.srv.memo.Snapshot()
	st.Hits, st.Misses = ms.Hits, ms.Misses
	st.Invalidations, st.Evictions = ms.Invalidations, ms.Evictions
	st.Bytes, st.Entries = ms.Bytes, ms.Entries
	for _, p := range ms.Preds {
		st.Preds = append(st.Preds, MemoPredStat{Pred: p.Pred, Hits: p.Hits, Misses: p.Misses})
	}
	return st
}

// handleCheckpoint triggers an incremental checkpoint and reports its LSN.
// Commits keep flowing while it runs; only durable servers can checkpoint.
func (sess *session) handleCheckpoint() *Response {
	lsn, err := sess.srv.Checkpoint()
	if err != nil {
		if sess.srv.store == nil {
			return fail(CodeBadRequest, "%v", err)
		}
		return fail(CodeInternal, "checkpoint: %v", err)
	}
	return &Response{OK: true, LSN: lsn}
}

// handleAsOf pins the session's reads to a historical version ("ASOF 42"),
// or unpins them ("ASOF off"). While pinned, QUERY answers from the thawed
// version and every write verb is refused.
func (sess *session) handleAsOf(req *Request) *Response {
	if sess.inTxn {
		return fail(CodeBadRequest, "ASOF inside an open transaction")
	}
	if req.Arg == "off" {
		sess.asOf = nil
		sess.asOfLSN = 0
		return &Response{OK: true}
	}
	lsn, err := strconv.ParseUint(req.Arg, 10, 64)
	if err != nil {
		return fail(CodeBadRequest, "ASOF takes a decimal LSN or %q; got %q", "off", req.Arg)
	}
	snap, served, err := sess.srv.hist.At(lsn)
	if err != nil {
		return fail(CodeOutOfWindow, "%v", err)
	}
	sess.asOf = snap.Thaw()
	sess.asOfLSN = served
	return &Response{OK: true, LSN: served}
}

// handleChanges streams the committed op deltas since an LSN — the exact
// write sets, in commit order, that take the state at that LSN to the
// current state. Out-of-window and not-yet-committed LSNs are refused with
// CodeOutOfWindow.
func (sess *session) handleChanges(req *Request) *Response {
	lsn, err := strconv.ParseUint(req.Arg, 10, 64)
	if err != nil {
		return fail(CodeBadRequest, "CHANGES takes the decimal LSN to stream from; got %q", req.Arg)
	}
	deltas, err := sess.srv.hist.Since(lsn)
	if err != nil {
		return fail(CodeOutOfWindow, "%v", err)
	}
	out := make([]CommitDelta, len(deltas))
	for i, d := range deltas {
		ops := make([]WireOp, len(d.Ops))
		for j := range d.Ops {
			o := &d.Ops[j]
			verb := "del"
			if o.Insert {
				verb = "ins"
			}
			ops[j] = WireOp{Op: verb, Atom: term.Atom{Pred: o.Pred, Args: o.Row}.String()}
		}
		out[i] = CommitDelta{LSN: d.LSN, Ops: ops}
	}
	return &Response{OK: true, Changes: out, Version: sess.srv.Version()}
}
