package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/term"
	"repro/internal/verify"
)

// shardedBankSrc builds a bank program over n accounts of 1000 each, using
// the same rulebase as bankSrc but enough accounts to populate every lane.
func shardedBankSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "account(n%d, 1000).\n", i)
	}
	b.WriteString(`
	balance(A, B) :- account(A, B).
	change(A, B1, B2) :- del.account(A, B1), ins.account(A, B2).
	withdraw(Amt, A) :- balance(A, B), B >= Amt, sub(B, Amt, C), change(A, B, C).
	deposit(Amt, A) :- balance(A, B), add(B, Amt, C), change(A, B, C).
	transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`)
	return b.String()
}

// TestShardedSerializabilityHammer drives a lane-partitioned server with
// concurrent clients whose transfer mix is ~20% cross-shard, then checks
// the outcome against two oracles: money conservation, and a serial replay
// of every committed transaction in LSN order (LSN order is the serial
// order the sharded commit protocol claims to realize — the replayed final
// state must equal the server's). Run under -race this also exercises the
// multi-lane locking protocol.
func TestShardedSerializabilityHammer(t *testing.T) {
	const (
		nshards  = 8
		accounts = 32
		clients  = 8
		txnsEach = 15
	)
	// Group accounts by the lane their tuples land in, so the test can
	// steer each transfer's cross-shard-ness deliberately. Shard routing is
	// a pure function of (pred, first-arg code), shared with the server.
	names := make([]string, accounts)
	byShard := make(map[int][]string)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
		sh := db.ShardOf(nshards, "account", term.NewSym(names[i]).Code())
		byShard[sh] = append(byShard[sh], names[i])
	}
	var samePairs, crossPairs [][2]string
	for _, group := range byShard {
		for i := 1; i < len(group); i++ {
			samePairs = append(samePairs, [2]string{group[i-1], group[i]})
		}
	}
	for sh, group := range byShard {
		for osh, other := range byShard {
			if sh != osh {
				crossPairs = append(crossPairs, [2]string{group[0], other[0]})
			}
		}
	}
	if len(samePairs) == 0 || len(crossPairs) == 0 {
		t.Fatalf("degenerate account distribution: %d same-lane pairs, %d cross-lane pairs",
			len(samePairs), len(crossPairs))
	}

	src := shardedBankSrc(accounts)
	s, err := New(Options{Program: src, StoreShards: nshards, MaxRetries: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type committed struct {
		lsn  uint64
		goal string
	}
	var (
		mu  sync.Mutex
		log []committed
	)
	wantCross := 0
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.InProcClient()
			defer c.Close()
			for j := 0; j < txnsEach; j++ {
				var pair [2]string
				if j%5 == 0 { // ~20% of the mix spans lanes
					pair = crossPairs[(i*txnsEach+j)%len(crossPairs)]
				} else {
					pair = samePairs[(i*txnsEach+j)%len(samePairs)]
				}
				goal := fmt.Sprintf("transfer(%d, %s, %s)", 1+j%3, pair[0], pair[1])
				res, err := c.Exec(goal)
				if err != nil {
					errCh <- fmt.Errorf("client %d txn %d (%s): %w", i, j, goal, err)
					return
				}
				mu.Lock()
				log = append(log, committed{lsn: res.Version, goal: goal})
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for j := 0; j < txnsEach; j++ {
		if j%5 == 0 {
			wantCross += clients
		}
	}

	// Oracle 1: conservation, exact commit accounting, contiguous LSNs.
	st := s.Stats()
	if st.Commits != clients*txnsEach {
		t.Fatalf("commits = %d, want %d", st.Commits, clients*txnsEach)
	}
	if st.Version != uint64(clients*txnsEach) {
		t.Fatalf("version = %d, want %d (LSNs must stay contiguous across lanes)",
			st.Version, clients*txnsEach)
	}
	d := s.Snapshot().Thaw()
	var sum int64
	for row := range d.All("account", 2) {
		sum += row[1].IntVal()
	}
	if want := int64(accounts) * 1000; sum != want {
		t.Fatalf("total money = %d, want %d", sum, want)
	}

	// Shard accounting: the bank program reads and writes only account
	// tuples, so a transfer is cross-shard exactly when its pair spans
	// lanes, and each commit bumps precisely its write lanes' counters.
	if st.Shards != nshards {
		t.Fatalf("stats shards = %d, want %d", st.Shards, nshards)
	}
	if st.CrossShardCommits != int64(wantCross) {
		t.Fatalf("cross-shard commits = %d, want %d", st.CrossShardCommits, wantCross)
	}
	var laneSum int64
	for _, c := range st.ShardCommits {
		laneSum += c
	}
	if want := st.Commits + int64(wantCross); laneSum != want {
		t.Fatalf("sum of lane commits = %d, want %d (each cross-lane write counts twice)",
			laneSum, want)
	}

	// Oracle 2: serial replay in LSN order. The committed LSNs must be a
	// permutation of 1..N, and replaying the goals in that order from the
	// initial state must land exactly on the server's final state.
	mu.Lock()
	byLSN := make(map[uint64]string, len(log))
	for _, c := range log {
		if _, dup := byLSN[c.lsn]; dup {
			t.Fatalf("two commits acknowledged with LSN %d", c.lsn)
		}
		byLSN[c.lsn] = c.goal
	}
	mu.Unlock()
	prog := parser.MustParse(src)
	replay, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	high := prog.VarHigh
	for lsn := uint64(1); lsn <= uint64(len(byLSN)); lsn++ {
		src, ok := byLSN[lsn]
		if !ok {
			t.Fatalf("no commit acknowledged LSN %d", lsn)
		}
		goal, h, err := parser.ParseGoal(src, high)
		if err != nil {
			t.Fatal(err)
		}
		high = h
		finals, err := verify.Finals(prog, goal, replay, engine.DefaultOptions())
		if err != nil {
			t.Fatalf("replaying %s at LSN %d: %v", src, lsn, err)
		}
		if len(finals) != 1 {
			t.Fatalf("replaying %s at LSN %d: %d final states, want 1", src, lsn, len(finals))
		}
		replay = finals[0]
	}
	if !d.Equal(replay) {
		t.Fatalf("server final state differs from the LSN-order serial replay:\nserver:\n%s\nreplay:\n%s", d, replay)
	}
}
