package server

// Optimistic concurrency control (backward validation, à la Kung-Robinson):
// a transaction records what it read while executing against its snapshot;
// at commit it is checked against the write sets of every transaction that
// committed after the snapshot was taken. Any overlap — read/write or
// write/write — aborts the newcomer, which retries on a fresh snapshot.
//
// Reads are recorded by the database's ReadHook at the granularity the
// lookup actually used: a single tuple key, a first-argument index bucket,
// a whole relation, or a whole predicate (empty.p). Coarser reads conflict
// with any write below them; this over-approximates the witness path's
// true dependencies, which can only cause false conflicts, never missed
// ones.
//
// With a sharded store, every observation is additionally tagged with the
// commit lane (db.ShardOf) the observed tuples live in: key and prefix
// reads name exactly one shard (the shard is a function of predicate and
// first-argument code, which both carry), relation- and predicate-level
// reads touch every shard. The resulting shard mask is what lets commit
// validate against only the lanes the transaction actually touched —
// conflict keys in different shards can never be equal, so scanning a
// lane's commit log with the full (unsharded) read set stays exact.

import (
	"math/bits"
	"strconv"

	"repro/internal/db"
	"repro/internal/term"
)

// readSet accumulates one transaction's read observations.
type readSet struct {
	preds    map[string]bool // predicate name: empty.p at every arity
	rels     map[string]bool // "pred/arity": full scans
	prefixes map[string]bool // "pred/arity|firstArgKey": index-bucket scans
	keys     map[string]bool // "pred/arity|rowKey": ground probes
	nshards  int             // shard count observations are tagged against
	mask     uint64          // shards touched by the observations so far
}

func newReadSet(nshards int) *readSet {
	return &readSet{
		preds:    make(map[string]bool),
		rels:     make(map[string]bool),
		prefixes: make(map[string]bool),
		keys:     make(map[string]bool),
		nshards:  nshards,
	}
}

// allShards is the mask of every shard — what a relation- or
// predicate-level read must be assumed to touch.
func allShards(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// reset empties the read set for reuse, keeping the map storage. Sessions
// run one transaction at a time, so a single read set per session can be
// recycled instead of allocating four maps per attempt.
func (rs *readSet) reset() *readSet {
	clear(rs.preds)
	clear(rs.rels)
	clear(rs.prefixes)
	clear(rs.keys)
	rs.mask = 0
	return rs
}

// relName builds the "pred/arity" conflict key. It runs for every read
// observation and every write of every commit, so no fmt machinery.
func relName(pred string, arity int) string { return pred + "/" + strconv.Itoa(arity) }

// observe is the db.ReadHook target.
func (rs *readSet) observe(kind db.ReadKind, pred string, arity int, key string, first uint64) {
	switch kind {
	case db.ReadKey:
		rs.keys[relName(pred, arity)+"|"+key] = true
		rs.mask |= 1 << uint(db.ShardOf(rs.nshards, pred, first))
	case db.ReadPrefix:
		rs.prefixes[relName(pred, arity)+"|"+key] = true
		rs.mask |= 1 << uint(db.ShardOf(rs.nshards, pred, first))
	case db.ReadRel:
		rs.rels[relName(pred, arity)] = true
		rs.mask = allShards(rs.nshards)
	case db.ReadPred:
		rs.preds[pred] = true
		rs.mask = allShards(rs.nshards)
	}
}

func (rs *readSet) size() int {
	return len(rs.preds) + len(rs.rels) + len(rs.prefixes) + len(rs.keys)
}

// wkey is one committed write, pre-keyed for validation and tagged with the
// commit lane its tuple lives in.
type wkey struct {
	pred   string // predicate name
	rel    string // "pred/arity"
	prefix string // "pred/arity|firstArgKey" ("" for arity 0)
	key    string // "pred/arity|rowKey"
	shard  int    // db.ShardOf(pred, first-arg code)
}

// commitRecord is one entry of a shard's in-memory commit log: the (lane's
// slice of the) write set of a committed transaction, at a version, with
// pre-computed conflict keys. Records are immutable once appended to a log
// — commit validation scans a snapshot of the log with the lane lock
// released.
type commitRecord struct {
	version uint64
	ops     []db.Op
	writes  []wkey
}

func newCommitRecord(nshards int, version uint64, ops []db.Op) commitRecord {
	rec := commitRecord{version: version, ops: ops, writes: make([]wkey, len(ops))}
	for i := range ops {
		o := &ops[i]
		rel := relName(o.Pred, len(o.Row))
		w := wkey{pred: o.Pred, rel: rel, key: rel + "|" + o.Key(), shard: db.OpShard(nshards, o)}
		if len(o.Row) > 0 {
			w.prefix = rel + "|" + term.KeyOf(o.Row[:1])
		}
		rec.writes[i] = w
	}
	return rec
}

// conflictsWith reports whether the committed writes in rec overlap the
// given read set or write set (write keys as produced by newCommitRecord).
func (rec commitRecord) conflictsWith(rs *readSet, writes []wkey) bool {
	for _, w := range rec.writes {
		if rs.preds[w.pred] || rs.rels[w.rel] || rs.keys[w.key] {
			return true
		}
		if w.prefix != "" && rs.prefixes[w.prefix] {
			return true
		}
		for _, mine := range writes {
			if mine.key == w.key {
				return true
			}
		}
	}
	return false
}

// commitIntent is a transaction's write set prepared for the sharded
// commit path: the full conflict-keyed record, the masks of shards its
// reads and writes touch, and — only when the writes span more than one
// lane — the per-shard slices of the ops and keys. Built outside every
// lock.
type commitIntent struct {
	rec       commitRecord
	writeMask uint64 // shards the write set lands in
	mask      uint64 // writeMask | read mask: every lane to lock
	// Per-lane splits, nil for the (common) single-write-shard case, where
	// rec itself is the one lane's record.
	shardOps    [][]db.Op
	shardWrites [][]wkey
}

func newCommitIntent(nshards int, rs *readSet, ops []db.Op) commitIntent {
	in := commitIntent{rec: newCommitRecord(nshards, 0, ops)}
	for i := range in.rec.writes {
		in.writeMask |= 1 << uint(in.rec.writes[i].shard)
	}
	in.mask = in.writeMask | rs.mask
	if in.mask == 0 {
		in.mask = 1 // defensive: a commit with no reads or writes still sequences through lane 0
	}
	if bits.OnesCount64(in.writeMask) > 1 {
		in.shardOps = make([][]db.Op, nshards)
		in.shardWrites = make([][]wkey, nshards)
		for i := range ops {
			sh := in.rec.writes[i].shard
			in.shardOps[sh] = append(in.shardOps[sh], ops[i])
			in.shardWrites[sh] = append(in.shardWrites[sh], in.rec.writes[i])
		}
	}
	return in
}

// crossShard reports whether the transaction's touch-set spans lanes.
func (in *commitIntent) crossShard() bool { return bits.OnesCount64(in.mask) > 1 }
