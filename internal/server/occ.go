package server

// Optimistic concurrency control (backward validation, à la Kung-Robinson):
// a transaction records what it read while executing against its snapshot;
// at commit it is checked against the write sets of every transaction that
// committed after the snapshot was taken. Any overlap — read/write or
// write/write — aborts the newcomer, which retries on a fresh snapshot.
//
// Reads are recorded by the database's ReadHook at the granularity the
// lookup actually used: a single tuple key, a first-argument index bucket,
// a whole relation, or a whole predicate (empty.p). Coarser reads conflict
// with any write below them; this over-approximates the witness path's
// true dependencies, which can only cause false conflicts, never missed
// ones.

import (
	"strconv"

	"repro/internal/db"
	"repro/internal/term"
)

// readSet accumulates one transaction's read observations.
type readSet struct {
	preds    map[string]bool // predicate name: empty.p at every arity
	rels     map[string]bool // "pred/arity": full scans
	prefixes map[string]bool // "pred/arity|firstArgKey": index-bucket scans
	keys     map[string]bool // "pred/arity|rowKey": ground probes
}

func newReadSet() *readSet {
	return &readSet{
		preds:    make(map[string]bool),
		rels:     make(map[string]bool),
		prefixes: make(map[string]bool),
		keys:     make(map[string]bool),
	}
}

// reset empties the read set for reuse, keeping the map storage. Sessions
// run one transaction at a time, so a single read set per session can be
// recycled instead of allocating four maps per attempt.
func (rs *readSet) reset() *readSet {
	clear(rs.preds)
	clear(rs.rels)
	clear(rs.prefixes)
	clear(rs.keys)
	return rs
}

// relName builds the "pred/arity" conflict key. It runs for every read
// observation and every write of every commit, so no fmt machinery.
func relName(pred string, arity int) string { return pred + "/" + strconv.Itoa(arity) }

// observe is the db.ReadHook target.
func (rs *readSet) observe(kind db.ReadKind, pred string, arity int, key string) {
	switch kind {
	case db.ReadKey:
		rs.keys[relName(pred, arity)+"|"+key] = true
	case db.ReadPrefix:
		rs.prefixes[relName(pred, arity)+"|"+key] = true
	case db.ReadRel:
		rs.rels[relName(pred, arity)] = true
	case db.ReadPred:
		rs.preds[pred] = true
	}
}

func (rs *readSet) size() int {
	return len(rs.preds) + len(rs.rels) + len(rs.prefixes) + len(rs.keys)
}

// wkey is one committed write, pre-keyed for validation.
type wkey struct {
	pred   string // predicate name
	rel    string // "pred/arity"
	prefix string // "pred/arity|firstArgKey" ("" for arity 0)
	key    string // "pred/arity|rowKey"
}

// commitRecord is one entry of the in-memory commit log: the write set of a
// committed transaction, at a version, with pre-computed conflict keys.
// Records are immutable once appended to the log — commit validation scans
// a snapshot of the log with the head lock released.
type commitRecord struct {
	version uint64
	ops     []db.Op
	writes  []wkey
}

func newCommitRecord(version uint64, ops []db.Op) commitRecord {
	rec := commitRecord{version: version, ops: ops, writes: make([]wkey, len(ops))}
	for i := range ops {
		o := &ops[i]
		rel := relName(o.Pred, len(o.Row))
		w := wkey{pred: o.Pred, rel: rel, key: rel + "|" + o.Key()}
		if len(o.Row) > 0 {
			w.prefix = rel + "|" + term.KeyOf(o.Row[:1])
		}
		rec.writes[i] = w
	}
	return rec
}

// conflictsWith reports whether the committed writes in rec overlap the
// given read set or write set (write keys as produced by newCommitRecord).
func (rec commitRecord) conflictsWith(rs *readSet, writes []wkey) bool {
	for _, w := range rec.writes {
		if rs.preds[w.pred] || rs.rels[w.rel] || rs.keys[w.key] {
			return true
		}
		if w.prefix != "" && rs.prefixes[w.prefix] {
			return true
		}
		for _, mine := range writes {
			if mine.key == w.key {
				return true
			}
		}
	}
	return false
}
