package server

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"math/bits"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/term"
)

// Options configure a Server. Zero values take the defaults below.
type Options struct {
	// SnapshotPath and WALPath enable durability (db.OpenStore semantics:
	// recover snapshot + WAL, append to the WAL from then on). Both empty
	// means a purely in-memory database.
	SnapshotPath string
	WALPath      string
	// Program is the initial TD program source. Its rules become the
	// default rulebase of every session; its facts are installed into the
	// shared database (set semantics, so reinstalling is idempotent).
	Program string
	// MaxSessions bounds concurrently served sessions; excess connections
	// are rejected with CodeBusy. Default 64.
	MaxSessions int
	// MaxSteps is the proof-search step budget per goal. Default 5e6.
	MaxSteps int64
	// MaxGoalTime is the wall-clock budget per goal (enforced at every
	// database-changing step). Default 10s; negative disables.
	MaxGoalTime time.Duration
	// IdleTimeout closes sessions with no request activity. Default 5m;
	// negative disables.
	IdleTimeout time.Duration
	// MaxRetries bounds server-side EXEC retries after commit conflicts.
	// Default 16.
	MaxRetries int
	// NoSync skips commit durability entirely (the WAL is still written in
	// order; a crash may lose the buffered tail). For benchmarks.
	NoSync bool
	// CommitMaxBatch caps how many pending committers the group-commit
	// flusher accumulates before forcing a WAL sync (only consulted while
	// CommitMaxDelay holds the flusher back). Default 64.
	CommitMaxBatch int
	// CommitMaxDelay bounds how long the flusher may hold a batch open for
	// more committers to join before syncing. The wait is adaptive: the
	// flusher extends it only while new commits keep arriving and flushes
	// at the first quiet interval, and it engages at all only after a
	// multi-commit batch (so a lone committer always syncs immediately).
	// Zero means the 2ms default; negative disables accumulation — the
	// flusher syncs as soon as it is free, and batching only emerges while
	// an fsync is in flight.
	CommitMaxDelay time.Duration
	// MaxFrame bounds accepted request frames. Default DefaultMaxFrame.
	MaxFrame int
	// MaxLog bounds the in-memory commit log used to catch session
	// replicas up; sessions that fall further behind pay a full resync.
	// Default 1024 entries.
	MaxLog int
	// Trace enables structured execution tracing for every session (each
	// session can also opt in individually with the TRACE verb). Tracing
	// costs allocations on the goal path; leave it off for throughput.
	Trace bool
	// SlowTxn logs the span tree of any goal slower than this threshold
	// through Logger (and forces tracing on so the tree exists). Zero
	// disables.
	SlowTxn time.Duration
	// TraceSink receives the span tree of every traced goal (e.g. an
	// obs.RingSink or obs.JSONLSink). Setting it forces tracing on.
	TraceSink obs.Sink
	// Logger receives slow-transaction reports. Default slog.Default().
	Logger *slog.Logger
	// NoVet disables load-time static analysis of uploaded programs. By
	// default LOAD rejects programs whose tdvet report carries
	// error-severity diagnostics (unsafe updates, recursion through '|');
	// the VET verb works either way.
	NoVet bool
	// CheckpointInterval checkpoints the store on a wall-clock cadence
	// (durable mode only). Zero disables the timer trigger; the manual
	// CHECKPOINT verb works regardless.
	CheckpointInterval time.Duration
	// CheckpointWALSize checkpoints whenever the WAL grows past this many
	// bytes (durable mode only). Zero disables the size trigger.
	CheckpointWALSize int64
	// HistoryWindow bounds how many recent commit versions are retained
	// for ASOF reads and CHANGES deltas. Default 256; negative disables
	// retention (only the current version is addressable).
	HistoryWindow int
	// StoreShards partitions the live store and the OCC machinery into this
	// many commit lanes (keyed by predicate, refined by first-argument
	// hash), each with its own apply lock, version counter, and commit-log
	// window. Transactions touching disjoint lanes validate and apply in
	// parallel; cross-lane transactions take every touched lane's lock in
	// index order. Durability is unaffected: all lanes feed one WAL and one
	// group-commit flusher. Default GOMAXPROCS, clamped to [1, 64]; 1
	// reproduces the unsharded behavior exactly. Durable stores pin the
	// count in their checkpoint manifests and refuse to reopen under a
	// different one.
	StoreShards int
	// StageSample enables stage-level latency attribution on every Nth
	// transaction per session: the sampled transaction carries a stage
	// clock from parse to acknowledgment, feeding the
	// td_txn_stage_us{stage=} histograms, the STATS stage quantiles, and
	// the wide-event stream. 0 disables attribution (the default); setting
	// WideSink without a sample rate implies 1 (every transaction).
	StageSample int
	// WideSink receives one "wide event" per sampled transaction: the
	// canonical log line carrying the verb, goal, LSN, retries, touched
	// lanes, conflict cause, fsync batch size, and all stage timings.
	// Typically an obs.JSONLSink shared with TraceSink.
	WideSink obs.WideSink
	// SLOs are latency objectives tracked against the commit and fsync
	// signals (matched by SLO.Name: "commit" observes end-to-end commit
	// latency, "fsync" the flusher's sync latency). Each is exported as
	// td_slo_*{slo=} series and a STATS entry; a burn-rate crossing above
	// 1.0 is logged once per breach episode through Logger. Build them
	// with obs.ParseSLOs ("commit:5ms:0.999,fsync:20ms:0.99").
	SLOs []*obs.SLO
	// Profile enables per-predicate prover attribution for every session
	// (each session can also opt in with the PROFILE verb). The aggregate
	// is served by PROFILE dump, the STATS prover_profile section, and the
	// td_prover_pred_us{pred=} metric family.
	Profile bool
	// NoPlan disables the tdplan static planner for session engines: rule
	// bodies evaluate in textual order, reproducing pre-planner behavior
	// exactly. Planning is on by default (answer sets are unchanged by
	// construction; only literal order inside sequential conjunctions
	// differs). The PLAN verb works either way.
	NoPlan bool
	// Table selects tabled evaluation for session engines: "auto" tables
	// the top-K tabling-eligible predicates by observed prover profile,
	// "all" every eligible one, a comma-separated list exactly those named,
	// and "" or "none" disables tabling (the default — the proof path then
	// pays a single nil check). Sessions share one snapshot-fingerprinted
	// memo store, so replicas reuse each other's fills; the TABLE verb
	// overrides the mode per session.
	Table string
	// TableMaxMB bounds the shared memo store's answer storage; least
	// recently used entries are evicted beyond it. 0 means the engine
	// default (64 MB).
	TableMaxMB int
}

func (o Options) withDefaults() Options {
	if o.MaxSessions == 0 {
		o.MaxSessions = 64
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 5_000_000
	}
	if o.MaxGoalTime == 0 {
		o.MaxGoalTime = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 16
	}
	if o.CommitMaxBatch == 0 {
		o.CommitMaxBatch = 64
	}
	if o.CommitMaxDelay == 0 {
		o.CommitMaxDelay = 2 * time.Millisecond
	} else if o.CommitMaxDelay < 0 {
		o.CommitMaxDelay = 0
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxLog == 0 {
		o.MaxLog = 1024
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.HistoryWindow == 0 {
		o.HistoryWindow = 256
	} else if o.HistoryWindow < 0 {
		o.HistoryWindow = 0
	}
	if o.StoreShards == 0 {
		o.StoreShards = runtime.GOMAXPROCS(0)
	}
	if o.StoreShards < 1 {
		o.StoreShards = 1
	}
	if o.StoreShards > 64 {
		o.StoreShards = 64 // shard masks are uint64 bit sets
	}
	if o.WideSink != nil && o.StageSample == 0 {
		// A wide-event sink without an explicit rate means "every txn":
		// an armed sink that silently never emits would be a foot-gun.
		o.StageSample = 1
	}
	return o
}

// errConflict is the internal commit-validation failure; sessions translate
// it into CodeConflict responses (and EXEC retries).
var errConflict = errors.New("server: commit conflict")

// errShutdown is returned once Close has begun.
var errShutdown = errors.New("server: shutting down")

// shard is one commit lane: a partition of the live store (by predicate,
// refined by first-argument hash — db.ShardOf) with its own apply lock,
// commit-log window, and version counter. Transactions whose read/write
// sets touch disjoint shards validate and apply fully in parallel; only
// the LSN assignment and the WAL append sequence through the global
// sequencer lock, which covers no validation scan and no apply work.
type shard struct {
	idx int

	// mu guards head, clog, clogLo, and floor. Lock ordering: shard locks
	// are only ever taken in ascending index order; the sequencer lock
	// (Server.seqMu) and the registry lock (Server.mu) nest strictly
	// inside shard locks, never around them.
	mu   sync.Mutex
	head *db.DB // the authoritative tuples of this lane

	// The lane's commit log is an append-only slice plus a live-window
	// offset: clog[clogLo:] is the live log; entries below clogLo are dead
	// but never overwritten. Records are immutable once appended, so
	// commit validation can snapshot a subslice under mu and scan it after
	// releasing the lock. Unlike the old monolithic log, a lane's LSN
	// sequence has gaps (it holds only the commits that touched this
	// lane), so lookups binary-search on version instead of indexing by
	// offset. The log holds every record of this lane with version >
	// floor; a replica whose lane version is below floor must full-resync.
	clog   []commitRecord
	clogLo int
	floor  uint64

	// version is the LSN of the newest commit applied to this lane. It is
	// written only under mu but read lock-free by the catch-up fast path.
	version atomic.Uint64

	// commits counts commits whose write set landed in this lane
	// (td_shard_commits_total{shard=}).
	commits atomic.Int64
}

// suffixLocked returns the lane's records with version > after, capped so
// later appends stay out of reach of the caller's lock-free scan. The
// lane's versions are sparse, so this is a binary search, not arithmetic.
func (sh *shard) suffixLocked(after uint64) []commitRecord {
	lo, hi := sh.clogLo, len(sh.clog)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if sh.clog[m].version <= after {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return sh.clog[lo:len(sh.clog):len(sh.clog)]
}

// Server is a concurrent multi-client transaction service over one shared
// Transaction Datalog database.
type Server struct {
	opts  Options
	prog  *ast.Program
	start time.Time
	stats serverStats
	reg   *obs.Registry
	sem   chan struct{}

	// The live store, partitioned into commit lanes. nshards and the slice
	// are immutable after New; all mutable lane state is inside each shard.
	nshards int
	shards  []*shard

	// seqMu is the global sequencer: it assigns each commit its LSN (the
	// next version — LSNs stay contiguous, which ASOF/CHANGES and the
	// history window rely on), appends the WAL block, and advances the
	// frozen view and the history window. It is taken only with the
	// commit's shard locks already held (so the LSN order of any two
	// commits touching a common lane matches their lane apply order) and
	// covers no validation and no store apply.
	seqMu   sync.Mutex
	frozen  db.FrozenDB
	hist    *history.Window // retained versions for ASOF/CHANGES
	version atomic.Uint64   // written under seqMu; read lock-free

	store *db.Store             // nil in memory-only mode; detached from its DB
	group *groupCommit          // nil in memory-only or NoSync mode
	ckptr *history.Checkpointer // nil in memory-only mode

	// sessID and traceID are serial counters stamping sessions and sampled
	// transactions for wide-event correlation.
	sessID  atomic.Uint64
	traceID atomic.Uint64

	// mu guards the session registry and lifecycle state. It nests inside
	// shard locks (lane pruning reads replica positions under it) and must
	// never be held while taking a shard lock or seqMu.
	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	// deadProf accumulates per-predicate prover attribution from engines
	// that went away (closed sessions, PROFILE/TRACE/LOAD engine rebuilds),
	// so the profile outlives both. Guarded by mu.
	deadProf map[string]PredProfile
	// planPreds maps each planned derived predicate to its tabling
	// eligibility, merged from every computed plan (initial program at New,
	// session programs at LOAD). Feeds the td_plan_tabling_eligible{pred=}
	// gauge family and the STATS eligible count. Guarded by mu.
	planPreds map[string]bool

	// memo is the shared answer store for tabled evaluation: every tabled
	// session engine fills and replays through it, keyed by program hash +
	// call pattern and guarded by support-set content fingerprints (so the
	// private replicas need no invalidation protocol). Always present —
	// TABLE can enable tabling at runtime on a server started with
	// Options.Table unset — and empty until a tabled goal runs.
	memo *engine.MemoStore

	ln net.Listener
	wg sync.WaitGroup
}

// New builds a server: opens (or recovers) the store, parses the initial
// program, and installs its facts into the shared database.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	prog, err := parser.Parse(opts.Program)
	if err != nil {
		return nil, fmt.Errorf("server: initial program: %w", err)
	}
	if !opts.NoVet {
		if verr := analysis.Vet(prog).Err(); verr != nil {
			return nil, fmt.Errorf("server: initial program: %w", verr)
		}
	}
	s := &Server{
		opts:     opts,
		prog:     prog,
		start:    time.Now(),
		reg:      obs.NewRegistry(),
		sem:      make(chan struct{}, opts.MaxSessions),
		sessions: make(map[*session]struct{}),
		nshards:  opts.StoreShards,
	}
	s.stats.init(s.reg)
	s.stats.logger = opts.Logger
	for _, slo := range opts.SLOs {
		switch slo.Name {
		case "commit":
			s.stats.sloCommit = append(s.stats.sloCommit, slo)
		case "fsync":
			s.stats.sloFsync = append(s.stats.sloFsync, slo)
		default:
			return nil, fmt.Errorf("server: SLO %q names no latency signal (have commit, fsync)", slo.Name)
		}
		slo.Register(s.reg)
	}
	s.reg.FamilyFunc("td_prover_pred_us",
		"prover time attributed per predicate in microseconds (flat, most-recent-dispatch)",
		"counter", func() []obs.Sample {
			prof := s.proverProfile()
			out := make([]obs.Sample, 0, len(prof))
			for pred, p := range prof {
				out = append(out, obs.Sample{Labels: `pred="` + pred + `"`, Value: p.TimeUs})
			}
			return out
		})
	s.reg.FamilyFunc("td_plan_tabling_eligible",
		"tabling-safety certificate per derived predicate (1 = memoizable per snapshot version)",
		"gauge", func() []obs.Sample {
			s.mu.Lock()
			defer s.mu.Unlock()
			out := make([]obs.Sample, 0, len(s.planPreds))
			for pred, ok := range s.planPreds {
				var v int64
				if ok {
					v = 1
				}
				out = append(out, obs.Sample{Labels: `pred="` + pred + `"`, Value: v})
			}
			return out
		})
	if !opts.NoPlan {
		// Seed the eligibility gauge from the initial program before any
		// session connects; session engine builds keep it merged.
		s.notePlan(analysis.Plan(prog), false)
	}
	s.memo = engine.NewMemoStore(opts.TableMaxMB)
	memoCounter := func(pick func(h, m, i, e int64) int64) func() int64 {
		return func() int64 { return pick(s.memo.Counters()) }
	}
	s.reg.CounterFunc("td_memo_hits_total", "tabled calls answered by memo-table replay",
		memoCounter(func(h, _, _, _ int64) int64 { return h }))
	s.reg.CounterFunc("td_memo_misses_total", "tabled calls that filled the memo table",
		memoCounter(func(_, m, _, _ int64) int64 { return m }))
	s.reg.CounterFunc("td_memo_invalidations_total", "memo entries dropped on a stale support fingerprint",
		memoCounter(func(_, _, i, _ int64) int64 { return i }))
	s.reg.CounterFunc("td_memo_evictions_total", "memo entries evicted by the LRU byte bound",
		memoCounter(func(_, _, _, e int64) int64 { return e }))
	s.reg.GaugeFunc("td_memo_bytes", "answer bytes held by the shared memo store", func() int64 {
		b, _ := s.memo.Usage()
		return b
	})
	s.reg.GaugeFunc("td_version", "current commit version of the shared database",
		func() int64 { return int64(s.Version()) })
	s.reg.GaugeFunc("td_db_size", "tuples in the shared database", func() int64 {
		s.seqMu.Lock()
		defer s.seqMu.Unlock()
		return int64(s.frozen.Size())
	})
	s.reg.GaugeFunc("td_wal_bytes", "bytes appended to the write-ahead log", func() int64 {
		if s.store == nil {
			return 0
		}
		return s.store.WALSize()
	})
	s.reg.GaugeFunc("td_uptime_seconds", "seconds since the server started",
		func() int64 { return int64(time.Since(s.start).Seconds()) })
	poolStats := func(hits bool) int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var total int64
		for sess := range s.sessions {
			h, m := sess.eng.PoolStats()
			if hits {
				total += h
			} else {
				total += m
			}
		}
		return total
	}
	s.reg.CounterFuncL("td_engine_pool_derivations_total",
		"derivation-state acquisitions by live sessions, by pool outcome",
		`outcome="reuse"`, func() int64 { return poolStats(true) })
	s.reg.CounterFuncL("td_engine_pool_derivations_total",
		"derivation-state acquisitions by live sessions, by pool outcome",
		`outcome="alloc"`, func() int64 { return poolStats(false) })
	var head *db.DB
	if opts.SnapshotPath != "" || opts.WALPath != "" {
		if opts.SnapshotPath == "" || opts.WALPath == "" {
			return nil, errors.New("server: need both SnapshotPath and WALPath for durability")
		}
		store, err := db.OpenStore(opts.SnapshotPath, opts.WALPath)
		if err != nil {
			return nil, err
		}
		// A checkpoint taken under one shard count must not be reopened
		// under another (the manifest records it; PinShards checks).
		if err := store.PinShards(s.nshards); err != nil {
			store.Close()
			return nil, err
		}
		s.store = store
		head = store.DB
	} else {
		head = db.New()
	}
	if err := s.installFacts(head, prog.Facts); err != nil {
		return nil, err
	}
	s.frozen = db.FreezeDB(head)
	var boot uint64
	if s.store != nil {
		// Commit versions are persistent: the version counter resumes from
		// the recovered LSN so that version N names the same commit across
		// restarts (the property ASOF, CHANGES, and the WAL's commit
		// boundaries all build on). In-memory servers keep counting from 0.
		boot = s.store.LastLSN()
		s.version.Store(boot)
		rec := s.store.Recovery()
		s.stats.recoveryReplayed.Store(int64(rec.ReplayedRecords))
		// From here on the server owns the tuples, partitioned into lanes;
		// the store keeps only the WAL/checkpoint machinery. ApplyCommit
		// becomes a pure log append.
		s.store.DetachDB()
	}
	heads := db.Split(head, s.nshards)
	s.shards = make([]*shard, s.nshards)
	for i, h := range heads {
		sh := &shard{idx: i, head: h, floor: boot}
		sh.version.Store(boot)
		s.shards[i] = sh
	}
	for i := range s.shards {
		sh := s.shards[i]
		s.reg.CounterFuncL("td_shard_commits_total", "commits applied per store shard (commit lane)",
			`shard="`+strconv.Itoa(i)+`"`, sh.commits.Load)
	}
	s.reg.CounterFunc("td_cross_shard_commits_total",
		"commits whose read/write touch-set spanned more than one shard", s.stats.crossShardCommits.Load)
	s.reg.GaugeFuncF("td_cross_shard_fraction",
		"fraction of commits that spanned more than one shard", func() float64 {
			total := s.stats.commits.Load()
			if total == 0 {
				return 0
			}
			return float64(s.stats.crossShardCommits.Load()) / float64(total)
		})
	s.hist = history.NewWindow(opts.HistoryWindow, s.version.Load(), s.frozen)
	if s.store != nil && !opts.NoSync {
		s.group = newGroupCommit(s.store, &s.stats, opts.CommitMaxBatch, opts.CommitMaxDelay)
	}
	if s.store != nil {
		s.ckptr = history.NewCheckpointer(
			history.CheckpointPolicy{Interval: opts.CheckpointInterval, WALSize: opts.CheckpointWALSize},
			s.store.WALSize,
			func() error { _, err := s.Checkpoint(); return err },
			opts.Logger)
		s.ckptr.Start()
	}
	return s, nil
}

// installFacts seeds the initial program's facts — but only into an EMPTY
// database. A recovered database already reflects every committed
// transaction; re-inserting seed facts that later transactions deleted
// would resurrect stale tuples. Runs at boot, before the head is split
// into lanes.
func (s *Server) installFacts(head *db.DB, facts []term.Atom) error {
	for _, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("server: initial fact %s is not ground", f)
		}
	}
	if head.Size() > 0 || len(facts) == 0 {
		return nil
	}
	ops := make([]db.Op, len(facts))
	for i, f := range facts {
		ops[i] = db.Op{Insert: true, Pred: f.Pred, Row: f.Args}
	}
	if s.store != nil {
		// The seed installation is a real commit with a real LSN; recovery
		// must be able to tell it apart from (and order it against) every
		// later commit.
		if _, err := s.store.ApplyCommit(ops, s.store.LastLSN()+1); err != nil {
			return err
		}
		return s.store.Commit()
	}
	head.Apply(ops)
	head.ResetTrail()
	return nil
}

// Listen starts accepting TCP connections on addr (e.g. ":7077"); the
// returned address carries the bound port when addr uses :0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go s.ServeConn(conn)
		}
	}()
	return ln.Addr(), nil
}

// ServeConn runs one session over conn (any net.Conn — a TCP connection or
// one end of a net.Pipe), blocking until the session ends. Admission
// control applies: beyond MaxSessions the connection is refused with a
// CodeBusy frame.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.refuse(conn, CodeShutdown, "server shutting down")
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	default:
		s.stats.rejected.Add(1)
		s.refuse(conn, CodeBusy, "too many sessions")
		return
	}
	defer func() { <-s.sem }()
	sess := s.newSession(conn)
	defer s.dropSession(sess)
	s.stats.sessionsOpen.Add(1)
	s.stats.sessionsTotal.Add(1)
	defer s.stats.sessionsOpen.Add(-1)
	sess.serve()
}

// refuse answers exactly one request with an error frame and closes the
// connection. It reads the request first — synchronous transports
// (net.Pipe) would otherwise deadlock, with the client blocked writing its
// request and the server blocked writing the refusal — under a short
// deadline so a silent client cannot pin the goroutine.
func (s *Server) refuse(conn net.Conn, code, msg string) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	var req Request
	readFrame(bufio.NewReader(conn), &req, s.opts.MaxFrame)
	writeFrame(conn, &Response{Code: code, Err: msg})
	conn.Close()
}

// InProcClient connects a client to the server through an in-process pipe
// — the same protocol and session machinery, no sockets.
func (s *Server) InProcClient() *Client {
	c1, c2 := net.Pipe()
	go s.ServeConn(c2)
	return NewClient(c1)
}

// newSession registers a session with a private replica built from the
// current lane heads.
func (s *Server) newSession(conn net.Conn) *session {
	sess := &session{
		srv:       s,
		conn:      conn,
		id:        s.sessID.Add(1),
		prog:      s.prog,
		varHigh:   s.prog.VarHigh,
		applied:   make([]atomic.Uint64, s.nshards),
		tableMode: s.opts.Table,
	}
	s.rebuildReplica(sess)
	sess.buildEngine()
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	return sess
}

func (s *Server) dropSession(sess *session) {
	sess.conn.Close()
	s.absorbProfile(sess.eng)
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.pruneShardLocked(sh)
		sh.mu.Unlock()
	}
}

// absorbProfile folds an engine's per-predicate prover attribution into the
// server-wide aggregate. Sessions close and engines get rebuilt (LOAD,
// TRACE, PROFILE all replace the session engine); the profile outlives both
// by being harvested here first. A nil engine or an unprofiled one
// contributes nothing.
func (s *Server) absorbProfile(eng *engine.Engine) {
	if eng == nil {
		return
	}
	prof := eng.ProfileSnapshot()
	if prof == nil {
		return
	}
	s.mu.Lock()
	if s.deadProf == nil {
		s.deadProf = make(map[string]PredProfile, len(prof))
	}
	for pred, p := range prof {
		agg := s.deadProf[pred]
		agg.Calls += p.Calls
		agg.Fanout += p.Fanout
		agg.TimeUs += p.TimeUs
		s.deadProf[pred] = agg
	}
	s.mu.Unlock()
}

// notePlan folds one computed plan into the server-wide planning state:
// the tabling-eligibility map always, the reorder counter only when the
// plan was installed into a session engine (count). Later plans win per
// predicate, so LOADing a changed program updates the gauge in place.
func (s *Server) notePlan(rep *analysis.PlanReport, count bool) {
	if rep == nil {
		return
	}
	if count {
		s.stats.planReorders.Add(int64(rep.Reorders))
	}
	s.mu.Lock()
	if s.planPreds == nil {
		s.planPreds = make(map[string]bool, len(rep.Predicates))
	}
	for _, pp := range rep.Predicates {
		s.planPreds[pp.Pred] = pp.TablingEligible
	}
	s.mu.Unlock()
}

// proverProfile aggregates per-predicate prover attribution: the retained
// totals of dead engines plus a snapshot of every live session's engine.
// Returns nil when nothing was ever profiled, keeping the STATS section and
// the metric family off for unprofiled servers.
func (s *Server) proverProfile() map[string]PredProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out map[string]PredProfile
	add := func(pred string, p PredProfile) {
		if out == nil {
			out = make(map[string]PredProfile)
		}
		agg := out[pred]
		agg.Calls += p.Calls
		agg.Fanout += p.Fanout
		agg.TimeUs += p.TimeUs
		out[pred] = agg
	}
	for pred, p := range s.deadProf {
		add(pred, p)
	}
	for sess := range s.sessions {
		for pred, p := range sess.eng.ProfileSnapshot() {
			add(pred, PredProfile{Calls: p.Calls, Fanout: p.Fanout, TimeUs: p.TimeUs})
		}
	}
	return out
}

// rebuildReplica builds the session's replica from scratch out of the lane
// heads, one lane at a time — the per-lane positions may be torn across
// lanes, which is fine: validation and catch-up are per lane. The global
// version is read FIRST, so by the time each lane is absorbed it holds at
// least every commit with LSN <= that version, making sess.version a sound
// fast-path watermark.
func (s *Server) rebuildReplica(sess *session) {
	head := s.version.Load()
	fresh := db.New()
	for i, sh := range s.shards {
		sh.mu.Lock()
		ver := sh.version.Load()
		fresh.AbsorbFrom(sh.head)
		sh.mu.Unlock()
		sess.applied[i].Store(ver)
	}
	sess.d = fresh
	sess.version = head
}

// syncSession brings a session's replica up to the current head version.
// The fast path — nothing committed since the replica's version — is a
// single atomic load; behind it, only the lanes that actually advanced
// past the replica's per-lane position are caught up, each under its own
// lane lock.
func (s *Server) syncSession(sess *session) {
	head := s.version.Load()
	if head == sess.version {
		return
	}
	for i := range s.shards {
		if !s.catchUpShard(sess, i) {
			// A lane's log was pruned past the replica: full resync.
			s.rebuildReplica(sess)
			return
		}
	}
	sess.version = head
}

// catchUpShard applies lane i's commit-log suffix the session has not seen.
// It reports false when the lane's log no longer reaches back far enough
// (the caller must full-resync).
func (s *Server) catchUpShard(sess *session, i int) bool {
	sh := s.shards[i]
	from := sess.applied[i].Load()
	if sh.version.Load() == from {
		return true
	}
	sh.mu.Lock()
	if from < sh.floor {
		sh.mu.Unlock()
		return false
	}
	suffix := sh.suffixLocked(from)
	ver := sh.version.Load()
	sh.mu.Unlock()
	for j := range suffix {
		sess.d.Apply(suffix[j].ops)
	}
	sess.d.ResetTrail()
	sess.applied[i].Store(ver)
	return true
}

// commit validates a transaction's read/write sets against everything that
// committed after the session's replica positions and, on success, applies
// the write set to the touched lanes, appends it to the WAL, and waits for
// the group-commit flusher to make it durable before returning (unless
// NoSync). On conflict it returns errConflict without touching shared
// state; the session must roll its replica back and resync.
//
// The commit path is the three-stage pipeline of the monolithic design,
// run per commit lane:
//
//  1. Backward validation runs against immutable snapshots of the touched
//     lanes' commit logs, each taken under a brief lane lock — the
//     O(history) conflict scans happen with every lock RELEASED,
//     concurrent with other committers.
//  2. The locks of ALL touched lanes (reads and writes — a lane we only
//     read from must not admit a winner between our validation and our
//     LSN) are taken in ascending index order; each lane re-validates
//     only the records that committed during stage 1 (usually none). A
//     clean commit applies its ops to the write lanes' heads, then takes
//     the sequencer lock just long enough to claim the next LSN, append
//     the WAL block (buffered, not synced), and advance the frozen view
//     and the history window; the commit records are published to the
//     write lanes' logs before the lane locks drop. Commits touching
//     disjoint lanes never meet on any of this except the sequencer,
//     which does O(ops) map-free work.
//  3. The committer waits, lock-free, for the flusher goroutine to cover
//     its LSN with a batched WAL fsync (WAL-before-ack per batch: the
//     sync that acknowledges a commit always covers its records).
//
// Because every lane in the read OR write mask is locked through LSN
// assignment, LSN order is an admissible serial order: any commit ordered
// before ours on a lane we touched published its lane records (and its
// effects) before we validated or applied there.
//
// The session's replica must already contain exactly ops on top of its
// per-lane positions; on success it is caught up to the new head in place.
func (s *Server) commit(sess *session, rs *readSet, ops []db.Op) (uint64, error) {
	started := time.Now()
	clk := sess.clk // nil unless this transaction is stage-sampled
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return 0, errShutdown
	}
	if err := s.group.failed(); err != nil {
		// A WAL sync failed earlier: refuse to apply state that can no
		// longer be made durable.
		return 0, err
	}
	in := newCommitIntent(s.nshards, rs, ops) // conflict keys + lane split, outside every lock
	if clk != nil {
		clk.lanes |= in.mask
		clk.ops += len(ops)
		clk.crossShard = clk.crossShard || in.crossShard()
	}

	// Stage 1a: snapshot each touched lane's validation view.
	views := make([][]commitRecord, s.nshards)
	snaps := make([]uint64, s.nshards)
	for i := 0; i < s.nshards; i++ {
		if in.mask&(1<<uint(i)) == 0 {
			continue
		}
		sh := s.shards[i]
		from := sess.applied[i].Load()
		sh.mu.Lock()
		if from < sh.floor {
			// History needed for validation was pruned: conservatively abort.
			sh.mu.Unlock()
			s.stats.conflicts.Add(1)
			s.stats.conflictStale.Add(1)
			if clk != nil {
				clk.conflict = "stale_replica"
			}
			return 0, errConflict
		}
		views[i] = sh.suffixLocked(from)
		snaps[i] = sh.version.Load()
		sh.mu.Unlock()
	}

	// Stage 1b: validate against committed history without any lock.
	for i := range views {
		for j := range views[i] {
			if views[i][j].conflictsWith(rs, in.rec.writes) {
				s.stats.conflicts.Add(1)
				s.stats.conflictRW.Add(1)
				if clk != nil {
					clk.conflict = "read_write"
				}
				return 0, errConflict
			}
		}
	}
	if clk != nil {
		clk.mark(stageValidate)
	}

	// Stage 2: lock every touched lane in index order, re-validate the
	// deltas that committed meanwhile, then apply and sequence.
	locked := make([]*shard, 0, bits.OnesCount64(in.mask))
	unlockAll := func() {
		for _, sh := range locked {
			sh.mu.Unlock()
		}
	}
	for i := 0; i < s.nshards; i++ {
		if in.mask&(1<<uint(i)) != 0 {
			s.shards[i].mu.Lock()
			locked = append(locked, s.shards[i])
		}
	}
	if clk != nil {
		clk.mark(stageLaneWait)
	}
	deltas := make([][]commitRecord, s.nshards)
	for _, sh := range locked {
		if sess.applied[sh.idx].Load() < sh.floor {
			// The lane pruned past us while we validated (MaxLog stranding):
			// conservatively abort.
			unlockAll()
			s.stats.conflicts.Add(1)
			s.stats.conflictStale.Add(1)
			if clk != nil {
				clk.conflict = "stale_replica"
			}
			return 0, errConflict
		}
		delta := sh.suffixLocked(snaps[sh.idx])
		for j := range delta {
			if delta[j].conflictsWith(rs, in.rec.writes) {
				unlockAll()
				s.stats.conflicts.Add(1)
				s.stats.conflictRW.Add(1)
				if clk != nil {
					clk.conflict = "read_write"
				}
				return 0, errConflict
			}
		}
		deltas[sh.idx] = delta
	}
	if clk != nil {
		clk.mark(stageValidate) // delta re-checks accumulate onto validate
	}

	// Apply to the write lanes' heads in original op order, collecting the
	// effective ops (set-semantic no-ops are neither applied nor logged —
	// the same filtering the attached store used to do).
	var effective []db.Op
	if s.store != nil {
		effective = make([]db.Op, 0, len(ops))
	}
	for k := range ops {
		sh := s.shards[in.rec.writes[k].shard]
		if sh.head.ApplyOne(&ops[k]) && effective != nil {
			effective = append(effective, ops[k])
		}
	}
	for _, sh := range locked {
		if in.writeMask&(1<<uint(sh.idx)) != 0 {
			sh.head.ResetTrail()
		}
	}
	if clk != nil {
		clk.mark(stageApply)
	}

	// Sequence: claim the LSN, append the WAL block, advance the global
	// views. LSNs stay contiguous — every commit sequences here.
	s.seqMu.Lock()
	lsn := s.version.Load() + 1
	if s.store != nil {
		// The WAL block carries the commit's LSN, so recovery and the
		// checkpointer can name durable prefixes by commit version.
		if _, err := s.store.ApplyCommit(effective, lsn); err != nil {
			s.seqMu.Unlock()
			unlockAll()
			return 0, err
		}
	}
	s.frozen = s.frozen.ApplyOps(ops)
	// Retain the version for time travel: the ops are the immutable commit
	// record's write set, the snapshot is the O(1)-forked frozen head.
	// Monotonicity is guaranteed under seqMu, so Append cannot fail.
	_ = s.hist.Append(lsn, ops, s.frozen)
	s.version.Store(lsn)
	s.group.noteAppend(lsn)
	s.seqMu.Unlock()
	if clk != nil {
		clk.mark(stageWALAppend)
	}

	// Publish the commit records to the write lanes and advance the
	// session's positions on every touched lane (a read-only lane cannot
	// have moved — we held its lock), then release the lanes.
	for _, sh := range locked {
		if in.writeMask&(1<<uint(sh.idx)) == 0 {
			continue
		}
		rec := in.rec
		if in.shardOps != nil {
			rec = commitRecord{ops: in.shardOps[sh.idx], writes: in.shardWrites[sh.idx]}
		}
		rec.version = lsn
		sh.clog = append(sh.clog, rec)
		sh.version.Store(lsn)
		sh.commits.Add(1)
		s.pruneShardLocked(sh)
	}
	for _, sh := range locked {
		sess.applied[sh.idx].Store(lsn)
	}
	sess.version = lsn
	unlockAll()

	// The committer's replica holds (its old per-lane positions + ops);
	// fold in the concurrent but non-overlapping writes it validated
	// against — per lane, view covers (applied, snap] and delta covers
	// (snap, lsn) — making it equal to the new head on every touched lane.
	// Ops in different lanes touch disjoint tuples, so the lane-by-lane
	// order is immaterial. sess.d is session-private, so this runs outside
	// every lock; the record slices stay valid even if pruning compacts a
	// log meanwhile, because compaction copies into a fresh array and the
	// records themselves are immutable.
	for i := range views {
		for j := range views[i] {
			sess.d.Apply(views[i][j].ops)
		}
	}
	for i := range deltas {
		for j := range deltas[i] {
			sess.d.Apply(deltas[i][j].ops)
		}
	}
	sess.d.ResetTrail()
	if clk != nil {
		clk.mark(stageApply) // publish + replica fold-in accumulate onto apply
	}

	// Stage 3: wait for a batched WAL sync to cover the LSN.
	if s.group != nil {
		batch, err := s.group.waitDurable(lsn)
		if err != nil {
			return 0, err
		}
		if clk != nil {
			clk.batch = batch
			clk.mark(stageFsyncWait)
		}
	}
	s.stats.commits.Add(1)
	if in.crossShard() {
		s.stats.crossShardCommits.Add(1)
	}
	s.stats.deltaOps.Add(int64(len(ops)))
	elapsed := time.Since(started)
	s.stats.recordCommitLatency(elapsed)
	s.stats.observeSLOs(s.stats.sloCommit, elapsed)
	return lsn, nil
}

// pruneShardLocked drops lane records every live replica has already
// applied, and enforces the MaxLog cap (stranding laggards, who will full
// resync). Pruning only advances the live-window offset — no copying, no
// allocation; dead entries are reclaimed by an occasional compaction into
// a fresh array (entries are never overwritten in place, because commit
// validation may still be scanning a snapshot of the old array outside the
// lock). Called with sh.mu held; takes the registry lock to read replica
// positions (lane lock → registry lock, never the reverse).
func (s *Server) pruneShardLocked(sh *shard) {
	min := sh.version.Load()
	s.mu.Lock()
	for sess := range s.sessions {
		if v := sess.applied[sh.idx].Load(); v < min {
			min = v
		}
	}
	s.mu.Unlock()
	lo := sh.clogLo
	for lo < len(sh.clog) && sh.clog[lo].version <= min {
		lo++
	}
	if keep := len(sh.clog) - lo; keep > s.opts.MaxLog {
		lo = len(sh.clog) - s.opts.MaxLog
	}
	// floor is the version of the newest dropped record: the log then holds
	// exactly the lane's records above it (lane LSNs are sparse, so
	// "clog[lo].version - 1" would claim coverage it cannot prove).
	if lo > sh.clogLo {
		sh.floor = sh.clog[lo-1].version
	}
	sh.clogLo = lo
	// Compact once the dead prefix dominates: amortized O(1) per commit.
	if lo > 64 && lo*2 >= len(sh.clog) {
		live := len(sh.clog) - lo
		fresh := make([]commitRecord, live, live+live/2+16)
		copy(fresh, sh.clog[lo:])
		sh.clog = fresh
		sh.clogLo = 0
	}
}

// Snapshot returns an immutable snapshot of the current shared database
// (maintained incrementally at each commit; O(1) to take).
func (s *Server) Snapshot() db.FrozenDB {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.frozen
}

// Version returns the current commit version (lock-free).
func (s *Server) Version() uint64 { return s.version.Load() }

// Checkpoint takes an incremental checkpoint (durable mode only): it
// captures the current frozen view and its LSN under a short lock, writes
// the snapshot file from that immutable view with the commit path
// UNLOCKED — commits keep flowing for the whole write — then truncates the
// WAL prefix the snapshot covers. Returns the checkpoint's LSN. Safe to
// call concurrently (the store serializes checkpoints) and while serving.
func (s *Server) Checkpoint() (uint64, error) {
	if s.store == nil {
		return 0, errors.New("server: in-memory server has no store to checkpoint")
	}
	s.seqMu.Lock()
	frozen := s.frozen
	lsn := s.version.Load()
	s.seqMu.Unlock()
	store := s.store
	started := time.Now()
	if err := store.CheckpointFrom(frozen, lsn); err != nil {
		return 0, err
	}
	s.stats.checkpoints.Add(1)
	s.stats.ckptLat.Observe(time.Since(started).Microseconds())
	return lsn, nil
}

// History exposes the retained-version window backing ASOF and CHANGES.
func (s *Server) History() *history.Window { return s.hist }

// Stats returns a consistent snapshot of the server counters.
func (s *Server) Stats() StatsSnapshot {
	p50, p99 := s.stats.quantiles()
	s.seqMu.Lock()
	version := s.version.Load()
	size := s.frozen.Size()
	s.seqMu.Unlock()
	var walBytes int64
	if s.store != nil {
		walBytes = s.store.WALSize()
	}
	snap := StatsSnapshot{
		SessionsOpen:  s.stats.sessionsOpen.Load(),
		SessionsTotal: s.stats.sessionsTotal.Load(),
		Rejected:      s.stats.rejected.Load(),
		TxnsBegun:     s.stats.txnsBegun.Load(),
		Commits:       s.stats.commits.Load(),
		Aborts:        s.stats.aborts.Load(),
		Conflicts:     s.stats.conflicts.Load(),
		Retries:       s.stats.retries.Load(),
		NoProof:       s.stats.noProof.Load(),
		BudgetHits:    s.stats.budgetHits.Load(),
		Version:       version,
		DBSize:        size,
		WALBytes:      walBytes,
		CommitP50Us:   p50,
		CommitP99Us:   p99,
		UptimeMs:      time.Since(s.start).Milliseconds(),

		FsyncP99Us:         s.stats.fsyncLat.Quantile(0.99),
		Fsyncs:             s.stats.fsyncs.Load(),
		SlowTxns:           s.stats.slowTxns.Load(),
		EngineSteps:        s.stats.engineSteps.Load(),
		EngineUnifications: s.stats.engineUnifs.Load(),
		EngineTableHits:    s.stats.engineTable.Load(),
		DBLookups:          s.stats.dbLookups.Load(),
		DBIndexHits:        s.stats.dbIndexHits.Load(),
		DBScans:            s.stats.dbScans.Load(),
		DBOrderRebuilds:    s.stats.dbRebuilds.Load(),
		DeltaOps:           s.stats.deltaOps.Load(),
		VetRejects:         s.stats.vetRejects.Load(),

		GroupCommits:   s.stats.groupCommits.Load(),
		CommitBatchP99: s.stats.batchSize.Quantile(0.99),

		Checkpoints:      s.stats.checkpoints.Load(),
		CheckpointP99Us:  s.stats.ckptLat.Quantile(0.99),
		RecoveryReplayed: s.stats.recoveryReplayed.Load(),
	}
	// Sharding fields ride only on actually-sharded servers, so single-lane
	// deployments (and the golden wire-compat fixtures) see an unchanged
	// STATS payload.
	if s.nshards > 1 {
		snap.Shards = s.nshards
		snap.ShardCommits = make([]int64, s.nshards)
		for i, sh := range s.shards {
			snap.ShardCommits[i] = sh.commits.Load()
		}
		snap.CrossShardCommits = s.stats.crossShardCommits.Load()
		if c := s.stats.commits.Load(); c > 0 {
			snap.CrossShardFraction = float64(snap.CrossShardCommits) / float64(c)
		}
	}
	if stale, rw := s.stats.conflictStale.Load(), s.stats.conflictRW.Load(); stale > 0 || rw > 0 {
		snap.ConflictCauses = map[string]int64{}
		if stale > 0 {
			snap.ConflictCauses["stale_replica"] = stale
		}
		if rw > 0 {
			snap.ConflictCauses["read_write"] = rw
		}
	}
	for _, v := range statVerbs {
		if h := s.stats.verbLat[v]; h.Count() > 0 {
			if snap.VerbP99Us == nil {
				snap.VerbP99Us = map[string]int64{}
			}
			snap.VerbP99Us[v] = h.Quantile(0.99)
		}
	}
	// Stage quantiles, prover profile, and SLO state (PR 8) ride only when
	// the corresponding feature produced data, so servers running with
	// everything off keep emitting the pre-PR-8 frame byte for byte.
	for i := 0; i < nStages; i++ {
		h := s.stats.stageLat[i]
		if h.Count() == 0 {
			continue
		}
		if snap.StageP50Us == nil {
			snap.StageP50Us = map[string]int64{}
			snap.StageP99Us = map[string]int64{}
		}
		snap.StageP50Us[stageNames[i]] = h.Quantile(0.50)
		snap.StageP99Us[stageNames[i]] = h.Quantile(0.99)
	}
	if prof := s.proverProfile(); len(prof) > 0 {
		snap.ProverProfile = prof
	}
	// Planner counters (PR 9): zero (and omitted) under NoPlan, so such
	// servers keep the pre-planner payload.
	snap.PlanReorders = s.stats.planReorders.Load()
	snap.PlanHits = s.stats.planHits.Load()
	s.mu.Lock()
	for _, ok := range s.planPreds {
		if ok {
			snap.PlanTablingEligible++
		}
	}
	s.mu.Unlock()
	// Memo counters (PR 10): all zero (and omitted) until a tabled goal
	// touches the shared store, so untabled servers keep the pre-PR-10
	// payload byte for byte.
	if ms := s.memo.Snapshot(); ms.Hits+ms.Misses+ms.Invalidations+ms.Evictions+ms.Entries > 0 {
		snap.MemoHits = ms.Hits
		snap.MemoMisses = ms.Misses
		snap.MemoInvalidations = ms.Invalidations
		snap.MemoEvictions = ms.Evictions
		snap.MemoBytes = ms.Bytes
		snap.MemoEntries = ms.Entries
		for _, p := range ms.Preds {
			snap.MemoPreds = append(snap.MemoPreds, MemoPredStat{Pred: p.Pred, Hits: p.Hits, Misses: p.Misses})
		}
	}
	for _, slo := range s.opts.SLOs {
		snap.SLOs = append(snap.SLOs, SLOSnapshot{
			Name:        slo.Name,
			ThresholdUs: slo.Threshold.Microseconds(),
			Objective:   slo.Objective,
			Good:        slo.Good(),
			Total:       slo.Total(),
			BurnRate:    slo.BurnRate(),
		})
	}
	return snap
}

// Metrics returns the server's metric registry, suitable for serving with
// obs.Handler / obs.NewMux.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Close shuts the server down gracefully: stop accepting, close session
// connections, wait for sessions to unwind, then sync and close the store.
// Committed transactions are durable before their acknowledgment, so
// nothing acknowledged is lost.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	// Stop the checkpointer first: a checkpoint in flight rotates the WAL,
	// and the store should be quiescent before its final sync.
	if s.ckptr != nil {
		s.ckptr.Stop()
	}
	// Sessions have unwound, so no commit is waiting on the flusher; drain
	// it (one final sync covers any appended tail), then close the store.
	s.group.close()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}
