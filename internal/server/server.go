package server

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/term"
)

// Options configure a Server. Zero values take the defaults below.
type Options struct {
	// SnapshotPath and WALPath enable durability (db.OpenStore semantics:
	// recover snapshot + WAL, append to the WAL from then on). Both empty
	// means a purely in-memory database.
	SnapshotPath string
	WALPath      string
	// Program is the initial TD program source. Its rules become the
	// default rulebase of every session; its facts are installed into the
	// shared database (set semantics, so reinstalling is idempotent).
	Program string
	// MaxSessions bounds concurrently served sessions; excess connections
	// are rejected with CodeBusy. Default 64.
	MaxSessions int
	// MaxSteps is the proof-search step budget per goal. Default 5e6.
	MaxSteps int64
	// MaxGoalTime is the wall-clock budget per goal (enforced at every
	// database-changing step). Default 10s; negative disables.
	MaxGoalTime time.Duration
	// IdleTimeout closes sessions with no request activity. Default 5m;
	// negative disables.
	IdleTimeout time.Duration
	// MaxRetries bounds server-side EXEC retries after commit conflicts.
	// Default 16.
	MaxRetries int
	// NoSync skips commit durability entirely (the WAL is still written in
	// order; a crash may lose the buffered tail). For benchmarks.
	NoSync bool
	// CommitMaxBatch caps how many pending committers the group-commit
	// flusher accumulates before forcing a WAL sync (only consulted while
	// CommitMaxDelay holds the flusher back). Default 64.
	CommitMaxBatch int
	// CommitMaxDelay bounds how long the flusher may hold a batch open for
	// more committers to join before syncing. The wait is adaptive: the
	// flusher extends it only while new commits keep arriving and flushes
	// at the first quiet interval, and it engages at all only after a
	// multi-commit batch (so a lone committer always syncs immediately).
	// Zero means the 2ms default; negative disables accumulation — the
	// flusher syncs as soon as it is free, and batching only emerges while
	// an fsync is in flight.
	CommitMaxDelay time.Duration
	// MaxFrame bounds accepted request frames. Default DefaultMaxFrame.
	MaxFrame int
	// MaxLog bounds the in-memory commit log used to catch session
	// replicas up; sessions that fall further behind pay a full resync.
	// Default 1024 entries.
	MaxLog int
	// Trace enables structured execution tracing for every session (each
	// session can also opt in individually with the TRACE verb). Tracing
	// costs allocations on the goal path; leave it off for throughput.
	Trace bool
	// SlowTxn logs the span tree of any goal slower than this threshold
	// through Logger (and forces tracing on so the tree exists). Zero
	// disables.
	SlowTxn time.Duration
	// TraceSink receives the span tree of every traced goal (e.g. an
	// obs.RingSink or obs.JSONLSink). Setting it forces tracing on.
	TraceSink obs.Sink
	// Logger receives slow-transaction reports. Default slog.Default().
	Logger *slog.Logger
	// NoVet disables load-time static analysis of uploaded programs. By
	// default LOAD rejects programs whose tdvet report carries
	// error-severity diagnostics (unsafe updates, recursion through '|');
	// the VET verb works either way.
	NoVet bool
	// CheckpointInterval checkpoints the store on a wall-clock cadence
	// (durable mode only). Zero disables the timer trigger; the manual
	// CHECKPOINT verb works regardless.
	CheckpointInterval time.Duration
	// CheckpointWALSize checkpoints whenever the WAL grows past this many
	// bytes (durable mode only). Zero disables the size trigger.
	CheckpointWALSize int64
	// HistoryWindow bounds how many recent commit versions are retained
	// for ASOF reads and CHANGES deltas. Default 256; negative disables
	// retention (only the current version is addressable).
	HistoryWindow int
}

func (o Options) withDefaults() Options {
	if o.MaxSessions == 0 {
		o.MaxSessions = 64
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 5_000_000
	}
	if o.MaxGoalTime == 0 {
		o.MaxGoalTime = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 16
	}
	if o.CommitMaxBatch == 0 {
		o.CommitMaxBatch = 64
	}
	if o.CommitMaxDelay == 0 {
		o.CommitMaxDelay = 2 * time.Millisecond
	} else if o.CommitMaxDelay < 0 {
		o.CommitMaxDelay = 0
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxLog == 0 {
		o.MaxLog = 1024
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.HistoryWindow == 0 {
		o.HistoryWindow = 256
	} else if o.HistoryWindow < 0 {
		o.HistoryWindow = 0
	}
	return o
}

// errConflict is the internal commit-validation failure; sessions translate
// it into CodeConflict responses (and EXEC retries).
var errConflict = errors.New("server: commit conflict")

// errShutdown is returned once Close has begun.
var errShutdown = errors.New("server: shutting down")

// Server is a concurrent multi-client transaction service over one shared
// Transaction Datalog database.
type Server struct {
	opts  Options
	prog  *ast.Program
	start time.Time
	stats serverStats
	reg   *obs.Registry
	sem   chan struct{}

	// mu guards the shared head state: the authoritative database, the
	// commit log, and the session registry. version is atomic so the
	// commonest question — "has anything committed since my replica's
	// version?" — needs no lock; it is only written under mu.
	mu      sync.Mutex
	head    *db.DB
	store   *db.Store    // nil in memory-only mode
	group   *groupCommit // nil in memory-only or NoSync mode
	frozen  db.FrozenDB
	hist    *history.Window       // retained versions for ASOF/CHANGES
	ckptr   *history.Checkpointer // nil in memory-only mode
	version atomic.Uint64
	floor   uint64 // the live commit log covers versions (floor, version]

	// The commit log is an append-only slice plus a live-window offset:
	// clog[clogLo:] is the live log; entries below clogLo are dead but
	// never overwritten. Records are immutable once appended, so commit
	// validation can snapshot the slice header under mu and scan it after
	// releasing the lock while other committers append, prune (advance
	// clogLo), or compact (copy the live window into a fresh array).
	// Versions are contiguous: clog[clogLo].version == floor+1, so the
	// records newer than version v start at index clogLo + (v - floor).
	clog     []commitRecord
	clogLo   int
	sessions map[*session]uint64 // session -> replica version
	closed   bool

	ln net.Listener
	wg sync.WaitGroup
}

// New builds a server: opens (or recovers) the store, parses the initial
// program, and installs its facts into the shared database.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	prog, err := parser.Parse(opts.Program)
	if err != nil {
		return nil, fmt.Errorf("server: initial program: %w", err)
	}
	if !opts.NoVet {
		if verr := analysis.Vet(prog).Err(); verr != nil {
			return nil, fmt.Errorf("server: initial program: %w", verr)
		}
	}
	s := &Server{
		opts:     opts,
		prog:     prog,
		start:    time.Now(),
		reg:      obs.NewRegistry(),
		sem:      make(chan struct{}, opts.MaxSessions),
		sessions: make(map[*session]uint64),
	}
	s.stats.init(s.reg)
	s.reg.GaugeFunc("td_version", "current commit version of the shared database",
		func() int64 { return int64(s.Version()) })
	s.reg.GaugeFunc("td_db_size", "tuples in the shared database", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.head.Size())
	})
	s.reg.GaugeFunc("td_wal_bytes", "bytes appended to the write-ahead log", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.store == nil {
			return 0
		}
		return s.store.WALSize()
	})
	s.reg.GaugeFunc("td_uptime_seconds", "seconds since the server started",
		func() int64 { return int64(time.Since(s.start).Seconds()) })
	poolStats := func(hits bool) int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var total int64
		for sess := range s.sessions {
			h, m := sess.eng.PoolStats()
			if hits {
				total += h
			} else {
				total += m
			}
		}
		return total
	}
	s.reg.CounterFuncL("td_engine_pool_derivations_total",
		"derivation-state acquisitions by live sessions, by pool outcome",
		`outcome="reuse"`, func() int64 { return poolStats(true) })
	s.reg.CounterFuncL("td_engine_pool_derivations_total",
		"derivation-state acquisitions by live sessions, by pool outcome",
		`outcome="alloc"`, func() int64 { return poolStats(false) })
	if opts.SnapshotPath != "" || opts.WALPath != "" {
		if opts.SnapshotPath == "" || opts.WALPath == "" {
			return nil, errors.New("server: need both SnapshotPath and WALPath for durability")
		}
		store, err := db.OpenStore(opts.SnapshotPath, opts.WALPath)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.head = store.DB
	} else {
		s.head = db.New()
	}
	if err := s.installFacts(prog.Facts); err != nil {
		return nil, err
	}
	s.frozen = db.FreezeDB(s.head)
	if s.store != nil {
		// Commit versions are persistent: the version counter resumes from
		// the recovered LSN so that version N names the same commit across
		// restarts (the property ASOF, CHANGES, and the WAL's commit
		// boundaries all build on). In-memory servers keep counting from 0.
		boot := s.store.LastLSN()
		s.version.Store(boot)
		s.floor = boot
		rec := s.store.Recovery()
		s.stats.recoveryReplayed.Store(int64(rec.ReplayedRecords))
	}
	s.hist = history.NewWindow(opts.HistoryWindow, s.version.Load(), s.frozen)
	if s.store != nil && !opts.NoSync {
		s.group = newGroupCommit(s.store, &s.stats, opts.CommitMaxBatch, opts.CommitMaxDelay)
	}
	if s.store != nil {
		s.ckptr = history.NewCheckpointer(
			history.CheckpointPolicy{Interval: opts.CheckpointInterval, WALSize: opts.CheckpointWALSize},
			s.store.WALSize,
			func() error { _, err := s.Checkpoint(); return err },
			opts.Logger)
		s.ckptr.Start()
	}
	return s, nil
}

// installFacts seeds the initial program's facts — but only into an EMPTY
// database. A recovered database already reflects every committed
// transaction; re-inserting seed facts that later transactions deleted
// would resurrect stale tuples.
func (s *Server) installFacts(facts []term.Atom) error {
	for _, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("server: initial fact %s is not ground", f)
		}
	}
	if s.head.Size() > 0 || len(facts) == 0 {
		return nil
	}
	ops := make([]db.Op, len(facts))
	for i, f := range facts {
		ops[i] = db.Op{Insert: true, Pred: f.Pred, Row: f.Args}
	}
	if s.store != nil {
		// The seed installation is a real commit with a real LSN; recovery
		// must be able to tell it apart from (and order it against) every
		// later commit.
		if _, err := s.store.ApplyCommit(ops, s.store.LastLSN()+1); err != nil {
			return err
		}
		return s.store.Commit()
	}
	s.head.Apply(ops)
	s.head.ResetTrail()
	return nil
}

// Listen starts accepting TCP connections on addr (e.g. ":7077"); the
// returned address carries the bound port when addr uses :0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go s.ServeConn(conn)
		}
	}()
	return ln.Addr(), nil
}

// ServeConn runs one session over conn (any net.Conn — a TCP connection or
// one end of a net.Pipe), blocking until the session ends. Admission
// control applies: beyond MaxSessions the connection is refused with a
// CodeBusy frame.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.refuse(conn, CodeShutdown, "server shutting down")
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	default:
		s.stats.rejected.Add(1)
		s.refuse(conn, CodeBusy, "too many sessions")
		return
	}
	defer func() { <-s.sem }()
	sess := s.newSession(conn)
	defer s.dropSession(sess)
	s.stats.sessionsOpen.Add(1)
	s.stats.sessionsTotal.Add(1)
	defer s.stats.sessionsOpen.Add(-1)
	sess.serve()
}

// refuse answers exactly one request with an error frame and closes the
// connection. It reads the request first — synchronous transports
// (net.Pipe) would otherwise deadlock, with the client blocked writing its
// request and the server blocked writing the refusal — under a short
// deadline so a silent client cannot pin the goroutine.
func (s *Server) refuse(conn net.Conn, code, msg string) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	var req Request
	readFrame(bufio.NewReader(conn), &req, s.opts.MaxFrame)
	writeFrame(conn, &Response{Code: code, Err: msg})
	conn.Close()
}

// InProcClient connects a client to the server through an in-process pipe
// — the same protocol and session machinery, no sockets.
func (s *Server) InProcClient() *Client {
	c1, c2 := net.Pipe()
	go s.ServeConn(c2)
	return NewClient(c1)
}

// newSession registers a session with a private replica forked from the
// current head.
func (s *Server) newSession(conn net.Conn) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := &session{
		srv:     s,
		conn:    conn,
		d:       s.head.Clone(),
		version: s.version.Load(),
		prog:    s.prog,
		varHigh: s.prog.VarHigh,
	}
	sess.buildEngine()
	s.sessions[sess] = sess.version
	return sess
}

func (s *Server) dropSession(sess *session) {
	sess.conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess)
	s.pruneLocked()
	s.mu.Unlock()
}

// syncSession brings a session's replica up to the current head version.
// The fast path — nothing committed since the replica's version — is a
// single atomic load, so current sessions never touch the head lock here.
func (s *Server) syncSession(sess *session) {
	if s.version.Load() == sess.version {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catchUpLocked(sess)
}

// clogIndexLocked returns the index of the first commit-log record with
// version > v. Versions are contiguous, so this is O(1) arithmetic, not a
// scan. Callers ensure v >= s.floor.
func (s *Server) clogIndexLocked(v uint64) int {
	return s.clogLo + int(v-s.floor)
}

// catchUpLocked applies the commit log suffix the session has not seen, or
// performs a full resync when the log no longer reaches back far enough.
func (s *Server) catchUpLocked(sess *session) {
	head := s.version.Load()
	if sess.version == head {
		return
	}
	if sess.version < s.floor {
		sess.d = s.head.Clone()
	} else {
		for i := s.clogIndexLocked(sess.version); i < len(s.clog); i++ {
			sess.d.Apply(s.clog[i].ops)
		}
		sess.d.ResetTrail()
	}
	sess.version = head
	s.sessions[sess] = head
}

// commit validates a transaction's read/write sets against everything that
// committed after the session's replica version and, on success, applies
// the write set to the shared database, appends it to the WAL, and waits
// for the group-commit flusher to make it durable before returning (unless
// NoSync). On conflict it returns errConflict without touching shared
// state; the session must roll its replica back and resync.
//
// The commit path is a three-stage pipeline:
//
//  1. Backward validation runs against an immutable snapshot of the commit
//     log taken under a short lock — the O(history) conflict scan happens
//     with the lock RELEASED, concurrent with other committers.
//  2. A second short lock re-validates only the records that committed
//     during stage 1 (usually none), applies the write set to the head,
//     appends the WAL records (buffered, not synced), assigns the commit
//     its LSN (the new version), and catches the replica up.
//  3. The committer waits, lock-free, for the flusher goroutine to cover
//     its LSN with a batched WAL fsync (WAL-before-ack per batch: the
//     sync that acknowledges a commit always covers its records).
//
// The session's replica must already contain exactly ops on top of its
// version; on success it is caught up to the new head in place.
func (s *Server) commit(sess *session, rs *readSet, ops []db.Op) (uint64, error) {
	started := time.Now()
	rec := newCommitRecord(0, ops) // conflict keys, built outside every lock

	// Stage 1a: snapshot the validation view.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, errShutdown
	}
	if err := s.group.failed(); err != nil {
		// A WAL sync failed earlier: refuse to apply state that can no
		// longer be made durable.
		s.mu.Unlock()
		return 0, err
	}
	if sess.version < s.floor {
		// History needed for validation was pruned: conservatively abort.
		s.mu.Unlock()
		s.stats.conflicts.Add(1)
		s.stats.conflictStale.Add(1)
		return 0, errConflict
	}
	view := s.clog[s.clogIndexLocked(sess.version):len(s.clog):len(s.clog)]
	snapVer := s.version.Load()
	s.mu.Unlock()

	// Stage 1b: validate against committed history without the lock.
	for i := range view {
		if view[i].conflictsWith(rs, rec.writes) {
			s.stats.conflicts.Add(1)
			s.stats.conflictRW.Add(1)
			return 0, errConflict
		}
	}

	// Stage 2: re-validate the delta that committed meanwhile, then apply.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, errShutdown
	}
	if snapVer < s.floor {
		// The delta was pruned while we validated: conservatively abort.
		s.mu.Unlock()
		s.stats.conflicts.Add(1)
		s.stats.conflictStale.Add(1)
		return 0, errConflict
	}
	delta := s.clog[s.clogIndexLocked(snapVer):]
	for i := range delta {
		if delta[i].conflictsWith(rs, rec.writes) {
			s.mu.Unlock()
			s.stats.conflicts.Add(1)
			s.stats.conflictRW.Add(1)
			return 0, errConflict
		}
	}
	lsn := snapVer + uint64(len(delta)) + 1
	if s.store != nil {
		// The WAL block carries the commit's LSN, so recovery and the
		// checkpointer can name durable prefixes by commit version.
		if _, err := s.store.ApplyCommit(ops, lsn); err != nil {
			s.mu.Unlock()
			return 0, err
		}
	} else {
		s.head.Apply(ops)
		s.head.ResetTrail()
	}
	s.frozen = s.frozen.ApplyOps(ops)
	s.version.Store(lsn)
	rec.version = lsn
	s.clog = append(s.clog, rec)
	// Retain the version for time travel: the ops are the immutable commit
	// record's write set, the snapshot is the O(1)-forked frozen head.
	// Monotonicity is guaranteed under mu, so Append cannot fail.
	_ = s.hist.Append(lsn, ops, s.frozen)
	// Cap the delta slice so later appends by other committers stay out of
	// reach; the committer folds it into its replica after the lock drops.
	delta = delta[:len(delta):len(delta)]
	sess.version = lsn
	s.sessions[sess] = lsn
	s.pruneLocked()
	s.group.noteAppend(lsn)
	s.mu.Unlock()

	// The committer's replica holds (its old version + ops); fold in the
	// concurrent but non-overlapping writes it validated against — view
	// covers (old, snapVer], delta covers (snapVer, lsn) — making it equal
	// to the new head. sess.d is session-private, so this runs outside the
	// head lock; the record slices stay valid even if pruning compacts the
	// log meanwhile, because compaction copies into a fresh array and the
	// records themselves are immutable.
	for i := range view {
		sess.d.Apply(view[i].ops)
	}
	for i := range delta {
		sess.d.Apply(delta[i].ops)
	}
	sess.d.ResetTrail()

	// Stage 3: wait for a batched WAL sync to cover the LSN.
	if s.group != nil {
		if err := s.group.waitDurable(lsn); err != nil {
			return 0, err
		}
	}
	s.stats.commits.Add(1)
	s.stats.deltaOps.Add(int64(len(ops)))
	s.stats.recordCommitLatency(time.Since(started))
	return lsn, nil
}

// pruneLocked drops commit-log entries every live replica has already
// applied, and enforces the MaxLog cap (stranding laggards, who will full
// resync). Pruning only advances the live-window offset — no copying, no
// allocation; dead entries are reclaimed by an occasional compaction into
// a fresh array (entries are never overwritten in place, because commit
// validation may still be scanning a snapshot of the old array outside the
// lock).
func (s *Server) pruneLocked() {
	min := s.version.Load()
	for _, v := range s.sessions {
		if v < min {
			min = v
		}
	}
	lo := s.clogLo
	for lo < len(s.clog) && s.clog[lo].version <= min {
		lo++
	}
	if keep := len(s.clog) - lo; keep > s.opts.MaxLog {
		lo = len(s.clog) - s.opts.MaxLog
	}
	s.clogLo = lo
	if lo < len(s.clog) {
		s.floor = s.clog[lo].version - 1
	} else {
		s.floor = s.version.Load()
	}
	// Compact once the dead prefix dominates: amortized O(1) per commit.
	if lo > 64 && lo*2 >= len(s.clog) {
		live := len(s.clog) - lo
		fresh := make([]commitRecord, live, live+live/2+16)
		copy(fresh, s.clog[lo:])
		s.clog = fresh
		s.clogLo = 0
	}
}

// Snapshot returns an immutable snapshot of the current shared database
// (maintained incrementally at each commit; O(1) to take).
func (s *Server) Snapshot() db.FrozenDB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frozen
}

// Version returns the current commit version (lock-free).
func (s *Server) Version() uint64 { return s.version.Load() }

// Checkpoint takes an incremental checkpoint (durable mode only): it
// captures the current frozen view and its LSN under a short lock, writes
// the snapshot file from that immutable view with the commit path
// UNLOCKED — commits keep flowing for the whole write — then truncates the
// WAL prefix the snapshot covers. Returns the checkpoint's LSN. Safe to
// call concurrently (the store serializes checkpoints) and while serving.
func (s *Server) Checkpoint() (uint64, error) {
	s.mu.Lock()
	if s.store == nil {
		s.mu.Unlock()
		return 0, errors.New("server: in-memory server has no store to checkpoint")
	}
	frozen := s.frozen
	lsn := s.version.Load()
	store := s.store
	s.mu.Unlock()
	started := time.Now()
	if err := store.CheckpointFrom(frozen, lsn); err != nil {
		return 0, err
	}
	s.stats.checkpoints.Add(1)
	s.stats.ckptLat.Observe(time.Since(started).Microseconds())
	return lsn, nil
}

// History exposes the retained-version window backing ASOF and CHANGES.
func (s *Server) History() *history.Window { return s.hist }

// Stats returns a consistent snapshot of the server counters.
func (s *Server) Stats() StatsSnapshot {
	p50, p99 := s.stats.quantiles()
	s.mu.Lock()
	version := s.version.Load()
	size := s.head.Size()
	var walBytes int64
	if s.store != nil {
		walBytes = s.store.WALSize()
	}
	s.mu.Unlock()
	snap := StatsSnapshot{
		SessionsOpen:  s.stats.sessionsOpen.Load(),
		SessionsTotal: s.stats.sessionsTotal.Load(),
		Rejected:      s.stats.rejected.Load(),
		TxnsBegun:     s.stats.txnsBegun.Load(),
		Commits:       s.stats.commits.Load(),
		Aborts:        s.stats.aborts.Load(),
		Conflicts:     s.stats.conflicts.Load(),
		Retries:       s.stats.retries.Load(),
		NoProof:       s.stats.noProof.Load(),
		BudgetHits:    s.stats.budgetHits.Load(),
		Version:       version,
		DBSize:        size,
		WALBytes:      walBytes,
		CommitP50Us:   p50,
		CommitP99Us:   p99,
		UptimeMs:      time.Since(s.start).Milliseconds(),

		FsyncP99Us:         s.stats.fsyncLat.Quantile(0.99),
		Fsyncs:             s.stats.fsyncs.Load(),
		SlowTxns:           s.stats.slowTxns.Load(),
		EngineSteps:        s.stats.engineSteps.Load(),
		EngineUnifications: s.stats.engineUnifs.Load(),
		EngineTableHits:    s.stats.engineTable.Load(),
		DBLookups:          s.stats.dbLookups.Load(),
		DBIndexHits:        s.stats.dbIndexHits.Load(),
		DBScans:            s.stats.dbScans.Load(),
		DBOrderRebuilds:    s.stats.dbRebuilds.Load(),
		DeltaOps:           s.stats.deltaOps.Load(),
		VetRejects:         s.stats.vetRejects.Load(),

		GroupCommits:   s.stats.groupCommits.Load(),
		CommitBatchP99: s.stats.batchSize.Quantile(0.99),

		Checkpoints:      s.stats.checkpoints.Load(),
		CheckpointP99Us:  s.stats.ckptLat.Quantile(0.99),
		RecoveryReplayed: s.stats.recoveryReplayed.Load(),
	}
	if stale, rw := s.stats.conflictStale.Load(), s.stats.conflictRW.Load(); stale > 0 || rw > 0 {
		snap.ConflictCauses = map[string]int64{}
		if stale > 0 {
			snap.ConflictCauses["stale_replica"] = stale
		}
		if rw > 0 {
			snap.ConflictCauses["read_write"] = rw
		}
	}
	for _, v := range statVerbs {
		if h := s.stats.verbLat[v]; h.Count() > 0 {
			if snap.VerbP99Us == nil {
				snap.VerbP99Us = map[string]int64{}
			}
			snap.VerbP99Us[v] = h.Quantile(0.99)
		}
	}
	return snap
}

// Metrics returns the server's metric registry, suitable for serving with
// obs.Handler / obs.NewMux.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Close shuts the server down gracefully: stop accepting, close session
// connections, wait for sessions to unwind, then sync and close the store.
// Committed transactions are durable before their acknowledgment, so
// nothing acknowledged is lost.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	// Stop the checkpointer first: a checkpoint in flight rotates the WAL,
	// and the store should be quiescent before its final sync.
	if s.ckptr != nil {
		s.ckptr.Stop()
	}
	// Sessions have unwound, so no commit is waiting on the flusher; drain
	// it (one final sync covers any appended tail), then close the store.
	s.group.close()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}
