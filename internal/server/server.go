package server

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/term"
)

// Options configure a Server. Zero values take the defaults below.
type Options struct {
	// SnapshotPath and WALPath enable durability (db.OpenStore semantics:
	// recover snapshot + WAL, append to the WAL from then on). Both empty
	// means a purely in-memory database.
	SnapshotPath string
	WALPath      string
	// Program is the initial TD program source. Its rules become the
	// default rulebase of every session; its facts are installed into the
	// shared database (set semantics, so reinstalling is idempotent).
	Program string
	// MaxSessions bounds concurrently served sessions; excess connections
	// are rejected with CodeBusy. Default 64.
	MaxSessions int
	// MaxSteps is the proof-search step budget per goal. Default 5e6.
	MaxSteps int64
	// MaxGoalTime is the wall-clock budget per goal (enforced at every
	// database-changing step). Default 10s; negative disables.
	MaxGoalTime time.Duration
	// IdleTimeout closes sessions with no request activity. Default 5m;
	// negative disables.
	IdleTimeout time.Duration
	// MaxRetries bounds server-side EXEC retries after commit conflicts.
	// Default 16.
	MaxRetries int
	// NoSync skips the per-commit fsync (the WAL is still written in
	// order; a crash may lose the buffered tail). For benchmarks.
	NoSync bool
	// MaxFrame bounds accepted request frames. Default DefaultMaxFrame.
	MaxFrame int
	// MaxLog bounds the in-memory commit log used to catch session
	// replicas up; sessions that fall further behind pay a full resync.
	// Default 1024 entries.
	MaxLog int
	// Trace enables structured execution tracing for every session (each
	// session can also opt in individually with the TRACE verb). Tracing
	// costs allocations on the goal path; leave it off for throughput.
	Trace bool
	// SlowTxn logs the span tree of any goal slower than this threshold
	// through Logger (and forces tracing on so the tree exists). Zero
	// disables.
	SlowTxn time.Duration
	// TraceSink receives the span tree of every traced goal (e.g. an
	// obs.RingSink or obs.JSONLSink). Setting it forces tracing on.
	TraceSink obs.Sink
	// Logger receives slow-transaction reports. Default slog.Default().
	Logger *slog.Logger
	// NoVet disables load-time static analysis of uploaded programs. By
	// default LOAD rejects programs whose tdvet report carries
	// error-severity diagnostics (unsafe updates, recursion through '|');
	// the VET verb works either way.
	NoVet bool
}

func (o Options) withDefaults() Options {
	if o.MaxSessions == 0 {
		o.MaxSessions = 64
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 5_000_000
	}
	if o.MaxGoalTime == 0 {
		o.MaxGoalTime = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 16
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxLog == 0 {
		o.MaxLog = 1024
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// errConflict is the internal commit-validation failure; sessions translate
// it into CodeConflict responses (and EXEC retries).
var errConflict = errors.New("server: commit conflict")

// errShutdown is returned once Close has begun.
var errShutdown = errors.New("server: shutting down")

// Server is a concurrent multi-client transaction service over one shared
// Transaction Datalog database.
type Server struct {
	opts  Options
	prog  *ast.Program
	start time.Time
	stats serverStats
	reg   *obs.Registry
	sem   chan struct{}

	// mu guards the shared head state: the authoritative database, the
	// version counter, the commit log, and the session registry.
	mu       sync.Mutex
	head     *db.DB
	store    *db.Store // nil in memory-only mode
	frozen   db.FrozenDB
	version  uint64
	floor    uint64 // the commit log covers versions (floor, version]
	clog     []commitRecord
	sessions map[*session]uint64 // session -> replica version
	closed   bool

	ln net.Listener
	wg sync.WaitGroup
}

// New builds a server: opens (or recovers) the store, parses the initial
// program, and installs its facts into the shared database.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	prog, err := parser.Parse(opts.Program)
	if err != nil {
		return nil, fmt.Errorf("server: initial program: %w", err)
	}
	if !opts.NoVet {
		if verr := analysis.Vet(prog).Err(); verr != nil {
			return nil, fmt.Errorf("server: initial program: %w", verr)
		}
	}
	s := &Server{
		opts:     opts,
		prog:     prog,
		start:    time.Now(),
		reg:      obs.NewRegistry(),
		sem:      make(chan struct{}, opts.MaxSessions),
		sessions: make(map[*session]uint64),
	}
	s.stats.init(s.reg)
	s.reg.GaugeFunc("td_version", "current commit version of the shared database",
		func() int64 { return int64(s.Version()) })
	s.reg.GaugeFunc("td_db_size", "tuples in the shared database", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.head.Size())
	})
	s.reg.GaugeFunc("td_wal_bytes", "bytes appended to the write-ahead log", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.store == nil {
			return 0
		}
		return s.store.WALSize()
	})
	s.reg.GaugeFunc("td_uptime_seconds", "seconds since the server started",
		func() int64 { return int64(time.Since(s.start).Seconds()) })
	poolStats := func(hits bool) int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var total int64
		for sess := range s.sessions {
			h, m := sess.eng.PoolStats()
			if hits {
				total += h
			} else {
				total += m
			}
		}
		return total
	}
	s.reg.CounterFuncL("td_engine_pool_derivations_total",
		"derivation-state acquisitions by live sessions, by pool outcome",
		`outcome="reuse"`, func() int64 { return poolStats(true) })
	s.reg.CounterFuncL("td_engine_pool_derivations_total",
		"derivation-state acquisitions by live sessions, by pool outcome",
		`outcome="alloc"`, func() int64 { return poolStats(false) })
	if opts.SnapshotPath != "" || opts.WALPath != "" {
		if opts.SnapshotPath == "" || opts.WALPath == "" {
			return nil, errors.New("server: need both SnapshotPath and WALPath for durability")
		}
		store, err := db.OpenStore(opts.SnapshotPath, opts.WALPath)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.head = store.DB
	} else {
		s.head = db.New()
	}
	if err := s.installFacts(prog.Facts); err != nil {
		return nil, err
	}
	s.frozen = db.FreezeDB(s.head)
	return s, nil
}

// installFacts seeds the initial program's facts — but only into an EMPTY
// database. A recovered database already reflects every committed
// transaction; re-inserting seed facts that later transactions deleted
// would resurrect stale tuples.
func (s *Server) installFacts(facts []term.Atom) error {
	for _, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("server: initial fact %s is not ground", f)
		}
	}
	if s.head.Size() > 0 || len(facts) == 0 {
		return nil
	}
	ops := make([]db.Op, len(facts))
	for i, f := range facts {
		ops[i] = db.Op{Insert: true, Pred: f.Pred, Row: f.Args}
	}
	if s.store != nil {
		if err := s.store.ApplyOps(ops); err != nil {
			return err
		}
		return s.store.Commit()
	}
	s.head.Apply(ops)
	s.head.ResetTrail()
	return nil
}

// Listen starts accepting TCP connections on addr (e.g. ":7077"); the
// returned address carries the bound port when addr uses :0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go s.ServeConn(conn)
		}
	}()
	return ln.Addr(), nil
}

// ServeConn runs one session over conn (any net.Conn — a TCP connection or
// one end of a net.Pipe), blocking until the session ends. Admission
// control applies: beyond MaxSessions the connection is refused with a
// CodeBusy frame.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.refuse(conn, CodeShutdown, "server shutting down")
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	default:
		s.stats.rejected.Add(1)
		s.refuse(conn, CodeBusy, "too many sessions")
		return
	}
	defer func() { <-s.sem }()
	sess := s.newSession(conn)
	defer s.dropSession(sess)
	s.stats.sessionsOpen.Add(1)
	s.stats.sessionsTotal.Add(1)
	defer s.stats.sessionsOpen.Add(-1)
	sess.serve()
}

// refuse answers exactly one request with an error frame and closes the
// connection. It reads the request first — synchronous transports
// (net.Pipe) would otherwise deadlock, with the client blocked writing its
// request and the server blocked writing the refusal — under a short
// deadline so a silent client cannot pin the goroutine.
func (s *Server) refuse(conn net.Conn, code, msg string) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	var req Request
	readFrame(bufio.NewReader(conn), &req, s.opts.MaxFrame)
	writeFrame(conn, &Response{Code: code, Err: msg})
	conn.Close()
}

// InProcClient connects a client to the server through an in-process pipe
// — the same protocol and session machinery, no sockets.
func (s *Server) InProcClient() *Client {
	c1, c2 := net.Pipe()
	go s.ServeConn(c2)
	return NewClient(c1)
}

// newSession registers a session with a private replica forked from the
// current head.
func (s *Server) newSession(conn net.Conn) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := &session{
		srv:     s,
		conn:    conn,
		d:       s.head.Clone(),
		version: s.version,
		prog:    s.prog,
		varHigh: s.prog.VarHigh,
	}
	sess.buildEngine()
	s.sessions[sess] = sess.version
	return sess
}

func (s *Server) dropSession(sess *session) {
	sess.conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess)
	s.pruneLocked()
	s.mu.Unlock()
}

// syncSession brings a session's replica up to the current head version.
func (s *Server) syncSession(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catchUpLocked(sess)
}

// catchUpLocked applies the commit log suffix the session has not seen, or
// performs a full resync when the log no longer reaches back far enough.
func (s *Server) catchUpLocked(sess *session) {
	if sess.version == s.version {
		return
	}
	if sess.version < s.floor {
		sess.d = s.head.Clone()
	} else {
		for _, rec := range s.clog {
			if rec.version > sess.version {
				sess.d.Apply(rec.ops)
			}
		}
		sess.d.ResetTrail()
	}
	sess.version = s.version
	s.sessions[sess] = sess.version
}

// commit validates a transaction's read/write sets against everything that
// committed after the session's replica version and, on success, applies
// the write set to the shared database, appends it to the WAL (syncing
// before acknowledging unless NoSync), and advances the version. On
// conflict it returns errConflict without touching shared state; the
// session must roll its replica back and resync.
//
// The session's replica must already contain exactly ops on top of its
// version; on success it is caught up to the new head in place.
func (s *Server) commit(sess *session, rs *readSet, ops []db.Op) (uint64, error) {
	started := time.Now()
	mine := newCommitRecord(0, ops).writes
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errShutdown
	}
	if sess.version < s.floor {
		// History needed for validation was pruned: conservatively abort.
		s.stats.conflicts.Add(1)
		s.stats.conflictStale.Add(1)
		return 0, errConflict
	}
	for _, rec := range s.clog {
		if rec.version <= sess.version {
			continue
		}
		if rec.conflictsWith(rs, mine) {
			s.stats.conflicts.Add(1)
			s.stats.conflictRW.Add(1)
			return 0, errConflict
		}
	}
	prev := sess.version
	if s.store != nil {
		if err := s.store.ApplyOps(ops); err != nil {
			return 0, err
		}
		if !s.opts.NoSync {
			fsyncStart := time.Now()
			if err := s.store.Commit(); err != nil {
				return 0, err
			}
			s.stats.fsyncLat.Observe(time.Since(fsyncStart).Microseconds())
			s.stats.fsyncs.Add(1)
		}
	} else {
		s.head.Apply(ops)
		s.head.ResetTrail()
	}
	for _, o := range ops {
		if o.Insert {
			s.frozen = s.frozen.Insert(o.Pred, o.Row)
		} else {
			s.frozen = s.frozen.Delete(o.Pred, o.Row)
		}
	}
	s.version++
	s.clog = append(s.clog, newCommitRecord(s.version, ops))
	// The committer's replica holds (prev + ops); fold in the concurrent
	// but non-overlapping writes it validated against, making it equal to
	// the new head.
	for _, rec := range s.clog {
		if rec.version > prev && rec.version < s.version {
			sess.d.Apply(rec.ops)
		}
	}
	sess.d.ResetTrail()
	sess.version = s.version
	s.sessions[sess] = sess.version
	s.pruneLocked()
	s.stats.commits.Add(1)
	s.stats.deltaOps.Add(int64(len(ops)))
	s.stats.recordCommitLatency(time.Since(started))
	return s.version, nil
}

// pruneLocked drops commit-log entries every live replica has already
// applied, and enforces the MaxLog cap (stranding laggards, who will full
// resync).
func (s *Server) pruneLocked() {
	min := s.version
	for _, v := range s.sessions {
		if v < min {
			min = v
		}
	}
	i := 0
	for i < len(s.clog) && s.clog[i].version <= min {
		i++
	}
	if keep := len(s.clog) - i; keep > s.opts.MaxLog {
		i = len(s.clog) - s.opts.MaxLog
	}
	if i > 0 {
		s.clog = append([]commitRecord(nil), s.clog[i:]...)
	}
	if len(s.clog) > 0 {
		s.floor = s.clog[0].version - 1
	} else {
		s.floor = s.version
	}
}

// Snapshot returns an immutable snapshot of the current shared database
// (maintained incrementally at each commit; O(1) to take).
func (s *Server) Snapshot() db.FrozenDB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frozen
}

// Version returns the current commit version.
func (s *Server) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Checkpoint writes a snapshot file and truncates the WAL (durable mode
// only). Safe to call while serving: commits are excluded for the duration.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return errors.New("server: in-memory server has no store to checkpoint")
	}
	return s.store.Checkpoint()
}

// Stats returns a consistent snapshot of the server counters.
func (s *Server) Stats() StatsSnapshot {
	p50, p99 := s.stats.quantiles()
	s.mu.Lock()
	version := s.version
	size := s.head.Size()
	var walBytes int64
	if s.store != nil {
		walBytes = s.store.WALSize()
	}
	s.mu.Unlock()
	snap := StatsSnapshot{
		SessionsOpen:  s.stats.sessionsOpen.Load(),
		SessionsTotal: s.stats.sessionsTotal.Load(),
		Rejected:      s.stats.rejected.Load(),
		TxnsBegun:     s.stats.txnsBegun.Load(),
		Commits:       s.stats.commits.Load(),
		Aborts:        s.stats.aborts.Load(),
		Conflicts:     s.stats.conflicts.Load(),
		Retries:       s.stats.retries.Load(),
		NoProof:       s.stats.noProof.Load(),
		BudgetHits:    s.stats.budgetHits.Load(),
		Version:       version,
		DBSize:        size,
		WALBytes:      walBytes,
		CommitP50Us:   p50,
		CommitP99Us:   p99,
		UptimeMs:      time.Since(s.start).Milliseconds(),

		FsyncP99Us:         s.stats.fsyncLat.Quantile(0.99),
		Fsyncs:             s.stats.fsyncs.Load(),
		SlowTxns:           s.stats.slowTxns.Load(),
		EngineSteps:        s.stats.engineSteps.Load(),
		EngineUnifications: s.stats.engineUnifs.Load(),
		EngineTableHits:    s.stats.engineTable.Load(),
		DBLookups:          s.stats.dbLookups.Load(),
		DBIndexHits:        s.stats.dbIndexHits.Load(),
		DBScans:            s.stats.dbScans.Load(),
		DBOrderRebuilds:    s.stats.dbRebuilds.Load(),
		DeltaOps:           s.stats.deltaOps.Load(),
		VetRejects:         s.stats.vetRejects.Load(),
	}
	if stale, rw := s.stats.conflictStale.Load(), s.stats.conflictRW.Load(); stale > 0 || rw > 0 {
		snap.ConflictCauses = map[string]int64{}
		if stale > 0 {
			snap.ConflictCauses["stale_replica"] = stale
		}
		if rw > 0 {
			snap.ConflictCauses["read_write"] = rw
		}
	}
	for _, v := range statVerbs {
		if h := s.stats.verbLat[v]; h.Count() > 0 {
			if snap.VerbP99Us == nil {
				snap.VerbP99Us = map[string]int64{}
			}
			snap.VerbP99Us[v] = h.Quantile(0.99)
		}
	}
	return snap
}

// Metrics returns the server's metric registry, suitable for serving with
// obs.Handler / obs.NewMux.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Close shuts the server down gracefully: stop accepting, close session
// connections, wait for sessions to unwind, then sync and close the store.
// Committed transactions are durable before their acknowledgment, so
// nothing acknowledged is lost.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}
