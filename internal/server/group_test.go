package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/db"
)

// putSrc inserts a unique marker tuple per transaction, so tests can tell
// exactly which commits reached the database.
const putSrc = `put(X) :- ins.mark(X).`

// TestGroupCommitCrashRecovery drives concurrent commits into a durable
// server whose disk "fails" partway through (the WAL sync hook starts
// erroring), then crashes the server without a graceful close, tears the
// WAL tail with garbage bytes, and recovers. The group-commit pipeline
// must preserve WAL-before-ack across batches:
//
//	acked ⊆ recovered ⊆ issued
//
// — every acknowledged commit survives, and nothing that was never issued
// appears. After the sync failure every subsequent commit must be refused
// (the server cannot make new state durable), and a restarted server over
// the truncated log must serve the recovered state and accept new commits.
func TestGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Program:      putSrc,
		SnapshotPath: filepath.Join(dir, "td.snap"),
		WALPath:      filepath.Join(dir, "td.wal"),
		MaxRetries:   50,
	}
	// No t.Cleanup(s.Close): the whole point is to crash without flushing.
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// The disk works for the first few syncs, then fails forever.
	const goodSyncs = 3
	errDisk := errors.New("injected disk failure")
	var syncs atomic.Int64
	s.store.SetSyncHook(func() error {
		if syncs.Add(1) > goodSyncs {
			return errDisk
		}
		return nil
	})

	const clients, txnsEach = 4, 25
	var (
		mu     sync.Mutex
		acked  = map[int]bool{}
		issued = map[int]bool{}
		failed atomic.Int64
		wg     sync.WaitGroup
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.InProcClient()
			defer c.Close()
			for j := 0; j < txnsEach; j++ {
				mark := i*1000 + j
				mu.Lock()
				issued[mark] = true
				mu.Unlock()
				if _, err := c.Exec(fmt.Sprintf("put(%d)", mark)); err != nil {
					failed.Add(1)
					continue
				}
				mu.Lock()
				acked[mark] = true
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	if failed.Load() == 0 {
		t.Fatal("sync failure was never surfaced to a committer")
	}
	if len(acked) == 0 {
		t.Fatal("no commit succeeded before the injected failure")
	}
	// The failure is sticky: a fresh session's commit must be refused
	// before any state is applied.
	c := s.InProcClient()
	// The error crosses the client protocol, so match its message.
	if _, err := c.Exec("put(999999)"); err == nil || !strings.Contains(err.Error(), errDisk.Error()) {
		t.Fatalf("post-failure Exec: got %v, want %v", err, errDisk)
	}
	c.Close()

	// Crash (no Close, nothing else flushed), plus a torn record at the
	// WAL tail, as a sync that died mid-write would leave.
	f, err := os.OpenFile(opts.WALPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{'I', 0xff, 0xfe, 0xfd}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover: acked ⊆ recovered ⊆ issued.
	recovered, err := db.OpenStore(opts.SnapshotPath, opts.WALPath)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := map[int]bool{}
	for _, row := range recovered.DB.Tuples("mark", 1) {
		got[int(row[0].IntVal())] = true
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
	for mark := range acked {
		if !got[mark] {
			t.Errorf("acked commit %d lost after crash", mark)
		}
	}
	for mark := range got {
		if !issued[mark] {
			t.Errorf("recovered tuple %d was never issued", mark)
		}
	}
	t.Logf("issued=%d acked=%d recovered=%d failed=%d syncs=%d",
		len(issued), len(acked), len(got), failed.Load(), syncs.Load())

	// A restarted server over the same (truncated) files serves the
	// recovered state and accepts new durable commits...
	s2, err := New(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	c2 := s2.InProcClient()
	if _, err := c2.Exec("put(424242)"); err != nil {
		t.Fatalf("post-restart Exec: %v", err)
	}
	c2.Close()
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// ...and those commits are readable by yet another recovery: the torn
	// tail was truncated, not appended after.
	again, err := db.OpenStore(opts.SnapshotPath, opts.WALPath)
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	defer again.Close()
	found := false
	for _, row := range again.DB.Tuples("mark", 1) {
		if row[0].IntVal() == 424242 {
			found = true
		}
	}
	if !found {
		t.Error("commit acknowledged after restart lost by the next recovery")
	}
}

// TestGroupCommitBatching checks that concurrent committers share fsyncs:
// with a slow disk (simulated via the sync hook), many commits must be
// covered by few syncs, and the batch-size metrics must see them.
func TestGroupCommitBatching(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{
		Program:      putSrc,
		SnapshotPath: filepath.Join(dir, "td.snap"),
		WALPath:      filepath.Join(dir, "td.wal"),
		MaxRetries:   50,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	s.store.SetSyncHook(func() error {
		time.Sleep(10 * time.Millisecond) // a disk with a slow, honest fsync
		return nil
	})

	const clients, txnsEach = 8, 5
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.InProcClient()
			defer c.Close()
			for j := 0; j < txnsEach; j++ {
				if _, err := c.Exec(fmt.Sprintf("put(%d)", i*1000+j)); err != nil {
					errCh <- fmt.Errorf("client %d txn %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Commits != clients*txnsEach {
		t.Fatalf("commits = %d, want %d", st.Commits, clients*txnsEach)
	}
	if st.Fsyncs >= st.Commits {
		t.Errorf("fsyncs = %d, commits = %d: no batching happened", st.Fsyncs, st.Commits)
	}
	if st.GroupCommits == 0 || st.GroupCommits > st.Fsyncs {
		t.Errorf("group commits = %d (fsyncs %d)", st.GroupCommits, st.Fsyncs)
	}
	if st.CommitBatchP99 < 2 {
		t.Errorf("commit batch p99 = %d, want >= 2", st.CommitBatchP99)
	}
	t.Logf("commits=%d fsyncs=%d groupCommits=%d batchP99=%d",
		st.Commits, st.Fsyncs, st.GroupCommits, st.CommitBatchP99)
}

// TestGroupCommitMaxDelay covers the explicit batching window: with
// CommitMaxDelay set, the flusher waits for more committers before
// syncing, and a lone committer still gets acknowledged (after at most
// the delay).
func TestGroupCommitMaxDelay(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{
		Program:        putSrc,
		SnapshotPath:   filepath.Join(dir, "td.snap"),
		WALPath:        filepath.Join(dir, "td.wal"),
		CommitMaxBatch: 4,
		CommitMaxDelay: 2 * time.Millisecond,
		MaxRetries:     50,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("put(1)"); err != nil {
		t.Fatalf("lone durable commit under maxdelay: %v", err)
	}

	const clients, txnsEach = 8, 4
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.InProcClient()
			defer c.Close()
			for j := 0; j < txnsEach; j++ {
				if _, err := c.Exec(fmt.Sprintf("put(%d)", 10+i*1000+j)); err != nil {
					t.Errorf("client %d txn %d: %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Commits != clients*txnsEach+1 {
		t.Fatalf("commits = %d, want %d", st.Commits, clients*txnsEach+1)
	}
}
