package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// serverStats is the live counter set; StatsSnapshot is its wire form.
type serverStats struct {
	sessionsOpen  atomic.Int64
	sessionsTotal atomic.Int64
	rejected      atomic.Int64
	txnsBegun     atomic.Int64
	commits       atomic.Int64
	aborts        atomic.Int64 // explicit ABORTs + failed EXECs
	conflicts     atomic.Int64 // commit validations lost
	retries       atomic.Int64 // server-side EXEC retries
	noProof       atomic.Int64 // goals with no committing execution
	budgetHits    atomic.Int64 // step/time budget exhaustions

	// Commit latencies (µs) in a bounded ring; quantiles are computed over
	// whatever the ring currently holds.
	latMu   sync.Mutex
	lat     [4096]int64
	latLen  int
	latNext int
}

func (st *serverStats) recordCommitLatency(d time.Duration) {
	us := d.Microseconds()
	st.latMu.Lock()
	st.lat[st.latNext] = us
	st.latNext = (st.latNext + 1) % len(st.lat)
	if st.latLen < len(st.lat) {
		st.latLen++
	}
	st.latMu.Unlock()
}

// quantiles returns the p50 and p99 commit latencies in microseconds.
func (st *serverStats) quantiles() (p50, p99 int64) {
	st.latMu.Lock()
	sample := make([]int64, st.latLen)
	copy(sample, st.lat[:st.latLen])
	st.latMu.Unlock()
	if len(sample) == 0 {
		return 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(sample)-1))
		return sample[i]
	}
	return at(0.50), at(0.99)
}

// StatsSnapshot is the STATS response payload.
type StatsSnapshot struct {
	SessionsOpen  int64  `json:"sessions_open"`
	SessionsTotal int64  `json:"sessions_total"`
	Rejected      int64  `json:"rejected"`
	TxnsBegun     int64  `json:"txns_begun"`
	Commits       int64  `json:"commits"`
	Aborts        int64  `json:"aborts"`
	Conflicts     int64  `json:"conflicts"`
	Retries       int64  `json:"retries"`
	NoProof       int64  `json:"no_proof"`
	BudgetHits    int64  `json:"budget_hits"`
	Version       uint64 `json:"version"`
	DBSize        int    `json:"db_size"`
	WALBytes      int64  `json:"wal_bytes"`
	CommitP50Us   int64  `json:"commit_p50_us"`
	CommitP99Us   int64  `json:"commit_p99_us"`
	UptimeMs      int64  `json:"uptime_ms"`
}
