package server

import (
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// serverStats is the live counter set; StatsSnapshot is its wire form.
// Scalar counters are atomics (read by the metrics registry through
// CounterFunc at scrape time); latency distributions live in lock-free
// obs.Histograms — recording a commit latency is two atomic adds, replacing
// the old 4096-entry ring that copied and sorted under a mutex on every
// STATS call.
type serverStats struct {
	sessionsOpen  atomic.Int64
	sessionsTotal atomic.Int64
	rejected      atomic.Int64
	txnsBegun     atomic.Int64
	commits       atomic.Int64
	aborts        atomic.Int64 // explicit ABORTs + failed EXECs
	conflicts     atomic.Int64 // commit validations lost (all causes)
	conflictStale atomic.Int64 // cause: replica older than the pruned log
	conflictRW    atomic.Int64 // cause: read/write overlap with a winner
	retries       atomic.Int64 // server-side EXEC retries
	noProof       atomic.Int64 // goals with no committing execution
	budgetHits    atomic.Int64 // step/time budget exhaustions
	slowTxns      atomic.Int64 // goals slower than Options.SlowTxn
	fsyncs        atomic.Int64 // WAL fsyncs performed by the flusher
	groupCommits  atomic.Int64 // WAL sync batches that made >=1 commit durable
	vetRejects    atomic.Int64 // LOADs refused by static analysis

	checkpoints      atomic.Int64 // completed checkpoints (manual + policy)
	recoveryReplayed atomic.Int64 // WAL op records replayed at the last boot

	crossShardCommits atomic.Int64 // commits whose touch-set spanned lanes

	planReorders atomic.Int64 // rule-body reorders installed into session engines
	planHits     atomic.Int64 // call steps served by plan-reordered rule variants

	// Engine and database work, aggregated per served goal.
	engineSteps atomic.Int64
	engineUnifs atomic.Int64
	engineTable atomic.Int64
	dbLookups   atomic.Int64
	dbIndexHits atomic.Int64
	dbScans     atomic.Int64
	dbRebuilds  atomic.Int64
	deltaOps    atomic.Int64 // write-set sizes of committed transactions

	commitLat *obs.Histogram
	fsyncLat  *obs.Histogram
	batchSize *obs.Histogram            // commits made durable per WAL sync
	ckptLat   *obs.Histogram            // checkpoint wall-clock duration
	verbLat   map[string]*obs.Histogram // fixed verb set, built at init
	stageLat  [nStages]*obs.Histogram   // sampled per-stage latency, by pipeline stage

	// Latency objectives fed by the commit and fsync signals, plus the
	// logger that reports burn-rate crossings. Set once at New.
	sloCommit []*obs.SLO
	sloFsync  []*obs.SLO
	logger    *slog.Logger
}

// statVerbs is the fixed set of per-verb latency series.
var statVerbs = []string{OpLoad, OpBegin, OpRun, OpCommit, OpAbort, OpExec, OpQuery, OpStats, OpPing, OpTrace, OpVet, OpCheckpoint, OpAsOf, OpChanges, OpProfile, OpPlan, OpTable}

// init creates the histograms and registers every instrument with reg.
func (st *serverStats) init(reg *obs.Registry) {
	st.commitLat = reg.Histogram("td_commit_latency_us",
		"end-to-end commit latency (validation + apply + WAL) in microseconds")
	st.fsyncLat = reg.Histogram("td_fsync_latency_us",
		"WAL flush+fsync latency at commit in microseconds")
	st.batchSize = reg.Histogram("td_commit_batch_size",
		"commits made durable per group-commit WAL sync")
	st.ckptLat = reg.Histogram("td_checkpoint_duration_us",
		"checkpoint duration (snapshot write + WAL truncation) in microseconds")
	st.verbLat = make(map[string]*obs.Histogram, len(statVerbs))
	for _, v := range statVerbs {
		st.verbLat[v] = reg.HistogramL("td_request_latency_us",
			"request handling latency by protocol verb in microseconds", `verb="`+v+`"`)
	}
	for i := 0; i < nStages; i++ {
		st.stageLat[i] = reg.HistogramL("td_txn_stage_us",
			"sampled transaction wall-clock by pipeline stage in microseconds", `stage="`+stageNames[i]+`"`)
	}

	cf := func(name, help string, v *atomic.Int64) { reg.CounterFunc(name, help, v.Load) }
	reg.GaugeFunc("td_sessions_open", "currently served sessions", st.sessionsOpen.Load)
	cf("td_sessions_total", "sessions ever admitted", &st.sessionsTotal)
	cf("td_sessions_rejected_total", "connections refused by admission control", &st.rejected)
	cf("td_txns_begun_total", "transactions opened (BEGIN + EXEC attempts)", &st.txnsBegun)
	cf("td_commits_total", "transactions committed", &st.commits)
	cf("td_aborts_total", "transactions aborted", &st.aborts)
	reg.CounterFuncL("td_conflicts_total", "commit validations lost, by cause",
		`cause="read_write"`, st.conflictRW.Load)
	reg.CounterFuncL("td_conflicts_total", "commit validations lost, by cause",
		`cause="stale_replica"`, st.conflictStale.Load)
	cf("td_retries_total", "server-side EXEC conflict retries", &st.retries)
	cf("td_no_proof_total", "goals with no committing execution", &st.noProof)
	cf("td_budget_hits_total", "step/time budget exhaustions", &st.budgetHits)
	cf("td_slow_txns_total", "goals slower than the slow-transaction threshold", &st.slowTxns)
	cf("td_fsyncs_total", "WAL fsyncs performed at commit", &st.fsyncs)
	cf("td_group_commits_total", "group-commit WAL sync batches covering at least one commit", &st.groupCommits)
	cf("td_vet_rejections_total", "programs refused at LOAD by static analysis", &st.vetRejects)
	cf("td_checkpoints_total", "checkpoints completed (manual CHECKPOINT + background policy)", &st.checkpoints)
	reg.GaugeFunc("td_recovery_replayed_records", "WAL op records replayed by the last recovery", st.recoveryReplayed.Load)
	cf("td_engine_steps_total", "derivation steps across served goals", &st.engineSteps)
	cf("td_engine_unifications_total", "head-unification attempts across served goals", &st.engineUnifs)
	cf("td_engine_table_hits_total", "failure-table prunings across served goals", &st.engineTable)
	cf("td_db_lookups_total", "ground point lookups across session replicas", &st.dbLookups)
	cf("td_db_index_hits_total", "scans served by the first-argument index", &st.dbIndexHits)
	cf("td_db_scans_total", "full relation scans", &st.dbScans)
	cf("td_db_order_rebuilds_total", "deterministic scan-order cache rebuilds", &st.dbRebuilds)
	cf("td_delta_ops_total", "tuples written by committed transactions", &st.deltaOps)
	cf("td_plan_reorders_total", "rule-body reorders installed into session engines by the tdplan planner", &st.planReorders)
	cf("td_plan_hits_total", "call steps served by a plan-reordered rule variant", &st.planHits)
}

func (st *serverStats) recordCommitLatency(d time.Duration) {
	st.commitLat.Observe(d.Microseconds())
}

// recordStages folds a finished sampled transaction's stage clock into the
// per-stage histograms. Every stage is observed, including zero-duration
// ones (a read-only transaction genuinely spent 0 in fsync_wait), so the
// eight series keep identical sample counts.
func (st *serverStats) recordStages(clk *stageClock) {
	for i := 0; i < nStages; i++ {
		st.stageLat[i].Observe(clk.dur[i].Microseconds())
	}
}

// observeSLOs feeds one latency observation to a signal's objectives and
// logs each burn-rate crossing (once per breach episode — Observe is
// edge-triggered).
func (st *serverStats) observeSLOs(slos []*obs.SLO, d time.Duration) {
	for _, slo := range slos {
		if slo.Observe(d) && st.logger != nil {
			st.logger.Warn("SLO breach",
				"slo", slo.Name,
				"threshold", slo.Threshold,
				"objective", slo.Objective,
				"burn_rate", slo.BurnRate(),
				"good", slo.Good(),
				"total", slo.Total())
		}
	}
}

// quantiles returns the p50 and p99 commit latencies in microseconds
// (bucket upper bounds: ~2x resolution, O(buckets), allocation-free).
func (st *serverStats) quantiles() (p50, p99 int64) {
	return st.commitLat.Quantile(0.50), st.commitLat.Quantile(0.99)
}

// StatsSnapshot is the STATS response payload. Fields present since PR 1
// keep their JSON names verbatim; observability additions are new keys only
// (omitted when zero), so PR-1 clients keep decoding the payload unchanged.
type StatsSnapshot struct {
	SessionsOpen  int64  `json:"sessions_open"`
	SessionsTotal int64  `json:"sessions_total"`
	Rejected      int64  `json:"rejected"`
	TxnsBegun     int64  `json:"txns_begun"`
	Commits       int64  `json:"commits"`
	Aborts        int64  `json:"aborts"`
	Conflicts     int64  `json:"conflicts"`
	Retries       int64  `json:"retries"`
	NoProof       int64  `json:"no_proof"`
	BudgetHits    int64  `json:"budget_hits"`
	Version       uint64 `json:"version"`
	DBSize        int    `json:"db_size"`
	WALBytes      int64  `json:"wal_bytes"`
	CommitP50Us   int64  `json:"commit_p50_us"`
	CommitP99Us   int64  `json:"commit_p99_us"`
	UptimeMs      int64  `json:"uptime_ms"`

	// Added with the observability layer (PR 3).
	ConflictCauses     map[string]int64 `json:"conflict_causes,omitempty"`
	VerbP99Us          map[string]int64 `json:"verb_p99_us,omitempty"`
	FsyncP99Us         int64            `json:"fsync_p99_us,omitempty"`
	Fsyncs             int64            `json:"fsyncs,omitempty"`
	SlowTxns           int64            `json:"slow_txns,omitempty"`
	EngineSteps        int64            `json:"engine_steps,omitempty"`
	EngineUnifications int64            `json:"engine_unifications,omitempty"`
	EngineTableHits    int64            `json:"engine_table_hits,omitempty"`
	DBLookups          int64            `json:"db_lookups,omitempty"`
	DBIndexHits        int64            `json:"db_index_hits,omitempty"`
	DBScans            int64            `json:"db_scans,omitempty"`
	DBOrderRebuilds    int64            `json:"db_order_rebuilds,omitempty"`
	DeltaOps           int64            `json:"delta_ops,omitempty"`

	// Added with the static analyzer (PR 4).
	VetRejects int64 `json:"vet_rejects,omitempty"`

	// Added with the group-commit pipeline (PR 5).
	GroupCommits   int64 `json:"group_commits,omitempty"`
	CommitBatchP99 int64 `json:"commit_batch_p99,omitempty"`

	// Added with the history subsystem (PR 6).
	Checkpoints      int64 `json:"checkpoints,omitempty"`
	CheckpointP99Us  int64 `json:"checkpoint_p99_us,omitempty"`
	RecoveryReplayed int64 `json:"recovery_replayed_records,omitempty"`

	// Added with the sharded store (PR 7). Emitted only by servers running
	// more than one commit lane, so single-lane deployments keep the exact
	// pre-sharding payload.
	Shards             int     `json:"shards,omitempty"`
	ShardCommits       []int64 `json:"shard_commits,omitempty"`
	CrossShardCommits  int64   `json:"cross_shard_commits,omitempty"`
	CrossShardFraction float64 `json:"cross_shard_fraction,omitempty"`

	// Added with stage-level latency attribution (PR 8). The stage maps
	// carry the sampled pipeline quantiles (only once something was
	// sampled), ProverProfile the per-predicate attribution (only when a
	// session profiled), and SLOs the configured objectives' state — all
	// omitted when their feature is off, so such servers keep the exact
	// pre-PR-8 payload.
	StageP50Us    map[string]int64       `json:"stage_p50_us,omitempty"`
	StageP99Us    map[string]int64       `json:"stage_p99_us,omitempty"`
	ProverProfile map[string]PredProfile `json:"prover_profile,omitempty"`
	SLOs          []SLOSnapshot          `json:"slos,omitempty"`

	// Added with the tdplan static planner (PR 9). All zero (and omitted)
	// under Options.NoPlan or when the planner found nothing to do, so such
	// servers keep emitting the exact pre-PR-9 payload.
	PlanReorders        int64 `json:"plan_reorders,omitempty"`
	PlanHits            int64 `json:"plan_hits,omitempty"`
	PlanTablingEligible int64 `json:"plan_tabling_eligible,omitempty"`

	// Added with tabled evaluation (PR 10). All zero (and omitted) when no
	// session ever touched the memo store, so servers running with tabling
	// off keep emitting the exact pre-PR-10 payload.
	MemoHits          int64          `json:"memo_hits,omitempty"`
	MemoMisses        int64          `json:"memo_misses,omitempty"`
	MemoInvalidations int64          `json:"memo_invalidations,omitempty"`
	MemoEvictions     int64          `json:"memo_evictions,omitempty"`
	MemoBytes         int64          `json:"memo_bytes,omitempty"`
	MemoEntries       int64          `json:"memo_entries,omitempty"`
	MemoPreds         []MemoPredStat `json:"memo_preds,omitempty"`
}

// MemoPredStat is one tabled predicate's memo-store lookup counters on the
// wire, hottest (most hits) first in StatsSnapshot.MemoPreds and
// MemoStatus.Preds. The wire twin of engine.MemoPredStats.
type MemoPredStat struct {
	Pred   string `json:"pred"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
}

// MemoStatus answers the TABLE verb: the session's tabling mode, the
// predicates its engine currently tables, and the shared memo store's
// counters.
type MemoStatus struct {
	Mode          string         `json:"mode"`
	Tabled        []string       `json:"tabled,omitempty"`
	Hits          int64          `json:"hits"`
	Misses        int64          `json:"misses"`
	Invalidations int64          `json:"invalidations"`
	Evictions     int64          `json:"evictions"`
	Bytes         int64          `json:"bytes"`
	Entries       int64          `json:"entries"`
	Preds         []MemoPredStat `json:"preds,omitempty"`
}

// PredProfile is one predicate's prover attribution on the wire: how often
// the prover dispatched into the predicate, how many clause alternatives
// those dispatches fanned out to, and the flat time charged to it. The wire
// twin of engine.PredProfile, kept separate so the protocol never imports
// engine types.
type PredProfile struct {
	Calls  int64 `json:"calls"`
	Fanout int64 `json:"fanout"`
	TimeUs int64 `json:"time_us"`
}

// SLOSnapshot is one configured latency objective's state in STATS.
type SLOSnapshot struct {
	Name        string  `json:"name"`
	ThresholdUs int64   `json:"threshold_us"`
	Objective   float64 `json:"objective"`
	Good        int64   `json:"good"`
	Total       int64   `json:"total"`
	BurnRate    float64 `json:"burn_rate"`
}
