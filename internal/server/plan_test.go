package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// analyzeSrc is a program the planner reorders: with the sample bound,
// the naive hot rule starts from the indexed sample_reading lookup.
const analyzeSrc = `
sample_reading(s1, r1). sample_reading(s2, r2).
reading(r1, 950). reading(r2, 20).
hot(W) :- reading(R, V), V > 900, sample_reading(W, R).
`

// --- PLAN verb --------------------------------------------------------------

func TestPlanVerb(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	// PLAN with a submitted program: full report, nothing installed.
	rep, err := c.Plan(analyzeSrc)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if rep.SchemaVersion != analysis.PlanSchemaVersion {
		t.Fatalf("schema_version = %d", rep.SchemaVersion)
	}
	if rep.Reorders == 0 {
		t.Fatalf("expected a reorder for hot/1: %+v", rep)
	}
	var hot *analysis.PredPlan
	for i := range rep.Predicates {
		if rep.Predicates[i].Pred == "hot/1" {
			hot = &rep.Predicates[i]
		}
	}
	if hot == nil {
		t.Fatalf("no certificate for hot/1: %+v", rep.Predicates)
	}
	if !hot.TablingEligible || !hot.UpdateFree || !hot.HypotheticalFree || hot.Recursion != analysis.RecNone {
		t.Fatalf("hot/1 certificate wrong: %+v", hot)
	}

	// PLAN without a program: the session's loaded rulebase (the bank).
	rep, err = c.Plan("")
	if err != nil {
		t.Fatalf("Plan(loaded): %v", err)
	}
	found := false
	for _, pp := range rep.Predicates {
		if strings.HasPrefix(pp.Pred, "transfer/") {
			found = true
			if pp.UpdateFree {
				t.Fatalf("transfer writes accounts but certifies update-free: %+v", pp)
			}
		}
	}
	if !found {
		t.Fatalf("loaded-program plan misses transfer: %+v", rep.Predicates)
	}

	// Parse failures answer with CodeParse, like VET.
	if _, err := c.Plan("p(."); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("bad program: err = %v, want parse error", err)
	}
}

// --- STATS wire compatibility ----------------------------------------------

// goldenPR9Stats extends the golden frame with the planner keys (PR 9).
// As with every addition since PR 3 they are new names only, omitted when
// zero, so pre-PR-9 clients keep decoding payloads unchanged and NoPlan
// servers keep emitting the old frame.
const goldenPR9Stats = `{
	"commits": 10, "version": 10,
	"plan_reorders": 3,
	"plan_hits": 120,
	"plan_tabling_eligible": 2
}`

func TestStatsSnapshotPlanKeys(t *testing.T) {
	var snap StatsSnapshot
	if err := json.Unmarshal([]byte(goldenPR9Stats), &snap); err != nil {
		t.Fatalf("golden PR-9 payload no longer decodes: %v", err)
	}
	if snap.PlanReorders != 3 || snap.PlanHits != 120 || snap.PlanTablingEligible != 2 {
		t.Fatalf("PR-9 fields decoded wrong: %+v", snap)
	}

	// Zero-valued planner keys stay off the wire.
	body, err := json.Marshal(StatsSnapshot{Commits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"plan_reorders", "plan_hits", "plan_tabling_eligible"} {
		if _, ok := wire[key]; ok {
			t.Errorf("zero-valued PR-9 key %q leaked onto the wire", key)
		}
	}

	// A NoPlan server never mentions the planner in STATS: the pre-PR-9
	// frame, byte for byte.
	s := newBankServer(t, Options{NoPlan: true})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(1, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	body, err = json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "plan") {
		t.Errorf("NoPlan STATS frame mentions the planner:\n%s", body)
	}
}

// --- planner counters and gauge --------------------------------------------

func TestPlanMetricsAndStats(t *testing.T) {
	s, err := New(Options{Program: analyzeSrc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := s.InProcClient()
	defer c.Close()

	// A ground query over the planned predicate: planned dispatch fires.
	sols, err := c.Query("hot(s1)", 0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(sols) != 1 {
		t.Fatalf("hot(s1) solutions = %v", sols)
	}
	snap := s.Stats()
	if snap.PlanReorders == 0 {
		t.Errorf("plan_reorders = 0, want > 0 (session engine carries the plan)")
	}
	if snap.PlanHits == 0 {
		t.Errorf("plan_hits = 0, want > 0 (ground call should hit the variant)")
	}
	if snap.PlanTablingEligible == 0 {
		t.Errorf("plan_tabling_eligible = 0, want > 0 (hot/1 is eligible)")
	}

	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE td_plan_reorders_total counter",
		"# TYPE td_plan_hits_total counter",
		"# TYPE td_plan_tabling_eligible gauge",
		`td_plan_tabling_eligible{pred="hot/1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n----\n%s", want, body)
		}
	}

	// NoPlan: no planned dispatch, empty gauge family, zero counters — and
	// identical answers.
	s2, err := New(Options{Program: analyzeSrc, NoPlan: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	c2 := s2.InProcClient()
	defer c2.Close()
	sols2, err := c2.Query("hot(s1)", 0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(sols2) != len(sols) {
		t.Fatalf("NoPlan answers differ: %v vs %v", sols2, sols)
	}
	snap2 := s2.Stats()
	if snap2.PlanReorders != 0 || snap2.PlanHits != 0 || snap2.PlanTablingEligible != 0 {
		t.Errorf("NoPlan server reports planner work: %+v", snap2)
	}
	rec2 := httptest.NewRecorder()
	obs.Handler(s2.Metrics()).ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec2.Body.String(), `td_plan_tabling_eligible{`) {
		t.Error("NoPlan /metrics carries tabling-eligibility samples")
	}
}
