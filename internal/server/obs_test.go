package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// --- STATS cost regression ------------------------------------------------

// The PR-1 implementation kept a 4096-entry latency ring and copied + sorted
// it under a mutex on every STATS call: O(n log n) work and two allocations
// per call, growing with the sample count. The histogram path must be
// O(buckets) with a bounded, sample-count-independent allocation profile.
func TestStatsAllocationBounded(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	for i := 0; i < 8; i++ {
		if _, err := c.Exec("transfer(1, a, b)"); err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}

	// The quantile computation itself is allocation-free.
	if allocs := testing.AllocsPerRun(100, func() {
		s.stats.quantiles()
	}); allocs != 0 {
		t.Fatalf("quantiles allocates %v objects per call, want 0", allocs)
	}

	// Snapshot assembly allocates only its own maps — the same amount no
	// matter how many latencies have been observed.
	few := testing.AllocsPerRun(100, func() { s.Stats() })
	for i := 0; i < 50_000; i++ {
		s.stats.recordCommitLatency(time.Duration(i) * time.Microsecond)
	}
	many := testing.AllocsPerRun(100, func() { s.Stats() })
	if many > few {
		t.Fatalf("Stats allocations grew with sample count: %v -> %v", few, many)
	}
}

// --- wire compatibility ---------------------------------------------------

// goldenPR1Stats is a STATS payload captured from the PR-1 server. Decoding
// it with today's StatsSnapshot must populate every original field: renaming
// or retyping any PR-1 key is a wire break.
const goldenPR1Stats = `{
	"sessions_open": 3, "sessions_total": 17, "rejected": 2,
	"txns_begun": 120, "commits": 100, "aborts": 11, "conflicts": 9,
	"retries": 14, "no_proof": 5, "budget_hits": 1,
	"version": 100, "db_size": 42, "wal_bytes": 8192,
	"commit_p50_us": 250, "commit_p99_us": 4000, "uptime_ms": 60000
}`

func TestStatsSnapshotWireCompat(t *testing.T) {
	var snap StatsSnapshot
	if err := json.Unmarshal([]byte(goldenPR1Stats), &snap); err != nil {
		t.Fatalf("golden PR-1 payload no longer decodes: %v", err)
	}
	if snap.SessionsOpen != 3 || snap.SessionsTotal != 17 || snap.Rejected != 2 ||
		snap.TxnsBegun != 120 || snap.Commits != 100 || snap.Aborts != 11 ||
		snap.Conflicts != 9 || snap.Retries != 14 || snap.NoProof != 5 ||
		snap.BudgetHits != 1 || snap.Version != 100 || snap.DBSize != 42 ||
		snap.WALBytes != 8192 || snap.CommitP50Us != 250 ||
		snap.CommitP99Us != 4000 || snap.UptimeMs != 60000 {
		t.Fatalf("PR-1 fields decoded wrong: %+v", snap)
	}

	// The reverse direction: a PR-1 client decoding a current snapshot must
	// still find every key it knows, under the original name.
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(5, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	body, err := json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"sessions_open", "sessions_total", "rejected", "txns_begun",
		"commits", "aborts", "conflicts", "retries", "no_proof",
		"budget_hits", "version", "db_size", "wal_bytes",
		"commit_p50_us", "commit_p99_us", "uptime_ms",
	} {
		if _, ok := wire[key]; !ok {
			t.Errorf("current snapshot dropped PR-1 key %q", key)
		}
	}
}

// goldenPR6Stats extends the golden frame with the history-subsystem keys
// (PR 6). They ride the same payload, omitted when zero, so PR-1 clients
// never see them and newer clients decode them by name.
const goldenPR6Stats = `{
	"commits": 100, "version": 100,
	"checkpoints": 4, "checkpoint_p99_us": 1500,
	"recovery_replayed_records": 7
}`

func TestStatsSnapshotHistoryKeys(t *testing.T) {
	var snap StatsSnapshot
	if err := json.Unmarshal([]byte(goldenPR6Stats), &snap); err != nil {
		t.Fatalf("golden PR-6 payload no longer decodes: %v", err)
	}
	if snap.Checkpoints != 4 || snap.CheckpointP99Us != 1500 || snap.RecoveryReplayed != 7 {
		t.Fatalf("PR-6 fields decoded wrong: %+v", snap)
	}

	// Zero history counters stay off the wire (an in-memory server that
	// never checkpointed emits a frame byte-identical to the pre-PR-6 one).
	body, err := json.Marshal(StatsSnapshot{Commits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"checkpoints", "checkpoint_p99_us", "recovery_replayed_records"} {
		if _, ok := wire[key]; ok {
			t.Errorf("zero-valued history key %q leaked onto the wire", key)
		}
	}

	// And a server that did checkpoint reports them.
	s := newBankServer(t, Options{
		SnapshotPath: t.TempDir() + "/td.snap",
		WALPath:      t.TempDir() + "/td.wal",
	})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(5, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := s.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("Stats.Checkpoints = %d, want 1", st.Checkpoints)
	}
	body, err = json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	wire = map[string]any{}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	if _, ok := wire["checkpoints"]; !ok {
		t.Error("nonzero checkpoints missing from the wire frame")
	}
}

// --- TRACE verb -----------------------------------------------------------

func TestTraceVerb(t *testing.T) {
	prog := `
		sample(s1). sample(s2).
		process(S) :- iso(sample(S), ins.prepared(S)), iso(prepared(S), ins.done(S)).
		lab :- process(s1) | process(s2).
	`
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	if err := c.Load(prog); err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Dump before any traced goal is a protocol error.
	if _, err := c.TraceDump(); err == nil {
		t.Fatal("TRACE dump with nothing traced should fail")
	}

	if err := c.TraceOn(); err != nil {
		t.Fatalf("TraceOn: %v", err)
	}
	if _, err := c.Exec("lab"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	sp, err := c.TraceDump()
	if err != nil {
		t.Fatalf("TraceDump: %v", err)
	}
	if sp == nil || sp.Kind != "txn" {
		t.Fatalf("dump root = %+v, want a txn span", sp)
	}
	if sp.DurUs <= 0 {
		t.Errorf("root span has no wall-clock duration: %+v", *sp)
	}
	// The goal's structure must be visible in the nesting: two concurrent
	// branches, each holding two sequential iso sub-transactions.
	var branches []*obs.Span
	for _, ch := range sp.Children {
		if ch.Kind == "branch" {
			branches = append(branches, ch)
		}
	}
	if len(branches) != 2 {
		t.Fatalf("want 2 branch spans under the root, got %d:\n%s", len(branches), sp.Tree())
	}
	for _, b := range branches {
		var isos int
		for _, ch := range b.Children {
			if ch.Kind == "iso" {
				isos++
			}
		}
		if isos != 2 {
			t.Fatalf("each branch should hold 2 iso spans, got %d:\n%s", isos, sp.Tree())
		}
	}
	if sp.Writes != 4 {
		t.Errorf("lab writes 4 tuples, spans say %d:\n%s", sp.Writes, sp.Tree())
	}

	// TRACE off: subsequent goals stop updating the dump.
	if err := c.TraceOff(); err != nil {
		t.Fatalf("TraceOff: %v", err)
	}
	if _, err := c.Exec("iso(done(s1))"); err != nil {
		t.Fatalf("Exec after TraceOff: %v", err)
	}
	again, err := c.TraceDump()
	if err != nil {
		t.Fatalf("TraceDump after TraceOff: %v", err)
	}
	if again.Label != sp.Label {
		t.Errorf("dump changed after TRACE off: %q -> %q", sp.Label, again.Label)
	}
}

// --- /metrics endpoint ----------------------------------------------------

func TestMetricsEndpoint(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(10, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if _, err := c.Query("account(A, B)", 0); err != nil {
		t.Fatalf("Query: %v", err)
	}

	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics -> %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE td_commits_total counter",
		"td_commits_total 1",
		"# TYPE td_commit_latency_us histogram",
		"td_commit_latency_us_count 1",
		`td_request_latency_us_count{verb="EXEC"} 1`,
		`td_request_latency_us_count{verb="QUERY"} 1`,
		"td_engine_steps_total",
		"td_db_lookups_total",
		"td_sessions_open 1",
		"td_version 1",
		// History-subsystem series (PR 6) are always registered; their
		// values stay 0 on an in-memory server that never checkpoints.
		"# TYPE td_checkpoints_total counter",
		"# TYPE td_checkpoint_duration_us histogram",
		"td_recovery_replayed_records 0",
		"td_wal_bytes 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n----\n%s", want, body)
		}
	}
}

// --- slow-transaction log -------------------------------------------------

func TestSlowTxnLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := newBankServer(t, Options{SlowTxn: time.Nanosecond, Logger: logger})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(10, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow transaction") {
		t.Fatalf("no slow-transaction report logged:\n%s", out)
	}
	if !strings.Contains(out, "transfer(10, a, b)") {
		t.Errorf("report does not name the goal:\n%s", out)
	}
	if !strings.Contains(out, "txn") || !strings.Contains(out, "ins") {
		t.Errorf("report does not carry the span tree:\n%s", out)
	}
	if got := s.Stats().SlowTxns; got < 1 {
		t.Errorf("slow_txns = %d, want >= 1", got)
	}
}

// --- conflict causes ------------------------------------------------------

func TestConflictCauseClassification(t *testing.T) {
	s := newBankServer(t, Options{})
	c1 := s.InProcClient()
	defer c1.Close()
	c2 := s.InProcClient()
	defer c2.Close()

	// Two interactive transactions read and write the same account; the
	// second committer must lose with a read/write conflict.
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Run("withdraw(10, a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run("withdraw(20, a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Commit(); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if _, err := c2.Commit(); !IsConflict(err) {
		t.Fatalf("second commit: err = %v, want conflict", err)
	}
	snap := s.Stats()
	if snap.ConflictCauses["read_write"] < 1 {
		t.Errorf("conflict_causes = %v, want read_write >= 1", snap.ConflictCauses)
	}
	if snap.Conflicts < 1 {
		t.Errorf("conflicts = %d, want >= 1", snap.Conflicts)
	}
}

// goldenPR7Stats extends the golden frame with the sharded-store keys
// (PR 7). Like every addition since PR 3 they are new names only, omitted
// when zero, so pre-sharding clients keep decoding payloads unchanged and
// single-lane servers keep emitting the pre-PR-7 frame byte for byte.
const goldenPR7Stats = `{
	"commits": 50, "version": 50,
	"shards": 8,
	"shard_commits": [9, 5, 7, 6, 4, 8, 6, 5],
	"cross_shard_commits": 10,
	"cross_shard_fraction": 0.2
}`

func TestStatsSnapshotShardKeys(t *testing.T) {
	var snap StatsSnapshot
	if err := json.Unmarshal([]byte(goldenPR7Stats), &snap); err != nil {
		t.Fatalf("golden PR-7 payload no longer decodes: %v", err)
	}
	if snap.Shards != 8 || len(snap.ShardCommits) != 8 ||
		snap.CrossShardCommits != 10 || snap.CrossShardFraction != 0.2 {
		t.Fatalf("PR-7 fields decoded wrong: %+v", snap)
	}

	// Zero shard fields stay off the wire: a single-lane server's frame is
	// byte-identical to the pre-sharding one.
	body, err := json.Marshal(StatsSnapshot{Commits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shards", "shard_commits", "cross_shard_commits", "cross_shard_fraction"} {
		if _, ok := wire[key]; ok {
			t.Errorf("zero-valued shard key %q leaked onto the wire", key)
		}
	}
	s1 := newBankServer(t, Options{StoreShards: 1})
	c1 := s1.InProcClient()
	defer c1.Close()
	if _, err := c1.Exec("transfer(1, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	body, err = json.Marshal(s1.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "shard") {
		t.Errorf("single-lane STATS frame mentions shards:\n%s", body)
	}

	// A sharded server reports all four, and the lane counters sum to the
	// commit count for a single-lane-write workload.
	s := newBankServer(t, Options{StoreShards: 4})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(1, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	st := s.Stats()
	if st.Shards != 4 || len(st.ShardCommits) != 4 {
		t.Fatalf("sharded stats = %+v, want 4 lanes", st)
	}
	var lanes int64
	for _, n := range st.ShardCommits {
		lanes += n
	}
	if lanes == 0 {
		t.Error("no lane recorded the commit")
	}
}

// The per-lane metric series exist (with the lane label) on a sharded
// server, alongside the cross-shard counter and fraction gauge.
func TestMetricsEndpointShardSeries(t *testing.T) {
	s := newBankServer(t, Options{StoreShards: 2})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(10, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE td_shard_commits_total counter",
		`td_shard_commits_total{shard="0"}`,
		`td_shard_commits_total{shard="1"}`,
		"# TYPE td_cross_shard_commits_total counter",
		"# TYPE td_cross_shard_fraction gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n----\n%s", want, body)
		}
	}
}
