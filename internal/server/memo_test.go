package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// memoSrvProg has one tabling-eligible recursive predicate over a base
// relation the tests mutate through ordinary commits.
const memoSrvProg = `
edge(a, b). edge(b, c). edge(c, d).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
`

func newMemoServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Program = memoSrvProg
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestTableVerb drives the full verb surface: status on an untabled
// session, enabling tabling, hit accrual across repeated queries,
// invalidation through a committed base-relation write, and turning
// tabling back off.
func TestTableVerb(t *testing.T) {
	s := newMemoServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	st, err := c.TableStatus()
	if err != nil {
		t.Fatalf("TableStatus: %v", err)
	}
	if st.Mode != "none" || len(st.Tabled) != 0 {
		t.Fatalf("fresh session status = %+v, want mode none and nothing tabled", st)
	}

	st, err = c.Table("all")
	if err != nil {
		t.Fatalf("Table all: %v", err)
	}
	if st.Mode != "all" {
		t.Fatalf("mode = %q after TABLE all", st.Mode)
	}
	found := false
	for _, pred := range st.Tabled {
		if pred == "reach/2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tabled = %v, want reach/2", st.Tabled)
	}

	// First query fills, second replays; both answer identically.
	first, err := c.Query("reach(a, Y)", 0)
	if err != nil {
		t.Fatalf("Query 1: %v", err)
	}
	second, err := c.Query("reach(a, Y)", 0)
	if err != nil {
		t.Fatalf("Query 2: %v", err)
	}
	if len(first) != 3 || len(second) != len(first) {
		t.Fatalf("answers diverged: %d then %d (want 3)", len(first), len(second))
	}
	st, err = c.TableStatus()
	if err != nil {
		t.Fatalf("TableStatus: %v", err)
	}
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("no memo traffic after repeat query: %+v", st)
	}
	if len(st.Preds) == 0 || st.Preds[0].Pred != "reach/2" {
		t.Fatalf("per-pred counters = %+v, want reach/2 first", st.Preds)
	}

	// A committed write to the support relation strands the cached entries:
	// the next query must see the new tuple, counting an invalidation.
	if _, err := c.Exec("ins.edge(d, e)"); err != nil {
		t.Fatalf("Exec ins: %v", err)
	}
	third, err := c.Query("reach(a, Y)", 0)
	if err != nil {
		t.Fatalf("Query 3: %v", err)
	}
	if len(third) != 4 {
		t.Fatalf("stale answers after support write: got %d solutions, want 4", len(third))
	}
	st, err = c.TableStatus()
	if err != nil {
		t.Fatalf("TableStatus: %v", err)
	}
	if st.Invalidations == 0 {
		t.Fatalf("support write never invalidated: %+v", st)
	}

	// Server STATS carries the same counters under the memo_* keys.
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.MemoHits == 0 || stats.MemoMisses == 0 || stats.MemoEntries == 0 {
		t.Fatalf("STATS memo keys empty: %+v", stats)
	}
	if len(stats.MemoPreds) == 0 {
		t.Fatal("STATS memo_preds empty")
	}

	if st, err = c.Table("off"); err != nil || st.Mode != "none" || len(st.Tabled) != 0 {
		t.Fatalf("TABLE off -> %+v, %v", st, err)
	}
}

// TestTableAutoProfile proves the profile feedback loop: auto mode with no
// observations tables every eligible predicate, and a server-level Table
// option arms sessions without any verb.
func TestTableAutoProfile(t *testing.T) {
	s := newMemoServer(t, Options{Table: "auto"})
	c := s.InProcClient()
	defer c.Close()
	st, err := c.TableStatus()
	if err != nil {
		t.Fatalf("TableStatus: %v", err)
	}
	if st.Mode != "auto" || len(st.Tabled) == 0 {
		t.Fatalf("server-level Table option not applied: %+v", st)
	}

	// A predicate list selects exactly the named predicates.
	if st, err = c.Table("reach"); err != nil {
		t.Fatalf("Table reach: %v", err)
	}
	if len(st.Tabled) != 1 || st.Tabled[0] != "reach/2" {
		t.Fatalf("csv mode tabled %v, want [reach/2]", st.Tabled)
	}
}

// TestTableSessionsShareStore proves cross-session reuse: one session's
// fill is the next session's hit (their replicas hold the same tuples, so
// the support fingerprints agree).
func TestTableSessionsShareStore(t *testing.T) {
	s := newMemoServer(t, Options{Table: "all"})
	c1 := s.InProcClient()
	defer c1.Close()
	if _, err := c1.Query("reach(a, Y)", 0); err != nil {
		t.Fatalf("c1 Query: %v", err)
	}
	h0, _, _, _ := s.memo.Counters()

	c2 := s.InProcClient()
	defer c2.Close()
	if _, err := c2.Query("reach(a, Y)", 0); err != nil {
		t.Fatalf("c2 Query: %v", err)
	}
	h1, _, _, _ := s.memo.Counters()
	if h1 <= h0 {
		t.Fatalf("second session missed the shared store: hits %d -> %d", h0, h1)
	}
}

// The memo metric families are always registered; their values move with
// tabled traffic.
func TestMetricsEndpointMemoSeries(t *testing.T) {
	s := newMemoServer(t, Options{Table: "all"})
	c := s.InProcClient()
	defer c.Close()
	for i := 0; i < 2; i++ {
		if _, err := c.Query("reach(a, Y)", 0); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE td_memo_hits_total counter",
		"# TYPE td_memo_misses_total counter",
		"# TYPE td_memo_invalidations_total counter",
		"# TYPE td_memo_evictions_total counter",
		"# TYPE td_memo_bytes gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "td_memo_hits_total 0") {
		t.Error("td_memo_hits_total stayed 0 after a repeated tabled query")
	}
}

// goldenPR10Stats extends the golden frame with the tabled-evaluation keys
// (PR 10). Like every addition since PR 3 they are new names only, omitted
// when zero, so pre-tabling clients keep decoding payloads unchanged and
// untabled servers keep emitting the pre-PR-10 frame byte for byte.
const goldenPR10Stats = `{
	"commits": 10, "version": 10,
	"memo_hits": 40, "memo_misses": 6, "memo_invalidations": 2,
	"memo_evictions": 1, "memo_bytes": 4096, "memo_entries": 5,
	"memo_preds": [{"pred": "reach/2", "hits": 38, "misses": 4}]
}`

func TestStatsSnapshotMemoKeys(t *testing.T) {
	var snap StatsSnapshot
	if err := json.Unmarshal([]byte(goldenPR10Stats), &snap); err != nil {
		t.Fatalf("golden PR-10 payload no longer decodes: %v", err)
	}
	if snap.MemoHits != 40 || snap.MemoMisses != 6 || snap.MemoInvalidations != 2 ||
		snap.MemoEvictions != 1 || snap.MemoBytes != 4096 || snap.MemoEntries != 5 {
		t.Fatalf("PR-10 fields decoded wrong: %+v", snap)
	}
	if len(snap.MemoPreds) != 1 || snap.MemoPreds[0].Pred != "reach/2" ||
		snap.MemoPreds[0].Hits != 38 || snap.MemoPreds[0].Misses != 4 {
		t.Fatalf("PR-10 memo_preds decoded wrong: %+v", snap.MemoPreds)
	}

	// Zero memo counters stay off the wire: an untabled server's frame is
	// byte-identical to the pre-PR-10 one.
	body, err := json.Marshal(StatsSnapshot{Commits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "memo") {
		t.Errorf("zero-valued memo keys leaked onto the wire:\n%s", body)
	}
	s0 := newMemoServer(t, Options{})
	c0 := s0.InProcClient()
	defer c0.Close()
	if _, err := c0.Query("reach(a, Y)", 0); err != nil {
		t.Fatalf("Query: %v", err)
	}
	body, err = json.Marshal(s0.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "memo") {
		t.Errorf("untabled server STATS frame mentions memo:\n%s", body)
	}

	// And a server that tabled reports them.
	s := newMemoServer(t, Options{Table: "all"})
	c := s.InProcClient()
	defer c.Close()
	for i := 0; i < 2; i++ {
		if _, err := c.Query("reach(a, Y)", 0); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	body, err = json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"memo_hits", "memo_misses", "memo_bytes", "memo_entries", "memo_preds"} {
		if _, ok := wire[key]; !ok {
			t.Errorf("tabled server STATS frame missing %q:\n%s", key, body)
		}
	}
}
