package server

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// vetBadProg is rejected by the analyzer: the recursive call sits under
// "|", an error-severity lint.
const vetBadProg = "spin :- ins.tick | spin.\n?- spin."

func TestVetVerbMatchesLocalAnalysis(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	diags, fragment, err := c.Vet(vetBadProg)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	want, err := analysis.VetSource(vetBadProg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, want.Diags) {
		t.Errorf("server diagnostics differ from local analysis:\nserver: %v\nlocal:  %v", diags, want.Diags)
	}
	if fragment != want.Fragment {
		t.Errorf("server fragment = %q, local = %q", fragment, want.Fragment)
	}

	// VET is stateless: a parse failure reports CodeParse, nothing loads.
	if _, _, err := c.Vet("p( :- ."); err == nil {
		t.Error("Vet on unparseable source should fail")
	} else {
		var se *Error
		if !errors.As(err, &se) || se.Code != CodeParse {
			t.Errorf("Vet parse failure = %v, want Code %q", err, CodeParse)
		}
	}
}

func TestLoadRejectsVetErrors(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	err := c.Load(vetBadProg)
	if err == nil {
		t.Fatal("Load should reject a program with error-severity diagnostics")
	}
	var se *Error
	if !errors.As(err, &se) || se.Code != CodeVet {
		t.Fatalf("Load error = %v, want Code %q", err, CodeVet)
	}
	if !strings.Contains(se.Msg, "recursion-under-conc") {
		t.Errorf("rejection message %q should carry the lint ID", se.Msg)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.VetRejects != 1 {
		t.Errorf("Stats.VetRejects = %d, want 1", st.VetRejects)
	}

	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "td_vet_rejections_total 1") {
		t.Errorf("/metrics should report td_vet_rejections_total 1:\n%s", body)
	}

	// Warnings do not block LOAD: only error-severity diagnostics reject.
	if err := c.Load("go :- nothere(X), ins.log(X)."); err != nil {
		t.Errorf("Load with warnings only should succeed: %v", err)
	}
}

func TestNoVetOptionDisablesLoadVetting(t *testing.T) {
	s := newBankServer(t, Options{NoVet: true})
	c := s.InProcClient()
	defer c.Close()

	if err := c.Load(vetBadProg); err != nil {
		t.Fatalf("Load with NoVet should succeed: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.VetRejects != 0 {
		t.Errorf("Stats.VetRejects = %d, want 0 under NoVet", st.VetRejects)
	}
}

func TestInitialProgramVetted(t *testing.T) {
	_, err := New(Options{Program: vetBadProg})
	if err == nil {
		t.Fatal("New should reject an initial program with vet errors")
	}
	var ve *analysis.VetError
	if !errors.As(err, &ve) {
		t.Errorf("New error = %T (%v), want wrapped *analysis.VetError", err, err)
	}
	if s, err := New(Options{Program: vetBadProg, NoVet: true}); err != nil {
		t.Errorf("New with NoVet should accept the program: %v", err)
	} else {
		s.Close()
	}
}
