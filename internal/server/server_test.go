package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/verify"
)

const bankSrc = `
	account(a, 100).
	account(b, 100).
	account(c, 100).
	balance(A, B) :- account(A, B).
	change(A, B1, B2) :- del.account(A, B1), ins.account(A, B2).
	withdraw(Amt, A) :- balance(A, B), B >= Amt, sub(B, Amt, C), change(A, B, C).
	deposit(Amt, A) :- balance(A, B), add(B, Amt, C), change(A, B, C).
	transfer(Amt, A, B) :- withdraw(Amt, A), deposit(Amt, B).
`

func newBankServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Program = bankSrc
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// totalMoney sums account balances in the server's current snapshot.
func totalMoney(t *testing.T, s *Server) int64 {
	t.Helper()
	d := s.Snapshot().Thaw()
	var sum int64
	for row := range d.All("account", 2) {
		sum += row[1].IntVal()
	}
	return sum
}

func TestExecOverTCP(t *testing.T) {
	s := newBankServer(t, Options{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	res, err := c.Exec("transfer(30, a, b)")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Version != 1 {
		t.Errorf("version = %d, want 1", res.Version)
	}
	sols, err := c.Query("account(A, B)", 0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	got := map[string]string{}
	for _, s := range sols {
		got[s["A"]] = s["B"]
	}
	want := map[string]string{"a": "70", "b": "130", "c": "100"}
	for acct, bal := range want {
		if got[acct] != bal {
			t.Errorf("account(%s) = %s, want %s", acct, got[acct], bal)
		}
	}
}

func TestBeginRunCommitAbort(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	// RUN outside a transaction is a protocol error.
	if _, err := c.Run("transfer(1, a, b)"); err == nil {
		t.Fatal("RUN outside txn should fail")
	}

	// A committed interactive transaction with bindings.
	if err := c.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	b, err := c.Run("balance(a, B), transfer(10, a, c)")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b["B"] != "100" {
		t.Errorf("witness B = %q, want 100", b["B"])
	}
	if _, err := c.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// An aborted transaction leaves no trace.
	if err := c.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if _, err := c.Run("transfer(50, c, a)"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := c.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	sols, err := c.Query("account(c, B)", 0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(sols) != 1 || sols[0]["B"] != "110" {
		t.Errorf("account(c) after abort = %v, want 110", sols)
	}

	// A failing goal reports no_proof and keeps the transaction open.
	if err := c.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if _, err := c.Run("transfer(100000, a, b)"); !IsNoProof(err) {
		t.Fatalf("overdraft should be no_proof, got %v", err)
	}
	if _, err := c.Run("transfer(1, a, b)"); err != nil {
		t.Fatalf("txn should still be open: %v", err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// TestCommitConflict pins the OCC arbitration: of two transactions racing
// on overlapping accounts, the second to commit loses and can retry.
func TestCommitConflict(t *testing.T) {
	s := newBankServer(t, Options{})
	a := s.InProcClient()
	defer a.Close()
	b := s.InProcClient()
	defer b.Close()

	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run("transfer(10, a, b)"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run("transfer(5, b, c)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	if _, err := b.Commit(); !IsConflict(err) {
		t.Fatalf("second committer must conflict, got %v", err)
	}

	// After the conflict the session is resynced; a retry sees a's state.
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	bind, err := b.Run("balance(b, B), transfer(5, b, c)")
	if err != nil {
		t.Fatal(err)
	}
	if bind["B"] != "110" {
		t.Errorf("retry read B = %q, want 110 (a's deposit visible)", bind["B"])
	}
	if _, err := b.Commit(); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if st := s.Stats(); st.Conflicts == 0 {
		t.Error("stats should count the conflict")
	}
	if got := totalMoney(t, s); got != 300 {
		t.Errorf("total money = %d, want 300", got)
	}

	// Disjoint transactions must NOT conflict.
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run("transfer(1, a, b)"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run("ins.audit(entry1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatalf("disjoint commit should succeed: %v", err)
	}
}

// TestServerSerializable is the end-to-end serializability test: concurrent
// client sessions running iso money transfers through the real server must
// conserve total money and land on a final database some serial order of
// the same transactions also reaches — checked against the verification
// package as the oracle.
func TestServerSerializable(t *testing.T) {
	goals := []string{
		"iso(transfer(7, a, b))",
		"iso(transfer(13, b, c))",
		"iso(transfer(29, c, a))",
	}

	// Oracle 1: the engine-level property for the same program and goals.
	prog := parser.MustParse(bankSrc)
	d0, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	var txns []ast.Goal
	high := prog.VarHigh
	for _, g := range goals {
		goal, h, err := parser.ParseGoal(g, high)
		if err != nil {
			t.Fatal(err)
		}
		high = h
		txns = append(txns, goal)
	}
	ser, err := verify.Serializable(prog, txns, d0, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !ser.OK {
		t.Fatalf("engine-level serializability should hold, anomaly:\n%s", ser.Anomaly)
	}

	// Oracle 2: the exact set of serial outcomes.
	var serialFinals []*db.DB
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		ordered := make([]ast.Goal, len(p))
		for i, j := range p {
			ordered[i] = txns[j]
		}
		finals, err := verify.Finals(prog, ast.NewSeq(ordered...), d0, engine.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		serialFinals = append(serialFinals, finals...)
	}

	// The real system: one server, one concurrent session per transaction.
	s := newBankServer(t, Options{})
	var wg sync.WaitGroup
	errs := make([]error, len(goals))
	for i, g := range goals {
		wg.Add(1)
		go func(i int, g string) {
			defer wg.Done()
			c := s.InProcClient()
			defer c.Close()
			_, errs[i] = c.Exec(g)
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}

	if got := totalMoney(t, s); got != 300 {
		t.Errorf("total money = %d, want 300", got)
	}
	final := s.Snapshot().Thaw()
	matched := false
	for _, sf := range serialFinals {
		if final.Equal(sf) {
			matched = true
			break
		}
	}
	if !matched {
		t.Errorf("server final state matches no serial order:\n%s", final)
	}
}

// TestConcurrentTransfersConserveMoney hammers the server with many
// sessions transferring money around a small account set; conservation and
// commit accounting must hold exactly.
func TestConcurrentTransfersConserveMoney(t *testing.T) {
	const clients, txnsEach = 8, 20
	s := newBankServer(t, Options{MaxRetries: 200})
	accounts := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	errCh := make(chan error, clients*txnsEach)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.InProcClient()
			defer c.Close()
			for j := 0; j < txnsEach; j++ {
				from := accounts[(i+j)%len(accounts)]
				to := accounts[(i+j+1)%len(accounts)]
				if _, err := c.Exec(fmt.Sprintf("transfer(1, %s, %s)", from, to)); err != nil {
					errCh <- fmt.Errorf("client %d txn %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := totalMoney(t, s); got != 300 {
		t.Errorf("total money = %d, want 300", got)
	}
	st := s.Stats()
	if st.Commits != clients*txnsEach {
		t.Errorf("commits = %d, want %d", st.Commits, clients*txnsEach)
	}
	if st.Version != uint64(clients*txnsEach) {
		t.Errorf("version = %d, want %d", st.Version, clients*txnsEach)
	}
	t.Logf("commits=%d conflicts=%d retries=%d p50=%dµs p99=%dµs",
		st.Commits, st.Conflicts, st.Retries, st.CommitP50Us, st.CommitP99Us)
}

// TestRecovery: commits acknowledged by the server must survive a crash
// (no graceful close) and a restart, replayed from the WAL.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		SnapshotPath: filepath.Join(dir, "td.snap"),
		WALPath:      filepath.Join(dir, "td.wal"),
	}
	s := newBankServer(t, opts)
	c := s.InProcClient()
	acked := 0
	for i := 0; i < 10; i++ {
		if _, err := c.Exec("transfer(3, a, b)"); err != nil {
			t.Fatalf("Exec %d: %v", i, err)
		}
		acked++
	}
	c.Close()
	// Crash: no server Close, no checkpoint. Every acknowledged commit was
	// fsynced, so recovery must reproduce them all.
	recovered, err := db.OpenStore(opts.SnapshotPath, opts.WALPath)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer recovered.Close()
	wantA := strconv.Itoa(100 - 3*acked)
	wantB := strconv.Itoa(100 + 3*acked)
	for _, row := range recovered.DB.Tuples("account", 2) {
		switch row[0].SymName() {
		case "a":
			if row[1].String() != wantA {
				t.Errorf("account(a) = %s, want %s", row[1], wantA)
			}
		case "b":
			if row[1].String() != wantB {
				t.Errorf("account(b) = %s, want %s", row[1], wantB)
			}
		}
	}

	// A restarted server over the same files serves the recovered state.
	s2 := newBankServer(t, opts)
	c2 := s2.InProcClient()
	defer c2.Close()
	sols, err := c2.Query("account(a, B)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["B"] != wantA {
		t.Errorf("restarted account(a) = %v, want %s", sols, wantA)
	}
	if got := totalMoney(t, s2); got != 300 {
		t.Errorf("total money after restart = %d, want 300", got)
	}
}

func TestAdmissionControl(t *testing.T) {
	s := newBankServer(t, Options{MaxSessions: 1})
	c1 := s.InProcClient()
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatalf("first session: %v", err)
	}
	c2 := s.InProcClient()
	defer c2.Close()
	if got := codeOf(c2.Ping()); got != CodeBusy {
		t.Fatalf("second session should be rejected busy, got %q", got)
	}
}

// codeOf extracts the protocol error code ("" for nil or non-protocol errors).
func codeOf(err error) string {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}

func TestStepBudget(t *testing.T) {
	s := newBankServer(t, Options{MaxSteps: 2000})
	c := s.InProcClient()
	defer c.Close()
	if err := c.Load(`spin(N) :- add(N, 1, M), spin(M).`); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := c.Exec("spin(0)"); codeOf(err) != CodeBudget {
		t.Fatalf("runaway goal should exhaust the budget, got %v", err)
	}
	if st := s.Stats(); st.BudgetHits == 0 {
		t.Error("stats should count the budget hit")
	}
}

func TestLoadIsIdempotentAndSessionScoped(t *testing.T) {
	s := newBankServer(t, Options{})
	c1 := s.InProcClient()
	defer c1.Close()
	c2 := s.InProcClient()
	defer c2.Close()

	// Reloading the same facts changes nothing (set semantics).
	if err := c1.Load(bankSrc); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if v := s.Version(); v != 0 {
		t.Errorf("idempotent reload bumped version to %d", v)
	}

	// New rules are visible to the loading session only; the shared
	// database is shared.
	if err := c1.Load(bankSrc + `
		audit_transfer(Amt, A, B) :- transfer(Amt, A, B), ins.audit(A, B, Amt).
	`); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := c1.Exec("audit_transfer(5, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if _, err := c2.Exec("audit_transfer(5, b, c)"); !IsNoProof(err) {
		t.Fatalf("c2 should not see c1's rules, got %v", err)
	}
	sols, err := c2.Query("audit(A, B, Amt)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Errorf("audit tuple should be shared, got %v", sols)
	}
}

func TestQueryMaxAndReadOnly(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	sols, err := c.Query("account(A, B)", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Errorf("max=2 returned %d solutions", len(sols))
	}
	// A query with updates keeps no effects.
	if _, err := c.Query("ins.scratch(1), scratch(X)", 0); err != nil {
		t.Fatal(err)
	}
	sols, err = c.Query("scratch(X)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Errorf("query effects leaked: %v", sols)
	}
	if v := s.Version(); v != 0 {
		t.Errorf("read-only traffic bumped version to %d", v)
	}
}
