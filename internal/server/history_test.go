package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"
)

// histSrc gives transactions insert and delete markers, so tests can
// reconstruct any historical state from the changefeed.
const histSrc = `
put(X) :- ins.mark(X).
take(X) :- del.mark(X).
`

func newDurableServer(t *testing.T, opts Options) *Server {
	t.Helper()
	dir := t.TempDir()
	if opts.Program == "" {
		opts.Program = histSrc
	}
	opts.SnapshotPath = filepath.Join(dir, "td.snap")
	opts.WALPath = filepath.Join(dir, "td.wal")
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func isCode(err error, code string) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == code
}

// queryMarks returns the set of mark(X) values visible to c's QUERY.
func queryMarks(t *testing.T, c *Client) map[int]bool {
	t.Helper()
	sols, err := c.Query("mark(X)", 0)
	if err != nil {
		t.Fatalf("Query(mark(X)): %v", err)
	}
	got := map[int]bool{}
	for _, s := range sols {
		n, err := strconv.Atoi(s["X"])
		if err != nil {
			t.Fatalf("non-integer mark binding %q", s["X"])
		}
		got[n] = true
	}
	return got
}

var markAtomRe = regexp.MustCompile(`^mark\((-?\d+)\)$`)

// replayDeltas applies the changefeed's mark ops onto state, in order,
// skipping deltas past LSN upto (pass ^uint64(0) for all).
func replayDeltas(t *testing.T, deltas []CommitDelta, state map[int]bool, upto uint64) {
	t.Helper()
	for _, d := range deltas {
		if d.LSN > upto {
			return
		}
		for _, op := range d.Ops {
			m := markAtomRe.FindStringSubmatch(op.Atom)
			if m == nil {
				t.Fatalf("unexpected changefeed atom %q", op.Atom)
			}
			n, _ := strconv.Atoi(m[1])
			switch op.Op {
			case "ins":
				state[n] = true
			case "del":
				delete(state, n)
			default:
				t.Fatalf("unexpected changefeed verb %q", op.Op)
			}
		}
	}
}

func sameMarks(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestASOFMatchesChangefeed is the history subsystem's central contract:
// the state ASOF any retained LSN equals the boot state plus exactly the
// CHANGES deltas up to that LSN. Each is computed independently (pinned
// snapshot reads vs. op replay), so agreement means both are correct.
func TestASOFMatchesChangefeed(t *testing.T) {
	s := newDurableServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	boot := s.Version()
	goals := []string{"put(1)", "put(2)", "take(1)", "put(3)", "put(4)", "take(2)"}
	versions := []uint64{boot}
	for _, g := range goals {
		res, err := c.Exec(g)
		if err != nil {
			t.Fatalf("Exec(%s): %v", g, err)
		}
		versions = append(versions, res.Version)
	}

	deltas, err := c.Changes(boot)
	if err != nil {
		t.Fatalf("Changes(%d): %v", boot, err)
	}
	if len(deltas) != len(goals) {
		t.Fatalf("Changes(%d): %d deltas, want %d", boot, len(deltas), len(goals))
	}

	for i, v := range versions {
		replayed := map[int]bool{}
		replayDeltas(t, deltas, replayed, v)

		served, err := c.AsOf(v)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", v, err)
		}
		if served != v {
			t.Fatalf("AsOf(%d) served %d, want exact hit", v, served)
		}
		if got := queryMarks(t, c); !sameMarks(got, replayed) {
			t.Fatalf("step %d: ASOF %d sees %v, changefeed replay says %v", i, v, got, replayed)
		}
	}

	// Unpinned, QUERY returns to the live head.
	if err := c.AsOfOff(); err != nil {
		t.Fatal(err)
	}
	live := map[int]bool{}
	replayDeltas(t, deltas, live, ^uint64(0))
	if got := queryMarks(t, c); !sameMarks(got, live) {
		t.Fatalf("after ASOF off: live reads see %v, want %v", got, live)
	}
}

func TestASOFRefusesWritesWhilePinned(t *testing.T) {
	s := newDurableServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	res, err := c.Exec("put(1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AsOf(res.Version); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("put(2)"); !isCode(err, CodeBadRequest) {
		t.Fatalf("Exec while pinned = %v, want CodeBadRequest", err)
	}
	if err := c.Begin(); !isCode(err, CodeBadRequest) {
		t.Fatalf("Begin while pinned = %v, want CodeBadRequest", err)
	}
	if err := c.Load("p(X) :- ins.q(X)."); !isCode(err, CodeBadRequest) {
		t.Fatalf("Load while pinned = %v, want CodeBadRequest", err)
	}
	if err := c.AsOfOff(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("put(2)"); err != nil {
		t.Fatalf("Exec after unpin: %v", err)
	}

	// Pinning inside an open transaction is refused outright.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AsOf(res.Version); !isCode(err, CodeBadRequest) {
		t.Fatalf("ASOF inside txn = %v, want CodeBadRequest", err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestASOFOutOfWindow(t *testing.T) {
	s := newDurableServer(t, Options{HistoryWindow: 2})
	c := s.InProcClient()
	defer c.Close()

	boot := s.Version()
	var last uint64
	for i := 1; i <= 6; i++ {
		res, err := c.Exec(fmt.Sprintf("put(%d)", i))
		if err != nil {
			t.Fatal(err)
		}
		last = res.Version
	}

	// The boot version has been evicted (window keeps 2 + the base).
	if _, err := c.AsOf(boot); !isCode(err, CodeOutOfWindow) {
		t.Fatalf("AsOf(evicted) = %v, want CodeOutOfWindow", err)
	}
	if _, err := c.Changes(boot); !isCode(err, CodeOutOfWindow) {
		t.Fatalf("Changes(evicted) = %v, want CodeOutOfWindow", err)
	}
	// The future is equally unreadable.
	if _, err := c.AsOf(last + 1000); !isCode(err, CodeOutOfWindow) {
		t.Fatalf("AsOf(future) = %v, want CodeOutOfWindow", err)
	}
	// The newest retained versions still serve.
	if _, err := c.AsOf(last); err != nil {
		t.Fatalf("AsOf(newest) = %v", err)
	}
	if deltas, err := c.Changes(last); err != nil || len(deltas) != 0 {
		t.Fatalf("Changes(newest) = %v, %v; want caught-up empty stream", deltas, err)
	}
}

// TestCheckpointVerb drives a manual CHECKPOINT end to end: the reported
// LSN is the current version, the stats count it, and a restarted server
// replays only the post-checkpoint suffix.
func TestCheckpointVerb(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Program:      histSrc,
		SnapshotPath: filepath.Join(dir, "td.snap"),
		WALPath:      filepath.Join(dir, "td.wal"),
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := s.InProcClient()
	for i := 1; i <= 20; i++ {
		if _, err := c.Exec(fmt.Sprintf("put(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	lsn, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if lsn != s.Version() {
		t.Fatalf("checkpoint LSN %d, want current version %d", lsn, s.Version())
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints != 1 {
		t.Fatalf("stats.Checkpoints = %d, want 1", st.Checkpoints)
	}
	// A couple of post-checkpoint commits form the replay suffix.
	for i := 21; i <= 23; i++ {
		if _, err := c.Exec(fmt.Sprintf("put(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	c2 := s2.InProcClient()
	defer c2.Close()
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.RecoveryReplayed == 0 || st2.RecoveryReplayed >= 20 {
		t.Fatalf("RecoveryReplayed = %d, want a small nonzero suffix (checkpoint covered the first 20 commits)", st2.RecoveryReplayed)
	}
	if got := queryMarks(t, c2); len(got) != 23 {
		t.Fatalf("restarted server sees %d marks, want 23", len(got))
	}
}

func TestCheckpointRefusedInMemory(t *testing.T) {
	s, err := New(Options{Program: histSrc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Checkpoint(); !isCode(err, CodeBadRequest) {
		t.Fatalf("Checkpoint on in-memory server = %v, want CodeBadRequest", err)
	}
}

// TestCommitsFlowDuringCheckpoint parks a checkpoint mid-snapshot (crash
// hook held open on the "snapshot" stage) and proves commits still go
// through — the checkpoint runs off the commit path.
func TestCommitsFlowDuringCheckpoint(t *testing.T) {
	s := newDurableServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	for i := 1; i <= 5; i++ {
		if _, err := c.Exec(fmt.Sprintf("put(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	inSnapshot := make(chan struct{})
	release := make(chan struct{})
	s.store.SetCheckpointHook(func(stage string) error {
		if stage == "snapshot" {
			close(inSnapshot)
			<-release
		}
		return nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	ckptErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		cc := s.InProcClient()
		defer cc.Close()
		_, err := cc.Checkpoint()
		ckptErr <- err
	}()

	<-inSnapshot
	for i := 6; i <= 15; i++ {
		if _, err := c.Exec(fmt.Sprintf("put(%d)", i)); err != nil {
			t.Fatalf("Exec during checkpoint: %v", err)
		}
	}
	close(release)
	wg.Wait()
	if err := <-ckptErr; err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := queryMarks(t, c); len(got) != 15 {
		t.Fatalf("after checkpoint: %d marks, want 15", len(got))
	}
}

// TestPersistentLSNs: a restarted durable server continues the version
// sequence instead of restarting from zero, so LSNs name commits stably
// across the server's whole lifetime.
func TestPersistentLSNs(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Program:      histSrc,
		SnapshotPath: filepath.Join(dir, "td.snap"),
		WALPath:      filepath.Join(dir, "td.wal"),
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := s.InProcClient()
	var v1 uint64
	for i := 1; i <= 3; i++ {
		res, err := c.Exec(fmt.Sprintf("put(%d)", i))
		if err != nil {
			t.Fatal(err)
		}
		v1 = res.Version
	}
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Version(); got != v1 {
		t.Fatalf("restarted version = %d, want %d", got, v1)
	}
	c2 := s2.InProcClient()
	defer c2.Close()
	res, err := c2.Exec("put(100)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version <= v1 {
		t.Fatalf("post-restart commit version %d did not advance past %d", res.Version, v1)
	}
	// The new window's base is the recovered state; history before it is
	// gone (it lives in the snapshot+WAL, not in memory).
	if served, err := c2.AsOf(v1); err != nil || served != v1 {
		t.Fatalf("AsOf(recovered base) = %d, %v", served, err)
	}
	if got := queryMarks(t, c2); len(got) != 3 {
		t.Fatalf("ASOF base sees %d marks, want 3", len(got))
	}
	if err := c2.AsOfOff(); err != nil {
		t.Fatal(err)
	}
	if v1 > 0 {
		if _, err := c2.AsOf(v1 - 1); !isCode(err, CodeOutOfWindow) {
			t.Fatalf("AsOf(pre-boot) = %v, want CodeOutOfWindow", err)
		}
	}
}

// TestBackgroundCheckpointPolicy wires the -checkpoint.walsize policy
// through Options and waits for the checkpointer to fire on its own.
func TestBackgroundCheckpointPolicy(t *testing.T) {
	s := newDurableServer(t, Options{CheckpointWALSize: 1}) // any commit trips it
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("put(1)"); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, "background checkpoint", func() bool {
		st, err := c.Stats()
		return err == nil && st.Checkpoints >= 1
	})
}

func waitForCond(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ASOF answers must come from the pinned snapshot even when the live head
// has moved on — reads are repeatable for as long as the pin holds.
func TestASOFReadsAreRepeatable(t *testing.T) {
	s := newDurableServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	w := s.InProcClient()
	defer w.Close()

	res, err := c.Exec("put(1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AsOf(res.Version); err != nil {
		t.Fatal(err)
	}
	before := queryMarks(t, c)

	// Another session rewrites history out from under the pin.
	for i := 2; i <= 10; i++ {
		if _, err := w.Exec(fmt.Sprintf("put(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Exec("take(1)"); err != nil {
		t.Fatal(err)
	}

	after := queryMarks(t, c)
	if !sameMarks(before, after) {
		t.Fatalf("pinned reads drifted: %v then %v", before, after)
	}
	if !after[1] || len(after) != 1 {
		t.Fatalf("pinned state = %v, want exactly {1}", after)
	}
}
