package server

// Stage-level latency attribution: a sampled transaction carries a stage
// clock through its whole lifetime — parse to acknowledgment — and every
// handoff point marks the clock, charging the interval since the previous
// mark to the pipeline stage that just finished. The result is an additive
// decomposition of the transaction's wall-clock: sum(stages) ~= end-to-end
// latency, so a p99 regression can be attributed to the stage that moved
// instead of eyeballed from aggregate histograms.
//
// Sampling is 1-in-N per session (Options.StageSample); an unsampled
// transaction carries a nil clock and pays only a nil check per mark site.
// Sampled stage durations feed the td_txn_stage_us{stage=} histograms, the
// STATS stage_p50_us/stage_p99_us maps, and — when Options.WideSink is set —
// one "wide event" JSONL line per transaction.

import "time"

// Pipeline stages, in the order a committing EXEC passes through them.
const (
	stageParse     = iota // goal text -> AST
	stageProve            // proof search over the session replica
	stageValidate         // OCC backward validation (lock-free scans + delta re-checks)
	stageLaneWait         // acquiring the touched lanes' locks in index order
	stageApply            // applying the write set to lane heads and the replica
	stageWALAppend        // the sequencer section: LSN claim + WAL block append
	stageFsyncWait        // parked on the group-commit flusher's covering fsync
	stageAck              // response serialization and the socket write
	nStages
)

// stageNames are the label values of td_txn_stage_us{stage=} and the keys of
// the wide event's stage_us map, indexed by the constants above.
var stageNames = [nStages]string{
	"parse", "prove", "validate", "lane_wait", "apply", "wal_append", "fsync_wait", "ack",
}

// stageClock attributes one transaction's wall-clock to pipeline stages and
// accumulates the commit-path facts the wide event reports. Each session
// owns one, reused across sampled transactions; it is only ever touched by
// the owning session goroutine.
type stageClock struct {
	start time.Time
	last  time.Time
	dur   [nStages]time.Duration

	// Commit-path facts recorded along the way (wide-event payload).
	lanes      uint64 // mask of commit lanes touched
	ops        int    // write-set size
	crossShard bool
	conflict   string // cause of the last OCC round lost before success
	batch      int64  // commits covered by the fsync that acknowledged us
}

// reset rearms the clock for a new transaction.
func (c *stageClock) reset() {
	now := time.Now()
	*c = stageClock{start: now, last: now}
}

// mark charges the interval since the previous mark to stage. Stages may be
// marked more than once (validate runs lock-free and again under the lane
// locks; EXEC retries accumulate across attempts): durations add up.
func (c *stageClock) mark(stage int) {
	now := time.Now()
	c.dur[stage] += now.Sub(c.last)
	c.last = now
}

// total is the transaction's end-to-end wall-clock so far.
func (c *stageClock) total() time.Duration { return time.Since(c.start) }

// laneList expands the touched-lane mask into the wide event's lane list.
func (c *stageClock) laneList() []int {
	if c.lanes == 0 {
		return nil
	}
	var out []int
	for i := 0; i < 64; i++ {
		if c.lanes&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}
