package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// Error is a protocol-level failure reported by the server.
type Error struct {
	Code string
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// IsConflict reports whether err is a commit-validation conflict (the
// retryable loser of optimistic concurrency control).
func IsConflict(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == CodeConflict
}

// IsNoProof reports whether err means the goal has no committing execution.
func IsNoProof(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == CodeNoProof
}

// Client is a synchronous client for the transaction service. It is safe
// for concurrent use; requests are serialized over the one connection
// (sessions are single-threaded by design — open several clients for
// parallelism).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	max  int
}

// Dial connects to a tdserver at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one end of a net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), max: DefaultMaxFrame}
}

// Close closes the connection (any open transaction is aborted server-side).
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes one response, converting
// protocol failures into *Error.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrame(c.r, &resp, c.max); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, &Error{Code: resp.Code, Msg: resp.Err}
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// Load installs a TD program (rules become the session rulebase; facts are
// committed into the shared database).
func (c *Client) Load(program string) error {
	_, err := c.roundTrip(&Request{Op: OpLoad, Program: program})
	return err
}

// Begin opens a transaction.
func (c *Client) Begin() error {
	_, err := c.roundTrip(&Request{Op: OpBegin})
	return err
}

// Run executes a goal inside the open transaction and returns the witness
// bindings. A failing goal (IsNoProof) leaves the transaction open.
func (c *Client) Run(goal string) (map[string]string, error) {
	resp, err := c.roundTrip(&Request{Op: OpRun, Goal: goal})
	if err != nil {
		return nil, err
	}
	return resp.Bindings, nil
}

// Commit validates and commits the open transaction, returning the new
// database version. On conflict (IsConflict) the transaction is rolled
// back; re-run it from Begin.
func (c *Client) Commit() (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: OpCommit})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Abort rolls back the open transaction.
func (c *Client) Abort() error {
	_, err := c.roundTrip(&Request{Op: OpAbort})
	return err
}

// ExecResult reports a one-shot transaction.
type ExecResult struct {
	Bindings map[string]string
	Version  uint64
	Retries  int
}

// Exec runs goal as one serializable transaction (BEGIN + RUN + COMMIT)
// with server-side conflict retries.
func (c *Client) Exec(goal string) (*ExecResult, error) {
	resp, err := c.roundTrip(&Request{Op: OpExec, Goal: goal})
	if err != nil {
		return nil, err
	}
	return &ExecResult{Bindings: resp.Bindings, Version: resp.Version, Retries: resp.Retries}, nil
}

// Query enumerates up to max solutions of goal (max <= 0 means all)
// against a consistent snapshot, keeping no effects.
func (c *Client) Query(goal string, max int) ([]map[string]string, error) {
	resp, err := c.roundTrip(&Request{Op: OpQuery, Goal: goal, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Solutions, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*StatsSnapshot, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// TraceOn enables structured execution tracing for this session: every
// subsequent RUN/EXEC goal builds a span tree retrievable with TraceDump.
func (c *Client) TraceOn() error {
	_, err := c.roundTrip(&Request{Op: OpTrace, Arg: "on"})
	return err
}

// TraceOff disables session-level tracing.
func (c *Client) TraceOff() error {
	_, err := c.roundTrip(&Request{Op: OpTrace, Arg: "off"})
	return err
}

// TraceDump fetches the span tree of the session's most recent successfully
// proved goal.
func (c *Client) TraceDump() (*obs.Span, error) {
	resp, err := c.roundTrip(&Request{Op: OpTrace, Arg: "dump"})
	if err != nil {
		return nil, err
	}
	return resp.Trace, nil
}

// ProfileOn enables per-predicate prover profiling for this session: every
// subsequent RUN/EXEC/QUERY goal attributes its proof-search time to the
// predicates it dispatched, retrievable with ProfileDump.
func (c *Client) ProfileOn() error {
	_, err := c.roundTrip(&Request{Op: OpProfile, Arg: "on"})
	return err
}

// ProfileOff disables session-level prover profiling.
func (c *Client) ProfileOff() error {
	_, err := c.roundTrip(&Request{Op: OpProfile, Arg: "off"})
	return err
}

// ProfileDump fetches the server-wide prover time attribution, keyed by
// predicate (live sessions folded with attribution absorbed from closed
// sessions and engine rebuilds).
func (c *Client) ProfileDump() (map[string]PredProfile, error) {
	resp, err := c.roundTrip(&Request{Op: OpProfile, Arg: "dump"})
	if err != nil {
		return nil, err
	}
	return resp.Profile, nil
}

// Table sets the session's tabling mode — "auto" (profile-driven top-K),
// "all" (every tabling-eligible predicate), "none" (off), or a
// comma-separated predicate list like "hot,reach/2" — and returns the
// resulting status. "on" and "off" alias "auto" and "none".
func (c *Client) Table(mode string) (*MemoStatus, error) {
	resp, err := c.roundTrip(&Request{Op: OpTable, Arg: mode})
	if err != nil {
		return nil, err
	}
	return resp.Memo, nil
}

// TableStatus reports the session's tabling mode, the predicates its engine
// tables, and the shared memo store's counters, without changing anything.
func (c *Client) TableStatus() (*MemoStatus, error) {
	return c.Table("status")
}

// Checkpoint triggers an incremental checkpoint on the server (snapshot +
// WAL truncation, off the commit path) and returns the checkpoint's LSN.
func (c *Client) Checkpoint() (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: OpCheckpoint})
	if err != nil {
		return 0, err
	}
	return resp.LSN, nil
}

// AsOf pins the session's reads to the historical version at lsn; QUERY
// then answers from that point-in-time state and writes are refused until
// AsOfOff. Returns the LSN actually served (the newest commit at or below
// lsn). An LSN outside the retained window fails with CodeOutOfWindow.
func (c *Client) AsOf(lsn uint64) (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: OpAsOf, Arg: strconv.FormatUint(lsn, 10)})
	if err != nil {
		return 0, err
	}
	return resp.LSN, nil
}

// AsOfOff unpins the session, returning QUERY to the live database.
func (c *Client) AsOfOff() error {
	_, err := c.roundTrip(&Request{Op: OpAsOf, Arg: "off"})
	return err
}

// Changes fetches the committed op deltas since lsn, in commit order — the
// exact write sets that take the state at lsn to the current state. An LSN
// outside the retained window fails with CodeOutOfWindow.
func (c *Client) Changes(since uint64) ([]CommitDelta, error) {
	resp, err := c.roundTrip(&Request{Op: OpChanges, Arg: strconv.FormatUint(since, 10)})
	if err != nil {
		return nil, err
	}
	return resp.Changes, nil
}

// Vet statically analyzes a program server-side without loading it,
// returning the tdvet diagnostics and the program's fragment
// classification. A parse failure is returned as a CodeParse *Error.
func (c *Client) Vet(program string) ([]analysis.Diagnostic, string, error) {
	resp, err := c.roundTrip(&Request{Op: OpVet, Program: program})
	if err != nil {
		return nil, "", err
	}
	return resp.Diagnostics, resp.Fragment, nil
}

// Plan runs the tdplan static planner server-side: over program when
// non-empty (without installing it), otherwise over the session's loaded
// program. The report carries adornment signatures, reorder decisions,
// and the per-predicate tabling-safety certificates.
func (c *Client) Plan(program string) (*analysis.PlanReport, error) {
	resp, err := c.roundTrip(&Request{Op: OpPlan, Program: program})
	if err != nil {
		return nil, err
	}
	return resp.Plan, nil
}
