package server

// Stage-level latency attribution tests (PR 8): STATS wire compatibility for
// the new sections, the td_txn_stage_us and td_prover_pred_us metric
// families, wide-event emission, SLO breach reporting, the PROFILE verb, and
// the registry-wide naming-convention audit.

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// --- STATS wire compatibility ----------------------------------------------

// goldenPR8Stats extends the golden frame with the stage-attribution keys
// (PR 8). As with every addition since PR 3 they are new names only, omitted
// when their feature is off, so pre-PR-8 clients keep decoding payloads
// unchanged and servers with attribution off keep emitting the old frame.
const goldenPR8Stats = `{
	"commits": 100, "version": 100,
	"stage_p50_us": {"parse": 12, "prove": 180, "fsync_wait": 900},
	"stage_p99_us": {"parse": 30, "prove": 2100, "fsync_wait": 4000},
	"prover_profile": {"transfer": {"calls": 40, "fanout": 80, "time_us": 1500}},
	"slos": [{"name": "commit", "threshold_us": 5000, "objective": 0.999,
	          "good": 99, "total": 100, "burn_rate": 10}]
}`

func TestStatsSnapshotStageKeys(t *testing.T) {
	var snap StatsSnapshot
	if err := json.Unmarshal([]byte(goldenPR8Stats), &snap); err != nil {
		t.Fatalf("golden PR-8 payload no longer decodes: %v", err)
	}
	if snap.StageP50Us["prove"] != 180 || snap.StageP99Us["fsync_wait"] != 4000 {
		t.Fatalf("stage quantiles decoded wrong: %+v", snap)
	}
	if p := snap.ProverProfile["transfer"]; p.Calls != 40 || p.Fanout != 80 || p.TimeUs != 1500 {
		t.Fatalf("prover profile decoded wrong: %+v", snap.ProverProfile)
	}
	if len(snap.SLOs) != 1 || snap.SLOs[0].Name != "commit" ||
		snap.SLOs[0].ThresholdUs != 5000 || snap.SLOs[0].Objective != 0.999 ||
		snap.SLOs[0].Good != 99 || snap.SLOs[0].Total != 100 || snap.SLOs[0].BurnRate != 10 {
		t.Fatalf("SLO snapshot decoded wrong: %+v", snap.SLOs)
	}

	// The new keys stay off the wire when their feature never produced data.
	body, err := json.Marshal(StatsSnapshot{Commits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"stage_p50_us", "stage_p99_us", "prover_profile", "slos"} {
		if _, ok := wire[key]; ok {
			t.Errorf("zero-valued PR-8 key %q leaked onto the wire", key)
		}
	}

	// A live server with sampling, profiling, and SLOs all off emits the
	// exact pre-PR-8 frame: none of the new keys appear.
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(5, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	body, err = json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"stage_p50_us", "stage_p99_us", "prover_profile", "slos"} {
		if strings.Contains(string(body), key) {
			t.Errorf("feature-off STATS frame mentions %q:\n%s", key, body)
		}
	}
}

// --- stage clock ------------------------------------------------------------

// With StageSample 1 every transaction is attributed: all eight pipeline
// stages appear on /metrics with equal sample counts, and STATS reports the
// full quantile maps.
func TestMetricsEndpointStageSeries(t *testing.T) {
	s := newBankServer(t, Options{StageSample: 1})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(10, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	// The clock settles after the EXEC response is flushed; a follow-up
	// request on the same session serializes behind that finalization.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "# TYPE td_txn_stage_us histogram") {
		t.Fatalf("/metrics missing the td_txn_stage_us family\n----\n%s", body)
	}
	for _, stage := range stageNames {
		want := `td_txn_stage_us_count{stage="` + stage + `"} 1`
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q (every stage is observed once per sampled txn)\n----\n%s", want, body)
		}
	}

	st := s.Stats()
	if len(st.StageP50Us) != nStages || len(st.StageP99Us) != nStages {
		t.Fatalf("stage quantile maps = %v / %v, want all %d stages",
			st.StageP50Us, st.StageP99Us, nStages)
	}
	// The transaction did real work: at least prove must have nonzero p99.
	if st.StageP99Us["prove"] <= 0 {
		t.Errorf("prove p99 = %d, want > 0 (maps: %v)", st.StageP99Us["prove"], st.StageP99Us)
	}
}

// An unsampled server (StageSample 0, no WideSink) must not pay for
// attribution: the stage histograms stay empty.
func TestStageSamplingOff(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()
	if _, err := c.Exec("transfer(10, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	for i := 0; i < nStages; i++ {
		if n := s.stats.stageLat[i].Count(); n != 0 {
			t.Errorf("stage %q recorded %d samples with sampling off", stageNames[i], n)
		}
	}
}

// --- wide events ------------------------------------------------------------

// captureSink collects wide events in memory (the JSONL path is covered by
// the tdlog round-trip test).
type captureSink struct {
	mu  sync.Mutex
	evs []obs.WideEvent
}

func (cs *captureSink) EmitWide(ev *obs.WideEvent) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.evs = append(cs.evs, *ev)
}

func (cs *captureSink) events() []obs.WideEvent {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return append([]obs.WideEvent{}, cs.evs...)
}

func TestWideEvents(t *testing.T) {
	sink := &captureSink{}
	dir := t.TempDir()
	// Setting WideSink alone implies StageSample 1: every transaction emits.
	s := newBankServer(t, Options{
		WideSink:     sink,
		SnapshotPath: dir + "/td.snap",
		WALPath:      dir + "/td.wal",
	})
	c := s.InProcClient()
	for i := 0; i < 3; i++ {
		if _, err := c.Exec("transfer(1, a, b)"); err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}
	// Serialize behind the last EXEC's post-flush finalization.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	c.Close()

	evs := sink.events()
	if len(evs) != 3 {
		t.Fatalf("got %d wide events, want 3: %+v", len(evs), evs)
	}
	seenTraces := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Event != "txn" || ev.Verb != OpExec || ev.Goal != "transfer(1, a, b)" {
			t.Fatalf("event identity wrong: %+v", ev)
		}
		if ev.Trace == 0 || seenTraces[ev.Trace] {
			t.Errorf("trace id %d missing or repeated", ev.Trace)
		}
		seenTraces[ev.Trace] = true
		if ev.Session == 0 || ev.LSN == 0 {
			t.Errorf("session/lsn not stamped: %+v", ev)
		}
		if ev.Ops != 4 { // transfer rewrites two accounts: 2 dels + 2 ins
			t.Errorf("ops = %d, want 4", ev.Ops)
		}
		if len(ev.Lanes) == 0 {
			t.Errorf("no commit lanes recorded: %+v", ev)
		}
		if ev.Batch < 1 {
			t.Errorf("durable commit reports fsync batch %d, want >= 1", ev.Batch)
		}
		// The stage decomposition is additive: the per-stage sum accounts
		// for the transaction's end-to-end wall-clock within 10% (the slack
		// covers per-stage microsecond truncation).
		var sum int64
		for _, us := range ev.StageUs {
			sum += us
		}
		if ev.TotalUs <= 0 {
			t.Fatalf("total_us = %d: %+v", ev.TotalUs, ev)
		}
		if diff := ev.TotalUs - sum; diff < 0 || float64(diff) > 0.1*float64(ev.TotalUs)+float64(len(ev.StageUs)) {
			t.Errorf("stage sum %dus does not account for total %dus: %+v", sum, ev.TotalUs, ev.StageUs)
		}
		// A durable commit must have spent time being proven and fsynced.
		for _, stage := range []string{"prove", "fsync_wait"} {
			if ev.StageUs[stage] <= 0 {
				t.Errorf("stage_us[%s] = %d, want > 0: %+v", stage, ev.StageUs[stage], ev.StageUs)
			}
		}
	}
}

// A losing COMMIT's wide event names the cause of the lost OCC round.
func TestWideEventConflictCause(t *testing.T) {
	sink := &captureSink{}
	s := newBankServer(t, Options{WideSink: sink})
	c1 := s.InProcClient()
	defer c1.Close()
	c2 := s.InProcClient()
	defer c2.Close()

	// c1 opens an interactive transaction over account a; c2's one-shot
	// commits first, so c1's COMMIT deterministically loses validation.
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Run("withdraw(10, a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("withdraw(20, a)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if _, err := c1.Commit(); !IsConflict(err) {
		t.Fatalf("Commit: err = %v, want conflict", err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	var lost *obs.WideEvent
	for _, ev := range sink.events() {
		if ev.Verb == OpCommit {
			lost = &ev
			break
		}
	}
	if lost == nil {
		t.Fatalf("no COMMIT wide event emitted: %+v", sink.events())
	}
	if lost.Conflict != "read_write" {
		t.Errorf("losing COMMIT's conflict cause = %q, want read_write (%+v)", lost.Conflict, *lost)
	}
	if lost.LSN != 0 {
		t.Errorf("losing COMMIT stamped LSN %d, want none", lost.LSN)
	}
}

// --- SLO tracking -----------------------------------------------------------

// slowSyncer delays every WAL fsync — the fault injection that breaches an
// fsync SLO on demand.
type slowSyncer struct {
	inner syncer
	delay time.Duration
}

func (ss slowSyncer) Commit() error {
	time.Sleep(ss.delay)
	return ss.inner.Commit()
}

func TestSLOBreachLog(t *testing.T) {
	slos, err := obs.ParseSLOs("commit:10m:0.5,fsync:1ms:0.9")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	var buf bytes.Buffer
	dir := t.TempDir()
	s := newBankServer(t, Options{
		SLOs:         slos,
		Logger:       slog.New(slog.NewTextHandler(&buf, nil)),
		SnapshotPath: dir + "/td.snap",
		WALPath:      dir + "/td.wal",
	})
	s.group.mu.Lock()
	inner := s.group.store
	s.group.mu.Unlock()
	s.group.setSyncerForTest(slowSyncer{inner: inner, delay: 2 * time.Millisecond})

	c := s.InProcClient()
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Exec("transfer(1, a, b)"); err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}

	// Every fsync blew the 1ms threshold against a 10% budget: the fsync
	// objective is in breach, logged exactly once (edge-, not
	// level-triggered).
	out := buf.String()
	if got := strings.Count(out, "SLO breach"); got != 1 {
		t.Fatalf("breach logged %d times, want exactly 1:\n%s", got, out)
	}
	if !strings.Contains(out, "slo=fsync") {
		t.Errorf("breach log does not name the objective:\n%s", out)
	}

	// STATS reports both objectives' state; only fsync is burning.
	st := s.Stats()
	if len(st.SLOs) != 2 {
		t.Fatalf("STATS slos = %+v, want 2 objectives", st.SLOs)
	}
	byName := map[string]SLOSnapshot{}
	for _, slo := range st.SLOs {
		byName[slo.Name] = slo
	}
	if slo := byName["fsync"]; slo.Total < 1 || slo.Good != 0 || slo.BurnRate <= 1 {
		t.Errorf("fsync SLO state = %+v, want all-bad and burning", slo)
	}
	if slo := byName["commit"]; slo.Total < 3 || slo.Good != slo.Total || slo.BurnRate != 0 {
		t.Errorf("commit SLO state = %+v, want all-good", slo)
	}

	// And the counter/burn-rate series are on /metrics.
	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`td_slo_events_total{slo="fsync"}`,
		`td_slo_good_total{slo="commit"}`,
		`td_slo_burn_rate{slo="fsync"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n----\n%s", want, body)
		}
	}
}

// An SLO naming a signal the server does not emit is a configuration error,
// refused at startup.
func TestSLOUnknownSignal(t *testing.T) {
	slos, err := obs.ParseSLOs("latency:5ms:0.99")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	if _, err := New(Options{Program: bankSrc, SLOs: slos}); err == nil ||
		!strings.Contains(err.Error(), "latency") {
		t.Fatalf("New with unknown SLO signal: err = %v, want a named refusal", err)
	}
}

// --- PROFILE verb -----------------------------------------------------------

func TestProfileVerb(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	defer c.Close()

	// Dump before anything was profiled is a protocol error.
	if _, err := c.ProfileDump(); err == nil {
		t.Fatal("PROFILE dump with nothing profiled should fail")
	}

	if err := c.ProfileOn(); err != nil {
		t.Fatalf("ProfileOn: %v", err)
	}
	if _, err := c.Exec("transfer(10, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	prof, err := c.ProfileDump()
	if err != nil {
		t.Fatalf("ProfileDump: %v", err)
	}
	for _, pred := range []string{"transfer", "withdraw", "deposit", "balance"} {
		if prof[pred].Calls < 1 {
			t.Errorf("profile[%s] = %+v, want calls >= 1 (full dump: %v)", pred, prof[pred], prof)
		}
	}
	var totalUs int64
	for _, p := range prof {
		totalUs += p.TimeUs
	}
	if totalUs <= 0 {
		t.Errorf("no prover time attributed: %v", prof)
	}

	// The same attribution rides STATS and /metrics.
	if st := s.Stats(); st.ProverProfile["transfer"].Calls < 1 {
		t.Errorf("STATS prover_profile = %v, want transfer", st.ProverProfile)
	}
	rec := httptest.NewRecorder()
	obs.Handler(s.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, `td_prover_pred_us{pred="transfer"}`) {
		t.Errorf("/metrics missing the transfer attribution\n----\n%s", body)
	}

	// PROFILE off rebuilds the engine without attribution; the dump keeps
	// serving what was already absorbed.
	if err := c.ProfileOff(); err != nil {
		t.Fatalf("ProfileOff: %v", err)
	}
	if _, err := c.ProfileDump(); err != nil {
		t.Fatalf("ProfileDump after off: %v", err)
	}
}

// Attribution survives the profiled session closing: dropSession absorbs the
// engine's counters into the server-wide aggregate.
func TestProfileSurvivesSessionClose(t *testing.T) {
	s := newBankServer(t, Options{})
	c := s.InProcClient()
	if err := c.ProfileOn(); err != nil {
		t.Fatalf("ProfileOn: %v", err)
	}
	if _, err := c.Exec("transfer(10, a, b)"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SessionsOpen > 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.ProverProfile["transfer"].Calls < 1 {
		t.Errorf("attribution lost when the session closed: %v", st.ProverProfile)
	}
}

// --- naming conventions -----------------------------------------------------

// Every shipped metric family follows the house conventions: td_ prefix,
// non-empty help, counters ending in _total or _us, histograms in _us or
// _size, and gauges never ending in _total.
func TestMetricsNamingConventions(t *testing.T) {
	slos, err := obs.ParseSLOs("commit:5ms:0.999")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	s := newBankServer(t, Options{StoreShards: 2, SLOs: slos, StageSample: 1})
	for _, fam := range s.Metrics().Families() {
		if !strings.HasPrefix(fam.Name, "td_") {
			t.Errorf("family %q lacks the td_ prefix", fam.Name)
		}
		if strings.TrimSpace(fam.Help) == "" {
			t.Errorf("family %q has no help text", fam.Name)
		}
		switch fam.Type {
		case "counter":
			if !strings.HasSuffix(fam.Name, "_total") && !strings.HasSuffix(fam.Name, "_us") {
				t.Errorf("counter %q should end in _total or _us", fam.Name)
			}
		case "histogram":
			if !strings.HasSuffix(fam.Name, "_us") && !strings.HasSuffix(fam.Name, "_size") {
				t.Errorf("histogram %q should end in _us or _size", fam.Name)
			}
		case "gauge":
			if strings.HasSuffix(fam.Name, "_total") {
				t.Errorf("gauge %q must not end in _total", fam.Name)
			}
		default:
			t.Errorf("family %q has unknown type %q", fam.Name, fam.Type)
		}
	}
}
