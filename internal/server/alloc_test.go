package server

import (
	"testing"

	"repro/internal/db"
	"repro/internal/term"
)

// Allocation regression guards for the commit critical section. Everything
// here runs under the head lock on every commit, so per-commit garbage
// directly serializes the pipeline.

// pruneLocked must not copy the commit log on the steady-state path: with
// a laggard session pinning the window, appending a record and pruning
// advances the live-window offset in place. (The amortized compaction copy
// is excluded by keeping the dead prefix below its threshold.)
func TestPruneLockedAllocs(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One laggard keeps an 8-entry live window so pruning never empties
	// the log, and the clog has capacity to append without growing.
	laggard := &session{srv: s}
	ops := []db.Op{{Insert: true, Pred: "p", Row: []term.Term{term.NewInt(1)}}}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.clog = make([]commitRecord, 0, 4096)
	next := s.version.Load()
	n := testing.AllocsPerRun(500, func() {
		next++
		s.version.Store(next)
		s.clog = append(s.clog, commitRecord{version: next, ops: ops})
		if next > 8 {
			laggard.version = next - 8
			s.sessions[laggard] = laggard.version
		}
		s.pruneLocked()
		if len(s.clog) == cap(s.clog) {
			// Reset before append would reallocate; not counted as the
			// steady state under test.
			live := s.clog[s.clogLo:]
			s.clog = s.clog[:copy(s.clog[:cap(s.clog)], live)]
			s.clogLo = 0
		}
	})
	delete(s.sessions, laggard) // it has no conn for Close to close
	if n > 1 {
		t.Errorf("append+prune steady state: %v allocs/op, want <= 1", n)
	}
}
