package server

import (
	"sync/atomic"
	"testing"

	"repro/internal/db"
	"repro/internal/term"
)

// Allocation regression guards for the commit critical section. Everything
// here runs under a lane lock on every commit, so per-commit garbage
// directly serializes that lane's pipeline.

// pruneShardLocked must not copy the lane's commit log on the steady-state
// path: with a laggard session pinning the window, appending a record and
// pruning advances the live-window offset in place. (The amortized
// compaction copy is excluded by keeping the dead prefix below its
// threshold.)
func TestPruneShardLockedAllocs(t *testing.T) {
	s, err := New(Options{StoreShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One laggard keeps an 8-entry live window so pruning never empties
	// the log, and the clog has capacity to append without growing.
	laggard := &session{srv: s, applied: make([]atomic.Uint64, s.nshards)}
	s.mu.Lock()
	s.sessions[laggard] = struct{}{}
	s.mu.Unlock()
	ops := []db.Op{{Insert: true, Pred: "p", Row: []term.Term{term.NewInt(1)}}}

	sh := s.shards[0]
	sh.mu.Lock()
	sh.clog = make([]commitRecord, 0, 4096)
	next := sh.version.Load()
	n := testing.AllocsPerRun(500, func() {
		next++
		sh.version.Store(next)
		sh.clog = append(sh.clog, commitRecord{version: next, ops: ops})
		if next > 8 {
			laggard.applied[0].Store(next - 8)
		}
		s.pruneShardLocked(sh)
		if len(sh.clog) == cap(sh.clog) {
			// Reset before append would reallocate; not counted as the
			// steady state under test.
			live := sh.clog[sh.clogLo:]
			sh.clog = sh.clog[:copy(sh.clog[:cap(sh.clog)], live)]
			sh.clogLo = 0
		}
	})
	sh.mu.Unlock()
	s.mu.Lock()
	delete(s.sessions, laggard) // it has no conn for Close to close
	s.mu.Unlock()
	if n > 1 {
		t.Errorf("append+prune steady state: %v allocs/op, want <= 1", n)
	}
}
