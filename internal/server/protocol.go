// Package server exposes the Transaction Datalog engine as a concurrent
// multi-client transaction service: many sessions, one shared durable
// database, serializable transactions arbitrated by optimistic concurrency
// control. See docs/SERVER.md for the protocol specification and the
// isolation guarantees.
//
// Each session executes its goals against a private replica of the shared
// database (forked with the undo log, kept in sync from an in-memory commit
// log). At commit, the session's read and write sets are validated against
// every transaction that committed since the replica's version; winners
// append their write set to the write-ahead log before acknowledging,
// losers abort and retry. Concurrent sessions therefore observe exactly
// the behavior of the paper's iso(...) modality — each transaction runs as
// if alone, and the committed history is serializable.
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// Protocol verbs.
const (
	OpLoad   = "LOAD"   // install a program (rules + facts) for this session
	OpBegin  = "BEGIN"  // open a transaction
	OpRun    = "RUN"    // execute a goal inside the open transaction
	OpCommit = "COMMIT" // validate and commit the open transaction
	OpAbort  = "ABORT"  // roll back the open transaction
	OpExec   = "EXEC"   // one-shot: BEGIN + RUN + COMMIT with server-side retry
	OpQuery  = "QUERY"  // read-only: enumerate solutions, no effects kept
	OpStats  = "STATS"  // server counters
	OpPing   = "PING"   // liveness
	OpTrace  = "TRACE"  // toggle execution tracing / dump the last span tree
	OpVet    = "VET"    // statically analyze a program without loading it

	// Added with the history subsystem (PR 6).
	OpCheckpoint = "CHECKPOINT" // snapshot the store and truncate the WAL
	OpAsOf       = "ASOF"       // pin session reads to a historical LSN
	OpChanges    = "CHANGES"    // committed op delta since an LSN

	// Added with stage-level latency attribution (PR 8).
	OpProfile = "PROFILE" // toggle prover profiling / dump per-predicate attribution

	// Added with the tdplan static planner (PR 9).
	OpPlan = "PLAN" // plan a submitted program (or the loaded one) without running it

	// Added with tabled evaluation (PR 10).
	OpTable = "TABLE" // set the session's tabling mode / report memo-table status
)

// Error codes carried in Response.Code.
const (
	CodeBadRequest = "bad_request" // malformed request or verb misuse
	CodeParse      = "parse"       // program or goal failed to parse
	CodeNoProof    = "no_proof"    // no execution of the goal commits
	CodeConflict   = "conflict"    // commit validation failed (retryable)
	CodeBudget     = "budget"      // step/time budget exhausted
	CodeBusy       = "busy"        // admission control rejected the session
	CodeShutdown   = "shutdown"    // server is shutting down
	CodeInternal   = "internal"    // unexpected server-side failure
	CodeVet        = "vet"         // static analysis rejected the program
	// CodeOutOfWindow answers ASOF/CHANGES for an LSN outside the retained
	// history window (evicted past, or not committed yet).
	CodeOutOfWindow = "out_of_window"
)

// Request is one client frame.
type Request struct {
	Op      string `json:"op"`
	Program string `json:"program,omitempty"` // LOAD
	Goal    string `json:"goal,omitempty"`    // RUN / EXEC / QUERY
	// Max bounds QUERY solution enumeration (0 = all).
	Max int `json:"max,omitempty"`
	// Arg carries verb modifiers: TRACE takes "on", "off", or "dump"
	// (empty defaults to "dump"); ASOF takes a decimal LSN or "off";
	// CHANGES takes the decimal LSN to stream from; TABLE takes a tabling
	// mode ("auto", "all", "none", or a predicate list) or "status"
	// (empty defaults to "status").
	Arg string `json:"arg,omitempty"`
}

// Response is one server frame.
type Response struct {
	OK   bool   `json:"ok"`
	Code string `json:"code,omitempty"`
	Err  string `json:"error,omitempty"`
	// Bindings are the witness bindings of a successful RUN/EXEC goal,
	// rendered in concrete TD syntax.
	Bindings map[string]string `json:"bindings,omitempty"`
	// Solutions enumerates QUERY answers.
	Solutions []map[string]string `json:"solutions,omitempty"`
	// Version is the database version after a successful COMMIT/EXEC.
	Version uint64 `json:"version,omitempty"`
	// Retries counts server-side EXEC retries spent on conflicts.
	Retries int `json:"retries,omitempty"`
	// Stats answers STATS.
	Stats *StatsSnapshot `json:"stats,omitempty"`
	// Trace answers TRACE dump: the span tree of the session's most
	// recent successfully proved goal.
	Trace *obs.Span `json:"trace,omitempty"`
	// Diagnostics answers VET, and accompanies a LOAD rejected with
	// CodeVet: the static-analysis findings for the submitted program.
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
	// Fragment is the paper-fragment classification reported by VET.
	Fragment string `json:"fragment,omitempty"`
	// Changes answers CHANGES: one delta per commit since the requested
	// LSN, in commit order.
	Changes []CommitDelta `json:"changes,omitempty"`
	// LSN answers CHECKPOINT (the checkpoint's LSN) and ASOF (the LSN the
	// session is now pinned to; 0 after "ASOF off").
	LSN uint64 `json:"lsn,omitempty"`
	// Profile answers PROFILE dump: server-wide prover time attribution,
	// keyed by predicate.
	Profile map[string]PredProfile `json:"profile,omitempty"`
	// Plan answers PLAN: the tdplan report (adornment signatures, reorder
	// decisions, and tabling-safety certificates) for the submitted
	// program, or for the session's loaded program when none is submitted.
	Plan *analysis.PlanReport `json:"plan,omitempty"`
	// Memo answers TABLE: the session's tabling mode, the predicates its
	// engine tables, and the shared memo store's counters.
	Memo *MemoStatus `json:"memo,omitempty"`
}

// CommitDelta is one commit's effective write set on the wire.
type CommitDelta struct {
	LSN uint64   `json:"lsn"`
	Ops []WireOp `json:"ops"`
}

// WireOp is one elementary update on the wire: "ins" or "del" plus the
// ground atom in concrete TD syntax.
type WireOp struct {
	Op   string `json:"op"`
	Atom string `json:"atom"`
}

// Frame format: a 4-byte big-endian payload length followed by a JSON
// document. DefaultMaxFrame bounds accepted payloads.
const DefaultMaxFrame = 8 << 20

// writeFrame marshals v and writes one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame into v.
func readFrame(r io.Reader, v any, maxFrame int) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) > maxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
