package datalog_test

import (
	"fmt"
	"sort"

	"repro/internal/datalog"
	"repro/internal/parser"
	"repro/internal/term"
)

// Magic sets focus bottom-up evaluation on a query: only facts relevant to
// reach(b, Y) are derived.
func ExampleMagicEval() {
	prog := parser.MustParse(`
		edge(a, b). edge(b, c). edge(c, d). edge(x, y).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`)
	p, err := datalog.FromTD(prog)
	if err != nil {
		panic(err)
	}
	q := term.NewAtom("reach", term.NewSym("b"), term.NewVar("Y", 1000))
	answers, _, err := datalog.MagicEval(p, q)
	if err != nil {
		panic(err)
	}
	var ys []string
	for _, a := range answers {
		ys = append(ys, a.Args[1].String())
	}
	sort.Strings(ys)
	fmt.Println(ys)
	// Output:
	// [c d]
}

// Semi-naive evaluation computes the least fixpoint of a Datalog program.
func ExampleEval() {
	prog := parser.MustParse(`
		parent(ann, bob). parent(bob, cid).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
	`)
	p, err := datalog.FromTD(prog)
	if err != nil {
		panic(err)
	}
	m, err := datalog.Eval(p, datalog.SemiNaive)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Contains(term.NewAtom("anc", term.NewSym("ann"), term.NewSym("cid"))))
	fmt.Println(m.Contains(term.NewAtom("anc", term.NewSym("cid"), term.NewSym("ann"))))
	// Output:
	// true
	// false
}
