package datalog

// Magic sets: the query-directed rewriting the paper names alongside
// tabling as the classical optimization applicable to the ins-only
// fragment. Given a program and a query with some arguments bound, the
// transformation produces an adorned program whose bottom-up evaluation
// only derives facts relevant to the query — matching the focus a
// top-down evaluator gets for free, while keeping semi-naive's
// termination and sharing.
//
// The implementation is the standard textbook construction with
// left-to-right sideways information passing:
//
//  1. adorn reachable IDB predicates with b/f annotations, starting from
//     the query's binding pattern;
//  2. for each adorned rule p^a ← B₁ … Bₙ, emit one magic rule per IDB
//     body atom (its bound arguments become derivable from the magic
//     predicate of the head plus the preceding body atoms), and guard the
//     original rule with the head's magic predicate;
//  3. seed the magic predicate of the query with its bound constants.

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// adornment is a string over {'b','f'}, one per argument.
type adornment string

func adornmentOf(a term.Atom, bound map[int64]bool) adornment {
	var sb strings.Builder
	for _, t := range a.Args {
		if !t.IsVar() || bound[t.VarID()] {
			sb.WriteByte('b')
		} else {
			sb.WriteByte('f')
		}
	}
	return adornment(sb.String())
}

// adornedName mangles p with adornment a (p__bf). Predicates without
// bound arguments keep distinct names too (p__ff), which keeps the
// transformation uniform.
func adornedName(pred string, a adornment) string { return pred + "__" + string(a) }

// magicName names the magic predicate of an adorned predicate.
func magicName(pred string, a adornment) string { return "m_" + adornedName(pred, a) }

// boundArgs selects the arguments of a in bound positions.
func boundArgs(a term.Atom, ad adornment) []term.Term {
	var out []term.Term
	for i, c := range ad {
		if c == 'b' {
			out = append(out, a.Args[i])
		}
	}
	return out
}

// MagicResult is the transformed program plus bookkeeping to interpret
// its model.
type MagicResult struct {
	Program *Program
	// QueryPred is the adorned name answering the original query.
	QueryPred string
}

// MagicTransform rewrites p for the given query atom. Arguments of the
// query that are constants are treated as bound. Returns an error when the
// query predicate is not an IDB predicate of p.
func MagicTransform(p *Program, query term.Atom) (*MagicResult, error) {
	idb := map[string]bool{}
	rulesFor := map[string][]Rule{}
	for _, r := range p.Rules {
		k := predArity(r.Head)
		idb[k] = true
		rulesFor[k] = append(rulesFor[k], r)
	}
	qk := predArity(query)
	if !idb[qk] {
		return nil, fmt.Errorf("datalog: magic transform: %s is not an IDB predicate", qk)
	}

	out := &Program{Facts: append([]term.Atom(nil), p.Facts...)}
	qAd := adornmentOf(query, nil)
	type job struct {
		key string // pred/arity
		ad  adornment
	}
	seen := map[string]bool{}
	var queue []job
	enqueue := func(k string, ad adornment) {
		id := k + "^" + string(ad)
		if !seen[id] {
			seen[id] = true
			queue = append(queue, job{key: k, ad: ad})
		}
	}
	enqueue(qk, qAd)

	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		for _, r := range rulesFor[j.key] {
			adornRule(r, j.ad, idb, out, enqueue)
		}
	}

	// Seed: the magic fact for the query's bound constants.
	seed := term.Atom{Pred: magicName(query.Pred, qAd), Args: boundArgs(query, qAd)}
	if len(seed.Args) == 0 {
		seed.Args = nil
	}
	out.Facts = append(out.Facts, seed)
	return &MagicResult{Program: out, QueryPred: adornedName(query.Pred, qAd)}, nil
}

// adornRule emits the magic and guarded rules for one source rule under
// the head adornment ad.
func adornRule(r Rule, ad adornment, idb map[string]bool, out *Program, enqueue func(string, adornment)) {
	head := r.Head
	bound := map[int64]bool{}
	for i, c := range ad {
		if c == 'b' {
			for _, v := range head.Args[i : i+1] {
				if v.IsVar() {
					bound[v.VarID()] = true
				}
			}
		}
	}
	magicHead := term.Atom{Pred: magicName(head.Pred, ad), Args: boundArgs(head, ad)}

	// Walk the body in evaluation order, rewriting IDB atoms and emitting
	// magic rules; maintain the bound-variable set.
	var newOrder []int
	var newBody []term.Atom
	var newBuiltins []Builtin
	prefix := []term.Atom{magicHead} // accumulated guards for magic rules

	bindAtomVars := func(a term.Atom) {
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.VarID()] = true
			}
		}
	}

	for _, o := range r.Order {
		if o < 0 {
			b := r.Builtins[-1-o]
			newOrder = append(newOrder, -1-len(newBuiltins))
			newBuiltins = append(newBuiltins, b)
			// eq and arithmetic outputs bind.
			switch b.Name {
			case "eq":
				for _, t := range b.Args {
					if t.IsVar() {
						bound[t.VarID()] = true
					}
				}
			case "add", "sub", "mul", "div", "mod":
				if len(b.Args) == 3 && b.Args[2].IsVar() {
					bound[b.Args[2].VarID()] = true
				}
			}
			continue
		}
		atom := r.Body[o]
		k := predArity(atom)
		if idb[k] {
			aAd := adornmentOf(atom, bound)
			enqueue(k, aAd)
			// Magic rule: m_atom^aAd(boundArgs) ← magicHead, prefix...
			mr := Rule{Head: term.Atom{Pred: magicName(atom.Pred, aAd), Args: boundArgs(atom, aAd)}}
			for _, g := range prefix {
				mr.Order = append(mr.Order, len(mr.Body))
				mr.Body = append(mr.Body, g)
			}
			// Builtins that appeared so far are needed for safety of the
			// magic rule only if they bind; keeping them is always sound
			// but they may reference unbound vars. We include only body
			// atoms (prefix), which suffices for range restriction of the
			// bound arguments under left-to-right sips.
			out.Rules = append(out.Rules, mr)
			// Rewrite the atom to its adorned version.
			atom = term.Atom{Pred: adornedName(atom.Pred, aAd), Args: atom.Args}
		}
		newOrder = append(newOrder, len(newBody))
		newBody = append(newBody, atom)
		prefix = append(prefix, atom)
		bindAtomVars(atom)
	}

	// Guarded, adorned version of the original rule.
	guarded := Rule{Head: term.Atom{Pred: adornedName(head.Pred, ad), Args: head.Args}}
	guarded.Order = append(guarded.Order, 0)
	guarded.Body = append(guarded.Body, magicHead)
	for _, o := range newOrder {
		if o < 0 {
			guarded.Order = append(guarded.Order, o)
		} else {
			guarded.Order = append(guarded.Order, len(guarded.Body))
			guarded.Body = append(guarded.Body, newBody[o])
		}
	}
	guarded.Builtins = newBuiltins
	out.Rules = append(out.Rules, guarded)
}

// MagicEval transforms p for query, evaluates semi-naively, and returns
// the query's answers (as atoms with the ORIGINAL predicate name).
func MagicEval(p *Program, query term.Atom) ([]term.Atom, *Model, error) {
	mr, err := MagicTransform(p, query)
	if err != nil {
		return nil, nil, err
	}
	model, err := Eval(mr.Program, SemiNaive)
	if err != nil {
		return nil, nil, err
	}
	pattern := term.Atom{Pred: mr.QueryPred, Args: query.Args}
	var answers []term.Atom
	for _, a := range model.Query(pattern) {
		answers = append(answers, term.Atom{Pred: query.Pred, Args: a.Args})
	}
	return answers, model, nil
}
