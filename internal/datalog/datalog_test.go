package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/term"
)

func mustFromTD(t *testing.T, src string) *Program {
	t.Helper()
	tdProg, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromTD(tdProg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const tcSrc = `
	edge(a, b). edge(b, c). edge(c, d).
	path(X, Y) :- edge(X, Y).
	path(X, Y) :- edge(X, Z), path(Z, Y).
`

func TestTransitiveClosure(t *testing.T) {
	p := mustFromTD(t, tcSrc)
	for _, strat := range []Strategy{Naive, SemiNaive} {
		m, err := Eval(p, strat)
		if err != nil {
			t.Fatal(err)
		}
		// 3 base edges + 6 path facts.
		if m.Size() != 9 {
			t.Fatalf("strategy %d: model size %d, want 9\n%v", strat, m.Size(), m.Atoms())
		}
		if !m.Contains(term.NewAtom("path", term.NewSym("a"), term.NewSym("d"))) {
			t.Fatalf("strategy %d: path(a,d) missing", strat)
		}
		if m.Contains(term.NewAtom("path", term.NewSym("d"), term.NewSym("a"))) {
			t.Fatalf("strategy %d: path(d,a) wrongly derived", strat)
		}
	}
}

func TestCyclicGraphTerminates(t *testing.T) {
	p := mustFromTD(t, `
		edge(a, b). edge(b, a).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`)
	m, err := Eval(p, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	// paths: ab, ba, aa, bb.
	if got := len(m.Query(term.NewAtom("path", term.NewVar("X", 0), term.NewVar("Y", 1)))); got != 4 {
		t.Fatalf("path count = %d, want 4", got)
	}
}

func TestNaiveAndSemiNaiveAgreeRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		src := "path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n"
		for i := 0; i < n+3; i++ {
			src += fmt.Sprintf("edge(n%d, n%d).\n", r.Intn(n), r.Intn(n))
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		p, err := FromTD(prog)
		if err != nil {
			return false
		}
		m1, err1 := Eval(p, Naive)
		m2, err2 := Eval(p, SemiNaive)
		if err1 != nil || err2 != nil || m1.Size() != m2.Size() {
			return false
		}
		for _, a := range m1.Atoms() {
			if !m2.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSemiNaiveFewerRuleFires(t *testing.T) {
	// Long chain: naive evaluation re-derives every known fact on every
	// round (Θ(n) rounds × Θ(n²) derivations), while semi-naive fires each
	// derivation approximately once.
	src := "path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n"
	for i := 0; i < 40; i++ {
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
	}
	p := mustFromTD(t, src)
	mn, _ := Eval(p, Naive)
	ms, _ := Eval(p, SemiNaive)
	if ms.Stats.RuleFires*4 >= mn.Stats.RuleFires {
		t.Fatalf("semi-naive fires %d, naive %d: expected ≥4x reduction", ms.Stats.RuleFires, mn.Stats.RuleFires)
	}
	if ms.Size() != mn.Size() {
		t.Fatalf("models differ: %d vs %d", ms.Size(), mn.Size())
	}
}

func TestBuiltinsInBodies(t *testing.T) {
	p := mustFromTD(t, `
		n(1). n(2). n(3). n(4).
		big(X) :- n(X), X > 2.
		sumpair(X, Y, Z) :- n(X), n(Y), X < Y, add(X, Y, Z).
	`)
	m, err := Eval(p, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Contains(term.NewAtom("big", term.NewInt(3))) || m.Contains(term.NewAtom("big", term.NewInt(2))) {
		t.Fatal("comparison builtin wrong")
	}
	if !m.Contains(term.NewAtom("sumpair", term.NewInt(1), term.NewInt(2), term.NewInt(3))) {
		t.Fatal("arithmetic builtin wrong")
	}
}

func TestEmptyBodyRule(t *testing.T) {
	// A rule with an all-builtin body must fire in both strategies.
	p := mustFromTD(t, `seeded(X) :- eq(X, 7).`)
	for _, strat := range []Strategy{Naive, SemiNaive} {
		m, err := Eval(p, strat)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Contains(term.NewAtom("seeded", term.NewInt(7))) {
			t.Fatalf("strategy %d: seeded(7) missing", strat)
		}
	}
}

func TestFromTDRejectsUpdates(t *testing.T) {
	prog, err := parser.Parse(`r(X) :- p(X), ins.q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTD(prog); err == nil {
		t.Fatal("FromTD accepted an update")
	}
	prog2, err := parser.Parse(`r :- a | b.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTD(prog2); err == nil {
		t.Fatal("FromTD accepted concurrency")
	}
}

func TestUnsafeHeadDetected(t *testing.T) {
	prog, err := parser.Parse(`r(X, Y) :- p(X).
		p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromTD(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(p, SemiNaive); err == nil {
		t.Fatal("unsafe head not detected")
	}
}

func TestModelQuery(t *testing.T) {
	p := mustFromTD(t, tcSrc)
	m, _ := Eval(p, SemiNaive)
	x := term.NewVar("X", 100)
	got := m.Query(term.NewAtom("path", term.NewSym("a"), x))
	if len(got) != 3 { // a->b, a->c, a->d
		t.Fatalf("Query(path(a,X)) = %d rows, want 3", len(got))
	}
}

func TestStatsRounds(t *testing.T) {
	p := mustFromTD(t, tcSrc)
	m, _ := Eval(p, SemiNaive)
	// Chain of 3 edges: path lengths up to 3, plus a final empty round.
	if m.Stats.Rounds < 3 {
		t.Fatalf("rounds = %d, suspiciously few", m.Stats.Rounds)
	}
	if m.Stats.Derived != 6 {
		t.Fatalf("derived = %d, want 6", m.Stats.Derived)
	}
}
