package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/term"
)

func chainProgram(t *testing.T, n int) *Program {
	t.Helper()
	src := "path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("edge(n%d, n%d).\n", i, i+1)
	}
	return mustFromTD(t, src)
}

func TestMagicBoundFirstArg(t *testing.T) {
	p := chainProgram(t, 10)
	// Query path(n7, Y): only the suffix from n7 is relevant.
	q := term.NewAtom("path", term.NewSym("n7"), term.NewVar("Y", 900))
	answers, model, err := MagicEval(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 { // n8, n9, n10
		t.Fatalf("answers = %v", answers)
	}
	// Compare with full evaluation.
	full, err := Eval(p, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if !full.Contains(a) {
			t.Fatalf("magic answer %v not in full model", a)
		}
	}
	// The magic model must be much smaller than the full one: full has
	// all 55 path facts; magic only those from n7.
	fullPaths := len(full.Query(term.NewAtom("path", term.NewVar("X", 901), term.NewVar("Y", 902))))
	magicPaths := len(model.Query(term.NewAtom("path__bf", term.NewVar("X", 901), term.NewVar("Y", 902))))
	if magicPaths >= fullPaths {
		t.Fatalf("magic derived %d path facts, full %d — no focusing", magicPaths, fullPaths)
	}
	// The focused set: paths from every start the magic set reaches
	// (n7, n8, n9 — the recursive rule seeds magic for each suffix start):
	// 3 + 2 + 1 = 6, against the full model's 55.
	if magicPaths != 6 {
		t.Fatalf("magic path facts = %d, want 6", magicPaths)
	}
}

func TestMagicFullyBoundQuery(t *testing.T) {
	p := chainProgram(t, 8)
	yes := term.NewAtom("path", term.NewSym("n2"), term.NewSym("n6"))
	answers, _, err := MagicEval(p, yes)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("bb query answers = %v", answers)
	}
	no := term.NewAtom("path", term.NewSym("n6"), term.NewSym("n2"))
	answers, _, err = MagicEval(p, no)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Fatalf("false bb query answered %v", answers)
	}
}

func TestMagicFreeQueryMatchesFull(t *testing.T) {
	p := chainProgram(t, 6)
	q := term.NewAtom("path", term.NewVar("X", 900), term.NewVar("Y", 901))
	answers, _, err := MagicEval(p, q)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := Eval(p, SemiNaive)
	fullAnswers := full.Query(term.NewAtom("path", term.NewVar("X", 902), term.NewVar("Y", 903)))
	if len(answers) != len(fullAnswers) {
		t.Fatalf("ff magic answers %d, full %d", len(answers), len(fullAnswers))
	}
}

func TestMagicAgreesWithFullOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		src := "reach(X, Y) :- edge(X, Y).\nreach(X, Y) :- edge(X, Z), reach(Z, Y).\n"
		for i := 0; i < n+4; i++ {
			src += fmt.Sprintf("edge(n%d, n%d).\n", r.Intn(n), r.Intn(n))
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		p, err := FromTD(prog)
		if err != nil {
			return false
		}
		full, err := Eval(p, SemiNaive)
		if err != nil {
			return false
		}
		start := term.NewSym(fmt.Sprintf("n%d", r.Intn(n)))
		q := term.NewAtom("reach", start, term.NewVar("Y", 990))
		answers, _, err := MagicEval(p, q)
		if err != nil {
			return false
		}
		fullAnswers := full.Query(term.NewAtom("reach", start, term.NewVar("Y", 991)))
		if len(answers) != len(fullAnswers) {
			return false
		}
		for _, a := range answers {
			if !full.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMagicFocusReducesWork(t *testing.T) {
	// Two disjoint chains; query one of them. Magic must not derive facts
	// about the other.
	src := "path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n"
	for i := 0; i < 30; i++ {
		src += fmt.Sprintf("edge(a%d, a%d).\n", i, i+1)
		src += fmt.Sprintf("edge(b%d, b%d).\n", i, i+1)
	}
	p := mustFromTD(t, src)
	q := term.NewAtom("path", term.NewSym("a25"), term.NewVar("Y", 900))
	answers, model, err := MagicEval(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 5 {
		t.Fatalf("answers = %d, want 5", len(answers))
	}
	// No b-chain path fact may appear.
	for _, a := range model.Query(term.NewAtom("path__bf", term.NewVar("X", 901), term.NewVar("Y", 902))) {
		if a.Args[0].SymName()[0] == 'b' {
			t.Fatalf("magic derived irrelevant fact %v", a)
		}
	}
	full, _ := Eval(p, SemiNaive)
	if model.Stats.RuleFires >= full.Stats.RuleFires {
		t.Fatalf("magic fires %d >= full fires %d", model.Stats.RuleFires, full.Stats.RuleFires)
	}
}

func TestMagicMutualRecursion(t *testing.T) {
	src := `
		e(a, b). e(b, c). e(c, d).
		even(X, X2) :- e(X, Y), odd(Y, X2).
		odd(X, X) :- stop(X).
		odd(X, X2) :- e(X, Y), even(Y, X2).
		stop(d).
	`
	p := mustFromTD(t, src)
	q := term.NewAtom("even", term.NewSym("a"), term.NewVar("Z", 900))
	answers, _, err := MagicEval(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// a -e-> b (odd from b): b -e-> c, even from c: c -e-> d, odd(d,d) via
	// stop. So even(a, d) holds.
	if len(answers) != 1 || !answers[0].Args[1].Equal(term.NewSym("d")) {
		t.Fatalf("answers = %v", answers)
	}
}

func TestMagicWithBuiltins(t *testing.T) {
	src := `
		n(1). n(2). n(3). n(4). n(5).
		upto(X, Y) :- n(Y), Y =< X.
	`
	p := mustFromTD(t, src)
	q := term.NewAtom("upto", term.NewInt(3), term.NewVar("Y", 900))
	answers, _, err := MagicEval(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("answers = %v, want Y in {1,2,3}", answers)
	}
}

func TestMagicErrorsOnEDBQuery(t *testing.T) {
	p := chainProgram(t, 3)
	if _, _, err := MagicEval(p, term.NewAtom("edge", term.NewSym("n0"), term.NewVar("Y", 1))); err == nil {
		t.Fatal("EDB query accepted")
	}
}
