// Package datalog implements a classical Datalog engine: bottom-up
// evaluation of function-free Horn rules to a least fixpoint, with both
// naive and semi-naive strategies.
//
// It serves two roles in the reproduction:
//
//   - the baseline comparator — "plain Datalog abounds" — against which the
//     ins-only fragment of Transaction Datalog is compared (experiment E11:
//     the paper notes that with tuple testing and insertion but no deletion,
//     "well-known optimization techniques (such as magic sets or tabling)
//     can be applied", i.e. the fragment computes Datalog-style fixpoints);
//   - a ground-truth oracle for query answering in tests.
//
// Rules here are pure: bodies are conjunctions of positive atoms and
// builtins, with no updates and no composition operators. Use FromTD to
// extract the queries-only part of a TD program.
package datalog

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/term"
)

// Rule is a pure Datalog rule: Head ⟵ Body₁ ∧ … ∧ Bodyₙ.
// Builtins may appear in the body and are evaluated left to right.
type Rule struct {
	Head     term.Atom
	Body     []term.Atom // positive atoms (base or derived)
	Builtins []Builtin   // evaluated after all Body atoms are matched? No: see Positions
	// Order interleaves body atoms and builtins: each entry indexes either
	// Body (>=0) or Builtins (encoded as -1-i). Evaluation follows Order.
	Order []int
}

// Builtin mirrors ast.Builtin for pure evaluation.
type Builtin struct {
	Name string
	Args []term.Term
}

// Program is a set of rules plus base facts.
type Program struct {
	Rules []Rule
	Facts []term.Atom
}

// FromTD converts a TD program whose rule bodies are pure sequential
// conjunctions of queries, calls, and builtins into a Datalog program.
// It returns an error if any rule uses updates, concurrency, isolation, or
// emptiness tests — those have no classical reading.
func FromTD(p *ast.Program) (*Program, error) {
	out := &Program{Facts: append([]term.Atom(nil), p.Facts...)}
	for i, r := range p.Rules {
		dr := Rule{Head: r.Head}
		var flatten func(g ast.Goal) error
		flatten = func(g ast.Goal) error {
			switch g := g.(type) {
			case ast.True:
				return nil
			case *ast.Seq:
				for _, sub := range g.Goals {
					if err := flatten(sub); err != nil {
						return err
					}
				}
				return nil
			case *ast.Lit:
				if g.Op == ast.OpQuery || g.Op == ast.OpCall {
					dr.Order = append(dr.Order, len(dr.Body))
					dr.Body = append(dr.Body, g.Atom)
					return nil
				}
				return fmt.Errorf("rule %d: update %s is not Datalog", i, g)
			case *ast.Builtin:
				dr.Order = append(dr.Order, -1-len(dr.Builtins))
				dr.Builtins = append(dr.Builtins, Builtin{Name: g.Name, Args: g.Args})
				return nil
			default:
				return fmt.Errorf("rule %d: %T is not Datalog", i, g)
			}
		}
		if err := flatten(r.Body); err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, dr)
	}
	return out, nil
}

// Strategy selects an evaluation algorithm.
type Strategy uint8

// Evaluation strategies.
const (
	SemiNaive Strategy = iota // differential fixpoint (default)
	Naive                     // re-derive everything each round
)

// Stats reports evaluation effort.
type Stats struct {
	Rounds     int // fixpoint iterations
	Derived    int // tuples in the final model beyond the base facts
	RuleFires  int // rule body matches that produced a (possibly known) head
	JoinProbes int // unification attempts against stored tuples
}

// Model is a computed least fixpoint.
type Model struct {
	atoms map[string]term.Atom // canonical key -> atom
	Stats Stats
}

func atomKey(a term.Atom) string {
	return fmt.Sprintf("%s/%d|%s", a.Pred, len(a.Args), a.Key())
}

// Contains reports whether the ground atom a is in the model.
func (m *Model) Contains(a term.Atom) bool {
	_, ok := m.atoms[atomKey(a)]
	return ok
}

// Size returns the number of atoms in the model.
func (m *Model) Size() int { return len(m.atoms) }

// Atoms returns the model's atoms (unsorted).
func (m *Model) Atoms() []term.Atom {
	out := make([]term.Atom, 0, len(m.atoms))
	for _, a := range m.atoms {
		out = append(out, a)
	}
	return out
}

// Query returns all ground instances of pattern in the model.
func (m *Model) Query(pattern term.Atom) []term.Atom {
	var out []term.Atom
	env := term.NewEnv()
	for _, a := range m.atoms {
		if a.Pred != pattern.Pred || len(a.Args) != len(pattern.Args) {
			continue
		}
		mark := env.Mark()
		if env.UnifyAtoms(pattern, a) {
			out = append(out, a)
		}
		env.Undo(mark)
	}
	return out
}

// index stores atoms grouped by pred/arity for joins, with a secondary
// hash index on the first argument for selective probes (the same
// optimization the TD database uses; ablation A3).
type index struct {
	byPred  map[string][]term.Atom
	byFirst map[string][]term.Atom
	seen    map[string]bool
}

func newIndex() *index {
	return &index{
		byPred:  make(map[string][]term.Atom),
		byFirst: make(map[string][]term.Atom),
		seen:    make(map[string]bool),
	}
}

func predArity(a term.Atom) string { return fmt.Sprintf("%s/%d", a.Pred, len(a.Args)) }

func firstKey(a term.Atom) string {
	return predArity(a) + "|" + term.KeyOf(a.Args[:1])
}

// add inserts a ground atom; reports whether it was new.
func (ix *index) add(a term.Atom) bool {
	k := atomKey(a)
	if ix.seen[k] {
		return false
	}
	ix.seen[k] = true
	pa := predArity(a)
	ix.byPred[pa] = append(ix.byPred[pa], a)
	if len(a.Args) > 0 {
		fk := firstKey(a)
		ix.byFirst[fk] = append(ix.byFirst[fk], a)
	}
	return true
}

// match returns candidate atoms for pattern under env: when the pattern's
// first argument is bound, only the matching first-argument bucket.
func (ix *index) match(pattern term.Atom, env *term.Env) []term.Atom {
	if len(pattern.Args) > 0 {
		if w := env.Walk(pattern.Args[0]); !w.IsVar() {
			return ix.byFirst[predArity(pattern)+"|"+term.KeyOf([]term.Term{w})]
		}
	}
	return ix.byPred[predArity(pattern)]
}

// Eval computes the least fixpoint of p with the given strategy.
func Eval(p *Program, strategy Strategy) (*Model, error) {
	switch strategy {
	case Naive:
		return evalNaive(p)
	case SemiNaive:
		return evalSemiNaive(p)
	default:
		return nil, fmt.Errorf("datalog: unknown strategy %d", strategy)
	}
}

// matchBody enumerates all substitutions satisfying the rule body against
// total, requiring (for semi-naive) that at least one body atom beyond
// requireDeltaAt matches in delta. When delta is nil the requirement is off.
// For each complete match, emitHead is called with the env holding bindings.
func matchBody(r *Rule, total, delta *index, env *term.Env, stats *Stats, emit func(*term.Env)) error {
	var rec func(pos int, usedDelta bool) error
	rec = func(pos int, usedDelta bool) error {
		if pos == len(r.Order) {
			if delta == nil || usedDelta {
				emit(env)
			}
			return nil
		}
		o := r.Order[pos]
		if o < 0 {
			b := r.Builtins[-1-o]
			mark := env.Mark()
			ok, err := ast.EvalBuiltin(&ast.Builtin{Name: b.Name, Args: b.Args}, env)
			if err != nil {
				return err
			}
			if ok {
				if err := rec(pos+1, usedDelta); err != nil {
					return err
				}
			}
			env.Undo(mark)
			return nil
		}
		atom := r.Body[o]
		// Try total matches; when semi-naive, also track delta membership.
		for _, cand := range total.match(atom, env) {
			stats.JoinProbes++
			mark := env.Mark()
			if env.UnifyAtoms(atom, cand) {
				inDelta := delta != nil && delta.seen[atomKey(cand)]
				if err := rec(pos+1, usedDelta || inDelta); err != nil {
					env.Undo(mark)
					return err
				}
			}
			env.Undo(mark)
		}
		return nil
	}
	return rec(0, false)
}

func groundHead(head term.Atom, env *term.Env) (term.Atom, error) {
	g := env.ResolveAtom(head)
	if !g.IsGround() {
		return g, fmt.Errorf("datalog: unsafe rule: head %s not ground after body match", g)
	}
	return g, nil
}

func evalNaive(p *Program) (*Model, error) {
	total := newIndex()
	for _, f := range p.Facts {
		total.add(f)
	}
	stats := Stats{}
	env := term.NewEnv()
	for {
		stats.Rounds++
		changed := false
		var evalErr error
		for i := range p.Rules {
			r := &p.Rules[i]
			err := matchBody(r, total, nil, env, &stats, func(env *term.Env) {
				stats.RuleFires++
				g, err := groundHead(r.Head, env)
				if err != nil {
					evalErr = err
					return
				}
				if total.add(g) {
					changed = true
					stats.Derived++
				}
			})
			if err != nil {
				return nil, err
			}
			if evalErr != nil {
				return nil, evalErr
			}
		}
		if !changed {
			break
		}
	}
	return finish(total, stats), nil
}

func evalSemiNaive(p *Program) (*Model, error) {
	total := newIndex()
	for _, f := range p.Facts {
		total.add(f)
	}
	stats := Stats{}
	env := term.NewEnv()
	// delta == nil on the first round: a full naive pass seeds the
	// differential iteration (this also fires rules with empty bodies,
	// which can never match a delta atom).
	var delta *index
	for {
		stats.Rounds++
		next := newIndex()
		var evalErr error
		for i := range p.Rules {
			r := &p.Rules[i]
			err := matchBody(r, total, delta, env, &stats, func(env *term.Env) {
				stats.RuleFires++
				g, err := groundHead(r.Head, env)
				if err != nil {
					evalErr = err
					return
				}
				if !total.seen[atomKey(g)] {
					next.add(g)
				}
			})
			if err != nil {
				return nil, err
			}
			if evalErr != nil {
				return nil, evalErr
			}
		}
		if len(next.seen) == 0 {
			break
		}
		for _, atoms := range next.byPred {
			for _, a := range atoms {
				if total.add(a) {
					stats.Derived++
				}
			}
		}
		delta = next
	}
	return finish(total, stats), nil
}

func finish(total *index, stats Stats) *Model {
	m := &Model{atoms: make(map[string]term.Atom, len(total.seen)), Stats: stats}
	for _, atoms := range total.byPred {
		for _, a := range atoms {
			m.atoms[atomKey(a)] = a
		}
	}
	return m
}
