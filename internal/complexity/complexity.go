// Package complexity is the experiment harness for the paper's Section 4–5
// results: it sweeps a workload over a size parameter, records work
// measures (engine steps, wall time), fits growth curves, and renders the
// tables and series reported in EXPERIMENTS.md.
//
// Because the theorems are about asymptotic data complexity, the harness
// judges *shape*, not absolute numbers: a fitted log–log slope ≈ k
// indicates Θ(n^k); a fitted log-linear slope ≈ c indicates Θ(2^(cn)).
package complexity

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one measurement of a sweep.
type Point struct {
	N     int           // workload size parameter
	Work  float64       // primary work measure (e.g. engine steps)
	Time  time.Duration // wall-clock time
	Extra map[string]float64
}

// Series is a named sweep result.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a measurement.
func (s *Series) Add(p Point) { s.Points = append(s.Points, p) }

// Sweep runs measure for each n in sizes and collects the series.
// measure returns the work figure (steps or another count) and may return
// extra named metrics.
func Sweep(name string, sizes []int, measure func(n int) (work float64, extra map[string]float64)) *Series {
	s := &Series{Name: name}
	for _, n := range sizes {
		start := time.Now()
		work, extra := measure(n)
		s.Add(Point{N: n, Work: work, Time: time.Since(start), Extra: extra})
	}
	return s
}

// Fit reports the quality of two growth models for the series.
type Fit struct {
	// PolyDegree is the slope of log(work) against log(n): for polynomial
	// growth Θ(n^k) it converges to k.
	PolyDegree float64
	// PolyR2 is the coefficient of determination of the polynomial fit.
	PolyR2 float64
	// ExpRate is the slope of log2(work) against n: for exponential growth
	// Θ(2^(cn)) it converges to c.
	ExpRate float64
	// ExpR2 is the coefficient of determination of the exponential fit.
	ExpR2 float64
}

// Classify names the better-fitting model: "polynomial(k≈X)" or
// "exponential(2^(X·n))".
func (f Fit) Classify() string {
	if f.ExpR2 > f.PolyR2 && f.ExpRate > 0.15 {
		return fmt.Sprintf("exponential(≈2^(%.2f·n))", f.ExpRate)
	}
	return fmt.Sprintf("polynomial(≈n^%.2f)", f.PolyDegree)
}

// LooksPolynomial reports whether the polynomial model fits at least as
// well as the exponential one, or the exponential rate is negligible.
func (f Fit) LooksPolynomial() bool {
	return f.PolyR2 >= f.ExpR2 || f.ExpRate <= 0.15
}

// LooksExponential is the complement on clearly-growing data.
func (f Fit) LooksExponential() bool {
	return f.ExpR2 > f.PolyR2 && f.ExpRate > 0.15
}

// FitGrowth fits both growth models to the series' Work column.
// Points with non-positive N or Work are skipped.
func FitGrowth(s *Series) Fit {
	var xs, logxs, logys []float64
	for _, p := range s.Points {
		if p.N <= 0 || p.Work <= 0 {
			continue
		}
		xs = append(xs, float64(p.N))
		logxs = append(logxs, math.Log2(float64(p.N)))
		logys = append(logys, math.Log2(p.Work))
	}
	var f Fit
	if len(xs) < 2 {
		return f
	}
	f.PolyDegree, _, f.PolyR2 = linreg(logxs, logys)
	f.ExpRate, _, f.ExpR2 = linreg(xs, logys)
	return f
}

// linreg computes least-squares slope, intercept, and R² of y against x.
func linreg(x, y []float64) (slope, intercept, r2 float64) {
	n := float64(len(x))
	if n == 0 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return slope, intercept, r2
}

// Table renders rows of labelled values as an aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch v := v.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 { // no trailing padding on the last column
				for pad := len(cell); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**")
		b.WriteString(t.Title)
		b.WriteString("**\n\n")
	}
	b.WriteString("| ")
	b.WriteString(strings.Join(t.Columns, " | "))
	b.WriteString(" |\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString("| ")
		b.WriteString(strings.Join(row, " | "))
		b.WriteString(" |\n")
	}
	return b.String()
}

// SeriesTable renders a series as a table of N, work, and time, with any
// extra metrics as additional columns (sorted by name).
func SeriesTable(s *Series) *Table {
	extraCols := map[string]bool{}
	for _, p := range s.Points {
		for k := range p.Extra {
			extraCols[k] = true
		}
	}
	extras := make([]string, 0, len(extraCols))
	for k := range extraCols {
		extras = append(extras, k)
	}
	sort.Strings(extras)
	cols := append([]string{"n", "work", "time"}, extras...)
	t := NewTable(s.Name, cols...)
	for _, p := range s.Points {
		vals := []any{p.N, p.Work, p.Time}
		for _, k := range extras {
			vals = append(vals, p.Extra[k])
		}
		t.AddRow(vals...)
	}
	return t
}

// Ratio returns work(n_last)/work(n_first) — a quick blow-up indicator.
func Ratio(s *Series) float64 {
	var first, last float64
	for _, p := range s.Points {
		if p.Work > 0 {
			if first == 0 {
				first = p.Work
			}
			last = p.Work
		}
	}
	if first == 0 {
		return 0
	}
	return last / first
}
