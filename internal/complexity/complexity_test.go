package complexity

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkSeries(name string, f func(n int) float64, sizes ...int) *Series {
	s := &Series{Name: name}
	for _, n := range sizes {
		s.Add(Point{N: n, Work: f(n)})
	}
	return s
}

func TestFitRecognizesQuadratic(t *testing.T) {
	s := mkSeries("quad", func(n int) float64 { return 3 * float64(n) * float64(n) }, 2, 4, 8, 16, 32, 64)
	f := FitGrowth(s)
	if math.Abs(f.PolyDegree-2) > 0.05 {
		t.Fatalf("poly degree = %.3f, want ≈2", f.PolyDegree)
	}
	if !f.LooksPolynomial() || f.LooksExponential() {
		t.Fatalf("quadratic misclassified: %+v", f)
	}
	if !strings.Contains(f.Classify(), "polynomial") {
		t.Fatalf("Classify = %s", f.Classify())
	}
}

func TestFitRecognizesLinear(t *testing.T) {
	s := mkSeries("lin", func(n int) float64 { return 7 * float64(n) }, 1, 2, 4, 8, 16, 32)
	f := FitGrowth(s)
	if math.Abs(f.PolyDegree-1) > 0.05 {
		t.Fatalf("poly degree = %.3f, want ≈1", f.PolyDegree)
	}
}

func TestFitRecognizesExponential(t *testing.T) {
	s := mkSeries("expo", func(n int) float64 { return math.Pow(2, float64(n)) }, 2, 4, 6, 8, 10, 12)
	f := FitGrowth(s)
	if math.Abs(f.ExpRate-1) > 0.05 {
		t.Fatalf("exp rate = %.3f, want ≈1", f.ExpRate)
	}
	if !f.LooksExponential() || f.LooksPolynomial() {
		t.Fatalf("exponential misclassified: %+v", f)
	}
	if !strings.Contains(f.Classify(), "exponential") {
		t.Fatalf("Classify = %s", f.Classify())
	}
}

func TestFitDegenerateCases(t *testing.T) {
	empty := &Series{Name: "empty"}
	f := FitGrowth(empty)
	if f.PolyDegree != 0 || f.ExpRate != 0 {
		t.Fatalf("empty fit = %+v", f)
	}
	one := mkSeries("one", func(n int) float64 { return 5 }, 3)
	if f := FitGrowth(one); f.PolyR2 != 0 {
		t.Fatalf("single-point fit = %+v", f)
	}
	flat := mkSeries("flat", func(n int) float64 { return 5 }, 1, 2, 4, 8)
	ff := FitGrowth(flat)
	if math.Abs(ff.PolyDegree) > 1e-9 {
		t.Fatalf("flat series degree = %.3f", ff.PolyDegree)
	}
	// Zero/negative work points are skipped, not crashed on.
	weird := &Series{Name: "weird", Points: []Point{{N: 0, Work: 10}, {N: 2, Work: 0}, {N: 4, Work: 16}, {N: 8, Work: 64}}}
	FitGrowth(weird)
}

// Property: linreg recovers the slope of exact lines.
func TestLinregExactLines(t *testing.T) {
	f := func(a, b int8) bool {
		slope := float64(a) / 4
		intercept := float64(b)
		var xs, ys []float64
		for i := 1; i <= 6; i++ {
			xs = append(xs, float64(i))
			ys = append(ys, slope*float64(i)+intercept)
		}
		got, gotIcept, r2 := linreg(xs, ys)
		if math.Abs(got-slope) > 1e-9 || math.Abs(gotIcept-intercept) > 1e-9 {
			return false
		}
		// R² is 1 for non-flat exact lines, and defined as 1 when flat.
		return r2 > 0.999 || slope == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSweepRunsMeasurements(t *testing.T) {
	calls := []int{}
	s := Sweep("demo", []int{1, 2, 3}, func(n int) (float64, map[string]float64) {
		calls = append(calls, n)
		return float64(n * n), map[string]float64{"aux": float64(n)}
	})
	if len(calls) != 3 || len(s.Points) != 3 {
		t.Fatalf("sweep ran %v", calls)
	}
	if s.Points[2].Work != 9 || s.Points[2].Extra["aux"] != 3 {
		t.Fatalf("point = %+v", s.Points[2])
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "n", "work", "note")
	tab.AddRow(1, 1000.0, "x")
	tab.AddRow(100, 2.5, "yy")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("table lines:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(lines[4], "2.50") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	// Columns must be aligned: "1000" and "2.50" start at the same offset.
	if strings.Index(lines[3], "1000") != strings.Index(lines[4], "2.50") {
		t.Fatalf("misaligned rows:\n%s", out)
	}
}

func TestSeriesTableIncludesExtras(t *testing.T) {
	s := &Series{Name: "with extras"}
	s.Add(Point{N: 1, Work: 10, Extra: map[string]float64{"steps": 100, "db": 5}})
	s.Add(Point{N: 2, Work: 20, Extra: map[string]float64{"steps": 200, "db": 6}})
	tab := SeriesTable(s)
	if len(tab.Columns) != 5 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	// Extras sorted: db before steps.
	if tab.Columns[3] != "db" || tab.Columns[4] != "steps" {
		t.Fatalf("columns = %v", tab.Columns)
	}
}

func TestRatio(t *testing.T) {
	s := mkSeries("r", func(n int) float64 { return float64(n) }, 2, 4, 20)
	if got := Ratio(s); got != 10 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(&Series{}); got != 0 {
		t.Fatalf("empty Ratio = %v", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.14"},
		{123456, "123456"},
		{1234.5, "1.23e+03"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow(1, "x")
	md := tab.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "|---|---|", "| 1 | x |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
