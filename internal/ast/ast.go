// Package ast defines the abstract syntax of Transaction Datalog programs:
// goal formulas built from elementary database operations with sequential
// composition (⊗, written ","), concurrent composition ("|"), and isolation
// ("iso(...)"); rules defining derived predicates; and whole programs.
//
// The representation mirrors the syntax of Bonner's PODS'99 paper. Plain
// atoms are parsed as Call nodes; Program.Analyze resolves atoms over
// predicates that have no rules into Query nodes (elementary tuple tests).
package ast

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// Pos is a source position: 1-based line and column of the token that
// started a node. The zero Pos marks nodes built programmatically rather
// than by the parser.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p carries a real source position.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// PosError is a program-validation error anchored to the source position of
// the offending construct. Programmatically built programs (zero Pos) fall
// back to the bare message.
type PosError struct {
	Pos Pos
	Msg string
}

func (e *PosError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
	}
	return e.Msg
}

// Goal is a TD goal formula (the body of a rule, or a top-level transaction
// invocation).
type Goal interface {
	fmt.Stringer
	isGoal()
}

// True is the empty goal; it always succeeds without touching the database.
type True struct{}

// AtomOp distinguishes the elementary and call forms that carry an atom.
type AtomOp uint8

// Atom goal operations.
const (
	OpCall  AtomOp = iota // invocation of a derived (rule-defined) predicate
	OpQuery               // membership test against a base relation
	OpIns                 // elementary insertion ins.p(t̄)
	OpDel                 // elementary deletion del.p(t̄)
)

func (op AtomOp) String() string {
	switch op {
	case OpCall:
		return "call"
	case OpQuery:
		return "query"
	case OpIns:
		return "ins"
	case OpDel:
		return "del"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Lit is an atomic goal: a call, query, insertion, or deletion.
type Lit struct {
	Op   AtomOp
	Atom term.Atom
	Pos  Pos
}

// Empty is the emptiness test empty.p: it succeeds iff relation p holds no
// tuples. It is TD's bounded form of negation on base relations.
type Empty struct {
	Pred string
	Pos  Pos
}

// Builtin is an evaluable predicate over constants: comparisons
// (lt, le, gt, ge, eq, neq) and arithmetic (add, sub, mul, div with the last
// argument as output). Builtins never touch the database.
type Builtin struct {
	Name string
	Args []term.Term
	Pos  Pos
}

// Seq is sequential composition: execute Goals left to right, threading the
// database through.
type Seq struct {
	Goals []Goal
}

// Conc is concurrent composition: Goals execute concurrently, interleaving
// their elementary operations; all must succeed on the same execution path.
type Conc struct {
	Goals []Goal
}

// Iso is the isolation modality ⊙G: G executes with no interleaving from
// sibling processes — atomically, as far as the rest of the goal can tell.
type Iso struct {
	Body Goal
	Pos  Pos
}

func (True) isGoal()     {}
func (*Lit) isGoal()     {}
func (*Empty) isGoal()   {}
func (*Builtin) isGoal() {}
func (*Seq) isGoal()     {}
func (*Conc) isGoal()    {}
func (*Iso) isGoal()     {}

func (True) String() string { return "true" }

func (l *Lit) String() string {
	switch l.Op {
	case OpIns:
		return "ins." + l.Atom.String()
	case OpDel:
		return "del." + l.Atom.String()
	default:
		return l.Atom.String()
	}
}

func (e *Empty) String() string { return "empty." + e.Pred }

func (b *Builtin) String() string {
	if sym, ok := infixSymbols[b.Name]; ok && len(b.Args) == 2 {
		return b.Args[0].String() + " " + sym + " " + b.Args[1].String()
	}
	parts := make([]string, len(b.Args))
	for i, a := range b.Args {
		parts[i] = a.String()
	}
	return b.Name + "(" + strings.Join(parts, ", ") + ")"
}

var infixSymbols = map[string]string{
	"lt": "<", "le": "=<", "gt": ">", "ge": ">=", "eq": "==", "neq": "!=",
}

func (s *Seq) String() string {
	parts := make([]string, len(s.Goals))
	for i, g := range s.Goals {
		if _, ok := g.(*Conc); ok {
			parts[i] = "(" + g.String() + ")"
		} else {
			parts[i] = g.String()
		}
	}
	return strings.Join(parts, ", ")
}

func (c *Conc) String() string {
	parts := make([]string, len(c.Goals))
	for i, g := range c.Goals {
		parts[i] = g.String()
	}
	return strings.Join(parts, " | ")
}

func (i *Iso) String() string { return "iso(" + i.Body.String() + ")" }

// NewSeq flattens nested sequences and drops True units; it returns True for
// an empty sequence and the goal itself for a singleton.
func NewSeq(goals ...Goal) Goal {
	flat := make([]Goal, 0, len(goals))
	for _, g := range goals {
		switch g := g.(type) {
		case True:
			// unit of ⊗
		case *Seq:
			flat = append(flat, g.Goals...)
		default:
			flat = append(flat, g)
		}
	}
	switch len(flat) {
	case 0:
		return True{}
	case 1:
		return flat[0]
	}
	return &Seq{Goals: flat}
}

// NewConc flattens nested concurrent compositions and drops True units.
func NewConc(goals ...Goal) Goal {
	flat := make([]Goal, 0, len(goals))
	for _, g := range goals {
		switch g := g.(type) {
		case True:
			// unit of |
		case *Conc:
			flat = append(flat, g.Goals...)
		default:
			flat = append(flat, g)
		}
	}
	switch len(flat) {
	case 0:
		return True{}
	case 1:
		return flat[0]
	}
	return &Conc{Goals: flat}
}

// Walk calls f on g and then on every subgoal, pre-order. If f returns
// false the subtree below g is skipped.
func Walk(g Goal, f func(Goal) bool) {
	if !f(g) {
		return
	}
	switch g := g.(type) {
	case *Seq:
		for _, sub := range g.Goals {
			Walk(sub, f)
		}
	case *Conc:
		for _, sub := range g.Goals {
			Walk(sub, f)
		}
	case *Iso:
		Walk(g.Body, f)
	}
}

// Vars appends the distinct variables of g to dst in first-occurrence order.
func Vars(g Goal, dst []term.Term) []term.Term {
	Walk(g, func(sub Goal) bool {
		switch sub := sub.(type) {
		case *Lit:
			dst = sub.Atom.Vars(dst)
		case *Builtin:
			dst = term.Atom{Pred: sub.Name, Args: sub.Args}.Vars(dst)
		}
		return true
	})
	return dst
}

// Rename returns a copy of g with every variable renamed through rn.
// Shared structure without variables is reused. Source positions are
// preserved on the copies.
func Rename(g Goal, rn *term.Renaming) Goal {
	switch g := g.(type) {
	case True:
		return g
	case *Lit:
		return &Lit{Op: g.Op, Atom: rn.Atom(g.Atom), Pos: g.Pos}
	case *Empty:
		return g
	case *Builtin:
		args := make([]term.Term, len(g.Args))
		for i, a := range g.Args {
			args[i] = rn.Term(a)
		}
		return &Builtin{Name: g.Name, Args: args, Pos: g.Pos}
	case *Seq:
		goals := make([]Goal, len(g.Goals))
		for i, sub := range g.Goals {
			goals[i] = Rename(sub, rn)
		}
		return &Seq{Goals: goals}
	case *Conc:
		goals := make([]Goal, len(g.Goals))
		for i, sub := range g.Goals {
			goals[i] = Rename(sub, rn)
		}
		return &Conc{Goals: goals}
	case *Iso:
		return &Iso{Body: Rename(g.Body, rn), Pos: g.Pos}
	default:
		panic(fmt.Sprintf("ast: Rename: unknown goal %T", g))
	}
}
