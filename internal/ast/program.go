package ast

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// Rule is a TD rule head :- body. The head predicate becomes a derived
// predicate ("transaction name" in the paper's terminology). Pos is the
// source position of the head token (zero for programmatic rules).
type Rule struct {
	Head term.Atom
	Body Goal
	Pos  Pos
}

// Pragma is one "% tdvet:ignore [lint-id ...]" comment directive collected
// by the parser. It suppresses static-analysis diagnostics reported on its
// own line or on the line directly below (so a pragma can trail the
// offending clause or sit on its own line above it). An empty IDs list
// suppresses every lint on those lines.
type Pragma struct {
	Line int
	IDs  []string
}

// Program is a parsed TD program: a rulebase plus the facts that form the
// initial database.
type Program struct {
	Rules []Rule
	Facts []term.Atom

	// FactPos holds the source position of each fact, parallel to Facts
	// (empty for programmatically built programs).
	FactPos []Pos

	// Pragmas holds the tdvet:ignore directives found in comments, in
	// source order. The analyzer consumes them; execution ignores them.
	Pragmas []Pragma

	// Queries holds the goals of "?- goal." directives, in source order.
	// They are not part of the rulebase; runners execute them in sequence.
	Queries []Goal

	// VarHigh is one more than the largest variable id used in the program;
	// engines seed their renamers with it.
	VarHigh int64

	derived map[predArity]bool   // predicates with at least one rule
	byPred  map[predArity][]int  // predicate/arity -> indexes into Rules
	rulesAt map[predArity][]Rule // materialized rule slices (hot path)
	arities map[string][]int     // predicate name -> sorted arities seen
}

// predArity identifies a predicate; used as a map key on hot paths (a
// struct key avoids the Sprintf the engine would otherwise pay per call
// step).
type predArity struct {
	pred  string
	arity int
}

func predKey(pred string, arity int) predArity {
	return predArity{pred: pred, arity: arity}
}

// factPos returns the source position of fact i, or the zero Pos when the
// program was built without the parser.
func (p *Program) factPos(i int) Pos {
	if i < len(p.FactPos) {
		return p.FactPos[i]
	}
	return Pos{}
}

// analyzeErr anchors a validation error at pos when the program carries
// source positions, falling back to the clause-index phrasing that
// programmatically built programs get (rule < 0 means a standalone goal or
// a fact index depending on context).
func analyzeErr(pos Pos, index int, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if pos.IsValid() {
		return &PosError{Pos: pos, Msg: msg}
	}
	if index >= 0 {
		return fmt.Errorf("clause %d: %s", index, msg)
	}
	return &PosError{Msg: msg}
}

// Analyze resolves parse-time ambiguity (call vs query), builds rule
// indexes, and validates the program. It must be called once after
// construction and before execution; the parser does this automatically.
//
// Validation errors reported:
//   - a base predicate (one that is updated or queried but has no rules) is
//     fine, but updating a *derived* predicate is an error;
//   - facts must be ground;
//   - builtin predicates may not be defined by rules, updated, or stored.
func (p *Program) Analyze() error {
	p.derived = make(map[predArity]bool)
	p.byPred = make(map[predArity][]int)
	p.rulesAt = make(map[predArity][]Rule)
	p.arities = make(map[string][]int)
	for i, r := range p.Rules {
		if IsBuiltinName(r.Head.Pred) {
			return analyzeErr(r.Pos, i, "cannot define builtin predicate %s", r.Head.Pred)
		}
		k := predKey(r.Head.Pred, len(r.Head.Args))
		p.derived[k] = true
		p.byPred[k] = append(p.byPred[k], i)
	}
	for i, f := range p.Facts {
		if !f.IsGround() {
			return analyzeErr(p.factPos(i), i, "fact %s must be ground", f)
		}
		if IsBuiltinName(f.Pred) {
			return analyzeErr(p.factPos(i), i, "builtin predicate %s cannot be stored", f.Pred)
		}
		if p.derived[predKey(f.Pred, len(f.Args))] {
			return analyzeErr(p.factPos(i), i, "predicate %s is derived (has rules) and cannot appear as a fact", f.Pred)
		}
	}
	var err error
	for ri := range p.Rules {
		p.Rules[ri].Body = p.resolveGoal(p.Rules[ri].Body, ri, &err)
		if err != nil {
			return err
		}
	}
	for qi := range p.Queries {
		p.Queries[qi] = p.resolveGoal(p.Queries[qi], -1, &err)
		if err != nil {
			return err
		}
	}
	for k, idx := range p.byPred {
		rules := make([]Rule, len(idx))
		for i, j := range idx {
			rules[i] = p.Rules[j]
		}
		p.rulesAt[k] = rules
	}
	p.recordArities()
	return nil
}

func (p *Program) recordArities() {
	seen := make(map[string]map[int]bool)
	note := func(pred string, ar int) {
		if seen[pred] == nil {
			seen[pred] = make(map[int]bool)
		}
		seen[pred][ar] = true
	}
	for _, r := range p.Rules {
		note(r.Head.Pred, len(r.Head.Args))
		Walk(r.Body, func(g Goal) bool {
			if l, ok := g.(*Lit); ok {
				note(l.Atom.Pred, len(l.Atom.Args))
			}
			return true
		})
	}
	for _, f := range p.Facts {
		note(f.Pred, len(f.Args))
	}
	for pred, ars := range seen {
		for ar := range ars {
			p.arities[pred] = append(p.arities[pred], ar)
		}
		sort.Ints(p.arities[pred])
	}
}

// resolveGoal rewrites OpCall literals over rule-less predicates into
// OpQuery literals and checks update targets.
func (p *Program) resolveGoal(g Goal, rule int, err *error) Goal {
	if *err != nil {
		return g
	}
	switch g := g.(type) {
	case *Lit:
		k := predKey(g.Atom.Pred, len(g.Atom.Args))
		switch g.Op {
		case OpCall:
			if IsBuiltinName(g.Atom.Pred) {
				return &Builtin{Name: g.Atom.Pred, Args: g.Atom.Args, Pos: g.Pos}
			}
			if !p.derived[k] {
				return &Lit{Op: OpQuery, Atom: g.Atom, Pos: g.Pos}
			}
		case OpIns, OpDel:
			if p.derived[k] {
				*err = analyzeErr(g.Pos, rule, "%s.%s: cannot update derived predicate", g.Op, g.Atom)
			}
			if IsBuiltinName(g.Atom.Pred) {
				*err = analyzeErr(g.Pos, rule, "cannot update builtin predicate %s", g.Atom.Pred)
			}
		}
		return g
	case *Seq:
		for i, sub := range g.Goals {
			g.Goals[i] = p.resolveGoal(sub, rule, err)
		}
		return g
	case *Conc:
		for i, sub := range g.Goals {
			g.Goals[i] = p.resolveGoal(sub, rule, err)
		}
		return g
	case *Iso:
		g.Body = p.resolveGoal(g.Body, rule, err)
		return g
	default:
		return g
	}
}

// ResolveGoal rewrites a stand-alone goal (e.g. a top-level transaction
// invocation parsed separately from the program) the same way rule bodies
// are rewritten during Analyze.
func (p *Program) ResolveGoal(g Goal) (Goal, error) {
	var err error
	out := p.resolveGoal(g, -1, &err)
	return out, err
}

// IsDerived reports whether pred/arity is defined by at least one rule.
func (p *Program) IsDerived(pred string, arity int) bool {
	return p.derived[predKey(pred, arity)]
}

// RulesFor returns the rules whose head is pred/arity, in source order.
// The returned slice is shared; callers must not mutate it.
func (p *Program) RulesFor(pred string, arity int) []Rule {
	return p.rulesAt[predKey(pred, arity)]
}

// Predicates returns every predicate name mentioned in the program, sorted.
func (p *Program) Predicates() []string {
	names := make([]string, 0, len(p.arities))
	for pred := range p.arities {
		names = append(names, pred)
	}
	sort.Strings(names)
	return names
}

// Arities returns the arities seen for pred, sorted ascending.
func (p *Program) Arities(pred string) []int { return p.arities[pred] }

// String renders the program in concrete syntax: facts, rules, then query
// directives. Parse(p.String()) reproduces the program.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.Head.String())
		b.WriteString(" :- ")
		b.WriteString(r.Body.String())
		b.WriteString(".\n")
	}
	for _, q := range p.Queries {
		b.WriteString("?- ")
		b.WriteString(q.String())
		b.WriteString(".\n")
	}
	return b.String()
}
