package ast

import (
	"testing"

	"repro/internal/term"
)

func lit(op AtomOp, pred string, args ...term.Term) *Lit {
	return &Lit{Op: op, Atom: term.Atom{Pred: pred, Args: args}}
}

func TestNewSeqFlattens(t *testing.T) {
	a := lit(OpQuery, "a")
	b := lit(OpQuery, "b")
	c := lit(OpQuery, "c")
	g := NewSeq(a, NewSeq(b, c))
	seq, ok := g.(*Seq)
	if !ok || len(seq.Goals) != 3 {
		t.Fatalf("NewSeq did not flatten: %v", g)
	}
	if NewSeq() != (True{}) {
		t.Error("empty NewSeq != True")
	}
	if NewSeq(a) != Goal(a) {
		t.Error("singleton NewSeq should return the goal")
	}
	if NewSeq(True{}, a, True{}) != Goal(a) {
		t.Error("True units not dropped")
	}
}

func TestNewConcFlattens(t *testing.T) {
	a := lit(OpQuery, "a")
	b := lit(OpQuery, "b")
	g := NewConc(a, NewConc(b, True{}))
	conc, ok := g.(*Conc)
	if !ok || len(conc.Goals) != 2 {
		t.Fatalf("NewConc wrong: %v", g)
	}
	if NewConc() != (True{}) {
		t.Error("empty NewConc != True")
	}
}

func TestGoalStrings(t *testing.T) {
	x := term.NewVar("X", 0)
	cases := []struct {
		g    Goal
		want string
	}{
		{True{}, "true"},
		{lit(OpQuery, "p", x), "p(X)"},
		{lit(OpIns, "p", x), "ins.p(X)"},
		{lit(OpDel, "q"), "del.q"},
		{&Empty{Pred: "busy"}, "empty.busy"},
		{&Builtin{Name: "lt", Args: []term.Term{x, term.NewInt(3)}}, "X < 3"},
		{&Builtin{Name: "add", Args: []term.Term{x, x, x}}, "add(X, X, X)"},
		{NewSeq(lit(OpQuery, "a"), lit(OpQuery, "b")), "a, b"},
		{NewConc(lit(OpQuery, "a"), lit(OpQuery, "b")), "a | b"},
		{NewSeq(lit(OpQuery, "a"), NewConc(lit(OpQuery, "b"), lit(OpQuery, "c"))), "a, (b | c)"},
		{&Iso{Body: lit(OpQuery, "a")}, "iso(a)"},
	}
	for _, c := range cases {
		if got := c.g.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestWalkVisitsAll(t *testing.T) {
	g := NewSeq(
		lit(OpQuery, "a"),
		NewConc(lit(OpIns, "b"), &Iso{Body: lit(OpDel, "c")}),
	)
	var names []string
	Walk(g, func(sub Goal) bool {
		if l, ok := sub.(*Lit); ok {
			names = append(names, l.Atom.Pred)
		}
		return true
	})
	if len(names) != 3 {
		t.Fatalf("visited %v", names)
	}
}

func TestWalkPrune(t *testing.T) {
	g := NewSeq(lit(OpQuery, "a"), &Iso{Body: lit(OpQuery, "inner")})
	count := 0
	Walk(g, func(sub Goal) bool {
		if _, isIso := sub.(*Iso); isIso {
			return false
		}
		if l, ok := sub.(*Lit); ok && l.Atom.Pred == "inner" {
			count++
		}
		return true
	})
	if count != 0 {
		t.Fatal("pruned subtree was visited")
	}
}

func TestVarsCollect(t *testing.T) {
	x, y := term.NewVar("X", 0), term.NewVar("Y", 1)
	g := NewSeq(
		lit(OpQuery, "p", x),
		&Builtin{Name: "lt", Args: []term.Term{x, y}},
	)
	vs := Vars(g, nil)
	if len(vs) != 2 || !vs[0].Equal(x) || !vs[1].Equal(y) {
		t.Fatalf("Vars = %v", vs)
	}
}

func TestRenamePreservesStructure(t *testing.T) {
	x := term.NewVar("X", 0)
	g := NewSeq(
		lit(OpQuery, "p", x),
		NewConc(lit(OpIns, "q", x), &Iso{Body: &Builtin{Name: "gt", Args: []term.Term{x, term.NewInt(0)}}}),
		&Empty{Pred: "e"},
	)
	ren := term.NewRenamer(100)
	rn := ren.NewRenaming()
	g2 := Rename(g, rn)
	if g2.String() != g.String() {
		t.Fatalf("structure changed: %s vs %s", g2, g)
	}
	// All occurrences of X must map to the SAME fresh variable, different
	// from X.
	vs := Vars(g2, nil)
	if len(vs) != 1 {
		t.Fatalf("renamed vars = %v", vs)
	}
	if vs[0].Equal(x) {
		t.Fatal("rename returned original variable")
	}
}

func TestProgramAnalyzeResolvesCalls(t *testing.T) {
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("r", term.NewVar("X", 0)),
				Body: NewSeq(lit(OpCall, "base", term.NewVar("X", 0)), lit(OpCall, "r2"))},
			{Head: term.NewAtom("r2"), Body: True{}},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	seq := p.Rules[0].Body.(*Seq)
	if seq.Goals[0].(*Lit).Op != OpQuery {
		t.Error("rule-less predicate not resolved to query")
	}
	if seq.Goals[1].(*Lit).Op != OpCall {
		t.Error("derived predicate resolved away from call")
	}
	if !p.IsDerived("r2", 0) || p.IsDerived("base", 1) {
		t.Error("IsDerived wrong")
	}
}

func TestProgramAnalyzeBuiltinResolution(t *testing.T) {
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("r"), Body: lit(OpCall, "add", term.NewInt(1), term.NewInt(2), term.NewVar("Z", 0))},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Rules[0].Body.(*Builtin); !ok {
		t.Fatalf("builtin call not resolved: %T", p.Rules[0].Body)
	}
}

func TestProgramAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"nonground fact", &Program{Facts: []term.Atom{term.NewAtom("p", term.NewVar("X", 0))}}},
		{"builtin fact", &Program{Facts: []term.Atom{term.NewAtom("lt", term.NewInt(1), term.NewInt(2))}}},
		{"builtin rule head", &Program{Rules: []Rule{{Head: term.NewAtom("lt", term.NewVar("X", 0), term.NewVar("Y", 1)), Body: True{}}}}},
		{"fact for derived", &Program{
			Rules: []Rule{{Head: term.NewAtom("p", term.NewVar("X", 0)), Body: True{}}},
			Facts: []term.Atom{term.NewAtom("p", term.NewSym("a"))},
		}},
		{"update derived", &Program{
			Rules: []Rule{
				{Head: term.NewAtom("q"), Body: True{}},
				{Head: term.NewAtom("r"), Body: lit(OpIns, "q")},
			},
		}},
		{"update builtin", &Program{
			Rules: []Rule{{Head: term.NewAtom("r"), Body: lit(OpIns, "lt", term.NewInt(1), term.NewInt(2))}},
		}},
	}
	for _, c := range cases {
		if err := c.p.Analyze(); err == nil {
			t.Errorf("%s: Analyze accepted invalid program", c.name)
		}
	}
}

func TestRulesForAndPredicates(t *testing.T) {
	x := term.NewVar("X", 0)
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("r", x), Body: True{}},
			{Head: term.NewAtom("r", x), Body: lit(OpCall, "s")},
			{Head: term.NewAtom("s"), Body: True{}},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	if got := len(p.RulesFor("r", 1)); got != 2 {
		t.Errorf("RulesFor(r/1) = %d rules", got)
	}
	if got := len(p.RulesFor("r", 2)); got != 0 {
		t.Errorf("RulesFor(r/2) = %d rules", got)
	}
	preds := p.Predicates()
	if len(preds) != 2 {
		t.Errorf("Predicates = %v", preds)
	}
	if ar := p.Arities("r"); len(ar) != 1 || ar[0] != 1 {
		t.Errorf("Arities(r) = %v", ar)
	}
}

func TestEvalBuiltinComparisons(t *testing.T) {
	env := term.NewEnv()
	cases := []struct {
		name string
		a, b int64
		want bool
	}{
		{"lt", 1, 2, true}, {"lt", 2, 2, false},
		{"le", 2, 2, true}, {"le", 3, 2, false},
		{"gt", 3, 2, true}, {"gt", 2, 2, false},
		{"ge", 2, 2, true}, {"ge", 1, 2, false},
	}
	for _, c := range cases {
		ok, err := EvalBuiltin(&Builtin{Name: c.name, Args: []term.Term{term.NewInt(c.a), term.NewInt(c.b)}}, env)
		if err != nil || ok != c.want {
			t.Errorf("%s(%d,%d) = %v, %v", c.name, c.a, c.b, ok, err)
		}
	}
}

func TestEvalBuiltinArith(t *testing.T) {
	env := term.NewEnv()
	z := term.NewVar("Z", 0)
	ok, err := EvalBuiltin(&Builtin{Name: "add", Args: []term.Term{term.NewInt(2), term.NewInt(3), z}}, env)
	if err != nil || !ok || !env.Walk(z).Equal(term.NewInt(5)) {
		t.Fatalf("add: %v %v %v", ok, err, env.Walk(z))
	}
	// Output position can also check: add(2,3,5) holds, add(2,3,6) fails.
	ok, _ = EvalBuiltin(&Builtin{Name: "add", Args: []term.Term{term.NewInt(2), term.NewInt(3), term.NewInt(6)}}, term.NewEnv())
	if ok {
		t.Fatal("add(2,3,6) held")
	}
	for _, c := range []struct {
		name    string
		a, b, z int64
	}{
		{"sub", 5, 3, 2}, {"mul", 4, 3, 12}, {"div", 7, 2, 3}, {"mod", 7, 2, 1},
	} {
		env := term.NewEnv()
		v := term.NewVar("V", 9)
		ok, err := EvalBuiltin(&Builtin{Name: c.name, Args: []term.Term{term.NewInt(c.a), term.NewInt(c.b), v}}, env)
		if err != nil || !ok || !env.Walk(v).Equal(term.NewInt(c.z)) {
			t.Errorf("%s(%d,%d) = %v (ok=%v err=%v)", c.name, c.a, c.b, env.Walk(v), ok, err)
		}
	}
}

func TestEvalBuiltinEqNeq(t *testing.T) {
	env := term.NewEnv()
	x := term.NewVar("X", 0)
	ok, err := EvalBuiltin(&Builtin{Name: "eq", Args: []term.Term{x, term.NewSym("a")}}, env)
	if err != nil || !ok || !env.Walk(x).Equal(term.NewSym("a")) {
		t.Fatal("eq did not bind")
	}
	ok, err = EvalBuiltin(&Builtin{Name: "neq", Args: []term.Term{term.NewSym("a"), term.NewSym("b")}}, env)
	if err != nil || !ok {
		t.Fatal("neq(a,b) failed")
	}
	ok, err = EvalBuiltin(&Builtin{Name: "neq", Args: []term.Term{term.NewSym("a"), term.NewSym("a")}}, env)
	if err != nil || ok {
		t.Fatal("neq(a,a) held")
	}
}

func TestEvalBuiltinErrors(t *testing.T) {
	env := term.NewEnv()
	x := term.NewVar("X", 0)
	errCases := []*Builtin{
		{Name: "nosuch", Args: nil},
		{Name: "lt", Args: []term.Term{term.NewInt(1)}},
		{Name: "lt", Args: []term.Term{x, term.NewInt(1)}},
		{Name: "lt", Args: []term.Term{term.NewSym("a"), term.NewInt(1)}},
		{Name: "div", Args: []term.Term{term.NewInt(1), term.NewInt(0), x}},
		{Name: "mod", Args: []term.Term{term.NewInt(1), term.NewInt(0), x}},
		{Name: "neq", Args: []term.Term{x, term.NewInt(1)}},
	}
	for _, b := range errCases {
		if _, err := EvalBuiltin(b, env); err == nil {
			t.Errorf("EvalBuiltin(%s) did not error", b)
		}
	}
}

func TestCheckSafetyFlagsUnboundUpdates(t *testing.T) {
	x := term.NewVar("X", 0)
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("bad"), Body: lit(OpIns, "p", x)},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	issues := CheckSafety(p)
	if len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
	if issues[0].String() == "" {
		t.Error("issue renders empty")
	}
}

func TestCheckSafetyHeadVarsBound(t *testing.T) {
	x := term.NewVar("X", 0)
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("ok", x), Body: lit(OpIns, "p", x)},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	if issues := CheckSafety(p); len(issues) != 0 {
		t.Fatalf("head-bound variable flagged: %v", issues)
	}
}

func TestCheckSafetyQueryBinds(t *testing.T) {
	x := term.NewVar("X", 0)
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("ok"), Body: NewSeq(lit(OpCall, "q", x), lit(OpIns, "p", x))},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	if issues := CheckSafety(p); len(issues) != 0 {
		t.Fatalf("query-bound variable flagged: %v", issues)
	}
}

func TestCheckSafetyConcurrentSiblingsDontBind(t *testing.T) {
	x := term.NewVar("X", 0)
	// ins.p(X) runs concurrently with q(X): X may be unbound when the
	// insertion fires.
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("bad"), Body: NewConc(lit(OpCall, "q", x), lit(OpIns, "p", x))},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	if issues := CheckSafety(p); len(issues) == 0 {
		t.Fatal("cross-branch binding assumed by safety check")
	}
	// But after the concurrent block, bindings from all branches hold.
	y := term.NewVar("Y", 1)
	p2 := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("ok"), Body: NewSeq(
				NewConc(lit(OpCall, "q", y), lit(OpCall, "r")),
				lit(OpIns, "p", y),
			)},
		},
	}
	if err := p2.Analyze(); err != nil {
		t.Fatal(err)
	}
	if issues := CheckSafety(p2); len(issues) != 0 {
		t.Fatalf("post-conc binding not propagated: %v", issues)
	}
}

func TestCheckSafetyArithOutput(t *testing.T) {
	x, z := term.NewVar("X", 0), term.NewVar("Z", 1)
	p := &Program{
		Rules: []Rule{
			{Head: term.NewAtom("ok", x), Body: NewSeq(
				&Builtin{Name: "add", Args: []term.Term{x, term.NewInt(1), z}},
				lit(OpIns, "p", z),
			)},
			{Head: term.NewAtom("bad", x), Body: NewSeq(
				&Builtin{Name: "add", Args: []term.Term{x, z, x}},
			)},
		},
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	issues := CheckSafety(p)
	if len(issues) != 1 {
		t.Fatalf("issues = %v, want exactly the unbound input", issues)
	}
	if issues[0].Pred != "bad" {
		t.Fatalf("wrong rule flagged: %v", issues[0])
	}
}

func TestCheckGoalSafety(t *testing.T) {
	x := term.NewVar("X", 0)
	g := NewSeq(lit(OpIns, "p", x))
	if issues := CheckGoalSafety(g, nil); len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
	if issues := CheckGoalSafety(g, []term.Term{x}); len(issues) != 0 {
		t.Fatal("pre-bound variable flagged")
	}
}

func TestCheckSafetyEqEitherSide(t *testing.T) {
	x := term.NewVar("X", 0)
	g := NewSeq(
		&Builtin{Name: "eq", Args: []term.Term{x, term.NewInt(5)}},
		lit(OpIns, "p", x),
	)
	if issues := CheckGoalSafety(g, nil); len(issues) != 0 {
		t.Fatalf("eq-bound variable flagged: %v", issues)
	}
	y := term.NewVar("Y", 1)
	g2 := NewSeq(&Builtin{Name: "eq", Args: []term.Term{x, y}})
	if issues := CheckGoalSafety(g2, nil); len(issues) == 0 {
		t.Fatal("eq with both sides unbound not flagged")
	}
}
