package ast

import (
	"fmt"

	"repro/internal/term"
)

// SafetyIssue describes one place where a rule may execute an update or a
// builtin with unbound variables. Safety in TD (the paper's sense: the
// language "does not generate an unbounded number of tuples") hinges on
// updates being ground when they execute; the engine enforces this at run
// time, and CheckSafety reports the static approximation so programs can be
// rejected early.
type SafetyIssue struct {
	Rule    int    // index into Program.Rules, or -1 for a standalone goal
	Pred    string // head predicate of the rule ("" for a goal)
	Problem string
}

func (s SafetyIssue) String() string {
	if s.Rule < 0 {
		return "goal: " + s.Problem
	}
	return fmt.Sprintf("rule %d (%s): %s", s.Rule, s.Pred, s.Problem)
}

// CheckSafety runs a conservative dataflow analysis over every rule:
// scanning each body left to right through sequential composition, a
// variable counts as bound if it occurs in an earlier query, call, builtin
// output, or in the rule head (heads may be called with ground arguments —
// the analysis assumes callers bind head variables, which the engine's
// runtime groundness check backstops). Components of a concurrent
// composition are analyzed independently: a variable bound only in a
// sibling concurrent branch is NOT considered bound, because interleaving
// order is not statically known.
//
// The returned slice is empty for safe programs.
func CheckSafety(p *Program) []SafetyIssue {
	var issues []SafetyIssue
	for i, r := range p.Rules {
		bound := varSet{}
		for _, v := range r.Head.Vars(nil) {
			bound.add(v)
		}
		checkGoal(r.Body, bound, &issues, i, r.Head.Pred)
	}
	return issues
}

// CheckGoalSafety analyzes a standalone goal, assuming the variables in
// pre are already bound.
func CheckGoalSafety(g Goal, pre []term.Term) []SafetyIssue {
	bound := varSet{}
	for _, v := range pre {
		bound.add(v)
	}
	var issues []SafetyIssue
	checkGoal(g, bound, &issues, -1, "")
	return issues
}

type varSet map[int64]bool

func (s varSet) add(t term.Term) {
	if t.IsVar() {
		s[t.VarID()] = true
	}
}

func (s varSet) has(t term.Term) bool {
	return !t.IsVar() || s[t.VarID()]
}

func (s varSet) clone() varSet {
	out := make(varSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// checkGoal scans g with the set of bound variables, extending it as
// binding literals are passed, and records issues for updates/builtins that
// may see unbound variables. It mutates bound to reflect bindings g
// guarantees on success.
func checkGoal(g Goal, bound varSet, issues *[]SafetyIssue, rule int, pred string) {
	switch g := g.(type) {
	case True:
	case *Lit:
		switch g.Op {
		case OpQuery, OpCall:
			// Queries bind their variables by matching tuples; calls are
			// assumed to bind (conservatively optimistic — runtime checks
			// remain authoritative for updates reached through calls).
			for _, t := range g.Atom.Args {
				bound.add(t)
			}
		case OpIns, OpDel:
			for _, t := range g.Atom.Args {
				if !bound.has(t) {
					*issues = append(*issues, SafetyIssue{
						Rule: rule, Pred: pred,
						Problem: fmt.Sprintf("variable %s may be unbound at %s", t, g),
					})
				}
			}
		}
	case *Empty:
	case *Builtin:
		n := len(g.Args)
		inputs := g.Args
		var output *term.Term
		if isArith(g.Name) && n == 3 {
			inputs = g.Args[:2]
			output = &g.Args[2]
		}
		if g.Name == "eq" {
			// eq can bind either side; require at least one side bound.
			if !bound.has(g.Args[0]) && !bound.has(g.Args[1]) {
				*issues = append(*issues, SafetyIssue{
					Rule: rule, Pred: pred,
					Problem: fmt.Sprintf("both sides of %s may be unbound", g),
				})
			}
			bound.add(g.Args[0])
			bound.add(g.Args[1])
			return
		}
		for _, t := range inputs {
			if !bound.has(t) {
				*issues = append(*issues, SafetyIssue{
					Rule: rule, Pred: pred,
					Problem: fmt.Sprintf("variable %s may be unbound at builtin %s", t, g),
				})
			}
		}
		if output != nil {
			bound.add(*output)
		}
	case *Seq:
		for _, sub := range g.Goals {
			checkGoal(sub, bound, issues, rule, pred)
		}
	case *Conc:
		// Each branch sees only the bindings from before the composition;
		// after it, all branches' bindings hold (all must succeed).
		after := bound.clone()
		for _, sub := range g.Goals {
			branch := bound.clone()
			checkGoal(sub, branch, issues, rule, pred)
			for k := range branch {
				after[k] = true
			}
		}
		for k := range after {
			bound[k] = true
		}
	case *Iso:
		checkGoal(g.Body, bound, issues, rule, pred)
	}
}

func isArith(name string) bool {
	switch name {
	case "add", "sub", "mul", "div", "mod":
		return true
	}
	return false
}
