package ast

import (
	"fmt"

	"repro/internal/term"
)

// builtinArity maps builtin predicate names to their required arity.
// Comparisons take two integer arguments; arithmetic builtins take two
// integer inputs and unify the third argument with the result.
var builtinArity = map[string]int{
	"lt": 2, "le": 2, "gt": 2, "ge": 2,
	"eq": 2, "neq": 2,
	"add": 3, "sub": 3, "mul": 3, "div": 3, "mod": 3,
}

// IsBuiltinName reports whether name denotes an evaluable builtin predicate.
// BuiltinArity returns the required arity of builtin name, and whether name
// is a builtin at all.
func BuiltinArity(name string) (int, bool) {
	n, ok := builtinArity[name]
	return n, ok
}

func IsBuiltinName(name string) bool {
	_, ok := builtinArity[name]
	return ok
}

// EvalBuiltin evaluates builtin b under env. It returns ok=false when the
// builtin (deterministically) fails, and a non-nil error when the call is
// ill-formed (wrong arity, unbound input, non-integer argument, division by
// zero). A successful arithmetic call may extend env by binding the output
// argument.
func EvalBuiltin(b *Builtin, env *term.Env) (ok bool, err error) {
	want, known := builtinArity[b.Name]
	if !known {
		return false, fmt.Errorf("unknown builtin %s/%d", b.Name, len(b.Args))
	}
	if len(b.Args) != want {
		return false, fmt.Errorf("builtin %s expects %d arguments, got %d", b.Name, want, len(b.Args))
	}
	switch b.Name {
	case "eq":
		return env.Unify(b.Args[0], b.Args[1]), nil
	case "neq":
		x, y := env.Walk(b.Args[0]), env.Walk(b.Args[1])
		if x.IsVar() || y.IsVar() {
			return false, fmt.Errorf("neq: unbound argument in %s", b)
		}
		return !x.Equal(y), nil
	case "lt", "le", "gt", "ge":
		x, err := intArg(b, env, 0)
		if err != nil {
			return false, err
		}
		y, err := intArg(b, env, 1)
		if err != nil {
			return false, err
		}
		switch b.Name {
		case "lt":
			return x < y, nil
		case "le":
			return x <= y, nil
		case "gt":
			return x > y, nil
		default:
			return x >= y, nil
		}
	case "add", "sub", "mul", "div", "mod":
		x, err := intArg(b, env, 0)
		if err != nil {
			return false, err
		}
		y, err := intArg(b, env, 1)
		if err != nil {
			return false, err
		}
		var z int64
		switch b.Name {
		case "add":
			z = x + y
		case "sub":
			z = x - y
		case "mul":
			z = x * y
		case "div":
			if y == 0 {
				return false, fmt.Errorf("div: division by zero in %s", b)
			}
			z = x / y
		case "mod":
			if y == 0 {
				return false, fmt.Errorf("mod: division by zero in %s", b)
			}
			z = x % y
		}
		return env.Unify(b.Args[2], term.NewInt(z)), nil
	}
	return false, fmt.Errorf("unhandled builtin %s", b.Name)
}

func intArg(b *Builtin, env *term.Env, i int) (int64, error) {
	t := env.Walk(b.Args[i])
	if t.IsVar() {
		return 0, fmt.Errorf("%s: argument %d unbound in %s", b.Name, i+1, b)
	}
	if t.Kind() != term.Int {
		return 0, fmt.Errorf("%s: argument %d is %s, want integer, in %s", b.Name, i+1, t.Kind(), b)
	}
	return t.IntVal(), nil
}
