package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("commit:5ms:0.999, fsync:20ms:0.99")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("parsed %d SLOs, want 2", len(slos))
	}
	if slos[0].Name != "commit" || slos[0].Threshold != 5*time.Millisecond || slos[0].Objective != 0.999 {
		t.Errorf("first SLO = %+v", slos[0])
	}
	if slos[1].Name != "fsync" || slos[1].Threshold != 20*time.Millisecond || slos[1].Objective != 0.99 {
		t.Errorf("second SLO = %+v", slos[1])
	}

	if got, err := ParseSLOs(""); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{
		"commit:5ms",          // missing objective
		"commit:fast:0.99",    // unparseable threshold
		"commit:-5ms:0.99",    // non-positive threshold
		"commit:5ms:1.0",      // objective not in (0,1)
		"commit:5ms:0",        // objective not in (0,1)
		"commit:5ms:ninety",   // unparseable objective
		":5ms:0.99",           // empty name
		"commit:5ms:0.99:bad", // too many fields
	} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted, want error", bad)
		}
	}
}

func TestSLOBurnAndBreach(t *testing.T) {
	// Objective 0.75 keeps the error budget (0.25) exact in binary, so the
	// burn==1.0 boundary below is not at the mercy of float rounding.
	s := &SLO{Name: "commit", Threshold: time.Millisecond, Objective: 0.75}
	// Three good events: burn 0, no breach.
	for i := 0; i < 3; i++ {
		if s.Observe(100 * time.Microsecond) {
			t.Fatal("breach on a good event")
		}
	}
	if s.BurnRate() != 0 {
		t.Errorf("burn = %g after all-good, want 0", s.BurnRate())
	}
	// One bad event out of four: bad fraction 0.25 = budget, burn exactly
	// 1.0, still compliant.
	if s.Observe(5 * time.Millisecond) {
		t.Error("breach at burn exactly 1.0, want crossing only above 1.0")
	}
	if got := s.BurnRate(); got != 1.0 {
		t.Errorf("burn = %g, want 1.0", got)
	}
	// A second bad event crosses: edge-triggered true, then false while the
	// breach persists.
	if !s.Observe(5 * time.Millisecond) {
		t.Error("want breach crossing on burn rising above 1.0")
	}
	if !s.InBreach() {
		t.Error("InBreach = false inside a breach")
	}
	if s.Observe(5 * time.Millisecond) {
		t.Error("repeat bad event re-reported the breach; want edge-triggered")
	}
	// Enough good events to dilute the bad fraction back under budget:
	// 3 bad / 16 total = 0.1875 < 0.25.
	for i := 0; i < 10; i++ {
		s.Observe(100 * time.Microsecond)
	}
	if s.InBreach() {
		t.Errorf("still in breach at burn %g after recovery", s.BurnRate())
	}
	if s.Good() != 13 || s.Total() != 16 {
		t.Errorf("good/total = %d/%d, want 13/16", s.Good(), s.Total())
	}
}

func TestSLORegister(t *testing.T) {
	r := NewRegistry()
	s := &SLO{Name: "commit", Threshold: time.Millisecond, Objective: 0.5}
	s.Register(r)
	s.Observe(time.Microsecond)
	s.Observe(time.Second)
	s.Observe(time.Second)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`td_slo_good_total{slo="commit"} 1`,
		`td_slo_events_total{slo="commit"} 3`,
		`td_slo_burn_rate{slo="commit"} 1.3333333333333333`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, out)
		}
	}
}
