package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving reg in Prometheus text
// exposition format.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
}

// NewMux returns a mux exposing /metrics for reg plus the standard
// net/http/pprof endpoints under /debug/pprof/. This is what tdserver
// mounts behind -obs.addr.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
