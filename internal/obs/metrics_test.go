package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {math.MaxInt64, histFinite},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound covers it.
	for v := int64(1); v < 1<<22; v = v*3 + 1 {
		b := bucketFor(v)
		if BucketBound(b) < v {
			t.Fatalf("value %d above its bucket bound %d", v, BucketBound(b))
		}
		if b > 0 && BucketBound(b-1) >= v {
			t.Fatalf("value %d fits in earlier bucket %d", v, b-1)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 90 samples at ~100µs, 10 at ~10000µs.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 90*100+10*10000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	p50 := h.Quantile(0.50)
	if p50 < 100 || p50 > 256 {
		t.Errorf("p50 = %d, want ~128 (bucket bound covering 100)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 10000 || p99 > 32768 {
		t.Errorf("p99 = %d, want bucket bound covering 10000", p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

// The histogram is the replacement for the old sort-under-mutex quantile
// path: both recording and reading must be allocation-free.
func TestHistogramAllocFree(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(137) }); n != 0 {
		t.Errorf("Observe allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Quantile(0.99) }); n != 0 {
		t.Errorf("Quantile allocates %.1f times per call, want 0", n)
	}
}

func TestCounterGaugeAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("td_test_total", "test")
	g := r.Gauge("td_test_gauge", "test")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); g.Set(7) }); n != 0 {
		t.Errorf("counter/gauge updates allocate %.1f times per call, want 0", n)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("td_commits_total", "committed transactions")
	c.Add(42)
	r.GaugeFunc("td_db_size", "tuples in the head database", func() int64 { return 17 })
	h := r.HistogramL("td_request_latency_us", "per-verb latency", `verb="EXEC"`)
	h.Observe(100)
	h2 := r.HistogramL("td_request_latency_us", "per-verb latency", `verb="PING"`)
	h2.Observe(3)
	ca := r.CounterL("td_conflicts_total", "by cause", `cause="read_write"`)
	ca.Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP td_commits_total committed transactions\n",
		"# TYPE td_commits_total counter\n",
		"td_commits_total 42\n",
		"# TYPE td_db_size gauge\n",
		"td_db_size 17\n",
		"# TYPE td_request_latency_us histogram\n",
		`td_request_latency_us_bucket{verb="EXEC",le="128"} 1`,
		`td_request_latency_us_bucket{verb="EXEC",le="+Inf"} 1`,
		`td_request_latency_us_sum{verb="EXEC"} 100`,
		`td_request_latency_us_count{verb="PING"} 1`,
		`td_conflicts_total{cause="read_write"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q\n---\n%s", want, out)
		}
	}
	// One TYPE header per family even with multiple label sets.
	if n := strings.Count(out, "# TYPE td_request_latency_us histogram"); n != 1 {
		t.Errorf("family header appears %d times, want 1", n)
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, `td_request_latency_us_bucket{verb="EXEC",le="4"} 0`) {
		t.Errorf("low bucket should be 0 before first sample bucket\n%s", out)
	}
}

// Table-driven edge cases for Quantile, including the overflow-bucket
// contract: a quantile landing in the +Inf bucket reports the bucket's
// lower bound (the largest finite bound), never a fabricated midpoint.
func TestHistogramQuantileEdges(t *testing.T) {
	top := BucketBound(histFinite - 1)
	cases := []struct {
		name    string
		samples []int64
		q       float64
		want    int64
	}{
		{"empty", nil, 0.99, 0},
		{"empty p50", nil, 0.50, 0},
		{"single sample p50", []int64{100}, 0.50, 128},
		{"single sample p100", []int64{100}, 1.0, 128},
		{"single sample tiny q", []int64{100}, 0.0001, 128},
		{"single overflow sample", []int64{top + 1}, 0.50, top},
		{"all overflow p99", []int64{top + 1, top * 2, math.MaxInt64}, 0.99, top},
		{"mixed, quantile below overflow", []int64{1, 2, 3, top + 1}, 0.50, 2},
		{"mixed, quantile in overflow", []int64{1, top + 1}, 0.99, top},
		{"q above 1 clamps to max sample", []int64{4, 4, 4}, 1.5, 4},
		{"zero sample", []int64{0}, 0.99, 1},
	}
	for _, c := range cases {
		h := &Histogram{}
		for _, v := range c.samples {
			h.Observe(v)
		}
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%g) = %d, want %d", c.name, c.q, got, c.want)
		}
	}
}

// Quantile must not fall through into the overflow bucket when float
// rounding pushes ceil(q*total) past the sample count.
func TestHistogramQuantileRankClamped(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(3)
	}
	// 0.9999999999999999 * 1000 rounds up past 1000 under ceil.
	if got := h.Quantile(0.9999999999999999); got != 4 {
		t.Errorf("near-1 quantile = %d, want 4 (bucket of the only sample value)", got)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: want panic, got none", what)
		}
	}()
	fn()
}

// Registering the same family with a different type or help, or the exact
// same (family, labels) series twice, must panic deterministically.
// Distinct label sets under one family remain legal.
func TestRegistryCollisions(t *testing.T) {
	r := NewRegistry()
	r.Counter("td_x_total", "things")
	mustPanic(t, "kind collision", func() { r.Gauge("td_x_total", "things") })
	mustPanic(t, "help collision", func() { r.Counter("td_x_total", "other help") })
	mustPanic(t, "duplicate series", func() { r.Counter("td_x_total", "things") })
	mustPanic(t, "histogram over counter", func() { r.Histogram("td_x_total", "things") })
	mustPanic(t, "counterfunc with new help", func() {
		r.CounterFunc("td_x_total", "fresh", func() int64 { return 0 })
	})

	// The legal shape: one family, many label sets, same help and kind.
	r.CounterL("td_y_total", "by cause", `cause="a"`)
	r.CounterL("td_y_total", "by cause", `cause="b"`)
	mustPanic(t, "duplicate labeled series", func() { r.CounterL("td_y_total", "by cause", `cause="a"`) })

	// CounterFunc and Counter are the same exposed type and may share a
	// family (distinct labels).
	r.CounterFuncL("td_y_total", "by cause", `cause="c"`, func() int64 { return 1 })

	// Float and int gauges share the "gauge" type.
	r.Gauge("td_z", "level")
	mustPanic(t, "float gauge duplicate series", func() {
		r.GaugeFuncF("td_z", "level", func() float64 { return 0 })
	})
	r.GaugeFuncFL("td_z", "level", `kind="f"`, func() float64 { return 0.5 })
}

func TestFamilyFunc(t *testing.T) {
	r := NewRegistry()
	r.FamilyFunc("td_prover_pred_us", "prover time by predicate", "counter", func() []Sample {
		return []Sample{
			{Labels: `pred="path/2"`, Value: 42},
			{Labels: `pred="edge/2"`, Value: 7},
		}
	})
	mustPanic(t, "bad type", func() {
		r.FamilyFunc("td_bad", "x", "histogram", func() []Sample { return nil })
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Sorted by label set, under one counter header.
	idxEdge := strings.Index(out, `td_prover_pred_us{pred="edge/2"} 7`)
	idxPath := strings.Index(out, `td_prover_pred_us{pred="path/2"} 42`)
	if idxEdge < 0 || idxPath < 0 || idxEdge > idxPath {
		t.Errorf("FamilyFunc samples missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE td_prover_pred_us counter\n") {
		t.Errorf("FamilyFunc TYPE header missing:\n%s", out)
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("td_a_total", "a")
	r.HistogramL("td_b_us", "b", `verb="EXEC"`)
	r.HistogramL("td_b_us", "b", `verb="PING"`)
	r.GaugeFunc("td_c", "c", func() int64 { return 0 })
	fams := r.Families()
	want := []FamilyInfo{
		{Name: "td_a_total", Help: "a", Type: "counter"},
		{Name: "td_b_us", Help: "b", Type: "histogram"},
		{Name: "td_c", Help: "c", Type: "gauge"},
	}
	if len(fams) != len(want) {
		t.Fatalf("Families() = %v, want %v", fams, want)
	}
	for i := range want {
		if fams[i] != want[i] {
			t.Errorf("Families()[%d] = %v, want %v", i, fams[i], want[i])
		}
	}
}
