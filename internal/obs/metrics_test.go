package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {math.MaxInt64, histFinite},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound covers it.
	for v := int64(1); v < 1<<22; v = v*3 + 1 {
		b := bucketFor(v)
		if BucketBound(b) < v {
			t.Fatalf("value %d above its bucket bound %d", v, BucketBound(b))
		}
		if b > 0 && BucketBound(b-1) >= v {
			t.Fatalf("value %d fits in earlier bucket %d", v, b-1)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 90 samples at ~100µs, 10 at ~10000µs.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 90*100+10*10000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	p50 := h.Quantile(0.50)
	if p50 < 100 || p50 > 256 {
		t.Errorf("p50 = %d, want ~128 (bucket bound covering 100)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 10000 || p99 > 32768 {
		t.Errorf("p99 = %d, want bucket bound covering 10000", p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

// The histogram is the replacement for the old sort-under-mutex quantile
// path: both recording and reading must be allocation-free.
func TestHistogramAllocFree(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(137) }); n != 0 {
		t.Errorf("Observe allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Quantile(0.99) }); n != 0 {
		t.Errorf("Quantile allocates %.1f times per call, want 0", n)
	}
}

func TestCounterGaugeAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("td_test_total", "test")
	g := r.Gauge("td_test_gauge", "test")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); g.Set(7) }); n != 0 {
		t.Errorf("counter/gauge updates allocate %.1f times per call, want 0", n)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("td_commits_total", "committed transactions")
	c.Add(42)
	r.GaugeFunc("td_db_size", "tuples in the head database", func() int64 { return 17 })
	h := r.HistogramL("td_request_latency_us", "per-verb latency", `verb="EXEC"`)
	h.Observe(100)
	h2 := r.HistogramL("td_request_latency_us", "per-verb latency", `verb="PING"`)
	h2.Observe(3)
	ca := r.CounterL("td_conflicts_total", "by cause", `cause="read_write"`)
	ca.Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP td_commits_total committed transactions\n",
		"# TYPE td_commits_total counter\n",
		"td_commits_total 42\n",
		"# TYPE td_db_size gauge\n",
		"td_db_size 17\n",
		"# TYPE td_request_latency_us histogram\n",
		`td_request_latency_us_bucket{verb="EXEC",le="128"} 1`,
		`td_request_latency_us_bucket{verb="EXEC",le="+Inf"} 1`,
		`td_request_latency_us_sum{verb="EXEC"} 100`,
		`td_request_latency_us_count{verb="PING"} 1`,
		`td_conflicts_total{cause="read_write"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q\n---\n%s", want, out)
		}
	}
	// One TYPE header per family even with multiple label sets.
	if n := strings.Count(out, "# TYPE td_request_latency_us histogram"); n != 1 {
		t.Errorf("family header appears %d times, want 1", n)
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, `td_request_latency_us_bucket{verb="EXEC",le="4"} 0`) {
		t.Errorf("low bucket should be 0 before first sample bucket\n%s", out)
	}
}
