package obs

import "encoding/json"

// WideEvent is the one-line-per-transaction structured event: everything
// the server knows about a finished transaction, flattened into a single
// record ("wide event" in the canonical-log-line sense). It is emitted on
// the same JSONL stream as span trees; the Event discriminator ("txn")
// distinguishes the two line shapes, and span lines — whose top-level keys
// never include "event" — are skipped by wide-event readers.
type WideEvent struct {
	Event      string           `json:"event"` // always "txn"
	Trace      uint64           `json:"trace,omitempty"`
	Session    uint64           `json:"session,omitempty"`
	Verb       string           `json:"verb,omitempty"`
	Goal       string           `json:"goal,omitempty"`
	LSN        uint64           `json:"lsn,omitempty"`
	Retries    int              `json:"retries,omitempty"`  // OCC rounds lost before this commit
	Conflict   string           `json:"conflict,omitempty"` // cause of the last lost round
	Lanes      []int            `json:"lanes,omitempty"`    // commit lanes touched
	CrossShard bool             `json:"cross_shard,omitempty"`
	Ops        int              `json:"ops,omitempty"`   // write-set size
	Batch      int64            `json:"batch,omitempty"` // commits covered by the fsync that acked us
	StageUs    map[string]int64 `json:"stage_us,omitempty"`
	TotalUs    int64            `json:"total_us,omitempty"`
	// MemoHits and MemoMisses count tabled-call answer replays and memo
	// fills by the transaction's final proof attempt (0 on untabled
	// sessions, so pre-tabling readers see unchanged lines).
	MemoHits   int64 `json:"memo_hits,omitempty"`
	MemoMisses int64 `json:"memo_misses,omitempty"`
}

// WideSink receives wide events. Implementations must be safe for
// concurrent use and must not retain or mutate the event.
type WideSink interface {
	EmitWide(*WideEvent)
}

// EmitWide appends e as one JSONL line, interleaved with any span lines on
// the same stream. Marshal errors are swallowed for the same reason as in
// Emit.
func (j *JSONLSink) EmitWide(e *WideEvent) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	j.mu.Lock()
	j.w.Write(data)
	j.w.WriteByte('\n')
	j.w.Flush()
	j.mu.Unlock()
}
