// Package obs is a zero-dependency observability layer for the Transaction
// Datalog engine: a metrics registry (atomic counters, gauges, and lock-free
// fixed-bucket histograms) with a Prometheus text exposition writer, plus
// structured execution spans (span.go) and pluggable span sinks (sink.go).
//
// The package deliberately depends only on the standard library and is
// imported by internal/engine and internal/server; it must never import
// either of them.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be non-negative; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: bucket i (0 <= i < histFinite) counts
// observations v with v <= 1<<i, cumulative-exclusive of earlier buckets;
// the last bucket is the +Inf overflow. With histFinite = 27 the finite
// range covers 1µs .. ~67s, which brackets every latency this system
// produces (fsync, per-verb, per-commit) at ~2x resolution.
const (
	histFinite  = 27
	histBuckets = histFinite + 1
)

// Histogram is a lock-free fixed-bucket histogram of int64 samples
// (conventionally microseconds). Observe and Quantile are allocation-free
// and safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// bucketFor returns the index of the smallest bucket whose upper bound is
// >= v: ceil(log2(v)) for v >= 2, clamped to the overflow bucket.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2(v))
	if b >= histFinite {
		return histFinite // +Inf
	}
	return b
}

// BucketBound returns the upper bound of bucket i in the same unit as the
// observed samples; the overflow bucket reports math.MaxInt64.
func BucketBound(i int) int64 {
	if i >= histFinite {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketFor(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1), i.e. an upper estimate with ~2x resolution.
// Returns 0 when no samples have been observed. A quantile that lands in
// the +Inf overflow bucket reports that bucket's lower bound (the largest
// finite bucket bound): the interval is unbounded above, so the lower
// bound is the only honest point estimate. O(histBuckets), no allocation,
// no locking.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		// q > 1, or float rounding pushed the rank past the sample count.
		// Clamp so the answer is the bucket of the largest observed sample,
		// never a spurious fall-through into the overflow bucket.
		target = total
	}
	var cum int64
	for i := 0; i < histFinite; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return BucketBound(i)
		}
	}
	// The rank lands in the overflow bucket: report its lower bound.
	return BucketBound(histFinite - 1)
}

// metricKind discriminates how a registered series is rendered.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindGaugeFuncF
	kindFamilyFunc
)

// Sample is one labeled sample produced by a FamilyFunc at scrape time.
type Sample struct {
	Labels string // rendered label pairs without braces, e.g. `pred="path/2"`
	Value  int64
}

type series struct {
	family string // metric family name, e.g. td_commits_total
	labels string // rendered label pairs without braces, e.g. `verb="EXEC"`, may be ""
	help   string
	kind   metricKind
	ftyp   string // rendered TYPE for kindFamilyFunc: "counter" or "gauge"
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
	fnf    func() float64
	sfn    func() []Sample
}

// typeName maps a series to its Prometheus TYPE keyword.
func (s *series) typeName() string {
	switch s.kind {
	case kindGauge, kindGaugeFunc, kindGaugeFuncF:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindFamilyFunc:
		return s.ftyp
	}
	return "counter"
}

// Registry holds registered metric series and renders them in Prometheus
// text exposition format. Registration is expected at setup time; WriteText
// may be called concurrently with metric updates.
type Registry struct {
	mu     sync.Mutex
	series []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// add registers a series. Re-registering a family under a different type
// or help string, or re-registering the exact same (family, labels) pair,
// is a programming error and panics deterministically: the text exposition
// would otherwise render a malformed family whose shape depends on
// registration order. Multiple series of one family with distinct label
// sets — the normal labeled-metric case — are fine.
func (r *Registry) add(s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ex := range r.series {
		if ex.family != s.family {
			continue
		}
		if ex.typeName() != s.typeName() {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, already registered as %s",
				s.family, s.typeName(), ex.typeName()))
		}
		if ex.help != s.help {
			panic(fmt.Sprintf("obs: metric %s re-registered with different help (%q, already %q)",
				s.family, s.help, ex.help))
		}
		if ex.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate metric series %s{%s}", s.family, s.labels))
		}
	}
	r.series = append(r.series, s)
}

// Counter registers and returns a counter with no labels.
func (r *Registry) Counter(family, help string) *Counter {
	return r.CounterL(family, help, "")
}

// CounterL registers a counter with a rendered label set such as
// `cause="read_write"`.
func (r *Registry) CounterL(family, help, labels string) *Counter {
	c := &Counter{}
	r.add(&series{family: family, labels: labels, help: help, kind: kindCounter, c: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape time.
func (r *Registry) CounterFunc(family, help string, fn func() int64) {
	r.add(&series{family: family, help: help, kind: kindCounterFunc, fn: fn})
}

// CounterFuncL is CounterFunc with a rendered label set.
func (r *Registry) CounterFuncL(family, help, labels string, fn func() int64) {
	r.add(&series{family: family, labels: labels, help: help, kind: kindCounterFunc, fn: fn})
}

// Gauge registers and returns a gauge with no labels.
func (r *Registry) Gauge(family, help string) *Gauge {
	g := &Gauge{}
	r.add(&series{family: family, help: help, kind: kindGauge, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(family, help string, fn func() int64) {
	r.add(&series{family: family, help: help, kind: kindGaugeFunc, fn: fn})
}

// GaugeFuncF registers a float-valued gauge read from fn at scrape time —
// for ratios and fractions, which the integer instruments cannot express.
func (r *Registry) GaugeFuncF(family, help string, fn func() float64) {
	r.add(&series{family: family, help: help, kind: kindGaugeFuncF, fnf: fn})
}

// GaugeFuncFL is GaugeFuncF with a rendered label set.
func (r *Registry) GaugeFuncFL(family, help, labels string, fn func() float64) {
	r.add(&series{family: family, labels: labels, help: help, kind: kindGaugeFuncF, fnf: fn})
}

// Histogram registers and returns a histogram with no labels.
func (r *Registry) Histogram(family, help string) *Histogram {
	return r.HistogramL(family, help, "")
}

// HistogramL registers a histogram with a rendered label set.
func (r *Registry) HistogramL(family, help, labels string) *Histogram {
	h := &Histogram{}
	r.add(&series{family: family, labels: labels, help: help, kind: kindHistogram, h: h})
	return h
}

// FamilyFunc registers a whole metric family whose label sets are not known
// at registration time: fn is called at scrape time and returns one sample
// per live label set (e.g. td_prover_pred_us{pred=...}, one series per
// predicate the prover has dispatched so far). typ is the exposed TYPE,
// "counter" or "gauge". Samples render sorted by label set.
func (r *Registry) FamilyFunc(family, help, typ string, fn func() []Sample) {
	if typ != "counter" && typ != "gauge" {
		panic(fmt.Sprintf("obs: FamilyFunc %s: type %q is not counter or gauge", family, typ))
	}
	r.add(&series{family: family, help: help, kind: kindFamilyFunc, ftyp: typ, sfn: fn})
}

// FamilyInfo describes one registered metric family.
type FamilyInfo struct {
	Name string
	Help string
	Type string // "counter", "gauge", or "histogram"
}

// Families returns one entry per registered family in first-registration
// order. It exists for metadata audits (naming conventions, help coverage)
// in tests; the collision check in add guarantees every series of a family
// agrees on Help and Type.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.series))
	out := make([]FamilyInfo, 0, len(r.series))
	for _, s := range r.series {
		if seen[s.family] {
			continue
		}
		seen[s.family] = true
		out = append(out, FamilyInfo{Name: s.family, Help: s.help, Type: s.typeName()})
	}
	return out
}

// WriteText renders every registered series in Prometheus text exposition
// format (version 0.0.4). Series of the same family are grouped under one
// HELP/TYPE header; families appear in first-registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	all := make([]*series, len(r.series))
	copy(all, r.series)
	r.mu.Unlock()

	// Stable grouping by family, preserving first-seen order.
	order := make([]string, 0, len(all))
	byFam := make(map[string][]*series, len(all))
	for _, s := range all {
		if _, ok := byFam[s.family]; !ok {
			order = append(order, s.family)
		}
		byFam[s.family] = append(byFam[s.family], s)
	}
	for _, fam := range order {
		group := byFam[fam]
		first := group[0]
		typ := first.typeName()
		if first.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, first.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
			return err
		}
		// Deterministic output within a family: sort by label set.
		sort.SliceStable(group, func(i, j int) bool { return group[i].labels < group[j].labels })
		for _, s := range group {
			if err := s.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *series) write(w io.Writer) error {
	switch s.kind {
	case kindCounter:
		return writeSample(w, s.family, s.labels, s.c.Value())
	case kindGauge:
		return writeSample(w, s.family, s.labels, s.g.Value())
	case kindCounterFunc, kindGaugeFunc:
		return writeSample(w, s.family, s.labels, s.fn())
	case kindGaugeFuncF:
		return writeSampleF(w, s.family, s.labels, s.fnf())
	case kindFamilyFunc:
		samples := s.sfn()
		sort.Slice(samples, func(i, j int) bool { return samples[i].Labels < samples[j].Labels })
		for _, sm := range samples {
			if err := writeSample(w, s.family, sm.Labels, sm.Value); err != nil {
				return err
			}
		}
		return nil
	case kindHistogram:
		var cum int64
		for i := 0; i < histBuckets; i++ {
			cum += s.h.counts[i].Load()
			le := "+Inf"
			if i < histFinite {
				le = fmt.Sprintf("%d", BucketBound(i))
			}
			lbl := `le="` + le + `"`
			if s.labels != "" {
				lbl = s.labels + "," + lbl
			}
			if err := writeSample(w, s.family+"_bucket", lbl, cum); err != nil {
				return err
			}
		}
		if err := writeSample(w, s.family+"_sum", s.labels, s.h.Sum()); err != nil {
			return err
		}
		return writeSample(w, s.family+"_count", s.labels, s.h.Count())
	}
	return nil
}

func writeSample(w io.Writer, name, labels string, v int64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %d\n", name, v)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
	}
	return err
}

func writeSampleF(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %g\n", name, v)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
	}
	return err
}
