package obs

import (
	"fmt"
	"io"
	"strings"
)

// Span is one node of a structured execution trace. The engine emits one
// span per proved transaction (the root), one per iso(...) sub-transaction,
// one per concurrent branch of `|` that executed at least one operation,
// and one leaf per primitive operation (query, ins, del, empty, call,
// builtin). Spans are plain data: JSON-marshalable and safe to hand across
// package boundaries.
type Span struct {
	// Kind is "txn", "iso", "branch", or a primitive op name
	// ("query", "ins", "del", "empty", "call", "builtin").
	Kind string `json:"kind"`
	// Label is the human-readable payload: the goal text for a txn span,
	// the rendered atom for a leaf ("ins.account(a,90)"), or a stable
	// branch identifier ("b3") for a concurrent branch.
	Label string `json:"label,omitempty"`
	// Steps is the number of derivation steps attributed to this span
	// (root and iso spans only).
	Steps int64 `json:"steps,omitempty"`
	// Reads / Writes / Calls / Ops aggregate the leaf operations beneath
	// (and including) this span: db reads (query/empty), db writes
	// (ins/del), rule calls, and total primitive operations.
	Reads  int64 `json:"reads,omitempty"`
	Writes int64 `json:"writes,omitempty"`
	Calls  int64 `json:"calls,omitempty"`
	Ops    int64 `json:"ops,omitempty"`
	// DurUs is wall-clock duration in microseconds (set by callers that
	// time the enclosing execution; the engine itself does not read clocks).
	DurUs    int64   `json:"dur_us,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Add appends a child span.
func (s *Span) Add(child *Span) { s.Children = append(s.Children, child) }

// Count returns the number of spans in the tree rooted at s.
func (s *Span) Count() int {
	n := 1
	for _, c := range s.Children {
		n += c.Count()
	}
	return n
}

// Aggregate recomputes Reads/Writes/Calls/Ops bottom-up from the leaves.
// Leaf spans (no children) keep their own values.
func (s *Span) Aggregate() {
	if len(s.Children) == 0 {
		return
	}
	s.Reads, s.Writes, s.Calls, s.Ops = 0, 0, 0, 0
	for _, c := range s.Children {
		c.Aggregate()
		s.Reads += c.Reads
		s.Writes += c.Writes
		s.Calls += c.Calls
		s.Ops += c.Ops
	}
}

// WriteTree pretty-prints the span tree, one node per line, two-space
// indentation per level:
//
//	txn iso(transfer(1,a,b)) steps=42 reads=2 writes=2 dur=1.3ms
//	  iso steps=40 reads=2 writes=2
//	    call transfer(1,a,b)
//	    ...
func WriteTree(w io.Writer, s *Span) error {
	return writeTree(w, s, 0)
}

func writeTree(w io.Writer, s *Span, depth int) error {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Kind)
	if s.Label != "" {
		b.WriteByte(' ')
		b.WriteString(s.Label)
	}
	if s.Steps > 0 {
		fmt.Fprintf(&b, " steps=%d", s.Steps)
	}
	if len(s.Children) > 0 {
		// Aggregates are only interesting on interior nodes; a leaf's
		// kind+label already says everything.
		if s.Reads > 0 {
			fmt.Fprintf(&b, " reads=%d", s.Reads)
		}
		if s.Writes > 0 {
			fmt.Fprintf(&b, " writes=%d", s.Writes)
		}
		if s.Calls > 0 {
			fmt.Fprintf(&b, " calls=%d", s.Calls)
		}
	}
	if s.DurUs > 0 {
		fmt.Fprintf(&b, " dur=%s", formatUs(s.DurUs))
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Tree returns the WriteTree rendering as a string.
func (s *Span) Tree() string {
	var b strings.Builder
	writeTree(&b, s, 0)
	return b.String()
}

func formatUs(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
