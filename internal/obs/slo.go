package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// SLO is one latency service-level objective: "fraction Objective of
// <Name> events must complete within Threshold". Events are recorded with
// Observe; good/total counts accumulate over the process lifetime (the
// window is "since start", matching every other counter in this layer —
// windowed burn rates are a scrape-side derivation).
//
// The burn rate is the classic SRE ratio: observed bad fraction divided by
// the error budget (1 - Objective). Burn 1.0 means the budget is being
// consumed exactly as provisioned; above 1.0 the objective will be missed
// if the rate holds.
type SLO struct {
	Name      string        // event signal this objective applies to, e.g. "commit", "fsync"
	Threshold time.Duration // latency bound
	Objective float64       // required good fraction in (0, 1), e.g. 0.999

	good     atomic.Int64
	total    atomic.Int64
	inBreach atomic.Bool
}

// ParseSLOs parses a comma-separated objective list in the flag grammar
// name:threshold:objective, e.g. "commit:5ms:0.999,fsync:20ms:0.99".
// Thresholds use Go duration syntax; objectives are fractions in (0, 1).
func ParseSLOs(spec string) ([]*SLO, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []*SLO
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("slo %q: want name:threshold:objective", part)
		}
		name := strings.TrimSpace(fields[0])
		if name == "" {
			return nil, fmt.Errorf("slo %q: empty name", part)
		}
		thr, err := time.ParseDuration(fields[1])
		if err != nil || thr <= 0 {
			return nil, fmt.Errorf("slo %q: bad threshold %q", part, fields[1])
		}
		obj, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || obj <= 0 || obj >= 1 {
			return nil, fmt.Errorf("slo %q: objective must be a fraction in (0,1)", part)
		}
		out = append(out, &SLO{Name: name, Threshold: thr, Objective: obj})
	}
	return out, nil
}

// Observe records one event of duration d. It returns true exactly when
// this event pushed the SLO from compliant into breach (burn rate crossing
// above 1.0) — the caller's cue to log; repeat bad events inside an
// ongoing breach return false so the log is edge- not level-triggered.
func (s *SLO) Observe(d time.Duration) bool {
	s.total.Add(1)
	if d <= s.Threshold {
		s.good.Add(1)
	}
	breaching := s.BurnRate() > 1.0
	if breaching {
		return s.inBreach.CompareAndSwap(false, true)
	}
	s.inBreach.Store(false)
	return false
}

// Good returns the number of events within the threshold.
func (s *SLO) Good() int64 { return s.good.Load() }

// Total returns the number of observed events.
func (s *SLO) Total() int64 { return s.total.Load() }

// BurnRate returns badFraction / errorBudget; 0 when no events have been
// observed.
func (s *SLO) BurnRate() float64 {
	total := s.total.Load()
	if total == 0 {
		return 0
	}
	bad := float64(total-s.good.Load()) / float64(total)
	return bad / (1 - s.Objective)
}

// InBreach reports whether the last Observe left the burn rate above 1.0.
func (s *SLO) InBreach() bool { return s.inBreach.Load() }

// Register exposes the objective on reg as
// td_slo_good_total{slo=}/td_slo_events_total{slo=} counters and a
// td_slo_burn_rate{slo=} gauge.
func (s *SLO) Register(reg *Registry) {
	label := fmt.Sprintf("slo=%q", s.Name)
	reg.CounterFuncL("td_slo_good_total", "SLO events within their latency threshold", label, s.Good)
	reg.CounterFuncL("td_slo_events_total", "SLO events observed", label, s.Total)
	reg.GaugeFuncFL("td_slo_burn_rate", "SLO error-budget burn rate (bad fraction / budget)",
		label, func() float64 { return s.BurnRate() })
}
