package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Sink receives completed span trees. Implementations must be safe for
// concurrent use; Emit must not retain the right to mutate the span (the
// tree is immutable once emitted).
type Sink interface {
	Emit(*Span)
}

// RingSink keeps the last N emitted span trees in a ring buffer.
type RingSink struct {
	mu   sync.Mutex
	buf  []*Span
	next int
	n    int
}

// NewRingSink returns a ring sink retaining the last n spans (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]*Span, n)}
}

// Emit stores s, evicting the oldest entry when full.
func (r *RingSink) Emit(s *Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Last returns the most recently emitted span, or nil.
func (r *RingSink) Last() *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return nil
	}
	return r.buf[(r.next-1+len(r.buf))%len(r.buf)]
}

// Snapshot returns the retained spans, oldest first.
func (r *RingSink) Snapshot() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, r.n)
	start := r.next - r.n
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i+len(r.buf))%len(r.buf)])
	}
	return out
}

// JSONLSink writes each emitted span tree as one JSON object per line.
type JSONLSink struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer
}

// NewJSONLSink wraps an io.Writer; if w is also an io.Closer, Close will
// close it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// OpenJSONL opens (appending, creating if needed) a JSONL trace file.
func OpenJSONL(path string) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// Emit marshals s and appends one line. Marshal errors are swallowed: a
// tracing sink must never take down the traced system.
func (j *JSONLSink) Emit(s *Span) {
	data, err := json.Marshal(s)
	if err != nil {
		return
	}
	j.mu.Lock()
	j.w.Write(data)
	j.w.WriteByte('\n')
	j.w.Flush()
	j.mu.Unlock()
}

// Close flushes and closes the underlying writer when it is closable.
func (j *JSONLSink) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.w.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MultiSink fans out to several sinks.
type MultiSink []Sink

// Emit forwards s to every sink.
func (m MultiSink) Emit(s *Span) {
	for _, sk := range m {
		sk.Emit(s)
	}
}
