package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTree() *Span {
	root := &Span{Kind: "txn", Label: "iso(transfer(1,a,b))", Steps: 42, DurUs: 1300}
	iso := &Span{Kind: "iso", Steps: 40}
	root.Add(iso)
	iso.Add(&Span{Kind: "call", Label: "transfer(1,a,b)", Calls: 1, Ops: 1})
	br := &Span{Kind: "branch", Label: "b1"}
	iso.Add(br)
	br.Add(&Span{Kind: "query", Label: "account(a,100)", Reads: 1, Ops: 1})
	br.Add(&Span{Kind: "del", Label: "del.account(a,100)", Writes: 1, Ops: 1})
	root.Aggregate()
	return root
}

func TestSpanAggregate(t *testing.T) {
	root := sampleTree()
	if root.Reads != 1 || root.Writes != 1 || root.Calls != 1 || root.Ops != 3 {
		t.Fatalf("aggregate = reads=%d writes=%d calls=%d ops=%d",
			root.Reads, root.Writes, root.Calls, root.Ops)
	}
	if root.Count() != 6 {
		t.Fatalf("count = %d, want 6", root.Count())
	}
}

func TestWriteTree(t *testing.T) {
	out := sampleTree().Tree()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	want := []string{
		"txn iso(transfer(1,a,b)) steps=42 reads=1 writes=1 calls=1 dur=1.30ms",
		"  iso steps=40 reads=1 writes=1 calls=1",
		"    call transfer(1,a,b)",
		"    branch b1 reads=1 writes=1",
		"      query account(a,100)",
		"      del del.account(a,100)",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	root := sampleTree()
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tree() != root.Tree() {
		t.Fatalf("round trip changed tree:\n%s\nvs\n%s", back.Tree(), root.Tree())
	}
}

func TestRingSink(t *testing.T) {
	r := NewRingSink(3)
	if r.Last() != nil {
		t.Fatal("empty ring should have no last span")
	}
	for i := 0; i < 5; i++ {
		r.Emit(&Span{Kind: "txn", Label: string(rune('a' + i))})
	}
	if got := r.Last().Label; got != "e" {
		t.Fatalf("last = %q, want e", got)
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Label != "c" || snap[2].Label != "e" {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestJSONLSink(t *testing.T) {
	var b strings.Builder
	s := NewJSONLSink(&b)
	s.Emit(&Span{Kind: "txn", Label: "t1"})
	s.Emit(&Span{Kind: "txn", Label: "t2"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var sp Span
	if err := json.Unmarshal([]byte(lines[1]), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Label != "t2" {
		t.Fatalf("second line label = %q", sp.Label)
	}
}
