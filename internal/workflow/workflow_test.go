package workflow

import (
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/fragments"
	"repro/internal/parser"
	"repro/internal/sim"
)

func simpleSpec() *Spec {
	return &Spec{
		Name: "simple",
		Tasks: []Task{
			{Name: "a"},
			{Name: "b", After: []string{"a"}},
			{Name: "c", After: []string{"a"}},
			{Name: "d", After: []string{"b", "c"}},
		},
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		sub  string
	}{
		{"bad name", &Spec{Name: "Bad", Tasks: []Task{{Name: "t"}}}, "lowercase"},
		{"no tasks", &Spec{Name: "x"}, "no tasks"},
		{"dup task", &Spec{Name: "x", Tasks: []Task{{Name: "t"}, {Name: "t"}}}, "duplicate"},
		{"unknown dep", &Spec{Name: "x", Tasks: []Task{{Name: "t", After: []string{"u"}}}}, "unknown task"},
		{"cycle", &Spec{Name: "x", Tasks: []Task{
			{Name: "a", After: []string{"b"}},
			{Name: "b", After: []string{"a"}},
		}}, "cycle"},
		{"agent+sub", &Spec{Name: "x", Tasks: []Task{
			{Name: "t", AgentClass: "c", Sub: &Spec{Name: "y", Tasks: []Task{{Name: "u"}}}},
		}}, "cannot both"},
		{"dup spec", &Spec{Name: "x", Tasks: []Task{
			{Name: "t", Sub: &Spec{Name: "x", Tasks: []Task{{Name: "u"}}}},
		}}, "duplicate spec"},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.sub)
		}
	}
	if err := simpleSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestCompileParses(t *testing.T) {
	src, err := Compile(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parser.Parse(src); err != nil {
		t.Fatalf("compiled rules do not parse: %v\n%s", err, src)
	}
}

// runProver proves goal over src with the proof-theoretic engine.
func runProver(t *testing.T, src, goal string) (*engine.Result, *db.DB) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.NewDefault(prog).Prove(g, d)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	return res, d
}

func TestDiamondOrderingProver(t *testing.T) {
	src, err := Compile(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, d := runProver(t, src, "wf_simple(w1)")
	if !res.Success {
		t.Fatal("workflow failed under prover")
	}
	for _, task := range []string{"a", "b", "c", "d"} {
		if d.Count(DonePred("simple", task), 1) != 1 {
			t.Errorf("task %s not done:\n%s", task, d)
		}
	}
}

func TestDiamondOrderingSim(t *testing.T) {
	src, err := Compile(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	prog := parser.MustParse(src)
	g := parser.MustParseGoal("wf_simple(w1)", prog.VarHigh)
	res := sim.New(prog, sim.Options{Timeout: 3 * time.Second, Trace: true}).Run(g, db.New())
	if !res.Completed {
		t.Fatalf("sim failed: %v", res.Err)
	}
	// The trace must respect the dependency order: a before b and c,
	// b and c before d.
	pos := map[string]int64{}
	for _, e := range res.Events {
		if e.Op == "ins" && strings.HasPrefix(e.Atom, "done_simple_") {
			pos[strings.TrimSuffix(strings.TrimPrefix(e.Atom, "done_simple_"), "(w1)")] = e.Seq
		}
	}
	if !(pos["a"] < pos["b"] && pos["a"] < pos["c"] && pos["b"] < pos["d"] && pos["c"] < pos["d"]) {
		t.Fatalf("dependency order violated: %v", pos)
	}
}

func TestSubWorkflow(t *testing.T) {
	spec := &Spec{
		Name: "outer",
		Tasks: []Task{
			{Name: "first"},
			{Name: "nested", After: []string{"first"}, Sub: &Spec{
				Name: "inner",
				Tasks: []Task{
					{Name: "i1"},
					{Name: "i2", After: []string{"i1"}},
				},
			}},
			{Name: "last", After: []string{"nested"}},
		},
	}
	src, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, d := runProver(t, src, "wf_outer(w)")
	if !res.Success {
		t.Fatal("nested workflow failed")
	}
	for _, p := range []string{
		DonePred("outer", "first"), DonePred("outer", "nested"),
		DonePred("outer", "last"), DonePred("inner", "i1"), DonePred("inner", "i2"),
	} {
		if d.Count(p, 1) != 1 {
			t.Errorf("%s missing:\n%s", p, d)
		}
	}
}

func TestAgentAcquisitionProver(t *testing.T) {
	spec := &Spec{
		Name: "staffed",
		Tasks: []Task{
			{Name: "work", AgentClass: "tech"},
		},
	}
	rules, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := rules + AgentFacts(map[string]int{"tech": 1})
	res, d := runProver(t, src, "wf_staffed(w1), wf_staffed(w2)")
	if !res.Success {
		t.Fatal("staffed workflow failed")
	}
	if d.Count("available", 1) != 1 {
		t.Fatalf("agent not released:\n%s", d)
	}
	// Without any agents the workflow must fail.
	res2, _ := runProver(t, rules, "wf_staffed(w1)")
	if res2.Success {
		t.Fatal("workflow succeeded with empty agent pool")
	}
}

func TestDriverProcessesAllItemsSim(t *testing.T) {
	spec := simpleSpec()
	rules, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := rules + Driver(spec.Name) + ItemFacts(5)
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(DriverGoal(spec.Name), prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res := sim.New(prog, sim.Options{Timeout: 5 * time.Second}).Run(g, d)
	if !res.Completed {
		t.Fatalf("driver failed: %v", res.Err)
	}
	if n := res.Final.Count(DonePred("simple", "d"), 1); n != 5 {
		t.Fatalf("completed %d/5 items", n)
	}
}

func TestSequentialDriverIsFullyBounded(t *testing.T) {
	spec := &Spec{Name: "tiny", Tasks: []Task{{Name: "only"}}}
	rules, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := rules + SequentialDriver(spec.Name)
	prog := parser.MustParse(src)
	r := fragments.Analyze(prog)
	if r.Fragment > fragments.FullyBounded {
		t.Fatalf("sequential driver fragment = %v, want at most FullyBounded", r.Fragment)
	}
	// And the concurrent Driver is full TD (recursion under |).
	src2 := rules + Driver(spec.Name)
	prog2 := parser.MustParse(src2)
	r2 := fragments.Analyze(prog2)
	if r2.Fragment != fragments.Full {
		t.Fatalf("concurrent driver fragment = %v, want Full", r2.Fragment)
	}
	if !r2.Features.RecursionUnderConc {
		t.Fatalf("driver recursion under | missed: %+v", r2.Features)
	}
}

func TestSequentialDriverRuns(t *testing.T) {
	spec := simpleSpec()
	rules, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := rules + SequentialDriver(spec.Name) + ItemFacts(4)
	res, d := runProver(t, src, SequentialDriverGoal(spec.Name))
	if !res.Success {
		t.Fatal("sequential driver failed under prover")
	}
	if n := d.Count(DonePred("simple", "d"), 1); n != 4 {
		t.Fatalf("completed %d/4 items", n)
	}
}

func TestGenomeLabSimulation(t *testing.T) {
	cfg := DefaultLab(6)
	src, goal, err := LabSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("lab source does not parse: %v", err)
	}
	g := parser.MustParseGoal(goal, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	total := cfg.Technicians + cfg.Thermocyclers + cfg.GelRigs + cfg.Cameras + cfg.Analysts
	res := sim.New(prog, sim.Options{
		Timeout:  10 * time.Second,
		Shuffle:  true,
		Seed:     42,
		Monitors: []sim.MonitorFunc{AgentCapacityMonitor(total)},
	}).Run(g, d)
	if !res.Completed {
		t.Fatalf("lab run failed: %v", res.Err)
	}
	if err := CheckLabRun(cfg, res.Final); err != nil {
		t.Fatalf("lab invariants: %v\n%s", err, res.Final)
	}
}

func TestGenomeLabContention(t *testing.T) {
	// One of everything: heavy contention, still must complete.
	cfg := LabConfig{Samples: 4, Technicians: 1, Thermocyclers: 1, GelRigs: 1, Cameras: 1, Analysts: 1}
	src, goal, err := LabSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(goal, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res := sim.New(prog, sim.Options{Timeout: 10 * time.Second, Seed: 7, Shuffle: true}).Run(g, d)
	if !res.Completed {
		t.Fatalf("contended lab failed: %v", res.Err)
	}
	if err := CheckLabRun(cfg, res.Final); err != nil {
		t.Fatal(err)
	}
}

func TestAgentFactsDeterministic(t *testing.T) {
	a := AgentFacts(map[string]int{"x": 2, "a": 1})
	b := AgentFacts(map[string]int{"a": 1, "x": 2})
	if a != b {
		t.Fatal("AgentFacts output depends on map order")
	}
	if !strings.Contains(a, "agent(a1).") || !strings.Contains(a, "available(x2).") {
		t.Fatalf("AgentFacts content wrong:\n%s", a)
	}
}

func TestQualifyAndItemFacts(t *testing.T) {
	if got := Qualify("bob", "taskx"); got != "qualified(bob, taskx).\n" {
		t.Errorf("Qualify = %q", got)
	}
	items := ItemFacts(3)
	for _, want := range []string{"newitem(item1).", "newitem(item2).", "newitem(item3)."} {
		if !strings.Contains(items, want) {
			t.Errorf("ItemFacts missing %s", want)
		}
	}
}

func TestOneOfChoice(t *testing.T) {
	spec := &Spec{
		Name: "routed",
		Tasks: []Task{
			{Name: "triage"},
			{Name: "handle", After: []string{"triage"}, OneOf: []*Spec{
				{Name: "fastpath", Tasks: []Task{{Name: "quick"}}},
				{Name: "slowpath", Tasks: []Task{{Name: "deep"}, {Name: "review", After: []string{"deep"}}}},
			}},
			{Name: "close", After: []string{"handle"}},
		},
	}
	src, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, d := runProver(t, src, "wf_routed(w)")
	if !res.Success {
		t.Fatal("choice workflow failed")
	}
	// Exactly one alternative was taken.
	fast := d.Count(DonePred("fastpath", "quick"), 1)
	slow := d.Count(DonePred("slowpath", "review"), 1)
	if fast+slow != 1 {
		t.Fatalf("alternatives taken: fast=%d slow=%d:\n%s", fast, slow, d)
	}
	if d.Count("chose_routed_handle", 2) != 1 {
		t.Fatalf("choice record missing:\n%s", d)
	}
	if d.Count(DonePred("routed", "close"), 1) != 1 {
		t.Fatal("close did not run after choice")
	}
}

func TestOneOfChoiceSim(t *testing.T) {
	spec := &Spec{
		Name: "routed2",
		Tasks: []Task{
			{Name: "pick", OneOf: []*Spec{
				{Name: "left", Tasks: []Task{{Name: "l1"}}},
				{Name: "right", Tasks: []Task{{Name: "r1"}}},
			}},
		},
	}
	src, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	prog := parser.MustParse(src)
	g := parser.MustParseGoal("wf_routed2(w)", prog.VarHigh)
	tookLeft, tookRight := false, false
	for seed := int64(0); seed < 12; seed++ {
		res := sim.New(prog, sim.Options{Timeout: 2 * time.Second, Seed: seed, Shuffle: true}).Run(g, db.New())
		if !res.Completed {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		l := res.Final.Count(DonePred("left", "l1"), 1)
		r := res.Final.Count(DonePred("right", "r1"), 1)
		if l+r != 1 {
			t.Fatalf("seed %d: l=%d r=%d", seed, l, r)
		}
		tookLeft = tookLeft || l == 1
		tookRight = tookRight || r == 1
	}
	if !tookLeft || !tookRight {
		t.Fatalf("shuffled choice never varied: left=%v right=%v", tookLeft, tookRight)
	}
}

func TestOneOfValidation(t *testing.T) {
	bad := &Spec{Name: "x", Tasks: []Task{{
		Name: "t", AgentClass: "c",
		OneOf: []*Spec{{Name: "y", Tasks: []Task{{Name: "u"}}}},
	}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("OneOf+AgentClass accepted")
	}
}

func TestDotRendersValidStructure(t *testing.T) {
	dot, err := Dot(GenomeSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"digraph workflow {",
		`subgraph "cluster_mapping"`,
		`subgraph "cluster_gel"`,
		`"mapping.prep" -> "mapping.digest";`,
		`"gel.run" -> "gel.photo";`,
		"[technician]",
		"style=dotted", // container task tied to sub-workflow entry
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}

func TestDotChoiceEdges(t *testing.T) {
	spec := &Spec{Name: "r", Tasks: []Task{
		{Name: "pick", OneOf: []*Spec{
			{Name: "l", Tasks: []Task{{Name: "l1"}}},
			{Name: "rr", Tasks: []Task{{Name: "r1"}}},
		}},
	}}
	dot, err := Dot(spec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(dot, `label="or"`) != 2 {
		t.Fatalf("expected two alternative edges:\n%s", dot)
	}
	if !strings.Contains(dot, "shape=diamond") {
		t.Fatalf("choice node not diamond:\n%s", dot)
	}
}

func TestDotRejectsInvalidSpec(t *testing.T) {
	if _, err := Dot(&Spec{Name: "x"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestBuildSource(t *testing.T) {
	spec := simpleSpec()
	src, goal, err := BuildSource(spec, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	prog := parser.MustParse(src)
	g := parser.MustParseGoal(goal, prog.VarHigh)
	d, _ := db.FromFacts(prog.Facts)
	res := sim.New(prog, sim.Options{Timeout: 5 * time.Second}).Run(g, d)
	if !res.Completed {
		t.Fatalf("built program failed: %v", res.Err)
	}
	if res.Final.Count(DonePred("simple", "d"), 1) != 3 {
		t.Fatal("items incomplete")
	}
	if _, _, err := BuildSource(&Spec{Name: "Bad"}, nil, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
