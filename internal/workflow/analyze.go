package workflow

import (
	"fmt"
	"strings"
)

// The analyze stage of the genome workload produces results that are
// "queried by analysis programs, but never deleted or altered". This file
// generates that read-only analysis workload: per-sample readings plus a
// naive hot-sample rule written in the textual order an analyst would —
// scan the readings, filter by threshold, then join back to the sample.
// It is the reference workload for the tdplan phase (BenchmarkProverPlanned):
// invoked with the sample bound, the planned order starts from the
// first-arg-indexed sample_reading lookup instead of the full reading
// scan, while the answers are identical by construction.

// AnalyzeConfig sizes a generated analysis workload.
type AnalyzeConfig struct {
	// Samples is the number of work items with recorded readings.
	Samples int
	// ReadingsPer is the number of readings recorded per sample.
	ReadingsPer int
	// HotEvery makes every HotEvery-th sample hot (one reading over the
	// threshold). Samples not divisible by HotEvery are entirely cold, so
	// a query against one is an exhaustive (worst-case) search under any
	// literal order. 0 means no sample is hot.
	HotEvery int
}

// DefaultAnalyze returns a lab-sized analysis workload: n samples, 8
// readings each, every 4th sample hot.
func DefaultAnalyze(n int) AnalyzeConfig {
	return AnalyzeConfig{Samples: n, ReadingsPer: 8, HotEvery: 4}
}

// AnalyzeSource renders the analysis program: reading facts, the
// sample→reading ownership relation, and the naive hot/1 rule. Reading
// values are deterministic in (sample, reading) position; hot samples get
// value 901+sample on their last reading, everything else stays below
// 900.
func AnalyzeSource(cfg AnalyzeConfig) string {
	var b strings.Builder
	b.WriteString("% generated analysis workload: readings are appended, never altered\n")
	for s := 1; s <= cfg.Samples; s++ {
		for r := 1; r <= cfg.ReadingsPer; r++ {
			id := (s-1)*cfg.ReadingsPer + r
			fmt.Fprintf(&b, "sample_reading(s%d, r%d).\n", s, id)
			v := (id*37)%800 + 50 // always below the 900 threshold
			if cfg.HotEvery > 0 && s%cfg.HotEvery == 0 && r == cfg.ReadingsPer {
				v = 901 + s
			}
			fmt.Fprintf(&b, "reading(r%d, %d).\n", id, v)
		}
	}
	b.WriteString("hot(W) :- reading(R, V), V > 900, sample_reading(W, R).\n")
	return b.String()
}

// ColdSample returns the name of a sample AnalyzeSource guarantees has no
// hot reading — a ground hot/1 call against it fails only after the
// search is exhausted.
func ColdSample(cfg AnalyzeConfig) string {
	for s := cfg.Samples; s >= 1; s-- {
		if cfg.HotEvery == 0 || s%cfg.HotEvery != 0 {
			return fmt.Sprintf("s%d", s)
		}
	}
	return "s0" // no such sample: every configured sample is hot
}

// HotSample returns the name of a sample AnalyzeSource made hot, or "" if
// none is.
func HotSample(cfg AnalyzeConfig) string {
	if cfg.HotEvery <= 0 || cfg.HotEvery > cfg.Samples {
		return ""
	}
	return fmt.Sprintf("s%d", cfg.HotEvery)
}
