package workflow

// Cross-validation of the two execution models: randomly generated
// workflow specifications are executed by the proof-theoretic engine
// (backtracking over interleavings) and by the operational simulator
// (goroutines, blocking reads, committed choice). For these generated
// programs both models must agree on committability, and on success both
// must produce exactly one history tuple per task.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/sim"
)

// randomSpec builds a random DAG workflow with nTasks tasks; edges only go
// from lower to higher indexes, so it is acyclic by construction. With
// agents=true, some tasks demand an agent of class "tech".
func randomSpec(r *rand.Rand, nTasks int, agents bool) *Spec {
	s := &Spec{Name: "rnd"}
	for i := 0; i < nTasks; i++ {
		t := Task{Name: fmt.Sprintf("t%d", i)}
		for j := 0; j < i; j++ {
			if r.Intn(3) == 0 {
				t.After = append(t.After, fmt.Sprintf("t%d", j))
			}
		}
		if agents && r.Intn(2) == 0 {
			t.AgentClass = "tech"
		}
		s.Tasks = append(s.Tasks, t)
	}
	return s
}

func TestCrossValidationRandomWorkflows(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow-ish")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nTasks := 2 + r.Intn(4)
		withAgents := r.Intn(2) == 0
		spec := randomSpec(r, nTasks, withAgents)
		rules, err := Compile(spec)
		if err != nil {
			return false
		}
		src := rules
		if withAgents {
			src += AgentFacts(map[string]int{"tech": 1 + r.Intn(2)})
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return false
		}
		goal := parser.MustParseGoal("wf_rnd(w1)", prog.VarHigh)

		// Prover.
		dP, _ := db.FromFacts(prog.Facts)
		resP, err := engine.NewDefault(prog).Prove(goal, dP)
		if err != nil {
			return false
		}

		// Simulator.
		dS, _ := db.FromFacts(prog.Facts)
		resS := sim.New(prog, sim.Options{
			Timeout: 5 * time.Second, Seed: seed, Shuffle: true,
		}).Run(goal, dS)

		if resP.Success != resS.Completed {
			t.Logf("seed %d: prover=%v simulator=%v (err %v)\n%s", seed, resP.Success, resS.Completed, resS.Err, src)
			return false
		}
		if !resP.Success {
			return true
		}
		// Both succeeded: identical task histories (one tuple per task).
		for _, task := range spec.Tasks {
			p := DonePred("rnd", task.Name)
			if dP.Count(p, 1) != 1 || resS.Final.Count(p, 1) != 1 {
				t.Logf("seed %d: history mismatch for %s", seed, p)
				return false
			}
		}
		// Agents all returned.
		if withAgents && dP.Count("available", 1) != resS.Final.Count("available", 1) {
			t.Logf("seed %d: agent pools differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidationAgentStarvation(t *testing.T) {
	// A task needing an agent class with an EMPTY pool: the prover must
	// report failure; the simulator must deadlock — agreement on
	// non-committability.
	spec := &Spec{Name: "starve", Tasks: []Task{{Name: "only", AgentClass: "ghost"}}}
	rules, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	prog := parser.MustParse(rules)
	goal := parser.MustParseGoal("wf_starve(w1)", prog.VarHigh)

	dP := db.New()
	resP, err := engine.NewDefault(prog).Prove(goal, dP)
	if err != nil {
		t.Fatal(err)
	}
	if resP.Success {
		t.Fatal("prover committed without agents")
	}
	resS := sim.New(prog, sim.Options{Timeout: 2 * time.Second}).Run(goal, db.New())
	if resS.Completed {
		t.Fatal("simulator completed without agents")
	}
}

func TestCrossValidationDriverLoop(t *testing.T) {
	// The Example 3.2 driver over a random spec and a handful of items:
	// prover and simulator agree and process everything.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		spec := randomSpec(r, 2+r.Intn(3), false)
		rules, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		items := 2 + r.Intn(3)
		src := rules + Driver(spec.Name) + ItemFacts(items)
		prog := parser.MustParse(src)
		goal := parser.MustParseGoal(DriverGoal(spec.Name), prog.VarHigh)

		dP, _ := db.FromFacts(prog.Facts)
		resP, err := engine.NewDefault(prog).Prove(goal, dP)
		if err != nil {
			t.Fatal(err)
		}
		dS, _ := db.FromFacts(prog.Facts)
		resS := sim.New(prog, sim.Options{Timeout: 5 * time.Second, Seed: int64(trial), Shuffle: true}).Run(goal, dS)

		if !resP.Success || !resS.Completed {
			t.Fatalf("trial %d: prover=%v sim=%v (%v)", trial, resP.Success, resS.Completed, resS.Err)
		}
		last := DonePred("rnd", spec.Tasks[len(spec.Tasks)-1].Name)
		if dP.Count(last, 1) != items || resS.Final.Count(last, 1) != items {
			t.Fatalf("trial %d: processed %d/%d (prover) %d/%d (sim)",
				trial, dP.Count(last, 1), items, resS.Final.Count(last, 1), items)
		}
	}
}
