package workflow

import (
	"fmt"
	"strings"

	"repro/internal/db"
)

// This file synthesizes the genome-laboratory workload that motivates the
// paper (the Whitehead Institute/MIT Center for Genome Research workflows
// [25, 26, 73]): plates of DNA samples flow through a factory-like
// production line of experimental steps, each step needs a qualified agent
// (a machine or technician), experimental results accumulate in the
// database and are "queried by analysis programs, but never deleted or
// altered", and the mapping workflow consists of cooperating sub-workflows
// that synchronize through shared data. The real LabFlow-1 benchmark and
// LIMS are proprietary lab infrastructure; this generator preserves the
// behaviours the paper leans on: high item volume, shared agents, nested
// sub-workflows, and database-mediated synchronization.

// GenomeSpec returns the laboratory mapping workflow:
//
//	prep → digest → gel (sub-workflow: load → run → photo) → analyze
//
// with agent classes: technician (prep, load), thermocycler (digest),
// gel_rig (run), camera (photo), analyst (analyze).
func GenomeSpec() *Spec {
	gel := &Spec{
		Name: "gel",
		Tasks: []Task{
			{Name: "load", AgentClass: "technician"},
			{Name: "run", After: []string{"load"}, AgentClass: "gel_rig"},
			{Name: "photo", After: []string{"run"}, AgentClass: "camera"},
		},
	}
	return &Spec{
		Name: "mapping",
		Tasks: []Task{
			{Name: "prep", AgentClass: "technician"},
			{Name: "digest", After: []string{"prep"}, AgentClass: "thermocycler"},
			{Name: "gelstep", After: []string{"digest"}, Sub: gel},
			{Name: "analyze", After: []string{"gelstep"}, AgentClass: "analyst"},
		},
	}
}

// LabConfig sizes a generated laboratory workload.
type LabConfig struct {
	Samples       int // work items flowing through the line
	Technicians   int
	Thermocyclers int
	GelRigs       int
	Cameras       int
	Analysts      int
}

// DefaultLab is a small but contended laboratory.
func DefaultLab(samples int) LabConfig {
	return LabConfig{
		Samples:       samples,
		Technicians:   2,
		Thermocyclers: 1,
		GelRigs:       1,
		Cameras:       1,
		Analysts:      2,
	}
}

// LabSource renders the full TD program for the genome workload: workflow
// rules, the Driver loop, agent pool, and the sample feed. The returned
// goal runs the whole laboratory.
func LabSource(cfg LabConfig) (src, goal string, err error) {
	spec := GenomeSpec()
	rules, err := Compile(spec)
	if err != nil {
		return "", "", err
	}
	var b strings.Builder
	b.WriteString(rules)
	b.WriteString(Driver(spec.Name))
	b.WriteString(AgentFacts(map[string]int{
		"technician":   cfg.Technicians,
		"thermocycler": cfg.Thermocyclers,
		"gel_rig":      cfg.GelRigs,
		"camera":       cfg.Cameras,
		"analyst":      cfg.Analysts,
	}))
	b.WriteString(ItemFacts(cfg.Samples))
	return b.String(), DriverGoal(spec.Name), nil
}

// CheckLabRun verifies the invariants of a finished laboratory run against
// the final database: every sample fully processed, all agents back in the
// pool, and nothing left mid-flight.
func CheckLabRun(cfg LabConfig, final *db.DB) error {
	spec := GenomeSpec()
	for _, task := range []string{"prep", "digest", "gelstep", "analyze"} {
		if n := final.Count(DonePred(spec.Name, task), 1); n != cfg.Samples {
			return fmt.Errorf("lab: %s completed for %d/%d samples", task, n, cfg.Samples)
		}
	}
	for _, task := range []string{"load", "run", "photo"} {
		if n := final.Count(DonePred("gel", task), 1); n != cfg.Samples {
			return fmt.Errorf("lab: gel %s completed for %d/%d samples", task, n, cfg.Samples)
		}
	}
	if n := final.Count("newitem", 1); n != 0 {
		return fmt.Errorf("lab: %d samples never entered the line", n)
	}
	if n := final.Count("doing", 3); n != 0 {
		return fmt.Errorf("lab: %d tasks still mid-flight", n)
	}
	total := cfg.Technicians + cfg.Thermocyclers + cfg.GelRigs + cfg.Cameras + cfg.Analysts
	if n := final.Count("available", 1); n != total {
		return fmt.Errorf("lab: %d/%d agents back in the pool", n, total)
	}
	return nil
}

// AgentCapacityMonitor builds a simulator monitor asserting that at most
// max agents are ever simultaneously busy (the Example 3.3 invariant:
// agents are a shared resource "limiting the number of instances that can
// be active at one time").
func AgentCapacityMonitor(max int) func(d *db.DB) error {
	return func(d *db.DB) error {
		if n := d.Count("doing", 3); n > max {
			return fmt.Errorf("%d agents busy, pool holds %d", n, max)
		}
		return nil
	}
}
