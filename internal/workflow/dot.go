package workflow

import (
	"fmt"
	"strings"
)

// Dot renders the workflow (and its nested sub-workflows) as a Graphviz
// digraph: tasks as nodes, dependencies as edges, sub-workflows as
// clusters, exclusive choices as dashed edges to each alternative.
// Visualizing the task graph is part of the monitoring story production
// workflow systems need.
func Dot(s *Spec) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("digraph workflow {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	writeDotSpec(&b, s, "  ")
	b.WriteString("}\n")
	return b.String(), nil
}

func dotNode(spec, task string) string { return fmt.Sprintf("%q", spec+"."+task) }

func writeDotSpec(b *strings.Builder, s *Spec, indent string) {
	fmt.Fprintf(b, "%ssubgraph \"cluster_%s\" {\n", indent, s.Name)
	fmt.Fprintf(b, "%s  label=%q;\n", indent, s.Name)
	inner := indent + "  "
	for _, t := range s.Tasks {
		label := t.Name
		attrs := ""
		if t.AgentClass != "" {
			label += "\\n[" + t.AgentClass + "]"
		}
		switch {
		case t.Sub != nil:
			attrs = ", style=rounded"
		case len(t.OneOf) > 0:
			attrs = ", shape=diamond"
		}
		fmt.Fprintf(b, "%s%s [label=\"%s\"%s];\n", inner, dotNode(s.Name, t.Name), label, attrs)
	}
	for _, t := range s.Tasks {
		for _, dep := range t.After {
			fmt.Fprintf(b, "%s%s -> %s;\n", inner, dotNode(s.Name, dep), dotNode(s.Name, t.Name))
		}
	}
	for _, t := range s.Tasks {
		if t.Sub != nil {
			writeDotSpec(b, t.Sub, inner)
			// Tie the container task to its sub-workflow entry tasks.
			for _, st := range entryTasks(t.Sub) {
				fmt.Fprintf(b, "%s%s -> %s [style=dotted];\n", inner, dotNode(s.Name, t.Name), dotNode(t.Sub.Name, st))
			}
		}
		for _, alt := range t.OneOf {
			writeDotSpec(b, alt, inner)
			for _, st := range entryTasks(alt) {
				fmt.Fprintf(b, "%s%s -> %s [style=dashed, label=\"or\"];\n", inner, dotNode(s.Name, t.Name), dotNode(alt.Name, st))
			}
		}
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

// entryTasks returns the tasks of s with no dependencies.
func entryTasks(s *Spec) []string {
	var out []string
	for _, t := range s.Tasks {
		if len(t.After) == 0 {
			out = append(out, t.Name)
		}
	}
	return out
}
