// Package workflow is the modeling layer the paper's Section 3 sketches:
// production workflows over work items, built from tasks with ordering
// dependencies, shared agent pools, and sub-workflows, compiled into
// Transaction Datalog rules.
//
// The compilation follows the paper's idiom:
//
//   - each task records its completion in a history relation done_<task>(W)
//     — "keeping track of work that has been performed ... allows for
//     monitoring, tracking and querying the status of workflow activities"
//     (Example 3.3);
//   - a task's rule begins by querying the completion tuples of its
//     predecessors, so under the blocking simulator a task simply waits for
//     its inputs, and under the proof-theoretic engine only interleavings
//     respecting the dependency order succeed (Example 3.1);
//   - a task needing an agent of some class performs the atomic
//     test-and-consume available(A) ⊗ del.available(A) against the shared
//     pool, and releases the agent when done (Example 3.3);
//   - a workflow is the concurrent composition of its task processes, one
//     per task, all over the same work item;
//   - sub-workflows nest (Example 3.1), and Driver builds the recursive
//     work-item loop of Example 3.2 (simulate :- ... (workflow | simulate)).
package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// Task is one activity in a workflow.
type Task struct {
	// Name must be a lowercase identifier, unique within the Spec.
	Name string
	// After lists tasks (by name, within the same Spec) that must complete
	// before this one starts.
	After []string
	// AgentClass, when non-empty, requires an available agent of the class
	// for the duration of the task.
	AgentClass string
	// Sub, when non-nil, makes this task a nested sub-workflow; it
	// completes when the sub-workflow completes.
	Sub *Spec
	// OneOf, when non-empty, makes this task an exclusive choice
	// (XOR-split) between alternative sub-workflows: the task completes
	// when ANY alternative completes. In TD this is simply one rule per
	// alternative — disjunction by multiple rules. Mutually exclusive with
	// Sub and AgentClass.
	OneOf []*Spec
}

// Spec is a workflow definition.
type Spec struct {
	// Name must be a lowercase identifier, unique across nested specs.
	Name  string
	Tasks []Task
}

// Validate checks names, uniqueness, dependency references, and acyclicity.
func (s *Spec) Validate() error {
	return s.validate(map[string]bool{})
}

func (s *Spec) validate(seenSpecs map[string]bool) error {
	if !identOK(s.Name) {
		return fmt.Errorf("workflow: spec name %q is not a lowercase identifier", s.Name)
	}
	if seenSpecs[s.Name] {
		return fmt.Errorf("workflow: duplicate spec name %q", s.Name)
	}
	seenSpecs[s.Name] = true
	if len(s.Tasks) == 0 {
		return fmt.Errorf("workflow %s: no tasks", s.Name)
	}
	byName := make(map[string]*Task, len(s.Tasks))
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if !identOK(t.Name) {
			return fmt.Errorf("workflow %s: task name %q is not a lowercase identifier", s.Name, t.Name)
		}
		if _, dup := byName[t.Name]; dup {
			return fmt.Errorf("workflow %s: duplicate task %q", s.Name, t.Name)
		}
		byName[t.Name] = t
		if t.AgentClass != "" && !identOK(t.AgentClass) {
			return fmt.Errorf("workflow %s: agent class %q is not a lowercase identifier", s.Name, t.AgentClass)
		}
		if t.AgentClass != "" && t.Sub != nil {
			return fmt.Errorf("workflow %s: task %s cannot both need an agent and be a sub-workflow", s.Name, t.Name)
		}
		if len(t.OneOf) > 0 && (t.Sub != nil || t.AgentClass != "") {
			return fmt.Errorf("workflow %s: task %s: OneOf excludes Sub and AgentClass", s.Name, t.Name)
		}
	}
	for _, t := range s.Tasks {
		for _, dep := range t.After {
			if _, ok := byName[dep]; !ok {
				return fmt.Errorf("workflow %s: task %s depends on unknown task %q", s.Name, t.Name, dep)
			}
		}
	}
	if err := s.checkAcyclic(byName); err != nil {
		return err
	}
	for _, t := range s.Tasks {
		if t.Sub != nil {
			if err := t.Sub.validate(seenSpecs); err != nil {
				return err
			}
		}
		for _, alt := range t.OneOf {
			if err := alt.validate(seenSpecs); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Spec) checkAcyclic(byName map[string]*Task) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(s.Tasks))
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("workflow %s: dependency cycle through task %s", s.Name, name)
		case black:
			return nil
		}
		color[name] = gray
		for _, dep := range byName[name].After {
			if err := visit(dep); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for _, t := range s.Tasks {
		if err := visit(t.Name); err != nil {
			return err
		}
	}
	return nil
}

func identOK(s string) bool {
	if s == "" || !(s[0] >= 'a' && s[0] <= 'z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

// DonePred returns the history predicate recording completion of task in
// spec ("done_<spec>_<task>"); it has one argument, the work item.
func DonePred(spec, task string) string { return "done_" + spec + "_" + task }

// FlowPred returns the predicate that runs a whole workflow instance
// ("wf_<spec>"), with the work item as its argument.
func FlowPred(spec string) string { return "wf_" + spec }

// Compile renders the TD rulebase for s (and its nested sub-workflows).
func Compile(s *Spec) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	compileSpec(&b, s)
	return b.String(), nil
}

func compileSpec(b *strings.Builder, s *Spec) {
	fmt.Fprintf(b, "%% workflow %s\n", s.Name)

	// The workflow process: all tasks run concurrently; each waits for its
	// dependencies through the history relation.
	var parts []string
	for _, t := range s.Tasks {
		parts = append(parts, fmt.Sprintf("task_%s_%s(W)", s.Name, t.Name))
	}
	fmt.Fprintf(b, "%s(W) :- %s.\n", FlowPred(s.Name), strings.Join(parts, " | "))

	for _, t := range s.Tasks {
		var body []string
		deps := append([]string(nil), t.After...)
		sort.Strings(deps)
		for _, dep := range deps {
			body = append(body, fmt.Sprintf("%s(W)", DonePred(s.Name, dep)))
		}
		if len(t.OneOf) > 0 {
			// Exclusive choice: one rule per alternative — disjunction by
			// multiple rules, resolved nondeterministically by the prover
			// and by committed guarded choice in the simulator.
			for _, alt := range t.OneOf {
				parts := append(append([]string(nil), body...),
					fmt.Sprintf("%s(W)", FlowPred(alt.Name)),
					fmt.Sprintf("ins.%s(W)", DonePred(s.Name, t.Name)),
					fmt.Sprintf("ins.chose_%s_%s(W, %s)", s.Name, t.Name, alt.Name),
				)
				fmt.Fprintf(b, "task_%s_%s(W) :- %s.\n", s.Name, t.Name, strings.Join(parts, ", "))
			}
			continue
		}
		switch {
		case t.Sub != nil:
			body = append(body,
				fmt.Sprintf("%s(W)", FlowPred(t.Sub.Name)),
				fmt.Sprintf("ins.%s(W)", DonePred(s.Name, t.Name)),
			)
		case t.AgentClass != "":
			body = append(body,
				fmt.Sprintf("qualified(A, %s)", t.AgentClass),
				"available(A)",
				"del.available(A)",
				fmt.Sprintf("ins.doing(A, W, %s)", t.Name),
				fmt.Sprintf("ins.%s(W)", DonePred(s.Name, t.Name)),
				fmt.Sprintf("del.doing(A, W, %s)", t.Name),
				"ins.available(A)",
			)
		default:
			body = append(body, fmt.Sprintf("ins.%s(W)", DonePred(s.Name, t.Name)))
		}
		fmt.Fprintf(b, "task_%s_%s(W) :- %s.\n", s.Name, t.Name, strings.Join(body, ", "))
	}
	b.WriteString("\n")
	for _, t := range s.Tasks {
		if t.Sub != nil {
			compileSpec(b, t.Sub)
		}
		for _, alt := range t.OneOf {
			compileSpec(b, alt)
		}
	}
}

// Driver renders the Example 3.2 simulation loop for spec: a recursive
// process that takes work items from newitem/1, spawning a concurrent
// workflow instance per item, terminating when the feed is empty.
//
//	sim_<spec> :- newitem(X), del.newitem(X), (wf_<spec>(X) | sim_<spec>).
//	sim_<spec> :- empty.newitem.
func Driver(spec string) string {
	return fmt.Sprintf(
		"sim_%[1]s :- newitem(X), del.newitem(X), (%[2]s(X) | sim_%[1]s).\nsim_%[1]s :- empty.newitem.\n",
		spec, FlowPred(spec))
}

// DriverGoal is the goal that runs the Driver loop.
func DriverGoal(spec string) string { return "sim_" + spec }

// SequentialDriver renders the fully bounded variant of the loop: work
// items are processed one after another by sequential tail recursion —
// the paper's Section 5 iteration, with no process creation outside the
// loop body.
func SequentialDriver(spec string) string {
	return fmt.Sprintf(
		"siter_%[1]s :- newitem(X), del.newitem(X), %[2]s(X), siter_%[1]s.\nsiter_%[1]s :- empty.newitem.\n",
		spec, FlowPred(spec))
}

// SequentialDriverGoal is the goal that runs the SequentialDriver loop.
func SequentialDriverGoal(spec string) string { return "siter_" + spec }

// AgentFacts renders an agent pool: for each class, agents named
// <class>1..<class>n, all qualified for that class and initially available.
// Extra qualification pairs may be added with Qualify.
func AgentFacts(classes map[string]int) string {
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, c := range names {
		for i := 1; i <= classes[c]; i++ {
			fmt.Fprintf(&b, "agent(%s%d).\n", c, i)
			fmt.Fprintf(&b, "qualified(%s%d, %s).\n", c, i, c)
			fmt.Fprintf(&b, "available(%s%d).\n", c, i)
		}
	}
	return b.String()
}

// Qualify renders an extra qualification fact.
func Qualify(agent, class string) string {
	return fmt.Sprintf("qualified(%s, %s).\n", agent, class)
}

// ItemFacts renders a work-item feed item1..itemN for the Driver loop.
func ItemFacts(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "newitem(item%d).\n", i)
	}
	return b.String()
}

// BuildSource assembles a complete TD program for spec: compiled rules,
// the concurrent Driver loop, an agent pool, and a work-item feed. It is
// the string-assembly helper behind LabSource, exposed for custom specs.
func BuildSource(spec *Spec, agentPools map[string]int, items int) (src, goal string, err error) {
	rules, err := Compile(spec)
	if err != nil {
		return "", "", err
	}
	var b strings.Builder
	b.WriteString(rules)
	b.WriteString(Driver(spec.Name))
	if len(agentPools) > 0 {
		b.WriteString(AgentFacts(agentPools))
	}
	b.WriteString(ItemFacts(items))
	return b.String(), DriverGoal(spec.Name), nil
}
