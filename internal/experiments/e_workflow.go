package experiments

import (
	"fmt"
	"time"

	"repro/internal/complexity"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// E3WorkflowSpec — Example 3.1: a workflow made of tasks and a
// sub-workflow, with ordering enforced through the history relations. The
// prover verifies every execution respects dependencies; the table lists
// the task history of a witness execution.
func E3WorkflowSpec(cfg Config) Report {
	r := Report{ID: "E3", Title: "Example 3.1: workflow specification (tasks + sub-workflow)", Pass: true}
	spec := workflow.GenomeSpec()
	rules, err := workflow.Compile(spec)
	if err != nil {
		return failed(r, err)
	}
	src := rules + workflow.AgentFacts(map[string]int{
		"technician": 2, "thermocycler": 1, "gel_rig": 1, "camera": 1, "analyst": 1,
	})
	res, d, err := prove(src, "wf_mapping(item1)", defaultOpts())
	if err != nil {
		return failed(r, err)
	}
	if !res.Success {
		r.Pass = false
		r.Notes = append(r.Notes, "workflow did not commit")
	}
	tab := complexity.NewTable("witness history", "history relation", "tuples")
	for _, p := range []string{
		workflow.DonePred("mapping", "prep"), workflow.DonePred("mapping", "digest"),
		workflow.DonePred("mapping", "gelstep"), workflow.DonePred("mapping", "analyze"),
		workflow.DonePred("gel", "load"), workflow.DonePred("gel", "run"),
		workflow.DonePred("gel", "photo"),
	} {
		n := d.Count(p, 1)
		tab.AddRow(p, n)
		if n != 1 {
			r.Pass = false
		}
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes, fmt.Sprintf("prover steps: %d", res.Stats.Steps))
	// A task must not be able to run before its predecessors.
	res2, _, err := prove(src, "task_mapping_analyze(item1)", defaultOpts())
	if err != nil {
		return failed(r, err)
	}
	if res2.Success {
		r.Pass = false
		r.Notes = append(r.Notes, "analyze ran before gelstep completed")
	}
	return r
}

// E4Simulation — Example 3.2: simulating a workflow that spawns a
// concurrent instance per work item, with the environment as just another
// process. Measured on the operational simulator; cost and process count
// scale linearly with the item stream.
func E4Simulation(cfg Config) Report {
	r := Report{ID: "E4", Title: "Example 3.2: workflow simulation (recursive spawning + environment)", Pass: true}
	spec := workflow.GenomeSpec()
	rules, err := workflow.Compile(spec)
	if err != nil {
		return failed(r, err)
	}
	sizes := pick(cfg.Quick, []int{2, 4, 8}, []int{2, 4, 8, 16, 32})
	series := complexity.Sweep("items through the lab", sizes, func(n int) (float64, map[string]float64) {
		cfgLab := workflow.DefaultLab(n)
		src := rules + workflow.Driver(spec.Name) +
			workflow.AgentFacts(map[string]int{
				"technician": cfgLab.Technicians, "thermocycler": cfgLab.Thermocyclers,
				"gel_rig": cfgLab.GelRigs, "camera": cfgLab.Cameras, "analyst": cfgLab.Analysts,
			}) + workflow.ItemFacts(n)
		res, err := simulate(src, workflow.DriverGoal(spec.Name), simOpts())
		if err != nil || !res.Completed {
			r.Pass = false
			return 0, nil
		}
		if err := workflow.CheckLabRun(cfgLab, res.Final); err != nil {
			r.Pass = false
			r.Notes = append(r.Notes, err.Error())
		}
		return float64(res.Ops), map[string]float64{"processes": float64(res.Spawned)}
	})
	fit := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "fit: "+fit.Classify())
	if !fit.LooksPolynomial() || fit.PolyDegree > 1.7 {
		r.Pass = false
		r.Notes = append(r.Notes, "expected ~linear scaling in item count")
	}
	return r
}

// E5SharedAgents — Example 3.3: agents are shared resources limiting
// concurrency. Fixed work, varying pool size: the invariant (never more
// busy agents than the pool holds) must hold on every run, and wall-clock
// throughput improves with more agents while total work stays flat.
func E5SharedAgents(cfg Config) Report {
	r := Report{ID: "E5", Title: "Example 3.3: shared resources (agent pools)", Pass: true}
	const items = 12
	pools := pick(cfg.Quick, []int{1, 2}, []int{1, 2, 4, 8})
	src := `
		job(W) :- qualified(A, tech), available(A), del.available(A),
		          ins.doing(A, W, job), ins.served(W), del.doing(A, W, job), ins.available(A).
		loop :- newitem(X), del.newitem(X), (job(X) | loop).
		loop :- empty.newitem.
	`
	tab := complexity.NewTable("throughput vs pool size", "agents", "ops", "wall time", "served", "max busy")
	for _, a := range pools {
		full := src + workflow.AgentFacts(map[string]int{"tech": a}) + workflow.ItemFacts(items)
		maxBusy := 0
		mon := func(d *db.DB) error {
			if n := d.Count("doing", 3); n > maxBusy {
				maxBusy = n
			}
			if n := d.Count("doing", 3); n > a {
				return fmt.Errorf("%d busy > pool %d", n, a)
			}
			return nil
		}
		opts := simOpts()
		opts.Monitors = []sim.MonitorFunc{mon}
		opts.Shuffle = true
		opts.Seed = 5
		start := time.Now()
		res, err := simulate(full, "loop", opts)
		elapsed := time.Since(start)
		if err != nil || !res.Completed {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("pool %d failed: %v", a, resErr(res, err)))
			continue
		}
		served := res.Final.Count("served", 1)
		tab.AddRow(a, res.Ops, elapsed, served, maxBusy)
		if served != items {
			r.Pass = false
		}
		if maxBusy > a {
			r.Pass = false
			r.Notes = append(r.Notes, "capacity invariant violated")
		}
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes, "invariant: busy agents never exceed the pool (checked after every update)")
	return r
}

// E6Cooperation — Example 3.4: a network of cooperating workflows
// synchronizing through the database. wf2 needs wf1's measurements; both
// complete in either spawn order, and the dependent tuple is always
// derived from the produced one.
func E6Cooperation(cfg Config) Report {
	r := Report{ID: "E6", Title: "Example 3.4: cooperating workflows, synchronization via the database", Pass: true}
	parts := pick(cfg.Quick, []int{2, 4}, []int{2, 4, 8, 16})
	src := `
		wf1(P) :- ins.prepped(P), ins.measured(P, 42).
		wf2(P) :- measured(P, V), ins.verified(P, V).
		drive1 :- part(P), del.part(P), (wf1(P) | ins.handoff(P) | drive1).
		drive1 :- empty.part.
		drive2 :- handoff(P), del.handoff(P), (wf2(P) | drive2).
		drive2 :- eof.
	`
	tab := complexity.NewTable("cooperating pipelines", "parts", "ops", "verified")
	for _, n := range parts {
		var facts string
		for i := 0; i < n; i++ {
			facts += fmt.Sprintf("part(p%d).\n", i)
		}
		full := src + facts
		opts := simOpts()
		prog := parser.MustParse(full)
		g := parser.MustParseGoal("(drive1 | drive2), ins.eofdone", prog.VarHigh)
		_ = g
		// drive2 needs an eof signal after all parts are handed off; use a
		// supervising goal.
		goal := "drive1, ins.eof | drive2"
		res, err := simulate(full, goal, opts)
		if err != nil || !res.Completed {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: %v", n, resErr(res, err)))
			continue
		}
		verified := res.Final.Count("verified", 2)
		tab.AddRow(n, res.Ops, verified)
		if verified != n {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: only %d verified", n, verified))
		}
	}
	r.Tables = append(r.Tables, tab)
	return r
}

func failed(r Report, err error) Report {
	r.Pass = false
	r.Notes = append(r.Notes, err.Error())
	return r
}

func resErr(res *sim.Result, err error) error {
	if err != nil {
		return err
	}
	if res != nil {
		return res.Err
	}
	return nil
}

var _ = db.New // keep import when builds shuffle
