package experiments

import (
	"fmt"

	"repro/internal/complexity"
	"repro/internal/machine"
)

// E13TuringChain — the full constructive chain behind Theorem 4.4: a
// Turing machine is translated to a two-stack machine (tape split at the
// head), the two-stack machine is compiled to TD, and the TD program is
// executed by proof search. All three levels must agree, and TD cost per
// TM step must stay polynomially bounded.
func E13TuringChain(cfg Config) Report {
	r := Report{ID: "E13", Title: "Thm 4.4 chain: Turing machine → two-stack → TD → proof search", Pass: true}

	tm := machine.TMAnBn()
	two, err := tm.ToTwoStack()
	if err != nil {
		return failed(r, err)
	}

	tab := complexity.NewTable("three-level agreement on a^n b^m", "input", "TM", "two-stack", "TD", "TM steps", "TD steps")
	type testCase struct {
		label string
		word  []string
	}
	var cases []testCase
	limit := 3
	if cfg.Quick {
		limit = 2
	}
	for n := 0; n <= limit; n++ {
		cases = append(cases, testCase{fmt.Sprintf("a^%d b^%d", n, n), machine.ABnWord(n, n)})
	}
	cases = append(cases,
		testCase{"a^2 b^1", machine.ABnWord(2, 1)},
		testCase{"a^1 b^2", machine.ABnWord(1, 2)},
		testCase{"b a", []string{"b", "a"}},
	)
	for _, c := range cases {
		tmRes, err := tm.Run(c.word, 1_000_000)
		if err != nil {
			return failed(r, err)
		}
		twoRes, err := two.Run(c.word, 10_000_000)
		if err != nil {
			return failed(r, err)
		}
		src, goalSrc, err := machine.Source(two, c.word)
		if err != nil {
			return failed(r, err)
		}
		res, _, err := prove(src, goalSrc, defaultOpts())
		if err != nil {
			return failed(r, err)
		}
		tab.AddRow(c.label, tmRes.Accepted, twoRes.Accepted, res.Success, tmRes.Steps, res.Stats.Steps)
		if tmRes.Accepted != twoRes.Accepted || twoRes.Accepted != res.Success {
			r.Pass = false
			r.Notes = append(r.Notes, c.label+": levels disagree")
		}
	}
	r.Tables = append(r.Tables, tab)

	// Scaling: TD steps per TM step on accepting runs.
	sizes := pick(cfg.Quick, []int{1, 2}, []int{1, 2, 3, 4})
	series := complexity.Sweep("a^n b^n through the full chain", sizes, func(n int) (float64, map[string]float64) {
		word := machine.ABnWord(n, n)
		tmRes, err := tm.Run(word, 1_000_000)
		if err != nil || !tmRes.Accepted {
			r.Pass = false
			return 0, nil
		}
		src, goalSrc, err := machine.Source(two, word)
		if err != nil {
			r.Pass = false
			return 0, nil
		}
		steps := mustSteps(src, goalSrc, defaultOpts(), true, &r.Pass)
		ratio := float64(0)
		if tmRes.Steps > 0 {
			ratio = steps / float64(tmRes.Steps)
		}
		return steps, map[string]float64{"tm_steps": float64(tmRes.Steps), "td_per_tm": ratio}
	})
	fit := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "fit: "+fit.Classify())
	if fit.LooksExponential() && fit.ExpRate > 1.5 {
		r.Pass = false
		r.Notes = append(r.Notes, "TD overhead blew up beyond the TM's own quadratic behaviour")
	}
	return r
}
