package experiments

import (
	"fmt"
	"strings"

	"repro/internal/complexity"
	"repro/internal/datalog"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/fragments"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/term"
)

// E7TwoStack — Theorem 4.4 / Corollary 4.6: the RE-completeness
// construction, run for real. Two-stack machines compile to three
// concurrent sequential TD processes (control + one process per stack,
// stacks encoded in recursion depth, communication via the database). The
// compiled programs must agree with the direct machine simulator, and the
// cost of simulating a halting machine grows polynomially with its step
// count.
func E7TwoStack(cfg Config) Report {
	r := Report{ID: "E7", Title: "Thm 4.4/Cor 4.6: two-stack machine in TD (3 concurrent sequential processes)", Pass: true}

	// Correctness: parity and Dyck agree with the simulator.
	tab := complexity.NewTable("machine vs TD agreement", "machine", "input", "simulator", "TD engine")
	check := func(m *machine.Machine, input []string, label string) {
		simRes, err := m.Run(input, 1_000_000)
		if err != nil {
			r.Pass = false
			return
		}
		src, goalSrc, err := machine.Source(m, input)
		if err != nil {
			r.Pass = false
			return
		}
		res, _, err := prove(src, goalSrc, defaultOpts())
		if err != nil {
			r.Pass = false
			r.Notes = append(r.Notes, label+": "+err.Error())
			return
		}
		tab.AddRow(m.Name, label, simRes.Accepted, res.Success)
		if res.Success != simRes.Accepted {
			r.Pass = false
			r.Notes = append(r.Notes, label+": TD disagrees with machine")
		}
	}
	check(machine.Parity(), machine.Ones(4), "one^4")
	check(machine.Parity(), machine.Ones(5), "one^5")
	check(machine.Dyck(), machine.Nested(3), "l^3 r^3")
	check(machine.Dyck(), []string{"l", "r", "r"}, "l r r")
	r.Tables = append(r.Tables, tab)

	// Scaling: the Copy machine moves n symbols across stacks; TD cost per
	// machine step should be polynomially bounded.
	sizes := pick(cfg.Quick, []int{2, 4, 6}, []int{2, 4, 8, 12, 16})
	series := complexity.Sweep("copy machine, n symbols", sizes, func(n int) (float64, map[string]float64) {
		src, goalSrc, err := machine.Source(machine.Copy(), machine.ABWord(n))
		if err != nil {
			r.Pass = false
			return 0, nil
		}
		opts := defaultOpts()
		return mustSteps(src, goalSrc, opts, true, &r.Pass), nil
	})
	fit := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "fit: "+fit.Classify())
	if fit.LooksExponential() {
		r.Pass = false
		r.Notes = append(r.Notes, "TD simulation of a linear-time machine blew up exponentially")
	}

	// Fragment check: this is exactly the Corollary 4.6 shape.
	c, err := machine.Compile(machine.Dyck())
	if err != nil {
		return failed(r, err)
	}
	prog := parser.MustParse(c.RulesSrc)
	rep := fragments.Analyze(prog)
	r.Notes = append(r.Notes, "compiled fragment: "+rep.Fragment.String()+" — "+rep.Fragment.Complexity())
	if rep.Fragment != fragments.Full {
		r.Pass = false
	}
	return r
}

// E8SequentialQBF — Theorem 4.5: sequential TD is EXPTIME-complete via
// alternation. A fixed 7-rule sequential program evaluates QBF supplied as
// data; on the alternating ∀∃ family the work grows exponentially in the
// number of quantifier blocks, with no concurrency anywhere.
func E8SequentialQBF(cfg Config) Report {
	r := Report{ID: "E8", Title: "Thm 4.5: sequential TD alternation (QBF as data, fixed program)", Pass: true}
	prog := parser.MustParse(machine.QBFRules)
	rep := fragments.Analyze(prog)
	r.Notes = append(r.Notes, "fragment: "+rep.Fragment.String()+" — "+rep.Fragment.Complexity())
	if rep.Fragment != fragments.Sequential {
		r.Pass = false
	}

	ks := pick(cfg.Quick, []int{1, 2, 3}, []int{1, 2, 3, 4, 5, 6})
	series := complexity.Sweep("alternating QBF, k ∀∃ blocks", ks, func(k int) (float64, map[string]float64) {
		q := machine.AlternatingQBF(k)
		if !q.Eval() {
			r.Pass = false
			return 0, nil
		}
		facts, err := machine.QBFFacts(q)
		if err != nil {
			r.Pass = false
			return 0, nil
		}
		return mustSteps(machine.QBFRules+facts, machine.QBFGoal, defaultOpts(), true, &r.Pass), nil
	})
	fit := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "fit: "+fit.Classify())
	if !fit.LooksExponential() {
		r.Pass = false
		r.Notes = append(r.Notes, "expected exponential growth from alternation")
	}

	// Cross-check TD answers against the oracle on random formulas.
	bad := 0
	rng := newRng(3)
	for i := 0; i < 10; i++ {
		q := machine.RandomQBF(rng, 3, 3, 2, 0.5)
		facts, err := machine.QBFFacts(q)
		if err != nil {
			bad++
			continue
		}
		res, _, err := prove(machine.QBFRules+facts, machine.QBFGoal, defaultOpts())
		if err != nil || res.Success != q.Eval() {
			bad++
		}
	}
	if bad > 0 {
		r.Pass = false
		r.Notes = append(r.Notes, fmt.Sprintf("%d/10 random QBF mismatches", bad))
	} else {
		r.Notes = append(r.Notes, "10/10 random QBF agree with oracle")
	}
	return r
}

// E10FullyBounded — Section 5: the practical fragment. The iterated lab
// protocol (sequential tail recursion) scales polynomially in the number
// of work items, while the same fragment still expresses guess-and-check
// (SAT): the worst case is a search-tree exponential, not a process-tree
// one. Both programs classify as fully bounded.
func E10FullyBounded(cfg Config) Report {
	r := Report{ID: "E10", Title: "Section 5: fully bounded TD (iteration; guess-and-check)", Pass: true}

	// Practical side: iterated protocol over n items, polynomial.
	iter := `
		protocol(X) :- ins.prepped(X), prepped(X), ins.measured(X), measured(X), ins.finished(X).
		drain :- todo(X), del.todo(X), protocol(X), drain.
		drain :- empty.todo.
	`
	progIter := parser.MustParse(iter)
	repIter := fragments.Analyze(progIter)
	r.Notes = append(r.Notes, "iterated protocol fragment: "+repIter.Fragment.String())
	if repIter.Fragment > fragments.FullyBounded {
		r.Pass = false
	}
	sizes := pick(cfg.Quick, []int{4, 8, 16}, []int{4, 8, 16, 32, 64})
	series := complexity.Sweep("iterated protocol, n items", sizes, func(n int) (float64, map[string]float64) {
		var b strings.Builder
		b.WriteString(iter)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "todo(item%d).\n", i)
		}
		return mustSteps(b.String(), "drain", defaultOpts(), true, &r.Pass), nil
	})
	fitIter := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "iteration fit: "+fitIter.Classify())
	if !fitIter.LooksPolynomial() {
		r.Pass = false
	}

	// Hardness side: the same fragment expresses SAT; pigeonhole blows up.
	progSAT := parser.MustParse(machine.SATRules)
	repSAT := fragments.Analyze(progSAT)
	r.Notes = append(r.Notes, "SAT program fragment: "+repSAT.Fragment.String())
	if repSAT.Fragment > fragments.FullyBounded {
		r.Pass = false
	}
	phSizes := pick(cfg.Quick, []int{1, 2}, []int{1, 2, 3})
	satSeries := complexity.Sweep("pigeonhole(n) via SAT rules (unsat)", phSizes, func(n int) (float64, map[string]float64) {
		c := machine.PigeonholeCNF(n)
		facts, err := machine.SATFacts(c)
		if err != nil {
			r.Pass = false
			return 0, nil
		}
		opts := defaultOpts()
		opts.Table = false // raw search: the exponential is the point
		opts.LoopCheck = false
		return mustSteps(machine.SATRules+facts, machine.SATGoal, opts, false, &r.Pass), nil
	})
	r.Tables = append(r.Tables, complexity.SeriesTable(satSeries))
	if complexity.Ratio(satSeries) < 8 {
		r.Pass = false
		r.Notes = append(r.Notes, "pigeonhole search did not blow up as expected")
	}
	return r
}

// E11InsOnlyDatalog — the Section 5 remark: with tuple testing and
// insertion but no deletion, TD workflows compute Datalog-style fixpoints
// and classical optimizations apply. Two demonstrations: (a) query
// answering on transitive closure agrees between the TD engine and the
// semi-naive Datalog baseline; (b) an accumulate-only scientific workflow
// (insertions never retracted, like the genome center's experiment log)
// scales linearly.
func E11InsOnlyDatalog(cfg Config) Report {
	r := Report{ID: "E11", Title: "Ins-only TD vs classical Datalog (Section 5 remark)", Pass: true}
	sizes := pick(cfg.Quick, []int{8, 16}, []int{8, 16, 32, 64})
	tab := complexity.NewTable("transitive closure: TD query vs semi-naive Datalog vs magic sets",
		"n (chain)", "TD steps", "datalog fires", "magic fires", "answers agree")
	for _, n := range sizes {
		var b strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "edge(n%d, n%d).\n", i, i+1)
		}
		src := b.String() + `
			reach(X, Y) :- edge(X, Y).
			reach(X, Y) :- edge(X, Z), reach(Z, Y).
		`
		prog := parser.MustParse(src)
		d, _ := db.FromFacts(prog.Facts)
		g := parser.MustParseGoal(fmt.Sprintf("reach(n0, n%d)", n), prog.VarHigh)
		res, err := engine.New(prog, defaultOpts()).Prove(g, d)
		if err != nil || !res.Success {
			r.Pass = false
			continue
		}
		dlProg, err := datalogFromSrc(src)
		if err != nil {
			return failed(r, err)
		}
		model, err := evalDatalog(dlProg)
		if err != nil {
			return failed(r, err)
		}
		// Magic sets: the same query, bound on both arguments.
		q := term.NewAtom("reach", term.NewSym("n0"), term.NewSym(fmt.Sprintf("n%d", n)))
		magicAnswers, magicModel, err := datalog.MagicEval(dlProg, q)
		if err != nil {
			return failed(r, err)
		}
		agree := model.Contains(atom2("reach", "n0", fmt.Sprintf("n%d", n))) && len(magicAnswers) == 1
		tab.AddRow(n, res.Stats.Steps, model.Stats.RuleFires, magicModel.Stats.RuleFires, agree)
		if !agree {
			r.Pass = false
		}
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes, "magic sets (the optimization the paper names) focuses bottom-up evaluation on the query")

	// Accumulate-only workflow: linear scaling, classified ins-only.
	scan := `
		scan(I) :- raw(I, V), ins.res(I, V), succ(I, J), scan(J).
		scan(I) :- norecs(I).
	`
	progScan := parser.MustParse(scan)
	repScan := fragments.Analyze(progScan)
	r.Notes = append(r.Notes, "accumulate-only fragment: "+repScan.Fragment.String())
	if repScan.Fragment != fragments.InsOnly {
		r.Pass = false
	}
	series := complexity.Sweep("accumulate-only scan, n records", pick(cfg.Quick, []int{8, 16}, []int{8, 16, 32, 64, 128}), func(n int) (float64, map[string]float64) {
		var b strings.Builder
		b.WriteString(scan)
		for i := 1; i <= n; i++ {
			fmt.Fprintf(&b, "raw(%d, %d). succ(%d, %d).\n", i, i*10, i, i+1)
		}
		fmt.Fprintf(&b, "norecs(%d).\n", n+1)
		return mustSteps(b.String(), "scan(1)", defaultOpts(), true, &r.Pass), nil
	})
	fit := complexity.FitGrowth(series)
	r.Tables = append(r.Tables, complexity.SeriesTable(series))
	r.Notes = append(r.Notes, "accumulate-only fit: "+fit.Classify())
	if !fit.LooksPolynomial() || fit.PolyDegree > 1.6 {
		r.Pass = false
	}
	return r
}

// E12Isolation — Section 2's isolation property: iso(t1) | ... | iso(tn)
// executes serializably. Every reachable final state of n isolated counter
// increments equals the serial outcome, and money is conserved across
// concurrent isolated transfers; without iso, anomalous finals appear.
func E12Isolation(cfg Config) Report {
	r := Report{ID: "E12", Title: "Isolation and serializability (Section 2)", Pass: true}
	counterSrc := `
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
	`
	prog := parser.MustParse(counterSrc)
	tab := complexity.NewTable("reachable final counters", "n bumps", "iso finals", "bare finals", "iso steps", "bare steps")
	// Enumerating every interleaving of n unisolated bumps is factorial in
	// n; n = 3 already shows the anomaly set while staying tractable.
	ns := pick(cfg.Quick, []int{2}, []int{2, 3})
	for _, n := range ns {
		isoGoal := strings.TrimSuffix(strings.Repeat("iso(bump) | ", n), " | ")
		bareGoal := strings.TrimSuffix(strings.Repeat("bump | ", n), " | ")
		isoFinals, isoSteps, err1 := finalCounters(prog, isoGoal)
		bareFinals, bareSteps, err2 := finalCounters(prog, bareGoal)
		if err1 != nil || err2 != nil {
			r.Pass = false
			continue
		}
		tab.AddRow(n, fmt.Sprint(isoFinals), fmt.Sprint(bareFinals), isoSteps, bareSteps)
		// Isolated: only the serial outcome n.
		if len(isoFinals) != 1 || isoFinals[0] != int64(n) {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("iso n=%d: finals %v", n, isoFinals))
		}
		// Unisolated: lost updates appear (some final < n).
		anomaly := false
		for _, f := range bareFinals {
			if f < int64(n) {
				anomaly = true
			}
		}
		if !anomaly {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("bare n=%d: no lost update observed", n))
		}
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes, "isolated composition reaches exactly the serial outcome; bare composition also reaches lost-update anomalies")
	return r
}

func finalCounters(prog parserProg, goal string) ([]int64, int64, error) {
	g := parser.MustParseGoal(goal, prog.VarHigh)
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		return nil, 0, err
	}
	sols, res, err := engine.New(prog, defaultOpts()).Solutions(g, d, 0)
	if err != nil {
		return nil, 0, err
	}
	seen := map[int64]bool{}
	for _, s := range sols {
		for _, row := range s.Final.Tuples("counter", 1) {
			seen[row[0].IntVal()] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sortInt64(out)
	return out, res.Stats.Steps, nil
}

func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
