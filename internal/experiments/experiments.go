// Package experiments implements the reproduction suite: one experiment
// per table/figure-equivalent artifact of the paper (the worked examples of
// Sections 2–3 and the complexity landscape of Sections 4–5), plus the
// ablations called out in DESIGN.md. cmd/tdbench prints them; the root
// bench_test.go wraps them as Go benchmarks; EXPERIMENTS.md records their
// output against the paper's claims.
package experiments

import (
	"time"

	"repro/internal/complexity"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/sim"
	"repro/internal/term"
)

// Report is one experiment's rendered result.
type Report struct {
	ID     string
	Title  string
	Tables []*complexity.Table
	Notes  []string
	// Pass is false when a correctness assertion inside the experiment
	// failed (the reproduction did not behave as the paper describes).
	Pass bool
}

// Config sizes the suite.
type Config struct {
	// Quick shrinks workload sizes for smoke runs.
	Quick bool
}

// All runs every experiment.
func All(cfg Config) []Report {
	return []Report{
		E1Transfer(cfg),
		E2NestedAbort(cfg),
		E3WorkflowSpec(cfg),
		E4Simulation(cfg),
		E5SharedAgents(cfg),
		E6Cooperation(cfg),
		E7TwoStack(cfg),
		E8SequentialQBF(cfg),
		E9NonRecursive(cfg),
		E10FullyBounded(cfg),
		E11InsOnlyDatalog(cfg),
		E12Isolation(cfg),
		E13TuringChain(cfg),
		E14Verification(cfg),
		A1Tabling(cfg),
		A2DBFork(cfg),
		A3Index(cfg),
	}
}

// ---------------------------------------------------------------------------
// Shared helpers

// prove runs goal over src and returns the result, final DB, and error.
func prove(src, goal string, opts engine.Options) (*engine.Result, *db.DB, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		return nil, nil, err
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		return nil, nil, err
	}
	res, err := engine.New(prog, opts).Prove(g, d)
	return res, d, err
}

// mustSteps proves and returns engine steps, flagging failure into ok.
func mustSteps(src, goal string, opts engine.Options, wantSuccess bool, ok *bool) float64 {
	res, _, err := prove(src, goal, opts)
	if err != nil || res.Success != wantSuccess {
		*ok = false
		return 0
	}
	return float64(res.Stats.Steps)
}

func defaultOpts() engine.Options {
	o := engine.DefaultOptions()
	o.MaxSteps = 200_000_000
	return o
}

func simulate(src, goal string, opts sim.Options) (*sim.Result, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	g, _, err := parser.ParseGoal(goal, prog.VarHigh)
	if err != nil {
		return nil, err
	}
	d, err := db.FromFacts(prog.Facts)
	if err != nil {
		return nil, err
	}
	return sim.New(prog, opts).Run(g, d), nil
}

func simOpts() sim.Options {
	return sim.Options{Timeout: 60 * time.Second, MaxOps: 100_000_000}
}

func sym(s string) term.Term { return term.NewSym(s) }

func intT(v int64) term.Term { return term.NewInt(v) }

func pick(quick bool, q, full []int) []int {
	if quick {
		return q
	}
	return full
}
