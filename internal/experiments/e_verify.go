package experiments

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/complexity"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/verify"
)

// E14Verification — exhaustive workflow analysis (the direction of the
// paper's related work [34]: logic-based reasoning about workflows).
// Three checks:
//
//  1. the declarative shared-agent race: without isolation, TD's set
//     semantics (deleting an absent tuple silently succeeds) admits a
//     double-allocation interleaving — the verifier must FIND it;
//  2. the isolated acquisition protocol: no reachable state violates the
//     capacity invariant — the verifier must PROVE it;
//  3. serializability: isolated counter increments are serializable,
//     unisolated ones exhibit the lost-update anomaly.
func E14Verification(cfg Config) Report {
	r := Report{ID: "E14", Title: "Workflow verification: invariants and serializability over all paths", Pass: true}
	tab := complexity.NewTable("invariant checks (pool of 1, two claimants)",
		"protocol", "invariant holds", "states explored (steps)")

	inv := func(d *db.DB) error {
		if d.Count("busy", 2) > 1 {
			return fmt.Errorf("double allocation")
		}
		return nil
	}

	racy := `
		available(a1).
		job(W) :- available(A), del.available(A), ins.busy(A, W),
		          del.busy(A, W), ins.done(W), ins.available(A).
	`
	isolated := `
		available(a1).
		acquire(A, W) :- available(A), del.available(A), ins.busy(A, W).
		release(A, W) :- del.busy(A, W), ins.done(W), ins.available(A).
		job(W) :- iso(acquire(A, W)), iso(release(A, W)).
	`
	check := func(label, src string, wantHolds bool) {
		prog, err := parser.Parse(src)
		if err != nil {
			r.Pass = false
			return
		}
		goal, _, err := parser.ParseGoal("job(w1) | job(w2)", prog.VarHigh)
		if err != nil {
			r.Pass = false
			return
		}
		d, _ := db.FromFacts(prog.Facts)
		res, err := verify.Invariant(prog, goal, d, inv, defaultOpts())
		if err != nil {
			r.Pass = false
			r.Notes = append(r.Notes, label+": "+err.Error())
			return
		}
		tab.AddRow(label, res.Holds, res.Stats.Steps)
		if res.Holds != wantHolds {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("%s: holds=%v, want %v", label, res.Holds, wantHolds))
		}
		if !res.Holds && len(res.Violation.Trace) == 0 {
			r.Pass = false
			r.Notes = append(r.Notes, label+": violation without trace")
		}
	}
	check("bare test-and-consume (racy)", racy, false)
	check("iso-protected acquisition", isolated, true)
	r.Tables = append(r.Tables, tab)

	// Serializability.
	counter := `
		counter(0).
		bump :- counter(N), del.counter(N), add(N, 1, M), ins.counter(M).
	`
	prog, err := parser.Parse(counter)
	if err != nil {
		return failed(r, err)
	}
	stab := complexity.NewTable("serializability of two concurrent increments",
		"composition", "serializable", "concurrent finals")
	mk := func(src string) ast.Goal {
		g, _, err := parser.ParseGoal(src, prog.VarHigh)
		if err != nil {
			r.Pass = false
		}
		return g
	}
	d, _ := db.FromFacts(prog.Facts)
	isoRes, err := verify.Serializable(prog, []ast.Goal{mk("iso(bump)"), mk("iso(bump)")}, d, defaultOpts())
	if err != nil {
		return failed(r, err)
	}
	stab.AddRow("iso(bump) | iso(bump)", isoRes.OK, isoRes.ConcurrentFinals)
	bareRes, err := verify.Serializable(prog, []ast.Goal{mk("bump"), mk("bump")}, d, defaultOpts())
	if err != nil {
		return failed(r, err)
	}
	stab.AddRow("bump | bump", bareRes.OK, bareRes.ConcurrentFinals)
	r.Tables = append(r.Tables, stab)
	if !isoRes.OK {
		r.Pass = false
		r.Notes = append(r.Notes, "isolated increments flagged non-serializable")
	}
	if bareRes.OK {
		r.Pass = false
		r.Notes = append(r.Notes, "lost update not detected")
	}
	r.Notes = append(r.Notes,
		"the bare agent race exists because deleting an absent tuple succeeds (set semantics); iso() is the TD-native fix",
	)
	return r
}
