package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/complexity"
	"repro/internal/datalog"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/term"
)

// Helpers shared with e_complexity.go.

type parserProg = *ast.Program

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func datalogFromSrc(src string) (*datalog.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return datalog.FromTD(prog)
}

func evalDatalog(p *datalog.Program) (*datalog.Model, error) {
	return datalog.Eval(p, datalog.SemiNaive)
}

func atom2(pred, a, b string) term.Atom {
	return term.NewAtom(pred, term.NewSym(a), term.NewSym(b))
}

// A1Tabling — ablation: the failure table (the "tabling" the paper says
// applies to restricted fragments) on a failing reachability search over a
// dense layered graph. Tabling collapses repeated subproblems; without it
// the same configurations are re-explored along every path.
func A1Tabling(cfg Config) Report {
	r := Report{ID: "A1", Title: "Ablation: tabling (failure memoization) on shared subproblems", Pass: true}
	layers := pick(cfg.Quick, []int{3, 4}, []int{3, 4, 5, 6})
	tab := complexity.NewTable("failing reach query over layered graph", "layers", "steps tabled", "steps untabled", "speedup")
	for _, l := range layers {
		src := layeredGraph(l, 3) + `
			reach(X, Y) :- edge(X, Y).
			reach(X, Y) :- edge(X, Z), reach(Z, Y).
		`
		optT := defaultOpts()
		optU := defaultOpts()
		optU.Table = false
		st := mustSteps(src, "reach(l0n0, nowhere)", optT, false, &r.Pass)
		su := mustSteps(src, "reach(l0n0, nowhere)", optU, false, &r.Pass)
		speedup := float64(0)
		if st > 0 {
			speedup = su / st
		}
		tab.AddRow(l, st, su, speedup)
		if su <= st {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("layers=%d: tabling did not help", l))
		}
	}
	r.Tables = append(r.Tables, tab)
	return r
}

// layeredGraph renders a graph of l layers with w nodes each, fully
// connected layer to layer: many distinct paths share suffixes.
func layeredGraph(l, w int) string {
	var b strings.Builder
	for layer := 0; layer < l-1; layer++ {
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				fmt.Fprintf(&b, "edge(l%dn%d, l%dn%d).\n", layer, i, layer+1, j)
			}
		}
	}
	return b.String()
}

// A2DBFork — ablation: three branching strategies for search state —
// undo-log rollback (O(changes) per branch), persistent HAMT forks
// (O(1) fork, O(log n) per update, structural sharing), and whole-database
// cloning (O(database) per branch).
func A2DBFork(cfg Config) Report {
	r := Report{ID: "A2", Title: "Ablation: undo-log vs persistent-HAMT fork vs database cloning", Pass: true}
	sizes := pick(cfg.Quick, []int{1000, 4000}, []int{1000, 4000, 16000, 64000})
	tab := complexity.NewTable("1000 branchings of 3 updates each", "db tuples", "undo-log", "HAMT fork", "clone")
	for _, n := range sizes {
		d := db.New()
		for i := 0; i < n; i++ {
			d.Insert("base", []term.Term{term.NewInt(int64(i))})
		}
		d.ResetTrail()
		row := []term.Term{term.NewSym("x")}
		const branches = 1000

		start := time.Now()
		for b := 0; b < branches; b++ {
			mark := d.Mark()
			d.Insert("tmp", row)
			d.Insert("tmp2", row)
			d.Delete("tmp", row)
			d.Undo(mark)
		}
		undoTime := time.Since(start)

		frozen := db.FreezeDB(d)
		start = time.Now()
		for b := 0; b < branches; b++ {
			child := frozen.Insert("tmp", row)
			child = child.Insert("tmp2", row)
			child = child.Delete("tmp", row)
			_ = child
		}
		hamtTime := time.Since(start)

		start = time.Now()
		for b := 0; b < branches/50; b++ { // cloning is so slow we sample
			c := d.Clone()
			c.Insert("tmp", row)
			c.Insert("tmp2", row)
			c.Delete("tmp", row)
		}
		cloneTime := time.Since(start) * 50

		tab.AddRow(n, undoTime, hamtTime, cloneTime)
		if cloneTime < undoTime || cloneTime < hamtTime {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: cloning beat an O(1)-fork strategy?!", n))
		}
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes,
		"clone column extrapolated from a 1/50 sample",
		"the engine uses the undo log (backtracking never needs sibling versions alive); the HAMT serves version-keeping callers",
	)
	return r
}

// A3Index — ablation: the first-argument index on selective queries.
func A3Index(cfg Config) Report {
	r := Report{ID: "A3", Title: "Ablation: first-argument index on selective queries", Pass: true}
	sizes := pick(cfg.Quick, []int{500, 2000}, []int{500, 2000, 8000, 32000})
	tab := complexity.NewTable("selective lookups edge(k, X), 2000 probes", "tuples", "indexed", "unindexed")
	for _, n := range sizes {
		probe := func(opts ...db.Option) time.Duration {
			d := db.New(opts...)
			for i := 0; i < n; i++ {
				d.Insert("edge", []term.Term{term.NewInt(int64(i)), term.NewInt(int64(i + 1))})
			}
			env := term.NewEnv()
			x := term.NewVar("X", 0)
			start := time.Now()
			for p := 0; p < 2000; p++ {
				args := []term.Term{term.NewInt(int64(p % n)), x}
				d.Scan("edge", args, env, func() bool { return true })
			}
			return time.Since(start)
		}
		indexed := probe()
		unindexed := probe(db.WithoutIndex())
		tab.AddRow(n, indexed, unindexed)
		if n >= 2000 && unindexed < indexed {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: index did not pay off", n))
		}
	}
	r.Tables = append(r.Tables, tab)
	return r
}

// engineRef keeps the import meaningful if helpers shuffle between files.
var _ = engine.DefaultOptions
