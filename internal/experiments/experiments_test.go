package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPassQuick runs the whole reproduction suite at quick
// sizes: every experiment must reproduce the paper's claimed behaviour
// (Pass == true). This is the repository's meta-test.
func TestAllExperimentsPassQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite takes a few seconds")
	}
	for _, rep := range All(Config{Quick: true}) {
		rep := rep
		t.Run(rep.ID, func(t *testing.T) {
			if !rep.Pass {
				t.Errorf("%s (%s) FAILED:\n  notes: %s", rep.ID, rep.Title, strings.Join(rep.Notes, "\n         "))
				for _, tab := range rep.Tables {
					t.Logf("\n%s", tab)
				}
			}
		})
	}
}

func TestReportsHaveContent(t *testing.T) {
	if testing.Short() {
		t.Skip("suite takes a few seconds")
	}
	reps := All(Config{Quick: true})
	if len(reps) != 17 {
		t.Fatalf("got %d experiments, want 17 (E1–E14, A1–A3)", len(reps))
	}
	seen := map[string]bool{}
	for _, rep := range reps {
		if rep.ID == "" || rep.Title == "" {
			t.Errorf("experiment with empty identity: %+v", rep)
		}
		if seen[rep.ID] {
			t.Errorf("duplicate experiment id %s", rep.ID)
		}
		seen[rep.ID] = true
		if len(rep.Tables) == 0 {
			t.Errorf("%s: no tables", rep.ID)
		}
	}
}
